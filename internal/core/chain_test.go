package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/principal"
	"repro/internal/tag"
)

// Property tests over random delegation chains: the composed proof
// must authorize exactly the requests every link's restriction
// covers, and the whole structure must survive the wire.

// randomChainTags builds n tags from a small vocabulary so
// intersections are frequently nonempty.
func randomChainTags(r *rand.Rand, n int) []tag.Tag {
	verbs := [][]string{
		{"read", "write", "admin"},
		{"read", "write"},
		{"read"},
	}
	paths := []string{"/", "/a/", "/a/b/"}
	out := make([]tag.Tag, n)
	for i := range out {
		vs := verbs[r.Intn(len(verbs))]
		var verbTag tag.Tag
		if len(vs) == 1 {
			verbTag = tag.Literal(vs[0])
		} else {
			elems := make([]tag.Tag, len(vs))
			for j, v := range vs {
				elems[j] = tag.Literal(v)
			}
			verbTag = tag.SetOf(elems...)
		}
		out[i] = tag.ListOf(
			tag.Literal("fs"),
			verbTag,
			tag.Prefix(paths[r.Intn(len(paths))]),
		)
	}
	return out
}

// buildChain composes assumptions k0 <= k1 <= ... <= kn with the
// given tags via transitivity; returns nil when some intersection is
// empty (a legitimate outcome).
func buildChain(ctx *VerifyContext, tags []tag.Tag) (Proof, []principal.Principal) {
	n := len(tags)
	ps := make([]principal.Principal, n+1)
	for i := range ps {
		ps[i] = principal.ChannelOf(principal.ChannelLocal, []byte{byte(i)})
	}
	var acc Proof
	for i := n - 1; i >= 0; i-- {
		link := Assume(SpeaksFor{Subject: ps[i], Issuer: ps[i+1], Tag: tags[i]})
		ctx.Assume(link.S)
		if acc == nil {
			acc = link
		} else {
			tr, err := NewTransitivity(link, acc)
			if err != nil {
				return nil, ps
			}
			acc = tr
		}
	}
	return acc, ps
}

func TestQuickChainAuthorizesExactlyCoveredRequests(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		tags := randomChainTags(r, n)
		ctx := NewVerifyContext()
		proof, ps := buildChain(ctx, tags)
		if proof == nil {
			return true // empty intersection: nothing to check
		}
		// Random concrete request.
		verbs := []string{"read", "write", "admin", "delete"}
		paths := []string{"/x", "/a/x", "/a/b/x", "/c"}
		req := tag.ListOf(
			tag.Literal("fs"),
			tag.Literal(verbs[r.Intn(len(verbs))]),
			tag.Literal(paths[r.Intn(len(paths))]),
		)
		wantOK := true
		for _, tg := range tags {
			if !tag.Covers(tg, req) {
				wantOK = false
			}
		}
		err := Authorize(ctx, proof, ps[0], ps[len(ps)-1], req)
		if wantOK && err != nil {
			return false
		}
		// Soundness is the critical direction: a request outside any
		// link must never authorize.
		if !wantOK && err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickChainWireRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tags := randomChainTags(r, 1+r.Intn(3))
		ctx := NewVerifyContext()
		proof, _ := buildChain(ctx, tags)
		if proof == nil {
			return true
		}
		back, err := ProofFromSexp(proof.Sexp())
		if err != nil {
			return false
		}
		if back.Conclusion().Key() != proof.Conclusion().Key() {
			return false
		}
		return back.Verify(ctx) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubjectSwapNeverAuthorizes(t *testing.T) {
	// An adversary who substitutes its own principal as the speaker
	// gains nothing from knowing a proof (proofs are not bearer
	// capabilities, section 3).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tags := randomChainTags(r, 1+r.Intn(3))
		ctx := NewVerifyContext()
		proof, ps := buildChain(ctx, tags)
		if proof == nil {
			return true
		}
		eve := principal.ChannelOf(principal.ChannelLocal, []byte("eve"))
		req := tag.ListOf(tag.Literal("fs"), tag.Literal("read"), tag.Literal("/a/x"))
		return Authorize(ctx, proof, eve, ps[len(ps)-1], req) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
