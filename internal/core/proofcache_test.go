package core

import (
	"testing"
	"time"

	"repro/internal/tag"
)

var cacheNow = time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)

func someHash(b byte) [32]byte {
	var h [32]byte
	h[0] = b
	return h
}

func TestProofCacheLookupStore(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(1)
	if c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("hit on empty cache")
	}
	c.Store(h, Forever, c.Epoch(), 0)
	if !c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("miss after store")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestProofCacheValidityWindow(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(2)
	c.Store(h, Until(cacheNow.Add(time.Hour)), c.Epoch(), 0)
	if !c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("miss inside validity window")
	}
	if c.Lookup(h, cacheNow.Add(2*time.Hour), ViewAny) {
		t.Fatal("hit outside validity window")
	}
	// The expired entry is lazily evicted.
	if c.Len() != 0 {
		t.Fatalf("Len = %d after expired lookup, want 0", c.Len())
	}
}

func TestProofCacheEpochBumpInvalidates(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(3)
	c.Store(h, Forever, c.Epoch(), 0)
	c.BumpEpoch()
	if c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("cached verdict survived an epoch bump")
	}
	// Storing after the bump works under the new epoch.
	c.Store(h, Forever, c.Epoch(), 0)
	if !c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("miss after re-store under new epoch")
	}
}

// TestProofCacheStaleEpochStoreDiscarded covers the CRL-lands-mid-
// verification race: a verdict computed under an epoch that has since
// been bumped must not enter the cache.
func TestProofCacheStaleEpochStoreDiscarded(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(4)
	epochBefore := c.Epoch()
	c.BumpEpoch() // CRL installed while "verification" was running
	c.Store(h, Forever, epochBefore, 0)
	if c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("verdict from a pre-bump verification was cached")
	}
}

// TestProofCacheViewIsolation: verdicts checked under one revocation
// view must not satisfy verifiers holding a different view, while
// non-enforcing verifiers (ViewAny) may reuse anything.
func TestProofCacheViewIsolation(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(5)
	c.Store(h, Forever, c.Epoch(), 7)
	if !c.Lookup(h, cacheNow, 7) {
		t.Fatal("same-view lookup missed")
	}
	if c.Lookup(h, cacheNow, 8) {
		t.Fatal("verdict crossed revocation views")
	}
	if !c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("non-enforcing lookup rejected a stricter verdict")
	}
}

// TestProofCacheViewNoDisplacement: an enforcing view's verdict keeps
// its slot against other views (no ping-pong eviction), while a
// view-0 verdict is upgraded in place by an enforcing one.
func TestProofCacheViewNoDisplacement(t *testing.T) {
	c := NewProofCache(16)
	h := someHash(6)
	c.Store(h, Forever, c.Epoch(), 7)
	c.Store(h, Forever, c.Epoch(), 8) // must not displace view 7
	if !c.Lookup(h, cacheNow, 7) {
		t.Fatal("view 7 verdict displaced by view 8 store")
	}
	c.Store(h, Forever, c.Epoch(), 0) // view 0 must not downgrade
	if !c.Lookup(h, cacheNow, 7) {
		t.Fatal("view 7 verdict downgraded by view-0 store")
	}

	h2 := someHash(9)
	c.Store(h2, Forever, c.Epoch(), 0)
	c.Store(h2, Forever, c.Epoch(), 7) // enforcing upgrade allowed
	if !c.Lookup(h2, cacheNow, 7) {
		t.Fatal("view-0 entry not upgraded by enforcing verdict")
	}
	if !c.Lookup(h2, cacheNow, ViewAny) {
		t.Fatal("upgraded entry lost for non-enforcing readers")
	}
}

func TestProofCacheSizeBound(t *testing.T) {
	const max = 32
	c := NewProofCache(max)
	for i := 0; i < 4*max; i++ {
		var h [32]byte
		h[0], h[1] = byte(i), byte(i>>8)+1
		c.Store(h, Forever, c.Epoch(), 0)
	}
	if c.Len() > max {
		t.Fatalf("Len = %d exceeds bound %d", c.Len(), max)
	}
}

// TestProofCacheEvictionPrefersExpired pins the eviction priority
// without sleeping: the injected clock says the short-lived entries
// are past their validity, so a full cache sheds exactly those and
// keeps the long-lived verdicts. Before the clock was injectable this
// test would have had to sleep real wall time across the window (and
// could flake near the boundary).
func TestProofCacheEvictionPrefersExpired(t *testing.T) {
	const max = 8
	c := NewProofCache(max)
	clock := cacheNow
	c.SetClock(func() time.Time { return clock })

	// Half the cache expires at +1m, half lives an hour.
	var keepers [][32]byte
	for i := 0; i < max; i++ {
		h := someHash(byte(i + 1))
		if i%2 == 0 {
			c.Store(h, Until(cacheNow.Add(time.Minute)), c.Epoch(), 0)
		} else {
			c.Store(h, Until(cacheNow.Add(time.Hour)), c.Epoch(), 0)
			keepers = append(keepers, h)
		}
	}
	// Advance the injected clock past the short window — no sleep —
	// and force an eviction by inserting into the full cache.
	clock = cacheNow.Add(2 * time.Minute)
	c.Store(someHash(100), Until(cacheNow.Add(time.Hour)), c.Epoch(), 0)
	for _, h := range keepers {
		if !c.Lookup(h, clock, ViewAny) {
			t.Fatal("eviction displaced a live long-lived verdict while expired entries existed")
		}
	}
	if !c.Lookup(someHash(100), clock, ViewAny) {
		t.Fatal("newly stored entry missing after eviction")
	}
}

// TestProofCacheEvict: targeted single-entry eviction (the
// directory→prover invalidation hook) drops exactly the named verdict.
func TestProofCacheEvict(t *testing.T) {
	c := NewProofCache(16)
	h, other := someHash(1), someHash(2)
	c.Store(h, Forever, c.Epoch(), 0)
	c.Store(other, Forever, c.Epoch(), 0)
	if !c.Evict(h) {
		t.Fatal("Evict reported absent for a stored entry")
	}
	if c.Evict(h) {
		t.Fatal("second Evict reported present")
	}
	if c.Lookup(h, cacheNow, ViewAny) {
		t.Fatal("evicted verdict still served")
	}
	if !c.Lookup(other, cacheNow, ViewAny) {
		t.Fatal("Evict disturbed an unrelated entry")
	}
}

func TestPortable(t *testing.T) {
	a := key("alice")
	refl := NewReflex(a)
	if !Portable(refl) {
		t.Fatal("reflexivity should be portable")
	}
	asm := Assume(SpeaksFor{Subject: a, Issuer: a, Tag: tag.All()})
	if Portable(asm) {
		t.Fatal("assumptions must not be portable")
	}
}

// TestVerifyMemoSharedCache checks that a context with a shared cache
// keeps assumption-bearing subtrees out of it, and that assumption
// verdicts never transfer between contexts.
func TestVerifyMemoSharedCache(t *testing.T) {
	cache := NewProofCache(16)
	a := key("alice")
	link := SpeaksFor{Subject: a, Issuer: a, Tag: tag.All()}
	asm := Assume(link)

	ctx := NewVerifyContext()
	ctx.Now = cacheNow
	ctx.Cache = cache
	ctx.Assume(link)
	if err := asm.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("assumption verdict entered the shared cache (len=%d)", cache.Len())
	}

	// A second context without the assumption must fail even though
	// the first verified: the verdict was context-local.
	ctx2 := NewVerifyContext()
	ctx2.Now = cacheNow
	ctx2.Cache = cache
	if err := asm.Verify(ctx2); err == nil {
		t.Fatal("assumption verified without being held")
	}
}

// TestVerifyMemoUnidentifiedRevokedBypassesCache: an ad-hoc Revoked
// callback without a revocation view must neither read nor write the
// shared cache.
func TestVerifyMemoUnidentifiedRevokedBypassesCache(t *testing.T) {
	cache := NewProofCache(16)
	a := key("alice")
	// A composite node (transitivity of two reflexivity axioms) so the
	// verification path runs through the memo machinery.
	tr, err := NewTransitivity(NewReflex(a), NewReflex(a))
	if err != nil {
		t.Fatal(err)
	}
	h := tr.Sexp().Hash()
	// Poison the cache as a different view would see it.
	cache.Store(h, Forever, cache.Epoch(), 0)

	ctx := NewVerifyContext()
	ctx.Now = cacheNow
	ctx.Cache = cache
	ctx.Revoked = func([]byte) bool { return false } // ad-hoc, no view
	hitsBefore, lenBefore := cache.Hits(), cache.Len()
	if err := tr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != hitsBefore {
		t.Fatal("enforcing verifier without a view read the shared cache")
	}
	if cache.Len() != lenBefore {
		t.Fatal("enforcing verifier without a view wrote the shared cache")
	}
}
