package core

import (
	"fmt"
	"time"

	"repro/internal/sexp"
)

// Proof is a structured proof of a SpeaksFor conclusion, a tree of
// axioms (leaves) and rule applications (interior nodes). Following
// section 4.3, every component maps one-to-one to an implementation
// object that verifies itself; proofs clearly exhibit their own
// meaning, and lemmas (subproofs) are extractable for reuse.
//
// Proof objects may be received from untrusted parties; their Verify
// methods are local code, so verification results are trustworthy.
type Proof interface {
	// Conclusion returns the statement this proof establishes.
	Conclusion() SpeaksFor
	// Verify checks the proof bottom-up in the given context. A nil
	// error means the conclusion holds for a reader who accepts the
	// context's assumptions.
	Verify(ctx *VerifyContext) error
	// Children returns immediate subproofs (lemma extraction).
	Children() []Proof
	// Sexp returns the wire form.
	Sexp() sexp.Sexp
}

// VerifyContext carries the verifier's environment: the clock, the
// local assumptions it has itself witnessed (channel bindings), the
// revocation state, and the verified-proof cache that makes repeated
// verification of a cached proof cheap (sections 4.3 and 5.1.1).
type VerifyContext struct {
	// Now is the verification time; the zero value means time.Now().
	Now time.Time

	// Assumptions holds statement Keys the verifier itself witnessed,
	// such as channel bindings established by its own runtime. An
	// Assumption leaf verifies only when its statement is present
	// here; assumptions never transfer between parties.
	Assumptions map[string]bool

	// Revoked, when non-nil, reports whether the certificate with the
	// given body hash has been revoked (CRL-style, section 4.1).
	Revoked func(certHash []byte) bool

	// Revalidate, when non-nil, performs SPKI one-time revalidation
	// for certificates that demand it: it must return nil only if the
	// issuer currently confirms the certificate.
	Revalidate func(certHash []byte, where string) error

	// Cache, when non-nil, is a shared verified-proof cache consulted
	// before (and populated after) signature-level verification of
	// portable subproofs. Pair it with a revocation source that bumps
	// the cache's epoch (cert.RevocationStore does this for the shared
	// cache automatically).
	Cache *ProofCache

	// RevocationView identifies the revocation state behind Revoked
	// (cert.RevocationStore.View supplies it; zero means unidentified).
	// Cached verdicts are shared only between verifiers with the same
	// view: a verdict recorded by a verifier that checks no CRLs (or
	// someone else's CRLs) must not let this verifier skip its own
	// revocation check. When Revoked is set but RevocationView is
	// zero — an ad-hoc callback with no epoch/view discipline — the
	// shared cache is bypassed entirely, which is slow but safe.
	RevocationView uint64

	// cache memoizes verified subproofs by canonical hash.
	cache map[[32]byte]error
}

// NewVerifyContext returns a context with an empty assumption set.
func NewVerifyContext() *VerifyContext {
	return &VerifyContext{Assumptions: make(map[string]bool)}
}

// At returns the verification time.
func (ctx *VerifyContext) At() time.Time {
	if ctx.Now.IsZero() {
		//sfvet:ignore clockcheck this zero-value fallback is the VerifyContext.Now injection seam itself
		return time.Now()
	}
	return ctx.Now
}

// Assume registers a locally witnessed statement.
func (ctx *VerifyContext) Assume(s SpeaksFor) {
	if ctx.Assumptions == nil {
		ctx.Assumptions = make(map[string]bool)
	}
	ctx.Assumptions[s.Key()] = true
}

// Holds reports whether the context carries the assumption.
func (ctx *VerifyContext) Holds(s SpeaksFor) bool {
	return ctx.Assumptions[s.Key()]
}

// verifyMemo wraps a node's verification with the per-context memo
// and, for portable subproofs, the shared verified-proof cache: a
// cached positive verdict short-circuits the whole subtree's
// signature checks (the fast path), and a fresh positive verdict on a
// portable subtree is published for later verifiers holding the same
// revocation view.
func (ctx *VerifyContext) verifyMemo(p Proof, f func() error) error {
	if ctx.cache == nil {
		ctx.cache = make(map[[32]byte]error)
	}
	h := p.Sexp().Hash()
	if err, ok := ctx.cache[h]; ok {
		return err
	}
	// An enforcing verifier with an unidentified revocation view gets
	// no shared cache: its verdicts cannot be labeled, and verdicts
	// labeled by others might skip its revocation check.
	enforcing := ctx.Revoked != nil
	shared := ctx.Cache
	if enforcing && ctx.RevocationView == 0 {
		shared = nil
	}
	if shared != nil {
		lookupView := ctx.RevocationView
		if !enforcing {
			lookupView = ViewAny
		}
		if shared.Lookup(h, ctx.At(), lookupView) {
			ctx.cache[h] = nil
			return nil
		}
	}
	// The epoch is captured before verification runs: a CRL installed
	// mid-verification bumps it, and Store then discards the verdict
	// instead of caching it against the new revocation state.
	var epoch uint64
	if shared != nil {
		epoch = shared.Epoch()
	}
	err := f()
	ctx.cache[h] = err
	if err == nil && shared != nil && Portable(p) && p.Conclusion().Validity.Contains(ctx.At()) {
		storeView := uint64(0)
		if enforcing {
			storeView = ctx.RevocationView
		}
		shared.Store(h, p.Conclusion().Validity, epoch, storeView)
	}
	return err
}

// VerifyCached exposes verifyMemo for proof leaves defined outside
// core (package cert's signed certificates); their Verify methods
// call it so leaf signature checks enjoy the same memoization and
// shared caching as the rule nodes.
func (ctx *VerifyContext) VerifyCached(p Proof, f func() error) error {
	return ctx.verifyMemo(p, f)
}

// PeekVerified reports whether p already holds a positive verdict in
// this context's memo or the shared cache, without verifying anything
// and without disturbing the cache's hit/miss counters. Batch
// verifiers (cert.VerifyBatch) consult it to decide which signatures
// still need checking; a false answer is always safe — the proof is
// simply verified normally.
func (ctx *VerifyContext) PeekVerified(p Proof) bool {
	h := p.Sexp().Hash()
	if err, ok := ctx.cache[h]; ok {
		return err == nil
	}
	enforcing := ctx.Revoked != nil
	shared := ctx.Cache
	if enforcing && ctx.RevocationView == 0 {
		shared = nil
	}
	if shared == nil {
		return false
	}
	view := ctx.RevocationView
	if !enforcing {
		view = ViewAny
	}
	return shared.peek(h, ctx.At(), view)
}

// CacheSize returns the number of memoized subproofs; exposed for the
// ablation benchmarks.
func (ctx *VerifyContext) CacheSize() int { return len(ctx.cache) }

// --- wire encoding ----------------------------------------------------

// leafDecoder decodes externally defined proof leaves (signed
// certificates live in package cert, which registers itself here to
// keep the dependency arrow pointing at core).
type leafDecoder func(e sexp.Sexp) (Proof, error)

var leafDecoders = map[string]leafDecoder{}

// RegisterLeafDecoder installs a decoder for (proof <kind> ...) forms
// defined outside core. Call from an init function.
func RegisterLeafDecoder(kind string, fn func(e sexp.Sexp) (Proof, error)) {
	leafDecoders[kind] = fn
}

// WireMemo caches the canonical wire span of a decoded proof node.
// Rule types embed it; ProofFromSexp seeds it after a successful
// decode, so re-encoding (and the per-node hashing verifyMemo does) is
// a span copy instead of a tree rebuild. Decoded proofs are immutable;
// locally built ones leave the memo empty and derive on demand.
type WireMemo struct {
	wire sexp.Sexp
}

// SetWire installs the memoized wire form.
func (w *WireMemo) SetWire(e sexp.Sexp) { w.wire = e }

// wireOr returns the memoized wire form, or builds one.
func (w *WireMemo) wireOr(build func() sexp.Sexp) sexp.Sexp {
	if w.wire != nil {
		return w.wire
	}
	return build()
}

// wireSetter is what ProofFromSexp feeds; *Cert manages its own memo
// (it also caches signing bytes and the body hash) and does not
// implement it.
type wireSetter interface{ SetWire(sexp.Sexp) }

// ProofFromSexp decodes any proof tree from its wire form.
func ProofFromSexp(e sexp.Sexp) (Proof, error) {
	if e == nil || e.Tag() != "proof" || e.Len() < 2 {
		return nil, fmt.Errorf("core: not a proof expression")
	}
	kind := e.Nth(1).Text()
	dec, ok := leafDecoders[kind]
	if !ok {
		if dec, ok = ruleDecoders[kind]; !ok {
			return nil, fmt.Errorf("core: unknown proof rule %q", kind)
		}
	}
	p, err := dec(e)
	if err != nil {
		return nil, err
	}
	if ws, ok := p.(wireSetter); ok {
		ws.SetWire(sexp.Raw(e.Canonical()))
	}
	return p, nil
}

// ParseProof decodes a proof from text (canonical, advanced, or
// transport encoding).
func ParseProof(b []byte) (Proof, error) {
	e, err := sexp.ParseOne(b)
	if err != nil {
		return nil, err
	}
	return ProofFromSexp(e)
}

// ParseProofPooled is ParseProof through a pooled parse arena. The
// intermediate expression tree is scratch: the typed decoders deep-
// copy everything they keep and SetWire receives a freshly encoded
// canonical form, so nothing of the arena (or of b) escapes into the
// returned proof and the arena goes back to the pool on return.
// Proof-submission hot paths (the gateway's Authorization header, the
// RMI accept path) use this to stop paying a full expression tree's
// allocations per request.
func ParseProofPooled(b []byte) (Proof, error) {
	a := sexp.GetArena()
	defer sexp.PutArena(a)
	e, err := a.ParseOne(b)
	if err != nil {
		return nil, err
	}
	return ProofFromSexp(e)
}

var ruleDecoders = map[string]leafDecoder{}

func registerRule(kind string, fn leafDecoder) {
	ruleDecoders[kind] = fn
}

// proofHeader builds (proof <kind> kids...).
func proofHeader(kind string, kids ...sexp.Sexp) sexp.Sexp {
	all := append([]sexp.Sexp{sexp.String("proof"), sexp.String(kind)}, kids...)
	return sexp.List(all...)
}

// childProofs decodes the trailing children of a rule node starting
// at index start.
func childProofs(e sexp.Sexp, start int) ([]Proof, error) {
	var out []Proof
	for i := start; i < e.Len(); i++ {
		p, err := ProofFromSexp(e.Nth(i))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
