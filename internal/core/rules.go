package core

import (
	"fmt"
	"strconv"

	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Rule names as they appear on the wire and in renderings.
const (
	RuleAssume       = "assume"
	RuleTransitivity = "transitivity"
	RuleRestrict     = "restrict"
	RuleNameMono     = "name-monotonicity"
	RuleHashIdent    = "hash-identity"
	RuleQuoteQuotee  = "quoting-quotee-mono"
	RuleQuoteQuoter  = "quoting-quoter-mono"
	RuleConjIntro    = "conjunction-intro"
	RuleConjProj     = "conjunction-projection"
	RuleReflex       = "reflexivity"
)

func init() {
	registerRule(RuleAssume, decodeAssumption)
	registerRule(RuleTransitivity, decodeTransitivity)
	registerRule(RuleRestrict, decodeRestrict)
	registerRule(RuleNameMono, decodeNameMono)
	registerRule(RuleHashIdent, decodeHashIdent)
	registerRule(RuleQuoteQuotee, decodeQuote(true))
	registerRule(RuleQuoteQuoter, decodeQuote(false))
	registerRule(RuleConjIntro, decodeConjIntro)
	registerRule(RuleConjProj, decodeConjProj)
	registerRule(RuleReflex, decodeReflex)
}

// --- assumption -------------------------------------------------------

// Assumption is a leaf whose statement the verifier must itself hold:
// typically channel bindings ("M => KCH", "KCH => K2") witnessed by
// the server runtime. Assumptions verify only inside a context that
// registered the same statement, so they cannot be replayed to a
// third party.
type Assumption struct {
	WireMemo
	S SpeaksFor
}

// Assume builds an assumption leaf.
func Assume(s SpeaksFor) *Assumption { return &Assumption{S: s} }

func (a *Assumption) Conclusion() SpeaksFor { return a.S }
func (a *Assumption) Children() []Proof     { return nil }
func (a *Assumption) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(a, func() error {
		if !ctx.Holds(a.S) {
			return fmt.Errorf("core: assumption not held by verifier: %s", a.S)
		}
		return nil
	})
}

// ContextDependent marks assumptions as unshareable: whether an
// assumption holds is a fact about one verifier's runtime, so its
// verdict must never enter a shared proof cache.
func (a *Assumption) ContextDependent() bool { return true }

func (a *Assumption) Sexp() sexp.Sexp {
	return a.wireOr(func() sexp.Sexp { return proofHeader(RuleAssume, a.S.Sexp()) })
}

func decodeAssumption(e sexp.Sexp) (Proof, error) {
	if e.Len() != 3 {
		return nil, fmt.Errorf("core: malformed assume proof")
	}
	s, err := SpeaksForFromSexp(e.Nth(2))
	if err != nil {
		return nil, err
	}
	return Assume(s), nil
}

// --- transitivity -----------------------------------------------------

// Transitivity composes A =T1=> B and B =T2=> C into
// A =T1∩T2=> C over the intersected validity window.
type Transitivity struct {
	WireMemo
	Left, Right Proof // Left: A=>B, Right: B=>C
	concl       SpeaksFor
}

// NewTransitivity links two proofs through their shared middle
// principal.
func NewTransitivity(left, right Proof) (*Transitivity, error) {
	lc, rc := left.Conclusion(), right.Conclusion()
	if !principal.Equal(lc.Issuer, rc.Subject) {
		return nil, fmt.Errorf("core: transitivity mismatch: %s vs %s", lc.Issuer, rc.Subject)
	}
	t, ok := tag.Intersect(lc.Tag, rc.Tag)
	if !ok {
		return nil, fmt.Errorf("core: transitivity: empty tag intersection")
	}
	v, ok := lc.Validity.Intersect(rc.Validity)
	if !ok {
		return nil, fmt.Errorf("core: transitivity: empty validity intersection")
	}
	return &Transitivity{
		Left: left, Right: right,
		concl: SpeaksFor{Subject: lc.Subject, Issuer: rc.Issuer, Tag: t, Validity: v},
	}, nil
}

func (t *Transitivity) Conclusion() SpeaksFor { return t.concl }
func (t *Transitivity) Children() []Proof     { return []Proof{t.Left, t.Right} }
func (t *Transitivity) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(t, func() error {
		if err := t.Left.Verify(ctx); err != nil {
			return err
		}
		return t.Right.Verify(ctx)
	})
}
func (t *Transitivity) Sexp() sexp.Sexp {
	return t.wireOr(func() sexp.Sexp {
		return proofHeader(RuleTransitivity, t.Left.Sexp(), t.Right.Sexp())
	})
}

func decodeTransitivity(e sexp.Sexp) (Proof, error) {
	kids, err := childProofs(e, 2)
	if err != nil {
		return nil, err
	}
	if len(kids) != 2 {
		return nil, fmt.Errorf("core: transitivity wants 2 children, got %d", len(kids))
	}
	return NewTransitivity(kids[0], kids[1])
}

// --- restriction (monotonicity) ----------------------------------------

// Restrict weakens a conclusion to a narrower tag and/or validity
// window; sound because the original covers the weaker statement.
type Restrict struct {
	WireMemo
	Child Proof
	concl SpeaksFor
}

// NewRestrict narrows the child's conclusion. A zero validity keeps
// the child's window.
func NewRestrict(child Proof, to tag.Tag, v Validity) (*Restrict, error) {
	c := child.Conclusion()
	if !tag.Covers(c.Tag, to) {
		return nil, fmt.Errorf("core: restrict: %s does not cover %s", c.Tag, to)
	}
	if v == (Validity{}) {
		v = c.Validity
	} else if !c.Validity.Covers(v) {
		return nil, fmt.Errorf("core: restrict: validity %s does not cover %s", c.Validity, v)
	}
	return &Restrict{
		Child: child,
		concl: SpeaksFor{Subject: c.Subject, Issuer: c.Issuer, Tag: to, Validity: v},
	}, nil
}

func (r *Restrict) Conclusion() SpeaksFor { return r.concl }
func (r *Restrict) Children() []Proof     { return []Proof{r.Child} }
func (r *Restrict) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(r, func() error { return r.Child.Verify(ctx) })
}
func (r *Restrict) Sexp() sexp.Sexp {
	return r.wireOr(func() sexp.Sexp {
		kids := []sexp.Sexp{r.concl.Tag.Sexp()}
		if v := r.concl.Validity.Sexp(); v != nil {
			kids = append(kids, v)
		}
		kids = append(kids, r.Child.Sexp())
		return proofHeader(RuleRestrict, kids...)
	})
}

func decodeRestrict(e sexp.Sexp) (Proof, error) {
	if e.Len() < 4 {
		return nil, fmt.Errorf("core: malformed restrict proof")
	}
	to, err := tag.FromSexp(e.Nth(2))
	if err != nil {
		return nil, err
	}
	i := 3
	var v Validity
	if e.Nth(i).Tag() == "valid" {
		if v, err = ValidityFromSexp(e.Nth(i)); err != nil {
			return nil, err
		}
		i++
	}
	if i != e.Len()-1 {
		return nil, fmt.Errorf("core: malformed restrict proof")
	}
	child, err := ProofFromSexp(e.Nth(i))
	if err != nil {
		return nil, err
	}
	return NewRestrict(child, to, v)
}

// --- name monotonicity --------------------------------------------------

// NameMono lifts A =T=> B to A·N =T=> B·N: if A speaks for B, then
// A's binding for a name speaks for B's binding for the same name
// (Figure 1's "name-monotonicity" step, HKC·N => KC·N).
type NameMono struct {
	WireMemo
	Child Proof
	Path  []string
	concl SpeaksFor
}

// NewNameMono extends both ends of the child's conclusion by a name
// path.
func NewNameMono(child Proof, path ...string) (*NameMono, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("core: name-monotonicity wants a nonempty path")
	}
	c := child.Conclusion()
	return &NameMono{
		Child: child, Path: path,
		concl: SpeaksFor{
			Subject:  extendName(c.Subject, path),
			Issuer:   extendName(c.Issuer, path),
			Tag:      c.Tag,
			Validity: c.Validity,
		},
	}, nil
}

// extendName appends a path to a principal, flattening nested names.
func extendName(p principal.Principal, path []string) principal.Principal {
	if n, ok := p.(principal.Name); ok {
		return principal.Name{Base: n.Base, Path: append(append([]string(nil), n.Path...), path...)}
	}
	return principal.NameOf(p, path...)
}

func (n *NameMono) Conclusion() SpeaksFor { return n.concl }
func (n *NameMono) Children() []Proof     { return []Proof{n.Child} }
func (n *NameMono) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(n, func() error { return n.Child.Verify(ctx) })
}
func (n *NameMono) Sexp() sexp.Sexp {
	return n.wireOr(func() sexp.Sexp {
		kids := []sexp.Sexp{sexp.String("path")}
		for _, p := range n.Path {
			kids = append(kids, sexp.String(p))
		}
		return proofHeader(RuleNameMono, sexp.List(kids...), n.Child.Sexp())
	})
}

func decodeNameMono(e sexp.Sexp) (Proof, error) {
	if e.Len() != 4 || e.Nth(2).Tag() != "path" {
		return nil, fmt.Errorf("core: malformed name-monotonicity proof")
	}
	var path []string
	pe := e.Nth(2)
	for i := 1; i < pe.Len(); i++ {
		if !pe.Nth(i).IsAtom() {
			return nil, fmt.Errorf("core: name path element not an atom")
		}
		path = append(path, pe.Nth(i).Text())
	}
	child, err := ProofFromSexp(e.Nth(3))
	if err != nil {
		return nil, err
	}
	return NewNameMono(child, path...)
}

// --- hash identity --------------------------------------------------------

// HashIdent is the axiom H(K) <=> K: a hash principal and the key it
// names speak for each other. Verification recomputes the hash from
// the embedded key, so the leaf is self-certifying.
type HashIdent struct {
	WireMemo
	Pub     sfkey.PublicKey
	Reverse bool // false: H(K) => K; true: K => H(K)
}

// NewHashIdent builds the forward axiom H(K) => K.
func NewHashIdent(pub sfkey.PublicKey) *HashIdent { return &HashIdent{Pub: pub} }

// NewHashIdentReverse builds K => H(K).
func NewHashIdentReverse(pub sfkey.PublicKey) *HashIdent {
	return &HashIdent{Pub: pub, Reverse: true}
}

func (h *HashIdent) Conclusion() SpeaksFor {
	k := principal.KeyOf(h.Pub)
	hp := principal.HashOfKey(h.Pub)
	if h.Reverse {
		return SpeaksFor{Subject: k, Issuer: hp, Tag: tag.All()}
	}
	return SpeaksFor{Subject: hp, Issuer: k, Tag: tag.All()}
}
func (h *HashIdent) Children() []Proof { return nil }
func (h *HashIdent) Verify(ctx *VerifyContext) error {
	// Correct by construction: both ends derive from the same key.
	return nil
}
func (h *HashIdent) Sexp() sexp.Sexp {
	return h.wireOr(func() sexp.Sexp {
		dir := "forward"
		if h.Reverse {
			dir = "reverse"
		}
		return proofHeader(RuleHashIdent, sexp.String(dir), h.Pub.Sexp())
	})
}

func decodeHashIdent(e sexp.Sexp) (Proof, error) {
	if e.Len() != 4 || !e.Nth(2).IsAtom() {
		return nil, fmt.Errorf("core: malformed hash-identity proof")
	}
	pub, err := sfkey.PublicFromSexp(e.Nth(3))
	if err != nil {
		return nil, err
	}
	switch e.Nth(2).Text() {
	case "forward":
		return NewHashIdent(pub), nil
	case "reverse":
		return NewHashIdentReverse(pub), nil
	}
	return nil, fmt.Errorf("core: bad hash-identity direction %q", e.Nth(2).Text())
}

// --- quoting monotonicity ----------------------------------------------

// QuoteMono lifts A =T=> B into quoting principals: with a fixed
// quoter Q, Q|A =T=> Q|B (Quotee true); with a fixed quotee Q,
// A|Q =T=> B|Q (Quotee false). The gateway of section 6.3 uses the
// quoter form to turn "channel speaks for gateway key" into "channel
// quoting client speaks for gateway-key quoting client".
type QuoteMono struct {
	WireMemo
	Child  Proof
	Fixed  principal.Principal
	Quotee bool
	concl  SpeaksFor
}

// NewQuoteQuoteeMono builds Q|A => Q|B from A => B with fixed quoter Q.
func NewQuoteQuoteeMono(quoter principal.Principal, child Proof) *QuoteMono {
	c := child.Conclusion()
	return &QuoteMono{
		Child: child, Fixed: quoter, Quotee: true,
		concl: SpeaksFor{
			Subject:  principal.QuoteOf(quoter, c.Subject),
			Issuer:   principal.QuoteOf(quoter, c.Issuer),
			Tag:      c.Tag,
			Validity: c.Validity,
		},
	}
}

// NewQuoteQuoterMono builds A|Q => B|Q from A => B with fixed quotee Q.
func NewQuoteQuoterMono(quotee principal.Principal, child Proof) *QuoteMono {
	c := child.Conclusion()
	return &QuoteMono{
		Child: child, Fixed: quotee, Quotee: false,
		concl: SpeaksFor{
			Subject:  principal.QuoteOf(c.Subject, quotee),
			Issuer:   principal.QuoteOf(c.Issuer, quotee),
			Tag:      c.Tag,
			Validity: c.Validity,
		},
	}
}

func (q *QuoteMono) Conclusion() SpeaksFor { return q.concl }
func (q *QuoteMono) Children() []Proof     { return []Proof{q.Child} }
func (q *QuoteMono) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(q, func() error { return q.Child.Verify(ctx) })
}
func (q *QuoteMono) Sexp() sexp.Sexp {
	return q.wireOr(func() sexp.Sexp {
		kind := RuleQuoteQuoter
		if q.Quotee {
			kind = RuleQuoteQuotee
		}
		return proofHeader(kind, q.Fixed.Sexp(), q.Child.Sexp())
	})
}

func decodeQuote(quotee bool) leafDecoder {
	return func(e sexp.Sexp) (Proof, error) {
		if e.Len() != 4 {
			return nil, fmt.Errorf("core: malformed quoting proof")
		}
		fixed, err := principal.FromSexp(e.Nth(2))
		if err != nil {
			return nil, err
		}
		child, err := ProofFromSexp(e.Nth(3))
		if err != nil {
			return nil, err
		}
		if quotee {
			return NewQuoteQuoteeMono(fixed, child), nil
		}
		return NewQuoteQuoterMono(fixed, child), nil
	}
}

// --- conjunction -----------------------------------------------------------

// ConjIntro derives X => (k-of-n P1..Pn) from proofs X => Pi for at
// least k distinct parts. With k = n this is the conjunction used by
// the disk-block example of section 2.3.
type ConjIntro struct {
	WireMemo
	Target principal.Conj
	Parts  []Proof
	concl  SpeaksFor
}

// NewConjIntro checks that the part proofs share a subject and cover
// at least K distinct members of the target.
func NewConjIntro(target principal.Conj, parts []Proof) (*ConjIntro, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: conjunction-intro wants at least one part proof")
	}
	k := target.K
	if k == 0 {
		k = len(target.Parts)
	}
	members := map[string]bool{}
	for _, p := range target.Parts {
		members[p.Key()] = true
	}
	subject := parts[0].Conclusion().Subject
	covered := map[string]bool{}
	t := tag.All()
	v := Forever
	for _, p := range parts {
		c := p.Conclusion()
		if !principal.Equal(c.Subject, subject) {
			return nil, fmt.Errorf("core: conjunction-intro: subjects differ: %s vs %s", c.Subject, subject)
		}
		if !members[c.Issuer.Key()] {
			return nil, fmt.Errorf("core: conjunction-intro: %s is not a member of %s", c.Issuer, target)
		}
		covered[c.Issuer.Key()] = true
		var ok bool
		if t, ok = tag.Intersect(t, c.Tag); !ok {
			return nil, fmt.Errorf("core: conjunction-intro: empty tag intersection")
		}
		if v, ok = v.Intersect(c.Validity); !ok {
			return nil, fmt.Errorf("core: conjunction-intro: empty validity intersection")
		}
	}
	if len(covered) < k {
		return nil, fmt.Errorf("core: conjunction-intro: %d of %d required parts proven", len(covered), k)
	}
	return &ConjIntro{
		Target: target, Parts: parts,
		concl: SpeaksFor{Subject: subject, Issuer: target, Tag: t, Validity: v},
	}, nil
}

func (c *ConjIntro) Conclusion() SpeaksFor { return c.concl }
func (c *ConjIntro) Children() []Proof     { return c.Parts }
func (c *ConjIntro) Verify(ctx *VerifyContext) error {
	return ctx.verifyMemo(c, func() error {
		for _, p := range c.Parts {
			if err := p.Verify(ctx); err != nil {
				return err
			}
		}
		return nil
	})
}
func (c *ConjIntro) Sexp() sexp.Sexp {
	return c.wireOr(func() sexp.Sexp {
		kids := []sexp.Sexp{c.Target.Sexp()}
		for _, p := range c.Parts {
			kids = append(kids, p.Sexp())
		}
		return proofHeader(RuleConjIntro, kids...)
	})
}

func decodeConjIntro(e sexp.Sexp) (Proof, error) {
	if e.Len() < 4 {
		return nil, fmt.Errorf("core: malformed conjunction-intro proof")
	}
	tp, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, err
	}
	conj, ok := tp.(principal.Conj)
	if !ok {
		return nil, fmt.Errorf("core: conjunction-intro target is not a conjunction")
	}
	kids, err := childProofs(e, 3)
	if err != nil {
		return nil, err
	}
	return NewConjIntro(conj, kids)
}

// ConjProj is the projection axiom A∧B => A, sound only for full
// conjunctions (everything all parts say, each part says).
type ConjProj struct {
	WireMemo
	C     principal.Conj
	Index int
}

// NewConjProj projects a member out of a full conjunction.
func NewConjProj(c principal.Conj, index int) (*ConjProj, error) {
	if !c.IsFullConjunction() {
		return nil, fmt.Errorf("core: conjunction-projection unsound for %d-of-%d threshold", c.K, len(c.Parts))
	}
	if index < 0 || index >= len(c.Parts) {
		return nil, fmt.Errorf("core: conjunction-projection index %d out of range", index)
	}
	return &ConjProj{C: c, Index: index}, nil
}

func (c *ConjProj) Conclusion() SpeaksFor {
	return SpeaksFor{Subject: c.C, Issuer: c.C.Parts[c.Index], Tag: tag.All()}
}
func (c *ConjProj) Children() []Proof               { return nil }
func (c *ConjProj) Verify(ctx *VerifyContext) error { return nil }
func (c *ConjProj) Sexp() sexp.Sexp {
	return c.wireOr(func() sexp.Sexp {
		return proofHeader(RuleConjProj, c.C.Sexp(), sexp.String(strconv.Itoa(c.Index)))
	})
}

func decodeConjProj(e sexp.Sexp) (Proof, error) {
	if e.Len() != 4 || !e.Nth(3).IsAtom() {
		return nil, fmt.Errorf("core: malformed conjunction-projection proof")
	}
	tp, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, err
	}
	conj, ok := tp.(principal.Conj)
	if !ok {
		return nil, fmt.Errorf("core: conjunction-projection target is not a conjunction")
	}
	idx, err := strconv.Atoi(e.Nth(3).Text())
	if err != nil {
		return nil, fmt.Errorf("core: conjunction-projection index: %w", err)
	}
	return NewConjProj(conj, idx)
}

// --- reflexivity -------------------------------------------------------------

// Reflex is the axiom A => A.
type Reflex struct {
	WireMemo
	P principal.Principal
}

// NewReflex builds the trivial self-proof.
func NewReflex(p principal.Principal) *Reflex { return &Reflex{P: p} }

func (r *Reflex) Conclusion() SpeaksFor {
	return SpeaksFor{Subject: r.P, Issuer: r.P, Tag: tag.All()}
}
func (r *Reflex) Children() []Proof               { return nil }
func (r *Reflex) Verify(ctx *VerifyContext) error { return nil }
func (r *Reflex) Sexp() sexp.Sexp {
	return r.wireOr(func() sexp.Sexp { return proofHeader(RuleReflex, r.P.Sexp()) })
}

func decodeReflex(e sexp.Sexp) (Proof, error) {
	if e.Len() != 3 {
		return nil, fmt.Errorf("core: malformed reflexivity proof")
	}
	p, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, err
	}
	return NewReflex(p), nil
}
