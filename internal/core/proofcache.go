package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// ProofCache is a shared, digest-keyed cache of verified-proof
// verdicts: proof hash -> (verified, validity window, revocation
// epoch). It makes the warm authorization path cheap — a proof
// presented twice costs one map lookup instead of a chain of
// signature verifications — while staying sound:
//
//   - Only positive verdicts are cached. A negative verdict can be
//     context-local (a missing assumption, a revalidator outage) and
//     must not condemn the proof for other verifiers.
//   - Only portable proofs are cached (see Portable): subtrees whose
//     verdict depends on verifier-local state — assumption leaves,
//     certificates demanding one-time revalidation — never enter the
//     shared cache.
//   - Every entry records the revocation epoch at verification time.
//     cert.RevocationStore bumps the cache epoch whenever a CRL is
//     installed, so cached verdicts die with their certificates; the
//     next presentation re-verifies against the new revocation state.
//   - Every entry carries the proof conclusion's validity window and
//     is ignored (and lazily evicted) outside it.
//
// The zero value is not usable; construct with NewProofCache. All
// methods are safe for concurrent use.
type ProofCache struct {
	mu      sync.RWMutex
	entries map[[32]byte]proofCacheEntry
	max     int
	clock   func() time.Time // nil means time.Now; see SetClock

	epoch  atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
}

type proofCacheEntry struct {
	validity Validity
	epoch    uint64
	view     uint64 // revocation view the verdict was checked under
}

// ViewAny, passed to Lookup, matches entries recorded under any
// revocation view. Only verifiers that enforce no revocation state
// may use it: a verdict checked under some store's CRLs is at least
// as strict as a bare signature check, never less.
const ViewAny = ^uint64(0)

// DefaultProofCacheSize bounds the process-wide shared cache. A cache
// entry is a 32-byte key plus a few words (~100 bytes with map
// overhead), so the default costs a few megabytes. It is sized for the
// bulk paths, not just request traffic: a WAL replay or gossip
// catch-up re-verifies an entire directory's working set, and a cache
// smaller than that set thrashes — the 10k-certificate replay
// benchmark went signature-bound (every lookup a miss) under the old
// 8192-entry bound.
const DefaultProofCacheSize = 32768

// NewProofCache returns an empty cache holding at most max entries
// (DefaultProofCacheSize when max <= 0).
func NewProofCache(max int) *ProofCache {
	if max <= 0 {
		max = DefaultProofCacheSize
	}
	return &ProofCache{entries: make(map[[32]byte]proofCacheEntry), max: max}
}

// SetClock injects the cache's notion of now (nil restores time.Now).
// The rest of verification threads now explicitly through contexts and
// Lookup; the clock only feeds eviction's validity test, so tests can
// park entries on either side of a window instead of sleeping across
// it. Set before the cache takes traffic.
func (c *ProofCache) SetClock(clock func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
}

// now reads the injected clock; callers hold at least a read lock.
func (c *ProofCache) now() time.Time {
	if c.clock != nil {
		return c.clock()
	}
	//sfvet:ignore clockcheck this nil-clock fallback is the SetClock injection seam itself
	return time.Now()
}

var sharedProofCache = NewProofCache(0)

// SharedProofCache returns the process-wide verified-proof cache that
// the gateway, HTTP, RMI, prover, and certificate-directory layers
// share by default. Revocation stores bump its epoch automatically.
func SharedProofCache() *ProofCache { return sharedProofCache }

// Lookup reports whether the proof with the given hash has a cached
// positive verdict usable at time now under the current epoch and
// the given revocation view (ViewAny for verifiers enforcing no
// revocation state). Stale, expired, or wrong-view entries are
// misses (stale and expired ones are dropped).
func (c *ProofCache) Lookup(h [32]byte, now time.Time, view uint64) bool {
	c.mu.RLock()
	e, ok := c.entries[h]
	c.mu.RUnlock()
	if ok && e.epoch == c.epoch.Load() && e.validity.Contains(now) {
		if view == ViewAny || e.view == view {
			c.hits.Add(1)
			return true
		}
		c.misses.Add(1)
		return false
	}
	if ok {
		c.mu.Lock()
		// Re-check under the write lock; a concurrent Store after a
		// bump may have refreshed the entry.
		if e2, still := c.entries[h]; still && (e2.epoch != c.epoch.Load() || !e2.validity.Contains(now)) {
			delete(c.entries, h)
		}
		c.mu.Unlock()
	}
	c.misses.Add(1)
	return false
}

// peek is Lookup without side effects: no hit/miss counting, no lazy
// eviction. VerifyContext.PeekVerified uses it so batch planning does
// not distort the cache statistics the benchmarks read.
func (c *ProofCache) peek(h [32]byte, now time.Time, view uint64) bool {
	c.mu.RLock()
	e, ok := c.entries[h]
	c.mu.RUnlock()
	return ok && e.epoch == c.epoch.Load() && e.validity.Contains(now) &&
		(view == ViewAny || e.view == view)
}

// Store records a positive verdict for the proof hash, valid within v
// as checked under revocation view (0 for none) at the given epoch.
// Callers must capture the epoch BEFORE running the verification the
// verdict summarizes: if a CRL lands mid-verification, the bump makes
// the passed epoch stale and the verdict is discarded rather than
// cached against the new revocation state. When the cache is full it
// evicts stale entries first, then arbitrary ones: the cache is a
// performance device, and dropping an entry only costs a
// re-verification.
func (c *ProofCache) Store(h [32]byte, v Validity, epoch, view uint64) {
	if epoch != c.epoch.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[h]; ok {
		// A hash holds one entry. An entry vouched for by an enforcing
		// view is never displaced by a different view: view-0 readers
		// can use it anyway (ViewAny), and two enforcing verifiers
		// with different stores would otherwise ping-pong-evict each
		// other's verdicts (the later one stays on its cold path
		// instead). A view-0 entry, by contrast, is upgraded in place
		// by any enforcing verdict — strictly stronger. Expired
		// entries are replaced by the lazy eviction in Lookup.
		if old.epoch == epoch && old.view != 0 && old.view != view {
			return
		}
	} else if len(c.entries) >= c.max {
		c.evictLocked()
	}
	c.entries[h] = proofCacheEntry{validity: v, epoch: epoch, view: view}
}

// evictLocked frees room for one insertion: stale-epoch and
// validity-expired entries go first (per-request proof verdicts are
// never looked up again and would otherwise crowd out the hot
// delegation verdicts), then an arbitrary quarter of the map.
func (c *ProofCache) evictLocked() {
	epoch := c.epoch.Load()
	now := c.now()
	for h, e := range c.entries {
		if e.epoch != epoch || !e.validity.Contains(now) {
			delete(c.entries, h)
		}
	}
	if len(c.entries) < c.max {
		return
	}
	drop := c.max / 4
	if drop < 1 {
		drop = 1
	}
	for h := range c.entries {
		delete(c.entries, h)
		if drop--; drop <= 0 {
			break
		}
	}
}

// Evict drops the single cached verdict for the given proof hash,
// reporting whether one was present. This is the targeted complement
// to BumpEpoch: a directory invalidation event names the certificates
// it voids, so a subscriber (prover.Subscription) can kill exactly the
// verdicts resting on them without flushing the whole cache.
func (c *ProofCache) Evict(h [32]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[h]; !ok {
		return false
	}
	delete(c.entries, h)
	return true
}

// BumpEpoch advances the revocation epoch, invalidating every cached
// verdict at once. Revocation is rare and correctness-critical;
// re-verifying the hot set after a CRL costs milliseconds, while a
// finer-grained invalidation (per-cert dependency tracking) would tax
// every insertion on the hot path.
func (c *ProofCache) BumpEpoch() { c.epoch.Add(1) }

// Epoch returns the current revocation epoch.
func (c *ProofCache) Epoch() uint64 { return c.epoch.Load() }

// Len returns the number of cached verdicts (including any not yet
// lazily evicted).
func (c *ProofCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Hits and Misses report lookup counters; the benchmarks read them.
func (c *ProofCache) Hits() int64   { return c.hits.Load() }
func (c *ProofCache) Misses() int64 { return c.misses.Load() }

// Reset drops every entry and counter but keeps the epoch;
// measurement harnesses use it to isolate cold paths.
func (c *ProofCache) Reset() {
	c.mu.Lock()
	c.entries = make(map[[32]byte]proofCacheEntry)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// EpochContext holds a long-lived VerifyContext for servers that
// memoize verification across requests: the context's local memo is
// the warm path, and it is discarded whenever the proof cache's
// revocation epoch advances so no stale verdict survives a CRL. Not
// safe for concurrent use; callers guard it with their own lock.
type EpochContext struct {
	ctx   *VerifyContext
	epoch uint64
}

// Refresh returns the held context, rebuilt if the cache's epoch has
// advanced (or on first use), with the cache installed. The caller
// stamps Now/Revoked/Revalidate/RevocationView afterwards.
func (e *EpochContext) Refresh(cache *ProofCache) *VerifyContext {
	if epoch := cache.Epoch(); e.ctx == nil || epoch != e.epoch {
		e.ctx = NewVerifyContext()
		e.epoch = epoch
	}
	e.ctx.Cache = cache
	return e.ctx
}

// Reset drops the held context; the next Refresh starts fresh.
func (e *EpochContext) Reset() { e.ctx = nil }

// ContextDependent is implemented by proof nodes whose verdict
// depends on verifier-local state beyond what the revocation epoch
// tracks: assumption leaves (held by one verifier only) and
// certificates demanding one-time revalidation (the revalidator may
// change its mind without a CRL). Such nodes keep their whole subtree
// out of the shared cache.
type ContextDependent interface {
	ContextDependent() bool
}

// Portable reports whether a proof's verdict is independent of any
// particular verifier: no node is context-dependent. Only portable
// proofs may enter a shared ProofCache.
func Portable(p Proof) bool {
	if cd, ok := p.(ContextDependent); ok && cd.ContextDependent() {
		return false
	}
	for _, c := range p.Children() {
		if !Portable(c) {
			return false
		}
	}
	return true
}
