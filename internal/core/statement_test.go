package core

import (
	"testing"
	"time"

	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func key(seed string) principal.Key {
	return principal.KeyOf(sfkey.FromSeed([]byte(seed)).Public())
}

var (
	t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	t1 = time.Date(2026, 6, 10, 0, 0, 0, 0, time.UTC)
	t2 = time.Date(2026, 6, 20, 0, 0, 0, 0, time.UTC)
	t3 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
)

func TestValidityContains(t *testing.T) {
	v := Between(t1, t2)
	if v.Contains(t0) || v.Contains(t3) {
		t.Error("window contains points outside")
	}
	if !v.Contains(t1) || !v.Contains(t2) {
		t.Error("window excludes endpoints")
	}
	if !Forever.Contains(t0) || !Forever.Contains(t3) {
		t.Error("Forever excludes points")
	}
	if !Until(t1).Contains(t0) || Until(t1).Contains(t2) {
		t.Error("Until semantics wrong")
	}
}

func TestValidityIntersect(t *testing.T) {
	a := Between(t0, t2)
	b := Between(t1, t3)
	got, ok := a.Intersect(b)
	if !ok || got != Between(t1, t2) {
		t.Fatalf("intersect = %v %v", got, ok)
	}
	if _, ok := Between(t0, t1).Intersect(Between(t2, t3)); ok {
		t.Error("disjoint windows intersected")
	}
	got, ok = Forever.Intersect(a)
	if !ok || got != a {
		t.Error("Forever should be identity")
	}
	// Touching windows share the instant.
	got, ok = Between(t0, t1).Intersect(Between(t1, t2))
	if !ok || got != Between(t1, t1) {
		t.Errorf("touching windows = %v %v", got, ok)
	}
}

func TestValidityCovers(t *testing.T) {
	if !Forever.Covers(Between(t1, t2)) {
		t.Error("Forever covers everything")
	}
	if Between(t1, t2).Covers(Forever) {
		t.Error("bounded cannot cover Forever")
	}
	if !Between(t0, t3).Covers(Between(t1, t2)) {
		t.Error("wide should cover narrow")
	}
	if Between(t1, t2).Covers(Between(t0, t3)) {
		t.Error("narrow cannot cover wide")
	}
}

func TestValiditySexpRoundTrip(t *testing.T) {
	for _, v := range []Validity{Forever, Until(t2), Between(t1, t2), {NotBefore: t1}} {
		e := v.Sexp()
		got, err := ValidityFromSexp(e)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !got.NotBefore.Equal(v.NotBefore) || !got.NotAfter.Equal(v.NotAfter) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestSpeaksForSexpRoundTrip(t *testing.T) {
	s := SpeaksFor{
		Subject:  key("bob"),
		Issuer:   principal.NameOf(key("alice"), "mail"),
		Tag:      tag.MustParse(`(tag (web (method GET)))`),
		Validity: Between(t1, t2),
	}
	got, err := SpeaksForFromSexp(s.Sexp())
	if err != nil {
		t.Fatal(err)
	}
	if !principal.Equal(got.Subject, s.Subject) || !principal.Equal(got.Issuer, s.Issuer) {
		t.Error("principals mangled")
	}
	if !got.Tag.Equal(s.Tag) {
		t.Error("tag mangled")
	}
	if !got.Validity.NotBefore.Equal(s.Validity.NotBefore) || !got.Validity.NotAfter.Equal(s.Validity.NotAfter) {
		t.Error("validity mangled")
	}
}

func TestSpeaksForEqualAndKey(t *testing.T) {
	a := SpeaksFor{Subject: key("s"), Issuer: key("i"), Tag: tag.All()}
	b := SpeaksFor{Subject: key("s"), Issuer: key("i"), Tag: tag.All()}
	c := SpeaksFor{Subject: key("s"), Issuer: key("x"), Tag: tag.All()}
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("identical statements differ")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different statements equal")
	}
}

func TestSpeaksForFromSexpRejectsMalformed(t *testing.T) {
	s := SpeaksFor{Subject: key("s"), Issuer: key("i"), Tag: tag.All()}
	good := s.Sexp()
	// Drop the tag.
	bad := sexp.List(good.Nth(0).Copy(), good.Nth(1).Copy(), good.Nth(2).Copy())
	if _, err := SpeaksForFromSexp(bad); err == nil {
		t.Error("accepted statement without tag")
	}
	if _, err := SpeaksForFromSexp(nil); err == nil {
		t.Error("accepted nil")
	}
}
