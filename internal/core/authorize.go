package core

import (
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/principal"
	"repro/internal/tag"
)

// AuthError reports why a request failed authorization; the RMI and
// HTTP layers translate it into their protocol-level challenges
// (SfNeedAuthorizationException, "401 Unauthorized").
type AuthError struct {
	// Issuer is the principal the requester must speak for.
	Issuer principal.Principal
	// MinTag is the minimum restriction set the delegation must allow.
	MinTag tag.Tag
	// Reason describes the failure.
	Reason string
}

func (e *AuthError) Error() string {
	return fmt.Sprintf("core: not authorized: %s (need to speak for %s regarding %s)",
		e.Reason, e.Issuer, e.MinTag)
}

// IsAuthError reports whether err is an authorization failure and
// returns it.
func IsAuthError(err error) (*AuthError, bool) {
	var ae *AuthError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// Authorize decides the end-to-end question of section 4: does proof
// p show that speaker speaks for issuer regarding the request, now?
//
//   - the proof must verify in ctx;
//   - its conclusion's subject must be the speaker that uttered the
//     request (channel, quoting channel, request hash, or MAC);
//   - its issuer must be the resource's controlling principal;
//   - its tag must cover the request tag;
//   - its validity window must contain the verification time (this is
//     the step that "automatically disregards expired conclusions").
func Authorize(ctx *VerifyContext, p Proof, speaker, issuer principal.Principal, request tag.Tag) error {
	fail := func(reason string) error {
		return &AuthError{Issuer: issuer, MinTag: request, Reason: reason}
	}
	if p == nil {
		return fail("no proof supplied")
	}
	c := p.Conclusion()
	if !principal.Equal(c.Subject, speaker) {
		return fail(fmt.Sprintf("proof subject %s is not the requester %s", c.Subject, speaker))
	}
	if !principal.Equal(c.Issuer, issuer) {
		return fail(fmt.Sprintf("proof issuer %s does not control the resource", c.Issuer))
	}
	if !tag.Covers(c.Tag, request) {
		return fail(fmt.Sprintf("restriction %s does not cover the request", c.Tag))
	}
	if !c.Validity.Contains(ctx.At()) {
		return fail(fmt.Sprintf("conclusion valid %s, not at %s", c.Validity, ctx.At().UTC()))
	}
	if err := p.Verify(ctx); err != nil {
		return fail(err.Error())
	}
	return nil
}

// Lemmas returns every subproof of p (including p itself) in
// depth-first order; the prover digests received proofs into these
// reusable components (section 4.4).
func Lemmas(p Proof) []Proof {
	var out []Proof
	var walk func(Proof)
	walk = func(q Proof) {
		out = append(out, q)
		for _, c := range q.Children() {
			walk(c)
		}
	}
	walk(p)
	return out
}

// LeafHashes returns the hex S-expression hashes of p's leaf lemmas —
// the signed certificates and signed requests the chain rests on, in
// depth-first order. These are the hashes directories store
// certificates under, so an audit record carrying them names the
// exact chain that justified a decision.
func LeafHashes(p Proof) []string {
	if p == nil {
		return nil
	}
	var out []string
	for _, l := range Lemmas(p) {
		if len(l.Children()) == 0 {
			h := l.Sexp().Hash()
			out = append(out, hex.EncodeToString(h[:]))
		}
	}
	return out
}
