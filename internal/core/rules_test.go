package core

import (
	"strings"
	"testing"

	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// assume returns an assumption proof and registers it in ctx.
func assume(ctx *VerifyContext, s SpeaksFor) Proof {
	ctx.Assume(s)
	return Assume(s)
}

func sf(sub, iss principal.Principal, t tag.Tag) SpeaksFor {
	return SpeaksFor{Subject: sub, Issuer: iss, Tag: t}
}

func TestAssumptionVerifiesOnlyWhenHeld(t *testing.T) {
	ctx := NewVerifyContext()
	s := sf(key("a"), key("b"), tag.All())
	p := Assume(s)
	if err := p.Verify(ctx); err == nil {
		t.Fatal("unheld assumption verified")
	}
	ctx2 := NewVerifyContext()
	ctx2.Assume(s)
	if err := p.Verify(ctx2); err != nil {
		t.Fatalf("held assumption failed: %v", err)
	}
}

func TestTransitivityChainsAndNarrows(t *testing.T) {
	ctx := NewVerifyContext()
	a, b, c := key("a"), key("b"), key("c")
	tab := tag.MustParse(`(tag (fs (* set read write)))`)
	tbc := tag.MustParse(`(tag (fs read))`)
	p1 := assume(ctx, sf(a, b, tab))
	p2 := assume(ctx, sf(b, c, tbc))
	tr, err := NewTransitivity(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	concl := tr.Conclusion()
	if !principal.Equal(concl.Subject, a) || !principal.Equal(concl.Issuer, c) {
		t.Fatalf("conclusion endpoints wrong: %s", concl)
	}
	if !tag.Covers(concl.Tag, tag.MustParse(`(tag (fs read))`)) {
		t.Error("intersection lost read")
	}
	if tag.Covers(concl.Tag, tag.MustParse(`(tag (fs write))`)) {
		t.Error("intersection kept write it should have dropped")
	}
	if err := tr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTransitivityRejectsMismatch(t *testing.T) {
	ctx := NewVerifyContext()
	p1 := assume(ctx, sf(key("a"), key("b"), tag.All()))
	p2 := assume(ctx, sf(key("x"), key("c"), tag.All()))
	if _, err := NewTransitivity(p1, p2); err == nil {
		t.Fatal("mismatched middle principal accepted")
	}
	p3 := assume(ctx, sf(key("b"), key("c"), tag.Literal("other")))
	p4 := assume(ctx, sf(key("a"), key("b"), tag.Literal("one")))
	if _, err := NewTransitivity(p4, p3); err == nil {
		t.Fatal("empty tag intersection accepted")
	}
}

func TestTransitivityValidityIntersection(t *testing.T) {
	ctx := NewVerifyContext()
	s1 := SpeaksFor{Subject: key("a"), Issuer: key("b"), Tag: tag.All(), Validity: Between(t0, t2)}
	s2 := SpeaksFor{Subject: key("b"), Issuer: key("c"), Tag: tag.All(), Validity: Between(t1, t3)}
	tr, err := NewTransitivity(assume(ctx, s1), assume(ctx, s2))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Conclusion().Validity != Between(t1, t2) {
		t.Fatalf("validity = %s", tr.Conclusion().Validity)
	}
	s3 := SpeaksFor{Subject: key("c"), Issuer: key("d"), Tag: tag.All(), Validity: Between(t3, t3)}
	if _, err := NewTransitivity(tr, assume(ctx, s3)); err == nil {
		t.Fatal("disjoint validity accepted")
	}
}

func TestRestrictNarrowsOnly(t *testing.T) {
	ctx := NewVerifyContext()
	wide := assume(ctx, sf(key("a"), key("b"), tag.MustParse(`(tag (fs (* set read write)))`)))
	narrow, err := NewRestrict(wide, tag.MustParse(`(tag (fs read))`), Validity{})
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRestrict(narrow, tag.MustParse(`(tag (fs write))`), Validity{}); err == nil {
		t.Fatal("broadening restrict accepted")
	}
	// Validity narrowing.
	dated := SpeaksFor{Subject: key("a"), Issuer: key("b"), Tag: tag.All(), Validity: Between(t0, t3)}
	p := assume(ctx, dated)
	if _, err := NewRestrict(p, tag.All(), Between(t1, t2)); err != nil {
		t.Fatalf("validity narrowing rejected: %v", err)
	}
	if _, err := NewRestrict(p, tag.All(), Between(t0.Add(-1e9), t3)); err == nil {
		t.Fatal("validity widening accepted")
	}
}

func TestNameMonoExtendsBothEnds(t *testing.T) {
	ctx := NewVerifyContext()
	p := assume(ctx, sf(key("hk"), key("k"), tag.All()))
	nm, err := NewNameMono(p, "N")
	if err != nil {
		t.Fatal(err)
	}
	c := nm.Conclusion()
	wantSub := principal.NameOf(key("hk"), "N")
	wantIss := principal.NameOf(key("k"), "N")
	if !principal.Equal(c.Subject, wantSub) || !principal.Equal(c.Issuer, wantIss) {
		t.Fatalf("conclusion = %s", c)
	}
	if err := nm.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	// Extending an existing name flattens the path.
	nm2, err := NewNameMono(nm, "M")
	if err != nil {
		t.Fatal(err)
	}
	sub := nm2.Conclusion().Subject.(principal.Name)
	if len(sub.Path) != 2 || sub.Path[0] != "N" || sub.Path[1] != "M" {
		t.Fatalf("path = %v", sub.Path)
	}
	if _, err := NewNameMono(p); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestHashIdent(t *testing.T) {
	pub := sfkey.FromSeed([]byte("hi")).Public()
	fwd := NewHashIdent(pub)
	c := fwd.Conclusion()
	if !principal.Equal(c.Subject, principal.HashOfKey(pub)) || !principal.Equal(c.Issuer, principal.KeyOf(pub)) {
		t.Fatalf("forward conclusion = %s", c)
	}
	rev := NewHashIdentReverse(pub)
	c = rev.Conclusion()
	if !principal.Equal(c.Issuer, principal.HashOfKey(pub)) || !principal.Equal(c.Subject, principal.KeyOf(pub)) {
		t.Fatalf("reverse conclusion = %s", c)
	}
	if err := fwd.Verify(NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
}

func TestQuoteMonotonicity(t *testing.T) {
	ctx := NewVerifyContext()
	g, a, b := key("gw"), key("a"), key("b")
	p := assume(ctx, sf(a, b, tag.Literal("t")))
	qe := NewQuoteQuoteeMono(g, p)
	c := qe.Conclusion()
	if !principal.Equal(c.Subject, principal.QuoteOf(g, a)) || !principal.Equal(c.Issuer, principal.QuoteOf(g, b)) {
		t.Fatalf("quotee mono conclusion = %s", c)
	}
	qr := NewQuoteQuoterMono(g, p)
	c = qr.Conclusion()
	if !principal.Equal(c.Subject, principal.QuoteOf(a, g)) || !principal.Equal(c.Issuer, principal.QuoteOf(b, g)) {
		t.Fatalf("quoter mono conclusion = %s", c)
	}
	if err := qe.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if err := qr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConjIntroAndProjection(t *testing.T) {
	ctx := NewVerifyContext()
	x, a, b := key("x"), key("alice"), key("fs")
	conj := principal.ConjOf(a, b)
	pa := assume(ctx, sf(x, a, tag.MustParse(`(tag (disk (* set read write)))`)))
	pb := assume(ctx, sf(x, b, tag.MustParse(`(tag (disk read))`)))
	ci, err := NewConjIntro(conj, []Proof{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	c := ci.Conclusion()
	if !principal.Equal(c.Subject, x) || !principal.Equal(c.Issuer, conj) {
		t.Fatalf("conj conclusion = %s", c)
	}
	if err := ci.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	// Missing one part of a full conjunction fails.
	if _, err := NewConjIntro(conj, []Proof{pa}); err == nil {
		t.Fatal("partial conjunction accepted")
	}
	// Threshold 1-of-2 succeeds with one part.
	th := principal.ThresholdOf(1, a, b)
	if _, err := NewConjIntro(th, []Proof{pa}); err != nil {
		t.Fatalf("threshold intro failed: %v", err)
	}
	// Projection.
	pj, err := NewConjProj(conj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !principal.Equal(pj.Conclusion().Subject, conj) {
		t.Fatal("projection subject wrong")
	}
	if _, err := NewConjProj(th, 0); err == nil {
		t.Fatal("projection out of threshold accepted")
	}
	if _, err := NewConjProj(conj, 5); err == nil {
		t.Fatal("projection index out of range accepted")
	}
}

func TestConjIntroRejectsForeignIssuerAndMixedSubjects(t *testing.T) {
	ctx := NewVerifyContext()
	x, a, b, z := key("x"), key("a"), key("b"), key("z")
	conj := principal.ConjOf(a, b)
	pa := assume(ctx, sf(x, a, tag.All()))
	pz := assume(ctx, sf(x, z, tag.All()))
	if _, err := NewConjIntro(conj, []Proof{pa, pz}); err == nil {
		t.Fatal("foreign issuer accepted")
	}
	pb2 := assume(ctx, sf(key("y"), b, tag.All()))
	if _, err := NewConjIntro(conj, []Proof{pa, pb2}); err == nil {
		t.Fatal("mixed subjects accepted")
	}
}

func TestReflex(t *testing.T) {
	p := NewReflex(key("r"))
	c := p.Conclusion()
	if !principal.Equal(c.Subject, c.Issuer) || !c.Tag.IsAll() {
		t.Fatalf("reflex conclusion = %s", c)
	}
	if err := p.Verify(NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
}

func TestProofWireRoundTrip(t *testing.T) {
	ctx := NewVerifyContext()
	a, b, c, g := key("a"), key("b"), key("c"), key("g")
	p1 := assume(ctx, sf(a, b, tag.MustParse(`(tag (fs (* set read write)))`)))
	p2 := assume(ctx, sf(b, c, tag.All()))
	tr, err := NewTransitivity(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRestrict(tr, tag.MustParse(`(tag (fs read))`), Validity{})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NewNameMono(rs, "inbox")
	if err != nil {
		t.Fatal(err)
	}
	qm := NewQuoteQuoteeMono(g, nm)
	pub := sfkey.FromSeed([]byte("wire")).Public()
	proofs := []Proof{
		p1, tr, rs, nm, qm,
		NewHashIdent(pub), NewHashIdentReverse(pub),
		NewReflex(a),
	}
	for _, p := range proofs {
		enc := p.Sexp()
		back, err := ProofFromSexp(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", enc, err)
		}
		if back.Conclusion().Key() != p.Conclusion().Key() {
			t.Errorf("conclusion changed across wire:\n  %s\n  %s",
				p.Conclusion(), back.Conclusion())
		}
		if err := back.Verify(ctx); err != nil {
			t.Errorf("decoded proof fails verification: %v", err)
		}
	}
}

func TestProofFromSexpRejectsHostileInput(t *testing.T) {
	bad := []string{
		`(notproof x)`,
		`(proof bogus-rule x)`,
		`(proof transitivity)`,
		`(proof transitivity (proof reflexivity (channel local |AA==|)))`,
		`(proof restrict (tag (*)))`,
		`(proof hash-identity sideways (channel local |AA==|))`,
		`(proof conjunction-projection (channel local |AA==|) 0)`,
		`(proof reflexivity)`,
	}
	for _, s := range bad {
		if _, err := ParseProof([]byte(s)); err == nil {
			t.Errorf("ParseProof(%s) succeeded, want error", s)
		}
	}
}

func TestForgedTransitivityRejectedAtDecode(t *testing.T) {
	// Hand-craft a transitivity whose middle principals do not match;
	// the decoder must refuse it.
	ctx := NewVerifyContext()
	p1 := assume(ctx, sf(key("a"), key("b"), tag.All()))
	p2 := assume(ctx, sf(key("x"), key("c"), tag.All()))
	forged := proofHeader(RuleTransitivity, p1.Sexp(), p2.Sexp())
	if _, err := ProofFromSexp(forged); err == nil {
		t.Fatal("forged transitivity decoded")
	}
}

func TestLemmasDepthFirst(t *testing.T) {
	ctx := NewVerifyContext()
	p1 := assume(ctx, sf(key("a"), key("b"), tag.All()))
	p2 := assume(ctx, sf(key("b"), key("c"), tag.All()))
	tr, _ := NewTransitivity(p1, p2)
	ls := Lemmas(tr)
	if len(ls) != 3 {
		t.Fatalf("lemmas = %d", len(ls))
	}
	if ls[0] != Proof(tr) || ls[1] != p1 || ls[2] != p2 {
		t.Fatal("lemma order wrong")
	}
}

func TestVerifyCache(t *testing.T) {
	ctx := NewVerifyContext()
	p1 := assume(ctx, sf(key("a"), key("b"), tag.All()))
	p2 := assume(ctx, sf(key("b"), key("c"), tag.All()))
	tr, _ := NewTransitivity(p1, p2)
	if err := tr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	n := ctx.CacheSize()
	if n == 0 {
		t.Fatal("cache empty after verification")
	}
	if err := tr.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.CacheSize() != n {
		t.Fatal("re-verification grew the cache")
	}
}

func TestAuthorize(t *testing.T) {
	ctx := NewVerifyContext()
	ctx.Now = t1
	ch, kc, ks := key("channel"), key("client"), key("server")
	grant := tag.MustParse(`(tag (web (method GET) (* prefix "/inbox/")))`)
	p1 := assume(ctx, SpeaksFor{Subject: ch, Issuer: kc, Tag: tag.All(), Validity: Between(t0, t2)})
	p2 := assume(ctx, SpeaksFor{Subject: kc, Issuer: ks, Tag: grant, Validity: Between(t0, t3)})
	proof, err := NewTransitivity(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	req := tag.MustParse(`(tag (web (method GET) "/inbox/7"))`)
	if err := Authorize(ctx, proof, ch, ks, req); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	// Wrong speaker.
	if err := Authorize(ctx, proof, key("eve"), ks, req); err == nil {
		t.Error("wrong speaker authorized")
	}
	// Wrong issuer.
	if err := Authorize(ctx, proof, ch, key("other"), req); err == nil {
		t.Error("wrong issuer authorized")
	}
	// Uncovered request.
	put := tag.MustParse(`(tag (web (method PUT) "/inbox/7"))`)
	if err := Authorize(ctx, proof, ch, ks, put); err == nil {
		t.Error("uncovered request authorized")
	}
	// Expired at verification time.
	late := NewVerifyContext()
	late.Now = t3
	late.Assumptions = ctx.Assumptions
	if err := Authorize(late, proof, ch, ks, req); err == nil {
		t.Error("expired conclusion authorized")
	}
	// AuthError carries the challenge parameters.
	err = Authorize(ctx, nil, ch, ks, req)
	ae, ok := IsAuthError(err)
	if !ok {
		t.Fatalf("expected AuthError, got %v", err)
	}
	if !principal.Equal(ae.Issuer, ks) || !ae.MinTag.Equal(req) {
		t.Error("AuthError challenge parameters wrong")
	}
	if !strings.Contains(ae.Error(), "not authorized") {
		t.Error("AuthError message")
	}
}

func TestAssumptionsDoNotTravel(t *testing.T) {
	// A proof built on a channel assumption verifies at the server
	// that witnessed the binding but at no other party.
	server := NewVerifyContext()
	s := sf(key("msg"), key("ch"), tag.All())
	p := assume(server, s)
	if err := p.Verify(server); err != nil {
		t.Fatal(err)
	}
	third := NewVerifyContext()
	if err := p.Verify(third); err == nil {
		t.Fatal("assumption verified at a third party")
	}
}
