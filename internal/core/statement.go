// Package core implements the paper's primary contribution: a compact
// logic of authority whose statements are restricted delegations
// ("B speaks for A regarding T", written B =T=> A) and whose proofs
// are structured, self-describing, independently verifiable objects
// (paper sections 3 and 4).
//
// A proof is not a bearer capability: it is a verifiable fact, and
// knowledge of a proof bestows no authority on an adversary. Authority
// flows only from controlling the principal at the subject end of the
// chain (a private key, a channel endpoint, a MAC secret).
//
// # The verified-proof cache
//
// Because proofs are self-describing and independently verifiable,
// their verdicts can be memoized: ProofCache maps a proof's canonical
// hash to a positive verdict, and every verifying layer (gateway,
// HTTP, RMI, directory publish) shares one process-wide instance
// (SharedProofCache). Soundness rests on four invariants, documented
// in detail on ProofCache and enforced by Lookup/Store:
//
//   - only positive verdicts are cached (a failure may be local to
//     one verifier and must not condemn the proof for others);
//   - only Portable proofs are cached (assumption leaves and
//     revalidation-demanding certificates keep their subtree out);
//   - every entry dies with the revocation epoch (bumped by
//     cert.RevocationStore on every CRL) and is scoped to the
//     revocation view it was checked under;
//   - every entry is unusable outside its conclusion's validity
//     window.
package core

import (
	"fmt"
	"time"

	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Validity is a statement's validity interval. Zero times mean
// unbounded at that end. Expiration is part of the restriction of a
// delegation (section 4.3), so each proof need be verified only once:
// matching a request against the conclusion automatically disregards
// expired statements.
type Validity struct {
	NotBefore time.Time
	NotAfter  time.Time
}

// Forever is the unbounded validity interval.
var Forever = Validity{}

// Until returns a validity from now-unbounded to the given expiry.
func Until(t time.Time) Validity { return Validity{NotAfter: t} }

// Between returns a bounded validity window.
func Between(from, to time.Time) Validity {
	return Validity{NotBefore: from, NotAfter: to}
}

// Contains reports whether t lies inside the window.
func (v Validity) Contains(t time.Time) bool {
	if !v.NotBefore.IsZero() && t.Before(v.NotBefore) {
		return false
	}
	if !v.NotAfter.IsZero() && t.After(v.NotAfter) {
		return false
	}
	return true
}

// Intersect returns the overlap of two windows and whether it is
// nonempty.
func (v Validity) Intersect(o Validity) (Validity, bool) {
	out := v
	if out.NotBefore.IsZero() || (!o.NotBefore.IsZero() && o.NotBefore.After(out.NotBefore)) {
		out.NotBefore = o.NotBefore
	}
	if out.NotAfter.IsZero() || (!o.NotAfter.IsZero() && o.NotAfter.Before(out.NotAfter)) {
		out.NotAfter = o.NotAfter
	}
	if !out.NotBefore.IsZero() && !out.NotAfter.IsZero() && out.NotAfter.Before(out.NotBefore) {
		return Validity{}, false
	}
	return out, true
}

// Covers reports whether v is at least as wide as o.
func (v Validity) Covers(o Validity) bool {
	i, ok := v.Intersect(o)
	return ok && i == o
}

// IsUnbounded reports whether the window has no limits.
func (v Validity) IsUnbounded() bool {
	return v.NotBefore.IsZero() && v.NotAfter.IsZero()
}

// Sexp encodes the window; nil for the unbounded window.
func (v Validity) Sexp() sexp.Sexp {
	if v.IsUnbounded() {
		return nil
	}
	kids := []sexp.Sexp{sexp.String("valid")}
	if !v.NotBefore.IsZero() {
		kids = append(kids, sexp.List(sexp.String("not-before"),
			sexp.String(v.NotBefore.UTC().Format(time.RFC3339Nano))))
	}
	if !v.NotAfter.IsZero() {
		kids = append(kids, sexp.List(sexp.String("not-after"),
			sexp.String(v.NotAfter.UTC().Format(time.RFC3339Nano))))
	}
	return sexp.List(kids...)
}

// ValidityFromSexp decodes a (valid ...) form; nil decodes to the
// unbounded window.
func ValidityFromSexp(e sexp.Sexp) (Validity, error) {
	var v Validity
	if e == nil {
		return v, nil
	}
	if e.Tag() != "valid" {
		return v, fmt.Errorf("core: not a (valid ...) form: %q", e.Tag())
	}
	for i := 1; i < e.Len(); i++ {
		c := e.Nth(i)
		if c.Len() != 2 || !c.Nth(1).IsAtom() {
			return v, fmt.Errorf("core: malformed validity bound")
		}
		t, err := time.Parse(time.RFC3339Nano, c.Nth(1).Text())
		if err != nil {
			return v, fmt.Errorf("core: bad validity time: %w", err)
		}
		switch c.Tag() {
		case "not-before":
			v.NotBefore = t
		case "not-after":
			v.NotAfter = t
		default:
			return v, fmt.Errorf("core: unknown validity bound %q", c.Tag())
		}
	}
	return v, nil
}

func (v Validity) String() string {
	if v.IsUnbounded() {
		return "[always]"
	}
	nb, na := "-inf", "+inf"
	if !v.NotBefore.IsZero() {
		nb = v.NotBefore.UTC().Format(time.RFC3339)
	}
	if !v.NotAfter.IsZero() {
		na = v.NotAfter.UTC().Format(time.RFC3339)
	}
	return "[" + nb + ", " + na + "]"
}

// SpeaksFor is the primary statement form: Subject =Tag=> Issuer
// within Validity. It means the issuer agrees with anything in the
// tag's set that the subject says; speaks-for captures delegation,
// regarding captures restriction.
type SpeaksFor struct {
	Subject  principal.Principal
	Issuer   principal.Principal
	Tag      tag.Tag
	Validity Validity
}

// Sexp encodes the statement.
func (s SpeaksFor) Sexp() sexp.Sexp {
	kids := []sexp.Sexp{
		sexp.String("speaks-for"),
		sexp.List(sexp.String("subject"), s.Subject.Sexp()),
		sexp.List(sexp.String("issuer"), s.Issuer.Sexp()),
		s.Tag.Sexp(),
	}
	if v := s.Validity.Sexp(); v != nil {
		kids = append(kids, v)
	}
	return sexp.List(kids...)
}

// SpeaksForFromSexp decodes a (speaks-for ...) form.
func SpeaksForFromSexp(e sexp.Sexp) (SpeaksFor, error) {
	var s SpeaksFor
	if e == nil || e.Tag() != "speaks-for" {
		return s, fmt.Errorf("core: not a speaks-for statement")
	}
	sub := e.Child("subject")
	iss := e.Child("issuer")
	tg := e.Child("tag")
	if sub == nil || iss == nil || tg == nil || sub.Len() != 2 || iss.Len() != 2 {
		return s, fmt.Errorf("core: speaks-for missing subject/issuer/tag")
	}
	var err error
	if s.Subject, err = principal.FromSexp(sub.Nth(1)); err != nil {
		return s, fmt.Errorf("core: subject: %w", err)
	}
	if s.Issuer, err = principal.FromSexp(iss.Nth(1)); err != nil {
		return s, fmt.Errorf("core: issuer: %w", err)
	}
	if s.Tag, err = tag.FromSexp(tg); err != nil {
		return s, fmt.Errorf("core: tag: %w", err)
	}
	if s.Validity, err = ValidityFromSexp(e.Child("valid")); err != nil {
		return s, err
	}
	return s, nil
}

// Equal reports structural equality of statements.
func (s SpeaksFor) Equal(o SpeaksFor) bool {
	return principal.Equal(s.Subject, o.Subject) &&
		principal.Equal(s.Issuer, o.Issuer) &&
		s.Tag.Equal(o.Tag) &&
		s.Validity == o.Validity
}

// Key returns a canonical map key for the statement.
func (s SpeaksFor) Key() string { return s.Sexp().Key() }

func (s SpeaksFor) String() string {
	return fmt.Sprintf("%s =%s=> %s %s", s.Subject, s.Tag, s.Issuer, s.Validity)
}
