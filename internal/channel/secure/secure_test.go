package secure

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
)

// pair establishes a channel over an in-memory transport.
func pair(t *testing.T, clientID, serverID *Identity) (*Conn, *Conn) {
	t.Helper()
	rawC, rawS := net.Pipe()
	var (
		wg     sync.WaitGroup
		cc, sc *Conn
		ce, se error
	)
	wg.Add(2)
	go func() { defer wg.Done(); cc, ce = Client(rawC, clientID) }()
	go func() { defer wg.Done(); sc, se = Server(rawS, serverID) }()
	wg.Wait()
	if ce != nil || se != nil {
		t.Fatalf("handshake: client=%v server=%v", ce, se)
	}
	return cc, sc
}

func TestHandshakeExchangesKeys(t *testing.T) {
	cid := IdentityFromSeed("client")
	sid := IdentityFromSeed("server")
	cc, sc := pair(t, cid, sid)
	defer cc.Close()
	if !cc.PeerKey().Equal(sid.Priv.Public()) {
		t.Error("client learned wrong server key")
	}
	if !sc.PeerKey().Equal(cid.Priv.Public()) {
		t.Error("server learned wrong client key")
	}
	if !cc.LocalKey().Equal(cid.Priv.Public()) {
		t.Error("client local key wrong")
	}
	if !bytes.Equal(cc.SessionID(), sc.SessionID()) {
		t.Error("session ids differ across ends")
	}
	if cc.Principal().Key() != sc.Principal().Key() {
		t.Error("channel principals differ across ends")
	}
	if cc.Kind() != "secure" {
		t.Errorf("kind = %q", cc.Kind())
	}
}

func TestRoundTripData(t *testing.T) {
	cc, sc := pair(t, IdentityFromSeed("c"), IdentityFromSeed("s"))
	defer cc.Close()
	msgs := [][]byte{
		[]byte("hello"),
		bytes.Repeat([]byte{0xAB}, 100000), // multi-frame read path
		[]byte(""),
		[]byte("final"),
	}
	go func() {
		for _, m := range msgs {
			if len(m) == 0 {
				continue
			}
			if _, err := cc.Write(m); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	for _, m := range msgs {
		if len(m) == 0 {
			continue
		}
		got := make([]byte, len(m))
		if _, err := io.ReadFull(sc, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, m) {
			t.Fatalf("message corrupted: %d bytes", len(m))
		}
	}
}

func TestBidirectional(t *testing.T) {
	cc, sc := pair(t, IdentityFromSeed("c"), IdentityFromSeed("s"))
	defer cc.Close()
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(sc, buf)
		sc.Write(append([]byte("re:"), buf...))
	}()
	cc.Write([]byte("ping"))
	got := make([]byte, 7)
	if _, err := io.ReadFull(cc, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "re:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	rawC, rawS := net.Pipe()
	// A middlebox that flips a bit in the first data record after the
	// handshake (handshake messages pass through intact).
	mitmC, mitmS := net.Pipe()
	go proxyFlippingRecord(rawS, mitmS)

	var wg sync.WaitGroup
	var cc, sc *Conn
	var ce, se error
	wg.Add(2)
	go func() { defer wg.Done(); cc, ce = Client(rawC, IdentityFromSeed("c")) }()
	go func() { defer wg.Done(); sc, se = Server(mitmC, IdentityFromSeed("s")) }()
	wg.Wait()
	if ce != nil || se != nil {
		t.Fatalf("handshake failed: %v %v", ce, se)
	}
	go cc.Write([]byte("sensitive"))
	buf := make([]byte, 16)
	if _, err := sc.Read(buf); err == nil {
		t.Fatal("tampered record accepted")
	}
}

// proxyFlippingRecord forwards the 3 handshake messages from a to b
// verbatim, then flips a bit in everything after.
func proxyFlippingRecord(a, b net.Conn) {
	// Handshake: hello (2+85), signature (2+64) from each side pass
	// through; we sit between client-side a and server-side b for one
	// direction only. Forward 2 messages verbatim, then corrupt.
	forwardMsg := func(dst, src net.Conn) bool {
		hdr := make([]byte, 2)
		if _, err := io.ReadFull(src, hdr); err != nil {
			return false
		}
		n := int(hdr[0])<<8 | int(hdr[1])
		body := make([]byte, n)
		if _, err := io.ReadFull(src, body); err != nil {
			return false
		}
		dst.Write(hdr)
		dst.Write(body)
		return true
	}
	// Client -> server: hello, then signature.
	go func() {
		forwardMsg(b, a)
		forwardMsg(b, a)
		// Everything else: corrupt.
		buf := make([]byte, 4096)
		for {
			n, err := a.Read(buf)
			if n > 0 {
				if n > 5 {
					buf[5] ^= 1
				}
				b.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	// Server -> client: forward verbatim.
	go io.Copy(a, b)
}

func TestListenerDialer(t *testing.T) {
	sid := IdentityFromSeed("lserver")
	l, err := Listen("127.0.0.1:0", sid)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 2)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()
	d := Dialer{ID: IdentityFromSeed("lclient")}
	c, err := d.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.PeerKey().Equal(sid.Priv.Public()) {
		t.Error("dialer learned wrong server key")
	}
	c.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNilIdentityRejected(t *testing.T) {
	rawC, rawS := net.Pipe()
	defer rawC.Close()
	defer rawS.Close()
	go io.Copy(io.Discard, rawS)
	if _, err := Client(rawC, nil); err == nil {
		t.Fatal("nil identity accepted")
	}
}

func TestSessionIDsUniquePerConnection(t *testing.T) {
	c1, _ := pair(t, IdentityFromSeed("c"), IdentityFromSeed("s"))
	c2, _ := pair(t, IdentityFromSeed("c"), IdentityFromSeed("s"))
	if bytes.Equal(c1.SessionID(), c2.SessionID()) {
		t.Fatal("two connections share a session id")
	}
}
