package secure

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/channel"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// maxFrame bounds a single encrypted record.
const maxFrame = 1 << 20

// Conn is an established secure channel; it implements channel.Conn.
type Conn struct {
	raw       net.Conn
	localKey  sfkey.PublicKey
	peerKey   sfkey.PublicKey
	sessionID []byte

	send cipher.AEAD
	recv cipher.AEAD
	// counters provide unique nonces per direction.
	sendSeq uint64
	recvSeq uint64

	readBuf []byte // plaintext not yet consumed
}

var _ channel.Conn = (*Conn)(nil)

// Client performs the initiator handshake over an existing transport.
func Client(raw net.Conn, id *Identity) (*Conn, error) {
	return newConn(raw, id, true)
}

// Server performs the responder handshake over an existing transport.
func Server(raw net.Conn, id *Identity) (*Conn, error) {
	return newConn(raw, id, false)
}

func newConn(raw net.Conn, id *Identity, isClient bool) (*Conn, error) {
	hs, err := handshake(raw, id, isClient)
	if err != nil {
		raw.Close()
		return nil, err
	}
	send, err := newAEAD(hs.sendKey)
	if err != nil {
		raw.Close()
		return nil, err
	}
	recv, err := newAEAD(hs.recvKey)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return &Conn{
		raw:       raw,
		localKey:  id.Priv.Public(),
		peerKey:   hs.peerKey,
		sessionID: hs.sessionID,
		send:      send,
		recv:      recv,
	}, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// PeerKey implements channel.Conn.
func (c *Conn) PeerKey() sfkey.PublicKey { return c.peerKey }

// LocalKey implements channel.Conn.
func (c *Conn) LocalKey() sfkey.PublicKey { return c.localKey }

// SessionID identifies this channel instance; both ends derive the
// same value from the key exchange.
func (c *Conn) SessionID() []byte { return append([]byte(nil), c.sessionID...) }

// Principal implements channel.Conn: the channel principal whose
// binding is the session id ("KCH" in Figure 3).
func (c *Conn) Principal() principal.Channel {
	return principal.ChannelOf(principal.ChannelSecure, c.sessionID)
}

// Kind implements channel.Conn.
func (c *Conn) Kind() string { return principal.ChannelSecure }

func (c *Conn) nonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// Write encrypts p as a single framed record.
func (c *Conn) Write(p []byte) (int, error) {
	if len(p) > maxFrame {
		// Split oversized writes into frames.
		total := 0
		for len(p) > 0 {
			n := len(p)
			if n > maxFrame {
				n = maxFrame
			}
			if _, err := c.Write(p[:n]); err != nil {
				return total, err
			}
			total += n
			p = p[n:]
		}
		return total, nil
	}
	ct := c.send.Seal(nil, c.nonce(c.sendSeq), p, nil)
	c.sendSeq++
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(ct)))
	if _, err := c.raw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := c.raw.Write(ct); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Read returns decrypted bytes, buffering record remainders.
func (c *Conn) Read(p []byte) (int, error) {
	if len(c.readBuf) == 0 {
		var hdr [4]byte
		if _, err := readFull(c.raw, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame+uint32(c.recv.Overhead()) {
			return 0, fmt.Errorf("secure: oversized frame %d", n)
		}
		ct := make([]byte, n)
		if _, err := readFull(c.raw, ct); err != nil {
			return 0, err
		}
		pt, err := c.recv.Open(nil, c.nonce(c.recvSeq), ct, nil)
		if err != nil {
			return 0, fmt.Errorf("secure: record authentication failed: %w", err)
		}
		c.recvSeq++
		c.readBuf = pt
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

func readFull(r net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := r.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.raw.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.raw.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.raw.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// Dialer dials TCP and runs the client handshake; it implements
// channel.Dialer (the SSHSocketFactory analog of Figure 4).
type Dialer struct {
	ID *Identity
}

// Dial implements channel.Dialer.
func (d Dialer) Dial(addr string) (channel.Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Client(raw, d.ID)
}

// Listener accepts TCP connections and runs the server handshake.
type Listener struct {
	ID *Identity
	L  net.Listener
}

// Listen starts a secure listener on addr.
func Listen(addr string, id *Identity) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ID: id, L: l}, nil
}

// Accept implements channel.Listener.
func (l *Listener) Accept() (channel.Conn, error) {
	raw, err := l.L.Accept()
	if err != nil {
		return nil, err
	}
	return Server(raw, l.ID)
}

// Close implements channel.Listener.
func (l *Listener) Close() error { return l.L.Close() }

// Addr implements channel.Listener.
func (l *Listener) Addr() net.Addr { return l.L.Addr() }
