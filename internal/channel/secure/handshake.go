// Package secure implements the Snowflake secure network channel of
// paper section 5.1: an ssh-inspired transport that authenticates
// both endpoints by public key and protects the stream's
// confidentiality and integrity.
//
// Substitution note (DESIGN.md section 3): the paper built the ssh
// wire protocol to interoperate with sshd; we build a protocol with
// the identical guarantee the paper relies on — after the handshake,
// "the channel is secure between some pair of public keys" and each
// end can query the key of the opposite end (Figure 3). The handshake
// is an ephemeral X25519 exchange signed by long-term Ed25519 keys;
// the stream is AES-256-GCM framed with per-direction keys and
// counter nonces.
package secure

import (
	"bytes"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"repro/internal/sfkey"
)

// Identity is an endpoint's long-term channel key (K1 or K2 in the
// paper's Figure 3).
type Identity struct {
	Priv *sfkey.PrivateKey
}

// NewIdentity generates a fresh channel identity; the RMI client
// creates one per SSHContext analog.
func NewIdentity() (*Identity, error) {
	priv, err := sfkey.Generate()
	if err != nil {
		return nil, err
	}
	return &Identity{Priv: priv}, nil
}

// IdentityFromSeed derives a deterministic identity for tests.
func IdentityFromSeed(seed string) *Identity {
	return &Identity{Priv: sfkey.FromSeed([]byte(seed))}
}

const (
	protoMagic   = "SFCH1"
	maxHandshake = 4096
)

// hello is one side's handshake message.
type hello struct {
	ephPub  []byte // X25519 public key, 32 bytes
	longPub []byte // Ed25519 public key, 32 bytes
	nonce   []byte // 16 bytes
}

func (h *hello) marshal() []byte {
	var buf bytes.Buffer
	buf.WriteString(protoMagic)
	buf.Write(h.ephPub)
	buf.Write(h.longPub)
	buf.Write(h.nonce)
	return buf.Bytes()
}

func parseHello(b []byte) (*hello, error) {
	want := len(protoMagic) + 32 + 32 + 16
	if len(b) != want {
		return nil, fmt.Errorf("secure: bad hello length %d", len(b))
	}
	if string(b[:len(protoMagic)]) != protoMagic {
		return nil, fmt.Errorf("secure: bad protocol magic")
	}
	b = b[len(protoMagic):]
	return &hello{
		ephPub:  append([]byte(nil), b[:32]...),
		longPub: append([]byte(nil), b[32:64]...),
		nonce:   append([]byte(nil), b[64:80]...),
	}, nil
}

// writeMsg / readMsg frame handshake messages with a 2-byte length.
func writeMsg(w io.Writer, b []byte) error {
	if len(b) > maxHandshake {
		return fmt.Errorf("secure: handshake message too large")
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readMsg(r io.Reader) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(hdr[:])
	if int(n) > maxHandshake {
		return nil, fmt.Errorf("secure: handshake message too large")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// handshakeResult carries the keys derived from a completed exchange.
type handshakeResult struct {
	peerKey   sfkey.PublicKey
	sendKey   []byte
	recvKey   []byte
	sessionID []byte
}

// kdf derives a labeled key from the shared secret and transcript
// hash with HMAC-SHA256 (an HKDF-expand analog; stdlib-only).
func kdf(secret, transcript []byte, label string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write(transcript)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// handshake runs the exchange. isClient fixes the role labels so the
// two directions derive distinct keys and signatures cannot be
// reflected.
func handshake(conn net.Conn, id *Identity, isClient bool) (*handshakeResult, error) {
	if id == nil || id.Priv == nil {
		return nil, fmt.Errorf("secure: nil identity")
	}
	curve := ecdh.X25519()
	ephPriv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secure: ephemeral key: %w", err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	mine := &hello{
		ephPub:  ephPriv.PublicKey().Bytes(),
		longPub: id.Priv.Public().Raw,
		nonce:   nonce,
	}

	// Exchange hellos; the client speaks first.
	var theirsRaw []byte
	if isClient {
		if err := writeMsg(conn, mine.marshal()); err != nil {
			return nil, err
		}
		if theirsRaw, err = readMsg(conn); err != nil {
			return nil, err
		}
	} else {
		if theirsRaw, err = readMsg(conn); err != nil {
			return nil, err
		}
		if err := writeMsg(conn, mine.marshal()); err != nil {
			return nil, err
		}
	}
	theirs, err := parseHello(theirsRaw)
	if err != nil {
		return nil, err
	}

	peerEph, err := curve.NewPublicKey(theirs.ephPub)
	if err != nil {
		return nil, fmt.Errorf("secure: peer ephemeral key: %w", err)
	}
	shared, err := ephPriv.ECDH(peerEph)
	if err != nil {
		return nil, fmt.Errorf("secure: ecdh: %w", err)
	}

	// Transcript binds both hellos in a fixed order (client first).
	var transcript []byte
	if isClient {
		transcript = transcriptHash(mine.marshal(), theirsRaw)
	} else {
		transcript = transcriptHash(theirsRaw, mine.marshal())
	}

	// Exchange transcript signatures under the long-term keys; role
	// labels prevent reflecting a signature back.
	myLabel, theirLabel := "sf-server-sig", "sf-client-sig"
	if isClient {
		myLabel, theirLabel = "sf-client-sig", "sf-server-sig"
	}
	mySig := id.Priv.Sign(append([]byte(myLabel), transcript...))
	peerPub := sfkey.PublicKey{Raw: theirs.longPub}
	if isClient {
		if err := writeMsg(conn, mySig); err != nil {
			return nil, err
		}
		theirSig, err := readMsg(conn)
		if err != nil {
			return nil, err
		}
		if !peerPub.Verify(append([]byte(theirLabel), transcript...), theirSig) {
			return nil, fmt.Errorf("secure: peer signature invalid")
		}
	} else {
		theirSig, err := readMsg(conn)
		if err != nil {
			return nil, err
		}
		if !peerPub.Verify(append([]byte(theirLabel), transcript...), theirSig) {
			return nil, fmt.Errorf("secure: peer signature invalid")
		}
		if err := writeMsg(conn, mySig); err != nil {
			return nil, err
		}
	}

	res := &handshakeResult{peerKey: peerPub, sessionID: kdf(shared, transcript, "session-id")[:16]}
	c2s := kdf(shared, transcript, "c2s")
	s2c := kdf(shared, transcript, "s2c")
	if isClient {
		res.sendKey, res.recvKey = c2s, s2c
	} else {
		res.sendKey, res.recvKey = s2c, c2s
	}
	return res, nil
}

func transcriptHash(first, second []byte) []byte {
	h := sha256.New()
	h.Write([]byte(protoMagic))
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(first)))
	h.Write(l[:])
	h.Write(first)
	binary.BigEndian.PutUint32(l[:], uint32(len(second)))
	h.Write(l[:])
	h.Write(second)
	return h.Sum(nil)
}
