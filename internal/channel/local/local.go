// Package local implements the paper's local channel (section 5.2):
// when client and server are colocated, the trusted host runtime that
// constructed both endpoints vouches for the binding between channel
// and keys, and the fast path carries no encryption or system-call
// overhead — only serialization.
//
// The paper treats the JVM and a few system classes as the trusted
// host; here the Go process plays that role through an in-process
// Host registry that pairs endpoints and swaps the endpoint keys
// directly.
package local

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// Host is the trusted in-process registry. The zero value is not
// usable; call NewHost, or use the package-level Default host.
type Host struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	nextID    uint64
}

// NewHost returns an empty registry.
func NewHost() *Host {
	return &Host{listeners: make(map[string]*Listener)}
}

// Default is the process-wide host registry.
var Default = NewHost()

// Listen registers a local service under a name. The key identifies
// the server endpoint on every accepted channel; the host vouches for
// it because it constructed the endpoint.
func (h *Host) Listen(name string, key sfkey.PublicKey) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.listeners[name]; exists {
		return nil, fmt.Errorf("local: %q already bound", name)
	}
	l := &Listener{host: h, name: name, key: key, pending: make(chan *Conn, 16)}
	h.listeners[name] = l
	return l, nil
}

// Dial connects to a named local service, presenting the client key.
// Like a TCP connect against a full backlog, it blocks until the
// listener accepts or closes.
func (h *Host) Dial(name string, key sfkey.PublicKey) (conn *Conn, err error) {
	h.mu.Lock()
	l, ok := h.listeners[name]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("local: no service %q", name)
	}
	h.nextID++
	id := h.nextID
	h.mu.Unlock()

	binding := make([]byte, 8)
	binary.BigEndian.PutUint64(binding, id)

	a2b, b2a := newBufPipe(), newBufPipe()
	clientConn := &Conn{r: b2a, w: a2b, localKey: key, peerKey: l.key, binding: binding}
	serverConn := &Conn{r: a2b, w: b2a, localKey: l.key, peerKey: key, binding: binding}
	defer func() {
		// A concurrent Close turns the blocking send into a panic on
		// the closed channel; report it as a dial failure.
		if recover() != nil {
			conn, err = nil, fmt.Errorf("local: %q closed during dial", name)
		}
	}()
	l.pending <- serverConn
	return clientConn, nil
}

// Listener accepts local channels.
type Listener struct {
	host    *Host
	name    string
	key     sfkey.PublicKey
	pending chan *Conn
	once    sync.Once
}

// Accept implements channel.Listener.
func (l *Listener) Accept() (channel.Conn, error) {
	c, ok := <-l.pending
	if !ok {
		return nil, fmt.Errorf("local: listener %q closed", l.name)
	}
	return c, nil
}

// Close implements channel.Listener.
func (l *Listener) Close() error {
	l.once.Do(func() {
		l.host.mu.Lock()
		delete(l.host.listeners, l.name)
		l.host.mu.Unlock()
		close(l.pending)
	})
	return nil
}

// Addr implements channel.Listener.
func (l *Listener) Addr() net.Addr { return localAddr(l.name) }

// Dialer adapts a Host to channel.Dialer.
type Dialer struct {
	Host *Host
	Key  sfkey.PublicKey
}

// Dial implements channel.Dialer.
func (d Dialer) Dial(addr string) (channel.Conn, error) {
	h := d.Host
	if h == nil {
		h = Default
	}
	return h.Dial(addr, d.Key)
}

// Conn is one end of a local channel; it implements channel.Conn.
type Conn struct {
	r, w     *bufPipe
	localKey sfkey.PublicKey
	peerKey  sfkey.PublicKey
	binding  []byte
}

var _ channel.Conn = (*Conn)(nil)

// Read implements io.Reader.
func (c *Conn) Read(p []byte) (int, error) { return c.r.Read(p) }

// Write implements io.Writer.
func (c *Conn) Write(p []byte) (int, error) { return c.w.Write(p) }

// Close closes both directions.
func (c *Conn) Close() error {
	c.w.CloseWrite()
	c.r.CloseRead()
	return nil
}

// PeerKey implements channel.Conn; the binding is vouched by the
// host, not proven cryptographically.
func (c *Conn) PeerKey() sfkey.PublicKey { return c.peerKey }

// LocalKey implements channel.Conn.
func (c *Conn) LocalKey() sfkey.PublicKey { return c.localKey }

// Principal implements channel.Conn.
func (c *Conn) Principal() principal.Channel {
	return principal.ChannelOf(principal.ChannelLocal, c.binding)
}

// Kind implements channel.Conn.
func (c *Conn) Kind() string { return principal.ChannelLocal }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return localAddr("local") }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return localAddr("local") }

// SetDeadline implements net.Conn (unsupported, returns nil).
func (c *Conn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn (unsupported, returns nil).
func (c *Conn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn (unsupported, returns nil).
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

type localAddr string

func (a localAddr) Network() string { return "local" }
func (a localAddr) String() string  { return string(a) }

// bufPipe is a buffered unidirectional in-memory byte stream; unlike
// net.Pipe it does not rendezvous writers with readers, matching the
// "Java IPC pipe" of section 5.2. Message handoff rides a buffered
// channel, the cheapest cross-goroutine wakeup Go offers.
type bufPipe struct {
	ch       chan []byte
	closed   chan struct{}
	once     sync.Once
	leftover []byte
}

func newBufPipe() *bufPipe {
	return &bufPipe{ch: make(chan []byte, 64), closed: make(chan struct{})}
}

func (p *bufPipe) Write(b []byte) (int, error) {
	cp := append([]byte(nil), b...)
	select {
	case <-p.closed:
		return 0, io.ErrClosedPipe
	default:
	}
	select {
	case p.ch <- cp:
		return len(b), nil
	case <-p.closed:
		return 0, io.ErrClosedPipe
	}
}

func (p *bufPipe) Read(b []byte) (int, error) {
	if len(p.leftover) == 0 {
		select {
		case chunk := <-p.ch:
			p.leftover = chunk
		default:
			select {
			case chunk := <-p.ch:
				p.leftover = chunk
			case <-p.closed:
				// Drain anything buffered before reporting EOF.
				select {
				case chunk := <-p.ch:
					p.leftover = chunk
				default:
					return 0, io.EOF
				}
			}
		}
	}
	n := copy(b, p.leftover)
	p.leftover = p.leftover[n:]
	return n, nil
}

func (p *bufPipe) CloseWrite() { p.once.Do(func() { close(p.closed) }) }

func (p *bufPipe) CloseRead() { p.once.Do(func() { close(p.closed) }) }
