package local

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sfkey"
)

func TestDialAndAccept(t *testing.T) {
	h := NewHost()
	skey := sfkey.FromSeed([]byte("server")).Public()
	ckey := sfkey.FromSeed([]byte("client")).Public()
	l, err := h.Listen("db", skey)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cc, err := h.Dial("db", ckey)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if !cc.PeerKey().Equal(skey) {
		t.Error("client sees wrong server key")
	}
	if !sc.PeerKey().Equal(ckey) {
		t.Error("server sees wrong client key")
	}
	if cc.Principal().Key() != sc.Principal().Key() {
		t.Error("channel principals differ across ends")
	}
	if cc.Kind() != "local" {
		t.Errorf("kind = %q", cc.Kind())
	}
}

func TestDataFlow(t *testing.T) {
	h := NewHost()
	l, _ := h.Listen("svc", sfkey.FromSeed([]byte("s")).Public())
	defer l.Close()
	cc, err := h.Dial("svc", sfkey.FromSeed([]byte("c")).Public())
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := l.Accept()
	// Buffered pipe: writes complete without a waiting reader.
	payload := bytes.Repeat([]byte("x"), 1<<16)
	if _, err := cc.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(sc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	// Reply direction.
	sc.Write([]byte("ack"))
	buf := make([]byte, 3)
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	h := NewHost()
	l, _ := h.Listen("svc", sfkey.PublicKey{})
	defer l.Close()
	cc, _ := h.Dial("svc", sfkey.PublicKey{})
	sc, _ := l.Accept()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := sc.Read(buf)
		done <- err
	}()
	cc.Close()
	if err := <-done; err != io.EOF {
		t.Fatalf("read after close = %v, want EOF", err)
	}
}

func TestDialErrors(t *testing.T) {
	h := NewHost()
	if _, err := h.Dial("missing", sfkey.PublicKey{}); err == nil {
		t.Fatal("dialing unbound name succeeded")
	}
	if _, err := h.Listen("dup", sfkey.PublicKey{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen("dup", sfkey.PublicKey{}); err == nil {
		t.Fatal("double bind succeeded")
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	h := NewHost()
	l, _ := h.Listen("svc", sfkey.PublicKey{})
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; err == nil {
		t.Fatal("Accept returned after close without error")
	}
	// Name is released.
	if _, err := h.Listen("svc", sfkey.PublicKey{}); err != nil {
		t.Fatalf("name not released: %v", err)
	}
}

func TestDialerInterface(t *testing.T) {
	h := NewHost()
	l, _ := h.Listen("iface", sfkey.FromSeed([]byte("s")).Public())
	defer l.Close()
	d := Dialer{Host: h, Key: sfkey.FromSeed([]byte("c")).Public()}
	c, err := d.Dial("iface")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestDistinctBindings(t *testing.T) {
	h := NewHost()
	l, _ := h.Listen("svc", sfkey.PublicKey{})
	defer l.Close()
	c1, _ := h.Dial("svc", sfkey.PublicKey{})
	c2, _ := h.Dial("svc", sfkey.PublicKey{})
	if c1.Principal().Key() == c2.Principal().Key() {
		t.Fatal("two channels share a principal")
	}
}
