// Package channel defines the common shape of Snowflake's
// authenticated channels (paper section 5): a byte stream whose
// endpoints are bound to principals. Three implementations exist, one
// per hop-by-hop mechanism the paper built:
//
//   - channel/secure: the ssh-analog encrypted network channel (5.1);
//   - channel/local: the host-vouched in-process channel (5.2);
//   - channel/plain: an unauthenticated TCP stream, the baseline for
//     the measurements of section 7.2.
//
// Separating this interface from the mechanisms is the paper's
// policy/mechanism split (section 2.2): applications reason about
// authorization against the interface, and any mechanism that can
// state its guarantee ("messages from this channel speak for key K")
// plugs in.
package channel

import (
	"net"

	"repro/internal/principal"
	"repro/internal/sfkey"
)

// Conn is an authenticated connection. PeerKey returns the public key
// the mechanism has bound to the remote end (the zero key when the
// mechanism offers no authentication). Principal returns the channel
// principal — the entity that "says" everything read from the
// connection.
type Conn interface {
	net.Conn
	// PeerKey is the remote endpoint's channel key (K1 or K2 in
	// Figure 3); zero when unauthenticated.
	PeerKey() sfkey.PublicKey
	// LocalKey is this endpoint's channel key; zero when
	// unauthenticated.
	LocalKey() sfkey.PublicKey
	// Principal names this connection as a channel principal.
	Principal() principal.Channel
	// Kind names the mechanism ("secure", "local", "plain").
	Kind() string
}

// Dialer opens authenticated connections; the RMI layer accepts any
// Dialer, which is how a Snowflake application swaps hop-by-hop
// mechanisms without changing its authorization policy.
type Dialer interface {
	Dial(addr string) (Conn, error)
}

// Listener accepts authenticated connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() net.Addr
}
