package plain

import (
	"io"
	"testing"
)

func TestPlainChannel(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		if len(c.PeerKey().Raw) != 0 {
			done <- io.ErrUnexpectedEOF
			return
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf)
		done <- err
	}()
	c, err := Dialer{}.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.PeerKey().Raw) != 0 || len(c.LocalKey().Raw) != 0 {
		t.Fatal("plain channel claims keys")
	}
	if c.Kind() != KindPlain {
		t.Fatalf("kind = %q", c.Kind())
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestPlainPrincipalsDistinct(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	c1, err := Dialer{}.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dialer{}.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c1.Principal().Key() == c2.Principal().Key() {
		t.Fatal("plain channels share a principal")
	}
}
