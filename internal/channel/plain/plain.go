// Package plain implements an unauthenticated TCP channel: the
// baseline "basic RMI" transport of the paper's Figure 6. It offers
// no keys and no protection; its channel principal says only that
// some network peer spoke.
package plain

import (
	"crypto/rand"
	"net"

	"repro/internal/channel"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// KindPlain names the mechanism.
const KindPlain = "plain"

// Conn wraps a raw net.Conn as a channel.Conn with no authentication.
type Conn struct {
	net.Conn
	binding []byte
}

var _ channel.Conn = (*Conn)(nil)

// Wrap makes a plain channel from an existing connection.
func Wrap(c net.Conn) *Conn {
	b := make([]byte, 8)
	rand.Read(b)
	return &Conn{Conn: c, binding: b}
}

// PeerKey implements channel.Conn: always the zero key.
func (c *Conn) PeerKey() sfkey.PublicKey { return sfkey.PublicKey{} }

// LocalKey implements channel.Conn: always the zero key.
func (c *Conn) LocalKey() sfkey.PublicKey { return sfkey.PublicKey{} }

// Principal implements channel.Conn.
func (c *Conn) Principal() principal.Channel {
	return principal.ChannelOf(KindPlain, c.binding)
}

// Kind implements channel.Conn.
func (c *Conn) Kind() string { return KindPlain }

// Dialer implements channel.Dialer over TCP.
type Dialer struct{}

// Dial implements channel.Dialer.
func (Dialer) Dial(addr string) (channel.Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(raw), nil
}

// Listener accepts plain channels.
type Listener struct {
	L net.Listener
}

// Listen starts a plain listener on addr.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{L: l}, nil
}

// Accept implements channel.Listener.
func (l *Listener) Accept() (channel.Conn, error) {
	raw, err := l.L.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(raw), nil
}

// Close implements channel.Listener.
func (l *Listener) Close() error { return l.L.Close() }

// Addr implements channel.Listener.
func (l *Listener) Addr() net.Addr { return l.L.Addr() }
