// Package shard provides the key-to-shard mapping shared by the
// concurrency-sharded stores (the prover's delegation graph, the
// certificate directory). One implementation keeps the sharding
// strategy from drifting between subsystems.
package shard

// Index maps key onto [0, n) with FNV-1a inlined over the string:
// this runs on hot paths (once per BFS node expansion in the prover),
// where a hash.Hash32 would heap-allocate per call.
func Index(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}
