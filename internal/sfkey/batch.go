package sfkey

import (
	"runtime"
	"sync"
)

// BatchVerifier checks many Ed25519 signatures as one unit: the bulk
// ingestion paths (WAL replay, gossip verify-before-index, CRL
// install, proof-chain verification) collect their signature checks
// here instead of verifying one by one. The all-valid case — the
// overwhelmingly common one for a log this process wrote or a peer in
// good standing — costs one aggregate pass; a failed aggregate falls
// back to bisection, so the bad signatures are pinpointed individually
// while the good majority is never blamed for them.
//
// The aggregate pass is split across a bounded worker pool (Workers;
// GOMAXPROCS by default, inline on a single-CPU host), which is where
// multi-core hosts get their bulk-verification speedup. Every
// underlying signature check goes through PublicKey.Verify, so the
// process-wide sig-verify counter stays honest: batched verifications
// are counted exactly like individual ones.
//
// The zero value is ready to use; it is not safe for concurrent use.
type BatchVerifier struct {
	// Workers bounds the aggregate pass's parallelism. 0 means
	// GOMAXPROCS; 1 forces the inline serial path.
	Workers int

	items []batchItem
}

type batchItem struct {
	pub PublicKey
	msg []byte
	sig []byte
}

// batchParallelMin is the smallest batch worth fanning out: below it,
// goroutine handoff costs more than the signatures.
const batchParallelMin = 8

// Add queues one (key, message, signature) triple. The slices are
// borrowed until Verify returns, not copied.
func (b *BatchVerifier) Add(pub PublicKey, msg, sig []byte) {
	b.items = append(b.items, batchItem{pub: pub, msg: msg, sig: sig})
}

// Len returns the number of queued items.
func (b *BatchVerifier) Len() int { return len(b.items) }

// Reset empties the verifier for reuse, keeping its backing storage.
func (b *BatchVerifier) Reset() { b.items = b.items[:0] }

// Verify checks every queued item and returns the indices (in Add
// order, ascending) of the invalid ones; nil means the whole batch is
// valid. The batch is checked in aggregate first; only a failing
// aggregate pays the bisection that pinpoints its bad items.
func (b *BatchVerifier) Verify() (bad []int) {
	n := len(b.items)
	if n == 0 {
		return nil
	}
	w := b.workers(n)
	if w <= 1 || n < batchParallelMin {
		if !b.aggregate(0, n) {
			b.bisect(0, n, &bad)
		}
		return bad
	}
	// Parallel aggregate: each worker checks one contiguous chunk; the
	// failed chunks (rare) are bisected serially afterwards.
	chunk := (n + w - 1) / w
	failed := make([]bool, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			failed[k] = !b.aggregate(lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
	for k := 0; k < w; k++ {
		if !failed[k] {
			continue
		}
		lo := k * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		b.bisect(lo, hi, &bad)
	}
	return bad
}

func (b *BatchVerifier) workers(n int) int {
	w := b.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// aggregate checks items[lo:hi] as a unit: valid means every signature
// verified, invalid says only that at least one did not.
func (b *BatchVerifier) aggregate(lo, hi int) bool {
	for i := lo; i < hi; i++ {
		it := &b.items[i]
		if !it.pub.Verify(it.msg, it.sig) {
			return false
		}
	}
	return true
}

// bisect pinpoints every invalid item in items[lo:hi], a range whose
// aggregate check has already failed: split, re-aggregate each half,
// and recurse into the halves that fail. A single bad signature in a
// batch of n costs O(log n) extra aggregate passes, not a per-item
// rescan of the whole batch.
func (b *BatchVerifier) bisect(lo, hi int, bad *[]int) {
	if hi-lo == 1 {
		*bad = append(*bad, lo)
		return
	}
	mid := lo + (hi-lo)/2
	if !b.aggregate(lo, mid) {
		b.bisect(lo, mid, bad)
	}
	if !b.aggregate(mid, hi) {
		b.bisect(mid, hi, bad)
	}
}
