package sfkey

import (
	"repro/internal/sexp"

	"bytes"
	"testing"
	"testing/quick"
)

func TestGenerateSignVerify(t *testing.T) {
	k, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("it would be good to read file X")
	sig := k.Sign(msg)
	if !k.Public().Verify(msg, sig) {
		t.Fatal("signature did not verify")
	}
	if k.Public().Verify([]byte("tampered"), sig) {
		t.Fatal("verify accepted wrong message")
	}
	sig[0] ^= 1
	if k.Public().Verify(msg, sig) {
		t.Fatal("verify accepted corrupted signature")
	}
}

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed([]byte("alice"))
	b := FromSeed([]byte("alice"))
	c := FromSeed([]byte("bob"))
	if !a.Public().Equal(b.Public()) {
		t.Fatal("same seed produced different keys")
	}
	if a.Public().Equal(c.Public()) {
		t.Fatal("different seeds produced the same key")
	}
}

func TestSexpRoundTrip(t *testing.T) {
	k := FromSeed([]byte("seed"))
	e := k.Public().Sexp()
	back, err := PublicFromSexp(e)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(k.Public()) {
		t.Fatal("sexp round trip changed key")
	}
}

func TestPublicFromSexpRejectsMalformed(t *testing.T) {
	k := FromSeed([]byte("x")).Public()
	good := k.Sexp()
	raw := good.Nth(1).Nth(1).Bytes()
	// Wrong tag.
	bad := sexp.List(sexp.String("private-key"), good.Nth(1).Copy())
	if _, err := PublicFromSexp(bad); err == nil {
		t.Error("accepted wrong tag")
	}
	// Wrong algorithm.
	bad = sexp.List(sexp.String("public-key"), sexp.List(sexp.String("rsa"), sexp.Atom(raw)))
	if _, err := PublicFromSexp(bad); err == nil {
		t.Error("accepted wrong algorithm")
	}
	// Truncated key.
	bad = sexp.List(sexp.String("public-key"), sexp.List(sexp.String("ed25519"), sexp.Atom(raw[:16])))
	if _, err := PublicFromSexp(bad); err == nil {
		t.Error("accepted truncated key")
	}
	if _, err := PublicFromSexp(nil); err == nil {
		t.Error("accepted nil")
	}
}

func TestHashStable(t *testing.T) {
	k := FromSeed([]byte("k"))
	h1 := k.Public().Hash()
	h2 := k.Public().Hash()
	if !bytes.Equal(h1, h2) {
		t.Fatal("hash not deterministic")
	}
	if len(h1) != 32 {
		t.Fatalf("hash length %d", len(h1))
	}
	o := FromSeed([]byte("other"))
	if bytes.Equal(h1, o.Public().Hash()) {
		t.Fatal("different keys hash equal")
	}
}

func TestPrivateBytesRoundTrip(t *testing.T) {
	k := FromSeed([]byte("rt"))
	back, err := PrivateFromBytes(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	if !k.Public().Verify(msg, back.Sign(msg)) {
		t.Fatal("restored key signs differently")
	}
	if _, err := PrivateFromBytes([]byte("short")); err == nil {
		t.Fatal("accepted short private key")
	}
}

func TestVerifyZeroKey(t *testing.T) {
	var k PublicKey
	if k.Verify([]byte("m"), make([]byte, 64)) {
		t.Fatal("zero key verified")
	}
}

func TestQuickSignVerify(t *testing.T) {
	k := FromSeed([]byte("q"))
	pub := k.Public()
	f := func(msg []byte) bool {
		return pub.Verify(msg, k.Sign(msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossVerifyFails(t *testing.T) {
	a := FromSeed([]byte("a"))
	b := FromSeed([]byte("b")).Public()
	f := func(msg []byte) bool {
		return !b.Verify(msg, a.Sign(msg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
