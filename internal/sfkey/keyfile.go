package sfkey

import (
	"encoding/base64"
	"fmt"
	"os"
	"strings"
)

// LoadPrivateKeyFile reads a private key written by sf-keygen: one
// base64 line holding the key bytes. Every daemon loads its identity
// through here, so the file format lives in exactly one place.
func LoadPrivateKeyFile(path string) (*PrivateKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	kb, err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(raw)))
	if err != nil {
		return nil, fmt.Errorf("sfkey: %s: bad key file: %w", path, err)
	}
	priv, err := PrivateFromBytes(kb)
	if err != nil {
		return nil, fmt.Errorf("sfkey: %s: %w", path, err)
	}
	return priv, nil
}
