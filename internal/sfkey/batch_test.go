package sfkey

import (
	"fmt"
	"testing"
)

// batchFixture signs n distinct messages under n distinct keys and
// loads them into a verifier.
func batchFixture(t *testing.T, n int) (*BatchVerifier, [][]byte) {
	t.Helper()
	bv := &BatchVerifier{}
	msgs := make([][]byte, n)
	for i := 0; i < n; i++ {
		priv := FromSeed([]byte(fmt.Sprintf("batch-%d", i)))
		msgs[i] = []byte(fmt.Sprintf("message %d", i))
		bv.Add(priv.Public(), msgs[i], priv.Sign(msgs[i]))
	}
	return bv, msgs
}

func TestBatchVerifyAllGood(t *testing.T) {
	bv, _ := batchFixture(t, 17)
	if bad := bv.Verify(); len(bad) != 0 {
		t.Fatalf("clean batch reported bad indices %v", bad)
	}
}

func TestBatchVerifyEmpty(t *testing.T) {
	bv := &BatchVerifier{}
	if bad := bv.Verify(); len(bad) != 0 {
		t.Fatalf("empty batch reported %v", bad)
	}
}

// TestBatchVerifyBisectsOneBadSig is the point of the bisection: one
// corrupt signature in a batch must be pinpointed exactly, not take
// the whole batch down with it.
func TestBatchVerifyBisectsOneBadSig(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 31, 64} {
		for _, corrupt := range []int{0, n / 2, n - 1} {
			bv, _ := batchFixture(t, n)
			bv.items[corrupt].sig[0] ^= 0xff
			bad := bv.Verify()
			if len(bad) != 1 || bad[0] != corrupt {
				t.Fatalf("n=%d corrupt=%d: got bad=%v, want [%d]", n, corrupt, bad, corrupt)
			}
		}
	}
}

func TestBatchVerifyMultipleBadSigs(t *testing.T) {
	bv, _ := batchFixture(t, 40)
	want := map[int]bool{3: true, 19: true, 20: true, 39: true}
	for i := range want {
		bv.items[i].sig[1] ^= 0x55
	}
	bad := bv.Verify()
	if len(bad) != len(want) {
		t.Fatalf("got %v, want the %d corrupted indices", bad, len(want))
	}
	for _, i := range bad {
		if !want[i] {
			t.Fatalf("index %d reported bad but was not corrupted (got %v)", i, bad)
		}
	}
}

// TestBatchVerifyWrongMessage corrupts a message rather than its
// signature — same detection path, different failure cause.
func TestBatchVerifyWrongMessage(t *testing.T) {
	bv, msgs := batchFixture(t, 9)
	msgs[4][0] ^= 0x01
	bad := bv.Verify()
	if len(bad) != 1 || bad[0] != 4 {
		t.Fatalf("got bad=%v, want [4]", bad)
	}
}

// TestBatchVerifyParallelWorkers forces the chunked parallel path
// even on a single-CPU runner and checks it finds the same culprits.
func TestBatchVerifyParallelWorkers(t *testing.T) {
	bv, _ := batchFixture(t, 24)
	bv.Workers = 4
	bv.items[7].sig[2] ^= 0x80
	bv.items[23].sig[2] ^= 0x80
	bad := bv.Verify()
	if len(bad) != 2 || bad[0] != 7 || bad[1] != 23 {
		t.Fatalf("parallel verify got bad=%v, want [7 23]", bad)
	}
}

// TestBatchVerifyCountsSigVerifies: batched verification must flow
// through the same counter individual Verify calls do, or the
// warm-vs-cold cache measurements lie.
func TestBatchVerifyCountsSigVerifies(t *testing.T) {
	bv, _ := batchFixture(t, 10)
	before := SigVerifies()
	bv.Verify()
	if got := SigVerifies() - before; got < 10 {
		t.Fatalf("batch of 10 recorded %d sig verifies, want >= 10", got)
	}
}

func TestBatchVerifierReset(t *testing.T) {
	bv, _ := batchFixture(t, 3)
	if bv.Len() != 3 {
		t.Fatalf("Len = %d, want 3", bv.Len())
	}
	bv.Reset()
	if bv.Len() != 0 {
		t.Fatalf("Len after Reset = %d", bv.Len())
	}
	if bad := bv.Verify(); len(bad) != 0 {
		t.Fatalf("reset batch reported %v", bad)
	}
}
