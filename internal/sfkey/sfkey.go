// Package sfkey provides the cryptographic identities of Snowflake
// principals: Ed25519 signing keys with SPKI S-expression encodings,
// and the hashing used to name keys, documents, and requests.
//
// Substitution note (DESIGN.md section 3): the paper used 1024-bit RSA
// and MD5 on 1999 hardware; we use Ed25519 and SHA-256. The roles are
// identical — one public-key operation per delegation or channel
// setup, one hash per request or document.
package sfkey

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/sexp"
)

// HashAlg names the hash algorithm used throughout the system.
const HashAlg = "sha256"

// PublicKey is an Ed25519 public key with S-expression encoding
// (public-key (ed25519 |octets|)).
type PublicKey struct {
	Raw ed25519.PublicKey
}

// PrivateKey holds an Ed25519 private key and its public half.
type PrivateKey struct {
	Raw ed25519.PrivateKey
}

// Generate creates a fresh key pair from crypto/rand.
func Generate() (*PrivateKey, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sfkey: generate: %w", err)
	}
	return &PrivateKey{Raw: priv}, nil
}

// FromSeed derives a deterministic key pair from a 32-byte seed; used
// by tests and the benchmark harness for reproducible identities.
func FromSeed(seed []byte) *PrivateKey {
	h := sha256.Sum256(seed)
	return &PrivateKey{Raw: ed25519.NewKeyFromSeed(h[:])}
}

// FromReader generates a key pair reading entropy from r.
func FromReader(r io.Reader) (*PrivateKey, error) {
	_, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, err
	}
	return &PrivateKey{Raw: priv}, nil
}

// Public returns the public half.
func (k *PrivateKey) Public() PublicKey {
	return PublicKey{Raw: k.Raw.Public().(ed25519.PublicKey)}
}

// Sign signs msg and returns the signature octets.
func (k *PrivateKey) Sign(msg []byte) []byte {
	return ed25519.Sign(k.Raw, msg)
}

// Bytes returns the private key bytes (seed || public).
func (k *PrivateKey) Bytes() []byte {
	return append([]byte(nil), k.Raw...)
}

// PrivateFromBytes reconstructs a private key from Bytes output.
func PrivateFromBytes(b []byte) (*PrivateKey, error) {
	if len(b) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("sfkey: bad private key length %d", len(b))
	}
	return &PrivateKey{Raw: append(ed25519.PrivateKey(nil), b...)}, nil
}

// sigVerifies counts public-key signature verifications performed by
// the process. Signature checks dominate the cold authorization path,
// so the warm-path benchmarks and tests measure cache effectiveness
// as a ratio of this counter.
var sigVerifies atomic.Int64

// SigVerifies returns the process-wide signature-verification count.
func SigVerifies() int64 { return sigVerifies.Load() }

// Verify checks sig over msg under k.
func (k PublicKey) Verify(msg, sig []byte) bool {
	if len(k.Raw) != ed25519.PublicKeySize {
		return false
	}
	sigVerifies.Add(1)
	return ed25519.Verify(k.Raw, msg, sig)
}

// Sexp encodes the key as (public-key (ed25519 |octets|)).
func (k PublicKey) Sexp() sexp.Sexp {
	return sexp.List(
		sexp.String("public-key"),
		sexp.List(sexp.String("ed25519"), sexp.Atom(k.Raw)),
	)
}

// PublicFromSexp decodes a (public-key (ed25519 |octets|)) form.
func PublicFromSexp(e sexp.Sexp) (PublicKey, error) {
	if e == nil || e.Tag() != "public-key" || e.Len() != 2 {
		return PublicKey{}, fmt.Errorf("sfkey: not a public-key expression")
	}
	alg := e.Nth(1)
	if alg.Tag() != "ed25519" || alg.Len() != 2 || !alg.Nth(1).IsAtom() {
		return PublicKey{}, fmt.Errorf("sfkey: unsupported key algorithm %q", alg.Tag())
	}
	raw := alg.Nth(1).Bytes()
	if len(raw) != ed25519.PublicKeySize {
		return PublicKey{}, fmt.Errorf("sfkey: bad ed25519 key length %d", len(raw))
	}
	return PublicKey{Raw: append(ed25519.PublicKey(nil), raw...)}, nil
}

// Hash returns the SHA-256 hash of the key's canonical S-expression;
// this is the digest used by hash principals ("HK" in the paper's
// Figure 1).
func (k PublicKey) Hash() []byte {
	sum := sha256.Sum256(k.Sexp().Canonical())
	return sum[:]
}

// Equal reports whether two public keys are identical.
func (k PublicKey) Equal(o PublicKey) bool {
	return string(k.Raw) == string(o.Raw)
}

// Fingerprint returns a short hex form of the key hash for logs.
func (k PublicKey) Fingerprint() string {
	return hex.EncodeToString(k.Hash()[:8])
}

// HashBytes hashes arbitrary octets with the system hash; used for
// request and document principals.
func HashBytes(b []byte) []byte {
	sum := sha256.Sum256(b)
	return sum[:]
}
