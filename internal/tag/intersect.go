package tag

import (
	"strings"

	"repro/internal/sexp"
)

// Intersect returns the tag denoting the requests permitted by both t
// and u, and whether that set is nonempty. Intersection implements
// the "regarding" composition of chained delegations: a proof through
// two restricted delegations carries the intersection of their tags
// (transitivity rule, paper section 3).
func Intersect(t, u Tag) (Tag, bool) {
	e := intersect(t.expr, u.expr)
	if e == nil {
		return Tag{}, false
	}
	return Tag{expr: e}, true
}

// intersect returns nil for the empty set.
func intersect(a, b sexp.Sexp) sexp.Sexp {
	if a == nil || b == nil {
		return nil
	}
	// Identical tags — the common case in uniform delegation chains —
	// intersect to themselves without copying.
	if sexp.Equal(a, b) {
		return a
	}
	// (*) is the identity. Tag expressions are immutable once built, so
	// the survivor is shared rather than copied.
	if isStarForm(a) && starKind(a) == "all" {
		return b
	}
	if isStarForm(b) && starKind(b) == "all" {
		return a
	}
	// Sets distribute over everything.
	if isStarForm(a) && starKind(a) == "set" {
		return intersectSet(a, b)
	}
	if isStarForm(b) && starKind(b) == "set" {
		return intersectSet(b, a)
	}
	switch {
	case a.IsAtom() && b.IsAtom():
		if string(a.Bytes()) == string(b.Bytes()) {
			return a
		}
		return nil
	case a.IsAtom():
		return intersectAtomStar(a, b)
	case b.IsAtom():
		return intersectAtomStar(b, a)
	}
	aStar, bStar := isStarForm(a), isStarForm(b)
	switch {
	case aStar && bStar:
		return intersectStarStar(a, b)
	case aStar != bStar:
		// A star form against a plain list: prefixes and ranges
		// constrain byte strings, never lists.
		return nil
	default:
		return intersectLists(a, b)
	}
}

// intersectSet intersects each member of set s with x and unions the
// survivors.
func intersectSet(s, x sexp.Sexp) sexp.Sexp {
	var members []sexp.Sexp
	for i := 2; i < s.Len(); i++ {
		if m := intersect(s.Nth(i), x); m != nil {
			members = append(members, m)
		}
	}
	switch len(members) {
	case 0:
		return nil
	case 1:
		return members[0]
	}
	kids := append([]sexp.Sexp{sexp.String("*"), sexp.String("set")}, members...)
	out := sexp.List(kids...)
	return out
}

// intersectAtomStar intersects an atom with a prefix or range form.
func intersectAtomStar(atom, star sexp.Sexp) sexp.Sexp {
	switch starKind(star) {
	case "prefix":
		if strings.HasPrefix(string(atom.Bytes()), star.Nth(2).Text()) {
			return atom.Copy()
		}
	case "range":
		r, err := parseRange(star)
		if err == nil && r.contains(string(atom.Bytes())) {
			return atom.Copy()
		}
	}
	return nil
}

// intersectStarStar intersects two special forms (prefix/range).
func intersectStarStar(a, b sexp.Sexp) sexp.Sexp {
	ka, kb := starKind(a), starKind(b)
	if ka == "prefix" && kb == "prefix" {
		pa, pb := a.Nth(2).Text(), b.Nth(2).Text()
		switch {
		case strings.HasPrefix(pa, pb):
			return a.Copy()
		case strings.HasPrefix(pb, pa):
			return b.Copy()
		}
		return nil
	}
	if ka == "range" && kb == "range" {
		ra, erra := parseRange(a)
		rb, errb := parseRange(b)
		if erra != nil || errb != nil || ra.ordering != rb.ordering {
			return nil
		}
		out := ra
		if rb.hasLow {
			if !out.hasLow {
				out.hasLow, out.low, out.lowInc = true, rb.low, rb.lowInc
			} else if c := out.compare(rb.low, out.low); c > 0 {
				out.low, out.lowInc = rb.low, rb.lowInc
			} else if c == 0 {
				out.lowInc = out.lowInc && rb.lowInc
			}
		}
		if rb.hasHigh {
			if !out.hasHigh {
				out.hasHigh, out.high, out.highInc = true, rb.high, rb.highInc
			} else if c := out.compare(rb.high, out.high); c < 0 {
				out.high, out.highInc = rb.high, rb.highInc
			} else if c == 0 {
				out.highInc = out.highInc && rb.highInc
			}
		}
		if out.hasLow && out.hasHigh {
			c := out.compare(out.low, out.high)
			if c > 0 || (c == 0 && !(out.lowInc && out.highInc)) {
				return nil
			}
		}
		return out.sexp()
	}
	// prefix x range: sound conservative rules over bytewise orderings.
	if ka == "range" {
		a, b = b, a
		ka, kb = kb, ka
	}
	if ka == "prefix" && kb == "range" {
		r, err := parseRange(b)
		if err != nil || (r.ordering != OrdAlpha && r.ordering != OrdBinary) {
			return nil
		}
		p := a.Nth(2).Text()
		if rangeCoversPrefix(r, p) {
			return a.Copy()
		}
		if prefixCoversRange(p, r) {
			return b.Copy()
		}
		return nil
	}
	return nil
}

// intersectLists intersects element-wise; a shorter list's missing
// trailing elements read as (*) (shorter lists are more permissive,
// RFC 2693 section 6.3.3).
func intersectLists(a, b sexp.Sexp) sexp.Sexp {
	n := a.Len()
	if b.Len() > n {
		n = b.Len()
	}
	kids := make([]sexp.Sexp, n)
	for i := 0; i < n; i++ {
		ea, eb := a.Nth(i), b.Nth(i)
		switch {
		case ea == nil:
			kids[i] = eb.Copy()
		case eb == nil:
			kids[i] = ea.Copy()
		default:
			m := intersect(ea, eb)
			if m == nil {
				return nil
			}
			kids[i] = m
		}
	}
	return sexp.List(kids...)
}

// Covers reports whether t permits every request that u permits
// (u is a subset of t). Monotonicity proofs (weakening a delegation's
// restriction) and the final request-matching step both use Covers.
func Covers(t, u Tag) bool {
	return covers(t.expr, u.expr)
}

// CoversRequest reports whether grant t covers the single concrete
// request tag r; identical to Covers but named for call-site clarity.
func CoversRequest(t, r Tag) bool { return Covers(t, r) }

func covers(a, b sexp.Sexp) bool {
	if a == nil || b == nil {
		return false
	}
	if isStarForm(a) && starKind(a) == "all" {
		return true
	}
	// b set: must cover every member.
	if isStarForm(b) && starKind(b) == "set" {
		for i := 2; i < b.Len(); i++ {
			if !covers(a, b.Nth(i)) {
				return false
			}
		}
		return true // the empty union is vacuously covered
	}
	// a set: some member must cover b.
	if isStarForm(a) && starKind(a) == "set" {
		for i := 2; i < a.Len(); i++ {
			if covers(a.Nth(i), b) {
				return true
			}
		}
		return false
	}
	if b.IsAtom() {
		if a.IsAtom() {
			return string(a.Bytes()) == string(b.Bytes())
		}
		if !isStarForm(a) {
			return false
		}
		switch starKind(a) {
		case "prefix":
			return strings.HasPrefix(string(b.Bytes()), a.Nth(2).Text())
		case "range":
			r, err := parseRange(a)
			return err == nil && r.contains(string(b.Bytes()))
		}
		return false
	}
	if a.IsAtom() {
		return false // an atom covers nothing but itself
	}
	aStar, bStar := isStarForm(a), isStarForm(b)
	switch {
	case aStar && bStar:
		return coversStarStar(a, b)
	case aStar && !bStar:
		return false // prefix/range never cover lists
	case !aStar && bStar:
		return false // a plain list never covers an infinite byte-string family
	default:
		// Lists: element-wise with missing trailing elements of the
		// *shorter* list reading as (*). a covers b iff each a element
		// covers the corresponding b element; where b is shorter, b's
		// element is (*), which only (*) covers.
		n := a.Len()
		if b.Len() > n {
			n = b.Len()
		}
		star := starExpr()
		for i := 0; i < n; i++ {
			ea, eb := a.Nth(i), b.Nth(i)
			if ea == nil {
				ea = star
			}
			if eb == nil {
				eb = star
			}
			if !covers(ea, eb) {
				return false
			}
		}
		return true
	}
}

func coversStarStar(a, b sexp.Sexp) bool {
	ka, kb := starKind(a), starKind(b)
	switch {
	case ka == "prefix" && kb == "prefix":
		return strings.HasPrefix(b.Nth(2).Text(), a.Nth(2).Text())
	case ka == "range" && kb == "range":
		ra, erra := parseRange(a)
		rb, errb := parseRange(b)
		if erra != nil || errb != nil || ra.ordering != rb.ordering {
			return false
		}
		if ra.hasLow {
			if !rb.hasLow {
				return false
			}
			c := ra.compare(rb.low, ra.low)
			if c < 0 || (c == 0 && rb.lowInc && !ra.lowInc) {
				return false
			}
		}
		if ra.hasHigh {
			if !rb.hasHigh {
				return false
			}
			c := ra.compare(rb.high, ra.high)
			if c > 0 || (c == 0 && rb.highInc && !ra.highInc) {
				return false
			}
		}
		return true
	case ka == "prefix" && kb == "range":
		r, err := parseRange(b)
		if err != nil || (r.ordering != OrdAlpha && r.ordering != OrdBinary) {
			return false
		}
		return prefixCoversRange(a.Nth(2).Text(), r)
	case ka == "range" && kb == "prefix":
		r, err := parseRange(a)
		if err != nil || (r.ordering != OrdAlpha && r.ordering != OrdBinary) {
			return false
		}
		return rangeCoversPrefix(r, b.Nth(2).Text())
	}
	return false
}

// prefixCoversRange reports whether every string in r carries prefix
// p, for bytewise orderings. The strings with prefix p are exactly
// the interval [p, nextPrefix(p)).
func prefixCoversRange(p string, r rangeSpec) bool {
	if !r.hasLow || r.low < p {
		return false
	}
	// Lower bound >= p guarantees the left edge. Right edge: every
	// member must be < nextPrefix(p). When no such bound exists
	// (p empty or all 0xff), any string >= p carries the prefix.
	np, bounded := nextPrefix(p)
	if !bounded {
		return true
	}
	if !r.hasHigh {
		return false
	}
	return r.high < np || (r.high == np && !r.highInc)
}

// rangeCoversPrefix reports whether r contains every string with
// prefix p: [p, nextPrefix(p)) must lie inside r.
func rangeCoversPrefix(r rangeSpec, p string) bool {
	if r.hasLow {
		if p < r.low || (p == r.low && !r.lowInc) {
			return false
		}
	}
	if r.hasHigh {
		np, bounded := nextPrefix(p)
		if !bounded {
			return false
		}
		// All prefix-p strings are < np; need np <= high (strict
		// containment is fine whether or not high is inclusive).
		if np > r.high {
			return false
		}
	}
	return true
}

// nextPrefix returns the smallest string greater than every string
// with prefix p, and whether such a bound exists (it does not when p
// is empty or all 0xff bytes).
func nextPrefix(p string) (string, bool) {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}
