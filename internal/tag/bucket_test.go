package tag

import "testing"

// TestBucketValues pins the bucketing rules the prover's edge index
// relies on.
func TestBucketValues(t *testing.T) {
	cases := []struct {
		tg   Tag
		want string
		ok   bool
	}{
		{Literal("read"), "read", true},
		{Literal(""), "", true}, // the empty atom is a real bucket
		{ListOf(Literal("files"), Literal("read")), "files", true},
		{ListOf(Literal("files")), "files", true},
		{ListOf(Literal("files"), Prefix("/tmp/")), "files", true},
		{All(), "", false},
		{Prefix("re"), "", false},
		{Range(OrdAlpha, BoundGE, "a", BoundLE, "z"), "", false},
		{SetOf(Literal("read"), Literal("write")), "", false},
		{SetOf(), "", false},
		{ListOf(), "", false},            // () covers every list
		{ListOf(All()), "", false},       // star head spans buckets
		{ListOf(Prefix("f")), "", false}, // prefix head spans buckets
		{ListOf(ListOf()), "", false},    // list head is unbucketable
		{Tag{}, "", false},               // invalid zero tag
	}
	for _, c := range cases {
		got, ok := c.tg.Bucket()
		if got != c.want || ok != c.ok {
			t.Errorf("Bucket(%s) = (%q, %v), want (%q, %v)", c.tg, got, ok, c.want, c.ok)
		}
	}
}

// TestBucketSoundVsCovers exhaustively checks the contract the edge
// index depends on: whenever Covers(a, b) holds for a bucketable
// query b, a either shares b's bucket or has none (and so lives in
// the index's catch-all). Unbucketable queries scan the full fan-in,
// so they need no guarantee. A violation here means a bucketed
// lookup could silently miss a covering grant.
func TestBucketSoundVsCovers(t *testing.T) {
	tags := []Tag{
		All(),
		Literal("read"), Literal("write"), Literal(""),
		Prefix(""), Prefix("re"), Prefix("read"),
		Range(OrdAlpha, BoundGE, "a", BoundLE, "z"),
		Range(OrdNumeric, BoundGE, "1", BoundLE, "100"),
		SetOf(), SetOf(Literal("read")), SetOf(Literal("read"), Literal("write")),
		SetOf(Prefix("re"), ListOf(Literal("files"))),
		ListOf(),
		ListOf(Literal("files")),
		ListOf(Literal("files"), Literal("read")),
		ListOf(Literal("files"), All()),
		ListOf(Literal("files"), Prefix("/tmp/")),
		ListOf(Literal("mail"), Literal("read")),
		ListOf(All(), Literal("read")),
		ListOf(Prefix("fi"), Literal("read")),
		ListOf(SetOf(Literal("files"), Literal("mail")), Literal("read")),
		ListOf(ListOf(Literal("x"))),
	}
	for _, a := range tags {
		for _, b := range tags {
			if !Covers(a, b) {
				continue
			}
			bb, bok := b.Bucket()
			if !bok {
				continue
			}
			if ab, aok := a.Bucket(); aok && ab != bb {
				t.Errorf("Covers(%s, %s) but buckets %q vs %q", a, b, ab, bb)
			}
		}
	}
}
