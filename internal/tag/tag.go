// Package tag implements SPKI authorization tags: the restriction
// language of Snowflake delegations (paper section 4.1). A tag denotes
// an infinitely refinable set of requests. The package provides the
// complete intersection and coverage algebra (the paper replaced
// Morcos' minimal implementation with a complete one; this is the Go
// equivalent, following RFC 2693 and Howell's thesis chapter 6).
//
// Tag expression grammar (inside "(tag ...)"):
//
//	texpr   = atom                  ; a literal byte string
//	        | "(*)"                 ; the set of all requests
//	        | "(* set" texpr* ")"   ; union
//	        | "(* prefix" atom ")"  ; byte strings with a prefix
//	        | "(* range" ord [lop low [hop high]] ")"
//	        | "(" texpr* ")"        ; a list; shorter lists are more
//	                                ; permissive (missing trailing
//	                                ; elements read as (*))
//
// Orderings for ranges: alpha, binary (bytewise), numeric (decimal).
package tag

import (
	"fmt"
	"math/big"

	"repro/internal/sexp"
)

// Tag is an immutable authorization tag. The zero value is invalid;
// use All, FromSexp, Parse, or the constructors.
type Tag struct {
	expr sexp.Sexp // the texpr, without the (tag ...) wrapper
}

// All returns the tag (*) that permits every request.
func All() Tag {
	return Tag{expr: starExpr()}
}

func starExpr() sexp.Sexp {
	return sexp.List(sexp.String("*"))
}

// Literal returns a tag matching exactly the given byte-string atom.
func Literal(s string) Tag {
	return Tag{expr: sexp.String(s)}
}

// ListOf returns a list tag with the given element tags.
func ListOf(elems ...Tag) Tag {
	kids := make([]sexp.Sexp, len(elems))
	for i, e := range elems {
		kids[i] = e.expr
	}
	return Tag{expr: sexp.List(kids...)}
}

// SetOf returns the union of the given tags.
func SetOf(elems ...Tag) Tag {
	kids := make([]sexp.Sexp, 0, len(elems)+2)
	kids = append(kids, sexp.String("*"), sexp.String("set"))
	for _, e := range elems {
		kids = append(kids, e.expr)
	}
	return Tag{expr: sexp.List(kids...)}
}

// Prefix returns a tag matching all byte strings beginning with p.
func Prefix(p string) Tag {
	return Tag{expr: sexp.List(sexp.String("*"), sexp.String("prefix"), sexp.String(p))}
}

// Ordering names for Range tags.
const (
	OrdAlpha   = "alpha"
	OrdBinary  = "binary"
	OrdNumeric = "numeric"
)

// Bound operators for Range tags.
const (
	BoundGE = "ge" // >= low
	BoundGT = "g"  // > low
	BoundLE = "le" // <= high
	BoundLT = "l"  // < high
)

// Range returns a range tag over the given ordering. Either bound may
// be omitted by passing an empty op.
func Range(ordering, lowOp, low, highOp, high string) Tag {
	kids := []sexp.Sexp{sexp.String("*"), sexp.String("range"), sexp.String(ordering)}
	if lowOp != "" {
		kids = append(kids, sexp.String(lowOp), sexp.String(low))
	}
	if highOp != "" {
		kids = append(kids, sexp.String(highOp), sexp.String(high))
	}
	return Tag{expr: sexp.List(kids...)}
}

// FromSexp interprets e as a tag expression. If e is a "(tag ...)"
// wrapper, the inner expression is used. The expression is validated
// structurally.
func FromSexp(e sexp.Sexp) (Tag, error) {
	if e == nil {
		return Tag{}, fmt.Errorf("tag: nil expression")
	}
	if e.IsList() && e.Tag() == "tag" {
		if e.Len() != 2 {
			return Tag{}, fmt.Errorf("tag: (tag ...) wrapper must have one body, has %d", e.Len()-1)
		}
		e = e.Nth(1)
	}
	if err := validate(e); err != nil {
		return Tag{}, err
	}
	return Tag{expr: e.Copy()}, nil
}

// Parse parses a tag from its textual (advanced or canonical)
// encoding, with or without the (tag ...) wrapper.
func Parse(s string) (Tag, error) {
	e, err := sexp.ParseOne([]byte(s))
	if err != nil {
		return Tag{}, err
	}
	return FromSexp(e)
}

// MustParse is Parse, panicking on error. For tests and literals.
func MustParse(s string) Tag {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// validate checks the structural well-formedness of a tag expression.
func validate(e sexp.Sexp) error {
	if e == nil {
		return fmt.Errorf("tag: nil subexpression")
	}
	if e.IsAtom() {
		return nil
	}
	if isStarForm(e) {
		switch kind := starKind(e); kind {
		case "all":
			return nil
		case "set":
			for i := 2; i < e.Len(); i++ {
				if err := validate(e.Nth(i)); err != nil {
					return err
				}
			}
			return nil
		case "prefix":
			if e.Len() != 3 || !e.Nth(2).IsAtom() {
				return fmt.Errorf("tag: malformed (* prefix ...)")
			}
			return nil
		case "range":
			_, err := parseRange(e)
			return err
		default:
			return fmt.Errorf("tag: unknown star form %q", kind)
		}
	}
	for i := 0; i < e.Len(); i++ {
		if err := validate(e.Nth(i)); err != nil {
			return err
		}
	}
	return nil
}

// isStarForm reports whether e is a (* ...) special form.
func isStarForm(e sexp.Sexp) bool {
	if !e.IsList() || e.Len() < 1 {
		return false
	}
	n := e.Nth(0)
	// string(Bytes()) in a comparison compiles without allocating.
	return n.IsAtom() && string(n.Bytes()) == "*"
}

// starKind returns "all", "set", "prefix", or "range".
func starKind(e sexp.Sexp) string {
	if e.Len() == 1 {
		return "all"
	}
	switch n := e.Nth(1); {
	case string(n.Bytes()) == "set":
		return "set"
	case string(n.Bytes()) == "prefix":
		return "prefix"
	case string(n.Bytes()) == "range":
		return "range"
	}
	return e.Nth(1).Text()
}

// Sexp returns the tag body wrapped as "(tag <texpr>)". The body is
// shared, not copied: tag expressions are immutable once built, and
// nothing in the system mutates expressions it receives.
func (t Tag) Sexp() sexp.Sexp {
	return sexp.List(sexp.String("tag"), t.expr)
}

// Body returns a copy of the bare tag expression.
func (t Tag) Body() sexp.Sexp { return t.expr.Copy() }

// Valid reports whether t was properly constructed.
func (t Tag) Valid() bool { return t.expr != nil }

// IsAll reports whether t is exactly (*).
func (t Tag) IsAll() bool {
	return t.expr != nil && isStarForm(t.expr) && starKind(t.expr) == "all"
}

// Equal reports structural equality of two tags.
func (t Tag) Equal(u Tag) bool { return sexp.Equal(t.expr, u.expr) }

// Bucket returns a coarse partition key for tag indexes, such that for
// any tags t and w, Covers(t, w) implies Bucket(t) == Bucket(w) or t
// is unbucketable. An atom buckets by its bytes; a plain list with an
// atom head buckets by the head (element-wise coverage forces equal
// heads). Star forms and headless lists return ok=false: they can
// cover tags across buckets, so an index must keep them in a
// catch-all scanned on every lookup. Distinct tags may share a bucket
// — the key narrows a candidate scan, it never decides coverage.
func (t Tag) Bucket() (key string, ok bool) {
	e := t.expr
	if e == nil {
		return "", false
	}
	if e.IsAtom() {
		return string(e.Bytes()), true
	}
	if isStarForm(e) || e.Len() == 0 {
		return "", false
	}
	if h := e.Nth(0); h.IsAtom() {
		return string(h.Bytes()), true
	}
	return "", false
}

// Key returns a canonical map key for the tag.
func (t Tag) Key() string { return t.expr.Key() }

// String renders the tag in advanced form with the (tag ...) wrapper.
func (t Tag) String() string {
	if t.expr == nil {
		return "(tag <invalid>)"
	}
	return t.Sexp().String()
}

// rangeSpec is a decoded (* range ...) expression.
type rangeSpec struct {
	ordering        string
	hasLow, hasHigh bool
	lowInc, highInc bool // inclusive bounds
	low, high       string
}

func parseRange(e sexp.Sexp) (rangeSpec, error) {
	var r rangeSpec
	if e.Len() < 3 {
		return r, fmt.Errorf("tag: malformed (* range ...)")
	}
	r.ordering = e.Nth(2).Text()
	switch r.ordering {
	case OrdAlpha, OrdBinary, OrdNumeric, "time", "date":
	default:
		return r, fmt.Errorf("tag: unknown range ordering %q", r.ordering)
	}
	i := 3
	if i < e.Len() {
		op := e.Nth(i).Text()
		if op == BoundGE || op == BoundGT {
			if i+1 >= e.Len() || !e.Nth(i+1).IsAtom() {
				return r, fmt.Errorf("tag: range lower bound missing value")
			}
			r.hasLow, r.lowInc, r.low = true, op == BoundGE, e.Nth(i+1).Text()
			i += 2
		}
	}
	if i < e.Len() {
		op := e.Nth(i).Text()
		if op != BoundLE && op != BoundLT {
			return r, fmt.Errorf("tag: bad range bound op %q", op)
		}
		if i+1 >= e.Len() || !e.Nth(i+1).IsAtom() {
			return r, fmt.Errorf("tag: range upper bound missing value")
		}
		r.hasHigh, r.highInc, r.high = true, op == BoundLE, e.Nth(i+1).Text()
		i += 2
	}
	if i != e.Len() {
		return r, fmt.Errorf("tag: trailing junk in (* range ...)")
	}
	if r.ordering == OrdNumeric {
		if r.hasLow {
			if _, ok := new(big.Rat).SetString(r.low); !ok {
				return r, fmt.Errorf("tag: bad numeric bound %q", r.low)
			}
		}
		if r.hasHigh {
			if _, ok := new(big.Rat).SetString(r.high); !ok {
				return r, fmt.Errorf("tag: bad numeric bound %q", r.high)
			}
		}
	}
	return r, nil
}

func (r rangeSpec) sexp() sexp.Sexp {
	kids := []sexp.Sexp{sexp.String("*"), sexp.String("range"), sexp.String(r.ordering)}
	if r.hasLow {
		op := BoundGT
		if r.lowInc {
			op = BoundGE
		}
		kids = append(kids, sexp.String(op), sexp.String(r.low))
	}
	if r.hasHigh {
		op := BoundLT
		if r.highInc {
			op = BoundLE
		}
		kids = append(kids, sexp.String(op), sexp.String(r.high))
	}
	return sexp.List(kids...)
}

// compare compares two values under the range's ordering; returns
// -1, 0, +1. Numeric parses decimals; alpha/binary/time/date compare
// bytewise.
func (r rangeSpec) compare(a, b string) int {
	if r.ordering == OrdNumeric {
		x, okx := new(big.Rat).SetString(a)
		y, oky := new(big.Rat).SetString(b)
		if okx && oky {
			return x.Cmp(y)
		}
		// Non-numeric operands sort bytewise as a fallback.
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// contains reports whether value v lies within the range.
func (r rangeSpec) contains(v string) bool {
	if r.ordering == OrdNumeric {
		if _, ok := new(big.Rat).SetString(v); !ok {
			return false
		}
	}
	if r.hasLow {
		c := r.compare(v, r.low)
		if c < 0 || (c == 0 && !r.lowInc) {
			return false
		}
	}
	if r.hasHigh {
		c := r.compare(v, r.high)
		if c > 0 || (c == 0 && !r.highInc) {
			return false
		}
	}
	return true
}
