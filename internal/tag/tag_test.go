package tag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []string{
		`(tag (*))`,
		`(tag (web (method GET) (resourcePath "/inbox")))`,
		`(tag (* set read write))`,
		`(tag (* prefix "/home/alice/"))`,
		`(tag (* range numeric ge 1 le 10))`,
		`(tag (* range alpha ge a))`,
		`(tag hello)`,
	}
	for _, c := range cases {
		tg, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%s): %v", c, err)
		}
		back, err := Parse(tg.String())
		if err != nil {
			t.Fatalf("reparse(%s): %v", tg, err)
		}
		if !tg.Equal(back) {
			t.Errorf("round trip %s -> %s", c, back)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		`(tag)`,
		`(tag a b)`,
		`(tag (* bogus))`,
		`(tag (* prefix))`,
		`(tag (* prefix (a)))`,
		`(tag (* range))`,
		`(tag (* range sideways ge 1))`,
		`(tag (* range numeric ge))`,
		`(tag (* range numeric le 1 ge 2))`, // bounds out of order
		`(tag (* range numeric ge notanumber))`,
		`(tag (* range numeric ge 1 le 2 le 3))`,
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%s) succeeded, want error", c)
		}
	}
}

func TestAllIdentity(t *testing.T) {
	a := All()
	if !a.IsAll() {
		t.Fatal("All().IsAll() false")
	}
	x := MustParse(`(tag (web (method GET)))`)
	for _, pair := range [][2]Tag{{a, x}, {x, a}} {
		got, ok := Intersect(pair[0], pair[1])
		if !ok || !got.Equal(x) {
			t.Errorf("Intersect with (*) = %v, %v", got, ok)
		}
	}
	if !Covers(a, x) {
		t.Error("(*) should cover everything")
	}
	if Covers(x, a) {
		t.Error("a list should not cover (*)")
	}
}

func TestAtomIntersection(t *testing.T) {
	a, b := Literal("read"), Literal("read")
	c := Literal("write")
	if got, ok := Intersect(a, b); !ok || !got.Equal(a) {
		t.Error("equal atoms should intersect to themselves")
	}
	if _, ok := Intersect(a, c); ok {
		t.Error("distinct atoms should not intersect")
	}
	if !Covers(a, b) || Covers(a, c) {
		t.Error("atom coverage wrong")
	}
}

func TestListIntersectionShorterIsMorePermissive(t *testing.T) {
	// (tag (ftp)) permits (ftp read file); their intersection is the
	// longer, more specific form.
	short := MustParse(`(tag (ftp))`)
	long := MustParse(`(tag (ftp read (file "/etc/motd")))`)
	got, ok := Intersect(short, long)
	if !ok {
		t.Fatal("prefix-list intersection empty")
	}
	if !got.Equal(long) {
		t.Errorf("intersection = %s, want %s", got, long)
	}
	if !Covers(short, long) {
		t.Error("shorter list must cover its extension")
	}
	if Covers(long, short) {
		t.Error("longer list must not cover the shorter")
	}
}

func TestListElementMismatch(t *testing.T) {
	a := MustParse(`(tag (http GET))`)
	b := MustParse(`(tag (http PUT))`)
	if _, ok := Intersect(a, b); ok {
		t.Error("mismatched elements should empty the intersection")
	}
}

func TestSetOperations(t *testing.T) {
	s := MustParse(`(tag (* set read write))`)
	r := Literal("read")
	w := Literal("write")
	x := Literal("execute")
	if got, ok := Intersect(s, r); !ok || !got.Equal(r) {
		t.Errorf("set ∩ member = %v %v", got, ok)
	}
	if _, ok := Intersect(s, x); ok {
		t.Error("set ∩ non-member should be empty")
	}
	if !Covers(s, r) || !Covers(s, w) || Covers(s, x) {
		t.Error("set coverage wrong")
	}
	// Set covers a subset set.
	sub := MustParse(`(tag (* set read))`)
	if !Covers(s, sub) {
		t.Error("set should cover subset")
	}
	if Covers(sub, s) {
		t.Error("subset should not cover superset")
	}
}

func TestSetIntersectionSet(t *testing.T) {
	a := MustParse(`(tag (* set read write admin))`)
	b := MustParse(`(tag (* set write admin audit))`)
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("overlapping sets should intersect")
	}
	for _, m := range []Tag{Literal("write"), Literal("admin")} {
		if !Covers(got, m) {
			t.Errorf("intersection missing %s", m)
		}
	}
	for _, m := range []Tag{Literal("read"), Literal("audit")} {
		if Covers(got, m) {
			t.Errorf("intersection wrongly contains %s", m)
		}
	}
}

func TestPrefixOperations(t *testing.T) {
	p := Prefix("/home/alice/")
	in := Literal("/home/alice/mail")
	out := Literal("/home/bob/mail")
	if got, ok := Intersect(p, in); !ok || !got.Equal(in) {
		t.Error("prefix ∩ matching atom")
	}
	if _, ok := Intersect(p, out); ok {
		t.Error("prefix ∩ non-matching atom should be empty")
	}
	longer := Prefix("/home/alice/mail/")
	got, ok := Intersect(p, longer)
	if !ok || !got.Equal(longer) {
		t.Error("prefix ∩ longer prefix should be the longer")
	}
	if !Covers(p, longer) || Covers(longer, p) {
		t.Error("prefix coverage wrong")
	}
	other := Prefix("/var/")
	if _, ok := Intersect(p, other); ok {
		t.Error("disjoint prefixes should not intersect")
	}
}

func TestRangeOperations(t *testing.T) {
	r := MustParse(`(tag (* range numeric ge 10 le 20))`)
	if got, ok := Intersect(r, Literal("15")); !ok || !got.Equal(Literal("15")) {
		t.Error("range ∩ member")
	}
	for _, v := range []string{"9", "21", "abc"} {
		if _, ok := Intersect(r, Literal(v)); ok {
			t.Errorf("range ∩ %q should be empty", v)
		}
	}
	// Boundary semantics.
	if !Covers(r, Literal("10")) || !Covers(r, Literal("20")) {
		t.Error("closed bounds must include endpoints")
	}
	open := MustParse(`(tag (* range numeric g 10 l 20))`)
	if Covers(open, Literal("10")) || Covers(open, Literal("20")) {
		t.Error("open bounds must exclude endpoints")
	}
	if !Covers(open, Literal("10.5")) {
		t.Error("numeric ordering must handle decimals")
	}
}

func TestRangeIntersectRange(t *testing.T) {
	a := MustParse(`(tag (* range numeric ge 0 le 10))`)
	b := MustParse(`(tag (* range numeric ge 5 le 15))`)
	got, ok := Intersect(a, b)
	if !ok {
		t.Fatal("overlapping ranges must intersect")
	}
	if !Covers(got, Literal("7")) || Covers(got, Literal("3")) || Covers(got, Literal("12")) {
		t.Errorf("range intersection wrong: %s", got)
	}
	c := MustParse(`(tag (* range numeric ge 11 le 15))`)
	if _, ok := Intersect(a, c); ok {
		t.Error("disjoint ranges must not intersect")
	}
	// Touching endpoints: [0,10] ∩ [10,15] = {10}.
	d := MustParse(`(tag (* range numeric ge 10 le 15))`)
	got, ok = Intersect(a, d)
	if !ok || !Covers(got, Literal("10")) || Covers(got, Literal("11")) {
		t.Errorf("touching ranges: %v %v", got, ok)
	}
	// Open touching: [0,10) ∩ [10,15] = empty.
	e := MustParse(`(tag (* range numeric ge 0 l 10))`)
	if _, ok := Intersect(e, d); ok {
		t.Error("open touching ranges must be empty")
	}
}

func TestRangeCoversRange(t *testing.T) {
	outer := MustParse(`(tag (* range numeric ge 0 le 100))`)
	inner := MustParse(`(tag (* range numeric ge 10 le 20))`)
	if !Covers(outer, inner) || Covers(inner, outer) {
		t.Error("range nesting coverage wrong")
	}
	unbounded := MustParse(`(tag (* range numeric ge 0))`)
	if !Covers(unbounded, outer) || Covers(outer, unbounded) {
		t.Error("unbounded range coverage wrong")
	}
	closed := MustParse(`(tag (* range numeric ge 0 le 10))`)
	halfOpen := MustParse(`(tag (* range numeric ge 0 l 10))`)
	if !Covers(closed, halfOpen) || Covers(halfOpen, closed) {
		t.Error("inclusive/exclusive endpoint coverage wrong")
	}
}

func TestPrefixRangeInteraction(t *testing.T) {
	p := Prefix("b")
	inside := MustParse(`(tag (* range alpha ge ba le bz))`)
	if !Covers(p, inside) {
		t.Error("prefix b should cover [ba,bz]")
	}
	straddle := MustParse(`(tag (* range alpha ge az le bz))`)
	if Covers(p, straddle) {
		t.Error("prefix b should not cover [az,bz]")
	}
	wide := MustParse(`(tag (* range alpha ge a le z))`)
	if !Covers(wide, p) {
		t.Error("[a,z] should cover prefix b")
	}
	narrow := MustParse(`(tag (* range alpha ge bm le bz))`)
	if Covers(narrow, p) {
		t.Error("[bm,bz] should not cover prefix b")
	}
	// Intersection picks the smaller side when one covers the other.
	got, ok := Intersect(p, inside)
	if !ok || !got.Equal(inside) {
		t.Errorf("prefix ∩ covered range = %v %v", got, ok)
	}
}

func TestDifferentOrderingsDisjoint(t *testing.T) {
	a := MustParse(`(tag (* range numeric ge 1 le 9))`)
	b := MustParse(`(tag (* range alpha ge 1 le 9))`)
	if _, ok := Intersect(a, b); ok {
		t.Error("ranges over different orderings must not intersect")
	}
	if Covers(a, b) || Covers(b, a) {
		t.Error("ranges over different orderings must not cover")
	}
}

func TestWebTagScenario(t *testing.T) {
	// The paper's HTTP challenge (Figure 5): the minimum restriction
	// set for a GET on a protected service.
	grant := MustParse(`(tag (web (method GET) (service "mail") (* prefix "/inbox/")))`)
	request := MustParse(`(tag (web (method GET) (service "mail") "/inbox/42"))`)
	if !CoversRequest(grant, request) {
		t.Error("grant should authorize the request")
	}
	put := MustParse(`(tag (web (method PUT) (service "mail") "/inbox/42"))`)
	if CoversRequest(grant, put) {
		t.Error("grant should not authorize PUT")
	}
	elsewhere := MustParse(`(tag (web (method GET) (service "mail") "/outbox/1"))`)
	if CoversRequest(grant, elsewhere) {
		t.Error("grant should not authorize other paths")
	}
}

func TestIntersectionChainNarrows(t *testing.T) {
	// Delegation chains intersect restrictions: Alice grants Bob
	// read+write; Bob grants Charlie writes on /a only.
	alice := MustParse(`(tag (fs (* set read write) (* prefix "/")))`)
	bob := MustParse(`(tag (fs write (* prefix "/a/")))`)
	got, ok := Intersect(alice, bob)
	if !ok {
		t.Fatal("chain intersection empty")
	}
	okReq := MustParse(`(tag (fs write "/a/x"))`)
	badReq1 := MustParse(`(tag (fs read "/a/x"))`)
	badReq2 := MustParse(`(tag (fs write "/b/x"))`)
	if !Covers(got, okReq) {
		t.Error("narrowed grant should allow write under /a/")
	}
	if Covers(got, badReq1) || Covers(got, badReq2) {
		t.Error("narrowed grant leaks authority")
	}
}

func TestNextPrefix(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		bounded bool
	}{
		{"a", "b", true},
		{"az", "b", false}, // "az"+1 = "b"? No: 'z'+1='{'
	}
	_ = cases
	if np, ok := nextPrefix("a"); !ok || np != "b" {
		t.Errorf("nextPrefix(a) = %q %v", np, ok)
	}
	if np, ok := nextPrefix("az"); !ok || np != "a{" {
		t.Errorf("nextPrefix(az) = %q %v", np, ok)
	}
	if np, ok := nextPrefix("a\xff"); !ok || np != "b" {
		t.Errorf("nextPrefix(a\\xff) = %q %v", np, ok)
	}
	if _, ok := nextPrefix("\xff\xff"); ok {
		t.Error("nextPrefix(all-0xff) should be unbounded")
	}
	if _, ok := nextPrefix(""); ok {
		t.Error("nextPrefix(empty) should be unbounded")
	}
}

// --- property tests -------------------------------------------------

// randomTag generates a random tag; randomConcrete generates a fully
// concrete request tag (atoms and plain lists only).
func randomTag(r *rand.Rand, depth int) Tag {
	switch k := r.Intn(8); {
	case k == 0:
		return All()
	case k == 1 && depth > 0:
		n := 1 + r.Intn(3)
		elems := make([]Tag, n)
		for i := range elems {
			elems[i] = randomTag(r, depth-1)
		}
		return SetOf(elems...)
	case k == 2:
		return Prefix(randomWord(r, 3))
	case k == 3:
		lo, hi := r.Intn(50), 50+r.Intn(50)
		return Range(OrdNumeric, BoundGE, itoa(lo), BoundLE, itoa(hi))
	case k >= 4 && depth > 0:
		n := 1 + r.Intn(3)
		elems := make([]Tag, n)
		for i := range elems {
			elems[i] = randomTag(r, depth-1)
		}
		return ListOf(elems...)
	default:
		return Literal(randomWord(r, 5))
	}
}

func randomConcrete(r *rand.Rand, depth int) Tag {
	if depth == 0 || r.Intn(2) == 0 {
		return Literal(randomWord(r, 5))
	}
	n := 1 + r.Intn(3)
	elems := make([]Tag, n)
	for i := range elems {
		elems[i] = randomConcrete(r, depth-1)
	}
	return ListOf(elems...)
}

func randomWord(r *rand.Rand, maxLen int) string {
	n := 1 + r.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(4))
	}
	return string(b)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Soundness: the intersection is covered by both operands.
func TestQuickIntersectionSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTag(r, 3), randomTag(r, 3)
		i, ok := Intersect(a, b)
		if !ok {
			return true
		}
		return Covers(a, i) && Covers(b, i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Commutativity (semantic): a∩b and b∩a cover each other.
func TestQuickIntersectionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTag(r, 3), randomTag(r, 3)
		i1, ok1 := Intersect(a, b)
		i2, ok2 := Intersect(b, a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return Covers(i1, i2) && Covers(i2, i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Idempotence: a∩a is equivalent to a.
func TestQuickIntersectionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomTag(r, 3)
		i, ok := Intersect(a, a)
		if !ok {
			return false
		}
		return Covers(a, i) && Covers(i, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Covers is reflexive.
func TestQuickCoversReflexive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomTag(r, 3)
		return Covers(a, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Decision agreement: for concrete requests, membership in the
// intersection equals membership in both operands.
func TestQuickIntersectionDecidesConjunction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTag(r, 2), randomTag(r, 2)
		req := randomConcrete(r, 2)
		both := Covers(a, req) && Covers(b, req)
		i, ok := Intersect(a, b)
		inInter := ok && Covers(i, req)
		// Soundness direction must always hold: inInter -> both.
		if inInter && !both {
			return false
		}
		// Completeness direction holds except for the documented
		// conservative prefix×range case; exclude it by construction:
		// randomTag only generates numeric ranges, and prefixes never
		// cover numeric-range members, so completeness holds here too.
		return both == inInter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Coverage transitivity on the generated family.
func TestQuickCoversTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomTag(r, 2)
		b, okb := Intersect(a, randomTag(r, 2))
		if !okb {
			return true
		}
		c, okc := Intersect(b, randomTag(r, 2))
		if !okc {
			return true
		}
		// a covers b, b covers c (by soundness); then a must cover c.
		return Covers(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
