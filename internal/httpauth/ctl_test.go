package httpauth

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
)

// ctlWorld is one operator domain: the operator key, a delegated
// caller key, and the credential between them.
type ctlWorld struct {
	opPriv   *sfkey.PrivateKey
	operator principal.Principal
	caller   *sfkey.PrivateKey
	cred     *cert.Cert
}

func newCtlWorld(t *testing.T, ops ...string) *ctlWorld {
	t.Helper()
	op, err := sfkey.Generate()
	if err != nil {
		t.Fatal(err)
	}
	caller, err := sfkey.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cred, err := cert.DelegateCtl(op, principal.KeyOf(caller.Public()), time.Hour, ops...)
	if err != nil {
		t.Fatal(err)
	}
	return &ctlWorld{
		opPriv:   op,
		operator: principal.KeyOf(op.Public()),
		caller:   caller,
		cred:     cred,
	}
}

func (w *ctlWorld) signer() *CtlSigner {
	return NewCtlSigner(prover.NewKeyClosure(w.caller), w.operator, w.cred)
}

func ctlRequest(t *testing.T, body string) (*http.Request, []byte) {
	t.Helper()
	b := []byte(body)
	req, err := http.NewRequest(http.MethodPost, "http://dir.example:8360/certdir/admin/crl", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return req, b
}

func TestCtlSignerGuardRoundTrip(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	rs := cert.NewRevocationStore()
	guard := NewCtlGuard(w.operator, rs)
	guard.Cache = core.NewProofCache(64)
	rs.AttachCache(guard.Cache)

	req, body := ctlRequest(t, "(crl)")
	if err := w.signer().Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatalf("Authorize: %v", err)
	}
	if st := guard.Stats(); st.Authorized != 1 || st.Denied != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCtlProofCacheFastPath shows control-plane auth riding the
// shared verified-proof cache: after one guard has verified the
// credential chain, another verifier bound to the same revocation
// store (a second listener, a restarted guard) re-verifies only the
// fresh request-hash leaf — the chain's verdict is a cache hit, not a
// second signature check.
func TestCtlProofCacheFastPath(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	rs := cert.NewRevocationStore()
	cache := core.NewProofCache(64)
	rs.AttachCache(cache)
	s := w.signer()

	authorize := func(g *CtlGuard, body string) {
		t.Helper()
		req, b := ctlRequest(t, body)
		if err := s.Sign(req, b, cert.CtlTag(cert.CtlAdmin)); err != nil {
			t.Fatalf("Sign: %v", err)
		}
		if err := g.Authorize(req, b, cert.CtlTag(cert.CtlAdmin)); err != nil {
			t.Fatalf("Authorize: %v", err)
		}
	}
	guard1 := NewCtlGuard(w.operator, rs)
	guard1.Cache = cache
	authorize(guard1, "(crl one)")

	// Same guard, new request: the persistent context's memo carries
	// the chain verdict — no chain re-verification.
	cold := sfkey.SigVerifies()
	authorize(guard1, "(crl two)")
	if warm := sfkey.SigVerifies() - cold; warm > 1 {
		t.Fatalf("warm same-guard call performed %d signature verifications, want <= 1", warm)
	}

	// Fresh guard sharing cache and revocation view: its cold start
	// rides the SHARED cache for the credential chain.
	guard2 := NewCtlGuard(w.operator, rs)
	guard2.Cache = cache
	cold = sfkey.SigVerifies()
	hitsBefore := cache.Hits()
	authorize(guard2, "(crl three)")
	if warm := sfkey.SigVerifies() - cold; warm > 1 {
		t.Fatalf("fresh guard performed %d signature verifications, want <= 1 (shared cache)", warm)
	}
	if cache.Hits() == hitsBefore {
		t.Fatal("no shared proof-cache hits for the credential chain")
	}
}

func TestCtlGuardDenials(t *testing.T) {
	w := newCtlWorld(t, cert.CtlPublish) // publish-only credential
	rs := cert.NewRevocationStore()
	guard := NewCtlGuard(w.operator, rs)

	// Missing header entirely.
	req, body := ctlRequest(t, "(crl)")
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err != ErrCtlNoProof {
		t.Fatalf("missing header: got %v, want ErrCtlNoProof", err)
	}

	// Wrong scheme.
	req, body = ctlRequest(t, "(crl)")
	req.Header.Set("Authorization", "Basic Zm9vOmJhcg==")
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err == nil {
		t.Fatal("wrong scheme accepted")
	}

	// Wrong tag: a publish credential cannot satisfy the admin tag —
	// the client-side prover already refuses to build the proof.
	req, body = ctlRequest(t, "(crl)")
	if err := w.signer().Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err == nil {
		t.Fatal("publish-only signer built an admin proof")
	}
	// And a publish proof replayed against the admin tag fails
	// server-side on tag coverage.
	if err := w.signer().Sign(req, body, cert.CtlTag(cert.CtlPublish)); err != nil {
		t.Fatalf("Sign publish: %v", err)
	}
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err == nil {
		t.Fatal("publish proof accepted for admin tag")
	}

	// Tampered body: the proof subject is the request hash, so a body
	// swap after signing must fail.
	req, body = ctlRequest(t, "(crl real)")
	s := w.signer()
	if err := s.Sign(req, body, cert.CtlTag(cert.CtlPublish)); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := guard.Authorize(req, []byte("(crl forged)"), cert.CtlTag(cert.CtlPublish)); err == nil {
		t.Fatal("tampered body accepted")
	}

	if st := guard.Stats(); st.Denied == 0 {
		t.Fatalf("denials not counted: %+v", st)
	}
}

// TestCtlGuardExpiredChain: a credential whose window has lapsed is
// refused even though the signature is perfect. The signer's clock is
// frozen inside the window so it still builds the proof; the guard
// verifies at real now, after expiry.
func TestCtlGuardExpiredChain(t *testing.T) {
	op, _ := sfkey.Generate()
	caller, _ := sfkey.Generate()
	operator := principal.KeyOf(op.Public())
	then := time.Now().Add(-2 * time.Hour)
	cred, err := cert.Delegate(op, principal.KeyOf(caller.Public()), operator,
		cert.CtlTag(cert.CtlAdmin), core.Between(then, then.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewCtlSigner(prover.NewKeyClosure(caller), operator, cred)
	s.Clock = func() time.Time { return then.Add(time.Minute) }

	req, body := ctlRequest(t, "(crl)")
	if err := s.Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatalf("Sign in window: %v", err)
	}
	guard := NewCtlGuard(operator, cert.NewRevocationStore())
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err == nil {
		t.Fatal("expired chain accepted")
	}
}

// TestCtlGuardRevokedCredential: installing a CRL naming the
// credential locks the holder out immediately — the epoch bump kills
// the cached verdict and re-verification hits the Revoked check.
func TestCtlGuardRevokedCredential(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	rs := cert.NewRevocationStore()
	guard := NewCtlGuard(w.operator, rs)
	guard.Cache = core.NewProofCache(64)
	rs.AttachCache(guard.Cache)
	s := w.signer()

	req, body := ctlRequest(t, "(crl)")
	if err := s.Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatal(err)
	}
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatalf("before revocation: %v", err)
	}
	if err := rs.Add(cert.NewRevocationList(w.opPriv, core.Forever, w.cred.Hash())); err != nil {
		t.Fatal(err)
	}
	// Same request, same proof: now refused.
	if err := guard.Authorize(req, body, cert.CtlTag(cert.CtlAdmin)); err == nil {
		t.Fatal("revoked operator credential still authorized")
	}
}

func TestCtlMiddleware(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	guard := NewCtlGuard(w.operator, cert.NewRevocationStore())
	var gotBody string
	inner := http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		wr.WriteHeader(http.StatusOK)
	})
	h := guard.Middleware(cert.CtlTag(cert.CtlAdmin), 1<<20, inner)

	// Unauthenticated: 401 with challenge headers.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "http://db.example/admin/crl", strings.NewReader("(crl)")))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: got %d, want 401", rec.Code)
	}
	if rec.Header().Get(HdrServiceIssuer) == "" || rec.Header().Get(HdrMinimumTag) == "" {
		t.Fatal("challenge headers missing")
	}

	// Signed: body reaches the inner handler intact.
	req, body := ctlRequest(t, "(crl payload)")
	if err := w.signer().Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("signed: got %d: %s", rec.Code, rec.Body)
	}
	if gotBody != "(crl payload)" {
		t.Fatalf("inner handler saw body %q", gotBody)
	}
}

// TestCtlSignerSweepsMintedEdges: each Sign mints a unique
// request-hash edge; a long-lived signer must shed expired ones
// instead of accumulating an edge per mutation forever.
func TestCtlSignerSweepsMintedEdges(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	s := w.signer()
	now := time.Now()
	s.Clock = func() time.Time { return now }
	for i := 0; i < 20; i++ {
		req, body := ctlRequest(t, fmt.Sprintf("(crl %d)", i))
		if err := s.Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
			t.Fatal(err)
		}
		// Advance past the mint TTL so earlier leaves expire.
		now = now.Add(CtlMintTTL + time.Second)
	}
	// Without sweeping the graph would hold ~20 minted leaves (plus
	// the credential); with per-TTL sweeps only the recent window
	// survives.
	if n := s.Prover.EdgeCount(); n > 5 {
		t.Fatalf("signer prover holds %d edges after 20 signs; expired mints not swept", n)
	}
}

// TestCtlMiddlewareOversizeBody: over-limit bodies are refused with
// 413, not truncated into a misleading proof failure.
func TestCtlMiddlewareOversizeBody(t *testing.T) {
	w := newCtlWorld(t, cert.CtlAdmin)
	guard := NewCtlGuard(w.operator, cert.NewRevocationStore())
	h := guard.Middleware(cert.CtlTag(cert.CtlAdmin), 16, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		t.Error("inner handler ran on an oversize body")
	}))
	req, body := ctlRequest(t, strings.Repeat("x", 64))
	if err := w.signer().Sign(req, body, cert.CtlTag(cert.CtlAdmin)); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: got %d, want 413", rec.Code)
	}
}
