package httpauth

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/tag"
)

// Mapper maps a request to the single principal that controls the
// requested resource and the minimum restriction set required to
// authorize it (the abstract ProtectedServlet methods of section
// 5.3.4). Note there is no ACL: the client is responsible for knowing
// and exploiting its group memberships as represented in delegations.
type Mapper func(r *http.Request) (issuer principal.Principal, minTag tag.Tag, err error)

// Protected wraps an http.Handler with Snowflake authorization: the
// Go analog of ProtectedServlet (section 5.3.4).
type Protected struct {
	// Service names this service in request tags.
	Service string
	// Map supplies issuer and minimum restriction per request.
	Map Mapper
	// Handler is the service implementation, invoked only after
	// authorization succeeds. The authorized request principal is
	// exposed via FromContext-style header Sf-Authorized-Subject.
	Handler http.Handler

	// SubjectTemplate, when non-nil, is sent with challenges so
	// clients know the proof subject must take a compound shape
	// (quoting gateways).
	SubjectTemplate principal.Principal

	// Clock for verification time; nil means time.Now.
	Clock func() time.Time
	// Revoked / Revalidate hook revocation state into verification.
	Revoked    func([]byte) bool
	Revalidate func([]byte, string) error
	// RevocationView identifies the revocation state behind Revoked
	// (cert.RevocationStore.View). With Revoked set but no view, the
	// shared proof cache is bypassed — safe but slow.
	RevocationView uint64
	// Cache is the verified-proof cache; nil means the process-wide
	// shared cache. Its revocation epoch must be bumped by whatever
	// store backs Revoked (cert.RevocationStore does this).
	Cache *core.ProofCache

	// Obs, when set, records one "httpauth.check" span per request,
	// continuing the trace named by the Sf-Trace request header.
	Obs *obs.Recorder
	// Audit, when set, receives one Decision per request naming the
	// principal, tag, verdict, and the cert hashes of the proof chain
	// that justified an admit.
	Audit *obs.AuditLog

	mu     sync.Mutex
	vctx   core.EpochContext       // persistent memo, flushed on epoch bumps
	proofs map[string][]core.Proof // verified proofs by subject key
	macs   map[string]*macSecret   // MAC key id -> state
	stats  ServerStats
}

// ServerStats counts server-side protocol work.
type ServerStats struct {
	Requests      int
	Challenges    int
	ProofVerifies int
	CacheHits     int
	MACVerifies   int
	MACEstablish  int
	Denied        int
}

type macSecret struct {
	secret []byte
	prin   principal.MAC
}

// NewProtected builds a protected handler.
func NewProtected(service string, m Mapper, h http.Handler) *Protected {
	return &Protected{
		Service: service,
		Map:     m,
		Handler: h,
		proofs:  make(map[string][]core.Proof),
		macs:    make(map[string]*macSecret),
	}
}

// Stats returns a copy of the counters.
func (p *Protected) Stats() ServerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ForgetProofs drops cached proofs (measurement harness).
func (p *Protected) ForgetProofs() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.proofs = make(map[string][]core.Proof)
	p.vctx.Reset()
}

func (p *Protected) now() time.Time {
	if p.Clock != nil {
		return p.Clock()
	}
	return time.Now()
}

// ServeHTTP implements the protocol: authorize or challenge.
func (p *Protected) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var span *obs.ActiveSpan
	if p.Obs != nil {
		var ctx context.Context
		ctx, span = p.Obs.StartFromHeader(r.Context(), r.Header.Get(obs.TraceHeader), "httpauth.check")
		defer span.End()
		r = r.WithContext(ctx)
	}
	p.mu.Lock()
	p.stats.Requests++
	p.mu.Unlock()

	issuer, minTag, err := p.Map(r)
	if err != nil {
		span.Fail(err)
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		span.Fail(err)
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	r.Body = io.NopCloser(newByteReader(body))
	reqPrin := ServerRequestPrincipal(r, body)
	reqTag := RequestTag(r.Method, p.Service, r.URL.Path)
	op := r.Method + " " + r.URL.Path
	span.SetAttr("principal", reqPrin.String())
	span.SetAttr("tag", reqTag.String())

	auth := r.Header.Get("Authorization")
	if auth == "" {
		p.audit(obs.Decision{
			Op: op, Principal: reqPrin.String(), Tag: reqTag.String(),
			Verdict: obs.VerdictChallenge, Reason: "no authorization header",
			Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
		})
		p.challenge(w, issuer, minTag)
		return
	}
	var proof core.Proof
	var reused bool
	scheme, params := parseAuthHeader(auth)
	switch scheme {
	case SchemeProof:
		proof, err = p.authorizeProof(r, params, reqPrin, issuer, reqTag)
	case SchemeMAC:
		proof, err = p.authorizeMAC(r, params, reqPrin, issuer, reqTag)
		reused = err == nil // admit chained through a proof on file
	default:
		err = fmt.Errorf("httpauth: unsupported scheme %q", scheme)
	}
	if err != nil {
		p.mu.Lock()
		p.stats.Denied++
		p.mu.Unlock()
		span.Fail(err)
		p.audit(obs.Decision{
			Op: op, Principal: reqPrin.String(), Tag: reqTag.String(),
			Verdict: obs.VerdictDeny, Reason: err.Error(),
			Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
		})
		// "403 Forbidden" indicates authorization failure after a
		// challenge was answered (section 5.3).
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	p.audit(obs.Decision{
		Op: op, Principal: reqPrin.String(), Tag: reqTag.String(),
		Verdict: obs.VerdictAdmit, CertHashes: core.LeafHashes(proof), CacheHit: reused,
		Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
	})

	// MAC establishment rides on any authorized request.
	if eph := r.Header.Get(HdrMACEstablish); eph != "" {
		if err := p.establishMAC(w, eph); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	r.Header.Set("Sf-Authorized-Subject", reqPrin.String())
	p.Handler.ServeHTTP(w, r)
}

// challenge emits the 401 of Figure 5.
func (p *Protected) challenge(w http.ResponseWriter, issuer principal.Principal, minTag tag.Tag) {
	p.mu.Lock()
	p.stats.Challenges++
	p.mu.Unlock()
	w.Header().Set("WWW-Authenticate", SchemeProof)
	w.Header().Set(HdrServiceIssuer, string(issuer.Sexp().Transport()))
	w.Header().Set(HdrMinimumTag, string(minTag.Sexp().Transport()))
	if p.SubjectTemplate != nil {
		w.Header().Set(HdrSubjectTemplate, string(p.SubjectTemplate.Sexp().Transport()))
	}
	http.Error(w, "401 Unauthorized: Snowflake proof required", http.StatusUnauthorized)
}

// authorizeProof handles Authorization: SnowflakeProof proof={...}.
// The proof's subject must be the hash of this very request (or, for
// gateways, the compound principal that signed request hash chains
// to).
func (p *Protected) authorizeProof(r *http.Request, params map[string]string, reqPrin principal.Hash, issuer principal.Principal, reqTag tag.Tag) (core.Proof, error) {
	raw, ok := params["proof"]
	if !ok {
		return nil, fmt.Errorf("httpauth: missing proof parameter")
	}
	proof, err := core.ParseProofPooled([]byte(raw))
	if err != nil {
		return nil, fmt.Errorf("httpauth: bad proof: %w", err)
	}
	// Batch the chain's certificate signature checks before taking
	// p.mu (lockscope): portable verdicts land in the shared proof
	// cache, so the verification walk inside Authorize finds them
	// instead of checking signatures one by one under the lock.
	// Authorize still owns the verdict (subject match, tag coverage).
	_ = cert.VerifyChain(p.scratchCtx(), proof)
	p.mu.Lock()
	defer p.mu.Unlock()
	ctx := p.lockedCtx()
	p.stats.ProofVerifies++
	if err := core.Authorize(ctx, proof, reqPrin, issuer, reqTag); err != nil {
		return nil, err
	}
	p.proofs[reqPrin.Key()] = append(p.proofs[reqPrin.Key()], proof)
	return proof, nil
}

// authorizeMAC handles Authorization: SnowflakeMAC keyid=..., mac=...:
// verify the HMAC over the request hash (establishing the local
// assumption "request speaks for MAC principal"), then chain through
// the proof on file for the MAC principal.
func (p *Protected) authorizeMAC(r *http.Request, params map[string]string, reqPrin principal.Hash, issuer principal.Principal, reqTag tag.Tag) (core.Proof, error) {
	keyID, mac := params["keyid"], params["mac"]
	if keyID == "" || mac == "" {
		return nil, fmt.Errorf("httpauth: missing keyid or mac")
	}
	// A proof for the MAC principal may ride along on this request.
	// Parse and chain-verify it before taking p.mu (lockscope): the
	// signature work needs nothing from the MAC table, and verifying
	// with a scratch context (no request-local assumptions) means only
	// proofs that stand on their own are filed for reuse.
	var rideAlong core.Proof
	rideAlongTried := false
	if raw := r.Header.Get(HdrProof); raw != "" {
		if proof, err := core.ParseProofPooled([]byte(raw)); err == nil {
			rideAlongTried = true
			if err := cert.VerifyChain(p.scratchCtx(), proof); err == nil {
				rideAlong = proof
			}
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ms, ok := p.macs[keyID]
	if !ok {
		return nil, fmt.Errorf("httpauth: unknown MAC key")
	}
	p.stats.MACVerifies++
	if !verifyMAC(ms.secret, reqPrin.Digest, mac) {
		return nil, fmt.Errorf("httpauth: MAC verification failed")
	}
	ctx := p.lockedCtx()
	// Local assumption witnessed by the HMAC check: this request
	// speaks for the MAC principal.
	link := core.SpeaksFor{Subject: reqPrin, Issuer: ms.prin, Tag: tag.All()}
	ctx.Assume(link)

	if rideAlongTried {
		p.stats.ProofVerifies++
	}
	if rideAlong != nil {
		k := rideAlong.Conclusion().Subject.Key()
		p.proofs[k] = append(p.proofs[k], rideAlong)
	}

	for _, stored := range p.proofs[ms.prin.Key()] {
		chain, err := core.NewTransitivity(core.Assume(link), stored)
		if err != nil {
			continue
		}
		if err := core.Authorize(ctx, chain, reqPrin, issuer, reqTag); err == nil {
			p.stats.CacheHits++
			return chain, nil
		}
	}
	return nil, &core.AuthError{Issuer: issuer, MinTag: reqTag, Reason: "no proof on file for MAC principal"}
}

// audit appends one decision record, stamping the layer and the
// revocation state the verdict was computed under. Nil Audit drops it.
func (p *Protected) audit(d obs.Decision) {
	if p.Audit == nil {
		return
	}
	d.Layer = "httpauth"
	cache := p.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	d.Epoch = cache.Epoch()
	d.View = p.RevocationView
	p.Audit.Append(d)
}

// lockedCtx refreshes the persistent verification context. Its local
// memo is the warm path across requests; a proof-cache epoch bump
// (CRL installed) discards it so no stale verdict survives.
// scratchCtx builds a throwaway verification context sharing the
// resource's clock, revocation hooks, and proof cache. It needs no
// lock — those fields are set before serving — so signature batching
// can run outside p.mu; portable verdicts still land in the shared
// ProofCache where the locked authorization walk finds them.
func (p *Protected) scratchCtx() *core.VerifyContext {
	cache := p.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	ctx := core.NewVerifyContext()
	ctx.Cache = cache
	ctx.Now = p.now()
	ctx.Revoked = p.Revoked
	ctx.Revalidate = p.Revalidate
	ctx.RevocationView = p.RevocationView
	return ctx
}

func (p *Protected) lockedCtx() *core.VerifyContext {
	cache := p.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	ctx := p.vctx.Refresh(cache)
	ctx.Now = p.now()
	ctx.Revoked = p.Revoked
	ctx.Revalidate = p.Revalidate
	ctx.RevocationView = p.RevocationView
	return ctx
}

// establishMAC answers the amortization handshake: generate a secret,
// encrypt it to the client's ephemeral X25519 key, and return key id,
// server ephemeral, and ciphertext in response headers.
func (p *Protected) establishMAC(w http.ResponseWriter, clientEphB64 string) error {
	clientEph, err := base64.StdEncoding.DecodeString(clientEphB64)
	if err != nil {
		return fmt.Errorf("httpauth: bad MAC establish key: %w", err)
	}
	secret, serverEphPub, sealed, err := sealSecret(clientEph)
	if err != nil {
		return err
	}
	mp := principal.MACOf(secret)
	keyID := hex.EncodeToString(mp.KeyHash[:8])
	p.mu.Lock()
	p.macs[keyID] = &macSecret{secret: secret, prin: mp}
	p.stats.MACEstablish++
	p.mu.Unlock()
	w.Header().Set(HdrMACKeyID, keyID)
	w.Header().Set(HdrMACServerEph, base64.StdEncoding.EncodeToString(serverEphPub))
	w.Header().Set(HdrMACSecret, base64.StdEncoding.EncodeToString(sealed))
	return nil
}

// computeMAC/verifyMAC authenticate a request hash under the shared
// secret.
func computeMAC(secret, reqHash []byte) string {
	m := hmac.New(sha256.New, secret)
	m.Write(reqHash)
	return base64.StdEncoding.EncodeToString(m.Sum(nil))
}

func verifyMAC(secret, reqHash []byte, macB64 string) bool {
	want, err := base64.StdEncoding.DecodeString(macB64)
	if err != nil {
		return false
	}
	m := hmac.New(sha256.New, secret)
	m.Write(reqHash)
	return hmac.Equal(m.Sum(nil), want)
}

// byteReader re-readably wraps a body.
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
