// Control-plane authorization: the management surface of every daemon
// (admin endpoints, directory publish/remove, gossip pushes) is
// guarded by the same speaks-for machinery that guards the data
// plane. A mutating request must carry an Authorization header in the
// SnowflakeProof scheme whose proof shows that the REQUEST HASH
// speaks for the daemon's operator principal regarding the
// operation's control tag (cert.CtlTag) — the identical shape the
// data-plane HTTP protocol uses (request.go), so there is no second
// credential system: operator credentials are ordinary delegation
// certificates, discovered, cached, and revoked through the ordinary
// pipeline. Verification rides the shared core.ProofCache fast path,
// and binding the guard to a cert.RevocationStore makes revoking an
// operator credential lock the holder out on the next request.
package httpauth

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/tag"
)

// CtlGuard authorizes mutating control-plane requests against an
// operator principal. The zero value with only Operator set is
// usable; nil-able fields fall back to the process-wide defaults.
// Safe for concurrent use.
type CtlGuard struct {
	// Operator is the principal the caller must prove its request
	// speaks for.
	Operator principal.Principal
	// Revocations, when set, binds verification to this revocation
	// store (Revoked hook + view), so installing a CRL that names an
	// operator credential locks its holder out on the very next
	// request — the epoch bump kills the cached verdict, re-
	// verification hits the Revoked check.
	Revocations *cert.RevocationStore
	// Cache is the verified-proof cache; nil means the shared one.
	Cache *core.ProofCache
	// Clock supplies verification time; nil means time.Now.
	Clock func() time.Time
	// Audit, when set, receives one Decision per Authorize call naming
	// the request principal, control tag, verdict, and — on admit —
	// the cert hashes of the operator credential chain.
	Audit *obs.AuditLog

	mu    sync.Mutex
	vctx  core.EpochContext
	stats CtlStats
}

// CtlStats counts guard decisions.
type CtlStats struct {
	Authorized int64
	Denied     int64
}

// NewCtlGuard builds a guard for the operator, bound to rs (which may
// be nil for a guard that enforces no revocation state — not
// recommended outside tests).
func NewCtlGuard(operator principal.Principal, rs *cert.RevocationStore) *CtlGuard {
	return &CtlGuard{Operator: operator, Revocations: rs}
}

func (g *CtlGuard) now() time.Time {
	if g.Clock != nil {
		return g.Clock()
	}
	return time.Now()
}

func (g *CtlGuard) cache() *core.ProofCache {
	if g.Cache != nil {
		return g.Cache
	}
	return core.SharedProofCache()
}

// Stats returns a copy of the counters.
func (g *CtlGuard) Stats() CtlStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Authorize decides one request: body is the already-read request
// body (the request principal covers it), ctl the operation's control
// tag. A nil error means the caller proved the request speaks for the
// operator regarding ctl. The error for a missing header is
// ErrCtlNoProof so servers can answer 401-with-challenge rather than
// 403.
func (g *CtlGuard) Authorize(r *http.Request, body []byte, ctl tag.Tag) error {
	start := time.Now()
	trace, _, _ := obs.ParseHeader(r.Header.Get(obs.TraceHeader))
	auth := r.Header.Get("Authorization")
	if auth == "" {
		g.deny()
		g.audit(obs.Decision{
			Op: r.URL.Path, Tag: ctl.String(), Verdict: obs.VerdictChallenge,
			Reason:   "no authorization header",
			Duration: time.Since(start).Microseconds(), Trace: trace,
		})
		return ErrCtlNoProof
	}
	fail := func(err error) error {
		g.deny()
		g.audit(obs.Decision{
			Op: r.URL.Path, Tag: ctl.String(), Verdict: obs.VerdictDeny,
			Reason:   err.Error(),
			Duration: time.Since(start).Microseconds(), Trace: trace,
		})
		return err
	}
	scheme, params := parseAuthHeader(auth)
	if scheme != SchemeProof {
		return fail(fmt.Errorf("httpauth: control plane wants scheme %s, got %q", SchemeProof, scheme))
	}
	raw, ok := params["proof"]
	if !ok {
		return fail(fmt.Errorf("httpauth: control-plane authorization missing proof parameter"))
	}
	proof, err := core.ParseProofPooled([]byte(raw))
	if err != nil {
		return fail(fmt.Errorf("httpauth: bad control-plane proof: %w", err))
	}
	reqPrin := ServerRequestPrincipal(r, body)

	g.mu.Lock()
	defer g.mu.Unlock()
	// The persistent context's memo is the warm path across requests;
	// it is rebuilt whenever the proof-cache epoch advances (a CRL
	// landed), so no verdict survives a revocation.
	ctx := g.vctx.Refresh(g.cache())
	ctx.Now = g.now()
	if g.Revocations != nil {
		g.Revocations.Bind(ctx)
	} else {
		ctx.Revoked = nil
		ctx.RevocationView = 0
	}
	err = core.Authorize(ctx, proof, reqPrin, g.Operator, ctl)
	// Every request memoizes its unique request-hash leaf in the
	// context, so between CRLs (epoch bumps) the memo only grows;
	// reset it once it is clearly past the credential-chain working
	// set. The chain verdicts live on in the shared cache, so a reset
	// costs a lookup, not a re-verification.
	if ctx.CacheSize() > ctlMemoMax {
		g.vctx.Reset()
	}
	if err != nil {
		g.stats.Denied++
		g.audit(obs.Decision{
			Op: r.URL.Path, Principal: reqPrin.String(), Tag: ctl.String(),
			Verdict: obs.VerdictDeny, Reason: err.Error(),
			Duration: time.Since(start).Microseconds(), Trace: trace,
		})
		return err
	}
	g.stats.Authorized++
	g.audit(obs.Decision{
		Op: r.URL.Path, Principal: reqPrin.String(), Tag: ctl.String(),
		Verdict: obs.VerdictAdmit, CertHashes: core.LeafHashes(proof),
		Duration: time.Since(start).Microseconds(), Trace: trace,
	})
	return nil
}

// ctlMemoMax bounds the guard's per-context memo; credential chains
// are a handful of nodes, so thousands of entries are request-leaf
// residue, not working set.
const ctlMemoMax = 4096

// ErrCtlNoProof reports a request that carried no Authorization
// header at all; servers answer it with a 401 challenge naming the
// operator and tag (Challenge), a failed proof with a 403.
var ErrCtlNoProof = errors.New("httpauth: control-plane authorization required")

// Challenge writes the control-plane 401 or 403 for a failed
// Authorize: a missing header earns the full challenge (scheme,
// operator issuer, minimum tag — the same headers as the data-plane
// protocol, so any Snowflake client knows what to prove), an
// unsatisfying proof a 403.
func (g *CtlGuard) Challenge(w http.ResponseWriter, ctl tag.Tag, err error) {
	if err == ErrCtlNoProof {
		w.Header().Set("WWW-Authenticate", SchemeProof)
		w.Header().Set(HdrServiceIssuer, string(g.Operator.Sexp().Transport()))
		w.Header().Set(HdrMinimumTag, string(ctl.Sexp().Transport()))
		http.Error(w, "401 Unauthorized: operator proof required", http.StatusUnauthorized)
		return
	}
	http.Error(w, err.Error(), http.StatusForbidden)
}

// Middleware wraps an http.Handler (sf-dbserver's admin mux) so every
// request through it must pass the guard for ctl. The body is read
// (bounded), checked, and restored for the inner handler. An
// over-limit body is refused outright with 413 — truncating it would
// hash a prefix the caller never signed and turn a size problem into
// a baffling 403.
func (g *CtlGuard) Middleware(ctl tag.Tag, maxBody int64, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body []byte
		if r.Body != nil && r.Body != http.NoBody {
			var err error
			body, err = io.ReadAll(io.LimitReader(r.Body, maxBody+1))
			if err != nil {
				http.Error(w, "httpauth: bad body", http.StatusBadRequest)
				return
			}
			if int64(len(body)) > maxBody {
				http.Error(w, "httpauth: request body exceeds limit", http.StatusRequestEntityTooLarge)
				return
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		if err := g.Authorize(r, body, ctl); err != nil {
			g.Challenge(w, ctl, err)
			return
		}
		h.ServeHTTP(w, r)
	})
}

func (g *CtlGuard) deny() {
	g.mu.Lock()
	g.stats.Denied++
	g.mu.Unlock()
}

// audit appends one decision record, stamping the layer and the
// revocation state the verdict was computed under. Nil Audit drops it.
func (g *CtlGuard) audit(d obs.Decision) {
	if g.Audit == nil {
		return
	}
	d.Layer = "ctlguard"
	d.Epoch = g.cache().Epoch()
	if g.Revocations != nil {
		d.View = g.Revocations.View()
	}
	g.Audit.Append(d)
}

// CtlSigner signs outgoing control-plane requests: it proves the
// request hash speaks for the operator regarding the operation's
// control tag, exactly as the guard demands. The prover must hold a
// closure for the caller's key plus the delegation chain from that
// key to the operator (an imported credential, or a directory
// discovery source). Safe for concurrent use if the prover is.
type CtlSigner struct {
	// Prover finds or mints the chain request-hash -> caller-key ->
	// ... -> operator.
	Prover *prover.Prover
	// Operator is the principal the target daemon enforces.
	Operator principal.Principal
	// Clock for proof construction; nil means time.Now.
	Clock func() time.Time

	// lastSweep (unix nanos) schedules the prover hygiene below: each
	// Sign mints a unique request-hash edge into the prover's graph,
	// so a long-lived signer (a daemon's gossip pusher) would leak an
	// edge per mutation without periodic Sweep.
	lastSweep atomic.Int64
}

// CtlMintTTL bounds the validity of the per-request minted leaf
// ("request-hash speaks for caller-key"). The canonical request
// carries no nonce, so a captured authenticated request CAN be
// replayed verbatim until this leaf expires — the window is kept to
// a couple of minutes (generous clock skew plus transit), far below
// the prover's general-purpose default. Callers who build their own
// prover for a CtlSigner should set Prover.MintTTL comparably.
const CtlMintTTL = 2 * time.Minute

// NewCtlSigner builds a signer around a caller key and its credential
// chain: the key's closure and every certificate are digested into a
// fresh prover, with the replay-bounding CtlMintTTL. Callers needing
// discovery or extra closures build the prover themselves and fill
// the struct directly.
func NewCtlSigner(key prover.Closure, operator principal.Principal, chain ...*cert.Cert) *CtlSigner {
	pv := prover.New()
	pv.MintTTL = CtlMintTTL
	pv.AddClosure(key)
	for _, c := range chain {
		pv.AddProof(c)
	}
	return &CtlSigner{Prover: pv, Operator: operator}
}

func (s *CtlSigner) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// Sign sets the Authorization header on req, whose body bytes must be
// passed explicitly (the request principal covers them). One
// signature per request: the prover mints "request-hash speaks for
// caller-key" through the key closure and composes it with the cached
// credential chain, so the chain itself is never re-proved. Expired
// request-hash edges are swept from the prover roughly once per
// CtlMintTTL so a long-lived signer's graph tracks its live working
// set instead of its lifetime mutation count.
func (s *CtlSigner) Sign(req *http.Request, body []byte, ctl tag.Tag) error {
	now := s.now()
	if last := s.lastSweep.Load(); now.UnixNano()-last > int64(CtlMintTTL) &&
		s.lastSweep.CompareAndSwap(last, now.UnixNano()) {
		s.Prover.Sweep(now)
	}
	reqPrin := ServerRequestPrincipal(req, body)
	proof, err := s.Prover.FindProof(reqPrin, s.Operator, ctl, now)
	if err != nil {
		return fmt.Errorf("httpauth: cannot prove control authority: %w", err)
	}
	req.Header.Set("Authorization", SchemeProof+` proof=`+string(proof.Sexp().Transport()))
	return nil
}
