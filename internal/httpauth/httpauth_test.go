package httpauth

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// world sets up a protected file-ish service and an authorized
// client.
type world struct {
	serverKey *sfkey.PrivateKey
	userKey   *sfkey.PrivateKey
	prot      *Protected
	ts        *httptest.Server
}

func newWorld(t *testing.T, grant tag.Tag) *world {
	t.Helper()
	w := &world{
		serverKey: sfkey.FromSeed([]byte("http-server")),
		userKey:   sfkey.FromSeed([]byte("http-user")),
	}
	issuer := principal.KeyOf(w.serverKey.Public())
	mapper := func(r *http.Request) (principal.Principal, tag.Tag, error) {
		return issuer, RequestTag(r.Method, "files", r.URL.Path), nil
	}
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(rw, "content of %s", r.URL.Path)
	})
	w.prot = NewProtected("files", mapper, inner)
	w.ts = httptest.NewServer(w.prot)
	t.Cleanup(w.ts.Close)
	_ = grant
	return w
}

func (w *world) client(t *testing.T, grant tag.Tag) *Client {
	t.Helper()
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	user := principal.KeyOf(w.userKey.Public())
	issuer := principal.KeyOf(w.serverKey.Public())
	d, err := cert.Delegate(w.serverKey, user, issuer, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(d)
	return NewClient(pv, user)
}

func mustRead(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestChallengeAndSignedRequest(t *testing.T) {
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)

	resp, err := c.Get(w.ts.URL + "/pub/readme")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := mustRead(t, resp); got != "content of /pub/readme" {
		t.Fatalf("body = %q", got)
	}
	cs := c.Stats()
	if cs.Challenges != 1 || cs.Signatures != 1 {
		t.Fatalf("client stats = %+v", cs)
	}
	ss := w.prot.Stats()
	if ss.Challenges != 1 || ss.ProofVerifies != 1 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestUnauthenticatedGets401(t *testing.T) {
	w := newWorld(t, tag.All())
	resp, err := http.Get(w.ts.URL + "/pub/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") != SchemeProof {
		t.Fatal("missing WWW-Authenticate")
	}
	// The challenge carries issuer and minimum tag (Figure 5).
	if resp.Header.Get(HdrServiceIssuer) == "" || resp.Header.Get(HdrMinimumTag) == "" {
		t.Fatal("challenge missing parameters")
	}
}

func TestOutOfGrantPathForbidden(t *testing.T) {
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)
	if _, err := c.Get(w.ts.URL + "/private/secret"); err == nil {
		t.Fatal("out-of-grant path authorized")
	}
}

func TestMethodRestricted(t *testing.T) {
	grant := SubtreeTag([]string{"GET"}, "files", "/")
	w := newWorld(t, grant)
	c := w.client(t, grant)
	req, _ := http.NewRequest(http.MethodPut, w.ts.URL+"/pub/doc", strings.NewReader("body"))
	if _, err := c.Do(req); err == nil {
		t.Fatal("PUT authorized under GET-only grant")
	}
}

func TestReplayedProofBoundToRequest(t *testing.T) {
	// Capture the Authorization header of a legitimate request and
	// replay it against a different path: the request-hash subject
	// must not match.
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)

	var captured string
	tr := &capturingTransport{inner: http.DefaultTransport, out: &captured}
	c.HTTP = &http.Client{Transport: tr}
	resp, err := c.Get(w.ts.URL + "/pub/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if captured == "" {
		t.Fatal("no Authorization captured")
	}
	req, _ := http.NewRequest(http.MethodGet, w.ts.URL+"/pub/b", nil)
	req.Header.Set("Authorization", captured)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("replayed proof got %d, want 403", resp2.StatusCode)
	}
}

type capturingTransport struct {
	inner http.RoundTripper
	out   *string
}

func (c *capturingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if a := r.Header.Get("Authorization"); a != "" {
		*c.out = a
	}
	return c.inner.RoundTrip(r)
}

func TestIdenticalRequestHitsProofCache(t *testing.T) {
	// The "ident" bar of Figure 8: repeating the identical request
	// reuses the proof the server already verified.
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)
	for i := 0; i < 3; i++ {
		resp, err := c.Get(w.ts.URL + "/pub/same")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Each Do sends the unauthorized probe first and gets challenged;
	// identical requests could reuse the proof, but our client signs
	// per challenge. The cache effect appears at the server: verify
	// count equals challenge count, and replaying the exact signed
	// request (same hash) verifies from cache. Exercise that path
	// directly:
	var captured string
	tr := &capturingTransport{inner: http.DefaultTransport, out: &captured}
	c.HTTP = &http.Client{Transport: tr}
	resp, err := c.Get(w.ts.URL + "/pub/same")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	before := w.prot.Stats().ProofVerifies
	req, _ := http.NewRequest(http.MethodGet, w.ts.URL+"/pub/same", nil)
	req.Header.Set("Authorization", captured)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("identical request status = %d", resp2.StatusCode)
	}
	// The proof is re-presented and re-verified, but subproof
	// memoization makes it cheap; the stored-proof path would count
	// differently. The key assertion: it succeeds.
	_ = before
}

func TestMACProtocol(t *testing.T) {
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)
	c.UseMAC = true

	// First request: challenge, signature, MAC establishment.
	resp, err := c.Get(w.ts.URL + "/pub/one")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c.Stats().Signatures != 1 {
		t.Fatalf("signatures = %d", c.Stats().Signatures)
	}

	// Subsequent requests ride the MAC: no more signatures.
	for i := 0; i < 3; i++ {
		resp, err := c.Get(fmt.Sprintf("%s/pub/item-%d", w.ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("MAC request %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	cs := c.Stats()
	if cs.Signatures != 1 {
		t.Fatalf("MAC path used %d signatures, want 1", cs.Signatures)
	}
	if cs.MACUses != 3 {
		t.Fatalf("MAC uses = %d, want 3", cs.MACUses)
	}
	ss := w.prot.Stats()
	if ss.MACVerifies != 3 || ss.MACEstablish != 1 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestMACOutOfScopeStillDenied(t *testing.T) {
	grant := SubtreeTag([]string{"GET"}, "files", "/pub/")
	w := newWorld(t, grant)
	c := w.client(t, grant)
	c.UseMAC = true
	resp, err := c.Get(w.ts.URL + "/pub/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// MAC session exists, but the grant does not cover /private.
	if _, err := c.Get(w.ts.URL + "/private/x"); err == nil {
		t.Fatal("MAC session escalated beyond grant")
	}
}

func TestDocumentAuthentication(t *testing.T) {
	serverKey := sfkey.FromSeed([]byte("doc-server"))
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(rw, "signed doc at %s", r.URL.Path)
	})
	signer := NewDocSigner(serverKey, inner)
	ts := httptest.NewServer(signer)
	defer ts.Close()

	pv := prover.New()
	userKey := sfkey.FromSeed([]byte("doc-user"))
	pv.AddClosure(prover.NewKeyClosure(userKey))
	c := NewClient(pv, principal.KeyOf(userKey.Public()))
	c.VerifyDocs = true
	c.ExpectServer = principal.KeyOf(serverKey.Public())

	resp, err := c.Get(ts.URL + "/page")
	if err != nil {
		t.Fatalf("doc verification failed: %v", err)
	}
	if got := mustRead(t, resp); got != "signed doc at /page" {
		t.Fatalf("body = %q", got)
	}
	if c.Stats().DocsVerified != 1 {
		t.Fatal("document not verified")
	}

	// Expecting a different server must fail.
	c2 := NewClient(pv, principal.KeyOf(userKey.Public()))
	c2.VerifyDocs = true
	c2.ExpectServer = principal.KeyOf(sfkey.FromSeed([]byte("imposter")).Public())
	if _, err := c2.Get(ts.URL + "/page"); err == nil {
		t.Fatal("document attributed to wrong server")
	}
}

func TestDocumentTamperDetected(t *testing.T) {
	serverKey := sfkey.FromSeed([]byte("doc-server2"))
	// A server that signs one body but sends another.
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte("true content"))
	})
	signer := NewDocSigner(serverKey, inner)
	tamper := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rec := &responseRecorder{header: make(http.Header), status: 200}
		signer.ServeHTTP(rec, r)
		for k, vs := range rec.header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(rec.status)
		rw.Write([]byte("tampered body!"))
	})
	ts := httptest.NewServer(tamper)
	defer ts.Close()

	pv := prover.New()
	userKey := sfkey.FromSeed([]byte("u"))
	pv.AddClosure(prover.NewKeyClosure(userKey))
	c := NewClient(pv, principal.KeyOf(userKey.Public()))
	c.VerifyDocs = true
	c.ExpectServer = principal.KeyOf(serverKey.Public())
	if _, err := c.Get(ts.URL + "/x"); err == nil {
		t.Fatal("tampered document accepted")
	}
}

func TestDocSignerCache(t *testing.T) {
	serverKey := sfkey.FromSeed([]byte("cache-server"))
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte("static"))
	})
	signer := NewDocSigner(serverKey, inner)
	signer.CacheCerts = true
	ts := httptest.NewServer(signer)
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/static")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := signer.Stats()
	if st.Signs != 1 || st.CacheHits != 2 {
		t.Fatalf("signer stats = %+v", st)
	}
}

func TestSubtreeTagCoversRequests(t *testing.T) {
	grant := SubtreeTag([]string{"GET", "HEAD"}, "files", "/pub/")
	cases := []struct {
		method, path string
		want         bool
	}{
		{"GET", "/pub/a", true},
		{"HEAD", "/pub/deep/b", true},
		{"PUT", "/pub/a", false},
		{"GET", "/private", false},
	}
	for _, c := range cases {
		req := RequestTag(c.method, "files", c.path)
		if got := tag.Covers(grant, req); got != c.want {
			t.Errorf("Covers(%s %s) = %v, want %v", c.method, c.path, got, c.want)
		}
	}
}

func TestParseAuthHeader(t *testing.T) {
	scheme, params := parseAuthHeader(`SnowflakeMAC keyid=abc, mac="xyz=="`)
	if scheme != "SnowflakeMAC" || params["keyid"] != "abc" || params["mac"] != "xyz==" {
		t.Fatalf("parsed %q %v", scheme, params)
	}
	scheme, params = parseAuthHeader("Bare")
	if scheme != "Bare" || len(params) != 0 {
		t.Fatalf("parsed %q %v", scheme, params)
	}
}

func TestSealOpenSecret(t *testing.T) {
	priv, pub, err := newClientEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	secret, serverEph, sealed, err := sealSecret(pub)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openSecret(priv, serverEph, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatal("secret mismatch")
	}
	// Corruption detected.
	sealed[len(sealed)-1] ^= 1
	if _, err := openSecret(priv, serverEph, sealed); err == nil {
		t.Fatal("corrupted secret opened")
	}
}
