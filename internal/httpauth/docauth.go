package httpauth

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Server document authentication (paper section 5.3.3): "the server
// includes with document headers a proof that the hash of the
// document speaks for the server. The client completes the proof
// chain and determines whether the authentication is satisfactory."

// DocTag is the restriction under which a document hash speaks for
// the server: (tag (web-doc "/path")).
func DocTag(path string) tag.Tag {
	return tag.ListOf(tag.Literal("web-doc"), tag.Literal(path))
}

// DocSigner wraps a handler and attaches a document proof to every
// successful response. With CacheCerts set, the signature for a given
// (path, body) is minted once and reused — the "cache" bars of
// Figure 8's server-authentication group; without it every response
// pays a fresh signature — the "sign" bars.
type DocSigner struct {
	Priv    *sfkey.PrivateKey
	Handler http.Handler
	// CacheCerts reuses signatures for unchanged documents.
	CacheCerts bool
	// TTL bounds each document proof's validity; zero means an hour.
	TTL time.Duration
	// Clock for validity windows; nil means time.Now.
	Clock func() time.Time

	mu    sync.Mutex
	cache map[string]string // path+bodyhash -> proof header value
	stats DocSignerStats
}

// DocSignerStats counts signing work.
type DocSignerStats struct {
	Responses int
	Signs     int
	CacheHits int
}

// NewDocSigner wraps a handler.
func NewDocSigner(priv *sfkey.PrivateKey, h http.Handler) *DocSigner {
	return &DocSigner{Priv: priv, Handler: h, cache: make(map[string]string)}
}

// Stats returns a copy of the counters.
func (d *DocSigner) Stats() DocSignerStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ServeHTTP buffers the inner response and attaches the proof header.
func (d *DocSigner) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &responseRecorder{header: make(http.Header), status: http.StatusOK}
	d.Handler.ServeHTTP(rec, r)
	d.mu.Lock()
	d.stats.Responses++
	d.mu.Unlock()
	if rec.status == http.StatusOK {
		if hdr, err := d.proofFor(r.URL.Path, rec.body); err == nil {
			w.Header().Set(HdrDocProof, hdr)
		}
	}
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.status)
	w.Write(rec.body)
}

func (d *DocSigner) proofFor(path string, body []byte) (string, error) {
	docPrin := principal.HashOfBytes(body)
	key := path + "\x00" + docPrin.Key()
	d.mu.Lock()
	if d.CacheCerts {
		if hdr, ok := d.cache[key]; ok {
			d.stats.CacheHits++
			d.mu.Unlock()
			return hdr, nil
		}
	}
	d.mu.Unlock()

	now := time.Now()
	if d.Clock != nil {
		now = d.Clock()
	}
	ttl := d.TTL
	if ttl == 0 {
		ttl = time.Hour
	}
	c, err := cert.Sign(d.Priv, core.SpeaksFor{
		Subject:  docPrin,
		Issuer:   principal.KeyOf(d.Priv.Public()),
		Tag:      DocTag(path),
		Validity: core.Between(now.Add(-time.Minute), now.Add(ttl)),
	})
	if err != nil {
		return "", err
	}
	hdr := string(c.Sexp().Transport())
	d.mu.Lock()
	d.stats.Signs++
	if d.CacheCerts {
		d.cache[key] = hdr
	}
	d.mu.Unlock()
	return hdr, nil
}

// responseRecorder buffers a handler's response.
type responseRecorder struct {
	header http.Header
	body   []byte
	status int
}

func (r *responseRecorder) Header() http.Header { return r.header }
func (r *responseRecorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}
func (r *responseRecorder) WriteHeader(status int) { r.status = status }
