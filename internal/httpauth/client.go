package httpauth

import (
	"bytes"
	"crypto/ecdh"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Client wraps an http.Client with Snowflake authorization: it
// resends challenged requests with a proof whose subject is the
// request hash, optionally amortizing signatures through the MAC
// protocol, and verifies server document proofs (sections 5.3.1,
// 5.3.3, 5.3.5).
type Client struct {
	// HTTP is the underlying transport; nil means a default client.
	HTTP *http.Client
	// Prover supplies and mints proofs; it must hold a closure for
	// Self.
	Prover *prover.Prover
	// Self is the user's key principal (KC).
	Self principal.Principal
	// UseMAC enables the amortized protocol of section 5.3.1.
	UseMAC bool
	// VerifyDocs demands and checks server document proofs against
	// ExpectServer (section 5.3.3).
	VerifyDocs   bool
	ExpectServer principal.Principal
	// Clock for proof construction; nil means time.Now.
	Clock func() time.Time

	mu    sync.Mutex
	macs  map[string]*macState // per host
	stats ClientStats
}

// ClientStats counts client-side protocol work.
type ClientStats struct {
	Requests     int
	Challenges   int
	Signatures   int
	MACUses      int
	DocsVerified int
	DocFailures  int
}

type macState struct {
	keyID  string
	secret []byte
	prin   principal.MAC
	// issuerProof shows MAC-principal => issuer; attached until the
	// server confirms it has it.
	issuerProof core.Proof
	attached    bool
}

// NewClient builds an authorizing client around the user's prover.
func NewClient(pv *prover.Prover, self principal.Principal) *Client {
	return &Client{Prover: pv, Self: self, macs: make(map[string]*macState)}
}

// Stats returns a copy of the counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// Get issues an authorized GET.
func (c *Client) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Do sends the request, answering a Snowflake challenge when one
// comes back. The request body, if any, is buffered so the request
// can be replayed.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	var body []byte
	if req.Body != nil && req.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(req.Body)
		if err != nil {
			return nil, err
		}
	}

	// With an established MAC session, authorize directly.
	if c.UseMAC {
		if ms := c.macFor(req.URL.Host); ms != nil {
			resp, err := c.doMAC(req, body, ms)
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusUnauthorized && resp.StatusCode != http.StatusForbidden {
				return c.checkDoc(resp, nil)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.dropMAC(req.URL.Host)
			// Fall through to the challenge path.
		}
	}

	resp, err := c.send(req, body, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusUnauthorized ||
		resp.Header.Get("WWW-Authenticate") != SchemeProof {
		return c.checkDoc(resp, nil)
	}
	challenge := resp.Header
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	c.mu.Lock()
	c.stats.Challenges++
	c.mu.Unlock()

	return c.answerChallenge(req, body, challenge)
}

// answerChallenge implements the client side of Figure 5 plus MAC
// establishment.
func (c *Client) answerChallenge(req *http.Request, body []byte, challenge http.Header) (*http.Response, error) {
	issuer, minTag, subjTemplate, err := parseChallenge(challenge)
	if err != nil {
		return nil, err
	}

	headers := http.Header{}
	var eph *ecdh.PrivateKey
	if c.UseMAC {
		priv, pub, err := newClientEphemeral()
		if err != nil {
			return nil, err
		}
		eph = priv
		headers.Set(HdrMACEstablish, base64.StdEncoding.EncodeToString(pub))
	}

	// Build the proof. The subject is the hash of the (final) request
	// — one public-key signature per challenged request, the cost the
	// MAC protocol amortizes — unless the challenge supplied a
	// compound subject template (quoting gateways).
	reqCopy, err := cloneRequest(req, body, headers)
	if err != nil {
		return nil, err
	}
	reqPrin, _, err := RequestPrincipal(reqCopy)
	if err != nil {
		return nil, err
	}
	var subject principal.Principal = reqPrin
	if subjTemplate != nil {
		subject = principal.SubstitutePseudo(subjTemplate, c.Self)
	}
	proof, err := c.Prover.FindProof(subject, issuer, minTag, c.now())
	if err != nil {
		return nil, fmt.Errorf("httpauth: cannot satisfy challenge: %w", err)
	}
	c.mu.Lock()
	c.stats.Signatures++
	c.mu.Unlock()

	authz := SchemeProof + ` proof=` + string(proof.Sexp().Transport())
	if subjTemplate != nil {
		// Gateway case (section 6.3): the delegation proof names the
		// compound subject, so we additionally attach a signed copy of
		// the request showing R => C.
		rp, err := c.Prover.Delegate(c.Self, reqPrin, tag.All(),
			core.Between(c.now().Add(-time.Minute), c.now().Add(5*time.Minute)))
		if err != nil {
			return nil, fmt.Errorf("httpauth: cannot sign request: %w", err)
		}
		c.mu.Lock()
		c.stats.Signatures++
		c.mu.Unlock()
		authz += `, request-proof=` + string(rp.Sexp().Transport())
	}
	reqCopy.Header.Set("Authorization", authz)
	resp, err := c.httpClient().Do(reqCopy)
	if err != nil {
		return nil, err
	}

	// Harvest a MAC session from the response.
	if c.UseMAC && eph != nil && resp.Header.Get(HdrMACKeyID) != "" {
		c.harvestMAC(req.URL.Host, issuer, minTag, eph, resp.Header)
	}
	return c.checkDoc(resp, nil)
}

// harvestMAC decrypts the MAC secret, delegates to the MAC principal
// (one signature), and prepares the proof that the MAC principal
// speaks for the issuer.
func (c *Client) harvestMAC(host string, issuer principal.Principal, minTag tag.Tag, eph *ecdh.PrivateKey, h http.Header) error {
	serverEph, err := base64.StdEncoding.DecodeString(h.Get(HdrMACServerEph))
	if err != nil {
		return err
	}
	sealed, err := base64.StdEncoding.DecodeString(h.Get(HdrMACSecret))
	if err != nil {
		return err
	}
	secret, err := openSecret(eph, serverEph, sealed)
	if err != nil {
		return err
	}
	mp := principal.MACOf(secret)
	// One signature: our key delegates its full authority to the MAC
	// principal for the session; composing with the widest chain to
	// the issuer keeps the session usable for every request the
	// original grant covers, not just the one that was challenged.
	minted, err := c.Prover.Delegate(c.Self, mp, tag.All(),
		core.Between(c.now().Add(-time.Minute), c.now().Add(time.Hour)))
	if err != nil {
		return err
	}
	chain, err := c.Prover.FindProof(c.Self, issuer, minTag, c.now())
	if err != nil {
		return err
	}
	var proof core.Proof
	if _, ok := chain.(*core.Reflex); ok {
		proof = minted
	} else if proof, err = core.NewTransitivity(minted, chain); err != nil {
		return err
	}
	c.mu.Lock()
	c.macs[host] = &macState{
		keyID:       h.Get(HdrMACKeyID),
		secret:      secret,
		prin:        mp,
		issuerProof: proof,
	}
	c.mu.Unlock()
	return nil
}

func (c *Client) macFor(host string) *macState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.macs[host]
}

func (c *Client) dropMAC(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.macs, host)
}

// doMAC authorizes with the amortized protocol: an HMAC over the
// request hash plus (until cached server-side) the proof for the MAC
// principal. No public-key operations on this path.
func (c *Client) doMAC(req *http.Request, body []byte, ms *macState) (*http.Response, error) {
	reqCopy, err := cloneRequest(req, body, nil)
	if err != nil {
		return nil, err
	}
	reqPrin, _, err := RequestPrincipal(reqCopy)
	if err != nil {
		return nil, err
	}
	mac := computeMAC(ms.secret, reqPrin.Digest)
	reqCopy.Header.Set("Authorization",
		fmt.Sprintf(`%s keyid=%s, mac=%s`, SchemeMAC, ms.keyID, mac))
	c.mu.Lock()
	if !ms.attached && ms.issuerProof != nil {
		reqCopy.Header.Set(HdrProof, string(ms.issuerProof.Sexp().Transport()))
		ms.attached = true
	}
	c.stats.MACUses++
	c.mu.Unlock()
	return c.httpClient().Do(reqCopy)
}

// checkDoc verifies a server document proof when configured
// (section 5.3.3): the response body's hash must provably speak for
// the expected server principal.
func (c *Client) checkDoc(resp *http.Response, err error) (*http.Response, error) {
	if err != nil || resp == nil || !c.VerifyDocs || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	raw := resp.Header.Get(HdrDocProof)
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	resp.Body = io.NopCloser(bytes.NewReader(body))
	if rerr != nil {
		return resp, rerr
	}
	fail := func(reason string) (*http.Response, error) {
		c.mu.Lock()
		c.stats.DocFailures++
		c.mu.Unlock()
		return resp, fmt.Errorf("httpauth: document authentication failed: %s", reason)
	}
	if raw == "" {
		return fail("no document proof supplied")
	}
	proof, perr := core.ParseProof([]byte(raw))
	if perr != nil {
		return fail(perr.Error())
	}
	docPrin := principal.HashOfBytes(body)
	ctx := core.NewVerifyContext()
	ctx.Now = c.now()
	// Re-fetching an unchanged document re-presents the same document
	// certificate; the shared cache turns the repeat verification into
	// a lookup.
	ctx.Cache = core.SharedProofCache()
	path := ""
	if resp.Request != nil {
		path = resp.Request.URL.Path
	}
	if aerr := core.Authorize(ctx, proof, docPrin, c.ExpectServer, DocTag(path)); aerr != nil {
		return fail(aerr.Error())
	}
	c.mu.Lock()
	c.stats.DocsVerified++
	c.mu.Unlock()
	return resp, nil
}

// send issues the request with extra headers, body restored.
func (c *Client) send(req *http.Request, body []byte, extra http.Header) (*http.Response, error) {
	reqCopy, err := cloneRequest(req, body, extra)
	if err != nil {
		return nil, err
	}
	return c.httpClient().Do(reqCopy)
}

func cloneRequest(req *http.Request, body []byte, extra http.Header) (*http.Request, error) {
	out, err := http.NewRequest(req.Method, req.URL.String(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range req.Header {
		for _, v := range vs {
			out.Header.Add(k, v)
		}
	}
	for k, vs := range extra {
		for _, v := range vs {
			out.Header.Set(k, v)
		}
	}
	out.Host = req.Host
	return out, nil
}

// parseChallenge decodes the 401 headers.
func parseChallenge(h http.Header) (issuer principal.Principal, minTag tag.Tag, subjTemplate principal.Principal, err error) {
	ie, err := sexp.ParseOne([]byte(h.Get(HdrServiceIssuer)))
	if err != nil {
		return nil, tag.Tag{}, nil, fmt.Errorf("httpauth: challenge issuer: %w", err)
	}
	if issuer, err = principal.FromSexp(ie); err != nil {
		return nil, tag.Tag{}, nil, err
	}
	te, err := sexp.ParseOne([]byte(h.Get(HdrMinimumTag)))
	if err != nil {
		return nil, tag.Tag{}, nil, fmt.Errorf("httpauth: challenge tag: %w", err)
	}
	if minTag, err = tag.FromSexp(te); err != nil {
		return nil, tag.Tag{}, nil, err
	}
	if raw := h.Get(HdrSubjectTemplate); raw != "" {
		se, err := sexp.ParseOne([]byte(raw))
		if err != nil {
			return nil, tag.Tag{}, nil, err
		}
		if subjTemplate, err = principal.FromSexp(se); err != nil {
			return nil, tag.Tag{}, nil, err
		}
	}
	return issuer, minTag, subjTemplate, nil
}
