// Package httpauth implements the Snowflake HTTP authorization
// protocol of paper section 5.3: a challenge/response extension in
// which the server's "401 Unauthorized" names the issuer the client
// must speak for and the minimum restriction set, and the client's
// Authorization header carries a structured proof whose subject is
// the hash of the request itself (a signed request).
//
// The package also provides the signed-request MAC optimization
// (section 5.3.1) and server document authentication (section 5.3.3).
package httpauth

import (
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Protocol constants.
const (
	// SchemeProof is the challenge scheme of Figure 5.
	SchemeProof = "SnowflakeProof"
	// SchemeMAC is the amortized scheme of section 5.3.1.
	SchemeMAC = "SnowflakeMAC"

	// Challenge headers (Figure 5).
	HdrServiceIssuer = "Sf-ServiceIssuer"
	HdrMinimumTag    = "Sf-MinimumTag"
	// HdrSubjectTemplate extends the challenge for quoting gateways:
	// the principal shape the proof's subject must take, with the
	// pseudo-principal "?" standing for the client (section 6.3).
	HdrSubjectTemplate = "Sf-SubjectTemplate"

	// Proof attachment for MAC-authorized requests.
	HdrProof = "Sf-Proof"

	// MAC establishment headers.
	HdrMACEstablish = "Sf-MAC-Establish"
	HdrMACKeyID     = "Sf-MAC-KeyID"
	HdrMACSecret    = "Sf-MAC-Secret"
	HdrMACServerEph = "Sf-MAC-ServerEph"

	// Document authentication (section 5.3.3).
	HdrDocProof = "Sf-DocProof"
)

// canonicalRequest builds the S-expression whose hash is the request
// principal: method, canonical URL, host, and body — everything
// except the Authorization header ("the subject of the proof is a
// hash of the request, less the Authorization header").
func canonicalRequest(method, host, uri string, body []byte) sexp.Sexp {
	return sexp.List(
		sexp.String("http-request"),
		sexp.List(sexp.String("method"), sexp.String(strings.ToUpper(method))),
		sexp.List(sexp.String("host"), sexp.String(host)),
		sexp.List(sexp.String("uri"), sexp.String(uri)),
		sexp.List(sexp.String("body"), sexp.Atom(body)),
	)
}

// RequestPrincipal computes the hash principal of an outgoing request
// (client side). The body is consumed and restored.
func RequestPrincipal(r *http.Request) (principal.Hash, []byte, error) {
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(r.Body)
		if err != nil {
			return principal.Hash{}, nil, err
		}
		r.Body = io.NopCloser(strings.NewReader(string(body)))
	}
	e := canonicalRequest(r.Method, hostOf(r), r.URL.RequestURI(), body)
	return principal.HashOfSexp(e), body, nil
}

// ServerRequestPrincipal computes the same hash on the receiving side.
func ServerRequestPrincipal(r *http.Request, body []byte) principal.Hash {
	e := canonicalRequest(r.Method, hostOf(r), r.URL.RequestURI(), body)
	return principal.HashOfSexp(e)
}

// hostOf picks the Host header when set, else the URL host, so client
// and server canonicalize identically.
func hostOf(r *http.Request) string {
	if r.Host != "" {
		return r.Host
	}
	return r.URL.Host
}

// RequestTag is the concrete tag of one request, in the Figure 5
// shape: (tag (web (method GET) (service "S") (resourcePath "/p"))).
func RequestTag(method, service, resourcePath string) tag.Tag {
	return tag.ListOf(
		tag.Literal("web"),
		tag.ListOf(tag.Literal("method"), tag.Literal(strings.ToUpper(method))),
		tag.ListOf(tag.Literal("service"), tag.Literal(service)),
		tag.ListOf(tag.Literal("resourcePath"), tag.Literal(resourcePath)),
	)
}

// SubtreeTag is the grant covering a method set and a path prefix on
// a service; the webfs application delegates subtrees with it.
func SubtreeTag(methods []string, service, pathPrefix string) tag.Tag {
	ms := make([]tag.Tag, len(methods))
	for i, m := range methods {
		ms[i] = tag.Literal(strings.ToUpper(m))
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key() < ms[j].Key() })
	var methodTag tag.Tag
	if len(ms) == 1 {
		methodTag = ms[0]
	} else {
		methodTag = tag.SetOf(ms...)
	}
	return tag.ListOf(
		tag.Literal("web"),
		tag.ListOf(tag.Literal("method"), methodTag),
		tag.ListOf(tag.Literal("service"), tag.Literal(service)),
		tag.ListOf(tag.Literal("resourcePath"), tag.Prefix(pathPrefix)),
	)
}

// ParseAuthHeader splits "Scheme k1=v1, k2=v2" with values either
// base64/token or {transport} blobs; exported for the gateway.
func ParseAuthHeader(h string) (scheme string, params map[string]string) {
	return parseAuthHeader(h)
}

// parseAuthHeader splits "Scheme k1=v1, k2=v2" with values either
// base64/token or {transport} blobs.
func parseAuthHeader(h string) (scheme string, params map[string]string) {
	params = map[string]string{}
	h = strings.TrimSpace(h)
	sp := strings.IndexByte(h, ' ')
	if sp < 0 {
		return h, params
	}
	scheme = h[:sp]
	for _, part := range strings.Split(h[sp+1:], ",") {
		part = strings.TrimSpace(part)
		if eq := strings.IndexByte(part, '='); eq > 0 {
			k := part[:eq]
			v := strings.Trim(part[eq+1:], `"`)
			params[k] = v
		}
	}
	return scheme, params
}
