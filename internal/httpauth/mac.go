package httpauth

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// The MAC-establishment exchange of section 5.3.1: "the server send[s]
// an encrypted, secret message authentication code (MAC) to the
// client", amortizing the public-key operation of signed requests.
// The client attaches an ephemeral X25519 key to an authorized
// request; the server replies with its own ephemeral key and the MAC
// secret sealed under the shared key.

// newClientEphemeral generates the client half of the exchange.
func newClientEphemeral() (priv *ecdh.PrivateKey, pubBytes []byte, err error) {
	priv, err = ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	return priv, priv.PublicKey().Bytes(), nil
}

// sealSecret generates a fresh MAC secret and seals it to the
// client's ephemeral public key.
func sealSecret(clientEphPub []byte) (secret, serverEphPub, sealed []byte, err error) {
	curve := ecdh.X25519()
	peer, err := curve.NewPublicKey(clientEphPub)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("httpauth: client ephemeral: %w", err)
	}
	serverEph, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, nil, err
	}
	shared, err := serverEph.ECDH(peer)
	if err != nil {
		return nil, nil, nil, err
	}
	secret = make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		return nil, nil, nil, err
	}
	aead, err := macAEAD(shared)
	if err != nil {
		return nil, nil, nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, nil, err
	}
	sealed = append(nonce, aead.Seal(nil, nonce, secret, nil)...)
	return secret, serverEph.PublicKey().Bytes(), sealed, nil
}

// openSecret recovers the MAC secret on the client side.
func openSecret(clientEph *ecdh.PrivateKey, serverEphPub, sealed []byte) ([]byte, error) {
	curve := ecdh.X25519()
	peer, err := curve.NewPublicKey(serverEphPub)
	if err != nil {
		return nil, fmt.Errorf("httpauth: server ephemeral: %w", err)
	}
	shared, err := clientEph.ECDH(peer)
	if err != nil {
		return nil, err
	}
	aead, err := macAEAD(shared)
	if err != nil {
		return nil, err
	}
	if len(sealed) < aead.NonceSize() {
		return nil, fmt.Errorf("httpauth: sealed secret too short")
	}
	return aead.Open(nil, sealed[:aead.NonceSize()], sealed[aead.NonceSize():], nil)
}

// macAEAD derives the sealing AEAD from the ECDH shared secret.
func macAEAD(shared []byte) (cipher.AEAD, error) {
	h := hmac.New(sha256.New, []byte("sf-mac-seal"))
	h.Write(shared)
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
