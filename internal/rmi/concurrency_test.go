package rmi

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
)

// dialWith connects a client with its own channel identity and the
// given prover.
func (w *testWorld) dialWith(t *testing.T, pv *prover.Prover) *Client {
	t.Helper()
	id, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(secure.Dialer{ID: id}, w.addr, pv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConcurrentCallsNoPooledBufferAliasing drives many authorized
// clients through the full challenge flow at once. Every proof
// submission and every verification on the server runs sexp parse
// and encode through the package's pooled arenas and buffers; if a
// pooled buffer were ever returned while still referenced, two
// in-flight calls would alias the same backing array. The test runs
// under -race in CI (the race detector sees the aliased writes), and
// belt-and-braces it checks end-to-end payload integrity: each call
// must echo exactly its own distinct payload.
func TestConcurrentCallsNoPooledBufferAliasing(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	issuer := principal.KeyOf(w.serverKey.Public())

	const clients = 8
	const callsPerClient = 25

	// Each client gets its own key and delegation so the server
	// parses and verifies distinct proofs concurrently, not one
	// cache-hit proof.
	conns := make([]*Client, clients)
	for i := 0; i < clients; i++ {
		userKey := sfkey.FromSeed([]byte(fmt.Sprintf("alias-user-%d", i)))
		pv := prover.New()
		pv.AddClosure(prover.NewKeyClosure(userKey))
		d, err := cert.Delegate(w.serverKey, principal.KeyOf(userKey.Public()), issuer, grant, core.Forever)
		if err != nil {
			t.Fatal(err)
		}
		pv.AddProof(d)
		conns[i] = w.dialWith(t, pv)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*callsPerClient)
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < callsPerClient; j++ {
				// A long distinctive payload: corruption from an aliased
				// buffer shows up as another goroutine's bytes.
				msg := strings.Repeat(fmt.Sprintf("<client-%02d-call-%03d>", i, j), 40)
				var reply EchoReply
				if err := c.Call("echo", "Echo", EchoArgs{Msg: msg}, &reply); err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", i, j, err)
					return
				}
				if reply.Msg != msg {
					errs <- fmt.Errorf("client %d call %d: payload corrupted: got %.60q", i, j, reply.Msg)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	ss := w.srv.Stats()
	if ss.ProofVerifies < clients {
		t.Fatalf("server verified %d proofs, want >= %d distinct ones", ss.ProofVerifies, clients)
	}
}
