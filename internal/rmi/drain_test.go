package rmi

import (
	"testing"
	"time"

	"repro/internal/channel/plain"
)

// SlowService signals when a call enters dispatch and then blocks
// until the test releases it, so the test can drain mid-call.
type SlowService struct {
	entered chan struct{}
	release chan struct{}
}

type SlowArgs struct{ Msg string }
type SlowReply struct{ Msg string }

func (s *SlowService) Block(args SlowArgs, reply *SlowReply) error {
	close(s.entered)
	<-s.release
	reply.Msg = args.Msg
	return nil
}

// TestDrainWaitsForInflightCall: a call already dispatched when Drain
// starts must run to completion and its reply must reach the client;
// only then does Drain tear the connections down.
func TestDrainWaitsForInflightCall(t *testing.T) {
	svc := &SlowService{entered: make(chan struct{}), release: make(chan struct{})}
	srv := NewServer()
	if err := srv.RegisterOpen("slow", svc); err != nil {
		t.Fatal(err)
	}
	l, err := plain.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	c, err := Dial(plain.Dialer{}, l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		reply SlowReply
		err   error
	}
	done := make(chan result, 1)
	go func() {
		var r result
		r.err = c.Call("slow", "Block", SlowArgs{Msg: "survives drain"}, &r.reply)
		done <- r
	}()

	select {
	case <-svc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("call never entered dispatch")
	}

	// Release the handler once Drain is underway, then drain. The
	// in-flight dispatch must finish and flush before Drain closes
	// the connection.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(svc.release)
	}()
	start := time.Now()
	srv.Drain(5 * time.Second)
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("Drain returned after %v, before the in-flight call was released", waited)
	}

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("in-flight call failed across drain: %v", r.err)
		}
		if r.reply.Msg != "survives drain" {
			t.Fatalf("reply = %+v", r.reply)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never completed")
	}

	// After draining, new connections are refused outright.
	if c2, err := Dial(plain.Dialer{}, l.Addr().String(), nil); err == nil {
		var reply SlowReply
		if err := c2.Call("slow", "Block", SlowArgs{Msg: "late"}, &reply); err == nil {
			t.Fatal("call on a drained server succeeded")
		}
		c2.Close()
	}
}
