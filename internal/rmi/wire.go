// Package rmi implements Snowflake's remote method invocation layer
// (paper section 5.1.1, Figure 4): remote objects invoked over
// authenticated channels, with authorization enforced by a
// checkAuth() prologue on every protected method and repaired by an
// exception-driven proof push from the client's Prover.
//
// Substitution note (DESIGN.md section 3): the paper used Java RMI
// with mechanically rewritten stubs; this package is the Go analog —
// reflect-dispatched methods in net/rpc style, a client Invoker that
// catches the NeedAuthorization error, fetches a proof, submits it to
// the server's proof recipient, and retries.
package rmi

import (
	"encoding/gob"
	"fmt"

	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// callRequest is one invocation on the wire. Args carries the
// gob-encoded argument struct. Quotee, when nonempty, is the
// S-expression of the principal the caller claims to quote; the
// channel principal then becomes "channel | quotee" (section 6.3).
type callRequest struct {
	ID     uint64
	Object string
	Method string
	Args   []byte
	Quotee []byte
	// Trace carries the caller's Sf-Trace context (obs.TraceHeader
	// format) so the server's dispatch span joins the caller's trace.
	Trace string
}

// Response kinds.
const (
	kindOK       = "ok"
	kindError    = "error"
	kindNeedAuth = "needauth"
)

// callResponse answers one invocation. For kindNeedAuth, Issuer and
// MinTag carry the challenge: the principal the caller must speak for
// and the minimum restriction set the delegation must allow (the
// SfNeedAuthorizationException of Figure 4, step l).
type callResponse struct {
	ID     uint64
	Kind   string
	Result []byte
	Err    string
	Issuer []byte
	MinTag []byte
}

func init() {
	gob.Register(callRequest{})
	gob.Register(callResponse{})
}

// NeedAuthorization is the client-visible form of the server's
// challenge.
type NeedAuthorization struct {
	Issuer principal.Principal
	MinTag tag.Tag
}

func (e *NeedAuthorization) Error() string {
	return fmt.Sprintf("rmi: need authorization: speak for %s regarding %s", e.Issuer, e.MinTag)
}

// encodeChallenge serializes the challenge fields of a response.
func encodeChallenge(issuer principal.Principal, minTag tag.Tag) (issuerB, tagB []byte) {
	return issuer.Sexp().Transport(), minTag.Sexp().Transport()
}

// decodeChallenge parses the challenge fields.
func decodeChallenge(issuerB, tagB []byte) (principal.Principal, tag.Tag, error) {
	ie, err := sexp.ParseOne(issuerB)
	if err != nil {
		return nil, tag.Tag{}, fmt.Errorf("rmi: challenge issuer: %w", err)
	}
	iss, err := principal.FromSexp(ie)
	if err != nil {
		return nil, tag.Tag{}, fmt.Errorf("rmi: challenge issuer: %w", err)
	}
	te, err := sexp.ParseOne(tagB)
	if err != nil {
		return nil, tag.Tag{}, fmt.Errorf("rmi: challenge tag: %w", err)
	}
	mt, err := tag.FromSexp(te)
	if err != nil {
		return nil, tag.Tag{}, fmt.Errorf("rmi: challenge tag: %w", err)
	}
	return iss, mt, nil
}

// MethodTag builds the default request tag for an invocation:
// (tag (rmi (object "name") (method "Method"))). Server objects may
// install richer TagFuncs that inspect arguments.
func MethodTag(object, method string) tag.Tag {
	return tag.ListOf(
		tag.Literal("rmi"),
		tag.ListOf(tag.Literal("object"), tag.Literal(object)),
		tag.ListOf(tag.Literal("method"), tag.Literal(method)),
	)
}

// ObjectTag builds the grant tag covering every method of an object:
// (tag (rmi (object "name"))). Shorter lists are more permissive, so
// this covers every MethodTag of the object.
func ObjectTag(object string) tag.Tag {
	return tag.ListOf(
		tag.Literal("rmi"),
		tag.ListOf(tag.Literal("object"), tag.Literal(object)),
	)
}

// proofRecipientObject is the reserved object name the client submits
// proofs to (the proofRecipient of Figure 4, steps m-n).
const proofRecipientObject = "_proofRecipient"

// submitArgs is the argument to the proof recipient.
type submitArgs struct {
	Proof []byte // transport-encoded proof
}

// submitReply acknowledges a stored proof.
type submitReply struct {
	Stored bool
}
