package rmi

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/channel"
	"repro/internal/channel/local"
	"repro/internal/channel/plain"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// EchoService is the test remote object.
type EchoService struct {
	mu    sync.Mutex
	calls int
}

type EchoArgs struct{ Msg string }
type EchoReply struct {
	Msg   string
	Calls int
}

func (e *EchoService) Echo(args EchoArgs, reply *EchoReply) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	reply.Msg = args.Msg
	reply.Calls = e.calls
	return nil
}

func (e *EchoService) Fail(args EchoArgs, reply *EchoReply) error {
	return &appError{msg: "application failure: " + args.Msg}
}

type appError struct{ msg string }

func (a *appError) Error() string { return a.msg }

// testWorld wires a protected server and an authorized client over a
// secure channel.
type testWorld struct {
	serverKey *sfkey.PrivateKey
	userKey   *sfkey.PrivateKey
	srv       *Server
	lis       channel.Listener
	addr      string
}

func newWorld(t *testing.T, grant tag.Tag) *testWorld {
	t.Helper()
	w := &testWorld{
		serverKey: sfkey.FromSeed([]byte("server-key")),
		userKey:   sfkey.FromSeed([]byte("user-key")),
	}
	w.srv = NewServer()
	issuer := principal.KeyOf(w.serverKey.Public())
	if err := w.srv.Register("echo", &EchoService{}, issuer, nil); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: w.serverKey})
	if err != nil {
		t.Fatal(err)
	}
	w.lis = l
	w.addr = l.Addr().String()
	go w.srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	_ = grant
	return w
}

// authorizedClient builds a client whose prover holds a delegation
// from the server to the user key plus the user-key closure.
func (w *testWorld) authorizedClient(t *testing.T, grant tag.Tag) *Client {
	t.Helper()
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	issuer := principal.KeyOf(w.serverKey.Public())
	user := principal.KeyOf(w.userKey.Public())
	d, err := cert.Delegate(w.serverKey, user, issuer, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(d)
	id, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(secure.Dialer{ID: id}, w.addr, pv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProtectedCallWithChallengeFlow(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)

	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "hi"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hi" || reply.Calls != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	st := c.Stats()
	if st.Challenges != 1 || st.Proofs != 1 || st.Retries != 1 {
		t.Fatalf("first call stats = %+v", st)
	}

	// Second call: the proof is cached at the server; no challenge.
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "again"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Calls != 2 {
		t.Fatalf("calls = %d", reply.Calls)
	}
	if got := c.Stats().Challenges; got != 1 {
		t.Fatalf("second call challenged: %d", got)
	}
	ss := w.srv.Stats()
	if ss.ProofVerifies != 1 {
		t.Fatalf("server verified proofs %d times, want 1", ss.ProofVerifies)
	}
}

func TestUnauthorizedClientRejected(t *testing.T) {
	w := newWorld(t, ObjectTag("echo"))
	// Prover with a key the server never delegated to.
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(sfkey.FromSeed([]byte("stranger"))))
	id, _ := secure.NewIdentity()
	c, err := Dial(secure.Dialer{ID: id}, w.addr, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	err = c.Call("echo", "Echo", EchoArgs{Msg: "x"}, &reply)
	if err == nil {
		t.Fatal("unauthorized call succeeded")
	}
	if !strings.Contains(err.Error(), "cannot satisfy challenge") {
		t.Fatalf("err = %v", err)
	}
}

func TestRestrictedGrantScopesMethods(t *testing.T) {
	// Grant covers only the Echo method, not Fail.
	grant := MethodTag("echo", "Echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "ok"}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", "Fail", EchoArgs{}, &reply); err == nil {
		t.Fatal("out-of-grant method authorized")
	}
}

func TestApplicationErrorPropagates(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)
	var reply EchoReply
	err := c.Call("echo", "Fail", EchoArgs{Msg: "boom"}, &reply)
	if err == nil || !strings.Contains(err.Error(), "application failure: boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownObjectAndMethod(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)
	var reply EchoReply
	if err := c.Call("nosuch", "Echo", EchoArgs{}, &reply); err == nil {
		t.Fatal("unknown object succeeded")
	}
	if err := c.Call("echo", "NoSuch", EchoArgs{}, &reply); err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestOpenObjectOverPlainChannel(t *testing.T) {
	srv := NewServer()
	if err := srv.RegisterOpen("echo", &EchoService{}); err != nil {
		t.Fatal(err)
	}
	l, err := plain.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	c, err := Dial(plain.Dialer{}, l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "plain"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "plain" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestProtectedObjectOverLocalChannel(t *testing.T) {
	// Colocated client and server: same trust structure, no
	// encryption on the path (section 5.2).
	host := local.NewHost()
	serverKey := sfkey.FromSeed([]byte("local-server"))
	userKey := sfkey.FromSeed([]byte("local-user"))
	chanKey := sfkey.FromSeed([]byte("local-chan"))

	srv := NewServer()
	issuer := principal.KeyOf(serverKey.Public())
	if err := srv.Register("echo", &EchoService{}, issuer, nil); err != nil {
		t.Fatal(err)
	}
	l, err := host.Listen("echo-svc", serverKey.Public())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	// The local channel key is controlled by the client too: its
	// closure lets the prover mint the chan->user link... but in the
	// standard flow the user key delegates to the channel key.
	user := principal.KeyOf(userKey.Public())
	d, err := cert.Delegate(serverKey, user, issuer, ObjectTag("echo"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(d)

	c, err := Dial(local.Dialer{Host: host, Key: chanKey.Public()}, "echo-svc", pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "colocated"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "colocated" {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestQuotingGatewayFlow(t *testing.T) {
	// Database server S, gateway G, client C. The gateway calls S
	// quoting C; S demands a proof for "G-channel | C"; the gateway's
	// prover composes it from the client's grant.
	serverKey := sfkey.FromSeed([]byte("db-server"))
	gatewayKey := sfkey.FromSeed([]byte("gateway"))
	clientKey := sfkey.FromSeed([]byte("the-client"))
	sIss := principal.KeyOf(serverKey.Public())
	gP := principal.KeyOf(gatewayKey.Public())
	cP := principal.KeyOf(clientKey.Public())

	srv := NewServer()
	if err := srv.Register("echo", &EchoService{}, sIss, nil); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	// The client authorizes "G quoting C" using its own authority.
	sToC, err := cert.Delegate(serverKey, cP, sIss, ObjectTag("echo"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	gQuotingC := principal.QuoteOf(gP, cP)
	cGrant, err := cert.Delegate(clientKey, gQuotingC, cP, ObjectTag("echo"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewTransitivity(cGrant, sToC)
	if err != nil {
		t.Fatal(err)
	}

	// Gateway prover: controls G, holds the client-provided chain.
	gpv := prover.New()
	gpv.AddClosure(prover.NewKeyClosure(gatewayKey))
	gpv.AddProof(chain)

	id, _ := secure.NewIdentity()
	gc, err := Dial(secure.Dialer{ID: id}, l.Addr().String(), gpv)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()

	var reply EchoReply
	if err := gc.CallQuoting(cP, "echo", "Echo", EchoArgs{Msg: "for C"}, &reply); err != nil {
		t.Fatalf("quoting call failed: %v", err)
	}
	if reply.Msg != "for C" {
		t.Fatalf("reply = %+v", reply)
	}

	// Without quoting, the gateway has no authority of its own.
	if err := gc.Call("echo", "Echo", EchoArgs{Msg: "as G"}, &reply); err == nil {
		t.Fatal("gateway authorized without quoting")
	}
}

func TestEstablishAuthorityUpFront(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)
	// Pre-push authority: no challenge on first call.
	if err := c.EstablishAuthority(principal.KeyOf(w.userKey.Public()), grant, time.Hour); err != nil {
		t.Fatal(err)
	}
	// The delegation alone is not enough — the server must also walk
	// to its own issuer; the chain completes at challenge time if
	// needed, but here the full proof requires the server->user cert.
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "pre"}, &reply); err != nil {
		t.Fatal(err)
	}
}

func TestExpiredDelegationRejected(t *testing.T) {
	w := newWorld(t, ObjectTag("echo"))
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	issuer := principal.KeyOf(w.serverKey.Public())
	user := principal.KeyOf(w.userKey.Public())
	expired, err := cert.Delegate(w.serverKey, user, issuer, ObjectTag("echo"),
		core.Until(time.Now().Add(-time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(expired)
	id, _ := secure.NewIdentity()
	c, err := Dial(secure.Dialer{ID: id}, w.addr, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{}, &reply); err == nil {
		t.Fatal("expired delegation accepted")
	}
}

func TestRevokedCertificateRejected(t *testing.T) {
	w := newWorld(t, ObjectTag("echo"))
	// Build the delegation, then revoke it at the server.
	issuer := principal.KeyOf(w.serverKey.Public())
	user := principal.KeyOf(w.userKey.Public())
	d, err := cert.Delegate(w.serverKey, user, issuer, ObjectTag("echo"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	store := cert.NewRevocationStore()
	ctx := core.NewVerifyContext()
	if err := store.Add(cert.NewRevocationList(w.serverKey, core.Forever, d.Hash())); err != nil {
		t.Fatal(err)
	}
	w.srv.Revoked = store.Checker(ctx)

	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	pv.AddProof(d)
	id, _ := secure.NewIdentity()
	c, err := Dial(secure.Dialer{ID: id}, w.addr, pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{}, &reply); err == nil {
		t.Fatal("revoked delegation accepted")
	}
}

func TestForgetProofsForcesReverification(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	c := w.authorizedClient(t, grant)
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	w.srv.ForgetProofs()
	if err := c.Call("echo", "Echo", EchoArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	if got := w.srv.Stats().ProofVerifies; got != 2 {
		t.Fatalf("proof verifies = %d, want 2", got)
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := NewServer()
	if err := srv.Register("x", &EchoService{}, nil, nil); err == nil {
		t.Fatal("protected object without issuer accepted")
	}
	type noMethods struct{}
	if err := srv.RegisterOpen("y", &noMethods{}); err == nil {
		t.Fatal("object with no methods accepted")
	}
	if err := srv.RegisterOpen("echo", &EchoService{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterOpen("echo", &EchoService{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestTagFuncSeesArguments(t *testing.T) {
	// A TagFunc that scopes authority per message content.
	serverKey := sfkey.FromSeed([]byte("tagfunc-server"))
	userKey := sfkey.FromSeed([]byte("tagfunc-user"))
	issuer := principal.KeyOf(serverKey.Public())
	srv := NewServer()
	tf := func(object, method string, args interface{}) tag.Tag {
		ea := args.(EchoArgs)
		return tag.ListOf(tag.Literal("echo"), tag.Literal(ea.Msg))
	}
	if err := srv.Register("echo", &EchoService{}, issuer, tf); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	user := principal.KeyOf(userKey.Public())
	// Grant covers only messages "allowed".
	grant := tag.ListOf(tag.Literal("echo"), tag.Literal("allowed"))
	d, err := cert.Delegate(serverKey, user, issuer, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(d)
	id, _ := secure.NewIdentity()
	c, err := Dial(secure.Dialer{ID: id}, l.Addr().String(), pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "allowed"}, &reply); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "forbidden"}, &reply); err == nil {
		t.Fatal("argument outside grant authorized")
	}
}

func TestConcurrentClients(t *testing.T) {
	grant := ObjectTag("echo")
	w := newWorld(t, grant)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := w.authorizedClient(t, grant)
			var reply EchoReply
			for j := 0; j < 5; j++ {
				if err := c.Call("echo", "Echo", EchoArgs{Msg: "par"}, &reply); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
