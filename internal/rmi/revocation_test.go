package rmi

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
)

// TestRevocationInvalidatesCachedAuthorization drives the end-to-end
// fast path and then revokes it: the first call verifies and caches
// the client's proof chain; installing a CRL bumps the proof cache's
// revocation epoch, which must flush every cached verdict — the next
// call re-verifies, sees the revocation, and is denied.
func TestRevocationInvalidatesCachedAuthorization(t *testing.T) {
	serverKey := sfkey.FromSeed([]byte("revoke-server"))
	userKey := sfkey.FromSeed([]byte("revoke-user"))
	issuer := principal.KeyOf(serverKey.Public())
	user := principal.KeyOf(userKey.Public())

	srv := NewServer()
	srv.Cache = core.NewProofCache(64) // private cache isolates the test
	rs := cert.NewRevocationStore()
	rs.AttachCache(srv.Cache)
	srv.Revoked = func(h []byte) bool { return rs.RevokedAt(time.Now())(h) }
	srv.RevocationView = rs.View()
	if err := srv.Register("echo", &EchoService{}, issuer, nil); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	grant := ObjectTag("echo")
	d, err := cert.Delegate(serverKey, user, issuer, grant, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	pv.AddProof(d)
	id, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(secure.Dialer{ID: id}, l.Addr().String(), pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var reply EchoReply
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "warm"}, &reply); err != nil {
		t.Fatal(err)
	}
	// Second call rides the cached, already verified proof.
	if err := c.Call("echo", "Echo", EchoArgs{Msg: "cached"}, &reply); err != nil {
		t.Fatal(err)
	}

	// Revoke the delegation; the store bumps the attached cache epoch.
	crl := cert.NewRevocationList(serverKey, core.Until(time.Now().Add(time.Hour)), d.Hash())
	if err := rs.Add(crl); err != nil {
		t.Fatal(err)
	}

	err = c.Call("echo", "Echo", EchoArgs{Msg: "stale?"}, &reply)
	if err == nil {
		t.Fatal("call authorized from stale cached verdict after revocation")
	}
	if !strings.Contains(err.Error(), "revoked") && !strings.Contains(err.Error(), "challenge") {
		t.Fatalf("unexpected error after revocation: %v", err)
	}
}
