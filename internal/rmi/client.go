package rmi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/tag"
)

// Client invokes remote objects over one authenticated channel. Its
// Call method is the invoker of Figure 4: it makes the remote call,
// catches the server's NeedAuthorization challenge, obtains a proof
// from the Prover, pushes it to the server's proof recipient, and
// retries — all invisible to the caller, who only established
// identity by attaching a Prover.
type Client struct {
	mu     sync.Mutex
	conn   channel.Conn
	bw     *bufio.Writer
	enc    *gob.Encoder
	dec    *gob.Decoder
	prover *prover.Prover
	nextID uint64

	// Clock supplies proof-search time; nil means time.Now.
	Clock func() time.Time

	stats ClientStats
}

// ClientStats counts invoker work.
type ClientStats struct {
	Calls      int
	Challenges int
	Proofs     int
	Retries    int
}

// NewClient wraps an established channel. The prover may be nil for
// purely open (unauthenticated) services. Writes are buffered and
// flushed once per message, so each invocation crosses the channel as
// a single record.
func NewClient(conn channel.Conn, pv *prover.Prover) *Client {
	bw := bufio.NewWriter(conn)
	return &Client{
		conn:   conn,
		bw:     bw,
		enc:    gob.NewEncoder(bw),
		dec:    gob.NewDecoder(conn),
		prover: pv,
	}
}

// Dial connects through any channel mechanism and wraps the result.
func Dial(d channel.Dialer, addr string, pv *prover.Prover) (*Client, error) {
	conn, err := d.Dial(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, pv), nil
}

// Close tears down the channel.
func (c *Client) Close() error { return c.conn.Close() }

// Conn exposes the underlying channel (for inspecting keys).
func (c *Client) Conn() channel.Conn { return c.conn }

// ChannelSpeaker returns the principal the server will see as the
// utterer of this client's requests: the channel's local key (K2).
func (c *Client) ChannelSpeaker() principal.Principal {
	lk := c.conn.LocalKey()
	if zeroKey(lk) {
		return c.conn.Principal()
	}
	return principal.KeyOf(lk)
}

// Stats returns a copy of the counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Call invokes object.method(args, reply).
func (c *Client) Call(object, method string, args, reply interface{}) error {
	return c.call(context.Background(), nil, object, method, args, reply)
}

// CallCtx is Call carrying a context: an active obs span on ctx rides
// the wire as the request's Sf-Trace value, so the server's dispatch
// span (and any proof search a challenge triggers) joins the trace.
func (c *Client) CallCtx(ctx context.Context, object, method string, args, reply interface{}) error {
	return c.call(ctx, nil, object, method, args, reply)
}

// CallQuoting invokes the method while quoting another principal: the
// server attributes the request to "channel-key | quotee" and demands
// a proof for that compound principal (section 6.3).
func (c *Client) CallQuoting(quotee principal.Principal, object, method string, args, reply interface{}) error {
	return c.call(context.Background(), quotee, object, method, args, reply)
}

// CallQuotingCtx is CallQuoting carrying a context (see CallCtx).
func (c *Client) CallQuotingCtx(ctx context.Context, quotee principal.Principal, object, method string, args, reply interface{}) error {
	return c.call(ctx, quotee, object, method, args, reply)
}

func (c *Client) call(ctx context.Context, quotee principal.Principal, object, method string, args, reply interface{}) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Calls++

	resp, err := c.roundTrip(ctx, quotee, object, method, args)
	if err != nil {
		return err
	}
	if resp.Kind == kindNeedAuth {
		c.stats.Challenges++
		if err := c.satisfyChallenge(ctx, quotee, resp); err != nil {
			return err
		}
		c.stats.Retries++
		if resp, err = c.roundTrip(ctx, quotee, object, method, args); err != nil {
			return err
		}
	}
	switch resp.Kind {
	case kindOK:
		if reply == nil {
			return nil
		}
		return gob.NewDecoder(bytes.NewReader(resp.Result)).Decode(reply)
	case kindNeedAuth:
		iss, mt, derr := decodeChallenge(resp.Issuer, resp.MinTag)
		if derr != nil {
			return derr
		}
		return &NeedAuthorization{Issuer: iss, MinTag: mt}
	default:
		return fmt.Errorf("rmi: remote error: %s", resp.Err)
	}
}

func (c *Client) roundTrip(ctx context.Context, quotee principal.Principal, object, method string, args interface{}) (*callResponse, error) {
	var argBuf bytes.Buffer
	if err := gob.NewEncoder(&argBuf).Encode(args); err != nil {
		return nil, fmt.Errorf("rmi: encode args: %w", err)
	}
	c.nextID++
	req := callRequest{
		ID:     c.nextID,
		Object: object,
		Method: method,
		Args:   argBuf.Bytes(),
		Trace:  obs.Inject(ctx),
	}
	if quotee != nil {
		req.Quotee = quotee.Sexp().Transport()
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("rmi: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("rmi: send: %w", err)
	}
	var resp callResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("rmi: receive: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("rmi: response id mismatch")
	}
	return &resp, nil
}

// satisfyChallenge is steps f-n of Figure 4: inspect the challenge,
// query the Prover for a proof that our channel key (possibly quoting)
// speaks for the required issuer, and push it to the proof recipient.
func (c *Client) satisfyChallenge(ctx context.Context, quotee principal.Principal, resp *callResponse) error {
	if c.prover == nil {
		return fmt.Errorf("rmi: server demands authorization but client has no prover")
	}
	issuer, minTag, err := decodeChallenge(resp.Issuer, resp.MinTag)
	if err != nil {
		return err
	}
	var speaker principal.Principal = c.ChannelSpeaker()
	if quotee != nil {
		speaker = principal.QuoteOf(speaker, quotee)
	}
	now := time.Now()
	if c.Clock != nil {
		now = c.Clock()
	}
	proof, err := c.prover.FindProofCtx(ctx, speaker, issuer, minTag, now)
	if err != nil {
		return fmt.Errorf("rmi: cannot satisfy challenge: %w", err)
	}
	c.stats.Proofs++
	return c.submitProofLocked(proof)
}

// SubmitProof pushes an existing proof to the server's recipient
// without waiting for a challenge.
func (c *Client) SubmitProof(p core.Proof) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitProofLocked(p)
}

func (c *Client) submitProofLocked(p core.Proof) error {
	var argBuf bytes.Buffer
	if err := gob.NewEncoder(&argBuf).Encode(submitArgs{Proof: p.Sexp().Transport()}); err != nil {
		return err
	}
	c.nextID++
	req := callRequest{ID: c.nextID, Object: proofRecipientObject, Method: "Submit", Args: argBuf.Bytes()}
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	var resp callResponse
	if err := c.dec.Decode(&resp); err != nil {
		return err
	}
	if resp.Kind != kindOK {
		return fmt.Errorf("rmi: proof rejected: %s", resp.Err)
	}
	return nil
}

// EstablishAuthority mints and submits a delegation from a controlled
// principal (usually the user's key KC) to this client's channel key
// (K2), restricted to t and ttl — the "new Snowflake-authorized RMI
// connection" setup whose public-key operation dominates cold-call
// cost (section 7.2). Most callers instead rely on the automatic
// challenge path of Call.
func (c *Client) EstablishAuthority(from principal.Principal, t tag.Tag, ttl time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prover == nil {
		return fmt.Errorf("rmi: no prover attached")
	}
	now := time.Now()
	if c.Clock != nil {
		now = c.Clock()
	}
	proof, err := c.prover.Delegate(from, c.ChannelSpeaker(), t,
		core.Between(now.Add(-time.Minute), now.Add(ttl)))
	if err != nil {
		return err
	}
	return c.submitProofLocked(proof)
}
