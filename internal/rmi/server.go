package rmi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// TagFunc maps a method invocation (with its decoded arguments) to
// the restriction set required to authorize it — the server
// programmer's "mapping from method invocation to restriction set
// (T)" of section 5.1.1.
type TagFunc func(object, method string, args interface{}) tag.Tag

// DefaultTagFunc requires (rmi (object X) (method M)).
func DefaultTagFunc(object, method string, args interface{}) tag.Tag {
	return MethodTag(object, method)
}

// object is a registered remote object.
type object struct {
	name   string
	issuer principal.Principal // KS: the principal controlling the object
	tagFor TagFunc
	recv   reflect.Value
	method map[string]reflect.Method
	open   bool // unprotected: no checkAuth prologue
}

// Stats counts server-side authorization work, reported by the
// measurement harness.
type Stats struct {
	Calls         int
	AuthChecks    int
	AuthFailures  int
	ProofSubmits  int
	ProofVerifies int
}

// Server dispatches invocations arriving over authenticated channels.
type Server struct {
	mu      sync.Mutex
	objects map[string]*object
	// proofs caches verified proofs by subject principal key — the
	// "cache/proof" box of Figure 4. Entries are only ever inserted
	// after full verification.
	proofs map[string][]core.Proof
	// vctx holds the persistent verification context; its local memo
	// is discarded on every proof-cache epoch bump so revoked chains
	// re-verify.
	vctx  core.EpochContext
	stats Stats

	// conns tracks live connections and inflight the dispatches on
	// them, so Drain can stop accepting work, wait for calls already
	// executing, and only then tear channels down.
	conns    map[channel.Conn]struct{}
	inflight sync.WaitGroup
	draining bool

	// Clock supplies verification time; nil means time.Now.
	Clock func() time.Time
	// Revoked and Revalidate plug revocation state into proof
	// verification (package cert). They are consulted when a proof is
	// first verified; cached verdicts are dropped whenever the proof
	// cache's revocation epoch advances (cert.RevocationStore bumps it
	// on every CRL), so a revocation takes effect at the next call
	// without ForgetProofs.
	Revoked    func(certHash []byte) bool
	Revalidate func(certHash []byte, where string) error
	// RevocationView identifies the revocation state behind Revoked
	// (cert.RevocationStore.View). With Revoked set but no view, the
	// shared proof cache is bypassed — safe but slow; wiring helpers
	// like emaildb.RegisterWithRevocation set both.
	RevocationView uint64
	// Cache is the verified-proof cache; nil means the process-wide
	// shared cache.
	Cache *core.ProofCache
	// Obs records one span per dispatched call, continuing the trace
	// named by the request's Trace field; nil disables tracing.
	Obs *obs.Recorder
	// Audit receives one Decision per checkAuth prologue; nil
	// disables the audit trail.
	Audit *obs.AuditLog
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		objects: make(map[string]*object),
		proofs:  make(map[string][]core.Proof),
	}
}

// Register installs a protected remote object. Methods must have the
// net/rpc shape: func (t *T) M(args A, reply *R) error. Every call is
// prefixed by checkAuth against the issuer and tagFor (nil tagFor
// uses DefaultTagFunc).
func (s *Server) Register(name string, impl interface{}, issuer principal.Principal, tagFor TagFunc) error {
	return s.register(name, impl, issuer, tagFor, false)
}

// RegisterOpen installs an unprotected object (the "basic RMI"
// baseline of Figure 6).
func (s *Server) RegisterOpen(name string, impl interface{}) error {
	return s.register(name, impl, nil, nil, true)
}

func (s *Server) register(name string, impl interface{}, issuer principal.Principal, tagFor TagFunc, open bool) error {
	if !open && issuer == nil {
		return fmt.Errorf("rmi: protected object %q needs an issuer", name)
	}
	if tagFor == nil {
		tagFor = DefaultTagFunc
	}
	recv := reflect.ValueOf(impl)
	t := recv.Type()
	methods := make(map[string]reflect.Method)
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		if !suitableMethod(m) {
			continue
		}
		methods[m.Name] = m
	}
	if len(methods) == 0 {
		return fmt.Errorf("rmi: %q exports no suitable methods", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[name]; dup {
		return fmt.Errorf("rmi: object %q already registered", name)
	}
	s.objects[name] = &object{
		name: name, issuer: issuer, tagFor: tagFor,
		recv: recv, method: methods, open: open,
	}
	return nil
}

// suitableMethod checks the net/rpc shape: two args (value, pointer),
// one error return.
func suitableMethod(m reflect.Method) bool {
	mt := m.Type
	if mt.NumIn() != 3 || mt.NumOut() != 1 {
		return false
	}
	if mt.In(2).Kind() != reflect.Ptr {
		return false
	}
	return mt.Out(0) == reflect.TypeOf((*error)(nil)).Elem()
}

// Serve accepts connections until the listener fails.
func (s *Server) Serve(l channel.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn dispatches one connection; it returns when the peer
// disconnects. Responses are buffered and flushed once per message.
func (s *Server) ServeConn(conn channel.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = make(map[channel.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	for {
		var req callRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
				// Connection torn down; nothing to report to.
				_ = err
			}
			return
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		resp := s.dispatch(conn, &req)
		s.inflight.Done()
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Drain stops dispatching new calls, waits up to timeout (forever
// when timeout <= 0) for in-flight dispatches to finish, and then
// closes every live connection so ServeConn loops unwind. Daemons
// reach it through server.Runtime.ServeRMI; direct callers pair it
// with closing their listener.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	s.draining = true
	conns := make([]channel.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
		}
	} else {
		<-done
	}
	for _, c := range conns {
		c.Close()
	}
}

// speakerFor derives the principal that uttered a request: the
// channel's peer key ("checkAuth discovers the key K2 associated with
// the channel"), wrapped as a quoting principal when the caller
// claims to quote (section 6.3).
func speakerFor(conn channel.Conn, req *callRequest) (principal.Principal, error) {
	peer := conn.PeerKey()
	var base principal.Principal
	if len(peer.Raw) == 0 {
		// Unauthenticated channel: only the channel itself speaks.
		base = conn.Principal()
	} else {
		base = principal.KeyOf(peer)
	}
	if len(req.Quotee) == 0 {
		return base, nil
	}
	qe, err := principal.Parse(string(req.Quotee))
	if err != nil {
		return nil, fmt.Errorf("rmi: bad quotee: %w", err)
	}
	return principal.QuoteOf(base, qe), nil
}

func (s *Server) dispatch(conn channel.Conn, req *callRequest) *callResponse {
	s.mu.Lock()
	s.stats.Calls++
	s.mu.Unlock()
	resp := &callResponse{ID: req.ID}

	var span *obs.ActiveSpan
	if s.Obs != nil {
		_, span = s.Obs.StartFromHeader(context.Background(), req.Trace, "rmi."+req.Object+"."+req.Method)
		defer span.End()
	}

	if req.Object == proofRecipientObject {
		return s.handleProofSubmit(req, resp)
	}

	s.mu.Lock()
	obj, ok := s.objects[req.Object]
	s.mu.Unlock()
	if !ok {
		resp.Kind = kindError
		resp.Err = fmt.Sprintf("rmi: no object %q", req.Object)
		return resp
	}
	m, ok := obj.method[req.Method]
	if !ok {
		resp.Kind = kindError
		resp.Err = fmt.Sprintf("rmi: %q has no method %q", req.Object, req.Method)
		return resp
	}

	// Decode arguments.
	argv := reflect.New(m.Type.In(1))
	if err := gob.NewDecoder(bytes.NewReader(req.Args)).DecodeValue(argv); err != nil {
		resp.Kind = kindError
		resp.Err = fmt.Sprintf("rmi: decode args: %v", err)
		return resp
	}

	// The checkAuth() prologue (Figure 4, step l).
	if !obj.open {
		speaker, err := speakerFor(conn, req)
		if err != nil {
			resp.Kind = kindError
			resp.Err = err.Error()
			return resp
		}
		reqTag := obj.tagFor(req.Object, req.Method, argv.Elem().Interface())
		authStart := time.Now()
		proof, err := s.checkAuth(speaker, obj.issuer, reqTag)
		if err != nil {
			var ae *core.AuthError
			if errors.As(err, &ae) {
				span.SetAttr("verdict", "challenge")
				s.audit(obs.Decision{
					Op: req.Object + "." + req.Method, Principal: speaker.String(),
					Tag: reqTag.String(), Verdict: obs.VerdictChallenge,
					Reason: ae.Reason, Duration: time.Since(authStart).Microseconds(),
					Trace: traceOf(req),
				})
				resp.Kind = kindNeedAuth
				resp.Issuer, resp.MinTag = encodeChallenge(ae.Issuer, ae.MinTag)
				return resp
			}
			span.Fail(err)
			s.audit(obs.Decision{
				Op: req.Object + "." + req.Method, Principal: speaker.String(),
				Tag: reqTag.String(), Verdict: obs.VerdictDeny,
				Reason: err.Error(), Duration: time.Since(authStart).Microseconds(),
				Trace: traceOf(req),
			})
			resp.Kind = kindError
			resp.Err = err.Error()
			return resp
		}
		span.SetAttr("verdict", "admit")
		s.audit(obs.Decision{
			Op: req.Object + "." + req.Method, Principal: speaker.String(),
			Tag: reqTag.String(), Verdict: obs.VerdictAdmit,
			CertHashes: core.LeafHashes(proof),
			Duration:   time.Since(authStart).Microseconds(),
			Trace:      traceOf(req),
		})
	}

	// Invoke.
	replyv := reflect.New(m.Type.In(2).Elem())
	out := m.Func.Call([]reflect.Value{obj.recv, argv.Elem(), replyv})
	if errv := out[0].Interface(); errv != nil {
		resp.Kind = kindError
		resp.Err = errv.(error).Error()
		return resp
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(replyv); err != nil {
		resp.Kind = kindError
		resp.Err = fmt.Sprintf("rmi: encode reply: %v", err)
		return resp
	}
	resp.Kind = kindOK
	resp.Result = buf.Bytes()
	return resp
}

// checkAuth finds a cached, already verified proof that speaker
// speaks for issuer regarding reqTag, returning the proof that
// authorized the call (the audit trail names its chain). Because
// proofs are verified when submitted and conclusions carry their own
// expiry, the per-call cost is a cache lookup plus tag matching
// (section 7.2: "finds a cached proof for that subject and sees that
// the proof has already been verified").
func (s *Server) checkAuth(speaker, issuer principal.Principal, reqTag tag.Tag) (core.Proof, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.AuthChecks++
	ctx := s.verifyContextLocked()
	for _, p := range s.proofs[speaker.Key()] {
		if err := core.Authorize(ctx, p, speaker, issuer, reqTag); err == nil {
			return p, nil
		}
	}
	s.stats.AuthFailures++
	return nil, &core.AuthError{Issuer: issuer, MinTag: reqTag, Reason: "no valid proof on file"}
}

// audit stamps the layer and revocation coordinates onto a decision
// and appends it; a nil Audit log makes this a no-op.
func (s *Server) audit(d obs.Decision) {
	if s.Audit == nil {
		return
	}
	cache := s.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	d.Layer = "rmi"
	d.Epoch = cache.Epoch()
	d.View = s.RevocationView
	s.Audit.Append(d)
}

// traceOf extracts the trace ID from a request's Sf-Trace value.
func traceOf(req *callRequest) string {
	trace, _, _ := obs.ParseHeader(req.Trace)
	return trace
}

// verifyContextLocked refreshes the shared verification context's
// clock, revocation hooks, and proof cache. The context's local memo
// persists across calls — that is the warm path — but it is discarded
// whenever the proof cache's revocation epoch advances, so no stale
// verdict survives a CRL.
func (s *Server) verifyContextLocked() *core.VerifyContext {
	now := time.Now()
	if s.Clock != nil {
		now = s.Clock()
	}
	cache := s.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	ctx := s.vctx.Refresh(cache)
	ctx.Now = now
	ctx.Revoked = s.Revoked
	ctx.Revalidate = s.Revalidate
	ctx.RevocationView = s.RevocationView
	return ctx
}

// verifyContext builds a throwaway verification context from the
// server's configured clock, revocation hooks, and proof cache. It
// needs no lock — those fields are set before serving — so signature
// work can run outside s.mu; portable verdicts still land in the
// shared ProofCache where the locked dispatch path finds them.
func (s *Server) verifyContext() *core.VerifyContext {
	now := time.Now()
	if s.Clock != nil {
		now = s.Clock()
	}
	cache := s.Cache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	ctx := core.NewVerifyContext()
	ctx.Cache = cache
	ctx.Now = now
	ctx.Revoked = s.Revoked
	ctx.Revalidate = s.Revalidate
	ctx.RevocationView = s.RevocationView
	return ctx
}

// handleProofSubmit is the proofRecipient (Figure 4, step n): parse,
// verify once, and file the proof under its subject.
func (s *Server) handleProofSubmit(req *callRequest, resp *callResponse) *callResponse {
	var args submitArgs
	if err := gob.NewDecoder(bytes.NewReader(req.Args)).Decode(&args); err != nil {
		resp.Kind = kindError
		resp.Err = fmt.Sprintf("rmi: decode proof submit: %v", err)
		return resp
	}
	if err := s.AcceptProof(args.Proof); err != nil {
		resp.Kind = kindError
		resp.Err = err.Error()
		return resp
	}
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(submitReply{Stored: true})
	resp.Kind = kindOK
	resp.Result = buf.Bytes()
	return resp
}

// AcceptProof parses, verifies, and files a transport-encoded proof;
// exported so colocated gateways and tests can install proofs
// directly.
func (s *Server) AcceptProof(raw []byte) error {
	p, err := core.ParseProofPooled(raw)
	if err != nil {
		return fmt.Errorf("rmi: parse proof: %w", err)
	}
	s.mu.Lock()
	s.stats.ProofSubmits++
	s.stats.ProofVerifies++
	s.mu.Unlock()
	// Chain verify outside s.mu, with the certificate leaves batched:
	// one aggregate signature pass instead of one check per delegation
	// in the chain. Portable verdicts land in the shared proof cache,
	// so later authorization walks over the filed proof are cache
	// hits; the lock below guards only the map append.
	if err := cert.VerifyChain(s.verifyContext(), p); err != nil {
		return fmt.Errorf("rmi: proof does not verify: %w", err)
	}
	subj := p.Conclusion().Subject.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proofs[subj] = append(s.proofs[subj], p)
	return nil
}

// ForgetProofs drops the server's proof cache; the measurement
// harness uses it to isolate the proof parse+verify cost ("when ...
// we make the server forget its copy after each use", section 7.2).
func (s *Server) ForgetProofs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proofs = make(map[string][]core.Proof)
	s.vctx.Reset()
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ObjectIssuer reports the issuer protecting a registered object.
func (s *Server) ObjectIssuer(name string) (principal.Principal, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[name]
	if !ok || o.open {
		return nil, false
	}
	return o.issuer, true
}

// zeroKey reports whether a public key is absent.
func zeroKey(k sfkey.PublicKey) bool { return len(k.Raw) == 0 }
