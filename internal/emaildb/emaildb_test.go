package emaildb

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

var day = time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)

func seedService(t *testing.T) *Service {
	t.Helper()
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	msgs := []Message{
		{Owner: "alice", Folder: "inbox", From: "bob", To: "alice", Subject: "a1", Date: day},
		{Owner: "alice", Folder: "inbox", From: "carol", To: "alice", Subject: "a2", Date: day.Add(time.Hour)},
		{Owner: "alice", Folder: "archive", From: "dave", To: "alice", Subject: "a3", Date: day.Add(2 * time.Hour)},
		{Owner: "bob", Folder: "inbox", From: "eve", To: "bob", Subject: "b1", Date: day},
	}
	for _, m := range msgs {
		var r InsertReply
		if err := svc.Insert(InsertArgs{Msg: m}, &r); err != nil {
			t.Fatal(err)
		}
	}
	return svc
}

func TestLocalCRUD(t *testing.T) {
	svc := seedService(t)
	var sel SelectReply
	if err := svc.Select(SelectArgs{Owner: "alice", Folder: "inbox"}, &sel); err != nil {
		t.Fatal(err)
	}
	if len(sel.Msgs) != 2 {
		t.Fatalf("inbox = %d msgs", len(sel.Msgs))
	}
	// Newest first.
	if sel.Msgs[0].Subject != "a2" {
		t.Fatalf("order wrong: %v", sel.Msgs[0])
	}
	var all SelectReply
	svc.Select(SelectArgs{Owner: "alice"}, &all)
	if len(all.Msgs) != 3 {
		t.Fatalf("all = %d", len(all.Msgs))
	}
	var mr MarkReadReply
	if err := svc.MarkRead(MarkReadArgs{Owner: "alice", ID: all.Msgs[0].ID}, &mr); err != nil || mr.Updated != 1 {
		t.Fatalf("markread: %v %d", err, mr.Updated)
	}
	// Marking someone else's message does nothing.
	var mr2 MarkReadReply
	svc.MarkRead(MarkReadArgs{Owner: "bob", ID: all.Msgs[1].ID}, &mr2)
	if mr2.Updated != 0 {
		t.Fatal("cross-owner markread succeeded")
	}
	var del DeleteReply
	if err := svc.Delete(DeleteArgs{Owner: "alice", ID: all.Msgs[2].ID}, &del); err != nil || del.Deleted != 1 {
		t.Fatalf("delete: %v %d", err, del.Deleted)
	}
	// Insert requires an owner.
	var ir InsertReply
	if err := svc.Insert(InsertArgs{Msg: Message{}}, &ir); err == nil {
		t.Fatal("ownerless insert accepted")
	}
}

func TestTagForScopesPerMailbox(t *testing.T) {
	aliceGrant := OwnerTag("alice")
	cases := []struct {
		args interface{}
		want bool
	}{
		{SelectArgs{Owner: "alice"}, true},
		{InsertArgs{Msg: Message{Owner: "alice"}}, true},
		{MarkReadArgs{Owner: "alice", ID: 1}, true},
		{DeleteArgs{Owner: "alice", ID: 1}, true},
		{SelectArgs{Owner: "bob"}, false},
		{DeleteArgs{Owner: "bob", ID: 1}, false},
	}
	for _, c := range cases {
		req := TagFor(ObjectName, "X", c.args)
		if got := tag.Covers(aliceGrant, req); got != c.want {
			t.Errorf("Covers(alice grant, %+v) = %v, want %v", c.args, got, c.want)
		}
	}
	// Read-only grant excludes writes.
	ro := ReadOnlyTag("alice")
	if !tag.Covers(ro, TagFor(ObjectName, "Select", SelectArgs{Owner: "alice"})) {
		t.Error("read-only grant rejects select")
	}
	if tag.Covers(ro, TagFor(ObjectName, "Delete", DeleteArgs{Owner: "alice"})) {
		t.Error("read-only grant allows delete")
	}
}

// TestOverRMI is the section 6.2 configuration: the database adapted
// to Snowflake with ssh-channel RMI and per-method checkAuth.
func TestOverRMI(t *testing.T) {
	svc := seedService(t)
	serverKey := sfkey.FromSeed([]byte("emaildb-server"))
	issuer := principal.KeyOf(serverKey.Public())
	srv := rmi.NewServer()
	if err := Register(srv, svc, issuer); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	aliceKey := sfkey.FromSeed([]byte("emaildb-alice"))
	alice := principal.KeyOf(aliceKey.Public())
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(aliceKey))
	grant, err := cert.Delegate(serverKey, alice, issuer, OwnerTag("alice"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(grant)
	id, _ := secure.NewIdentity()
	c, err := rmi.Dial(secure.Dialer{ID: id}, l.Addr().String(), pv)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sel SelectReply
	if err := c.Call(ObjectName, "Select", SelectArgs{Owner: "alice"}, &sel); err != nil {
		t.Fatal(err)
	}
	if len(sel.Msgs) != 3 {
		t.Fatalf("alice msgs = %d", len(sel.Msgs))
	}
	// Alice cannot read bob's mail.
	var selB SelectReply
	if err := c.Call(ObjectName, "Select", SelectArgs{Owner: "bob"}, &selB); err == nil {
		t.Fatal("alice read bob's mailbox")
	}
	// Alice can insert into her own mailbox.
	var ir InsertReply
	if err := c.Call(ObjectName, "Insert", InsertArgs{Msg: Message{
		Owner: "alice", Folder: "inbox", From: "f", To: "alice", Subject: "new", Date: day,
	}}, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.ID == 0 {
		t.Fatal("no id assigned")
	}
	// ... but not into bob's.
	if err := c.Call(ObjectName, "Insert", InsertArgs{Msg: Message{
		Owner: "bob", Folder: "inbox", Date: day,
	}}, &ir); err == nil {
		t.Fatal("alice inserted into bob's mailbox")
	}
}
