// Package emaildb is the protected relational email database of paper
// section 6.2: a database server accepting insert, update, select and
// delete requests as remote method invocations, with Snowflake
// authorization prepended to each method. Authority is delegated per
// mailbox owner through tags of the form (db (owner "alice") (op
// select)), so the server — not any gateway — makes the final
// access-control decision for every row.
package emaildb

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/principal"
	"repro/internal/reldb"
	"repro/internal/rmi"
	"repro/internal/tag"
)

// Message is one email row.
type Message struct {
	ID      int64
	Owner   string
	Folder  string
	From    string
	To      string
	Subject string
	Date    time.Time
	Body    string
	Read    bool
}

// Service implements the remote database object.
type Service struct {
	db     *reldb.DB
	nextID int64
	mu     chan struct{} // 1-token semaphore for id allocation
}

// NewService builds the schema.
func NewService() (*Service, error) {
	db := reldb.New()
	err := db.CreateTable(reldb.Schema{
		Name: "messages",
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.Int},
			{Name: "owner", Type: reldb.String},
			{Name: "folder", Type: reldb.String},
			{Name: "from", Type: reldb.String},
			{Name: "to", Type: reldb.String},
			{Name: "subject", Type: reldb.String},
			{Name: "date", Type: reldb.Time},
			{Name: "body", Type: reldb.String},
			{Name: "read", Type: reldb.Bool},
		},
		Key:     "id",
		Indexes: []string{"owner", "folder"},
	})
	if err != nil {
		return nil, err
	}
	s := &Service{db: db, mu: make(chan struct{}, 1)}
	s.mu <- struct{}{}
	return s, nil
}

func toRow(m Message) reldb.Row {
	return reldb.Row{
		"id":      reldb.IntV(m.ID),
		"owner":   reldb.StringV(m.Owner),
		"folder":  reldb.StringV(m.Folder),
		"from":    reldb.StringV(m.From),
		"to":      reldb.StringV(m.To),
		"subject": reldb.StringV(m.Subject),
		"date":    reldb.TimeV(m.Date),
		"body":    reldb.StringV(m.Body),
		"read":    reldb.BoolV(m.Read),
	}
}

func fromRow(r reldb.Row) Message {
	return Message{
		ID:      r["id"].I,
		Owner:   r["owner"].S,
		Folder:  r["folder"].S,
		From:    r["from"].S,
		To:      r["to"].S,
		Subject: r["subject"].S,
		Date:    r["date"].T,
		Body:    r["body"].S,
		Read:    r["read"].Bool,
	}
}

// --- RMI argument/reply types ------------------------------------------

// InsertArgs inserts one message into the owner's mailbox.
type InsertArgs struct{ Msg Message }

// InsertReply returns the assigned id.
type InsertReply struct{ ID int64 }

// SelectArgs queries one owner's messages, optionally one folder.
type SelectArgs struct {
	Owner  string
	Folder string
	Limit  int
}

// SelectReply returns matching messages, newest first.
type SelectReply struct{ Msgs []Message }

// MarkReadArgs marks one message read.
type MarkReadArgs struct {
	Owner string
	ID    int64
}

// MarkReadReply counts updates.
type MarkReadReply struct{ Updated int }

// DeleteArgs deletes one message.
type DeleteArgs struct {
	Owner string
	ID    int64
}

// DeleteReply counts deletions.
type DeleteReply struct{ Deleted int }

// --- remote methods ------------------------------------------------------

// Insert adds a message.
func (s *Service) Insert(args InsertArgs, reply *InsertReply) error {
	if args.Msg.Owner == "" {
		return fmt.Errorf("emaildb: message needs an owner")
	}
	<-s.mu
	s.nextID++
	args.Msg.ID = s.nextID
	s.mu <- struct{}{}
	if _, err := s.db.Insert("messages", toRow(args.Msg)); err != nil {
		return err
	}
	reply.ID = args.Msg.ID
	return nil
}

// Select returns an owner's messages.
func (s *Service) Select(args SelectArgs, reply *SelectReply) error {
	where := []reldb.Cond{{Col: "owner", Op: reldb.Eq, Val: reldb.StringV(args.Owner)}}
	if args.Folder != "" {
		where = append(where, reldb.Cond{Col: "folder", Op: reldb.Eq, Val: reldb.StringV(args.Folder)})
	}
	rows, err := s.db.Select(reldb.Query{
		Table: "messages", Where: where, OrderBy: "date", Desc: true, Limit: args.Limit,
	})
	if err != nil {
		return err
	}
	for _, r := range rows {
		reply.Msgs = append(reply.Msgs, fromRow(r))
	}
	return nil
}

// MarkRead flags a message read.
func (s *Service) MarkRead(args MarkReadArgs, reply *MarkReadReply) error {
	n, err := s.db.Update("messages",
		[]reldb.Cond{
			{Col: "owner", Op: reldb.Eq, Val: reldb.StringV(args.Owner)},
			{Col: "id", Op: reldb.Eq, Val: reldb.IntV(args.ID)},
		},
		reldb.Row{"read": reldb.BoolV(true)})
	if err != nil {
		return err
	}
	reply.Updated = n
	return nil
}

// Delete removes a message.
func (s *Service) Delete(args DeleteArgs, reply *DeleteReply) error {
	n, err := s.db.Delete("messages", []reldb.Cond{
		{Col: "owner", Op: reldb.Eq, Val: reldb.StringV(args.Owner)},
		{Col: "id", Op: reldb.Eq, Val: reldb.IntV(args.ID)},
	})
	if err != nil {
		return err
	}
	reply.Deleted = n
	return nil
}

// --- authorization mapping -------------------------------------------------

// OpTag is the concrete tag of one operation on one mailbox:
// (db (owner "alice") (op select)).
func OpTag(owner, op string) tag.Tag {
	return tag.ListOf(
		tag.Literal("db"),
		tag.ListOf(tag.Literal("owner"), tag.Literal(owner)),
		tag.ListOf(tag.Literal("op"), tag.Literal(op)),
	)
}

// OwnerTag covers every operation on one mailbox.
func OwnerTag(owner string) tag.Tag {
	return tag.ListOf(
		tag.Literal("db"),
		tag.ListOf(tag.Literal("owner"), tag.Literal(owner)),
	)
}

// AllTag covers every operation on every mailbox — the root
// delegation a database owner hands an organization-level issuer,
// which then narrows per member with OwnerTag (list tags compose by
// intersection: ("db") ∩ ("db" (owner "u")) = the member's tag).
func AllTag() tag.Tag {
	return tag.ListOf(tag.Literal("db"))
}

// ReadOnlyTag covers select on one mailbox.
func ReadOnlyTag(owner string) tag.Tag {
	return tag.ListOf(
		tag.Literal("db"),
		tag.ListOf(tag.Literal("owner"), tag.Literal(owner)),
		tag.ListOf(tag.Literal("op"), tag.Literal("select")),
	)
}

// TagFor is the service's rmi.TagFunc: it derives the required
// restriction from the decoded arguments, scoping every call to the
// mailbox it touches.
func TagFor(object, method string, args interface{}) tag.Tag {
	switch a := args.(type) {
	case InsertArgs:
		return OpTag(a.Msg.Owner, "insert")
	case SelectArgs:
		return OpTag(a.Owner, "select")
	case MarkReadArgs:
		return OpTag(a.Owner, "update")
	case DeleteArgs:
		return OpTag(a.Owner, "delete")
	default:
		// Unknown method shape: demand the unsatisfiable-by-accident
		// full-database tag.
		return tag.ListOf(tag.Literal("db"), tag.ListOf(tag.Literal("owner"), tag.All()))
	}
}

// ObjectName is the conventional RMI name of the database object.
const ObjectName = "emaildb"

// Register installs the service on an RMI server under ObjectName.
func Register(srv *rmi.Server, svc *Service, issuer principal.Principal) error {
	return srv.Register(ObjectName, svc, issuer, TagFor)
}

// RegisterWithRevocation installs the service and wires the server's
// access checks to a revocation store: submitted proofs are checked
// against its CRLs, and because the store bumps the shared
// verified-proof cache's epoch on every CRL it installs, a revocation
// invalidates previously cached verdicts at the next call — the
// database keeps making the real access-control decision (section
// 6.2) while the warm path stays one cache lookup.
func RegisterWithRevocation(srv *rmi.Server, svc *Service, issuer principal.Principal, rs *cert.RevocationStore) error {
	if rs != nil {
		if srv.Cache != nil {
			rs.AttachCache(srv.Cache)
		}
		srv.Revoked = func(h []byte) bool {
			now := time.Now()
			if srv.Clock != nil {
				now = srv.Clock()
			}
			return rs.RevokedAt(now)(h)
		}
		srv.RevocationView = rs.View()
	}
	return srv.Register(ObjectName, svc, issuer, TagFor)
}
