package gateway

import (
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/httpauth"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

// tracedMesh is the two-domain observability world: a front-end
// domain (gateway + its prover) and a database domain (RMI email
// database + its certificate directory), each layer holding its own
// span recorder so a test can assert one request's trace crosses all
// of them.
type tracedMesh struct {
	dbKey, gwKey, aliceKey *sfkey.PrivateKey
	dbIssuer, alice        principal.Principal
	gw                     *Gateway
	gwHTTP                 *httptest.Server
	gwRec, dirRec, dbRec   *obs.Recorder
	gwAudit, dbAudit       *obs.AuditLog
	dirStore               *certdir.Store
	dbRevocations          *cert.RevocationStore
	cold, warm             *obs.Histogram
	pv                     *prover.Prover
}

func newTracedMesh(t *testing.T) *tracedMesh {
	t.Helper()
	w := &tracedMesh{
		dbKey:    sfkey.FromSeed([]byte("trace-db-key")),
		gwKey:    sfkey.FromSeed([]byte("trace-gw-key")),
		aliceKey: sfkey.FromSeed([]byte("trace-alice")),
		gwRec:    obs.NewRecorder(0),
		dirRec:   obs.NewRecorder(0),
		dbRec:    obs.NewRecorder(0),
		gwAudit:  obs.NewAuditLog(0),
		dbAudit:  obs.NewAuditLog(0),
		cold:     obs.NewHistogram("sf_admit_cold_seconds", "test"),
		warm:     obs.NewHistogram("sf_admit_warm_seconds", "test"),
	}
	w.dbIssuer = principal.KeyOf(w.dbKey.Public())
	w.alice = principal.KeyOf(w.aliceKey.Public())

	// Database domain: RMI email service over a secure channel, with
	// revocation enforced and every dispatch traced and audited.
	svc, err := emaildb.NewService()
	if err != nil {
		t.Fatal(err)
	}
	var ir emaildb.InsertReply
	if err := svc.Insert(emaildb.InsertArgs{Msg: emaildb.Message{
		Owner: "alice", Folder: "inbox", From: "carol", To: "alice",
		Subject: "traced hello", Date: time.Now(),
	}}, &ir); err != nil {
		t.Fatal(err)
	}
	dbSrv := rmi.NewServer()
	dbSrv.Obs = w.dbRec
	dbSrv.Audit = w.dbAudit
	w.dbRevocations = cert.NewRevocationStore()
	if err := emaildb.RegisterWithRevocation(dbSrv, svc, w.dbIssuer, w.dbRevocations); err != nil {
		t.Fatal(err)
	}
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: w.dbKey})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go dbSrv.Serve(l)

	// The database domain's certificate directory, traced.
	w.dirStore = certdir.NewStore(certdir.DefaultShards)
	dirSvc := certdir.NewService(w.dirStore)
	dirSvc.Obs = w.dirRec
	dirHTTP := httptest.NewServer(dirSvc)
	t.Cleanup(dirHTTP.Close)

	// Front-end domain: the gateway's prover discovers chains from the
	// directory instead of being handed them.
	w.pv = NewProver(w.gwKey)
	id, err := secure.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	w.pv.AddClosure(prover.NewKeyClosure(id.Priv))
	w.pv.AddRemote(certdir.NewClient(dirHTTP.URL))
	dbClient, err := rmi.Dial(secure.Dialer{ID: id}, l.Addr().String(), w.pv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dbClient.Close() })

	w.gw = New(w.gwKey, dbClient, w.dbIssuer, w.pv)
	w.gw.Obs = w.gwRec
	w.gw.Audit = w.gwAudit
	w.gw.ColdAdmit = w.cold
	w.gw.WarmAdmit = w.warm
	w.gwHTTP = httptest.NewServer(w.gw)
	t.Cleanup(w.gwHTTP.Close)
	return w
}

// publish stores a certificate in the database domain's directory.
func (w *tracedMesh) publish(t *testing.T, c *cert.Cert) {
	t.Helper()
	if added, err := w.dirStore.Publish(c, time.Now()); err != nil || !added {
		t.Fatalf("publish: added=%v err=%v", added, err)
	}
}

// signedRequest builds a request carrying ONLY the signed-request
// artifact (R => alice) — no delegation proof — so the gateway's
// prover must discover the chain from the directory.
func (w *tracedMesh) signedRequest(t *testing.T, method, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqPrin, _, err := httpauth.RequestPrincipal(req)
	if err != nil {
		t.Fatal(err)
	}
	apv := prover.New()
	apv.AddClosure(prover.NewKeyClosure(w.aliceKey))
	now := time.Now()
	rp, err := apv.Delegate(w.alice, reqPrin, emaildb.OwnerTag("alice"),
		core.Between(now.Add(-time.Minute), now.Add(5*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization",
		httpauth.SchemeProof+` request-proof=`+string(rp.Sexp().Transport()))
	return req
}

func certHash(c *cert.Cert) string {
	h := c.Sexp().Hash()
	return hex.EncodeToString(h[:])
}

func spansByName(rec *obs.Recorder, name string) []obs.Span {
	var out []obs.Span
	for _, sp := range rec.Spans() {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestColdAdmitTraceAcrossMesh drives one cold admit across the
// two-domain mesh and asserts a single trace ID links the gateway's
// admit span, the prover's remote-fetch span, and the directory's
// query span — and that the database's audit record names the exact
// certificate hashes of the discovered proof chain.
func TestColdAdmitTraceAcrossMesh(t *testing.T) {
	w := newTracedMesh(t)

	// The chain lives in the directory, not the request: the database
	// owner granted alice her mailbox, and alice consented to being
	// quoted by the gateway.
	grant, err := cert.Delegate(w.dbKey, w.alice, w.dbIssuer, emaildb.OwnerTag("alice"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	gwPrin := principal.KeyOf(w.gwKey.Public())
	handoff, err := cert.Delegate(w.aliceKey, principal.QuoteOf(gwPrin, w.alice),
		w.alice, emaildb.OwnerTag("alice"), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	w.publish(t, grant)
	w.publish(t, handoff)

	req := w.signedRequest(t, http.MethodGet, w.gwHTTP.URL+"/mail?owner=alice&folder=inbox")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "traced hello") {
		t.Fatalf("cold admit failed: %d %s", resp.StatusCode, body)
	}

	// One trace, rooted at the gateway.
	admits := spansByName(w.gwRec, "gateway.admit")
	if len(admits) != 1 {
		t.Fatalf("gateway.admit spans = %d, want 1", len(admits))
	}
	trace := admits[0].Trace
	if trace == "" {
		t.Fatal("gateway.admit span has no trace ID")
	}

	// The prover's remote fetch rode the same trace...
	remotes := spansByName(w.gwRec, "prover.remote")
	if len(remotes) == 0 {
		t.Fatal("no prover.remote span recorded (chain was not discovered remotely)")
	}
	for _, sp := range remotes {
		if sp.Trace != trace {
			t.Fatalf("prover.remote trace %s != admit trace %s", sp.Trace, trace)
		}
	}
	// ...as did the directory's query handling in the other domain...
	queries := spansByName(w.dirRec, "certdir.query")
	if len(queries) == 0 {
		t.Fatal("no certdir.query span recorded")
	}
	linked := false
	for _, sp := range queries {
		if sp.Trace == trace {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("no certdir.query span carries trace %s", trace)
	}
	// ...and the database's RMI dispatch.
	linked = false
	for _, sp := range w.dbRec.Spans() {
		if strings.HasPrefix(sp.Name, "rmi.") && sp.Trace == trace {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("no rmi.* span carries trace %s", trace)
	}

	// The database's admit record names the exact certs of the chain.
	var admit *obs.Decision
	for _, d := range w.dbAudit.Recent(50) {
		if d.Layer == "rmi" && d.Verdict == obs.VerdictAdmit && d.Op == "emaildb.Select" {
			dd := d
			admit = &dd
		}
	}
	if admit == nil {
		t.Fatalf("no rmi admit audit record; have %+v", w.dbAudit.Recent(50))
	}
	if admit.Trace != trace {
		t.Fatalf("rmi audit trace %s != admit trace %s", admit.Trace, trace)
	}
	for _, want := range []string{certHash(grant), certHash(handoff)} {
		found := false
		for _, h := range admit.CertHashes {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("rmi audit cert hashes %v missing chain cert %s", admit.CertHashes, want)
		}
	}

	// Gateway-side: the admit was audited as cold and timed as cold.
	var gwAdmit *obs.Decision
	for _, d := range w.gwAudit.Recent(10) {
		if d.Verdict == obs.VerdictAdmit {
			dd := d
			gwAdmit = &dd
		}
	}
	if gwAdmit == nil {
		t.Fatal("no gateway admit audit record")
	}
	if gwAdmit.Layer != "gateway" || gwAdmit.Trace != trace || gwAdmit.CacheHit {
		t.Fatalf("gateway admit record = %+v, want layer gateway, trace %s, cold", gwAdmit, trace)
	}
	if _, _, n := w.cold.Snapshot(); n != 1 {
		t.Fatalf("cold-admit histogram count = %d, want 1", n)
	}
	if _, _, n := w.warm.Snapshot(); n != 0 {
		t.Fatalf("warm-admit histogram count = %d, want 0", n)
	}
}

// lastDecision returns the most recent decision in the log.
func lastDecision(t *testing.T, l *obs.AuditLog) obs.Decision {
	t.Helper()
	ds := l.Recent(1)
	if len(ds) != 1 {
		t.Fatal("no audit decision recorded")
	}
	return ds[0]
}

// TestGatewayAuditDenyAndChallengePaths asserts every refusal path
// leaves a complete audit record: challenge on a bare request, deny on
// a garbage Authorization header, deny on an unknown principal with no
// chain (prover miss), and deny on a revoked chain.
func TestGatewayAuditDenyAndChallengePaths(t *testing.T) {
	w := newTracedMesh(t)
	url := w.gwHTTP.URL + "/mail?owner=alice&folder=inbox"

	t.Run("challenge without auth header", func(t *testing.T) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		d := lastDecision(t, w.gwAudit)
		if d.Verdict != obs.VerdictChallenge || d.Layer != "gateway" ||
			d.Op != "GET /mail" || d.Principal == "" || d.Tag == "" ||
			d.Reason == "" || d.Trace == "" {
			t.Fatalf("incomplete challenge record: %+v", d)
		}
	})

	t.Run("deny on bad auth header", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("Authorization", "Basic dXNlcjpwYXNz")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		d := lastDecision(t, w.gwAudit)
		if d.Verdict != obs.VerdictDeny || !strings.Contains(d.Reason, "unsupported scheme") ||
			d.Principal == "" || d.Trace == "" {
			t.Fatalf("incomplete deny record: %+v", d)
		}
	})

	t.Run("deny on unknown principal", func(t *testing.T) {
		// Alice signs her request but NOTHING vouches for her: the
		// directory is empty, so the forward dies on the prover miss.
		req := w.signedRequest(t, http.MethodGet, url)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		d := lastDecision(t, w.gwAudit)
		if d.Verdict != obs.VerdictDeny || d.Principal != w.alice.String() ||
			d.Reason == "" || d.Duration < 0 || d.Trace == "" {
			t.Fatalf("incomplete deny record: %+v", d)
		}
	})

	t.Run("deny on revoked chain", func(t *testing.T) {
		grant, err := cert.Delegate(w.dbKey, w.alice, w.dbIssuer, emaildb.OwnerTag("alice"), core.Forever)
		if err != nil {
			t.Fatal(err)
		}
		gwPrin := principal.KeyOf(w.gwKey.Public())
		handoff, err := cert.Delegate(w.aliceKey, principal.QuoteOf(gwPrin, w.alice),
			w.alice, emaildb.OwnerTag("alice"), core.Forever)
		if err != nil {
			t.Fatal(err)
		}
		w.publish(t, grant)
		w.publish(t, handoff)
		// The database has already seen the grant revoked.
		crl := cert.NewRevocationList(w.dbKey, core.Until(time.Now().Add(time.Hour)), grant.Hash())
		if err := w.dbRevocations.Add(crl); err != nil {
			t.Fatal(err)
		}

		req := w.signedRequest(t, http.MethodGet, url)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("status = %d (revoked chain admitted)", resp.StatusCode)
		}
		d := lastDecision(t, w.gwAudit)
		if d.Verdict != obs.VerdictDeny || d.Principal != w.alice.String() || d.Reason == "" {
			t.Fatalf("incomplete deny record: %+v", d)
		}
		// The database's own audit trail shows the denial too.
		denied := false
		for _, dd := range w.dbAudit.Recent(20) {
			if dd.Layer == "rmi" && dd.Verdict != obs.VerdictAdmit {
				denied = true
			}
		}
		if !denied {
			t.Fatal("database audit log shows no non-admit verdict for the revoked chain")
		}
	})
}
