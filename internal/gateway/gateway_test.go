package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/local"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

// fourBoundaryWorld assembles the full section 6.3 configuration:
// HTTP client -> quoting gateway -> RMI email database.
type fourBoundaryWorld struct {
	dbKey, gwKey, aliceKey, bobKey *sfkey.PrivateKey
	dbIssuer                       principal.Principal
	gw                             *Gateway
	gwHTTP                         *httptest.Server
	dbSrv                          *rmi.Server
}

func newFourBoundaryWorld(t *testing.T, colocated bool) *fourBoundaryWorld {
	t.Helper()
	w := &fourBoundaryWorld{
		dbKey:    sfkey.FromSeed([]byte("gw-db-key")),
		gwKey:    sfkey.FromSeed([]byte("gw-gw-key")),
		aliceKey: sfkey.FromSeed([]byte("gw-alice")),
		bobKey:   sfkey.FromSeed([]byte("gw-bob")),
	}
	w.dbIssuer = principal.KeyOf(w.dbKey.Public())

	// Database server with seed messages.
	svc, err := emaildb.NewService()
	if err != nil {
		t.Fatal(err)
	}
	seed := []emaildb.Message{
		{Owner: "alice", Folder: "inbox", From: "carol", To: "alice", Subject: "hello alice", Date: time.Now()},
		{Owner: "alice", Folder: "inbox", From: "dave", To: "alice", Subject: "meeting", Date: time.Now()},
		{Owner: "bob", Folder: "inbox", From: "eve", To: "bob", Subject: "secret for bob", Date: time.Now()},
	}
	for _, m := range seed {
		var r emaildb.InsertReply
		if err := svc.Insert(emaildb.InsertArgs{Msg: m}, &r); err != nil {
			t.Fatal(err)
		}
	}
	w.dbSrv = rmi.NewServer()
	if err := emaildb.Register(w.dbSrv, svc, w.dbIssuer); err != nil {
		t.Fatal(err)
	}

	// Gateway prover and RMI connection — over a colocated local
	// channel or a secure network channel.
	gpv := NewProver(w.gwKey)
	var dbClient *rmi.Client
	if colocated {
		host := local.NewHost()
		l, err := host.Listen("emaildb", w.dbKey.Public())
		if err != nil {
			t.Fatal(err)
		}
		go w.dbSrv.Serve(l)
		chanKey := sfkey.FromSeed([]byte("gw-chan"))
		dbClient, err = rmi.Dial(local.Dialer{Host: host, Key: chanKey.Public()}, "emaildb", gpv)
		if err != nil {
			t.Fatal(err)
		}
		// Over the local channel the gateway's channel key is vouched
		// by the host; the prover must control it to delegate G ->
		// channel. Register a closure that signs with the gateway key
		// on the channel key's behalf is wrong — instead the gateway
		// uses its own key as the channel identity:
		dbClient.Close()
		dbClient, err = rmi.Dial(local.Dialer{Host: host, Key: w.gwKey.Public()}, "emaildb", gpv)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: w.dbKey})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go w.dbSrv.Serve(l)
		id, err := secure.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		gpv.AddClosure(prover.NewKeyClosure(id.Priv))
		dbClient, err = rmi.Dial(secure.Dialer{ID: id}, l.Addr().String(), gpv)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { dbClient.Close() })

	w.gw = New(w.gwKey, dbClient, w.dbIssuer, gpv)
	w.gwHTTP = httptest.NewServer(w.gw)
	t.Cleanup(w.gwHTTP.Close)
	return w
}

// clientFor builds Alice's or Bob's authorizing HTTP client: the
// database owner delegated their mailbox to their key.
func (w *fourBoundaryWorld) clientFor(t *testing.T, userKey *sfkey.PrivateKey, owner string) *httpauth.Client {
	t.Helper()
	user := principal.KeyOf(userKey.Public())
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	grant, err := cert.Delegate(w.dbKey, user, w.dbIssuer, emaildb.OwnerTag(owner), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(grant)
	return httpauth.NewClient(pv, user)
}

func TestGatewayFourBoundaries(t *testing.T) {
	w := newFourBoundaryWorld(t, false)
	alice := w.clientFor(t, w.aliceKey, "alice")

	resp, err := alice.Get(w.gwHTTP.URL + "/mail?owner=alice&folder=inbox")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	body, _ := io.ReadAll(resp.Body)
	html := string(body)
	if !strings.Contains(html, "hello alice") || !strings.Contains(html, "meeting") {
		t.Fatalf("mailbox missing messages: %s", html)
	}
	if strings.Contains(html, "secret for bob") {
		t.Fatal("gateway leaked bob's mail into alice's view")
	}
	st := w.gw.Stats()
	if st.Challenges != 1 || st.Digested != 1 || st.Forwarded != 1 {
		t.Fatalf("gateway stats = %+v", st)
	}
}

func TestGatewayCannotCrossMailboxes(t *testing.T) {
	// Alice asks the gateway for Bob's mailbox. The gateway forwards
	// faithfully, quoting Alice — and the DATABASE refuses, because
	// Alice's delegation covers only her mailbox. The gateway never
	// had to make that decision.
	w := newFourBoundaryWorld(t, false)
	alice := w.clientFor(t, w.aliceKey, "alice")
	resp, err := alice.Get(w.gwHTTP.URL + "/mail?owner=bob&folder=inbox")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("alice read bob's mailbox through the gateway")
		}
	}
	// Either the client fails to build a proof (its grant does not
	// cover bob) or the database denies; both are acceptable ends.
}

func TestGatewayServesMultipleClientsWithoutConfusion(t *testing.T) {
	// The gateway simultaneously holds delegations from Alice and
	// Bob; quoting keeps their authority separate (section 6.3.1).
	w := newFourBoundaryWorld(t, false)
	alice := w.clientFor(t, w.aliceKey, "alice")
	bob := w.clientFor(t, w.bobKey, "bob")

	ra, err := alice.Get(w.gwHTTP.URL + "/mail?owner=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Body.Close()
	rb, err := bob.Get(w.gwHTTP.URL + "/mail?owner=bob")
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Body.Close()
	ba, _ := io.ReadAll(ra.Body)
	bb, _ := io.ReadAll(rb.Body)
	if !strings.Contains(string(ba), "hello alice") {
		t.Fatal("alice's view broken")
	}
	if !strings.Contains(string(bb), "secret for bob") {
		t.Fatal("bob's view broken")
	}
	// Now that the gateway holds BOTH delegations, Alice still must
	// not reach Bob's mail: the gateway quotes Alice, and Bob's
	// grant chain does not apply.
	resp, err := alice.Get(w.gwHTTP.URL + "/mail?owner=bob")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("gateway conflated client authorities")
		}
	}
}

func TestGatewayMarkRead(t *testing.T) {
	w := newFourBoundaryWorld(t, false)
	alice := w.clientFor(t, w.aliceKey, "alice")
	req, _ := http.NewRequest(http.MethodPost, w.gwHTTP.URL+"/markread?owner=alice&id=1", nil)
	resp, err := alice.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "marked 1") {
		t.Fatalf("markread: %d %s", resp.StatusCode, b)
	}
}

func TestGatewayColocatedWithDatabase(t *testing.T) {
	// Section 6.3: "It can be colocated with the server, in which
	// case its RMI transactions automatically avoid encryption
	// overhead by using the local channels of Section 5.2."
	w := newFourBoundaryWorld(t, true)
	alice := w.clientFor(t, w.aliceKey, "alice")
	resp, err := alice.Get(w.gwHTTP.URL + "/mail?owner=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hello alice") {
		t.Fatalf("colocated gateway failed: %d %s", resp.StatusCode, body)
	}
}

func TestGatewayRejectsForgedRequestProof(t *testing.T) {
	w := newFourBoundaryWorld(t, false)
	// Send a request with an Authorization header whose request-proof
	// was signed over a different request.
	alice := w.clientFor(t, w.aliceKey, "alice")
	var captured string
	alice.HTTP = &http.Client{Transport: &capture{out: &captured}}
	resp, err := alice.Get(w.gwHTTP.URL + "/mail?owner=alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if captured == "" {
		t.Fatal("no auth captured")
	}
	req, _ := http.NewRequest(http.MethodGet, w.gwHTTP.URL+"/mail?owner=alice&folder=spoofed", nil)
	req.Header.Set("Authorization", captured)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusForbidden {
		t.Fatalf("forged request got %d", resp2.StatusCode)
	}
}

type capture struct{ out *string }

func (c *capture) RoundTrip(r *http.Request) (*http.Response, error) {
	if a := r.Header.Get("Authorization"); a != "" {
		*c.out = a
	}
	return http.DefaultTransport.RoundTrip(r)
}

func TestGatewayUnknownEndpoint(t *testing.T) {
	w := newFourBoundaryWorld(t, false)
	resp, err := http.Get(w.gwHTTP.URL + "/nope?owner=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
