// Package gateway is the quoting protocol gateway of paper section
// 6.3: an HTML-over-HTTP front end to the relational email database.
// The gateway holds no authority of its own over mailboxes. It quotes
// each client in its RMI requests, so the database server — which
// sees the full chain "gateway-channel quoting client speaks for
// database" — makes the real access-control decision. A correct
// gateway only needs to quote faithfully; it never duplicates the
// database's checks.
//
// The gateway spans all four boundaries of section 2: administrative
// domains (client and database need share no account database),
// network scale (its database link may be a secure channel or a
// colocated local channel), abstraction (it renders mailbox views
// over relational rows), and protocol (HTTP in front, RMI behind).
package gateway

import (
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/httpauth"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Gateway bridges HTTP clients to the RMI email database.
type Gateway struct {
	// Key is the gateway's own key (G).
	Key *sfkey.PrivateKey
	// DB is the RMI connection to the database server; its prover
	// must be Prover below.
	DB *rmi.Client
	// DBIssuer is the principal controlling the database (S).
	DBIssuer principal.Principal
	// Prover holds the gateway closure and digests client grants.
	Prover *prover.Prover
	// Clock for verification; nil means time.Now.
	Clock func() time.Time
	// Cache is the verified-proof cache consulted when admitting
	// clients; nil means the process-wide shared cache, so repeated
	// presentations of the same signed request chain or delegation
	// proof cost a lookup instead of signature checks.
	Cache *core.ProofCache

	// Obs, when set, records one "gateway.admit" span per request —
	// the root of a cold admit's trace tree, continued across the RMI
	// hop and the prover's directory lookups via the Sf-Trace header.
	Obs *obs.Recorder
	// Audit, when set, receives one Decision per request naming the
	// client, tag, verdict, and the cert hashes of the artifacts that
	// justified an admit.
	Audit *obs.AuditLog
	// ColdAdmit / WarmAdmit, when set, observe end-to-end admit
	// seconds: cold when the request carried a delegation proof to
	// digest or the prover went to a directory mid-request, warm when
	// admission rode cached state alone.
	ColdAdmit *obs.Histogram
	WarmAdmit *obs.Histogram

	mu    sync.Mutex
	stats Stats
}

// maxRequestBody bounds how much of a client request body the gateway
// reads for request hashing; gateway operations are small form posts,
// so 1 MiB is generous headroom rather than an invitation to balloon
// the process.
const maxRequestBody = 1 << 20

// Stats counts gateway work.
type Stats struct {
	Requests   int
	Challenges int
	Digested   int
	Forwarded  int
	Denied     int
}

// New wires a gateway around its key and database connection. The
// supplied prover must hold the gateway key's closure (use NewProver).
func New(key *sfkey.PrivateKey, db *rmi.Client, dbIssuer principal.Principal, pv *prover.Prover) *Gateway {
	return &Gateway{Key: key, DB: db, DBIssuer: dbIssuer, Prover: pv}
}

// NewProver builds the prover a gateway needs: its own key closure.
func NewProver(key *sfkey.PrivateKey) *prover.Prover {
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(key))
	return pv
}

// Stats returns a copy of the counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

func (g *Gateway) now() time.Time {
	if g.Clock != nil {
		return g.Clock()
	}
	return time.Now()
}

// dbOp describes the database call derived from an HTTP request.
type dbOp struct {
	owner  string
	folder string
	op     string // select | update
	id     int64
}

// parseOp maps URLs to database operations:
//
//	GET  /mail?owner=alice&folder=inbox   -> select
//	POST /markread?owner=alice&id=3      -> update
func parseOp(r *http.Request) (dbOp, error) {
	q := r.URL.Query()
	op := dbOp{owner: q.Get("owner"), folder: q.Get("folder")}
	if op.owner == "" {
		return op, fmt.Errorf("gateway: missing owner parameter")
	}
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/mail":
		op.op = "select"
	case r.Method == http.MethodPost && r.URL.Path == "/markread":
		op.op = "update"
		id, err := strconv.ParseInt(q.Get("id"), 10, 64)
		if err != nil {
			return op, fmt.Errorf("gateway: bad id: %w", err)
		}
		op.id = id
	default:
		return op, fmt.Errorf("gateway: no such endpoint %s %s", r.Method, r.URL.Path)
	}
	return op, nil
}

// ServeHTTP implements the gateway protocol of section 6.3.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// The revocation epoch this request is decided under is the one in
	// force when the pipeline STARTS: a CRL landing mid-request must
	// not retroactively claim the verdict was computed under it (the
	// churn soak test leans on this attribution to tell an in-flight
	// race from a genuinely stale admit).
	epoch := g.proofCache().Epoch()
	ctx := r.Context()
	var span *obs.ActiveSpan
	if g.Obs != nil {
		ctx, span = g.Obs.StartFromHeader(ctx, r.Header.Get(obs.TraceHeader), "gateway.admit")
		defer span.End()
	}
	g.mu.Lock()
	g.stats.Requests++
	g.mu.Unlock()

	op, err := parseOp(r)
	if err != nil {
		span.Fail(err)
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	minTag := emaildb.OpTag(op.owner, op.op)
	opName := r.Method + " " + r.URL.Path
	span.SetAttr("tag", minTag.String())

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		span.Fail(err)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "gateway: request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, "gateway: bad request body", http.StatusBadRequest)
		}
		return
	}
	reqPrin := httpauth.ServerRequestPrincipal(r, body)
	span.SetAttr("principal", reqPrin.String())

	auth := r.Header.Get("Authorization")
	if auth == "" {
		g.audit(epoch, obs.Decision{
			Op: opName, Principal: reqPrin.String(), Tag: minTag.String(),
			Verdict: obs.VerdictChallenge, Reason: "no authorization header",
			Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
		})
		g.challenge(w, minTag)
		return
	}

	client, hashes, cold, err := g.admit(auth, reqPrin)
	if err != nil {
		g.mu.Lock()
		g.stats.Denied++
		g.mu.Unlock()
		span.Fail(err)
		g.audit(epoch, obs.Decision{
			Op: opName, Principal: reqPrin.String(), Tag: minTag.String(),
			Verdict: obs.VerdictDeny, Reason: err.Error(),
			Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
		})
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	span.SetAttr("client", client.String())

	// Forward over RMI, quoting the client. The database, not the
	// gateway, decides whether the quoted client may touch the
	// mailbox.
	g.mu.Lock()
	g.stats.Forwarded++
	g.mu.Unlock()
	preRemote := g.Prover.Stats().RemoteQueries
	deny := func(err error) {
		g.mu.Lock()
		g.stats.Denied++
		g.mu.Unlock()
		span.Fail(err)
		g.audit(epoch, obs.Decision{
			Op: opName, Principal: client.String(), Tag: minTag.String(),
			Verdict: obs.VerdictDeny, Reason: err.Error(), CertHashes: hashes,
			Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
		})
		http.Error(w, err.Error(), http.StatusForbidden)
	}
	switch op.op {
	case "select":
		var reply emaildb.SelectReply
		err = g.DB.CallQuotingCtx(ctx, client, emaildb.ObjectName, "Select",
			emaildb.SelectArgs{Owner: op.owner, Folder: op.folder}, &reply)
		if err != nil {
			deny(err)
			return
		}
		renderMailbox(w, op.owner, reply.Msgs)
	case "update":
		var reply emaildb.MarkReadReply
		err = g.DB.CallQuotingCtx(ctx, client, emaildb.ObjectName, "MarkRead",
			emaildb.MarkReadArgs{Owner: op.owner, ID: op.id}, &reply)
		if err != nil {
			deny(err)
			return
		}
		fmt.Fprintf(w, "marked %d message(s) read\n", reply.Updated)
	}

	// Admitted end to end. Cold when the client handed over a
	// delegation to digest or the forward drove the prover to a
	// directory; warm when cached state carried the whole request.
	cold = cold || g.Prover.Stats().RemoteQueries > preRemote
	if cold {
		g.ColdAdmit.Since(start)
	} else {
		g.WarmAdmit.Since(start)
	}
	g.audit(epoch, obs.Decision{
		Op: opName, Principal: client.String(), Tag: minTag.String(),
		Verdict: obs.VerdictAdmit, CertHashes: hashes, CacheHit: !cold,
		Duration: time.Since(start).Microseconds(), Trace: span.TraceID(),
	})
}

// audit appends one decision record, stamping the layer and the
// revocation epoch the verdict was computed under (captured at the
// start of the request, before any verification ran). Nil Audit
// drops it.
func (g *Gateway) audit(epoch uint64, d obs.Decision) {
	if g.Audit == nil {
		return
	}
	d.Layer = "gateway"
	d.Epoch = epoch
	g.Audit.Append(d)
}

// challenge sends the 401 naming the database issuer S, the minimum
// tag, and the compound subject template "G quoting ?" — the
// pseudo-principal shortcut that saves a round trip to discover the
// client's identity (section 6.3).
func (g *Gateway) challenge(w http.ResponseWriter, minTag tag.Tag) {
	g.mu.Lock()
	g.stats.Challenges++
	g.mu.Unlock()
	template := principal.QuoteOf(principal.KeyOf(g.Key.Public()), principal.Pseudo{})
	w.Header().Set("WWW-Authenticate", httpauth.SchemeProof)
	w.Header().Set(httpauth.HdrServiceIssuer, string(g.DBIssuer.Sexp().Transport()))
	w.Header().Set(httpauth.HdrMinimumTag, string(minTag.Sexp().Transport()))
	w.Header().Set(httpauth.HdrSubjectTemplate, string(template.Sexp().Transport()))
	http.Error(w, "401 Unauthorized: delegate to the gateway quoting you", http.StatusUnauthorized)
}

// admit checks the two artifacts the client supplies (section 6.3):
// the signed request showing R => C, and the delegation proof showing
// (G quoting C) speaks for the database, which the gateway digests
// into its prover for the RMI invoker to use. It also returns the
// cert hashes of every leaf lemma presented (for the audit record)
// and whether the request did cold work (a delegation was digested).
func (g *Gateway) admit(auth string, reqPrin principal.Hash) (client principal.Principal, hashes []string, cold bool, err error) {
	scheme, params := httpauth.ParseAuthHeader(auth)
	if scheme != httpauth.SchemeProof {
		return nil, nil, false, fmt.Errorf("gateway: unsupported scheme %q", scheme)
	}
	rpRaw, ok := params["request-proof"]
	if !ok {
		return nil, nil, false, fmt.Errorf("gateway: missing signed request")
	}
	rp, err := core.ParseProof([]byte(rpRaw))
	if err != nil {
		return nil, nil, false, fmt.Errorf("gateway: bad request proof: %w", err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = g.now()
	ctx.Cache = g.proofCache()
	if err := rp.Verify(ctx); err != nil {
		return nil, nil, false, fmt.Errorf("gateway: request proof: %w", err)
	}
	concl := rp.Conclusion()
	if !principal.Equal(concl.Subject, reqPrin) {
		return nil, nil, false, fmt.Errorf("gateway: signed request does not match this request")
	}
	if !concl.Validity.Contains(g.now()) {
		return nil, nil, false, fmt.Errorf("gateway: signed request expired")
	}
	client = concl.Issuer
	hashes = core.LeafHashes(rp)

	if pRaw, ok := params["proof"]; ok {
		p, err := core.ParseProof([]byte(pRaw))
		if err != nil {
			return nil, nil, false, fmt.Errorf("gateway: bad delegation proof: %w", err)
		}
		if err := cert.VerifyChain(ctx, p); err != nil {
			return nil, nil, false, fmt.Errorf("gateway: delegation proof: %w", err)
		}
		g.Prover.AddProof(p)
		cold = true
		hashes = append(hashes, core.LeafHashes(p)...)
		g.mu.Lock()
		g.stats.Digested++
		g.mu.Unlock()
		// Graph hygiene is the daemon's job now: cmd/sf-gateway sweeps
		// the prover on a timer through the shared runtime, so eviction
		// keeps pace with the clock instead of the request rate (the old
		// every-256-digests heuristic idled exactly when traffic stopped
		// and expired edges lingered).
	}
	return client, hashes, cold, nil
}

// proofCache returns the verified-proof cache the gateway uses.
func (g *Gateway) proofCache() *core.ProofCache {
	if g.Cache != nil {
		return g.Cache
	}
	return core.SharedProofCache()
}

var mailboxTmpl = template.Must(template.New("mailbox").Parse(`<!DOCTYPE html>
<html><head><title>{{.Owner}}'s mail</title></head><body>
<h1>Mailbox: {{.Owner}}</h1>
<table border="1">
<tr><th>ID</th><th>From</th><th>Subject</th><th>Date</th><th>Read</th></tr>
{{range .Msgs}}<tr><td>{{.ID}}</td><td>{{.From}}</td><td>{{.Subject}}</td><td>{{.Date.Format "2006-01-02 15:04"}}</td><td>{{if .Read}}yes{{else}}no{{end}}</td></tr>
{{end}}</table>
<p>{{len .Msgs}} message(s). Rendered by the Snowflake quoting gateway.</p>
</body></html>`))

// renderMailbox builds the HTML view — the abstraction boundary: an
// email view assembled from relational rows.
func renderMailbox(w http.ResponseWriter, owner string, msgs []emaildb.Message) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	mailboxTmpl.Execute(w, struct {
		Owner string
		Msgs  []emaildb.Message
	}{Owner: owner, Msgs: msgs})
}
