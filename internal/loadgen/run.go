package loadgen

import (
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/httpauth"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// Flow names, also the benchmark keys in BENCH_8.json.
const (
	FlowCold    = "LoadgenColdAdmit"
	FlowWarm    = "LoadgenWarmAdmit"
	FlowPublish = "LoadgenPublishVisible"
	FlowRevoke  = "LoadgenRevokeRejected"
)

// Flow is one canonical flow's measurement.
type Flow struct {
	Name                string
	Count               uint64
	Errors              int
	Seconds             float64 // phase wall-clock
	ReqPerSec           float64
	P50, P95, P99, Mean float64 // seconds
}

// Result is everything one run produced: per-flow numbers, the
// discovery/cache counters that attribute them, and the correctness
// violations (empty on a healthy mesh — any entry fails CI).
type Result struct {
	Config      Config
	Fingerprint string
	Wall        time.Duration

	Flows map[string]Flow

	// Violations are end-to-end correctness failures observed while
	// the load ran: a cold or warm admit that failed, a publish that
	// never became visible at the peer, a revoked principal still
	// admitted past the deadline, or a post-revocation admit citing
	// the revoked certificate.
	Violations []string

	// Requeried counts warm-phase admits that went back to a
	// directory (classified cold by the gateway) — under churn the
	// expected cost of invalidation, and the number that attributes a
	// warm-p99 regression to discovery rather than verification.
	Requeried uint64

	ProverStats   map[string]int64
	CacheHits     int64
	CacheMisses   int64
	Epoch         uint64
	FollowerStats map[string]int64
}

type runState struct {
	cfg  Config
	g    *Graph
	m    *Mesh
	mu   sync.Mutex
	viol []string
}

func (r *runState) violate(format string, args ...any) {
	r.mu.Lock()
	r.viol = append(r.viol, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// Run builds the graph, boots the mesh, and drives the four flows.
// It is the whole harness: cmd/sf-loadgen adds only flag parsing and
// JSON emission.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := BuildGraph(cfg)
	if err != nil {
		return nil, err
	}
	m, err := StartMesh(cfg, g)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	// Runs must be comparable: start from a cold shared proof cache
	// regardless of what the embedding process did before.
	core.SharedProofCache().Reset()

	rs := &runState{cfg: cfg, g: g, m: m}
	start := time.Now()

	if err := rs.publishGraph(); err != nil {
		return nil, err
	}

	coldHist := obs.NewHistogram("sf_loadgen_cold_seconds", "")
	warmHist := obs.NewHistogram("sf_loadgen_warm_seconds", "")
	requeried := obs.NewHistogram("sf_loadgen_warm_requeried_seconds", "")
	scratch := obs.NewHistogram("sf_loadgen_scratch_seconds", "")
	pubHist := obs.NewHistogram("sf_loadgen_publish_seconds", "")
	revHist := obs.NewHistogram("sf_loadgen_revoke_seconds", "")

	m.SetAdmitHists(coldHist, scratch)
	coldWall := rs.coldFlow()

	m.SetAdmitHists(requeried, warmHist)
	warmWall := rs.warmFlow()

	m.SetAdmitHists(scratch, scratch)
	pubWall := rs.publishFlow(pubHist)
	revWall := rs.revokeFlow(revHist)

	res := &Result{
		Config:      cfg,
		Fingerprint: g.Fingerprint(),
		Wall:        time.Since(start),
		Flows:       map[string]Flow{},
		Violations:  rs.viol,
		Requeried:   requeried.Snap().Count,
	}
	res.Flows[FlowCold] = flowOf(FlowCold, coldHist.Snap(), coldWall)
	res.Flows[FlowWarm] = flowOf(FlowWarm, warmHist.Snap(), warmWall)
	res.Flows[FlowPublish] = flowOf(FlowPublish, pubHist.Snap(), pubWall)
	res.Flows[FlowRevoke] = flowOf(FlowRevoke, revHist.Snap(), revWall)

	st := m.ProverStats()
	res.ProverStats = map[string]int64{
		"traversals":       int64(st.Traversals),
		"minted":           int64(st.Minted),
		"shortcut_hits":    int64(st.ShortcutHits),
		"remote_queries":   int64(st.RemoteQueries),
		"remote_certs":     int64(st.RemoteCerts),
		"remote_rejected":  int64(st.RemoteRejected),
		"negcache_hits":    int64(st.NegCacheHits),
		"negcache_evicted": int64(st.NegCacheEvicted),
		"invalidated":      int64(st.Invalidated),
	}
	cache := core.SharedProofCache()
	res.CacheHits, res.CacheMisses, res.Epoch = cache.Hits(), cache.Misses(), cache.Epoch()
	fs := m.DB.Follower.Stats()
	res.FollowerStats = map[string]int64{
		"pulled": fs.Pulled, "rejected": fs.Rejected, "rounds": fs.Rounds,
	}
	return res, nil
}

func flowOf(name string, s obs.Snap, wall time.Duration) Flow {
	f := Flow{
		Name:    name,
		Count:   s.Count,
		Seconds: wall.Seconds(),
		P50:     s.Quantile(0.50),
		P95:     s.Quantile(0.95),
		P99:     s.Quantile(0.99),
		Mean:    s.Mean(),
	}
	if wall > 0 {
		f.ReqPerSec = float64(s.Count) / wall.Seconds()
	}
	return f
}

// publishGraph pushes every generated certificate through the wire
// publish path at each principal's home directory, then waits for
// push replication to converge the full set everywhere.
func (rs *runState) publishGraph() error {
	var wg sync.WaitGroup
	jobs := make(chan *cert.Cert)
	var failed atomic.Int64
	for w := 0; w < rs.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if err := rs.m.Dirs[rs.homeOf(c)].Client.Publish(c); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	for _, c := range rs.g.Certs {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("loadgen: %d of %d publishes failed", n, len(rs.g.Certs))
	}
	want := len(rs.g.Certs)
	//sfvet:ignore clockcheck convergence polling races live gossip goroutines, which run on the wall clock
	deadline := time.Now().Add(time.Duration(rs.cfg.RevokeRounds) * rs.cfg.GossipInterval * 4)
	for {
		converged := true
		for _, d := range rs.m.Dirs {
			if d.Store.Len() < want {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		//sfvet:ignore clockcheck convergence polling races live gossip goroutines, which run on the wall clock
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: directories did not converge to %d certs", want)
		}
		time.Sleep(rs.cfg.GossipInterval / 10)
	}
}

// homeOf maps a graph certificate to its publish directory.
func (rs *runState) homeOf(c *cert.Cert) int {
	// Deterministic spread without a lookup table: first byte of the
	// body hash. The exact placement is irrelevant to the flows (the
	// mesh replicates); it just must be stable and spread.
	return int(c.Hash()[0]) % len(rs.m.Dirs)
}

// admit drives one signed request for p through its assigned gateway
// and returns the HTTP status. The request carries only the signed
// request artifact (R ⇒ P); the delegation chain must already be —
// or become — known to the gateway's prover.
func (rs *runState) admit(p *Synthetic) (int, error) {
	gw := rs.m.Gateways[p.Gateway]
	req, err := http.NewRequest(http.MethodGet, gw.URL+"/mail?owner="+p.Owner+"&folder=inbox", nil)
	if err != nil {
		return 0, err
	}
	reqPrin, _, err := httpauth.RequestPrincipal(req)
	if err != nil {
		return 0, err
	}
	//sfvet:ignore clockcheck the minted window must satisfy the live mesh's wall-clock verifiers
	now := time.Now()
	rp, err := cert.Delegate(p.Key, reqPrin, p.Prin, emaildb.OwnerTag(p.Owner),
		core.Between(now.Add(-time.Minute), now.Add(rs.cfg.MintTTL)))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", httpauth.SchemeProof+` request-proof=`+string(rp.Sexp().Transport()))
	resp, err := gw.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// coldFlow admits every principal exactly once: each admission forces
// remote chain discovery at the gateway's prover (the grant and
// handoff are only in the directories). Shuffled so concurrent
// workers spread across gateways.
func (rs *runState) coldFlow() time.Duration {
	order := make([]int, len(rs.g.Principals))
	for i := range order {
		order[i] = i
	}
	rand.New(rand.NewSource(rs.cfg.Seed+1)).Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	start := time.Now()
	rs.forEachWorker(len(order), func(i int) {
		p := rs.g.Principals[order[i]]
		status, err := rs.admit(p)
		if err != nil {
			rs.violate("cold admit %s: %v", p.Owner, err)
		} else if status != http.StatusOK {
			rs.violate("cold admit %s: status %d", p.Owner, status)
		}
	})
	return time.Since(start)
}

// warmFlow drives the zipf schedule against warmed gateways, with
// churn workers publishing and revoking throwaway certificates in
// the background (each revocation bumps the shared proof-cache
// epoch mid-load).
func (rs *runState) warmFlow() time.Duration {
	stopChurn := rs.startChurn()
	start := time.Now()
	rs.forEachWorker(len(rs.g.Schedule), func(i int) {
		p := rs.g.Principals[rs.g.Schedule[i]]
		status, err := rs.admit(p)
		if err != nil {
			rs.violate("warm admit %s: %v", p.Owner, err)
		} else if status != http.StatusOK {
			rs.violate("warm admit %s: status %d", p.Owner, status)
		}
	})
	wall := time.Since(start)
	stopChurn()
	return wall
}

// startChurn launches the background publish/revoke workers and
// returns a join function.
func (rs *runState) startChurn() func() {
	var wg sync.WaitGroup
	churnPrin := principal.KeyOf(rs.g.ChurnKey.Public())
	for w := 0; w < rs.cfg.ChurnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rs.cfg.ChurnOps; i++ {
				subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-churn-w%d-c%d", rs.cfg.Seed, w, i))).Public())
				c, err := cert.Delegate(rs.g.ChurnKey, subj, churnPrin, emaildb.OwnerTag("churn"), rs.g.Validity)
				if err != nil {
					rs.violate("churn mint: %v", err)
					return
				}
				d := rs.m.Dirs[(w+i)%len(rs.m.Dirs)]
				if err := d.Client.Publish(c); err != nil {
					rs.violate("churn publish: %v", err)
					return
				}
				rl := cert.NewRevocationList(rs.g.ChurnKey, rs.g.Validity, c.Hash())
				peer := rs.m.Dirs[(w+i+1)%len(rs.m.Dirs)]
				if err := peer.Client.PushCRL(rl); err != nil {
					rs.violate("churn revoke: %v", err)
					return
				}
			}
		}(w)
	}
	return wg.Wait
}

// publishFlow measures publish→visible-at-peer: a fresh certificate
// is published at one directory through the wire path, then polled
// for at a DIFFERENT directory until push replication lands it.
func (rs *runState) publishFlow(hist *obs.Histogram) time.Duration {
	deadline := time.Duration(rs.cfg.RevokeRounds) * rs.cfg.GossipInterval
	churnPrin := principal.KeyOf(rs.g.ChurnKey.Public())
	start := time.Now()
	for i := 0; i < rs.cfg.PublishOps; i++ {
		subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-pub%d", rs.cfg.Seed, i))).Public())
		c, err := cert.Delegate(rs.g.ChurnKey, subj, churnPrin, emaildb.OwnerTag("pub"), rs.g.Validity)
		if err != nil {
			rs.violate("publish mint: %v", err)
			continue
		}
		src := rs.m.Dirs[i%len(rs.m.Dirs)]
		peer := rs.m.Dirs[(i+1)%len(rs.m.Dirs)]
		t0 := time.Now()
		if err := src.Client.Publish(c); err != nil {
			rs.violate("publish %d: %v", i, err)
			continue
		}
		visible := false
		for time.Since(t0) < deadline {
			got, err := peer.Client.Fetch([][]byte{c.Hash()})
			if err == nil && len(got) == 1 {
				visible = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		if !visible {
			rs.violate("publish %d: not visible at peer within %s", i, deadline)
			continue
		}
		hist.Since(t0)
	}
	return time.Since(start)
}

// revokeFlow revokes the mailbox grant of principals that are still
// warm at their gateways and measures revocation-to-rejection. The
// CRL is installed at a directory that is NOT the victim's home, so
// the measured path is the full pipeline: CRL gossip between
// directories, issuer-matched eviction, invalidation events to the
// subscribed provers, and the database domain's CRL pull. A victim
// still admitted past the deadline is a correctness violation, as is
// any later admit citing the revoked certificate (checked against
// the audit trail, which records justifying cert hashes and the
// epoch each verdict started under).
func (rs *runState) revokeFlow(hist *obs.Histogram) time.Duration {
	deadline := time.Duration(rs.cfg.RevokeRounds) * rs.cfg.GossipInterval
	start := time.Now()
	type victim struct {
		p        *Synthetic
		denyTime time.Time
	}
	var victims []victim
	for i := 0; i < rs.cfg.Revocations; i++ {
		// Victims come from the tail of the principal range: the zipf
		// schedule rarely targets them, so revoking them does not
		// perturb the warm flow of a subsequent comparison run.
		p := rs.g.Principals[len(rs.g.Principals)-1-i]
		if status, err := rs.admit(p); err != nil || status != http.StatusOK {
			rs.violate("revoke %s: pre-admit failed (status %d, err %v)", p.Owner, status, err)
			continue
		}
		org := rs.g.OrgKeys[p.Org]
		rl := cert.NewRevocationList(org, rs.g.Validity, p.Grant.Hash())
		installAt := rs.m.Dirs[(p.HomeDir+1)%len(rs.m.Dirs)]
		t0 := time.Now()
		if err := installAt.Client.PushCRL(rl); err != nil {
			rs.violate("revoke %s: CRL install: %v", p.Owner, err)
			continue
		}
		denied := false
		for time.Since(t0) < deadline {
			status, err := rs.admit(p)
			if err != nil {
				rs.violate("revoke %s: admit error %v", p.Owner, err)
				break
			}
			if status != http.StatusOK {
				denied = true
				break
			}
			time.Sleep(rs.cfg.GossipInterval / 20)
		}
		if !denied {
			rs.violate("revoke %s: still admitted %s after revocation (deadline %s)",
				p.Owner, time.Since(t0), deadline)
			continue
		}
		hist.Since(t0)
		//sfvet:ignore clockcheck revocation-propagation latency is measured against the live mesh on the wall clock
		denyTime := time.Now()
		// Once denied, the rejection must hold: re-proving is
		// impossible (the grant is evicted mesh-wide) and no cached
		// verdict may resurrect it.
		for j := 0; j < 3; j++ {
			if status, _ := rs.admit(p); status == http.StatusOK {
				rs.violate("revoke %s: re-admitted after first rejection", p.Owner)
				break
			}
		}
		victims = append(victims, victim{p: p, denyTime: denyTime})
	}

	// Audit sweep: no admit decision anywhere in the mesh may cite a
	// revoked grant after that grant's rejection was observed.
	for _, v := range victims {
		h := v.p.Grant.Sexp().Hash()
		want := hex.EncodeToString(h[:])
		for _, mg := range rs.m.Gateways {
			for _, d := range mg.Audit.Recent(0) {
				if d.Verdict != obs.VerdictAdmit || !d.Time.After(v.denyTime) {
					continue
				}
				for _, ch := range d.CertHashes {
					if ch == want {
						rs.violate("audit: gateway %d admitted %s citing revoked cert after rejection (epoch %d)",
							mg.Index, v.p.Owner, d.Epoch)
					}
				}
			}
		}
	}
	return time.Since(start)
}

// forEachWorker runs fn(i) for i in [0,n) across the configured
// worker count.
func (rs *runState) forEachWorker(n int, fn func(int)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < rs.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
