package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
)

// Mesh is the running system under test: M WAL-backed directories in
// full-mesh gossip, one email-database domain over the secure channel
// (learning CRLs through a CRLFollower, like sf-dbserver
// -crl-follow), and N gateways, each with its own prover subscribed
// to its home directory's invalidation stream. Every hop is a real
// listener on loopback; nothing is short-circuited in-process.
type Mesh struct {
	cfg   Config
	Graph *Graph

	Dirs     []*MeshDir
	Gateways []*MeshGateway
	DB       *MeshDB

	walRoot string
}

// MeshDir is one directory daemon's worth of state.
type MeshDir struct {
	Store       *certdir.Store
	Service     *certdir.Service
	Revocations *cert.RevocationStore
	Replicator  *certdir.Replicator
	Client      *certdir.Client
	URL         string

	ln  net.Listener
	srv *http.Server
}

// MeshGateway is one admission gateway and the client plumbing the
// load workers drive it through.
type MeshGateway struct {
	Index  int
	Key    *sfkey.PrivateKey
	GW     *gateway.Gateway
	Prover *prover.Prover
	Audit  *obs.AuditLog
	URL    string
	// HTTP is the keep-alive client the workers use against this
	// gateway (one per gateway so connection reuse mirrors a fronting
	// load balancer, not a new TCP dial per admit).
	HTTP *http.Client

	ln       net.Listener
	srv      *http.Server
	dbClient *rmi.Client
	sub      *prover.Subscription
}

// MeshDB is the protected email-database domain.
type MeshDB struct {
	Revocations *cert.RevocationStore
	Follower    *certdir.CRLFollower

	srv *rmi.Server
	ln  *secure.Listener
}

// StartMesh boots the world for g. Callers must Close it.
func StartMesh(cfg Config, g *Graph) (*Mesh, error) {
	m := &Mesh{cfg: cfg, Graph: g}
	ok := false
	defer func() {
		if !ok {
			m.Close()
		}
	}()

	walRoot, err := os.MkdirTemp("", "sf-loadgen-wal-")
	if err != nil {
		return nil, err
	}
	m.walRoot = walRoot

	// Directories first: WAL-backed stores, revocation endpoints,
	// full-mesh replication.
	for i := 0; i < cfg.Directories; i++ {
		dataDir, err := os.MkdirTemp(walRoot, fmt.Sprintf("dir%d-", i))
		if err != nil {
			return nil, err
		}
		st, _, err := certdir.OpenDurable(dataDir, 0, cfg.Fsync, cfg.now())
		if err != nil {
			return nil, fmt.Errorf("loadgen: directory %d: %w", i, err)
		}
		svc := certdir.NewService(st)
		svc.Revocations = cert.NewRevocationStore()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		d := &MeshDir{
			Store:       st,
			Service:     svc,
			Revocations: svc.Revocations,
			URL:         "http://" + ln.Addr().String(),
			ln:          ln,
			srv:         &http.Server{Handler: svc},
		}
		d.Client = certdir.NewClient(d.URL)
		go d.srv.Serve(ln)
		m.Dirs = append(m.Dirs, d)
	}
	for i, d := range m.Dirs {
		var peers []*certdir.Client
		for j, p := range m.Dirs {
			if j != i {
				peers = append(peers, certdir.NewClient(p.URL))
			}
		}
		if len(peers) > 0 {
			rep := certdir.NewReplicator(d.Store, peers)
			rep.Revocations = d.Revocations
			rep.Interval = cfg.GossipInterval
			rep.Start()
			d.Replicator = rep
			d.Service.Replicator = rep
		}
	}

	// Database domain: RMI email service with revocation enforced,
	// pulling CRLs from directory 0 (any directory works — CRL gossip
	// spreads every list to every directory within a round).
	svc, err := emaildb.NewService()
	if err != nil {
		return nil, err
	}
	dbSrv := rmi.NewServer()
	dbRevs := cert.NewRevocationStore()
	if err := emaildb.RegisterWithRevocation(dbSrv, svc, g.DBIssuer, dbRevs); err != nil {
		return nil, err
	}
	dbLn, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: g.DBKey})
	if err != nil {
		return nil, err
	}
	go dbSrv.Serve(dbLn)
	follower := certdir.NewCRLFollower(m.Dirs[0].Client, dbRevs)
	follower.Interval = cfg.GossipInterval
	follower.Start()
	m.DB = &MeshDB{Revocations: dbRevs, Follower: follower, srv: dbSrv, ln: dbLn}

	// Gateways: each with its own prover (gateway closure + secure
	// channel identity), its home directory as remote source and
	// invalidation stream, and its own RMI connection to the database.
	for i := 0; i < cfg.Gateways; i++ {
		key := g.GatewayKeys[i]
		home := m.Dirs[i%cfg.Directories]
		pv := gateway.NewProver(key)
		id, err := secure.NewIdentity()
		if err != nil {
			return nil, err
		}
		pv.AddClosure(prover.NewKeyClosure(id.Priv))
		pv.AddRemote(home.Client)
		// Keep negative answers short-lived relative to gossip: a
		// principal published moments ago must become provable within
		// a round, not a 30s default TTL later.
		pv.NegativeTTL = cfg.GossipInterval / 2
		sub := pv.SubscribeWait(home.Client, core.SharedProofCache(), 2*time.Second)
		dbClient, err := rmi.Dial(secure.Dialer{ID: id}, dbLn.Addr().String(), pv)
		if err != nil {
			return nil, err
		}
		gw := gateway.New(key, dbClient, g.DBIssuer, pv)
		gw.Audit = obs.NewAuditLog(cfg.WarmOps + 4*cfg.Principals + 1024)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			dbClient.Close()
			return nil, err
		}
		mg := &MeshGateway{
			Index:  i,
			Key:    key,
			GW:     gw,
			Prover: pv,
			Audit:  gw.Audit,
			URL:    "http://" + ln.Addr().String(),
			HTTP: &http.Client{Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.Concurrency + 2,
			}},
			ln:       ln,
			srv:      &http.Server{Handler: gw},
			dbClient: dbClient,
			sub:      sub,
		}
		go mg.srv.Serve(ln)
		m.Gateways = append(m.Gateways, mg)
	}
	ok = true
	return m, nil
}

// SetAdmitHists points every gateway's cold/warm histograms at the
// given pair. Call only between phases, with no requests in flight:
// the fields are read by request handlers without locks.
func (m *Mesh) SetAdmitHists(cold, warm *obs.Histogram) {
	for _, mg := range m.Gateways {
		mg.GW.ColdAdmit = cold
		mg.GW.WarmAdmit = warm
	}
}

// ProverStats sums discovery counters across all gateway provers.
func (m *Mesh) ProverStats() prover.Stats {
	var out prover.Stats
	for _, mg := range m.Gateways {
		st := mg.Prover.Stats()
		out.Traversals += st.Traversals
		out.Minted += st.Minted
		out.Swept += st.Swept
		out.SweptVerdicts += st.SweptVerdicts
		out.ShortcutHits += st.ShortcutHits
		out.RemoteQueries += st.RemoteQueries
		out.RemoteCerts += st.RemoteCerts
		out.RemoteRejected += st.RemoteRejected
		out.NegCacheHits += st.NegCacheHits
		out.NegCacheEvicted += st.NegCacheEvicted
		out.Invalidated += st.Invalidated
	}
	return out
}

// Close tears the world down in reverse dependency order and removes
// the WAL scratch space.
func (m *Mesh) Close() {
	for _, mg := range m.Gateways {
		if mg.sub != nil {
			mg.sub.Stop()
		}
		if mg.srv != nil {
			mg.srv.Close()
		}
		if mg.dbClient != nil {
			mg.dbClient.Close()
		}
		if mg.HTTP != nil {
			mg.HTTP.CloseIdleConnections()
		}
	}
	if m.DB != nil {
		if m.DB.Follower != nil {
			m.DB.Follower.Stop()
		}
		if m.DB.ln != nil {
			m.DB.ln.Close()
		}
	}
	for _, d := range m.Dirs {
		if d.Replicator != nil {
			d.Replicator.Stop()
		}
		if d.srv != nil {
			d.srv.Close()
		}
		d.Store.CloseWAL()
	}
	if m.walRoot != "" {
		os.RemoveAll(m.walRoot)
	}
}
