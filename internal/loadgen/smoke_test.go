package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestRunSmokeMesh drives a shrunken smoke profile end to end — real
// listeners, WAL-backed directories, gossip, CRL follower — and
// asserts the harness's own contract: zero correctness violations,
// every flow measured, and a BENCH_8-schema report that round-trips.
// This is the test CI's loadgen-smoke job leans on; the full smoke
// profile runs as the sf-loadgen binary in the same job.
func TestRunSmokeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full mesh")
	}
	cfg := Smoke()
	cfg.Principals = 8
	cfg.Orgs = 2
	cfg.WarmOps = 60
	cfg.PublishOps = 3
	cfg.Revocations = 2
	cfg.Concurrency = 4
	cfg.ChurnWorkers = 1
	cfg.ChurnOps = 3
	cfg.GossipInterval = 100 * time.Millisecond

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("correctness violations:\n%s", res.Summary())
	}
	for _, name := range []string{FlowCold, FlowWarm, FlowPublish, FlowRevoke} {
		f, ok := res.Flows[name]
		if !ok || f.Count == 0 {
			t.Fatalf("flow %s not measured (count=%d)", name, f.Count)
		}
		if f.ReqPerSec <= 0 || f.P50 <= 0 || f.P99 < f.P50 {
			t.Fatalf("flow %s has implausible numbers: %+v", name, f)
		}
	}
	if res.Fingerprint == "" {
		t.Fatal("no graph fingerprint")
	}
	if res.ProverStats["remote_queries"] == 0 {
		t.Fatal("cold flow issued no directory queries — discovery was short-circuited")
	}
	if res.FollowerStats["pulled"] == 0 {
		t.Fatal("database domain pulled no CRLs; revoke flow cannot have exercised the full pipeline")
	}

	// The emitted report must parse back under the shared trajectory
	// schema with all four flows present.
	out := filepath.Join(t.TempDir(), "BENCH_8.json")
	if err := res.ToBench(8).WriteFile(out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rep.Schema != bench.Schema || rep.PR != 8 {
		t.Fatalf("schema/pr = %q/%d", rep.Schema, rep.PR)
	}
	for _, name := range []string{FlowCold, FlowWarm, FlowPublish, FlowRevoke} {
		e, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("report missing %s", name)
		}
		if e.ReqPerSec <= 0 || e.P99Ns <= 0 {
			t.Fatalf("report entry %s empty: %+v", name, e)
		}
	}
	if rep.Counters["violations"] != 0 {
		t.Fatalf("violations counter = %v", rep.Counters["violations"])
	}
}
