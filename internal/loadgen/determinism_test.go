package loadgen

import (
	"testing"
	"time"
)

// TestGraphDeterminism pins the property trajectory comparisons rest
// on: the generated world is a pure function of (seed, now). Keys
// come from seeded derivation, ed25519 signing is deterministic, and
// the zipf streams are driven by a seeded source, so two builds with
// the same inputs must be byte-identical — certificates AND request
// schedule — while a different seed must diverge.
func TestGraphDeterminism(t *testing.T) {
	cfg := Smoke()
	cfg.Now = time.Unix(1_700_000_000, 0)

	g1, err := BuildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := g1.Fingerprint(), g2.Fingerprint(); f1 != f2 {
		t.Fatalf("same seed diverged:\n  %s\n  %s", f1, f2)
	}

	// Byte identity, not just hash identity, for the parts the
	// fingerprint summarizes.
	if len(g1.Certs) != len(g2.Certs) {
		t.Fatalf("cert counts differ: %d vs %d", len(g1.Certs), len(g2.Certs))
	}
	for i := range g1.Certs {
		if string(g1.Certs[i].Sexp().Canonical()) != string(g2.Certs[i].Sexp().Canonical()) {
			t.Fatalf("cert %d bytes differ between identical builds", i)
		}
	}
	if len(g1.Schedule) != len(g2.Schedule) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(g1.Schedule), len(g2.Schedule))
	}
	for i := range g1.Schedule {
		if g1.Schedule[i] != g2.Schedule[i] {
			t.Fatalf("schedule[%d] differs: %d vs %d", i, g1.Schedule[i], g2.Schedule[i])
		}
	}

	cfg.Seed = cfg.Seed + 1
	g3, err := BuildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() == g3.Fingerprint() {
		t.Fatal("different seeds produced identical graphs")
	}

	// A different clock shifts validity windows and therefore bytes:
	// runs are only comparable when Now is pinned, which is why the
	// fingerprint is reported alongside the numbers.
	cfg.Seed = Smoke().Seed
	cfg.Now = cfg.Now.Add(time.Hour)
	g4, err := BuildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint() == g4.Fingerprint() {
		t.Fatal("different clocks produced identical graphs")
	}
}
