package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// The directory-scale profile measures the planet-scale directory
// claims directly, without the mesh around them: at each population
// size it records (a) the digest bytes a single-certificate diff
// costs under Merkle anti-entropy vs the flat partition scheme, (b)
// how many gossip rounds a cold peer needs to converge, and (c) the
// wall-clock ratio between snapshot bootstrap and gossip-only cold
// sync. The numbers ship as BENCH_9.json, the third trajectory file
// next to BENCH_7 (micro) and BENCH_8 (mesh flows).

// DirScaleConfig shapes one directory-scale run.
type DirScaleConfig struct {
	// Sizes are the directory populations to profile, in order.
	Sizes []int
	// Seed drives the synthetic corpus keys.
	Seed int64
	// Now anchors certificate validity; required (the CLI passes the
	// wall clock, tests pass a fixture).
	Now time.Time
	// RTT is the simulated one-way network delay added to every
	// directory request. Cold-sync cost is dominated by serial fetch
	// round trips, which loopback hides; the profile is about
	// planet-scale meshes, so the recorded shape injects a WAN-class
	// delay (and reports it) rather than pretending peers share a
	// kernel. Zero means raw loopback.
	RTT time.Duration
	// PR is stamped into the report.
	PR int
}

// DirScaleDefault is the recorded shape: three decades of directory
// population.
func DirScaleDefault() DirScaleConfig {
	return DirScaleConfig{
		Sizes: []int{1_000, 10_000, 100_000},
		Seed:  1,
		RTT:   50 * time.Millisecond,
		PR:    9,
	}
}

// DirSizeResult is the measurement at one population size.
type DirSizeResult struct {
	Size             int
	MerkleDiffBytes  int64         // digest bytes, one-cert diff, Merkle descent
	FlatDiffBytes    int64         // digest bytes, same diff, flat partitions
	Descents         int64         // node round trips the descent took
	GossipSyncRounds int           // Converge calls for a cold peer to match
	GossipSync       time.Duration // wall clock of gossip-only cold sync
	Bootstrap        time.Duration // wall clock of snapshot bootstrap
}

// DirScaleResult is the full run.
type DirScaleResult struct {
	Config  DirScaleConfig
	PerSize []DirSizeResult
}

// dirScaleCorpus signs n certificates in parallel from a handful of
// issuers (signing 100k serially would dominate the run).
func dirScaleCorpus(seed string, n int, now time.Time) ([]*cert.Cert, error) {
	privs := make([]*sfkey.PrivateKey, 8)
	for i := range privs {
		privs[i] = sfkey.FromSeed([]byte(fmt.Sprintf("%s-iss-%d", seed, i)))
	}
	subj := principal.KeyOf(sfkey.FromSeed([]byte(seed + "-subj")).Public())
	v := core.Until(now.Add(24 * time.Hour))
	out := make([]*cert.Cert, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				priv := privs[i%len(privs)]
				c, err := cert.Delegate(priv, subj, principal.KeyOf(priv.Public()),
					tag.Literal(fmt.Sprintf("%s-r%d", seed, i)), v)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = c
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, firstErr
}

// dirScalePublish indexes the corpus in parallel.
func dirScalePublish(st *certdir.Store, certs []*cert.Cert, now time.Time) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(certs) + workers - 1) / workers
	for lo := 0; lo < len(certs); lo += chunk {
		hi := min(lo+chunk, len(certs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for _, c := range certs[lo:hi] {
				if _, err := st.Publish(c, now); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// DirScale runs the directory-scale profile.
func DirScale(cfg DirScaleConfig) (*DirScaleResult, error) {
	if len(cfg.Sizes) == 0 || cfg.Now.IsZero() {
		return nil, fmt.Errorf("loadgen: dirscale needs sizes and an anchored clock")
	}
	res := &DirScaleResult{Config: cfg}
	for _, n := range cfg.Sizes {
		sr, err := dirScaleOne(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("loadgen: dirscale n=%d: %w", n, err)
		}
		res.PerSize = append(res.PerSize, sr)
	}
	return res, nil
}

func dirScaleOne(cfg DirScaleConfig, n int) (DirSizeResult, error) {
	sr := DirSizeResult{Size: n}
	now := cfg.Now
	seed := fmt.Sprintf("dirscale-%d-%d", cfg.Seed, n)
	corpus, err := dirScaleCorpus(seed, n+2, now)
	if err != nil {
		return sr, err
	}
	extras, corpus := corpus[n:], corpus[:n]

	// The serving directory, on a real listener: every measurement
	// below pays genuine HTTP round trips.
	src := certdir.NewStore(0)
	if err := dirScalePublish(src, corpus, now); err != nil {
		return sr, err
	}
	// Replication and the service both judge validity by their own
	// clocks; anchor everything to the run's clock so fixtures work.
	clock := func() time.Time { return now }

	svc := certdir.NewService(src)
	svc.Clock = clock
	// Serve the snapshot as the daemon does: a pre-written artifact
	// (-snapshot-every), not a per-request live encode.
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("%s.snap", seed))
	if err := certdir.WriteSnapshotFile(snapPath, src, nil, now); err != nil {
		return sr, err
	}
	defer os.Remove(snapPath)
	svc.SnapshotPath = snapPath
	var handler http.Handler = svc
	if cfg.RTT > 0 {
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(cfg.RTT)
			svc.ServeHTTP(w, r)
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return sr, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	// (b) Gossip-only cold sync: rounds and wall clock for an empty
	// peer to converge by anti-entropy alone.
	gossipStore := certdir.NewStore(0)
	repG := certdir.NewReplicator(gossipStore, []*certdir.Client{certdir.NewClient(url)})
	repG.Clock = clock
	gossipStart := time.Now()
	for gossipStore.Len() < src.Len() {
		if sr.GossipSyncRounds >= 64 {
			return sr, fmt.Errorf("gossip-only sync did not converge in %d rounds", sr.GossipSyncRounds)
		}
		if _, err := repG.Converge(); err != nil {
			return sr, err
		}
		sr.GossipSyncRounds++
	}
	sr.GossipSync = time.Since(gossipStart)

	// (c) Snapshot bootstrap of another empty peer: one bulk transfer.
	bootStore := certdir.NewStore(0)
	repB := certdir.NewReplicator(bootStore, []*certdir.Client{certdir.NewClient(url)})
	repB.Clock = clock
	bootStart := time.Now()
	if _, err := repB.BootstrapFromPeer(context.Background()); err != nil {
		return sr, err
	}
	sr.Bootstrap = time.Since(bootStart)
	if bootStore.Len() != src.Len() {
		return sr, fmt.Errorf("bootstrap landed at %d certs, directory holds %d", bootStore.Len(), src.Len())
	}

	// (a) One-cert diff against the converged gossip peer: Merkle
	// descent first, then the same diff under the flat scheme. The
	// replicator's counters are cumulative, so read them before the
	// diff round to isolate its cost from the cold sync's.
	preDiff := repG.Stats()
	if _, err := src.Publish(extras[0], now); err != nil {
		return sr, err
	}
	if pulled, err := repG.Converge(); err != nil || pulled != 1 {
		return sr, fmt.Errorf("merkle diff round pulled %d (err %v), want 1", pulled, err)
	}
	ms := repG.Stats()
	sr.MerkleDiffBytes = ms.DigestBytes - preDiff.DigestBytes
	sr.Descents = ms.Descents - preDiff.Descents

	if _, err := src.Publish(extras[1], now); err != nil {
		return sr, err
	}
	repF := certdir.NewReplicator(gossipStore, []*certdir.Client{certdir.NewClient(url)})
	repF.Clock = clock
	repF.DisableMerkle = true
	if pulled, err := repF.Converge(); err != nil || pulled != 1 {
		return sr, fmt.Errorf("flat diff round pulled %d (err %v), want 1", pulled, err)
	}
	sr.FlatDiffBytes = repF.Stats().DigestBytes
	return sr, nil
}

// ToBench renders the run as a trajectory report.
func (r *DirScaleResult) ToBench() *bench.Report {
	rep := bench.NewReport(r.Config.PR)
	rep.Counters = map[string]float64{
		"dirscale_rtt_ms": float64(r.Config.RTT.Milliseconds()),
	}
	for _, sr := range r.PerSize {
		boot := bench.Entry{NsPerOp: float64(sr.Bootstrap.Nanoseconds()), Count: int64(sr.Size)}
		boot.SetBaseline(bench.Baseline{NsPerOp: float64(sr.GossipSync.Nanoseconds())})
		rep.Benchmarks[fmt.Sprintf("dir_bootstrap_snapshot_%d", sr.Size)] = boot
		rep.Benchmarks[fmt.Sprintf("dir_coldsync_gossip_%d", sr.Size)] = bench.Entry{
			NsPerOp: float64(sr.GossipSync.Nanoseconds()), Count: int64(sr.Size),
		}
		p := func(k string, v float64) { rep.Counters[fmt.Sprintf(k, sr.Size)] = v }
		p("dir_diff_digest_bytes_merkle_%d", float64(sr.MerkleDiffBytes))
		p("dir_diff_digest_bytes_flat_%d", float64(sr.FlatDiffBytes))
		if sr.FlatDiffBytes > 0 {
			p("dir_diff_digest_ratio_%d", float64(sr.MerkleDiffBytes)/float64(sr.FlatDiffBytes))
		}
		p("dir_diff_descents_%d", float64(sr.Descents))
		p("dir_coldsync_rounds_%d", float64(sr.GossipSyncRounds))
		if sr.Bootstrap > 0 {
			p("dir_bootstrap_speedup_%d", float64(sr.GossipSync)/float64(sr.Bootstrap))
		}
	}
	return rep
}

// Summary renders the run for terminals.
func (r *DirScaleResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "directory-scale profile (seed %d, simulated RTT %s)\n",
		r.Config.Seed, r.Config.RTT)
	for _, sr := range r.PerSize {
		ratio := 0.0
		if sr.FlatDiffBytes > 0 {
			ratio = float64(sr.MerkleDiffBytes) / float64(sr.FlatDiffBytes)
		}
		speedup := 0.0
		if sr.Bootstrap > 0 {
			speedup = float64(sr.GossipSync) / float64(sr.Bootstrap)
		}
		fmt.Fprintf(&b, "  n=%-7d one-cert diff: merkle %dB vs flat %dB (%.1f%%, %d descents)\n",
			sr.Size, sr.MerkleDiffBytes, sr.FlatDiffBytes, 100*ratio, sr.Descents)
		fmt.Fprintf(&b, "            cold peer: gossip-only %s in %d round(s); snapshot bootstrap %s (%.1fx)\n",
			sr.GossipSync.Round(time.Millisecond), sr.GossipSyncRounds,
			sr.Bootstrap.Round(time.Millisecond), speedup)
	}
	return b.String()
}
