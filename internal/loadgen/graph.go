package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/emaildb"
	"repro/internal/principal"
	"repro/internal/sfkey"
)

// Graph is the synthetic delegation world one run drives: the
// database domain, its organization-level issuers, and K principals
// whose mailbox authority chains db → org → principal, with each
// principal additionally handing its gateway a quoting delegation
// (the section 6.3 shape: "G quoting C speaks for C"). Everything is
// a pure function of (Config.Seed, Config.Now): keys come from seeded
// derivation and ed25519 signing is deterministic, so two builds with
// the same seed are byte-identical — the property the determinism
// test pins and the reason trajectory runs are diffable.
type Graph struct {
	DBKey    *sfkey.PrivateKey
	DBIssuer principal.Principal

	GatewayKeys []*sfkey.PrivateKey
	OrgKeys     []*sfkey.PrivateKey
	OrgRoots    []*cert.Cert // db → org, tag ("db"), one per org
	// ChurnKey signs the throwaway certificates and CRLs the churn
	// workers cycle; it is deliberately NOT part of any principal's
	// chain, so churn invalidates caches without revoking real load.
	ChurnKey *sfkey.PrivateKey

	Principals []*Synthetic

	// Certs is every certificate the mesh must hold before load
	// starts, in deterministic order: org roots, then per-principal
	// grant and handoff.
	Certs []*cert.Cert

	// Schedule is the warm-flow target sequence: Schedule[i] is the
	// principal index the i-th warm request admits as, zipf-skewed so
	// a head of hot principals dominates — the shape proof caches are
	// for.
	Schedule []int

	// Validity is the window every generated certificate carries.
	Validity core.Validity
}

// Synthetic is one generated principal and its delegation chain.
type Synthetic struct {
	Index int
	Key   *sfkey.PrivateKey
	Prin  principal.Principal
	Owner string // mailbox this principal owns
	Org   int    // issuing organization
	// Gateway and HomeDir pin the principal to an admission gateway
	// and the directory its certificates are published at, spreading
	// load round-robin while keeping cross-directory discovery in
	// play (a gateway's home directory usually is not the publish
	// point of the principals it admits).
	Gateway int
	HomeDir int
	// Grant is org → principal over OwnerTag(Owner); Handoff is
	// principal → (gateway quoting principal) over the same tag.
	// Revoking Grant severs the principal's authority entirely.
	Grant   *cert.Cert
	Handoff *cert.Cert
}

// BuildGraph generates the delegation world for cfg.
func BuildGraph(cfg Config) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	now := cfg.now()
	// One generous window for the whole run: load measurement should
	// never race certificate expiry.
	v := core.Between(now.Add(-time.Minute), now.Add(12*time.Hour))
	rng := rand.New(rand.NewSource(cfg.Seed))

	g := &Graph{
		DBKey:    sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-db", cfg.Seed))),
		ChurnKey: sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-churn", cfg.Seed))),
		Validity: v,
	}
	g.DBIssuer = principal.KeyOf(g.DBKey.Public())

	for i := 0; i < cfg.Gateways; i++ {
		g.GatewayKeys = append(g.GatewayKeys, sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-gw%d", cfg.Seed, i))))
	}

	// Organization layer: the database delegates all-mailbox authority
	// to each org, which then narrows per member. Orgs are the issuer
	// fan-out knob: member counts are zipf-skewed below.
	for i := 0; i < cfg.Orgs; i++ {
		k := sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-org%d", cfg.Seed, i)))
		g.OrgKeys = append(g.OrgKeys, k)
		root, err := cert.Delegate(g.DBKey, principal.KeyOf(k.Public()), g.DBIssuer, emaildb.AllTag(), v)
		if err != nil {
			return nil, fmt.Errorf("loadgen: org root: %w", err)
		}
		g.OrgRoots = append(g.OrgRoots, root)
		g.Certs = append(g.Certs, root)
	}

	orgZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Orgs-1))
	for i := 0; i < cfg.Principals; i++ {
		key := sfkey.FromSeed([]byte(fmt.Sprintf("loadgen-%d-p%d", cfg.Seed, i)))
		p := &Synthetic{
			Index:   i,
			Key:     key,
			Prin:    principal.KeyOf(key.Public()),
			Owner:   fmt.Sprintf("u%05d", i),
			Org:     int(orgZipf.Uint64()),
			Gateway: i % cfg.Gateways,
			HomeDir: i % cfg.Directories,
		}
		t := emaildb.OwnerTag(p.Owner)
		grant, err := cert.Delegate(g.OrgKeys[p.Org], p.Prin, principal.KeyOf(g.OrgKeys[p.Org].Public()), t, v)
		if err != nil {
			return nil, fmt.Errorf("loadgen: grant: %w", err)
		}
		gwPrin := principal.KeyOf(g.GatewayKeys[p.Gateway].Public())
		handoff, err := cert.Delegate(key, principal.QuoteOf(gwPrin, p.Prin), p.Prin, t, v)
		if err != nil {
			return nil, fmt.Errorf("loadgen: handoff: %w", err)
		}
		p.Grant, p.Handoff = grant, handoff
		g.Principals = append(g.Principals, p)
		g.Certs = append(g.Certs, grant, handoff)
	}

	reqZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Principals-1))
	g.Schedule = make([]int, cfg.WarmOps)
	for i := range g.Schedule {
		g.Schedule[i] = int(reqZipf.Uint64())
	}
	return g, nil
}

// Fingerprint hashes every generated certificate's canonical bytes
// and the request schedule — the byte identity the determinism test
// compares.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	for _, c := range g.Certs {
		h.Write(c.Sexp().Canonical())
	}
	var buf [8]byte
	for _, i := range g.Schedule {
		binary.LittleEndian.PutUint64(buf[:], uint64(i))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
