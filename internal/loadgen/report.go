package loadgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
)

// smokeBaselines are the PR 8 first-measurement numbers for the smoke
// profile (2 gateways, 2 directories, 24 principals, single loopback
// host — the CI shape), the median of repeated runs on an 8-core
// linux/amd64 box. They exist so every later PR's BENCH_8-style
// emission carries a speedup ratio against this PR, the same contract
// BENCH_7.json established for the micro-benchmarks. Only smoke runs
// are compared: other profiles measure other shapes. The revoke flow's
// latency is dominated by the 150ms gossip interval, not compute — its
// baseline guards the pipeline (CRL gossip, eviction, invalidation,
// follower pull), not a code path's speed.
//
// Latency baselines are in nanoseconds (the JSON unit); the histogram
// works in seconds and ToBench converts.
var smokeBaselines = map[string]bench.Baseline{
	FlowCold:    {ReqPerSec: 229, P50Ns: 31_200_000, P95Ns: 48_100_000, P99Ns: 49_600_000},
	FlowWarm:    {ReqPerSec: 1020, P50Ns: 4_200_000, P95Ns: 25_000_000, P99Ns: 47_000_000},
	FlowPublish: {ReqPerSec: 846, P50Ns: 450_000, P95Ns: 1_900_000, P99Ns: 2_400_000},
	FlowRevoke:  {ReqPerSec: 6.8, P50Ns: 175_000_000, P95Ns: 242_500_000, P99Ns: 248_500_000},
}

// ToBench converts a run into the shared per-PR trajectory schema.
// Baselines attach only for the smoke profile (the recorded shape).
func (r *Result) ToBench(pr int) *bench.Report {
	rep := bench.NewReport(pr)
	for name, f := range r.Flows {
		e := bench.Entry{
			ReqPerSec: f.ReqPerSec,
			Count:     int64(f.Count),
			P50Ns:     f.P50 * 1e9,
			P95Ns:     f.P95 * 1e9,
			P99Ns:     f.P99 * 1e9,
		}
		if f.Count > 0 {
			e.NsPerOp = f.Mean * 1e9
		}
		if r.Config.Profile == "smoke" {
			if b, ok := smokeBaselines[name]; ok {
				e.SetBaseline(b)
			}
		}
		rep.Benchmarks[name] = e
	}
	rep.Counters = map[string]float64{
		"violations":        float64(len(r.Violations)),
		"warm_requeried":    float64(r.Requeried),
		"proofcache_hits":   float64(r.CacheHits),
		"proofcache_misses": float64(r.CacheMisses),
		"proofcache_epoch":  float64(r.Epoch),
		"crl_follow_pulled": float64(r.FollowerStats["pulled"]),
	}
	for k, v := range r.ProverStats {
		rep.Counters["prover_"+k] = float64(v)
	}
	return rep
}

// Summary renders the run for a terminal: one line per flow, then
// the attribution counters, then any violations.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile=%s gateways=%d directories=%d principals=%d orgs=%d seed=%d wall=%s\n",
		r.Config.Profile, r.Config.Gateways, r.Config.Directories,
		r.Config.Principals, r.Config.Orgs, r.Config.Seed, r.Wall.Round(1e6))
	fmt.Fprintf(&b, "graph fingerprint %s\n\n", r.Fingerprint[:16])
	order := []string{FlowCold, FlowWarm, FlowPublish, FlowRevoke}
	fmt.Fprintf(&b, "%-24s %8s %10s %10s %10s %10s\n", "flow", "count", "req/sec", "p50", "p95", "p99")
	for _, name := range order {
		f := r.Flows[name]
		fmt.Fprintf(&b, "%-24s %8d %10.1f %10s %10s %10s\n",
			f.Name, f.Count, f.ReqPerSec, fmtSec(f.P50), fmtSec(f.P95), fmtSec(f.P99))
	}
	fmt.Fprintf(&b, "\ndiscovery: remote_queries=%d remote_certs=%d remote_rejected=%d negcache_hits=%d negcache_evicted=%d invalidated=%d\n",
		r.ProverStats["remote_queries"], r.ProverStats["remote_certs"],
		r.ProverStats["remote_rejected"], r.ProverStats["negcache_hits"],
		r.ProverStats["negcache_evicted"], r.ProverStats["invalidated"])
	fmt.Fprintf(&b, "proof cache: hits=%d misses=%d epoch=%d; warm requeried=%d; crls pulled by db=%d\n",
		r.CacheHits, r.CacheMisses, r.Epoch, r.Requeried, r.FollowerStats["pulled"])
	if len(r.Violations) == 0 {
		b.WriteString("correctness: OK (0 violations)\n")
	} else {
		fmt.Fprintf(&b, "correctness: %d VIOLATIONS\n", len(r.Violations))
		v := append([]string(nil), r.Violations...)
		sort.Strings(v)
		for _, s := range v {
			fmt.Fprintf(&b, "  - %s\n", s)
		}
	}
	return b.String()
}

func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
