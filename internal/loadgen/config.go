// Package loadgen drives a Snowflake mesh the way users would hit
// it: N gateways, M gossip-peered WAL-backed certificate directories,
// one protected email-database domain, and K synthetic principals
// with a seeded heavy-tailed delegation graph. It measures the four
// canonical flows — cold proof discovery, warm cached admit,
// publish→visible-at-peer, revoke→rejected — under configurable
// concurrency and churn, asserts end-to-end correctness while the
// load runs (a revoked principal is rejected within the configured
// gossip bound; once a revocation is observed no later admit cites
// the revoked certificate), and reports req/sec plus p50/p95/p99 per
// flow in the same JSON trajectory schema as BENCH_7.json.
//
// Everything runs in one process over real listeners (HTTP for
// gateways and directories, the secure channel for RMI), so a run is
// the full wire path of a deployed mesh minus scheduling across
// machines. cmd/sf-loadgen is the CLI; the package is also the
// engine of the churn soak test.
package loadgen

import (
	"fmt"
	"time"

	"repro/internal/certdir"
)

// Config shapes one load run. Profiles (Smoke, Standard, Soak) give
// the canonical shapes; the zero value is not runnable.
type Config struct {
	// Profile names the shape this config was derived from ("smoke",
	// "standard", "soak", or "custom"); baselines are recorded per
	// profile, so only runs of the same profile are compared.
	Profile string

	Gateways    int // N: HTTP admission gateways, each with its own prover
	Directories int // M: WAL-backed certificate directories, full-mesh gossip
	Principals  int // K: synthetic principals
	// Orgs is the number of intermediate issuers the database
	// delegates to; principals are assigned to orgs zipf-heavy, so a
	// few orgs carry most of the fan-out (the "issuer fan-out" knob).
	Orgs int

	Seed int64 // drives keys, graph shape, and the request schedule
	// ZipfS is the zipf exponent (>1) for both org assignment and
	// warm-request targeting; larger = heavier head.
	ZipfS float64

	WarmOps     int // warm-flow admits, zipf-targeted across principals
	PublishOps  int // publish→visible-at-peer probes
	Revocations int // revoke→rejected probes (distinct principals)
	Concurrency int // client workers driving cold/warm phases

	// ChurnWorkers background workers publish and revoke throwaway
	// certificates (under a dedicated churn issuer) while the warm
	// phase runs; each performs ChurnOps publish+revoke cycles. Every
	// revocation bumps the shared proof-cache epoch, so churn
	// continuously invalidates cached verdicts under the admit load —
	// the adversarial shape the correctness assertions run against.
	ChurnWorkers int
	ChurnOps     int

	// GossipInterval is the directory anti-entropy/CRL gossip period
	// and the database's CRL pull interval. The revoke→rejected
	// deadline is RevokeRounds of it.
	GossipInterval time.Duration
	// RevokeRounds bounds how many gossip intervals a revocation may
	// take to bite end to end before the run reports a correctness
	// violation. The pipeline needs one round (CRL gossip to the
	// database's pull point) plus one pull, so 3 is already generous;
	// it exists as a knob for slow CI machines.
	RevokeRounds int

	// Fsync is the directories' WAL sync policy; smoke keeps
	// SyncNever so CI measures the protocol, not the CI disk.
	Fsync certdir.SyncPolicy

	// MintTTL bounds each request proof's validity.
	MintTTL time.Duration

	// Now anchors certificate validity windows and, being part of the
	// signed bodies, makes the generated graph byte-identical across
	// runs with the same seed. Zero means time.Now() (reproducible
	// shape, not bytes).
	Now time.Time

	// Out, when non-empty, is where cmd/sf-loadgen writes the
	// BENCH_8.json report.
	Out string
}

// Smoke is the CI shape: a 2-gateway/2-directory mesh small enough
// to finish in seconds under -race yet exercising every flow,
// including churn.
func Smoke() Config {
	return Config{
		Profile:        "smoke",
		Gateways:       2,
		Directories:    2,
		Principals:     24,
		Orgs:           4,
		Seed:           1,
		ZipfS:          1.3,
		WarmOps:        300,
		PublishOps:     8,
		Revocations:    3,
		Concurrency:    8,
		ChurnWorkers:   2,
		ChurnOps:       6,
		GossipInterval: 150 * time.Millisecond,
		RevokeRounds:   20,
		Fsync:          certdir.SyncNever,
		MintTTL:        time.Hour,
	}
}

// Standard is the default interactive shape: enough principals that
// the heavy tail shows and the proof cache matters.
func Standard() Config {
	c := Smoke()
	c.Profile = "standard"
	c.Gateways = 4
	c.Directories = 3
	c.Principals = 400
	c.Orgs = 24
	c.WarmOps = 5000
	c.PublishOps = 32
	c.Revocations = 8
	c.Concurrency = 32
	c.ChurnWorkers = 4
	c.ChurnOps = 24
	c.GossipInterval = 250 * time.Millisecond
	return c
}

// Soak is the stress shape: sustained churn against a larger
// principal population, for chasing races and staleness rather than
// for comparable numbers.
func Soak() Config {
	c := Standard()
	c.Profile = "soak"
	c.Principals = 2000
	c.Orgs = 64
	c.WarmOps = 20000
	c.PublishOps = 64
	c.Revocations = 16
	c.ChurnWorkers = 8
	c.ChurnOps = 100
	return c
}

// Profiles maps profile names to their configs.
func Profiles() map[string]func() Config {
	return map[string]func() Config{
		"smoke":    Smoke,
		"standard": Standard,
		"soak":     Soak,
	}
}

// Validate rejects shapes the harness cannot run.
func (c *Config) Validate() error {
	switch {
	case c.Gateways < 1:
		return fmt.Errorf("loadgen: need at least 1 gateway")
	case c.Directories < 1:
		return fmt.Errorf("loadgen: need at least 1 directory")
	case c.Principals < 1:
		return fmt.Errorf("loadgen: need at least 1 principal")
	case c.Orgs < 1 || c.Orgs > c.Principals:
		return fmt.Errorf("loadgen: orgs must be in [1, principals]")
	case c.ZipfS <= 1:
		return fmt.Errorf("loadgen: zipf exponent must be > 1")
	case c.Concurrency < 1:
		return fmt.Errorf("loadgen: need at least 1 worker")
	case c.Revocations > c.Principals/2:
		return fmt.Errorf("loadgen: revocations must leave at least half the principals alive")
	case c.GossipInterval <= 0:
		return fmt.Errorf("loadgen: gossip interval must be positive")
	case c.RevokeRounds < 1:
		return fmt.Errorf("loadgen: need at least 1 revoke round")
	case c.MintTTL <= 0:
		return fmt.Errorf("loadgen: mint TTL must be positive")
	}
	return nil
}

// now resolves the world clock: Config.Now when seeded, else the wall
// clock. This is the package's single sanctioned fallback — every
// other site threads the resolved value.
func (c *Config) now() time.Time {
	if !c.Now.IsZero() {
		return c.Now
	}
	//sfvet:ignore clockcheck this zero-value fallback is the Config.Now injection seam itself
	return time.Now()
}
