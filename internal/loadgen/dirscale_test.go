package loadgen

import (
	"testing"
	"time"
)

// TestDirScaleSmoke runs the directory-scale profile at a toy size and
// checks the shape of the result: the diff measurements are non-empty,
// Merkle spends fewer digest bytes than flat, both cold peers land on
// the full directory, and the report carries the expected entries.
func TestDirScaleSmoke(t *testing.T) {
	cfg := DirScaleConfig{
		Sizes: []int{300},
		Seed:  42,
		Now:   time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC),
		RTT:   time.Millisecond,
		PR:    9,
	}
	res, err := DirScale(cfg)
	if err != nil {
		t.Fatalf("DirScale: %v", err)
	}
	if len(res.PerSize) != 1 {
		t.Fatalf("got %d size results, want 1", len(res.PerSize))
	}
	sr := res.PerSize[0]
	if sr.MerkleDiffBytes <= 0 || sr.FlatDiffBytes <= 0 {
		t.Fatalf("diff byte counters not populated: merkle=%d flat=%d",
			sr.MerkleDiffBytes, sr.FlatDiffBytes)
	}
	if sr.MerkleDiffBytes >= sr.FlatDiffBytes {
		t.Errorf("merkle one-cert diff (%dB) not cheaper than flat (%dB)",
			sr.MerkleDiffBytes, sr.FlatDiffBytes)
	}
	if sr.Descents < 1 {
		t.Errorf("descents = %d, want >= 1", sr.Descents)
	}
	if sr.GossipSyncRounds < 1 || sr.GossipSync <= 0 || sr.Bootstrap <= 0 {
		t.Errorf("cold-sync measurements not populated: rounds=%d gossip=%s bootstrap=%s",
			sr.GossipSyncRounds, sr.GossipSync, sr.Bootstrap)
	}

	rep := res.ToBench()
	if rep.PR != 9 {
		t.Errorf("report PR = %d, want 9", rep.PR)
	}
	for _, name := range []string{"dir_bootstrap_snapshot_300", "dir_coldsync_gossip_300"} {
		if _, ok := rep.Benchmarks[name]; !ok {
			t.Errorf("report missing benchmark %q", name)
		}
	}
	for _, name := range []string{
		"dir_diff_digest_bytes_merkle_300",
		"dir_diff_digest_bytes_flat_300",
		"dir_diff_digest_ratio_300",
		"dir_diff_descents_300",
		"dir_coldsync_rounds_300",
		"dir_bootstrap_speedup_300",
	} {
		if _, ok := rep.Counters[name]; !ok {
			t.Errorf("report missing counter %q", name)
		}
	}
	if e := rep.Benchmarks["dir_bootstrap_snapshot_300"]; e.Baseline == nil || e.SpeedupVsBaseline == 0 {
		t.Errorf("bootstrap entry missing gossip baseline/speedup: %+v", e)
	}
}
