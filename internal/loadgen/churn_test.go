package loadgen

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestChurnSoakNoStaleAdmits runs admits concurrently with live
// publish/revoke churn on a 2-directory mesh and pins the two safety
// properties the harness asserts under load (run it with -race; CI
// does):
//
//  1. Once a principal's rejection has been observed, no gateway ever
//     admits it again — re-proving is impossible (the grant is
//     evicted mesh-wide) and no cached verdict may resurrect it.
//  2. No admit verdict crosses a revocation epoch: every admit
//     citing a since-revoked grant must have STARTED under an epoch
//     predating the post-revocation world. An admit recorded at a
//     later epoch citing the revoked certificate would mean a proof
//     cache served a verdict across the epoch bump.
//
// In-flight races are expressly tolerated: an admit that began before
// the CRL landed may legitimately complete after it. The audit
// trail's start-epoch field is what distinguishes that benign
// interleaving from a stale cache.
func TestChurnSoakNoStaleAdmits(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test boots a full mesh")
	}
	cfg := Smoke()
	cfg.Principals = 12
	cfg.Orgs = 2
	cfg.Concurrency = 4
	cfg.GossipInterval = 100 * time.Millisecond

	g, err := BuildGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := StartMesh(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	core.SharedProofCache().Reset()
	rs := &runState{cfg: cfg, g: g, m: m}
	if err := rs.publishGraph(); err != nil {
		t.Fatal(err)
	}

	hist := obs.NewHistogram("churn_soak", "")
	m.SetAdmitHists(hist, hist)

	// Background hammer: every worker admits the full principal range
	// round-robin, survivors and victims alike, while churn publishes
	// and revokes throwaway certificates (each CRL bumps the shared
	// epoch). No status assertions here — victims legitimately flip to
	// 403 mid-run; the audit sweep below is the oracle.
	const victims = 3
	stop := make(chan struct{})
	var admits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := g.Principals[i%len(g.Principals)]
				if _, err := rs.admit(p); err != nil {
					t.Errorf("admit %s: %v", p.Owner, err)
					return
				}
				admits.Add(1)
			}
		}(w)
	}
	stopChurn := rs.startChurn()

	// Revoke victims one at a time while the hammer runs, recording
	// when each rejection was first observed and the shared epoch at
	// that moment.
	type revoked struct {
		p         *Synthetic
		denyTime  time.Time
		denyEpoch uint64
	}
	deadline := time.Duration(cfg.RevokeRounds) * cfg.GossipInterval
	var dead []revoked
	for i := 0; i < victims; i++ {
		p := g.Principals[len(g.Principals)-1-i]
		org := g.OrgKeys[p.Org]
		rl := cert.NewRevocationList(org, g.Validity, p.Grant.Hash())
		// Install away from the victim's home so gossip is on the path.
		if err := m.Dirs[(p.HomeDir+1)%len(m.Dirs)].Client.PushCRL(rl); err != nil {
			t.Fatalf("push CRL for %s: %v", p.Owner, err)
		}
		t0 := time.Now()
		denied := false
		for time.Since(t0) < deadline {
			status, err := rs.admit(p)
			if err != nil {
				t.Fatalf("admit %s: %v", p.Owner, err)
			}
			if status != http.StatusOK {
				denied = true
				break
			}
			time.Sleep(cfg.GossipInterval / 20)
		}
		if !denied {
			t.Fatalf("%s still admitted %s after revocation", p.Owner, time.Since(t0))
		}
		dead = append(dead, revoked{p: p, denyTime: time.Now(), denyEpoch: core.SharedProofCache().Epoch()})
	}

	// Let one more gossip round spread the last CRL everywhere, then
	// stop the load.
	time.Sleep(2 * cfg.GossipInterval)
	close(stop)
	wg.Wait()
	stopChurn()

	// Post-churn probes: every victim stays denied at its gateway,
	// every survivor still gets in (revocation must not fail open OR
	// take down innocent principals).
	for _, d := range dead {
		if status, err := rs.admit(d.p); err != nil || status == http.StatusOK {
			t.Errorf("victim %s re-admitted after quiesce (status %d, err %v)", d.p.Owner, status, err)
		}
	}
	for i := 0; i < len(g.Principals)-victims; i++ {
		p := g.Principals[i]
		if status, err := rs.admit(p); err != nil || status != http.StatusOK {
			t.Errorf("survivor %s denied after churn (status %d, err %v)", p.Owner, status, err)
		}
	}

	// Audit sweep across every gateway: (1) no admit citing a revoked
	// grant after its observed rejection; (2) no admit citing a
	// revoked grant that STARTED at an epoch past the one in force
	// when the rejection was observed.
	for _, d := range dead {
		h := d.p.Grant.Sexp().Hash()
		want := hex.EncodeToString(h[:])
		for _, mg := range m.Gateways {
			for _, dec := range mg.Audit.Recent(0) {
				if dec.Verdict != obs.VerdictAdmit {
					continue
				}
				cites := false
				for _, ch := range dec.CertHashes {
					if ch == want {
						cites = true
						break
					}
				}
				if !cites {
					continue
				}
				if dec.Time.After(d.denyTime) {
					t.Errorf("gateway %d admitted %s at %s, after rejection was observed at %s",
						mg.Index, d.p.Owner, dec.Time.Format(time.RFC3339Nano), d.denyTime.Format(time.RFC3339Nano))
				}
				if dec.Epoch > d.denyEpoch {
					t.Errorf("gateway %d verdict for %s crossed revocation epoch: started at epoch %d > deny epoch %d",
						mg.Index, d.p.Owner, dec.Epoch, d.denyEpoch)
				}
			}
		}
	}

	if n := admits.Load(); n < int64(len(g.Principals)) {
		t.Fatalf("hammer only completed %d admits; churn starved the load", n)
	}
	snap := hist.Snap()
	t.Logf("soak: %d hammer admits, p50=%s p99=%s, epoch=%d, %d violations recorded by harness",
		admits.Load(), fmt.Sprintf("%.1fms", snap.Quantile(0.5)*1e3),
		fmt.Sprintf("%.1fms", snap.Quantile(0.99)*1e3), core.SharedProofCache().Epoch(), len(rs.viol))
}
