package prover

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/tag"
)

// TestConcurrentFindAddDelegate exercises the sharded prover under
// simultaneous searching, digesting, and minting; run with -race (the
// CI race job covers this package).
func TestConcurrentFindAddDelegate(t *testing.T) {
	root := mkParty("root")
	mids := make([]party, 8)
	leaves := make([]party, 8)
	p := New()
	p.AddClosure(NewKeyClosure(root.priv))
	for i := range mids {
		mids[i] = mkParty(fmt.Sprintf("mid-%d", i))
		leaves[i] = mkParty(fmt.Sprintf("leaf-%d", i))
		p.AddProof(mustDelegate(t, root, mids[i].pr, tag.All()))
		p.AddProof(mustDelegate(t, mids[i], leaves[i].pr, tag.All()))
	}

	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // chain search
					leaf := leaves[(g+i)%len(leaves)]
					proof, err := p.FindProof(leaf.pr, root.pr, tag.Literal("req"), now)
					if err != nil {
						errs <- err
						continue
					}
					if err := proof.Verify(core.NewVerifyContext()); err != nil {
						errs <- err
					}
				case 1: // digest fresh delegations
					from := mids[(g+i)%len(mids)]
					stranger := mkParty(fmt.Sprintf("stranger-%d-%d", g, i))
					p.AddProof(mustDelegate(t, from, stranger.pr, tag.All()))
				case 2: // mint through the closure
					stranger := mkParty(fmt.Sprintf("grantee-%d-%d", g, i))
					if _, err := p.Delegate(root.pr, stranger.pr, tag.All(), core.Until(now.Add(time.Hour))); err != nil {
						errs <- err
					}
				case 3: // closure-completed search for an unknown subject
					stranger := mkParty(fmt.Sprintf("direct-%d-%d", g, i))
					if _, err := p.FindProof(stranger.pr, root.pr, tag.Literal("req"), now); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op failed: %v", err)
	}
	if p.EdgeCount() == 0 {
		t.Fatal("graph unexpectedly empty")
	}
}

// TestConcurrentFindSameChain has many goroutines race to prove the
// same multi-hop chain, which also races shortcut recording against
// readers of the same issuer shard.
func TestConcurrentFindSameChain(t *testing.T) {
	s, v, b, a := mkParty("s"), mkParty("v"), mkParty("b"), mkParty("a")
	p := New()
	p.AddProof(mustDelegate(t, s, v.pr, tag.All()))
	p.AddProof(mustDelegate(t, v, b.pr, tag.All()))
	p.AddProof(mustDelegate(t, b, a.pr, tag.All()))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				proof, err := p.FindProof(a.pr, s.pr, tag.Literal("req"), now)
				if err != nil {
					t.Error(err)
					return
				}
				c := proof.Conclusion()
				if !principal.Equal(c.Subject, a.pr) || !principal.Equal(c.Issuer, s.pr) {
					t.Errorf("conclusion = %s", c)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSweepEvictsExpiredEdges(t *testing.T) {
	alice, bob, carol := mkParty("alice"), mkParty("bob"), mkParty("carol")
	p := New()
	expired, err := cert.Delegate(alice.priv, bob.pr, alice.pr, tag.All(),
		core.Until(now.Add(-time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	p.AddProof(expired)
	p.AddProof(mustDelegate(t, alice, carol.pr, tag.All())) // unbounded, survives
	if got := p.EdgeCount(); got != 2 {
		t.Fatalf("EdgeCount = %d, want 2", got)
	}

	if evicted := p.Sweep(now); evicted != 1 {
		t.Fatalf("Sweep evicted %d, want 1", evicted)
	}
	if got := p.EdgeCount(); got != 1 {
		t.Fatalf("EdgeCount after sweep = %d, want 1", got)
	}
	if p.Stats().Swept != 1 {
		t.Fatalf("Stats().Swept = %d, want 1", p.Stats().Swept)
	}

	// The dedup entry must go with the edge: re-digesting the same
	// proof after a sweep re-enters the graph (a re-delegated cert
	// with identical bytes is the degenerate case).
	p.AddProof(expired)
	if got := p.EdgeCount(); got != 2 {
		t.Fatalf("EdgeCount after re-add = %d, want 2 (seen entry not pruned)", got)
	}

	// A second sweep takes it right back out.
	if evicted := p.Sweep(now); evicted != 1 {
		t.Fatalf("second Sweep evicted %d, want 1", evicted)
	}
}

// TestSweepPrunesNegativeCache checks that stale empty-answer records
// are dropped so re-resolution can happen immediately after a sweep.
func TestSweepPrunesNegativeCache(t *testing.T) {
	p := New()
	p.NegativeTTL = time.Minute
	p.cacheNegative("i|someone", now.Add(-2*time.Minute)) // stale
	p.cacheNegative("s|other", now)                       // fresh
	p.Sweep(now)
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if _, ok := p.negCache["i|someone"]; ok {
		t.Fatal("stale negative-cache entry survived sweep")
	}
	if _, ok := p.negCache["s|other"]; !ok {
		t.Fatal("fresh negative-cache entry swept")
	}
}
