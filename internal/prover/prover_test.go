package prover

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

var now = time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)

type party struct {
	priv *sfkey.PrivateKey
	pr   principal.Key
}

func mkParty(seed string) party {
	priv := sfkey.FromSeed([]byte(seed))
	return party{priv: priv, pr: principal.KeyOf(priv.Public())}
}

func mustDelegate(t *testing.T, from party, subject principal.Principal, tg tag.Tag) core.Proof {
	t.Helper()
	c, err := cert.Delegate(from.priv, subject, from.pr, tg, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFindDirectEdge(t *testing.T) {
	alice, bob := mkParty("alice"), mkParty("bob")
	p := New()
	p.AddProof(mustDelegate(t, alice, bob.pr, tag.All()))
	proof, err := p.FindProof(bob.pr, alice.pr, tag.Literal("x"), now)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
	c := proof.Conclusion()
	if !principal.Equal(c.Subject, bob.pr) || !principal.Equal(c.Issuer, alice.pr) {
		t.Fatalf("conclusion = %s", c)
	}
}

func TestFindChain(t *testing.T) {
	// s -> v -> b -> a: server delegates to v, v to b, b to a.
	s, v, b, a := mkParty("s"), mkParty("v"), mkParty("b"), mkParty("a")
	p := New()
	p.AddProof(mustDelegate(t, s, v.pr, tag.All()))
	p.AddProof(mustDelegate(t, v, b.pr, tag.All()))
	p.AddProof(mustDelegate(t, b, a.pr, tag.All()))
	proof, err := p.FindProof(a.pr, s.pr, tag.Literal("req"), now)
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
	if !principal.Equal(proof.Conclusion().Subject, a.pr) ||
		!principal.Equal(proof.Conclusion().Issuer, s.pr) {
		t.Fatalf("conclusion = %s", proof.Conclusion())
	}
}

func TestReflexiveGoal(t *testing.T) {
	a := mkParty("a")
	p := New()
	proof, err := p.FindProof(a.pr, a.pr, tag.All(), now)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proof.(*core.Reflex); !ok {
		t.Fatalf("got %T", proof)
	}
}

func TestNoProofFound(t *testing.T) {
	alice, bob, eve := mkParty("alice"), mkParty("bob"), mkParty("eve")
	p := New()
	p.AddProof(mustDelegate(t, alice, bob.pr, tag.All()))
	if _, err := p.FindProof(eve.pr, alice.pr, tag.All(), now); err == nil {
		t.Fatal("found proof for unauthorized principal")
	}
}

func TestTagFiltering(t *testing.T) {
	alice, bob := mkParty("alice"), mkParty("bob")
	p := New()
	p.AddProof(mustDelegate(t, alice, bob.pr, tag.MustParse(`(tag (fs read))`)))
	if _, err := p.FindProof(bob.pr, alice.pr, tag.MustParse(`(tag (fs write))`), now); err == nil {
		t.Fatal("proof found outside delegated restriction")
	}
	if _, err := p.FindProof(bob.pr, alice.pr, tag.MustParse(`(tag (fs read))`), now); err != nil {
		t.Fatalf("proof not found inside restriction: %v", err)
	}
}

func TestExpiredEdgeSkipped(t *testing.T) {
	alice, bob := mkParty("alice"), mkParty("bob")
	p := New()
	expired, err := cert.Delegate(alice.priv, bob.pr, alice.pr, tag.All(),
		core.Until(now.Add(-time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	p.AddProof(expired)
	if _, err := p.FindProof(bob.pr, alice.pr, tag.All(), now); err == nil {
		t.Fatal("expired delegation used")
	}
}

// TestFigure2 mirrors the paper's Figure 2: Alice's prover holds a
// graph of principals with a final node A; to prove that a channel
// KCH speaks for server S, it works backwards from S, finds
// A =V∩X=> S, and completes the proof by issuing KCH => A.
func TestFigure2(t *testing.T) {
	a := mkParty("A") // final: Alice's key, closure held
	s := mkParty("S") // the server
	vPty, xPty := mkParty("V"), mkParty("X")
	bPty, cPty, tPty := mkParty("B"), mkParty("C"), mkParty("T")
	vx := principal.ConjOf(vPty.pr, xPty.pr)
	kch := principal.ChannelOf(principal.ChannelSecure, []byte("ch-1"))

	p := New()
	p.AddClosure(NewKeyClosure(a.priv))
	// S delegated to the conjunction V∩X.
	p.AddProof(mustDelegate(t, s, vx, tag.All()))
	// V and X each delegated to A.
	p.AddProof(mustDelegate(t, vPty, a.pr, tag.All()))
	p.AddProof(mustDelegate(t, xPty, a.pr, tag.All()))
	// Unrelated edges A->B, B->C, A->T populate the rest of the graph.
	p.AddProof(mustDelegate(t, a, bPty.pr, tag.All()))
	p.AddProof(mustDelegate(t, bPty, cPty.pr, tag.All()))
	p.AddProof(mustDelegate(t, a, tPty.pr, tag.All()))

	proof, err := p.FindProof(kch, s.pr, tag.Literal("m"), now)
	if err != nil {
		t.Fatal(err)
	}
	c := proof.Conclusion()
	if !principal.Equal(c.Subject, kch) || !principal.Equal(c.Issuer, s.pr) {
		t.Fatalf("conclusion = %s", c)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := proof.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Minted == 0 {
		t.Fatal("no delegation minted through the closure")
	}
}

func TestClosureMintsLastHop(t *testing.T) {
	alice, server := mkParty("alice"), mkParty("server")
	ch := principal.ChannelOf(principal.ChannelSecure, []byte("sess"))
	p := New()
	p.AddClosure(NewKeyClosure(alice.priv))
	p.AddProof(mustDelegate(t, server, alice.pr, tag.MustParse(`(tag (db (* set select insert)))`)))
	want := tag.MustParse(`(tag (db select))`)
	proof, err := p.FindProof(ch, server.pr, want, now)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, ch, server.pr, want); err != nil {
		t.Fatal(err)
	}
	// The minted delegation is narrow: it must not authorize inserts.
	insert := tag.MustParse(`(tag (db insert))`)
	if err := core.Authorize(ctx, proof, ch, server.pr, insert); err == nil {
		t.Fatal("minted delegation over-broad")
	}
}

func TestQuotingReductionGatewayCase(t *testing.T) {
	// The section 6.3 gateway: the server requires CH|Client => S
	// where CH is the gateway's channel. The gateway holds the
	// client-granted proof (G|Client) => S and controls G.
	g, s, client := mkParty("gateway"), mkParty("server"), mkParty("client")
	ch := principal.ChannelOf(principal.ChannelSecure, []byte("gw-sess"))

	p := New() // the gateway's prover
	p.AddClosure(NewKeyClosure(g.priv))
	// Client delegated "G quoting client speaks for S" using its own
	// authority over S.
	sToClient := mustDelegate(t, s, client.pr, tag.All())
	gQuotingClient := principal.QuoteOf(g.pr, client.pr)
	clientGrant, err := cert.Delegate(client.priv, gQuotingClient, client.pr, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := core.NewTransitivity(clientGrant, sToClient)
	if err != nil {
		t.Fatal(err)
	}
	p.AddProof(chain)

	// Goal: (CH | client) => S.
	goal := principal.QuoteOf(ch, client.pr)
	proof, err := p.FindProof(goal, s.pr, tag.Literal("get-mail"), now)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, goal, s.pr, tag.Literal("get-mail")); err != nil {
		t.Fatal(err)
	}
}

func TestDigestionExtractsLemmas(t *testing.T) {
	// Adding a composed proof makes its components individually
	// usable.
	a, b, c := mkParty("a"), mkParty("b"), mkParty("c")
	p := New()
	e1 := mustDelegate(t, a, b.pr, tag.All())
	e2 := mustDelegate(t, b, c.pr, tag.All())
	tr, err := core.NewTransitivity(e2, e1)
	if err != nil {
		t.Fatal(err)
	}
	p.AddProof(tr)
	// The component b => a must be findable on its own.
	if _, err := p.FindProof(b.pr, a.pr, tag.All(), now); err != nil {
		t.Fatalf("digested lemma not usable: %v", err)
	}
	// EdgeCount: tr (shortcut) + 2 lemmas.
	if got := p.EdgeCount(); got != 3 {
		t.Fatalf("EdgeCount = %d, want 3", got)
	}
	// Re-adding is idempotent.
	p.AddProof(tr)
	if got := p.EdgeCount(); got != 3 {
		t.Fatalf("EdgeCount after re-add = %d, want 3", got)
	}
}

func TestShortcutCacheReducesExpansion(t *testing.T) {
	// A long chain: the first search walks it; the recorded shortcut
	// makes the second search reach the goal in fewer expansions.
	parties := make([]party, 8)
	for i := range parties {
		parties[i] = mkParty(string(rune('a' + i)))
	}
	build := func(shortcuts bool) (int, *Prover) {
		p := New()
		p.DisableShortcuts = !shortcuts
		for i := 0; i+1 < len(parties); i++ {
			p.AddProof(mustDelegate(t, parties[i], parties[i+1].pr, tag.All()))
		}
		goalSub, goalIss := parties[len(parties)-1].pr, parties[0].pr
		if _, err := p.FindProof(goalSub, goalIss, tag.All(), now); err != nil {
			t.Fatal(err)
		}
		before := p.Stats().Expanded
		if _, err := p.FindProof(goalSub, goalIss, tag.All(), now); err != nil {
			t.Fatal(err)
		}
		return p.Stats().Expanded - before, p
	}
	withCache, pc := build(true)
	withoutCache, _ := build(false)
	if withCache >= withoutCache {
		t.Fatalf("shortcut cache did not help: %d vs %d expansions", withCache, withoutCache)
	}
	if pc.Stats().ShortcutHits == 0 {
		t.Fatal("no shortcut hits recorded")
	}
}

func TestDelegateExplicit(t *testing.T) {
	alice := mkParty("alice")
	ch := principal.ChannelOf(principal.ChannelLocal, []byte("k2"))
	p := New()
	p.AddClosure(NewKeyClosure(alice.priv))
	proof, err := p.Delegate(alice.pr, ch, tag.Literal("m"), core.Until(now.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Delegate(mkParty("bob").pr, ch, tag.All(), core.Forever); err == nil {
		t.Fatal("delegated from uncontrolled principal")
	}
	if !p.Controls(alice.pr) {
		t.Fatal("Controls(alice) false")
	}
}

func TestFuncClosure(t *testing.T) {
	mac := principal.MACOf([]byte("secret"))
	called := false
	fc := FuncClosure{
		P: mac,
		Fn: func(subject principal.Principal, tg tag.Tag, v core.Validity) (core.Proof, error) {
			called = true
			s := core.SpeaksFor{Subject: subject, Issuer: mac, Tag: tg, Validity: v}
			return core.Assume(s), nil
		},
	}
	p := New()
	p.AddClosure(fc)
	req := principal.HashOfBytes([]byte("request"))
	if _, err := p.Delegate(mac, req, tag.All(), core.Forever); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("func closure not invoked")
	}
}

func TestPrincipalsListing(t *testing.T) {
	alice, bob := mkParty("alice"), mkParty("bob")
	p := New()
	p.AddClosure(NewKeyClosure(alice.priv))
	p.AddProof(mustDelegate(t, alice, bob.pr, tag.All()))
	ps := p.Principals()
	if len(ps) != 2 {
		t.Fatalf("Principals = %d, want 2", len(ps))
	}
}

func TestSearchDepthBound(t *testing.T) {
	// Nested quoting beyond MaxDepth must fail cleanly, not hang.
	g, s, c := mkParty("g"), mkParty("s"), mkParty("c")
	p := New()
	p.MaxDepth = 0
	p.AddClosure(NewKeyClosure(g.priv))
	gq := principal.QuoteOf(g.pr, c.pr)
	cert1, err := cert.Delegate(s.priv, gq, s.pr, tag.All(), core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	p.AddProof(cert1)
	ch := principal.ChannelOf(principal.ChannelSecure, []byte("x"))
	goal := principal.QuoteOf(ch, c.pr)
	if _, err := p.FindProof(goal, s.pr, tag.All(), now); err == nil {
		t.Fatal("depth bound not enforced")
	}
}

func TestConcurrentAccess(t *testing.T) {
	alice, bob := mkParty("alice"), mkParty("bob")
	p := New()
	p.AddClosure(NewKeyClosure(alice.priv))
	d := mustDelegate(t, alice, bob.pr, tag.All())
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p.AddProof(d)
			p.FindProof(bob.pr, alice.pr, tag.All(), now)
			p.EdgeCount()
			p.Principals()
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
