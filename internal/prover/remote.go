package prover

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/tag"
)

// RemoteSource is a store of delegations outside this process — a
// certificate directory (certdir.Client implements this), a name
// service, a gossip peer. The Prover consults sources only after the
// local delegation graph dead-ends, so local proving stays
// network-free.
//
// Sources supply candidate proofs; they are not trusted. Every
// fetched proof is verified before it is digested into the graph, so
// a compromised directory can withhold delegations (denial of
// service) but cannot plant authority.
//
// Implementations must be safe for concurrent use: the prover fans
// queries out in parallel.
type RemoteSource interface {
	// ByIssuer returns proofs whose conclusion issuer is the given
	// principal: the delegations extending that principal's authority.
	ByIssuer(issuer principal.Principal) ([]core.Proof, error)
	// BySubject returns proofs whose conclusion subject is the given
	// principal: the delegations that principal can exercise.
	BySubject(subject principal.Principal) ([]core.Proof, error)
}

// ContextSource is optionally implemented by remote sources that can
// carry a request context — certdir.Client does, propagating the
// context's obs trace as the HTTP Sf-Trace header and honoring
// cancellation. Sources implementing it are preferred over
// FilteredSource/RemoteSource during discovery.
type ContextSource interface {
	// ByIssuerForCtx is ByIssuerFor carrying the search's context.
	ByIssuerForCtx(ctx context.Context, issuer principal.Principal, want tag.Tag, limit int) ([]core.Proof, error)
	// BySubjectForCtx is the subject-side counterpart.
	BySubjectForCtx(ctx context.Context, subject principal.Principal, want tag.Tag, limit int) ([]core.Proof, error)
}

// FilteredSource is optionally implemented by remote sources that can
// narrow answers server-side (certdir.Client does, via the wire
// query's (limit n) and (tag t) clauses). When a source implements it,
// the prover pushes down the tag it is searching for — only
// delegations whose tag covers the goal can ever become usable edges
// (see reachable) — and a fetch cap, so heavy issuers don't ship
// thousands of irrelevant delegations per query. Sources without the
// interface get the plain unbounded ByIssuer/BySubject calls.
type FilteredSource interface {
	// ByIssuerFor is ByIssuer restricted to proofs whose conclusion
	// tag covers want, truncated to limit (0 = unbounded).
	ByIssuerFor(issuer principal.Principal, want tag.Tag, limit int) ([]core.Proof, error)
	// BySubjectFor is the subject-side counterpart.
	BySubjectFor(subject principal.Principal, want tag.Tag, limit int) ([]core.Proof, error)
}

// Defaults for the remote-discovery tunables.
const (
	DefaultNegativeTTL  = 30 * time.Second
	DefaultRemoteFanout = 32
	DefaultRemoteRounds = 4
	// DefaultRemoteLimit caps certificates fetched per filtered
	// directory query. A productive round needs only the edges that
	// extend the frontier; 256 covers realistic issuer fan-out while
	// bounding the damage a certificate-spamming issuer can do to
	// discovery latency.
	DefaultRemoteLimit = 256
)

// negCacheMax bounds the negative cache: at the bound, recording a
// new miss first prunes expired entries, then evicts the oldest —
// the incoming key is the freshest fact and is always inserted (see
// cacheNegative).
const negCacheMax = 4096

// AddRemote registers a remote delegation source. Multiple sources
// are queried in registration order and their answers merged.
func (p *Prover) AddRemote(r RemoteSource) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	p.remotes = append(p.remotes, r)
}

// remoteQuery is one directory question: an axis ("i" by issuer, "s"
// by subject) and a principal.
type remoteQuery struct {
	axis string
	prin principal.Principal
}

func (q remoteQuery) key() string { return q.axis + "|" + q.prin.Key() }

// negKey is the negative-cache key for q under a search tag. The tag
// must qualify the key: filtered sources answer "nothing for THIS
// tag", so an empty reply to (issuer, tag A) says nothing about
// (issuer, tag B) — caching it tag-blind would suppress the B query
// and fail proofs whose certificates are sitting in the directory.
func (q remoteQuery) negKey(want tag.Tag) string {
	return q.key() + "|" + string(want.Sexp().Canonical())
}

// remoteAnswer collects the merged replies to one query. answered is
// false when every source errored, so an unreachable directory is
// never mistaken for a genuinely empty answer.
type remoteAnswer struct {
	proofs   []core.Proof
	answered bool
}

// findRemote runs bounded fetch-then-research rounds after a local
// miss. Each round queries the directories for the current search
// frontier (every principal reachable backwards from the issuer,
// plus the target subject), digests verified answers as graph edges,
// and re-runs the local search; the frontier grows at least one hop
// per productive round, so a k-hop remote chain needs at most k
// rounds. No prover lock is held across network fetches.
func (p *Prover) findRemote(ctx context.Context, subject, issuer principal.Principal, want tag.Tag, now time.Time, localErr error) (core.Proof, error) {
	budget := p.RemoteFanout
	if budget <= 0 {
		budget = DefaultRemoteFanout
	}
	rounds := p.RemoteRounds
	if rounds <= 0 {
		rounds = DefaultRemoteRounds
	}
	asked := make(map[string]bool) // queries spent during this call
	err := localErr
	for round := 0; round < rounds && budget > 0; round++ {
		frontier := p.reachable(issuer, want, now)
		queries := p.planQueries(frontier, subject, want, now, asked, &budget)
		if len(queries) == 0 {
			break
		}
		p.rmu.Lock()
		remotes := append([]RemoteSource(nil), p.remotes...)
		p.rmu.Unlock()
		answers := fetchAll(ctx, remotes, queries, want, p.remoteLimit())

		p.stats.remoteQueries.Add(int64(len(queries) * len(remotes)))
		added := 0
		for i, q := range queries {
			if len(answers[i].proofs) == 0 {
				if answers[i].answered {
					p.cacheNegative(q.negKey(want), now)
				}
				continue
			}
			added += p.digestRemote(answers[i].proofs, now)
		}
		if added == 0 {
			break
		}
		var proof core.Proof
		proof, err = p.find(subject, issuer, want, now, p.MaxDepth)
		if err == nil {
			return proof, nil
		}
	}
	return nil, err
}

// planQueries chooses this round's directory questions: the
// issuer-side frontier in BFS order, then the subject itself, skipping
// questions already asked this call or freshly answered empty.
func (p *Prover) planQueries(frontier []principal.Principal, subject principal.Principal, want tag.Tag, now time.Time, asked map[string]bool, budget *int) []remoteQuery {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	var out []remoteQuery
	add := func(q remoteQuery) {
		if *budget <= 0 || asked[q.key()] {
			return
		}
		if t, ok := p.negCache[q.negKey(want)]; ok {
			if now.Sub(t) < p.negTTL() {
				p.stats.negCacheHits.Add(1)
				return
			}
			delete(p.negCache, q.negKey(want))
		}
		asked[q.key()] = true
		*budget--
		out = append(out, q)
	}
	for _, node := range frontier {
		add(remoteQuery{axis: "i", prin: node})
	}
	add(remoteQuery{axis: "s", prin: subject})
	return out
}

// reachable collects every principal reachable backwards from issuer
// through usable edges (the BFS frontier of find), in BFS order
// starting at the issuer itself. It reads per-shard snapshots, like
// the search it mirrors.
func (p *Prover) reachable(issuer principal.Principal, want tag.Tag, now time.Time) []principal.Principal {
	visited := map[string]bool{issuer.Key(): true}
	order := []principal.Principal{issuer}
	for i := 0; i < len(order); i++ {
		for _, e := range p.edgesFor(order[i].Key(), want) {
			if p.DisableShortcuts && e.shortcut {
				continue
			}
			if visited[e.subject.Key()] {
				continue
			}
			ec := e.proof.Conclusion()
			if !tag.Covers(ec.Tag, want) || !ec.Validity.Contains(now) {
				continue
			}
			visited[e.subject.Key()] = true
			order = append(order, e.subject)
		}
	}
	return order
}

// fetchAll runs every query against every remote concurrently, with
// no prover lock held, merging answers per query. Sources that
// implement FilteredSource are asked only for delegations covering
// the search tag, capped at limit. Source errors mark the (query,
// source) pair unanswered: an unreachable directory degrades
// discovery for a round, it neither fails proving nor poisons the
// negative cache.
func fetchAll(ctx context.Context, remotes []RemoteSource, queries []remoteQuery, want tag.Tag, limit int) []remoteAnswer {
	answers := make([]remoteAnswer, len(queries))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, q := range queries {
		for _, r := range remotes {
			wg.Add(1)
			go func(i int, q remoteQuery, r RemoteSource) {
				defer wg.Done()
				var (
					got []core.Proof
					err error
				)
				cs, withCtx := r.(ContextSource)
				fs, filtered := r.(FilteredSource)
				switch {
				case withCtx && q.axis == "i":
					got, err = cs.ByIssuerForCtx(ctx, q.prin, want, limit)
				case withCtx:
					got, err = cs.BySubjectForCtx(ctx, q.prin, want, limit)
				case filtered && q.axis == "i":
					got, err = fs.ByIssuerFor(q.prin, want, limit)
				case filtered:
					got, err = fs.BySubjectFor(q.prin, want, limit)
				case q.axis == "i":
					got, err = r.ByIssuer(q.prin)
				default:
					got, err = r.BySubject(q.prin)
				}
				if err != nil {
					return
				}
				mu.Lock()
				answers[i].answered = true
				answers[i].proofs = append(answers[i].proofs, got...)
				mu.Unlock()
			}(i, q, r)
		}
	}
	wg.Wait()
	return answers
}

func (p *Prover) remoteLimit() int {
	if p.RemoteLimit > 0 {
		return p.RemoteLimit
	}
	return DefaultRemoteLimit
}

// digestRemote verifies fetched proofs and installs the good ones as
// graph edges, returning how many were new. Verification consults the
// shared verified-proof cache: a delegation fetched by several
// concurrent searches (or previously screened by another layer) costs
// one signature check process-wide.
func (p *Prover) digestRemote(proofs []core.Proof, now time.Time) int {
	ctx := core.NewVerifyContext()
	ctx.Now = now
	ctx.Cache = core.SharedProofCache()
	// Revalidation demands are deferred to the relying verifier; the
	// prover only screens out proofs that can never verify.
	ctx.Revalidate = func([]byte, string) error { return nil }
	added := 0
	for _, pr := range proofs {
		if pr == nil {
			continue
		}
		if err := pr.Verify(ctx); err != nil {
			p.stats.remoteRejected.Add(1)
			continue
		}
		if p.addEdge(pr, false) {
			added++
			p.stats.remoteCerts.Add(1)
		}
	}
	return added
}

func (p *Prover) negTTL() time.Duration {
	if p.NegativeTTL > 0 {
		return p.NegativeTTL
	}
	return DefaultNegativeTTL
}

// cacheNegative records an empty directory answer, pruning expired
// entries when full and evicting the oldest entries when pruning
// frees nothing. The new key is always inserted: it is the freshest
// fact the cache holds, and refusing it (the old behavior) meant a
// hot missing issuer re-queried the directory on every FindProof for
// as long as the cache stayed full of still-fresh strangers.
func (p *Prover) cacheNegative(key string, now time.Time) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if len(p.negCache) >= negCacheMax {
		for k, t := range p.negCache {
			if now.Sub(t) >= p.negTTL() {
				delete(p.negCache, k)
			}
		}
		for len(p.negCache) >= negCacheMax {
			var oldestK string
			var oldestT time.Time
			for k, t := range p.negCache {
				if oldestK == "" || t.Before(oldestT) {
					oldestK, oldestT = k, t
				}
			}
			delete(p.negCache, oldestK)
			p.stats.negCacheEvicted.Add(1)
		}
	}
	p.negCache[key] = now
}
