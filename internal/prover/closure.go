package prover

import (
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// KeyClosure controls a key principal by holding its private key; its
// delegations are signed certificates.
type KeyClosure struct {
	Priv *sfkey.PrivateKey
}

// NewKeyClosure wraps a private key as a closure.
func NewKeyClosure(priv *sfkey.PrivateKey) KeyClosure {
	return KeyClosure{Priv: priv}
}

// Principal implements Closure.
func (k KeyClosure) Principal() principal.Principal {
	return principal.KeyOf(k.Priv.Public())
}

// Delegate implements Closure by signing a certificate.
func (k KeyClosure) Delegate(subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error) {
	return cert.Delegate(k.Priv, subject, k.Principal(), t, v)
}

// FuncClosure adapts an arbitrary delegation function as a closure;
// capability-style principals (local channels, MAC secrets) use this.
type FuncClosure struct {
	P  principal.Principal
	Fn func(subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error)
}

// Principal implements Closure.
func (f FuncClosure) Principal() principal.Principal { return f.P }

// Delegate implements Closure.
func (f FuncClosure) Delegate(subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error) {
	return f.Fn(subject, t, v)
}
