package prover

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tag"
)

// TestNegativeCacheEvictsOldestWhenFull: a full cache of still-fresh
// entries must make room for the new key (evicting the oldest) rather
// than silently dropping it — the dropped key was the HOT one being
// recorded right now, and losing it meant a directory round trip on
// every FindProof for that missing issuer.
func TestNegativeCacheEvictsOldestWhenFull(t *testing.T) {
	p := New()
	p.NegativeTTL = time.Hour // nothing expires during the test
	base := time.Now()
	// Fill to the bound with fresh entries; key-0 is the oldest.
	for i := 0; i < negCacheMax; i++ {
		p.cacheNegative(string(rune('a'))+"|"+string(rune(i)), base.Add(time.Duration(i)*time.Millisecond))
	}
	if len(p.negCache) != negCacheMax {
		t.Fatalf("cache holds %d entries, want full at %d", len(p.negCache), negCacheMax)
	}
	hot := "hot|issuer"
	p.cacheNegative(hot, base) // nothing has expired: eviction, not pruning, must make room
	if _, ok := p.negCache[hot]; !ok {
		t.Fatal("fresh hot key was not inserted into a full negative cache")
	}
	if len(p.negCache) > negCacheMax {
		t.Fatalf("cache grew past its bound: %d", len(p.negCache))
	}
	if _, ok := p.negCache["a|"+string(rune(0))]; ok {
		t.Fatal("oldest entry survived the overflow eviction")
	}
	if got := p.Stats().NegCacheEvicted; got != 1 {
		t.Fatalf("NegCacheEvicted = %d, want 1", got)
	}
}

// TestInvalidateDropsDependentEdges: invalidating a certificate body
// hash must drop the certificate's edge AND every composed shortcut
// containing it, evict exactly those verdicts from the proof cache,
// and leave independent edges (and their verdicts) untouched.
func TestInvalidateDropsDependentEdges(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	want := tag.Prefix("files")
	prins, certs := remoteChain(t, "inv", 2, want, v)

	p := New()
	for _, c := range certs {
		p.AddProof(c)
	}
	// Find a 2-hop proof so a composed shortcut edge is recorded.
	proof, err := p.FindProof(prins[2], prins[0], want, now)
	if err != nil {
		t.Fatal(err)
	}
	if p.EdgeCount() != 3 { // 2 cert edges + 1 shortcut
		t.Fatalf("EdgeCount = %d, want 3", p.EdgeCount())
	}

	cache := core.NewProofCache(64)
	cache.Store(certs[0].Sexp().Hash(), v, cache.Epoch(), 0)
	cache.Store(certs[1].Sexp().Hash(), v, cache.Epoch(), 0)
	cache.Store(proof.Sexp().Hash(), v, cache.Epoch(), 0)
	unrelated := [32]byte{42}
	cache.Store(unrelated, v, cache.Epoch(), 0)

	// Revoke the first hop: its edge and the shortcut composed from it
	// must go; the second hop's edge survives.
	dropped := p.Invalidate([][]byte{certs[0].Hash()}, cache)
	if dropped != 2 {
		t.Fatalf("Invalidate dropped %d edges, want cert + shortcut = 2", dropped)
	}
	if p.EdgeCount() != 1 {
		t.Fatalf("EdgeCount after invalidate = %d, want 1", p.EdgeCount())
	}
	if cache.Lookup(certs[0].Sexp().Hash(), now, core.ViewAny) {
		t.Fatal("revoked certificate's verdict survived")
	}
	if !cache.Lookup(certs[1].Sexp().Hash(), now, core.ViewAny) {
		t.Fatal("independent certificate's verdict was evicted")
	}
	if !cache.Lookup(unrelated, now, core.ViewAny) {
		t.Fatal("unrelated verdict was evicted")
	}
	if got := p.Stats().Invalidated; got != 2 {
		t.Fatalf("Invalidated stat = %d, want 2", got)
	}

	// The proof can no longer be found: the chain is broken.
	if _, err := p.FindProof(prins[2], prins[0], want, now); err == nil {
		t.Fatal("proof still found after its first hop was invalidated")
	}
	// A re-delegation of the same authority re-enters cleanly (the
	// seen-set entries were released with the edges).
	p.AddProof(certs[0])
	if _, err := p.FindProof(prins[2], prins[0], want, now); err != nil {
		t.Fatalf("re-added edge unusable: %v", err)
	}
}

// chanSource scripts an InvalidationSource for subscription tests.
type chanSource struct {
	mu     sync.Mutex
	script []chanAnswer
}

type chanAnswer struct {
	hashes [][]byte
	next   uint64
	reset  bool
	err    error
}

func (c *chanSource) push(a chanAnswer) {
	c.mu.Lock()
	c.script = append(c.script, a)
	c.mu.Unlock()
}

func (c *chanSource) Events(after uint64, wait time.Duration) ([][]byte, uint64, bool, error) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		if len(c.script) > 0 {
			a := c.script[0]
			c.script = c.script[1:]
			c.mu.Unlock()
			return a.hashes, a.next, a.reset, a.err
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			// Long-poll timeout: nothing new, cursor unchanged.
			return nil, after, false, nil
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubscriptionInvalidatesAndResets: the subscription loop applies
// event hashes through Invalidate, survives source errors, and bumps
// the cache epoch on a stream reset.
func TestSubscriptionInvalidatesAndResets(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	want := tag.Prefix("files")
	prins, certs := remoteChain(t, "sub", 1, want, v)

	p := New()
	p.AddProof(certs[0])
	cache := core.NewProofCache(64)

	src := &chanSource{}
	sub := p.SubscribeWait(src, cache, 10*time.Millisecond)
	defer sub.Stop()

	// An error from the source must not kill the loop.
	src.push(chanAnswer{err: errFake})
	// Then a revocation event for the only edge.
	src.push(chanAnswer{hashes: [][]byte{certs[0].Hash()}, next: 1})

	deadline := time.Now().Add(10 * time.Second)
	for p.EdgeCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never invalidated the revoked edge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := p.FindProof(prins[1], prins[0], want, now); err == nil {
		t.Fatal("proof still found after subscription invalidation")
	}

	// A reset bumps the epoch (coarse fallback).
	epoch := cache.Epoch()
	src.push(chanAnswer{next: 5, reset: true})
	for cache.Epoch() == epoch {
		if time.Now().After(deadline) {
			t.Fatal("reset did not bump the cache epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for p.Stats().EventResets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("EventResets stat not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake source error" }
