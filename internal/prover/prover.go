// Package prover implements the Prover of paper section 4.4: the
// client-side tool that collects delegations, caches proofs, and
// constructs new delegations on demand.
//
// Delegations live in a graph whose nodes are principals and whose
// edges are proofs of authority from one principal to the next
// (Figure 2). The Prover traverses the graph breadth-first, backwards
// from the required issuer. Nodes backed by a closure — an object
// holding a private key or other means of exercising a principal —
// are "final": the Prover can complete a proof by minting a fresh
// delegation from the controlled principal to the required subject.
//
// Whenever the Prover digests or computes a proof composed of smaller
// components, it records a shortcut edge; these shortcuts form a
// cache that eliminates most deep traversals.
//
// The delegation graph is sharded by issuer principal behind
// read-write locks, so concurrent FindProof calls (the gateway and
// the RMI invoker share one prover) read in parallel and only edge
// insertion takes a write lock on one shard. Expensive closure
// minting (signing) runs outside all locks. The tunable fields
// (MaxDepth, MintTTL, ...) must be set before concurrent use.
//
// The Prover is deliberately incomplete (general access control with
// conjunction and quoting is exponential; Abadi et al. p. 726); it
// handles chains, quoting reductions, and conjunction introduction to
// a bounded depth, which covers the authorization tasks applications
// face.
package prover

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/shard"
	"repro/internal/tag"
)

// Closure represents a principal the application controls, able to
// issue new delegations of that principal's authority (section 4.4:
// "an object that knows the private key or how to exercise the
// capability").
type Closure interface {
	// Principal names the controlled principal.
	Principal() principal.Principal
	// Delegate issues subject =t=> Principal() within v.
	Delegate(subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error)
}

// Stats counts the work performed by the Prover; the ablation
// benchmarks report these.
type Stats struct {
	Traversals    int // FindProof invocations (including recursive)
	Expanded      int // nodes popped during BFS
	ShortcutHits  int // goal reached through a cached shortcut edge
	Minted        int // delegations issued through closures
	Swept         int // expired edges evicted by Sweep
	SweptVerdicts int // cached proof-cache verdicts evicted alongside swept edges

	RemoteQueries  int // directory lookups issued
	RemoteCerts    int // fresh proofs digested from directories
	RemoteRejected int // remote proofs dropped as unverifiable
	NegCacheHits   int // directory lookups skipped by the negative cache

	NegCacheEvicted int // fresh negative entries displaced by newer ones (cache overflow)
	Invalidated     int // edges dropped by directory invalidation events
	EventResets     int // subscription stream resets (coarse invalidation fallback)
}

// counters is the internal, concurrency-safe form of Stats.
type counters struct {
	traversals    atomic.Int64
	expanded      atomic.Int64
	shortcutHits  atomic.Int64
	minted        atomic.Int64
	swept         atomic.Int64
	sweptVerdicts atomic.Int64

	remoteQueries  atomic.Int64
	remoteCerts    atomic.Int64
	remoteRejected atomic.Int64
	negCacheHits   atomic.Int64

	negCacheEvicted atomic.Int64
	invalidated     atomic.Int64
	eventResets     atomic.Int64
}

// DefaultEdgeShards is the shard count of the delegation graph's
// issuer index; enough to keep write contention negligible at the
// concurrency levels a single process sees, cheap enough to allocate
// unconditionally.
const DefaultEdgeShards = 16

// edgeShard is one independently locked slice of the issuer index. An
// edge lives in exactly the shard of its conclusion's issuer, and the
// shard's seen set dedups proofs by hash (a proof's issuer determines
// its shard, so the hash can only ever appear here).
type edgeShard struct {
	mu    sync.RWMutex
	edges map[string]*edgeSet // issuer key -> incoming proofs
	seen  map[[32]byte]bool   // digested proof hashes
}

// edgeSet holds one issuer's incoming edges twice over: the full
// insertion-order slice, and a tag-bucket index so a search for a
// specific tag scans only the edges that could cover it (same
// tag.Bucket key) plus the catch-all tail (star forms and other
// unbucketable grants). A hot issuer with thousands of disjoint
// literal grants costs a lookup its own bucket, not the whole fan-in.
type edgeSet struct {
	all      []*edge            // every edge, insertion order
	buckets  map[string][]*edge // tag bucket -> bucketable edges
	catchAll []*edge            // edges whose tags span buckets
}

func (es *edgeSet) add(e *edge) {
	es.all = append(es.all, e)
	if e.bucketed {
		if es.buckets == nil {
			es.buckets = make(map[string][]*edge)
		}
		es.buckets[e.bucket] = append(es.buckets[e.bucket], e)
	} else {
		es.catchAll = append(es.catchAll, e)
	}
}

// filter drops every edge failing keep and rebuilds the bucket index;
// it reports the dropped edges. Called under the shard's write lock.
func (es *edgeSet) filter(keep func(*edge) bool) (dropped []*edge) {
	kept := es.all[:0]
	for _, e := range es.all {
		if keep(e) {
			kept = append(kept, e)
		} else {
			dropped = append(dropped, e)
		}
	}
	for i := len(kept); i < len(es.all); i++ {
		es.all[i] = nil
	}
	if len(dropped) == 0 {
		return nil
	}
	es.all = kept
	es.buckets = nil
	es.catchAll = nil
	rest := es.all
	es.all = es.all[:0]
	for _, e := range rest {
		es.add(e)
	}
	return dropped
}

// Prover maintains the delegation graph.
type Prover struct {
	shards []*edgeShard

	cmu      sync.RWMutex
	closures map[string]Closure

	rmu      sync.Mutex
	remotes  []RemoteSource
	negCache map[string]time.Time // tag-qualified query key -> time it came back empty

	// DisableShortcuts turns off the proof cache (ablation).
	DisableShortcuts bool
	// MaxDepth bounds recursive quoting/conjunction reductions.
	MaxDepth int
	// MintTTL bounds the validity of freshly minted delegations.
	MintTTL time.Duration
	// NegativeTTL is how long an empty directory answer suppresses
	// re-asking the same question; zero means DefaultNegativeTTL.
	NegativeTTL time.Duration
	// RemoteFanout caps directory queries per FindProof call; zero
	// means DefaultRemoteFanout.
	RemoteFanout int
	// RemoteRounds caps fetch-then-research iterations per FindProof
	// call (each round can extend the frontier by one hop); zero means
	// DefaultRemoteRounds.
	RemoteRounds int
	// RemoteLimit caps certificates fetched per query from sources
	// that support server-side filtering (FilteredSource); zero means
	// DefaultRemoteLimit.
	RemoteLimit int
	// VerdictCache is the verified-proof cache whose verdicts Sweep
	// evicts alongside the edges it drops (so a swept edge does not
	// linger as a warm verdict until its validity or the next epoch
	// bump); nil means the process-wide shared cache.
	VerdictCache *core.ProofCache
	// RemoteHist, when set, observes the wall-clock seconds each
	// remote discovery (findRemote) takes — the cold-proof-discovery
	// latency signal.
	RemoteHist *obs.Histogram

	stats counters
}

type edge struct {
	subject  principal.Principal
	issuer   principal.Principal
	proof    core.Proof
	shortcut bool
	hash     [32]byte
	expiry   time.Time // conclusion's NotAfter; zero when unbounded
	bucket   string    // conclusion tag's bucket key, when bucketed
	bucketed bool
}

// New returns an empty Prover.
func New() *Prover {
	p := &Prover{
		shards:   make([]*edgeShard, DefaultEdgeShards),
		closures: make(map[string]Closure),
		negCache: make(map[string]time.Time),
		MaxDepth: 4,
		MintTTL:  10 * time.Minute,
	}
	for i := range p.shards {
		p.shards[i] = &edgeShard{
			edges: make(map[string]*edgeSet),
			seen:  make(map[[32]byte]bool),
		}
	}
	return p
}

// shardFor picks the shard holding edges into the given issuer.
func (p *Prover) shardFor(issuerKey string) *edgeShard {
	return p.shards[shard.Index(issuerKey, len(p.shards))]
}

// AddClosure registers a controlled principal.
func (p *Prover) AddClosure(c Closure) {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	p.closures[c.Principal().Key()] = c
}

// closureFor looks up the closure controlling a principal, if any.
func (p *Prover) closureFor(key string) (Closure, bool) {
	p.cmu.RLock()
	defer p.cmu.RUnlock()
	c, ok := p.closures[key]
	return c, ok
}

// AddProof digests a proof into the graph: every lemma (subproof)
// becomes an edge, and composite lemmas additionally become shortcut
// edges for their overall conclusions (section 4.4).
func (p *Prover) AddProof(pr core.Proof) {
	for _, lemma := range core.Lemmas(pr) {
		p.addEdge(lemma, len(lemma.Children()) > 0)
	}
}

// addEdge inserts one proof as a graph edge, deduplicating by proof
// hash within the issuer's shard; it reports whether the edge was
// new.
func (p *Prover) addEdge(pr core.Proof, shortcut bool) bool {
	h := pr.Sexp().Hash()
	c := pr.Conclusion()
	ik := c.Issuer.Key()
	e := &edge{
		subject: c.Subject, issuer: c.Issuer, proof: pr,
		shortcut: shortcut, hash: h, expiry: c.Validity.NotAfter,
	}
	e.bucket, e.bucketed = c.Tag.Bucket()
	sh := p.shardFor(ik)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.seen[h] {
		return false
	}
	sh.seen[h] = true
	es := sh.edges[ik]
	if es == nil {
		es = &edgeSet{}
		sh.edges[ik] = es
	}
	es.add(e)
	return true
}

// edgesFor returns a snapshot of the edges into the given issuer that
// could cover want: the bucket matching want's tag plus the catch-all
// tail, or the full fan-in when want itself is unbucketable. The copy
// is taken under the shard's read lock, so BFS walks a consistent
// slice while writers append concurrently. Bucket narrowing is sound,
// not just fast: tag.Bucket guarantees a covering grant shares the
// query's bucket or lives in the catch-all.
func (p *Prover) edgesFor(issuerKey string, want tag.Tag) []*edge {
	sh := p.shardFor(issuerKey)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	es := sh.edges[issuerKey]
	if es == nil {
		return nil
	}
	b, ok := want.Bucket()
	if !ok {
		if len(es.all) == 0 {
			return nil
		}
		return append([]*edge(nil), es.all...)
	}
	bs := es.buckets[b]
	if len(bs)+len(es.catchAll) == 0 {
		return nil
	}
	out := make([]*edge, 0, len(bs)+len(es.catchAll))
	out = append(out, bs...)
	return append(out, es.catchAll...)
}

// Stats returns a copy of the work counters.
func (p *Prover) Stats() Stats {
	return Stats{
		Traversals:     int(p.stats.traversals.Load()),
		Expanded:       int(p.stats.expanded.Load()),
		ShortcutHits:   int(p.stats.shortcutHits.Load()),
		Minted:         int(p.stats.minted.Load()),
		Swept:          int(p.stats.swept.Load()),
		SweptVerdicts:  int(p.stats.sweptVerdicts.Load()),
		RemoteQueries:  int(p.stats.remoteQueries.Load()),
		RemoteCerts:    int(p.stats.remoteCerts.Load()),
		RemoteRejected: int(p.stats.remoteRejected.Load()),
		NegCacheHits:   int(p.stats.negCacheHits.Load()),

		NegCacheEvicted: int(p.stats.negCacheEvicted.Load()),
		Invalidated:     int(p.stats.invalidated.Load()),
		EventResets:     int(p.stats.eventResets.Load()),
	}
}

// EdgeCount returns the number of edges in the graph.
func (p *Prover) EdgeCount() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, es := range sh.edges {
			n += len(es.all)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Sweep evicts every edge whose conclusion expired before now —
// including its dedup entry, so a re-delegated equivalent proof can
// re-enter, and its cached proof-cache verdict, so the swept proof
// does not linger as a warm verdict — and prunes stale negative-cache
// entries. Long-running digesters (the gateway digests a proof per
// client) call this periodically so the graph tracks the live
// delegation set instead of growing without bound. It returns the
// number of edges evicted.
func (p *Prover) Sweep(now time.Time) int {
	evicted := 0
	verdicts := 0
	cache := p.VerdictCache
	if cache == nil {
		cache = core.SharedProofCache()
	}
	for _, sh := range p.shards {
		sh.mu.Lock()
		for ik, es := range sh.edges {
			dropped := es.filter(func(e *edge) bool {
				return e.expiry.IsZero() || !e.expiry.Before(now)
			})
			for _, e := range dropped {
				delete(sh.seen, e.hash)
				if cache.Evict(e.hash) {
					verdicts++
				}
				evicted++
			}
			if len(es.all) == 0 {
				delete(sh.edges, ik)
			}
		}
		sh.mu.Unlock()
	}
	p.rmu.Lock()
	for k, t := range p.negCache {
		if now.Sub(t) >= p.negTTL() {
			delete(p.negCache, k)
		}
	}
	p.rmu.Unlock()
	p.stats.swept.Add(int64(evicted))
	p.stats.sweptVerdicts.Add(int64(verdicts))
	return evicted
}

// FindProof finds or constructs a proof that subject speaks for
// issuer regarding want, valid at now. It searches existing
// delegations first and completes proofs through closures when the
// chain reaches a controlled principal. When the local graph
// dead-ends and remote sources are registered (AddRemote), it fetches
// candidate delegations from them and retries — the hot local path
// never touches the network.
//
// FindProof is safe for concurrent use and concurrent calls do not
// serialize: the search reads per-shard snapshots of the graph, and
// only minting or digesting a new edge briefly write-locks one shard.
func (p *Prover) FindProof(subject, issuer principal.Principal, want tag.Tag, now time.Time) (core.Proof, error) {
	return p.FindProofCtx(context.Background(), subject, issuer, want, now)
}

// FindProofCtx is FindProof carrying a context: when ctx holds an
// active obs span, remote discovery records a "prover.remote" child
// span and directory fetches propagate the trace on the wire, so one
// cold admit renders as a single tree across processes.
func (p *Prover) FindProofCtx(ctx context.Context, subject, issuer principal.Principal, want tag.Tag, now time.Time) (core.Proof, error) {
	proof, err := p.find(subject, issuer, want, now, p.MaxDepth)
	if err == nil {
		return proof, nil
	}
	p.rmu.Lock()
	hasRemotes := len(p.remotes) > 0
	p.rmu.Unlock()
	if !hasRemotes {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "prover.remote")
	span.SetAttr("subject", subject.String())
	span.SetAttr("issuer", issuer.String())
	start := time.Now()
	proof, err = p.findRemote(ctx, subject, issuer, want, now, err)
	p.RemoteHist.Since(start)
	span.Fail(err)
	span.End()
	return proof, err
}

func (p *Prover) find(subject, issuer principal.Principal, want tag.Tag, now time.Time, depth int) (core.Proof, error) {
	p.stats.traversals.Add(1)
	if depth < 0 {
		return nil, fmt.Errorf("prover: search depth exhausted")
	}
	if principal.Equal(subject, issuer) {
		return core.NewReflex(subject), nil
	}

	type reach struct {
		node principal.Principal
		// proof of node => issuer; nil at the issuer itself.
		path core.Proof
		// hops counts graph edges on the path; single-hop results are
		// already edges and need no shortcut recording.
		hops int
	}
	visited := map[string]bool{issuer.Key(): true}
	queue := []reach{{node: issuer}}

	// tryComplete attempts to finish the proof at a reached node. It
	// runs with no locks held: minting through a closure is a signing
	// operation and must not serialize concurrent searches.
	tryComplete := func(r reach) (core.Proof, bool) {
		// (a) Reached the subject itself.
		if principal.Equal(r.node, subject) && r.path != nil {
			return r.path, true
		}
		// (b) Reached a final (closure-backed) node: mint the last hop.
		if cl, ok := p.closureFor(r.node.Key()); ok {
			minted, err := cl.Delegate(subject, want, core.Between(now.Add(-time.Minute), now.Add(p.MintTTL)))
			if err == nil {
				p.stats.minted.Add(1)
				p.addEdge(minted, false)
				if r.path == nil {
					return minted, true
				}
				if tr, err := core.NewTransitivity(minted, r.path); err == nil {
					return tr, true
				}
			}
		}
		// (c) Quoting reductions.
		if nq, ok := r.node.(principal.Quote); ok {
			if sq, ok := subject.(principal.Quote); ok {
				// Same quotee: X|C => A|C reduces to X => A.
				if principal.Equal(sq.Quotee, nq.Quotee) && !principal.Equal(sq.Quoter, nq.Quoter) {
					if sub, err := p.find(sq.Quoter, nq.Quoter, want, now, depth-1); err == nil {
						lift := core.NewQuoteQuoterMono(nq.Quotee, sub)
						if r.path == nil {
							return lift, true
						}
						if tr, err := core.NewTransitivity(lift, r.path); err == nil {
							return tr, true
						}
					}
				}
				// Same quoter: Q|Y => Q|B reduces to Y => B.
				if principal.Equal(sq.Quoter, nq.Quoter) && !principal.Equal(sq.Quotee, nq.Quotee) {
					if sub, err := p.find(sq.Quotee, nq.Quotee, want, now, depth-1); err == nil {
						lift := core.NewQuoteQuoteeMono(nq.Quoter, sub)
						if r.path == nil {
							return lift, true
						}
						if tr, err := core.NewTransitivity(lift, r.path); err == nil {
							return tr, true
						}
					}
				}
			}
		}
		// (d) Conjunction introduction: prove subject => each part.
		if conj, ok := r.node.(principal.Conj); ok {
			k := conj.K
			if k == 0 {
				k = len(conj.Parts)
			}
			var parts []core.Proof
			for _, member := range conj.Parts {
				if sub, err := p.find(subject, member, want, now, depth-1); err == nil {
					parts = append(parts, sub)
					if len(parts) >= k {
						break
					}
				}
			}
			if len(parts) >= k {
				if ci, err := core.NewConjIntro(conj, parts); err == nil {
					if r.path == nil {
						return ci, true
					}
					if tr, err := core.NewTransitivity(ci, r.path); err == nil {
						return tr, true
					}
				}
			}
		}
		return nil, false
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p.stats.expanded.Add(1)
		if proof, ok := tryComplete(cur); ok {
			// Cache multi-hop compositions as shortcut edges (the
			// dotted edges of Figure 2); single-hop results are the
			// edges themselves.
			if cur.hops > 1 || (cur.hops == 1 && !principal.Equal(proof.Conclusion().Subject, cur.node)) {
				p.recordShortcut(proof)
			}
			return proof, nil
		}
		for _, e := range p.edgesFor(cur.node.Key(), want) {
			if p.DisableShortcuts && e.shortcut {
				continue
			}
			if visited[e.subject.Key()] {
				continue
			}
			ec := e.proof.Conclusion()
			if !tag.Covers(ec.Tag, want) || !ec.Validity.Contains(now) {
				continue
			}
			var path core.Proof
			if cur.path == nil {
				path = e.proof
			} else {
				tr, err := core.NewTransitivity(e.proof, cur.path)
				if err != nil {
					continue
				}
				path = tr
			}
			if e.shortcut {
				p.stats.shortcutHits.Add(1)
			}
			visited[e.subject.Key()] = true
			queue = append(queue, reach{node: e.subject, path: path, hops: cur.hops + 1})
		}
	}
	return nil, fmt.Errorf("prover: no proof that %s speaks for %s regarding %s",
		subject, issuer, want)
}

// recordShortcut caches a composed proof as a shortcut edge (the
// dotted edges of Figure 2).
func (p *Prover) recordShortcut(pr core.Proof) {
	if p.DisableShortcuts || len(pr.Children()) == 0 {
		return
	}
	p.addEdge(pr, true)
}

// Controls reports whether the prover holds a closure for pr.
func (p *Prover) Controls(pr principal.Principal) bool {
	_, ok := p.closureFor(pr.Key())
	return ok
}

// Delegate issues a fresh delegation from a controlled principal
// without a graph search; the RMI invoker uses this to push authority
// onto a newly established channel (Figure 4 step m). The signing
// itself runs outside all prover locks.
func (p *Prover) Delegate(from principal.Principal, subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error) {
	cl, ok := p.closureFor(from.Key())
	if !ok {
		return nil, fmt.Errorf("prover: no closure for %s", from)
	}
	minted, err := cl.Delegate(subject, t, v)
	if err != nil {
		return nil, err
	}
	p.stats.minted.Add(1)
	p.addEdge(minted, false)
	return minted, nil
}

// Principals returns every node currently in the graph; for
// inspection and the proxy's delegation UI.
func (p *Prover) Principals() []principal.Principal {
	seen := map[string]principal.Principal{}
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, es := range sh.edges {
			for _, e := range es.all {
				seen[e.subject.Key()] = e.subject
				seen[e.issuer.Key()] = e.issuer
			}
		}
		sh.mu.RUnlock()
	}
	p.cmu.RLock()
	for _, c := range p.closures {
		seen[c.Principal().Key()] = c.Principal()
	}
	p.cmu.RUnlock()
	out := make([]principal.Principal, 0, len(seen))
	for _, pr := range seen {
		out = append(out, pr)
	}
	return out
}
