// Package prover implements the Prover of paper section 4.4: the
// client-side tool that collects delegations, caches proofs, and
// constructs new delegations on demand.
//
// Delegations live in a graph whose nodes are principals and whose
// edges are proofs of authority from one principal to the next
// (Figure 2). The Prover traverses the graph breadth-first, backwards
// from the required issuer. Nodes backed by a closure — an object
// holding a private key or other means of exercising a principal —
// are "final": the Prover can complete a proof by minting a fresh
// delegation from the controlled principal to the required subject.
//
// Whenever the Prover digests or computes a proof composed of smaller
// components, it records a shortcut edge; these shortcuts form a
// cache that eliminates most deep traversals.
//
// The Prover is deliberately incomplete (general access control with
// conjunction and quoting is exponential; Abadi et al. p. 726); it
// handles chains, quoting reductions, and conjunction introduction to
// a bounded depth, which covers the authorization tasks applications
// face.
package prover

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/tag"
)

// Closure represents a principal the application controls, able to
// issue new delegations of that principal's authority (section 4.4:
// "an object that knows the private key or how to exercise the
// capability").
type Closure interface {
	// Principal names the controlled principal.
	Principal() principal.Principal
	// Delegate issues subject =t=> Principal() within v.
	Delegate(subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error)
}

// Stats counts the work performed by the Prover; the ablation
// benchmarks report these.
type Stats struct {
	Traversals   int // FindProof invocations (including recursive)
	Expanded     int // nodes popped during BFS
	ShortcutHits int // goal reached through a cached shortcut edge
	Minted       int // delegations issued through closures

	RemoteQueries  int // directory lookups issued
	RemoteCerts    int // fresh proofs digested from directories
	RemoteRejected int // remote proofs dropped as unverifiable
	NegCacheHits   int // directory lookups skipped by the negative cache
}

// Prover maintains the delegation graph.
type Prover struct {
	mu       sync.Mutex
	edges    map[string][]*edge // issuer key -> incoming proofs
	closures map[string]Closure
	seen     map[[32]byte]bool // digested proof hashes

	remotes  []RemoteSource       // consulted when local search dead-ends
	negCache map[string]time.Time // query key -> time it came back empty

	// DisableShortcuts turns off the proof cache (ablation).
	DisableShortcuts bool
	// MaxDepth bounds recursive quoting/conjunction reductions.
	MaxDepth int
	// MintTTL bounds the validity of freshly minted delegations.
	MintTTL time.Duration
	// NegativeTTL is how long an empty directory answer suppresses
	// re-asking the same question; zero means DefaultNegativeTTL.
	NegativeTTL time.Duration
	// RemoteFanout caps directory queries per FindProof call; zero
	// means DefaultRemoteFanout.
	RemoteFanout int
	// RemoteRounds caps fetch-then-research iterations per FindProof
	// call (each round can extend the frontier by one hop); zero means
	// DefaultRemoteRounds.
	RemoteRounds int

	stats Stats
}

type edge struct {
	subject  principal.Principal
	issuer   principal.Principal
	proof    core.Proof
	shortcut bool
}

// New returns an empty Prover.
func New() *Prover {
	return &Prover{
		edges:    make(map[string][]*edge),
		closures: make(map[string]Closure),
		seen:     make(map[[32]byte]bool),
		negCache: make(map[string]time.Time),
		MaxDepth: 4,
		MintTTL:  10 * time.Minute,
	}
}

// AddClosure registers a controlled principal.
func (p *Prover) AddClosure(c Closure) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closures[c.Principal().Key()] = c
}

// AddProof digests a proof into the graph: every lemma (subproof)
// becomes an edge, and composite lemmas additionally become shortcut
// edges for their overall conclusions (section 4.4).
func (p *Prover) AddProof(pr core.Proof) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, lemma := range core.Lemmas(pr) {
		p.addEdgeLocked(lemma, len(lemma.Children()) > 0)
	}
}

// addEdgeLocked inserts one proof as a graph edge, deduplicating by
// proof hash; it reports whether the edge was new.
func (p *Prover) addEdgeLocked(pr core.Proof, shortcut bool) bool {
	h := pr.Sexp().Hash()
	if p.seen[h] {
		return false
	}
	p.seen[h] = true
	c := pr.Conclusion()
	e := &edge{subject: c.Subject, issuer: c.Issuer, proof: pr, shortcut: shortcut}
	ik := c.Issuer.Key()
	p.edges[ik] = append(p.edges[ik], e)
	return true
}

// Stats returns a copy of the work counters.
func (p *Prover) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// EdgeCount returns the number of edges in the graph.
func (p *Prover) EdgeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, es := range p.edges {
		n += len(es)
	}
	return n
}

// FindProof finds or constructs a proof that subject speaks for
// issuer regarding want, valid at now. It searches existing
// delegations first and completes proofs through closures when the
// chain reaches a controlled principal. When the local graph
// dead-ends and remote sources are registered (AddRemote), it fetches
// candidate delegations from them and retries — the hot local path
// never touches the network.
func (p *Prover) FindProof(subject, issuer principal.Principal, want tag.Tag, now time.Time) (core.Proof, error) {
	proof, err, hasRemotes := func() (core.Proof, error, bool) {
		p.mu.Lock()
		defer p.mu.Unlock()
		pr, e := p.findLocked(subject, issuer, want, now, p.MaxDepth)
		return pr, e, len(p.remotes) > 0
	}()
	if err == nil || !hasRemotes {
		return proof, err
	}
	return p.findRemote(subject, issuer, want, now, err)
}

func (p *Prover) findLocked(subject, issuer principal.Principal, want tag.Tag, now time.Time, depth int) (core.Proof, error) {
	p.stats.Traversals++
	if depth < 0 {
		return nil, fmt.Errorf("prover: search depth exhausted")
	}
	if principal.Equal(subject, issuer) {
		return core.NewReflex(subject), nil
	}

	type reach struct {
		node principal.Principal
		// proof of node => issuer; nil at the issuer itself.
		path core.Proof
		// hops counts graph edges on the path; single-hop results are
		// already edges and need no shortcut recording.
		hops int
	}
	visited := map[string]bool{issuer.Key(): true}
	queue := []reach{{node: issuer}}

	// tryComplete attempts to finish the proof at a reached node.
	tryComplete := func(r reach) (core.Proof, bool) {
		// (a) Reached the subject itself.
		if principal.Equal(r.node, subject) && r.path != nil {
			return r.path, true
		}
		// (b) Reached a final (closure-backed) node: mint the last hop.
		if cl, ok := p.closures[r.node.Key()]; ok {
			minted, err := cl.Delegate(subject, want, core.Between(now.Add(-time.Minute), now.Add(p.MintTTL)))
			if err == nil {
				p.stats.Minted++
				p.addEdgeLocked(minted, false)
				if r.path == nil {
					return minted, true
				}
				if tr, err := core.NewTransitivity(minted, r.path); err == nil {
					return tr, true
				}
			}
		}
		// (c) Quoting reductions.
		if nq, ok := r.node.(principal.Quote); ok {
			if sq, ok := subject.(principal.Quote); ok {
				// Same quotee: X|C => A|C reduces to X => A.
				if principal.Equal(sq.Quotee, nq.Quotee) && !principal.Equal(sq.Quoter, nq.Quoter) {
					if sub, err := p.findLocked(sq.Quoter, nq.Quoter, want, now, depth-1); err == nil {
						lift := core.NewQuoteQuoterMono(nq.Quotee, sub)
						if r.path == nil {
							return lift, true
						}
						if tr, err := core.NewTransitivity(lift, r.path); err == nil {
							return tr, true
						}
					}
				}
				// Same quoter: Q|Y => Q|B reduces to Y => B.
				if principal.Equal(sq.Quoter, nq.Quoter) && !principal.Equal(sq.Quotee, nq.Quotee) {
					if sub, err := p.findLocked(sq.Quotee, nq.Quotee, want, now, depth-1); err == nil {
						lift := core.NewQuoteQuoteeMono(nq.Quoter, sub)
						if r.path == nil {
							return lift, true
						}
						if tr, err := core.NewTransitivity(lift, r.path); err == nil {
							return tr, true
						}
					}
				}
			}
		}
		// (d) Conjunction introduction: prove subject => each part.
		if conj, ok := r.node.(principal.Conj); ok {
			k := conj.K
			if k == 0 {
				k = len(conj.Parts)
			}
			var parts []core.Proof
			for _, member := range conj.Parts {
				if sub, err := p.findLocked(subject, member, want, now, depth-1); err == nil {
					parts = append(parts, sub)
					if len(parts) >= k {
						break
					}
				}
			}
			if len(parts) >= k {
				if ci, err := core.NewConjIntro(conj, parts); err == nil {
					if r.path == nil {
						return ci, true
					}
					if tr, err := core.NewTransitivity(ci, r.path); err == nil {
						return tr, true
					}
				}
			}
		}
		return nil, false
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p.stats.Expanded++
		if proof, ok := tryComplete(cur); ok {
			// Cache multi-hop compositions as shortcut edges (the
			// dotted edges of Figure 2); single-hop results are the
			// edges themselves.
			if cur.hops > 1 || (cur.hops == 1 && !principal.Equal(proof.Conclusion().Subject, cur.node)) {
				p.recordShortcutLocked(proof)
			}
			return proof, nil
		}
		for _, e := range p.edges[cur.node.Key()] {
			if p.DisableShortcuts && e.shortcut {
				continue
			}
			if visited[e.subject.Key()] {
				continue
			}
			ec := e.proof.Conclusion()
			if !tag.Covers(ec.Tag, want) || !ec.Validity.Contains(now) {
				continue
			}
			var path core.Proof
			if cur.path == nil {
				path = e.proof
			} else {
				tr, err := core.NewTransitivity(e.proof, cur.path)
				if err != nil {
					continue
				}
				path = tr
			}
			if e.shortcut {
				p.stats.ShortcutHits++
			}
			visited[e.subject.Key()] = true
			queue = append(queue, reach{node: e.subject, path: path, hops: cur.hops + 1})
		}
	}
	return nil, fmt.Errorf("prover: no proof that %s speaks for %s regarding %s",
		subject, issuer, want)
}

// recordShortcutLocked caches a composed proof as a shortcut edge
// (the dotted edges of Figure 2).
func (p *Prover) recordShortcutLocked(pr core.Proof) {
	if p.DisableShortcuts || len(pr.Children()) == 0 {
		return
	}
	p.addEdgeLocked(pr, true)
}

// Controls reports whether the prover holds a closure for pr.
func (p *Prover) Controls(pr principal.Principal) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.closures[pr.Key()]
	return ok
}

// Delegate issues a fresh delegation from a controlled principal
// without a graph search; the RMI invoker uses this to push authority
// onto a newly established channel (Figure 4 step m).
func (p *Prover) Delegate(from principal.Principal, subject principal.Principal, t tag.Tag, v core.Validity) (core.Proof, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cl, ok := p.closures[from.Key()]
	if !ok {
		return nil, fmt.Errorf("prover: no closure for %s", from)
	}
	minted, err := cl.Delegate(subject, t, v)
	if err != nil {
		return nil, err
	}
	p.stats.Minted++
	p.addEdgeLocked(minted, false)
	return minted, nil
}

// Principals returns every node currently in the graph; for
// inspection and the proxy's delegation UI.
func (p *Prover) Principals() []principal.Principal {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]principal.Principal{}
	for _, es := range p.edges {
		for _, e := range es {
			seen[e.subject.Key()] = e.subject
			seen[e.issuer.Key()] = e.issuer
		}
	}
	for _, c := range p.closures {
		seen[c.Principal().Key()] = c.Principal()
	}
	out := make([]principal.Principal, 0, len(seen))
	for _, pr := range seen {
		out = append(out, pr)
	}
	return out
}
