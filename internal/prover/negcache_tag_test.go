package prover

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// filteredFake wraps fakeSource with server-side tag filtering, the
// way a real directory answers FilteredSource queries: only
// delegations whose tag covers the search tag come back.
type filteredFake struct {
	*fakeSource
}

func (f *filteredFake) filter(ps []core.Proof, err error, want tag.Tag, limit int) ([]core.Proof, error) {
	var out []core.Proof
	for _, p := range ps {
		if !tag.Covers(p.Conclusion().Tag, want) {
			continue
		}
		out = append(out, p)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, err
}

func (f *filteredFake) ByIssuerFor(p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	ps, err := f.ByIssuer(p)
	return f.filter(ps, err, want, limit)
}

func (f *filteredFake) BySubjectFor(p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	ps, err := f.BySubject(p)
	return f.filter(ps, err, want, limit)
}

// TestNegativeCacheIsTagScoped pins the negative cache's key to the
// (query, tag) pair. With a filtered source, "issuer X has nothing"
// is only true FOR THE TAG ASKED; a tag-blind cache would let a
// search for tag A poison a later search for tag B through the same
// issuer, failing proofs whose certificates sit in the directory the
// whole time. The shape below is the minimal reproduction: two
// branches under one root, each serving a different tag, probed one
// after the other within the negative TTL.
func TestNegativeCacheIsTagScoped(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	tagA := tag.Prefix("doc")
	tagB := tag.Prefix("img")

	key := func(seed string) *sfkey.PrivateKey { return sfkey.FromSeed([]byte("negtag-" + seed)) }
	prin := func(k *sfkey.PrivateKey) principal.Principal { return principal.KeyOf(k.Public()) }
	root, org1, org2 := key("root"), key("org1"), key("org2")
	ka, ka2, kb, kb2 := key("a"), key("a2"), key("b"), key("b2")

	mustCert := func(signer *sfkey.PrivateKey, subj principal.Principal, iss principal.Principal, tg tag.Tag) *cert.Cert {
		c, err := cert.Delegate(signer, subj, iss, tg, v)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	src := &filteredFake{fakeSource: newFakeSource()}
	// Two org branches under the root. org1 serves only tag A members,
	// org2 only tag B; both member chains are two hops so discovery
	// must walk the issuer frontier (the subject-side query alone
	// cannot complete them).
	src.add(mustCert(root, prin(org1), prin(root), tag.All()))
	src.add(mustCert(root, prin(org2), prin(root), tag.All()))
	src.add(mustCert(org1, prin(ka), prin(org1), tagA))
	src.add(mustCert(ka, prin(ka2), prin(ka), tagA))
	src.add(mustCert(org2, prin(kb), prin(org2), tagB))
	src.add(mustCert(kb, prin(kb2), prin(kb), tagB))

	p := New()
	p.AddRemote(src)

	// Search 1 (tag A) walks the frontier through both orgs; the
	// filtered query "issued by org2, covering A" legitimately returns
	// nothing and is negative-cached.
	if _, err := p.FindProof(prin(ka2), prin(root), tagA, now); err != nil {
		t.Fatalf("tag A proof: %v", err)
	}
	// Search 2 (tag B) needs that same org2 issuer query — under tag
	// B, where the grant exists. A tag-blind cache suppresses it and
	// this proof fails despite every certificate being available.
	proof, err := p.FindProof(prin(kb2), prin(root), tagB, now)
	if err != nil {
		t.Fatalf("tag B proof poisoned by tag A negative cache: %v", err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, prin(kb2), prin(root), tagB); err != nil {
		t.Fatal(err)
	}
}
