package prover

import (
	"sync"
	"time"

	"repro/internal/core"
)

// InvalidationSource is a certificate directory's invalidation event
// stream (certdir.Client implements it): a long-poll cursor protocol
// that yields the body hashes of certificates the directory stopped
// serving before their expiry — retracted by their publisher or
// voided by a CRL. after is the last cursor consumed (0 on first
// call); wait bounds how long the source may hold the poll open;
// reset reports that the stream could not be served continuously (the
// subscriber lagged past the source's retained tail, or the directory
// restarted), in which case the subscriber cannot know what it missed
// and must invalidate coarsely.
type InvalidationSource interface {
	Events(after uint64, wait time.Duration) (hashes [][]byte, next uint64, reset bool, err error)
}

// Subscription tunables.
const (
	// DefaultEventWait is the long-poll duration per Events call;
	// directories cap waits server-side (certdir caps at 30s), so
	// staying under that keeps every poll productive.
	DefaultEventWait = 25 * time.Second
	// eventRetryBackoff is the pause after a failed poll; an
	// unreachable directory costs one goroutine a retry loop, nothing
	// more — proving never blocks on the subscription.
	eventRetryBackoff = time.Second
)

// Subscription is a running drain of one directory's invalidation
// stream into this prover. Stop halts it; the subscription also stops
// by itself only when Stop is called (an unreachable source is
// retried forever — the directory coming back is exactly the moment
// the prover most needs to hear what changed).
type Subscription struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Done is closed when the drain goroutine has fully exited; callers
// that need the goroutine gone (not just told to stop) wait on it.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Subscribe starts draining src's invalidation events: every hash the
// directory reports is passed through Invalidate, dropping the cached
// edges that rest on the revoked certificate and the cache's verdicts
// for them. This closes the last revocation window of the ROADMAP —
// without it, a prover serves proofs built from fetched certificates
// until they expire, long after the directory stopped vouching for
// them.
//
// cache is the verified-proof cache to evict from (nil means the
// process-wide shared cache; pass one explicitly only in harnesses
// that isolate caches). On a stream reset the subscription cannot
// know which certificates it missed, so it bumps the cache epoch —
// the coarse-but-sound fallback — and continues from the new cursor.
func (p *Prover) Subscribe(src InvalidationSource, cache *core.ProofCache) *Subscription {
	return p.SubscribeWait(src, cache, DefaultEventWait)
}

// SubscribeWait is Subscribe with an explicit long-poll duration per
// Events call; tests use short waits.
func (p *Prover) SubscribeWait(src InvalidationSource, cache *core.ProofCache, wait time.Duration) *Subscription {
	if cache == nil {
		cache = core.SharedProofCache()
	}
	s := &Subscription{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var cursor uint64
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			hashes, next, reset, err := src.Events(cursor, wait)
			if err != nil {
				select {
				case <-s.stop:
					return
				case <-time.After(eventRetryBackoff):
				}
				continue
			}
			if reset {
				// The gap is unknowable: flush every cached verdict and
				// resume from the stream's current position. Edges for
				// certificates revoked inside the gap stay in the graph
				// until they expire or a later event names them, but no
				// VERDICT survives — verifiers re-check revocation on
				// the next presentation, so soundness never rested on
				// this stream to begin with; only freshness does.
				cache.BumpEpoch()
				p.stats.eventResets.Add(1)
			}
			if len(hashes) > 0 {
				p.Invalidate(hashes, cache)
			}
			cursor = next
		}
	}()
	return s
}

// Stop halts the subscription and returns immediately. The drain
// goroutine exits as soon as its in-flight long poll returns (up to
// the poll wait later); it mutates nothing after observing the stop,
// so callers need not wait — use Done to synchronize when they must.
// Waiting here instead would stall every caller's shutdown (the demo,
// a daemon handling SIGTERM) on a long poll that, by design, usually
// has nothing left to say.
func (s *Subscription) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// bodyHashed is the shape of proof leaves that carry a certificate
// body hash — cert.Cert's Hash method — matched structurally so the
// prover need not import the cert package.
type bodyHashed interface{ Hash() []byte }

// Invalidate drops every cached edge whose proof rests on any of the
// given certificate body hashes — the certificate itself and every
// composed shortcut containing it — and evicts those proofs' verdicts
// from the cache (targeted: only the dead chains re-verify, the rest
// of the cache stays warm). It returns the number of edges dropped.
// Directory subscriptions call it; it is also safe to call directly
// when a revocation is learned out of band.
func (p *Prover) Invalidate(bodyHashes [][]byte, cache *core.ProofCache) int {
	if len(bodyHashes) == 0 {
		return 0
	}
	revoked := make(map[string]bool, len(bodyHashes))
	for _, h := range bodyHashes {
		revoked[string(h)] = true
	}
	dropped := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		for ik, es := range sh.edges {
			gone := es.filter(func(e *edge) bool {
				return !dependsOn(e.proof, revoked)
			})
			for _, e := range gone {
				delete(sh.seen, e.hash)
				if cache != nil {
					cache.Evict(e.hash)
				}
				dropped++
			}
			if len(es.all) == 0 {
				delete(sh.edges, ik)
			}
		}
		sh.mu.Unlock()
	}
	p.stats.invalidated.Add(int64(dropped))
	return dropped
}

// dependsOn walks a proof tree looking for a leaf whose certificate
// body hash is in the revoked set.
func dependsOn(pr core.Proof, revoked map[string]bool) bool {
	if bh, ok := pr.(bodyHashed); ok && revoked[string(bh.Hash())] {
		return true
	}
	for _, c := range pr.Children() {
		if dependsOn(c, revoked) {
			return true
		}
	}
	return false
}
