package prover

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/tag"
)

// TestSweepEvictsCachedVerdicts: dropping an expired edge must also
// drop its cached verification verdict, or a cold lookup could keep
// riding a verdict for a certificate the prover no longer holds.
func TestSweepEvictsCachedVerdicts(t *testing.T) {
	alice, bob := mkParty("sweep-verdict-a"), mkParty("sweep-verdict-b")
	c, err := cert.Delegate(alice.priv, bob.pr, alice.pr, tag.All(), core.Until(now.Add(time.Minute)))
	if err != nil {
		t.Fatal(err)
	}

	cache := core.NewProofCache(64)
	p := New()
	p.VerdictCache = cache
	p.AddProof(c)

	// Verify through the prover's verdict cache so the cert's verdict
	// is resident, exactly as a served request would leave it.
	ctx := core.NewVerifyContext()
	ctx.Now = now
	ctx.Cache = cache
	if err := c.Verify(ctx); err != nil {
		t.Fatal(err)
	}
	if !cache.Lookup(c.Sexp().Hash(), now, 0) {
		t.Fatal("verdict not cached after verification")
	}

	// Past expiry, the sweep evicts the edge AND its verdict.
	later := now.Add(2 * time.Minute)
	if n := p.Sweep(later); n != 1 {
		t.Fatalf("Sweep evicted %d edges, want 1", n)
	}
	if cache.Lookup(c.Sexp().Hash(), now, 0) {
		t.Fatal("cached verdict survived the sweep of its edge")
	}
	st := p.Stats()
	if st.Swept != 1 || st.SweptVerdicts != 1 {
		t.Fatalf("stats = swept %d, sweptVerdicts %d; want 1, 1", st.Swept, st.SweptVerdicts)
	}

	// Sweeping again is a no-op: nothing left to evict, counters hold.
	if n := p.Sweep(later); n != 0 {
		t.Fatalf("second Sweep evicted %d edges, want 0", n)
	}
	if st := p.Stats(); st.SweptVerdicts != 1 {
		t.Fatalf("sweptVerdicts = %d after no-op sweep, want 1", st.SweptVerdicts)
	}
}
