package prover

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// fakeSource is an in-memory RemoteSource for tests; queries arrive
// concurrently, so the counter is locked.
type fakeSource struct {
	mu        sync.Mutex
	byIssuer  map[string][]core.Proof
	bySubject map[string][]core.Proof
	queries   int
	err       error
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		byIssuer:  make(map[string][]core.Proof),
		bySubject: make(map[string][]core.Proof),
	}
}

func (f *fakeSource) add(p core.Proof) {
	c := p.Conclusion()
	f.byIssuer[c.Issuer.Key()] = append(f.byIssuer[c.Issuer.Key()], p)
	f.bySubject[c.Subject.Key()] = append(f.bySubject[c.Subject.Key()], p)
}

func (f *fakeSource) queryCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queries
}

func (f *fakeSource) ByIssuer(p principal.Principal) ([]core.Proof, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queries++
	return f.byIssuer[p.Key()], f.err
}

func (f *fakeSource) BySubject(p principal.Principal) ([]core.Proof, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queries++
	return f.bySubject[p.Key()], f.err
}

// remoteChain builds keys k0..kn and certificates k(i+1) =t=> k(i),
// so k(n) speaks for k(0) through n hops.
func remoteChain(t *testing.T, seed string, hops int, tg tag.Tag, v core.Validity) ([]principal.Principal, []*cert.Cert) {
	t.Helper()
	keys := make([]*sfkey.PrivateKey, hops+1)
	prins := make([]principal.Principal, hops+1)
	for i := range keys {
		keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("%s-%d", seed, i)))
		prins[i] = principal.KeyOf(keys[i].Public())
	}
	certs := make([]*cert.Cert, hops)
	for i := 0; i < hops; i++ {
		c, err := cert.Delegate(keys[i], prins[i+1], prins[i], tg, v)
		if err != nil {
			t.Fatal(err)
		}
		certs[i] = c
	}
	return prins, certs
}

func TestRemoteCompletesPartialChain(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	tg := tag.Prefix("doc")
	prins, certs := remoteChain(t, "partial", 3, tg, v)

	p := New()
	src := newFakeSource()
	p.AddRemote(src)
	// The first hop is already local; the rest only the source holds.
	p.AddProof(certs[0])
	src.add(certs[1])
	src.add(certs[2])

	proof, err := p.FindProof(prins[3], prins[0], tg, now)
	if err != nil {
		t.Fatalf("FindProof: %v", err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, prins[3], prins[0], tg); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.RemoteCerts != 2 {
		t.Fatalf("stats = %+v, want 2 remote certs", st)
	}
}

func TestRemoteRejectsUnverifiable(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	prins, certs := remoteChain(t, "forged", 1, tag.All(), v)

	forged := *certs[0]
	forged.Signature = append([]byte(nil), certs[0].Signature...)
	forged.Signature[0] ^= 1

	p := New()
	src := newFakeSource()
	src.add(&forged)
	p.AddRemote(src)

	if _, err := p.FindProof(prins[1], prins[0], tag.All(), now); err == nil {
		t.Fatal("accepted a proof built from a forged certificate")
	}
	st := p.Stats()
	if st.RemoteRejected == 0 {
		t.Fatalf("stats = %+v, forged cert not rejected", st)
	}
	if st.RemoteCerts != 0 || p.EdgeCount() != 0 {
		t.Fatalf("forged cert digested into the graph: %+v", st)
	}
}

func TestRemoteFanoutBound(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	prins, certs := remoteChain(t, "fanout", 3, tag.All(), v)

	src := newFakeSource()
	for _, c := range certs {
		src.add(c)
	}

	// A single query (the issuer end) cannot reach hop 3's subject-side
	// answer... except the subject-axis query is planned only when
	// budget remains, so fanout 1 sees just the first hop.
	p := New()
	p.AddRemote(src)
	p.RemoteFanout = 1
	if _, err := p.FindProof(prins[3], prins[0], tag.All(), now); err == nil {
		t.Fatal("fanout 1 still proved a 3-hop chain")
	}
	if st := p.Stats(); st.RemoteQueries > 1 {
		t.Fatalf("fanout bound ignored: %d queries", st.RemoteQueries)
	}

	// Generous fanout succeeds.
	p2 := New()
	p2.AddRemote(src)
	if _, err := p2.FindProof(prins[3], prins[0], tag.All(), now); err != nil {
		t.Fatalf("default fanout failed: %v", err)
	}
	if st := p2.Stats(); st.RemoteQueries > DefaultRemoteFanout {
		t.Fatalf("spent %d queries, budget %d", st.RemoteQueries, DefaultRemoteFanout)
	}
}

func TestRemoteMergesSources(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	prins, certs := remoteChain(t, "merge", 2, tag.All(), v)

	// Each directory holds half the chain; one of them also errors on
	// every subject query to exercise the degraded path.
	a, b := newFakeSource(), newFakeSource()
	a.add(certs[0])
	b.add(certs[1])

	p := New()
	p.AddRemote(a)
	p.AddRemote(b)
	proof, err := p.FindProof(prins[2], prins[0], tag.All(), now)
	if err != nil {
		t.Fatalf("FindProof across two sources: %v", err)
	}
	if err := proof.Verify(core.NewVerifyContext()); err != nil {
		t.Fatal(err)
	}
	if a.queryCount() == 0 || b.queryCount() == 0 {
		t.Fatalf("queries not spread: a=%d b=%d", a.queryCount(), b.queryCount())
	}
}

func TestRemoteSourceErrorDegrades(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	prins, certs := remoteChain(t, "degraded", 1, tag.All(), v)

	dead := newFakeSource()
	dead.err = fmt.Errorf("directory unreachable")
	live := newFakeSource()
	live.add(certs[0])

	p := New()
	p.AddRemote(dead)
	p.AddRemote(live)
	if _, err := p.FindProof(prins[1], prins[0], tag.All(), now); err != nil {
		t.Fatalf("one dead directory broke discovery: %v", err)
	}
}

// TestRemoteMintsThroughClosure checks discovery composes with the
// paper's closure mechanism: the remote chain reaches a principal the
// prover controls, and the last hop is minted locally.
func TestRemoteMintsThroughClosure(t *testing.T) {
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	tg := tag.All()

	owner := sfkey.FromSeed([]byte("mint-owner"))
	team := sfkey.FromSeed([]byte("mint-team"))
	worker := sfkey.FromSeed([]byte("mint-worker"))
	ownerP := principal.KeyOf(owner.Public())
	teamP := principal.KeyOf(team.Public())
	workerP := principal.KeyOf(worker.Public())

	// The directory knows team =t=> owner; the prover controls team's
	// key and mints team -> worker on demand.
	c, err := cert.Delegate(owner, teamP, ownerP, tg, v)
	if err != nil {
		t.Fatal(err)
	}
	src := newFakeSource()
	src.add(c)

	p := New()
	p.AddRemote(src)
	p.AddClosure(NewKeyClosure(team))

	proof, err := p.FindProof(workerP, ownerP, tg, now)
	if err != nil {
		t.Fatalf("FindProof: %v", err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, workerP, ownerP, tg); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Minted != 1 || st.RemoteCerts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
