package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sexp"

	"repro/internal/certdir"
)

// Wire-layer baselines: what one certificate costs to move through
// the S-expression layer (parse, canonical re-encode, full proof
// round-trip) and what bulk verification costs when every signature
// is cold. Run with
//
//	go test ./internal/bench -bench='Wire|BulkVerify' -benchmem
//
// These are the numbers BENCH_7.json tracks across PRs: the typed
// zero-alloc sexp layer is measured by allocs/op here, the batched
// verifier by the cold-replay throughput.

// wireProof returns the canonical wire form of the realistic 3-cert
// proof chain Table 1 uses.
func wireProof(b *testing.B) []byte {
	b.Helper()
	p, err := realisticProof()
	if err != nil {
		b.Fatal(err)
	}
	return p.Sexp().Canonical()
}

// BenchmarkWireParse measures parsing one proof wire form into a sexp
// tree (no decoding into typed objects).
func BenchmarkWireParse(b *testing.B) {
	wire := wireProof(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sexp.ParseOne(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncode measures canonical-encoding a parsed proof tree.
func BenchmarkWireEncode(b *testing.B) {
	wire := wireProof(b)
	e, err := sexp.ParseOne(wire)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := e.Canonical(); len(out) != len(wire) {
			b.Fatalf("encoded %d bytes, want %d", len(out), len(wire))
		}
	}
}

// BenchmarkWireCertRoundTrip is the cert canonical round-trip: parse
// the proof wire form, decode it into typed proof objects, and render
// it back to canonical bytes — the full path a certificate takes
// through a directory endpoint or a WAL record.
func BenchmarkWireCertRoundTrip(b *testing.B) {
	wire := wireProof(b)
	// The parse borrows a pooled arena — the same pattern the bulk
	// paths (WAL replay, gossip verify-before-index, RMI service) use;
	// the typed decoders copy everything they retain, so the arena can
	// be recycled immediately after decoding.
	a := sexp.GetArena()
	defer sexp.PutArena(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		e, err := a.ParseOne(wire)
		if err != nil {
			b.Fatal(err)
		}
		p, err := core.ProofFromSexp(e)
		if err != nil {
			b.Fatal(err)
		}
		if out := p.Sexp().Canonical(); len(out) != len(wire) {
			b.Fatalf("re-encoded %d bytes, want %d", len(out), len(wire))
		}
	}
}

// BenchmarkBulkVerifyColdReplay1k is bulk verification with every
// signature cold: replaying a 1000-publish WAL into a fresh store
// with the shared proof cache emptied first, so each certificate
// costs a real Ed25519 verification. Reported as ns/op over the whole
// replay; certs/sec is 1000/(ns/op/1e9).
func BenchmarkBulkVerifyColdReplay1k(b *testing.B) {
	c := corpus(b, 1_000)
	dir := b.TempDir()
	st, _, err := certdir.OpenDurable(dir, 0, certdir.SyncNever, c.now)
	if err != nil {
		b.Fatal(err)
	}
	for _, ct := range c.certs {
		if _, err := st.Publish(ct, c.now); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.CloseWAL(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core.SharedProofCache().Reset()
		b.StartTimer()
		re, rec, err := certdir.OpenDurable(dir, 0, certdir.SyncNever, c.now)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Replayed != len(c.certs) {
			b.Fatalf("replayed %d, want %d", rec.Replayed, len(c.certs))
		}
		b.StopTimer()
		if err := re.CloseWAL(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
