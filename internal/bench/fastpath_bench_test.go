package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Fast-path benchmarks for the shared verified-proof cache and the
// sharded prover (the authorization hot path):
//
//	go test -bench=Verify -benchmem ./internal/bench/
//	go test -bench=FindProofParallel ./internal/bench/
//
// VerifyCold re-verifies a 3-hop chain with no cache (every signature
// checked every time); VerifyWarm shares a proof cache across
// verifications, so each iteration is hash-and-lookup. Both report
// sigverifies/op measured by the sfkey counter. FindProofParallel
// runs concurrent provers at 1/4/16 goroutines over a shared graph;
// before the prover was sharded these serialized on one global mutex
// and throughput was flat in the goroutine count. (Scaling only shows
// on multi-core hardware — on a single-CPU runner every variant is
// necessarily flat.)

var benchNow = time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)

// benchChain builds subject =>...=> issuer through hops intermediate
// keys and returns the composed proof.
func benchChain(b *testing.B, hops int) core.Proof {
	b.Helper()
	keys := make([]*sfkey.PrivateKey, hops+1)
	for i := range keys {
		keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("fastpath-%d", i)))
	}
	var proof core.Proof
	for i := 0; i < hops; i++ {
		iss := principal.KeyOf(keys[i].Public())
		sub := principal.KeyOf(keys[i+1].Public())
		c, err := cert.Delegate(keys[i], sub, iss, tag.All(), core.Forever)
		if err != nil {
			b.Fatal(err)
		}
		if proof == nil {
			proof = c
		} else {
			tr, err := core.NewTransitivity(c, proof)
			if err != nil {
				b.Fatal(err)
			}
			proof = tr
		}
	}
	return proof
}

func BenchmarkVerifyCold(b *testing.B) {
	proof := benchChain(b, 3)
	start := sfkey.SigVerifies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := core.NewVerifyContext()
		ctx.Now = benchNow
		if err := proof.Verify(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sfkey.SigVerifies()-start)/float64(b.N), "sigverifies/op")
}

func BenchmarkVerifyWarm(b *testing.B) {
	proof := benchChain(b, 3)
	cache := core.NewProofCache(0)
	// Prime outside the measured region.
	ctx := core.NewVerifyContext()
	ctx.Now = benchNow
	ctx.Cache = cache
	if err := proof.Verify(ctx); err != nil {
		b.Fatal(err)
	}
	start := sfkey.SigVerifies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := core.NewVerifyContext()
		ctx.Now = benchNow
		ctx.Cache = cache
		if err := proof.Verify(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sfkey.SigVerifies()-start)/float64(b.N), "sigverifies/op")
}

// benchProver builds a delegation graph with fan mailbox owners, each
// reachable through a 2-hop chain from one root issuer.
func benchProver(b *testing.B, fan int) (*prover.Prover, principal.Principal, []principal.Principal) {
	b.Helper()
	root := sfkey.FromSeed([]byte("fastpath-root"))
	rootP := principal.KeyOf(root.Public())
	p := prover.New()
	leaves := make([]principal.Principal, fan)
	for i := 0; i < fan; i++ {
		mid := sfkey.FromSeed([]byte(fmt.Sprintf("fastpath-mid-%d", i)))
		leaf := sfkey.FromSeed([]byte(fmt.Sprintf("fastpath-leaf-%d", i)))
		midP, leafP := principal.KeyOf(mid.Public()), principal.KeyOf(leaf.Public())
		c1, err := cert.Delegate(root, midP, rootP, tag.All(), core.Forever)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := cert.Delegate(mid, leafP, midP, tag.All(), core.Forever)
		if err != nil {
			b.Fatal(err)
		}
		p.AddProof(c1)
		p.AddProof(c2)
		leaves[i] = leafP
	}
	return p, rootP, leaves
}

func BenchmarkFindProofParallel(b *testing.B) {
	for _, goroutines := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			p, root, leaves := benchProver(b, 32)
			want := tag.Literal("req")
			// Warm the shortcut cache so iterations measure the hot
			// path, not first-traversal composition.
			for _, leaf := range leaves {
				if _, err := p.FindProof(leaf, root, want, benchNow); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / goroutines
			if per == 0 {
				per = 1
			}
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						leaf := leaves[(g*per+i)%len(leaves)]
						if _, err := p.FindProof(leaf, root, want, benchNow); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// benchHotIssuer builds the adversarial shape for the issuer index: a
// single root holding fan single-hop grants, each restricted to a
// distinct literal tag. Before the edge index grew tag buckets, every
// FindProof against this issuer scanned all fan edges and ran
// tag.Covers on each; with buckets it scans exactly the one grant
// that can cover the query (plus an empty catch-all).
func benchHotIssuer(b *testing.B, fan int) (*prover.Prover, principal.Principal, []principal.Principal, []tag.Tag) {
	b.Helper()
	root := sfkey.FromSeed([]byte("hotissuer-root"))
	rootP := principal.KeyOf(root.Public())
	p := prover.New()
	leaves := make([]principal.Principal, fan)
	tags := make([]tag.Tag, fan)
	for i := 0; i < fan; i++ {
		leaf := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("hotissuer-leaf-%d", i))).Public())
		tg := tag.Literal(fmt.Sprintf("topic-%d", i))
		c, err := cert.Delegate(root, leaf, rootP, tg, core.Forever)
		if err != nil {
			b.Fatal(err)
		}
		p.AddProof(c)
		leaves[i], tags[i] = leaf, tg
	}
	return p, rootP, leaves, tags
}

func BenchmarkFindProofHotIssuer(b *testing.B) {
	for _, fan := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("fan=%d", fan), func(b *testing.B) {
			p, root, leaves, tags := benchHotIssuer(b, fan)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx := i % fan
				if _, err := p.FindProof(leaves[idx], root, tags[idx], benchNow); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
