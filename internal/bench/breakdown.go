package bench

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/tls"
	"net/http"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Table1 regenerates Table 1: the breakdown of time spent in the MAC
// authorization protocol, component by component, against the SSL
// column. Paper totals: SSL 47 ms, Snowflake MAC 110 ms.
func Table1(o Options) (*Figure, error) {
	fig := &Figure{ID: "Table 1", Title: "breakdown of time spent in MAC authorization protocol"}

	// Minimum cost of HTTP GET (C client and server): 5 ms.
	minSrv, err := StartMinHTTP()
	if err != nil {
		return nil, err
	}
	dMin, err := PerOp(o, func() error { return MinHTTPGet(minSrv.Addr(), "/") })
	minSrv.Close()
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "both", Name: "min HTTP GET", PaperMs: 5, MeasuredMs: Ms(dMin)})

	// Java+Jetty overhead for HTTP: 20 ms (std stack minus minimal).
	stdSrv, stdAddr, err := StartStdHTTP()
	if err != nil {
		return nil, err
	}
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	dStd, err := PerOp(o, func() error { return stdGet(hc, "http://"+stdAddr+"/") })
	stdSrv.Close()
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "both", Name: "net/http overhead", PaperMs: 20,
		MeasuredMs: clampNonNeg(Ms(dStd) - Ms(dMin))})

	// Java SSL overhead: 22 ms. Compare keep-alive against keep-alive
	// so the subtraction isolates the record-layer crypto.
	stdSrv2, stdAddr2, err := StartStdHTTP()
	if err != nil {
		return nil, err
	}
	hcKA := &http.Client{Transport: &http.Transport{}}
	dStdKA, err := PerOp(o, func() error { return stdGet(hcKA, "http://"+stdAddr2+"/") })
	stdSrv2.Close()
	if err != nil {
		return nil, err
	}
	certTLS, err := SelfSignedTLS()
	if err != nil {
		return nil, err
	}
	tlsSrv, tlsAddr, err := StartStdTLS(certTLS)
	if err != nil {
		return nil, err
	}
	trTLS := &http.Transport{TLSClientConfig: &tls.Config{InsecureSkipVerify: true}}
	hcTLS := &http.Client{Transport: trTLS}
	dTLS, err := PerOp(o, func() error { return stdGet(hcTLS, "https://"+tlsAddr+"/") })
	tlsSrv.Close()
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "SSL", Name: "TLS overhead", PaperMs: 22,
		MeasuredMs: clampNonNeg(Ms(dTLS) - Ms(dStdKA))})

	// Build a realistic proof (~2 KB transport form) for the parsing
	// and unmarshalling components, matching the paper's "2 KB
	// S-expression" anecdote.
	proof, err := realisticProof()
	if err != nil {
		return nil, err
	}
	wire := proof.Sexp().Transport()
	fig.Notes = append(fig.Notes,
		"proof wire size: "+itoa(len(wire))+" bytes (paper's anecdote: 2 KB)")

	// S-expression parsing: ~20 ms in the paper's slow library.
	dParse, err := PerOp(o, func() error {
		_, err := sexp.ParseOne(wire)
		return err
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "Snowflake", Name: "S-expression parse", PaperMs: 20, MeasuredMs: Ms(dParse)})

	// SPKI object unmarshalling: ~20 ms in the paper.
	parsed, err := sexp.ParseOne(wire)
	if err != nil {
		return nil, err
	}
	dUnmarshal, err := PerOp(o, func() error {
		_, err := core.ProofFromSexp(parsed)
		return err
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "Snowflake", Name: "object unmarshal", PaperMs: 20, MeasuredMs: Ms(dUnmarshal)})

	// Other Snowflake overhead (proof verification, marshalling): 17 ms.
	dOther, err := PerOp(o, func() error {
		ctx := core.NewVerifyContext()
		if err := proof.Verify(ctx); err != nil {
			return err
		}
		_ = proof.Sexp().Canonical()
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "Snowflake", Name: "verify + marshal", PaperMs: 17, MeasuredMs: Ms(dOther)})

	// MAC costs (serialization, hash): 28 ms.
	secret := make([]byte, 32)
	body := Document
	dMAC, err := PerOp(o, func() error {
		req, _ := http.NewRequest(http.MethodGet, "http://bench/pub/x", nil)
		_ = body
		h, _, err := httpauth.RequestPrincipal(req)
		if err != nil {
			return err
		}
		m := hmac.New(sha256.New, secret)
		m.Write(h.Digest)
		m.Sum(nil)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "Snowflake", Name: "MAC costs", PaperMs: 28, MeasuredMs: Ms(dMAC)})

	// Totals: the paper sums 47 (SSL) and 110 (Snowflake MAC); our
	// end-to-end equivalents come from Figure 8's pipelines.
	fig.Rows = append(fig.Rows, Row{Group: "total", Name: "SSL request", PaperMs: 47, MeasuredMs: Ms(dTLS)})
	sfTotal := Ms(dMin) + clampNonNeg(Ms(dStd)-Ms(dMin)) + Ms(dParse) + Ms(dUnmarshal) + Ms(dOther) + Ms(dMAC)
	fig.Rows = append(fig.Rows, Row{Group: "total", Name: "Sf MAC (sum)", PaperMs: 110, MeasuredMs: sfTotal})
	fig.Notes = append(fig.Notes,
		"the paper predicted a well-implemented library should not spend milliseconds parsing short strings (7.4.3); ours does not")
	return fig, nil
}

// realisticProof builds a three-certificate chain with a quoting and
// restriction step, the size and shape of a gateway proof.
func realisticProof() (core.Proof, error) {
	owner := sfkey.FromSeed([]byte("t1-owner"))
	alice := sfkey.FromSeed([]byte("t1-alice"))
	gw := sfkey.FromSeed([]byte("t1-gw"))
	ownerP := principal.KeyOf(owner.Public())
	aliceP := principal.KeyOf(alice.Public())
	gwP := principal.KeyOf(gw.Public())

	grant := tag.MustParse(`(tag (db (owner "alice") (* set select insert update)))`)
	c1, err := cert.Delegate(owner, aliceP, ownerP, grant, core.Forever)
	if err != nil {
		return nil, err
	}
	gq := principal.QuoteOf(gwP, aliceP)
	c2, err := cert.Delegate(alice, gq, aliceP, tag.MustParse(`(tag (db (owner "alice") select))`), core.Forever)
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTransitivity(c2, c1)
	if err != nil {
		return nil, err
	}
	return core.NewRestrict(tr, tag.MustParse(`(tag (db (owner "alice") select))`), core.Validity{})
}

// Setup regenerates the section 7.2 setup costs: 470 ms to establish
// a new Snowflake-authorized RMI connection (the client's public-key
// delegation), and 190 ms for the server to parse and verify a proof
// when its cache is flushed.
func Setup(o Options) (*Figure, error) {
	fig := &Figure{ID: "Setup (7.2)", Title: "connection setup and proof verification costs"}

	w, err := newAuthedRMI(make([]byte, 1024))
	if err != nil {
		return nil, err
	}
	defer w.close()

	// New authorized connection: dial + handshake + challenge +
	// delegation + proof push + first call.
	addr := w.lis.Addr().String()
	issuer := principal.KeyOf(w.serverKey.Public())
	user := principal.KeyOf(w.userKey.Public())
	grant, err := cert.Delegate(w.serverKey, user, issuer, rmi.ObjectTag("file"), core.Forever)
	if err != nil {
		return nil, err
	}
	dConn, err := PerOpCold(o, func() error {
		pv := prover.New()
		pv.AddClosure(prover.NewKeyClosure(w.userKey))
		pv.AddProof(grant)
		id, err := secure.NewIdentity()
		if err != nil {
			return err
		}
		c, err := rmi.Dial(secure.Dialer{ID: id}, addr, pv)
		if err != nil {
			return err
		}
		defer c.Close()
		var reply FileReply
		return c.Call("file", "Read", FileArgs{Name: "f"}, &reply)
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "setup", Name: "new Sf RMI connection", PaperMs: 470, MeasuredMs: Ms(dConn)})

	// Server proof parse + verify with the cache flushed each round.
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	pv.AddProof(grant)
	chPriv := sfkey.FromSeed([]byte("setup-ch"))
	proof, err := pv.FindProof(principal.KeyOf(chPriv.Public()), issuer, rmi.ObjectTag("file"), time.Now())
	if err != nil {
		return nil, err
	}
	wire := proof.Sexp().Transport()
	dVerify, err := PerOp(o, func() error {
		w.srv.ForgetProofs()
		return w.srv.AcceptProof(wire)
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "setup", Name: "server proof parse+verify", PaperMs: 190, MeasuredMs: Ms(dVerify)})
	fig.Notes = append(fig.Notes,
		"the paper's 470 ms reflects the client's public-key delegation; ours is dominated by the same signature plus the channel handshake")
	return fig, nil
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
