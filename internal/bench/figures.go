package bench

import (
	"crypto/tls"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"

	"repro/internal/cert"
	"repro/internal/channel/plain"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// FileService is the Figure 6 remote object: "the test operation is a
// Remote object that returns the contents of a file."
type FileService struct{ Data []byte }

// FileArgs names the file (unused by the fixed-payload bench object).
type FileArgs struct{ Name string }

// FileReply carries the file contents.
type FileReply struct{ Data []byte }

// Read returns the file.
func (f *FileService) Read(args FileArgs, reply *FileReply) error {
	reply.Data = f.Data
	return nil
}

// Fig6 regenerates Figure 6: the cost of introducing Snowflake
// authorization to RMI. Paper: basic RMI 4.8 ms, RMI+ssh 13 ms,
// RMI+Sf 18 ms.
func Fig6(o Options) (*Figure, error) {
	fig := &Figure{ID: "Figure 6", Title: "cost of introducing Snowflake authorization to RMI (warm call)"}
	payload := make([]byte, 4096)

	// basic RMI: plain TCP, open object.
	{
		srv := rmi.NewServer()
		if err := srv.RegisterOpen("file", &FileService{Data: payload}); err != nil {
			return nil, err
		}
		l, err := plain.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(l)
		c, err := rmi.Dial(plain.Dialer{}, l.Addr().String(), nil)
		if err != nil {
			return nil, err
		}
		d, err := PerOp(o, func() error {
			var reply FileReply
			return c.Call("file", "Read", FileArgs{Name: "f"}, &reply)
		})
		c.Close()
		l.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "RMI", Name: "basic", PaperMs: 4.8, MeasuredMs: Ms(d)})
	}

	// RMI over the secure channel, still no authorization.
	{
		serverKey := sfkey.FromSeed([]byte("fig6-ssh"))
		srv := rmi.NewServer()
		if err := srv.RegisterOpen("file", &FileService{Data: payload}); err != nil {
			return nil, err
		}
		l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
		if err != nil {
			return nil, err
		}
		go srv.Serve(l)
		id, err := secure.NewIdentity()
		if err != nil {
			return nil, err
		}
		c, err := rmi.Dial(secure.Dialer{ID: id}, l.Addr().String(), nil)
		if err != nil {
			return nil, err
		}
		d, err := PerOp(o, func() error {
			var reply FileReply
			return c.Call("file", "Read", FileArgs{Name: "f"}, &reply)
		})
		c.Close()
		l.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "RMI", Name: "+ssh", PaperMs: 13, MeasuredMs: Ms(d)})
	}

	// Full Snowflake: secure channel plus checkAuth on every call with
	// a warm proof cache.
	{
		w, err := newAuthedRMI(payload)
		if err != nil {
			return nil, err
		}
		defer w.close()
		// Warm the proof (first call pays the challenge).
		var reply FileReply
		if err := w.client.Call("file", "Read", FileArgs{Name: "f"}, &reply); err != nil {
			return nil, err
		}
		d, err := PerOp(o, func() error {
			var reply FileReply
			return w.client.Call("file", "Read", FileArgs{Name: "f"}, &reply)
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "RMI", Name: "+Snowflake", PaperMs: 18, MeasuredMs: Ms(d)})
	}
	fig.Notes = append(fig.Notes,
		"paper: most Snowflake overhead is the ssh layer; checkAuth adds a cached-proof lookup")
	return fig, nil
}

// authedRMI bundles a protected RMI world for reuse.
type authedRMI struct {
	serverKey *sfkey.PrivateKey
	userKey   *sfkey.PrivateKey
	srv       *rmi.Server
	lis       *secure.Listener
	client    *rmi.Client
	proof     core.Proof
}

func newAuthedRMI(payload []byte) (*authedRMI, error) {
	w := &authedRMI{
		serverKey: sfkey.FromSeed([]byte("fig6-sf-server")),
		userKey:   sfkey.FromSeed([]byte("fig6-sf-user")),
	}
	issuer := principal.KeyOf(w.serverKey.Public())
	w.srv = rmi.NewServer()
	if err := w.srv.Register("file", &FileService{Data: payload}, issuer, nil); err != nil {
		return nil, err
	}
	var err error
	w.lis, err = secure.Listen("127.0.0.1:0", &secure.Identity{Priv: w.serverKey})
	if err != nil {
		return nil, err
	}
	go w.srv.Serve(w.lis)
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	user := principal.KeyOf(w.userKey.Public())
	grant, err := cert.Delegate(w.serverKey, user, issuer, rmi.ObjectTag("file"), core.Forever)
	if err != nil {
		return nil, err
	}
	pv.AddProof(grant)
	w.proof = grant
	id, err := secure.NewIdentity()
	if err != nil {
		return nil, err
	}
	w.client, err = rmi.Dial(secure.Dialer{ID: id}, w.lis.Addr().String(), pv)
	if err != nil {
		return nil, err
	}
	return w, nil
}

func (w *authedRMI) close() {
	if w.client != nil {
		w.client.Close()
	}
	if w.lis != nil {
		w.lis.Close()
	}
}

// Fig7 regenerates Figure 7: HTTP GET cost. Paper: C 4.6 ms, Java
// 25 ms, Snowflake 81 ms.
func Fig7(o Options) (*Figure, error) {
	fig := &Figure{ID: "Figure 7", Title: "cost of introducing Snowflake authorization to HTTP (GET)"}

	// "C": trivial client, minimal server, connection per request.
	{
		s, err := StartMinHTTP()
		if err != nil {
			return nil, err
		}
		d, err := PerOp(o, func() error { return MinHTTPGet(s.Addr(), "/doc") })
		s.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "HTTP", Name: "minimal (C)", PaperMs: 4.6, MeasuredMs: Ms(d)})
	}

	// "Java+Jetty": net/http on both ends.
	{
		srv, addr, err := StartStdHTTP()
		if err != nil {
			return nil, err
		}
		hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		d, err := PerOp(o, func() error { return stdGet(hc, "http://"+addr+"/doc") })
		srv.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "HTTP", Name: "net/http (Java)", PaperMs: 25, MeasuredMs: Ms(d)})
	}

	// Snowflake: the warm case — the identical signed request against
	// the server's verified-proof cache (the 81 ms bar).
	{
		w, err := newProtectedHTTP()
		if err != nil {
			return nil, err
		}
		raw, err := w.authorizedRawRequest("/pub/doc")
		if err != nil {
			return nil, err
		}
		hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		d, err := PerOp(o, func() error { return replay(hc, raw) })
		w.ts.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "HTTP", Name: "Snowflake", PaperMs: 81, MeasuredMs: Ms(d)})
	}
	fig.Notes = append(fig.Notes,
		"paper attributes most Snowflake HTTP overhead to slow SPKI libraries (section 7.4.3)")
	return fig, nil
}

func stdGet(hc *http.Client, url string) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// protectedHTTP is a Snowflake-protected web server with one
// authorized user.
type protectedHTTP struct {
	serverKey *sfkey.PrivateKey
	userKey   *sfkey.PrivateKey
	prot      *httpauth.Protected
	ts        *httptest.Server
	client    *httpauth.Client
}

func newProtectedHTTP() (*protectedHTTP, error) {
	w := &protectedHTTP{
		serverKey: sfkey.FromSeed([]byte("fig7-server")),
		userKey:   sfkey.FromSeed([]byte("fig7-user")),
	}
	issuer := principal.KeyOf(w.serverKey.Public())
	mapper := func(r *http.Request) (principal.Principal, tag.Tag, error) {
		return issuer, httpauth.RequestTag(r.Method, "bench", r.URL.Path), nil
	}
	w.prot = httpauth.NewProtected("bench", mapper, http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Write(Document)
	}))
	w.ts = httptest.NewServer(w.prot)

	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(w.userKey))
	user := principal.KeyOf(w.userKey.Public())
	grant, err := cert.Delegate(w.serverKey, user, issuer,
		httpauth.SubtreeTag([]string{"GET"}, "bench", "/pub/"), core.Forever)
	if err != nil {
		return nil, err
	}
	pv.AddProof(grant)
	w.client = httpauth.NewClient(pv, user)
	return w, nil
}

// rawRequest is a replayable authorized request.
type rawRequest struct {
	url  string
	auth string
}

// authorizedRawRequest performs the challenge flow once and captures
// the signed request for identical replay.
func (w *protectedHTTP) authorizedRawRequest(path string) (*rawRequest, error) {
	var captured string
	w.client.HTTP = &http.Client{Transport: &headerCapture{out: &captured}}
	resp, err := w.client.Get(w.ts.URL + path)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if captured == "" {
		return nil, fmt.Errorf("bench: no authorization captured")
	}
	w.client.HTTP = nil
	return &rawRequest{url: w.ts.URL + path, auth: captured}, nil
}

type headerCapture struct{ out *string }

func (h *headerCapture) RoundTrip(r *http.Request) (*http.Response, error) {
	if a := r.Header.Get("Authorization"); a != "" {
		*h.out = a
	}
	return http.DefaultTransport.RoundTrip(r)
}

func replay(hc *http.Client, raw *rawRequest) error {
	req, err := http.NewRequest(http.MethodGet, raw.url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", raw.auth)
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bench: replay status %d", resp.StatusCode)
	}
	return nil
}

// Fig8 regenerates Figure 8: SSL authentication (black bars) versus
// Snowflake client authorization (gray) and server document
// authentication (white).
func Fig8(o Options) (*Figure, error) {
	fig := &Figure{ID: "Figure 8", Title: "SSL vs Snowflake client authorization vs server document authentication"}

	certTLS, err := SelfSignedTLS()
	if err != nil {
		return nil, err
	}

	// --- SSL group ---------------------------------------------------
	minSrv, err := StartMinTLS(certTLS)
	if err != nil {
		return nil, err
	}
	defer minSrv.Close()
	stdSrv, stdAddr, err := StartStdTLS(certTLS)
	if err != nil {
		return nil, err
	}
	defer stdSrv.Close()

	// Per-request over a standing TLS connection.
	{
		k, err := DialKeepAliveTLS(minSrv.Addr())
		if err != nil {
			return nil, err
		}
		d, err := PerOp(o, k.Get)
		k.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL request", Name: "minimal", PaperMs: 14, MeasuredMs: Ms(d)})
	}
	{
		tr := &http.Transport{TLSClientConfig: &tls.Config{InsecureSkipVerify: true}}
		hc := &http.Client{Transport: tr}
		d, err := PerOp(o, func() error { return stdGet(hc, "https://"+stdAddr+"/") })
		tr.CloseIdleConnections()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL request", Name: "net/http", PaperMs: 47, MeasuredMs: Ms(d)})
	}
	// New connection with a cached session.
	{
		cache := tls.NewLRUClientSessionCache(8)
		TLSGet(minSrv.Addr(), cache) // prime
		d, err := PerOp(o, func() error { return TLSGet(minSrv.Addr(), cache) })
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL cached sess.", Name: "minimal", PaperMs: 140, MeasuredMs: Ms(d)})
		cache2 := tls.NewLRUClientSessionCache(8)
		TLSGet(stdAddr, cache2)
		d, err = PerOp(o, func() error { return TLSGet(stdAddr, cache2) })
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL cached sess.", Name: "net/http", PaperMs: 290, MeasuredMs: Ms(d)})
	}
	// Full handshake per connection.
	{
		d, err := PerOpCold(o, func() error { return TLSGet(minSrv.Addr(), nil) })
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL new sess.", Name: "minimal", PaperMs: 250, MeasuredMs: Ms(d)})
		d, err = PerOpCold(o, func() error { return TLSGet(stdAddr, nil) })
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "SSL new sess.", Name: "net/http", PaperMs: 420, MeasuredMs: Ms(d)})
	}

	// --- Snowflake client authorization (gray bars) -------------------
	{
		w, err := newProtectedHTTP()
		if err != nil {
			return nil, err
		}
		defer w.ts.Close()
		// ident: the identical signed request, server cache warm.
		raw, err := w.authorizedRawRequest("/pub/ident")
		if err != nil {
			return nil, err
		}
		hc := &http.Client{}
		d, err := PerOp(o, func() error { return replay(hc, raw) })
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "Sf client auth", Name: "ident", PaperMs: 81, MeasuredMs: Ms(d)})

		// MAC: amortized protocol, fresh path per request.
		w.client.UseMAC = true
		resp, err := w.client.Get(w.ts.URL + "/pub/mac-prime")
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		seq := 0
		d, err = PerOp(o, func() error {
			seq++
			resp, err := w.client.Get(fmt.Sprintf("%s/pub/mac-%d", w.ts.URL, seq))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("bench: mac status %d", resp.StatusCode)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "Sf client auth", Name: "MAC", PaperMs: 110, MeasuredMs: Ms(d)})

		// sign: a fresh challenged+signed request every time.
		w.client.UseMAC = false
		d, err = PerOp(o, func() error {
			seq++
			resp, err := w.client.Get(fmt.Sprintf("%s/pub/sign-%d", w.ts.URL, seq))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "Sf client auth", Name: "sign", PaperMs: 380, MeasuredMs: Ms(d)})
	}

	// --- Snowflake server document authentication (white bars) --------
	for _, mode := range []struct {
		name    string
		cache   bool
		paperIg float64
		paperVf float64
	}{
		{"cache", true, 99, 160},
		{"sign", false, 430, 490},
	} {
		serverKey := sfkey.FromSeed([]byte("fig8-doc"))
		signer := httpauth.NewDocSigner(serverKey, http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			rw.Write(Document)
		}))
		signer.CacheCerts = mode.cache
		ts := httptest.NewServer(signer)

		// Client ignores the proof.
		hc := &http.Client{}
		seq := 0
		d, err := PerOp(o, func() error {
			seq++
			url := ts.URL + "/doc"
			if !mode.cache {
				url = fmt.Sprintf("%s/doc-%d", ts.URL, seq)
			}
			return stdGet(hc, url)
		})
		if err != nil {
			ts.Close()
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "Sf server auth ignore", Name: mode.name, PaperMs: mode.paperIg, MeasuredMs: Ms(d)})

		// Client verifies the proof.
		pv := prover.New()
		userKey := sfkey.FromSeed([]byte("fig8-doc-user"))
		pv.AddClosure(prover.NewKeyClosure(userKey))
		vc := httpauth.NewClient(pv, principal.KeyOf(userKey.Public()))
		vc.VerifyDocs = true
		vc.ExpectServer = principal.KeyOf(serverKey.Public())
		d, err = PerOp(o, func() error {
			seq++
			url := ts.URL + "/doc"
			if !mode.cache {
				url = fmt.Sprintf("%s/doc-%d", ts.URL, seq)
			}
			resp, err := vc.Get(url)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			return resp.Body.Close()
		})
		ts.Close()
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{Group: "Sf server auth verify", Name: mode.name, PaperMs: mode.paperVf, MeasuredMs: Ms(d)})
	}

	fig.Notes = append(fig.Notes,
		"public-key operations dominate the 'new sess.'/'sign' bars in both protocols (section 7.4.1)",
		"Snowflake cached requests trade within a small factor of SSL requests, as the paper argues an optimized implementation would")
	return fig, nil
}

// NaNMs marks rows the paper does not report.
var NaNMs = math.NaN()
