package bench

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/channel/local"
	"repro/internal/channel/secure"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/rmi"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// The ablation benchmarks quantify design choices DESIGN.md calls
// out; the paper asserts each qualitatively.

// AblateShortcuts quantifies section 4.4's claim that shortcut edges
// "form a cache that eliminates most deep traversals of the graph".
func AblateShortcuts(o Options, chainLen int) (*Figure, error) {
	if chainLen < 2 {
		chainLen = 8
	}
	fig := &Figure{ID: "Ablation: prover shortcuts",
		Title: fmt.Sprintf("repeated proof search over a %d-hop delegation chain", chainLen)}
	build := func(disable bool) (*prover.Prover, principal.Principal, principal.Principal, error) {
		p := prover.New()
		p.DisableShortcuts = disable
		keys := make([]*sfkey.PrivateKey, chainLen+1)
		for i := range keys {
			keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("ablate-%d", i)))
		}
		for i := 0; i < chainLen; i++ {
			c, err := cert.Delegate(keys[i],
				principal.KeyOf(keys[i+1].Public()),
				principal.KeyOf(keys[i].Public()),
				tag.All(), core.Forever)
			if err != nil {
				return nil, nil, nil, err
			}
			p.AddProof(c)
		}
		return p, principal.KeyOf(keys[chainLen].Public()), principal.KeyOf(keys[0].Public()), nil
	}
	now := time.Now()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"with shortcuts", false}, {"no shortcuts", true}} {
		p, subj, iss, err := build(mode.disable)
		if err != nil {
			return nil, err
		}
		if _, err := p.FindProof(subj, iss, tag.All(), now); err != nil {
			return nil, err
		}
		before := p.Stats().Expanded
		d, err := PerOp(o, func() error {
			_, err := p.FindProof(subj, iss, tag.All(), now)
			return err
		})
		if err != nil {
			return nil, err
		}
		per := float64(p.Stats().Expanded-before) / float64(o.runsTimesIters())
		fig.Rows = append(fig.Rows, Row{Group: "prover", Name: mode.name, PaperMs: NaNMs, MeasuredMs: Ms(d)})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: ~%.1f node expansions per search", mode.name, per))
	}
	return fig, nil
}

func (o Options) runsTimesIters() int {
	if o.Runs <= 0 || o.Iters <= 0 {
		o = DefaultOptions
	}
	// PerOp runs one warm-up batch plus o.Runs timed batches, and may
	// retry; this is an estimate for reporting, not a timing input.
	return (o.Runs + 1) * o.Iters
}

// AblateReverify quantifies section 4.3's claim that structured
// proofs "need be verified only once": verification against a
// persistent context (memoized subproofs) versus a fresh context per
// request.
func AblateReverify(o Options) (*Figure, error) {
	fig := &Figure{ID: "Ablation: verify-once",
		Title: "proof verification with and without the verified-proof cache"}
	proof, err := realisticProof()
	if err != nil {
		return nil, err
	}
	persistent := core.NewVerifyContext()
	if err := proof.Verify(persistent); err != nil {
		return nil, err
	}
	d, err := PerOp(o, func() error { return proof.Verify(persistent) })
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "verify", Name: "cached (verify once)", PaperMs: NaNMs, MeasuredMs: Ms(d)})
	d, err = PerOp(o, func() error { return proof.Verify(core.NewVerifyContext()) })
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "verify", Name: "fresh every request", PaperMs: NaNMs, MeasuredMs: Ms(d)})
	return fig, nil
}

// AblateLocalChannel quantifies section 5.2: a colocated client
// avoids encryption and pays only serialization.
func AblateLocalChannel(o Options) (*Figure, error) {
	fig := &Figure{ID: "Ablation: local channel",
		Title: "warm authorized RMI call: secure network channel vs in-process local channel"}
	payload := make([]byte, 4096)

	// Secure channel (reuses the Figure 6 world).
	w, err := newAuthedRMI(payload)
	if err != nil {
		return nil, err
	}
	var reply FileReply
	if err := w.client.Call("file", "Read", FileArgs{Name: "f"}, &reply); err != nil {
		return nil, err
	}
	d, err := PerOp(o, func() error {
		var reply FileReply
		return w.client.Call("file", "Read", FileArgs{Name: "f"}, &reply)
	})
	w.close()
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "channel", Name: "secure (network)", PaperMs: NaNMs, MeasuredMs: Ms(d)})

	// Local channel: same server object, same authorization structure.
	serverKey := sfkey.FromSeed([]byte("ablate-local-server"))
	userKey := sfkey.FromSeed([]byte("ablate-local-user"))
	issuer := principal.KeyOf(serverKey.Public())
	srv := rmi.NewServer()
	if err := srv.Register("file", &FileService{Data: payload}, issuer, nil); err != nil {
		return nil, err
	}
	host := local.NewHost()
	l, err := host.Listen("file-svc", serverKey.Public())
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go srv.Serve(l)
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	user := principal.KeyOf(userKey.Public())
	grant, err := cert.Delegate(serverKey, user, issuer, rmi.ObjectTag("file"), core.Forever)
	if err != nil {
		return nil, err
	}
	pv.AddProof(grant)
	chanKey := sfkey.FromSeed([]byte("ablate-local-chan"))
	c, err := rmi.Dial(local.Dialer{Host: host, Key: chanKey.Public()}, "file-svc", pv)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Call("file", "Read", FileArgs{Name: "f"}, &reply); err != nil {
		return nil, err
	}
	d, err = PerOp(o, func() error {
		var reply FileReply
		return c.Call("file", "Read", FileArgs{Name: "f"}, &reply)
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "channel", Name: "local (in-process)", PaperMs: NaNMs, MeasuredMs: Ms(d)})
	fig.Notes = append(fig.Notes,
		"section 5.2: colocated channels carry no encryption or system-call overhead, only serialization")
	// Deliberate shape assertion: local must beat secure.
	if len(fig.Rows) == 2 && fig.Rows[1].MeasuredMs >= fig.Rows[0].MeasuredMs {
		fig.Notes = append(fig.Notes, "WARNING: local channel did not beat the secure channel on this run")
	}
	return fig, nil
}

// AblateSecureHandshake isolates the channel setup cost the local
// channel avoids entirely.
func AblateSecureHandshake(o Options) (*Figure, error) {
	fig := &Figure{ID: "Ablation: channel setup",
		Title: "establishing a channel: secure handshake vs local pairing"}
	serverKey := sfkey.FromSeed([]byte("hs-server"))
	l, err := secure.Listen("127.0.0.1:0", &secure.Identity{Priv: serverKey})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	id, err := secure.NewIdentity()
	if err != nil {
		return nil, err
	}
	d, err := PerOpCold(o, func() error {
		c, err := (secure.Dialer{ID: id}).Dial(l.Addr().String())
		if err != nil {
			return err
		}
		return c.Close()
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "setup", Name: "secure handshake", PaperMs: NaNMs, MeasuredMs: Ms(d)})

	host := local.NewHost()
	ll, err := host.Listen("svc", serverKey.Public())
	if err != nil {
		return nil, err
	}
	defer ll.Close()
	go func() {
		for {
			c, err := ll.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	d, err = PerOpCold(o, func() error {
		c, err := host.Dial("svc", id.Priv.Public())
		if err != nil {
			return err
		}
		return c.Close()
	})
	if err != nil {
		return nil, err
	}
	fig.Rows = append(fig.Rows, Row{Group: "setup", Name: "local pairing", PaperMs: NaNMs, MeasuredMs: Ms(d)})
	return fig, nil
}
