package bench

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"strings"
	"time"
)

// The baseline servers of section 7: a minimal hand-rolled HTTP
// server standing in for the paper's C client + Apache pair, net/http
// standing in for the convenient Java + Jetty pair, and crypto/tls
// standing in for SSL (PureTLS/OpenSSL).

// Document is the payload every baseline serves.
var Document = []byte(strings.Repeat("snowflake end-to-end authorization\n", 30))

// --- "C" baseline: raw-TCP minimal HTTP --------------------------------

// MinHTTPServer is a minimal HTTP/1.0 server: one request per
// connection, no parsing beyond the request line.
type MinHTTPServer struct {
	l net.Listener
}

// StartMinHTTP serves Document on a loopback port.
func StartMinHTTP() (*MinHTTPServer, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &MinHTTPServer{l: l}
	go s.loop()
	return s, nil
}

func (s *MinHTTPServer) loop() {
	for {
		c, err := s.l.Accept()
		if err != nil {
			return
		}
		go serveMinConn(c)
	}
}

func serveMinConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		// Swallow headers until the blank line.
		for {
			h, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if h == "\r\n" || h == "\n" {
				break
			}
		}
		if !strings.HasPrefix(line, "GET") {
			fmt.Fprintf(c, "HTTP/1.0 400 Bad Request\r\n\r\n")
			return
		}
		fmt.Fprintf(c, "HTTP/1.0 200 OK\r\nContent-Length: %d\r\nConnection: close\r\n\r\n", len(Document))
		c.Write(Document)
		return
	}
}

// Addr returns the listen address.
func (s *MinHTTPServer) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *MinHTTPServer) Close() error { return s.l.Close() }

// MinHTTPGet is the "trivial C client": a raw socket, one GET.
func MinHTTPGet(addr, path string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(c, "GET %s HTTP/1.0\r\nHost: bench\r\n\r\n", path)
	_, err = io.Copy(io.Discard, c)
	return err
}

// --- "Java+Jetty" baseline: net/http -------------------------------------

// StartStdHTTP serves Document through net/http.
func StartStdHTTP() (*http.Server, string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(Document)
	})}
	go srv.Serve(l)
	return srv, l.Addr().String(), nil
}

// --- SSL baseline: crypto/tls ---------------------------------------------

// SelfSignedTLS builds an ephemeral server certificate.
func SelfSignedTLS() (tls.Certificate, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "bench"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: priv}, nil
}

// TLSServer is the minimal server over TLS (the "Apache+SSL" analog).
type TLSServer struct {
	l net.Listener
}

// StartMinTLS serves Document over TLS with hand-rolled HTTP.
func StartMinTLS(cert tls.Certificate) (*TLSServer, error) {
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	l, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, err
	}
	s := &TLSServer{l: l}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go serveKeepAlive(c)
		}
	}()
	return s, nil
}

// serveKeepAlive answers GETs on one connection until it closes.
func serveKeepAlive(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		for {
			h, err := br.ReadString('\n')
			if err != nil {
				return
			}
			if h == "\r\n" || h == "\n" {
				break
			}
		}
		if !strings.HasPrefix(line, "GET") {
			return
		}
		oneShot := strings.Contains(line, "HTTP/1.0")
		proto := "HTTP/1.1"
		if oneShot {
			proto = "HTTP/1.0"
		}
		fmt.Fprintf(c, "%s 200 OK\r\nContent-Length: %d\r\n\r\n", proto, len(Document))
		if _, err := c.Write(Document); err != nil {
			return
		}
		if oneShot {
			return
		}
	}
}

// Addr returns the listen address.
func (s *TLSServer) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *TLSServer) Close() error { return s.l.Close() }

// StartStdTLS serves Document through net/http over TLS (the
// "Jetty+SSL" analog).
func StartStdTLS(cert tls.Certificate) (*http.Server, string, error) {
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	l, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(Document)
	})}
	go srv.Serve(l)
	return srv, l.Addr().String(), nil
}

// TLSGet performs one GET over a dedicated TLS connection; cache
// non-nil enables session resumption ("cached sess."), nil pays the
// full handshake ("new sess.").
func TLSGet(addr string, cache tls.ClientSessionCache) error {
	cfg := &tls.Config{InsecureSkipVerify: true, ClientSessionCache: cache}
	c, err := tls.Dial("tcp", addr, cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(c, "GET / HTTP/1.0\r\nHost: bench\r\n\r\n")
	_, err = io.Copy(io.Discard, c)
	if err == io.ErrUnexpectedEOF {
		err = nil
	}
	return err
}

// KeepAliveTLSConn opens one long-lived TLS connection for
// per-request measurements.
type KeepAliveTLSConn struct {
	c  *tls.Conn
	br *bufio.Reader
}

// DialKeepAliveTLS connects once.
func DialKeepAliveTLS(addr string) (*KeepAliveTLSConn, error) {
	c, err := tls.Dial("tcp", addr, &tls.Config{InsecureSkipVerify: true})
	if err != nil {
		return nil, err
	}
	return &KeepAliveTLSConn{c: c, br: bufio.NewReader(c)}, nil
}

// Get issues one GET on the standing connection.
func (k *KeepAliveTLSConn) Get() error {
	if _, err := fmt.Fprintf(k.c, "GET / HTTP/1.1\r\nHost: bench\r\n\r\n"); err != nil {
		return err
	}
	// Read the status line and headers, then the body by length.
	var contentLen int
	line, err := k.br.ReadString('\n')
	if err != nil {
		return err
	}
	if !strings.Contains(line, "200") {
		return fmt.Errorf("bench: bad status %q", line)
	}
	for {
		h, err := k.br.ReadString('\n')
		if err != nil {
			return err
		}
		if h == "\r\n" || h == "\n" {
			break
		}
		if n, ok := strings.CutPrefix(h, "Content-Length: "); ok {
			fmt.Sscanf(n, "%d", &contentLen)
		}
	}
	_, err = io.CopyN(io.Discard, k.br, int64(contentLen))
	return err
}

// Close tears the connection down.
func (k *KeepAliveTLSConn) Close() error { return k.c.Close() }
