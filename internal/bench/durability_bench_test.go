package bench

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/certdir"
)

// Durability and replication baselines for the certificate directory:
// what the write-ahead log costs per publish under each fsync policy,
// how fast a restart replays the log, and what one anti-entropy round
// costs both when converged (digest exchange only) and when catching
// up. Run with
//
//	go test ./internal/bench -bench='WAL|Gossip' -benchmem
//
// CI uploads the output as an artifact so the trajectory accumulates.

// durableStore opens a WAL-backed store in a fresh temp dir.
func durableStore(b *testing.B, policy certdir.SyncPolicy, now time.Time) *certdir.Store {
	b.Helper()
	st, _, err := certdir.OpenDurable(b.TempDir(), 0, policy, now)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchWALPublish measures Publish with journaling under one fsync
// policy; compare against BenchmarkCertdirPublish (memory-only) for
// the WAL's overhead.
func benchWALPublish(b *testing.B, policy certdir.SyncPolicy) {
	c := corpus(b, 10_000)
	st := durableStore(b, policy, c.now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(c.certs) == 0 {
			b.StopTimer()
			if err := st.CloseWAL(); err != nil {
				b.Fatal(err)
			}
			st = durableStore(b, policy, c.now)
			b.StartTimer()
		}
		if _, err := st.Publish(c.certs[i%len(c.certs)], c.now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.CloseWAL(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCertdirWALPublishSyncAlways(b *testing.B) { benchWALPublish(b, certdir.SyncAlways) }
func BenchmarkCertdirWALPublishSyncNever(b *testing.B)  { benchWALPublish(b, certdir.SyncNever) }

// BenchmarkCertdirWALReplay10k is the restart cost: replaying a
// 10k-publish log into a fresh store, signature re-verification
// included (replay trusts the disk no more than publish trusts the
// network).
func BenchmarkCertdirWALReplay10k(b *testing.B) {
	c := corpus(b, 10_000)
	dir := b.TempDir()
	st, _, err := certdir.OpenDurable(dir, 0, certdir.SyncNever, c.now)
	if err != nil {
		b.Fatal(err)
	}
	for _, ct := range c.certs {
		if _, err := st.Publish(ct, c.now); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.CloseWAL(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, rec, err := certdir.OpenDurable(dir, 0, certdir.SyncNever, c.now)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Replayed != len(c.certs) {
			b.Fatalf("replayed %d, want %d", rec.Replayed, len(c.certs))
		}
		b.StopTimer()
		if err := re.CloseWAL(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkCertdirGossipDigests is the per-round cost a converged peer
// imposes: summarizing 10k stored certificates into partition digests.
func BenchmarkCertdirGossipDigests(b *testing.B) {
	c := corpus(b, 10_000)
	st := populate(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := st.Digests(); len(ds) == 0 {
			b.Fatal("no digests")
		}
	}
}

// BenchmarkCertdirGossipRoundConverged is a full anti-entropy round
// between two identical directories over loopback HTTP: the
// steady-state overhead of replication (digest exchange, no pulls).
func BenchmarkCertdirGossipRoundConverged(b *testing.B) {
	c := corpus(b, 10_000)
	peer := populate(b, c)
	ts := httptest.NewServer(certdir.NewService(peer))
	defer ts.Close()
	local := populate(b, c)
	rep := certdir.NewReplicator(local, []*certdir.Client{certdir.NewClient(ts.URL)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pulled, err := rep.Converge()
		if err != nil {
			b.Fatal(err)
		}
		if pulled != 0 {
			b.Fatalf("converged peers pulled %d", pulled)
		}
	}
}

// BenchmarkCertdirGossipCatchUp1k is the repair path: an empty
// directory pulling 1000 certificates from a peer in one round
// (digests, hash-list diff, batched fetch, re-verification, indexing).
func BenchmarkCertdirGossipCatchUp1k(b *testing.B) {
	c := corpus(b, 1_000)
	peer := populate(b, c)
	ts := httptest.NewServer(certdir.NewService(peer))
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		local := certdir.NewStore(0)
		rep := certdir.NewReplicator(local, []*certdir.Client{certdir.NewClient(ts.URL)})
		pulled, err := rep.Converge()
		if err != nil {
			b.Fatal(err)
		}
		if pulled != len(c.certs) {
			b.Fatalf("pulled %d, want %d", pulled, len(c.certs))
		}
	}
}

// BenchmarkCertdirWALCompact10k rewrites a 10k-certificate log: the
// cost Sweep and EvictRevoked pay whenever they drop entries.
func BenchmarkCertdirWALCompact10k(b *testing.B) {
	c := corpus(b, 10_000)
	st := durableStore(b, certdir.SyncNever, c.now)
	for _, ct := range c.certs {
		if _, err := st.Publish(ct, c.now); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.CompactWAL(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.CloseWAL(); err != nil {
		b.Fatal(err)
	}
	if ws, ok := st.WALStats(); !ok || ws.Compactions < int64(b.N) {
		b.Fatalf("compactions %v", ws)
	}
}
