package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
)

// BENCH_7.json records the wire-layer and bulk-verification numbers
// this PR's acceptance criteria are stated against: parse/encode
// bytes and allocs per op, cold/warm verify signature counts, and
// the WAL-replay / gossip-round throughput of the batched verifier.
// The emitter is gated on BENCH7_OUT so ordinary `go test ./...`
// stays fast; CI's bench-smoke job sets it and uploads the artifact:
//
//	BENCH7_OUT=BENCH_7.json go test -run TestEmitBench7JSON ./internal/bench/
//
// Each entry carries the pre-PR baseline (measured on the same
// single-core 2.70 GHz Xeon runner before the typed sexp layer and
// BatchVerifier landed) so the delta is visible without digging
// through git history.

// bench7Baseline is the pre-PR measurement a metric is compared to.
type bench7Baseline struct {
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	SigVerifiesOp float64 `json:"sigverifies_per_op,omitempty"`
}

// bench7Entry is one benchmark's measurement plus its baseline.
type bench7Entry struct {
	NsPerOp       float64         `json:"ns_per_op"`
	BytesPerOp    int64           `json:"bytes_per_op"`
	AllocsPerOp   int64           `json:"allocs_per_op"`
	SigVerifiesOp float64         `json:"sigverifies_per_op,omitempty"`
	Baseline      *bench7Baseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is baseline ns/op divided by measured ns/op
	// (>1 means faster than the pre-PR code).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

type bench7Report struct {
	Schema     string                 `json:"schema"`
	PR         int                    `json:"pr"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	Benchmarks map[string]bench7Entry `json:"benchmarks"`
}

// bench7Baselines are the pre-PR numbers (recursive parser, byte-tree
// sexp model, one ed25519.Verify per certificate, 8192-entry proof
// cache) on the CI-class single-core runner.
var bench7Baselines = map[string]bench7Baseline{
	"WireParse":              {NsPerOp: 12195, BytesPerOp: 10376, AllocsPerOp: 253},
	"WireEncode":             {NsPerOp: 1904, BytesPerOp: 1984, AllocsPerOp: 5},
	"WireCertRoundTrip":      {NsPerOp: 32017, BytesPerOp: 26328, AllocsPerOp: 552},
	"VerifyCold":             {NsPerOp: 240_000, AllocsPerOp: 711, SigVerifiesOp: 3},
	"VerifyWarm":             {NsPerOp: 19_600, AllocsPerOp: 222, SigVerifiesOp: 0},
	"BulkVerifyColdReplay1k": {NsPerOp: 92_900_000, BytesPerOp: 17_200_000, AllocsPerOp: 316_000},
	"CertdirWALReplay10k":    {NsPerOp: 636_700_000, BytesPerOp: 152_700_000, AllocsPerOp: 2_870_000},
	"CertdirGossipCatchUp1k": {NsPerOp: 62_300_000, BytesPerOp: 22_300_000, AllocsPerOp: 362_000},
}

// TestEmitBench7JSON measures the tracked benchmarks and writes the
// report to $BENCH7_OUT. Skipped when the variable is unset.
func TestEmitBench7JSON(t *testing.T) {
	out := os.Getenv("BENCH7_OUT")
	if out == "" {
		t.Skip("set BENCH7_OUT=<path> to emit BENCH_7.json")
	}
	// Fixed order, small benchmarks first: the bulk benchmarks cache
	// multi-megabyte corpora for the life of the process, and running
	// them first would tax the wire microbenchmarks with GC pressure
	// they don't deserve.
	benchmarks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"WireParse", BenchmarkWireParse},
		{"WireEncode", BenchmarkWireEncode},
		{"WireCertRoundTrip", BenchmarkWireCertRoundTrip},
		{"VerifyCold", BenchmarkVerifyCold},
		{"VerifyWarm", BenchmarkVerifyWarm},
		{"BulkVerifyColdReplay1k", BenchmarkBulkVerifyColdReplay1k},
		{"CertdirWALReplay10k", BenchmarkCertdirWALReplay10k},
		{"CertdirGossipCatchUp1k", BenchmarkCertdirGossipCatchUp1k},
	}
	report := bench7Report{
		Schema:     "snowflake-bench/v1",
		PR:         7,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: make(map[string]bench7Entry, len(benchmarks)),
	}
	for _, bm := range benchmarks {
		name, fn := bm.name, bm.fn
		// The shared proof cache carries state between benchmarks
		// (deliberately, inside each: warm replay is a warm-cache
		// measurement) but must not leak across them.
		core.SharedProofCache().Reset()
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", name)
		}
		e := bench7Entry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if sv, ok := r.Extra["sigverifies/op"]; ok {
			e.SigVerifiesOp = sv
		}
		if base, ok := bench7Baselines[name]; ok {
			b := base
			e.Baseline = &b
			if e.NsPerOp > 0 {
				e.SpeedupVsBaseline = base.NsPerOp / e.NsPerOp
			}
		}
		report.Benchmarks[name] = e
		t.Logf("%s: %.0f ns/op, %d B/op, %d allocs/op (speedup %.2fx)",
			name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.SpeedupVsBaseline)
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
