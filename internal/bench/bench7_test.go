package bench

import (
	"os"
	"testing"

	"repro/internal/core"
)

// BENCH_7.json records the wire-layer and bulk-verification numbers
// this PR's acceptance criteria are stated against: parse/encode
// bytes and allocs per op, cold/warm verify signature counts, and
// the WAL-replay / gossip-round throughput of the batched verifier.
// The emitter is gated on BENCH7_OUT so ordinary `go test ./...`
// stays fast; CI's bench-smoke job sets it and uploads the artifact:
//
//	BENCH7_OUT=BENCH_7.json go test -run TestEmitBench7JSON ./internal/bench/
//
// Each entry carries the pre-PR baseline (measured on the same
// single-core 2.70 GHz Xeon runner before the typed sexp layer and
// BatchVerifier landed) so the delta is visible without digging
// through git history.

// bench7Baselines are the pre-PR numbers (recursive parser, byte-tree
// sexp model, one ed25519.Verify per certificate, 8192-entry proof
// cache) on the CI-class single-core runner.
var bench7Baselines = map[string]Baseline{
	"WireParse":              {NsPerOp: 12195, BytesPerOp: 10376, AllocsPerOp: 253},
	"WireEncode":             {NsPerOp: 1904, BytesPerOp: 1984, AllocsPerOp: 5},
	"WireCertRoundTrip":      {NsPerOp: 32017, BytesPerOp: 26328, AllocsPerOp: 552},
	"VerifyCold":             {NsPerOp: 240_000, AllocsPerOp: 711, SigVerifiesOp: 3},
	"VerifyWarm":             {NsPerOp: 19_600, AllocsPerOp: 222, SigVerifiesOp: 0},
	"BulkVerifyColdReplay1k": {NsPerOp: 92_900_000, BytesPerOp: 17_200_000, AllocsPerOp: 316_000},
	"CertdirWALReplay10k":    {NsPerOp: 636_700_000, BytesPerOp: 152_700_000, AllocsPerOp: 2_870_000},
	"CertdirGossipCatchUp1k": {NsPerOp: 62_300_000, BytesPerOp: 22_300_000, AllocsPerOp: 362_000},
}

// TestEmitBench7JSON measures the tracked benchmarks and writes the
// report to $BENCH7_OUT. Skipped when the variable is unset.
func TestEmitBench7JSON(t *testing.T) {
	out := os.Getenv("BENCH7_OUT")
	if out == "" {
		t.Skip("set BENCH7_OUT=<path> to emit BENCH_7.json")
	}
	// Fixed order, small benchmarks first: the bulk benchmarks cache
	// multi-megabyte corpora for the life of the process, and running
	// them first would tax the wire microbenchmarks with GC pressure
	// they don't deserve.
	benchmarks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"WireParse", BenchmarkWireParse},
		{"WireEncode", BenchmarkWireEncode},
		{"WireCertRoundTrip", BenchmarkWireCertRoundTrip},
		{"VerifyCold", BenchmarkVerifyCold},
		{"VerifyWarm", BenchmarkVerifyWarm},
		{"BulkVerifyColdReplay1k", BenchmarkBulkVerifyColdReplay1k},
		{"CertdirWALReplay10k", BenchmarkCertdirWALReplay10k},
		{"CertdirGossipCatchUp1k", BenchmarkCertdirGossipCatchUp1k},
	}
	report := NewReport(7)
	for _, bm := range benchmarks {
		name, fn := bm.name, bm.fn
		// The shared proof cache carries state between benchmarks
		// (deliberately, inside each: warm replay is a warm-cache
		// measurement) but must not leak across them.
		core.SharedProofCache().Reset()
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", name)
		}
		e := Entry{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if sv, ok := r.Extra["sigverifies/op"]; ok {
			e.SigVerifiesOp = sv
		}
		if base, ok := bench7Baselines[name]; ok {
			e.SetBaseline(base)
		}
		report.Benchmarks[name] = e
		t.Logf("%s: %.0f ns/op, %d B/op, %d allocs/op (speedup %.2fx)",
			name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.SpeedupVsBaseline)
	}
	if err := report.WriteFile(out); err != nil {
		t.Fatal(err)
	}
}
