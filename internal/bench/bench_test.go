package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

// The unit tests exercise every experiment at QuickOptions scale:
// they assert the harness runs end to end and that the robust shape
// properties hold; the full-scale comparisons live behind
// -short-skipped tests and the sf-bench binary.

func TestPerOpBasics(t *testing.T) {
	n := 0
	d, err := PerOp(QuickOptions, func() error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	// warm-up + runs batches at minimum.
	min := (QuickOptions.Runs + 1) * QuickOptions.Iters
	if n < min {
		t.Fatalf("ran %d ops, want >= %d", n, min)
	}
	if _, err := PerOp(QuickOptions, func() error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("op error swallowed")
	}
}

func TestPerOpColdRunsWithoutWarmup(t *testing.T) {
	n := 0
	if _, err := PerOpCold(QuickOptions, func() error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != QuickOptions.Runs*QuickOptions.Iters {
		t.Fatalf("cold ran %d ops", n)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3x + 2.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-2) > 1e-9 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
}

func TestRenderAndShape(t *testing.T) {
	f := &Figure{ID: "T", Title: "test",
		Rows: []Row{
			{Group: "g", Name: "fast", PaperMs: 10, MeasuredMs: 1},
			{Group: "g", Name: "slow", PaperMs: 20, MeasuredMs: 2},
		}}
	out := f.Render()
	if !strings.Contains(out, "fast") || !strings.Contains(out, "2.0") {
		t.Fatalf("render: %s", out)
	}
	if v := f.CheckShape(true); len(v) != 0 {
		t.Fatalf("false violations: %v", v)
	}
	f.Rows[1].MeasuredMs = 0.1 // contradicts the paper ordering
	if v := f.CheckShape(true); len(v) == 0 {
		t.Fatal("violation not detected")
	}
}

func TestFig6Runs(t *testing.T) {
	fig, err := Fig6(QuickOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.MeasuredMs <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
	}
	// Shape assertions live in TestMACProtocolShape and the sf-bench
	// -shape flag; at quick scale individual bars are too noisy to
	// compare.
}

func TestFig7Runs(t *testing.T) {
	fig, err := Fig7(QuickOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.MeasuredMs <= 0 {
			t.Errorf("%s: no measurement", r.Name)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	fig, err := Fig8(QuickOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 13 {
		t.Fatalf("rows = %d, want the 13 bars of Figure 8", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.MeasuredMs <= 0 {
			t.Errorf("%s/%s: no measurement", r.Group, r.Name)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	fig, err := Table1(QuickOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 9 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// The proof wire form should be in the 2 KB ballpark the paper
	// mentions.
	found := false
	for _, n := range fig.Notes {
		if strings.Contains(n, "proof wire size") {
			found = true
		}
	}
	if !found {
		t.Error("wire size note missing")
	}
}

func TestSetupRuns(t *testing.T) {
	fig, err := Setup(Options{Runs: 1, Iters: 3, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Cold connection setup must cost more than the per-call paths of
	// Figure 6 — the 470 ms vs 18 ms shape.
	if fig.Rows[0].MeasuredMs <= 0 || fig.Rows[1].MeasuredMs <= 0 {
		t.Fatal("no measurements")
	}
}

func TestAblationsRun(t *testing.T) {
	if _, err := AblateShortcuts(QuickOptions, 6); err != nil {
		t.Fatal(err)
	}
	fig, err := AblateReverify(QuickOptions)
	if err != nil {
		t.Fatal(err)
	}
	// Verify-once must beat fresh verification (the only timing
	// assertion robust at quick scale: cached does no signature
	// checks at all).
	if fig.Rows[0].MeasuredMs > fig.Rows[1].MeasuredMs {
		t.Errorf("verify-once (%v) slower than fresh (%v)",
			fig.Rows[0].MeasuredMs, fig.Rows[1].MeasuredMs)
	}
	if _, err := AblateLocalChannel(QuickOptions); err != nil {
		t.Fatal(err)
	}
	if _, err := AblateSecureHandshake(QuickOptions); err != nil {
		t.Fatal(err)
	}
}

func TestMACProtocolShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; run without -short")
	}
	o := Options{Runs: 3, Iters: 60, MaxRetries: 1}
	fig, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	var mac, sign float64
	for _, r := range fig.Rows {
		if r.Group == "Sf client auth" {
			switch r.Name {
			case "MAC":
				mac = r.MeasuredMs
			case "sign":
				sign = r.MeasuredMs
			}
		}
	}
	t.Logf("MAC=%.3fms sign=%.3fms", mac, sign)
	if mac >= sign {
		t.Errorf("shape: MAC (%.3f) should undercut sign (%.3f), as in the paper (110 vs 380)", mac, sign)
	}
}

func TestBaselineServers(t *testing.T) {
	s, err := StartMinHTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := MinHTTPGet(s.Addr(), "/x"); err != nil {
		t.Fatal(err)
	}
	cert, err := SelfSignedTLS()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := StartMinTLS(cert)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := TLSGet(ts.Addr(), nil); err != nil {
		t.Fatal(err)
	}
	k, err := DialKeepAliveTLS(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	for i := 0; i < 3; i++ {
		if err := k.Get(); err != nil {
			t.Fatalf("keep-alive get %d: %v", i, err)
		}
	}
}

func TestDocumentNonEmpty(t *testing.T) {
	if len(Document) == 0 {
		t.Fatal("empty benchmark document")
	}
	var _ io.Reader // keep io imported alongside future use
	_ = time.Now
}
