// Package bench is the measurement harness that regenerates every
// table and figure of the paper's evaluation (section 7). It follows
// the experimental method of section 7.1: repeated runs with the
// first discarded so caches are warm (except where setup cost is the
// object of measurement), re-running when the coefficient of
// variation exceeds 0.1, and reporting values to two significant
// figures.
//
// Absolute numbers shift by orders of magnitude between a 270 MHz
// Ultra 5 on 10 Mbps Ethernet and a modern machine on loopback; the
// harness therefore reports, next to each measurement, the paper's
// value and the within-figure ratios, which are the reproducible
// shape (DESIGN.md section 3).
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Row is one bar or line of a figure/table.
type Row struct {
	// Group labels the cluster ("SSL", "Sf client auth", ...).
	Group string
	// Name labels the bar.
	Name string
	// PaperMs is the paper's reported value in milliseconds (NaN when
	// the paper gives none).
	PaperMs float64
	// MeasuredMs is our measured per-operation value in milliseconds.
	MeasuredMs float64
}

// Figure is a named collection of rows.
type Figure struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Options tunes measurement effort; the benchmark binary uses larger
// values than the unit tests.
type Options struct {
	// Runs is the number of timed runs (after the discarded warm-up).
	Runs int
	// Iters is the number of operations per run.
	Iters int
	// MaxRetries bounds CoV-triggered re-runs.
	MaxRetries int
}

// DefaultOptions mirror section 7.1 at laptop scale.
var DefaultOptions = Options{Runs: 5, Iters: 30, MaxRetries: 3}

// QuickOptions keep unit tests fast.
var QuickOptions = Options{Runs: 3, Iters: 5, MaxRetries: 1}

// PerOp times op following the paper's method and returns the mean
// per-operation cost. The first run is discarded so caches are warm;
// when the coefficient of variation across runs exceeds 0.1 the
// experiment re-runs (section 7.1).
func PerOp(o Options, op func() error) (time.Duration, error) {
	if o.Runs <= 0 || o.Iters <= 0 {
		o = DefaultOptions
	}
	for attempt := 0; ; attempt++ {
		// Warm-up run, discarded.
		if err := runBatch(o.Iters, op); err != nil {
			return 0, err
		}
		samples := make([]float64, 0, o.Runs)
		for r := 0; r < o.Runs; r++ {
			start := time.Now()
			if err := runBatch(o.Iters, op); err != nil {
				return 0, err
			}
			samples = append(samples, float64(time.Since(start))/float64(o.Iters))
		}
		mean, cov := meanCoV(samples)
		if cov <= 0.1 || attempt >= o.MaxRetries {
			return time.Duration(mean), nil
		}
	}
}

// PerOpCold measures an operation whose setup cost is the object:
// no warm-up, each iteration pays the cold path.
func PerOpCold(o Options, op func() error) (time.Duration, error) {
	if o.Runs <= 0 || o.Iters <= 0 {
		o = DefaultOptions
	}
	n := o.Runs * o.Iters
	start := time.Now()
	if err := runBatch(n, op); err != nil {
		return 0, err
	}
	return time.Duration(float64(time.Since(start)) / float64(n)), nil
}

func runBatch(n int, op func() error) error {
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return err
		}
	}
	return nil
}

func meanCoV(samples []float64) (mean, cov float64) {
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if mean == 0 {
		return 0, 0
	}
	var varsum float64
	for _, s := range samples {
		d := s - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(samples)))
	return mean, sd / mean
}

// LinearFit returns slope and intercept of a least-squares fit; the
// bandwidth experiments separate copy cost (slope) from setup cost
// (intercept) this way (section 7.1).
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Ms converts a duration to float milliseconds.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// two renders to two significant figures (section 7.1).
func two(v float64) string {
	if v == 0 || math.IsNaN(v) {
		return "-"
	}
	mag := math.Floor(math.Log10(math.Abs(v)))
	scale := math.Pow(10, mag-1)
	r := math.Round(v/scale) * scale
	switch {
	case r >= 100:
		return fmt.Sprintf("%.0f", r)
	case r >= 10:
		return fmt.Sprintf("%.0f", r)
	case r >= 1:
		return fmt.Sprintf("%.1f", r)
	default:
		return fmt.Sprintf("%.3f", r)
	}
}

// Render formats a figure as an aligned text table with paper and
// measured columns plus within-figure ratios to the first row.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-22s %-16s %12s %14s %10s %10s\n",
		"group", "variant", "paper (ms)", "measured (ms)", "paper ×", "meas ×")
	var baseP, baseM float64
	for i, r := range f.Rows {
		if i == 0 {
			baseP, baseM = r.PaperMs, r.MeasuredMs
		}
		ratioP, ratioM := "-", "-"
		if baseP > 0 && !math.IsNaN(r.PaperMs) {
			ratioP = two(r.PaperMs / baseP)
		}
		if baseM > 0 {
			ratioM = two(r.MeasuredMs / baseM)
		}
		paper := "-"
		if !math.IsNaN(r.PaperMs) {
			paper = two(r.PaperMs)
		}
		fmt.Fprintf(&b, "%-22s %-16s %12s %14s %10s %10s\n",
			r.Group, r.Name, paper, two(r.MeasuredMs), ratioP, ratioM)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CheckShape verifies the qualitative claims of a figure: that rows
// ordered by the paper's values are ordered the same way in our
// measurements (within a tolerance factor). It returns the violations.
func (f *Figure) CheckShape(withinGroup bool) []string {
	var violations []string
	rows := f.Rows
	byGroup := map[string][]Row{}
	if withinGroup {
		for _, r := range rows {
			byGroup[r.Group] = append(byGroup[r.Group], r)
		}
	} else {
		byGroup[""] = rows
	}
	for g, rs := range byGroup {
		sorted := append([]Row(nil), rs...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].PaperMs < sorted[j].PaperMs })
		for i := 1; i < len(sorted); i++ {
			a, b := sorted[i-1], sorted[i]
			if math.IsNaN(a.PaperMs) || math.IsNaN(b.PaperMs) {
				continue
			}
			// Paper says a <= b; allow measured b to undercut a by up
			// to 20% before calling it a shape violation.
			if b.MeasuredMs < a.MeasuredMs*0.8 {
				violations = append(violations,
					fmt.Sprintf("%s/%s: paper %s<=%s but measured %.3fms > %.3fms",
						g, f.ID, a.Name, b.Name, a.MeasuredMs, b.MeasuredMs))
			}
		}
	}
	return violations
}
