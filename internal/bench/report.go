package bench

// The per-PR JSON trajectory schema ("snowflake-bench/v1").
// BENCH_7.json (micro/bulk benchmarks, emitted by TestEmitBench7JSON)
// and BENCH_8.json (mesh-scale flow numbers, emitted by cmd/sf-loadgen
// via internal/loadgen) are both instances of Report, so the perf
// trajectory stays diffable across PRs with one set of tools.

import (
	"encoding/json"
	"os"
	"runtime"
)

// Schema identifies the trajectory format; it has not changed since
// BENCH_7.json introduced it (new optional fields are additive).
const Schema = "snowflake-bench/v1"

// Baseline is the pre-PR measurement an entry is compared to.
// Micro-benchmark baselines fill the ns/bytes/allocs fields; flow
// baselines from the load harness fill req/sec and the latency
// percentiles instead. Zero fields are omitted from the JSON.
type Baseline struct {
	NsPerOp       float64 `json:"ns_per_op,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64   `json:"allocs_per_op,omitempty"`
	SigVerifiesOp float64 `json:"sigverifies_per_op,omitempty"`
	ReqPerSec     float64 `json:"req_per_sec,omitempty"`
	P50Ns         float64 `json:"p50_ns,omitempty"`
	P95Ns         float64 `json:"p95_ns,omitempty"`
	P99Ns         float64 `json:"p99_ns,omitempty"`
}

// Entry is one tracked measurement plus its baseline.
type Entry struct {
	NsPerOp       float64   `json:"ns_per_op"`
	BytesPerOp    int64     `json:"bytes_per_op,omitempty"`
	AllocsPerOp   int64     `json:"allocs_per_op,omitempty"`
	SigVerifiesOp float64   `json:"sigverifies_per_op,omitempty"`
	ReqPerSec     float64   `json:"req_per_sec,omitempty"`
	P50Ns         float64   `json:"p50_ns,omitempty"`
	P95Ns         float64   `json:"p95_ns,omitempty"`
	P99Ns         float64   `json:"p99_ns,omitempty"`
	Count         int64     `json:"count,omitempty"`
	Baseline      *Baseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is >1 when this PR is faster than the
	// baseline: measured throughput over baseline throughput when both
	// record req/sec, else baseline ns/op over measured ns/op.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// SetBaseline attaches b and computes the speedup ratio.
func (e *Entry) SetBaseline(b Baseline) {
	c := b
	e.Baseline = &c
	switch {
	case b.ReqPerSec > 0 && e.ReqPerSec > 0:
		e.SpeedupVsBaseline = e.ReqPerSec / b.ReqPerSec
	case b.NsPerOp > 0 && e.NsPerOp > 0:
		e.SpeedupVsBaseline = b.NsPerOp / e.NsPerOp
	}
}

// Report is one PR's trajectory file.
type Report struct {
	Schema    string `json:"schema"`
	PR        int    `json:"pr"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU records the runner's parallelism: single-core CI cannot
	// show BatchVerifier's worker-pool speedup, so trajectory diffs
	// must compare like against like.
	NumCPU     int              `json:"num_cpu"`
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Counters carries non-latency context for the run — discovery
	// attribution (remote queries, negative-cache traffic), proof
	// cache hits, correctness violations — so a cold-flow regression
	// is attributable to discovery vs verification from the JSON
	// alone. Only the load harness fills it.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// NewReport stamps a report with this process's runtime identity.
func NewReport(pr int) *Report {
	return &Report{
		Schema:     Schema,
		PR:         pr,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchmarks: make(map[string]Entry),
	}
}

// WriteFile writes the report as indented JSON with a trailing
// newline, the exact framing the checked-in trajectory files use.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
