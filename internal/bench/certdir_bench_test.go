package bench

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Certificate-directory baselines: publish throughput, query latency
// at 10k and 100k stored certificates, and the prover's end-to-end
// remote chain discovery. Run with
//
//	go test ./internal/bench -bench=Certdir -benchmem
//
// so future directory changes (replication, persistent backends) have
// a number to beat.

// dirCorpus is a reusable population: nIssuers keys each delegating
// to subjects drawn from a small pool, every certificate unique via a
// distinct literal tag.
type dirCorpus struct {
	issuers []principal.Principal
	certs   []*cert.Cert
	now     time.Time
}

var dirCorpora = map[int]*dirCorpus{}

// corpus returns (building once per size) n signed certificates
// spread over n/100 issuers.
func corpus(b *testing.B, n int) *dirCorpus {
	if c, ok := dirCorpora[n]; ok {
		return c
	}
	now := time.Now()
	nIssuers := n / 100
	if nIssuers == 0 {
		nIssuers = 1
	}
	c := &dirCorpus{now: now}
	issuerKeys := make([]*sfkey.PrivateKey, nIssuers)
	for i := range issuerKeys {
		issuerKeys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("bench-dir-issuer-%d", i)))
		c.issuers = append(c.issuers, principal.KeyOf(issuerKeys[i].Public()))
	}
	subjects := make([]principal.Principal, 64)
	for i := range subjects {
		subjects[i] = principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("bench-dir-subject-%d", i))).Public())
	}
	v := core.Until(now.Add(24 * time.Hour))
	for i := 0; i < n; i++ {
		priv := issuerKeys[i%nIssuers]
		ct, err := cert.Delegate(priv, subjects[i%len(subjects)],
			principal.KeyOf(priv.Public()), tag.Literal(fmt.Sprintf("r%d", i)), v)
		if err != nil {
			b.Fatal(err)
		}
		c.certs = append(c.certs, ct)
	}
	dirCorpora[n] = c
	return c
}

// populate fills a fresh store from the corpus.
func populate(b *testing.B, c *dirCorpus) *certdir.Store {
	st := certdir.NewStore(0)
	for _, ct := range c.certs {
		if _, err := st.Publish(ct, c.now); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

func BenchmarkCertdirPublish(b *testing.B) {
	c := corpus(b, 10_000)
	st := certdir.NewStore(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(c.certs) == 0 {
			b.StopTimer()
			st = certdir.NewStore(0)
			b.StartTimer()
		}
		if _, err := st.Publish(c.certs[i%len(c.certs)], c.now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCertdirPublishParallel measures contention across shards.
func BenchmarkCertdirPublishParallel(b *testing.B) {
	c := corpus(b, 10_000)
	st := certdir.NewStore(0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// Republishing is the dedup path after the first lap; both
			// paths hit the same shard lock, which is the object here.
			if _, err := st.Publish(c.certs[i%len(c.certs)], c.now); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func benchQueryByIssuer(b *testing.B, size int) {
	c := corpus(b, size)
	st := populate(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := st.ByIssuer(c.issuers[i%len(c.issuers)], c.now)
		if len(got) == 0 {
			b.Fatal("empty answer")
		}
	}
}

func BenchmarkCertdirQueryByIssuer10k(b *testing.B)  { benchQueryByIssuer(b, 10_000) }
func BenchmarkCertdirQueryByIssuer100k(b *testing.B) { benchQueryByIssuer(b, 100_000) }

func benchQueryBySubject(b *testing.B, size int) {
	c := corpus(b, size)
	st := populate(b, c)
	subj := c.certs[0].Body.Subject
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := st.BySubject(subj, c.now)
		if len(got) == 0 {
			b.Fatal("empty answer")
		}
	}
}

func BenchmarkCertdirQueryBySubject10k(b *testing.B)  { benchQueryBySubject(b, 10_000) }
func BenchmarkCertdirQueryBySubject100k(b *testing.B) { benchQueryBySubject(b, 100_000) }

// BenchmarkCertdirHTTPQuery adds the wire: S-expression encode, HTTP
// round trip over loopback, parse, and signature re-verification on
// the client side is excluded (queries return parsed certs).
func BenchmarkCertdirHTTPQuery(b *testing.B) {
	c := corpus(b, 10_000)
	st := populate(b, c)
	ts := httptest.NewServer(certdir.NewService(st))
	defer ts.Close()
	cl := certdir.NewClient(ts.URL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := cl.QueryByIssuer(c.issuers[i%len(c.issuers)])
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("empty answer")
		}
	}
}

// BenchmarkProverRemoteDiscovery is the end-to-end cost a cold prover
// pays to assemble a 3-hop chain it holds nothing of: directory
// queries, fetch, verification, digestion, and the final search.
func BenchmarkProverRemoteDiscovery(b *testing.B) {
	now := time.Now()
	v := core.Until(now.Add(24 * time.Hour))
	want := tag.Prefix("bench/files")
	keys := make([]*sfkey.PrivateKey, 4)
	prins := make([]principal.Principal, 4)
	for i := range keys {
		keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("bench-rd-%d", i)))
		prins[i] = principal.KeyOf(keys[i].Public())
	}
	st := certdir.NewStore(0)
	for i := 0; i < 3; i++ {
		ct, err := cert.Delegate(keys[i], prins[i+1], prins[i], want, v)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Publish(ct, now); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(certdir.NewService(st))
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := prover.New()
		p.AddRemote(certdir.NewClient(ts.URL))
		if _, err := p.FindProof(prins[3], prins[0], want, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProverLocalAfterDiscovery is the companion number: the
// same goal once the chain has been digested, i.e. the hot path that
// remote discovery must not slow down.
func BenchmarkProverLocalAfterDiscovery(b *testing.B) {
	now := time.Now()
	v := core.Until(now.Add(24 * time.Hour))
	want := tag.Prefix("bench/files")
	keys := make([]*sfkey.PrivateKey, 4)
	prins := make([]principal.Principal, 4)
	for i := range keys {
		keys[i] = sfkey.FromSeed([]byte(fmt.Sprintf("bench-rd-%d", i)))
		prins[i] = principal.KeyOf(keys[i].Public())
	}
	p := prover.New()
	for i := 0; i < 3; i++ {
		ct, err := cert.Delegate(keys[i], prins[i+1], prins[i], want, v)
		if err != nil {
			b.Fatal(err)
		}
		p.AddProof(ct)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FindProof(prins[3], prins[0], want, now); err != nil {
			b.Fatal(err)
		}
	}
}
