package certdir

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// TestProverRemoteDiscovery is the end-to-end acceptance scenario: a
// key on host A reaches a gateway on host B through a 3-hop
// delegation chain held entirely by the directory. The prover starts
// with an empty local graph, discovers the chain over HTTP, and the
// resulting proof verifies under core.VerifyContext.
func TestProverRemoteDiscovery(t *testing.T) {
	now := time.Now()
	valid := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	want := tag.Prefix("gateway/files")

	// Host B's side: the gateway delegates down an org chain and
	// publishes each certificate to the directory.
	gateway := sfkey.FromSeed([]byte("e2e-gateway"))
	dept := sfkey.FromSeed([]byte("e2e-dept"))
	team := sfkey.FromSeed([]byte("e2e-team"))
	user := sfkey.FromSeed([]byte("e2e-user"))
	gatewayP := principal.KeyOf(gateway.Public())
	deptP := principal.KeyOf(dept.Public())
	teamP := principal.KeyOf(team.Public())
	userP := principal.KeyOf(user.Public())

	_, cl := startDirectory(t)
	for _, c := range []struct {
		priv    *sfkey.PrivateKey
		subject principal.Principal
	}{
		{gateway, deptP}, // dept  =t=> gateway
		{dept, teamP},    // team  =t=> dept
		{team, userP},    // user  =t=> team
	} {
		if err := cl.Publish(delegate(t, c.priv, c.subject, want, valid)); err != nil {
			t.Fatal(err)
		}
	}

	// Host A's side: a prover that has never seen any of these
	// delegations, pointed at the directory.
	p := prover.New()
	p.AddRemote(cl)
	if p.EdgeCount() != 0 {
		t.Fatal("prover graph not empty at start")
	}

	proof, err := p.FindProof(userP, gatewayP, want, now)
	if err != nil {
		t.Fatalf("remote discovery failed: %v", err)
	}
	ctx := core.NewVerifyContext()
	ctx.Now = now
	if err := core.Authorize(ctx, proof, userP, gatewayP, want); err != nil {
		t.Fatalf("discovered proof does not authorize: %v", err)
	}

	st := p.Stats()
	if st.RemoteQueries == 0 || st.RemoteCerts != 3 {
		t.Fatalf("stats = %+v, want 3 remote certs", st)
	}

	// The chain is now digested locally: re-proving (e.g. for a fresh
	// request tag under the same delegations) must stay off the network.
	before := p.Stats().RemoteQueries
	if _, err := p.FindProof(userP, gatewayP, want, now.Add(time.Second)); err != nil {
		t.Fatalf("re-prove failed: %v", err)
	}
	if after := p.Stats().RemoteQueries; after != before {
		t.Fatalf("re-prove hit the network: %d -> %d queries", before, after)
	}
}

// TestProverNegativeCaching checks that unprovable goals don't hammer
// the directory: the empty answers are cached and later attempts
// within the TTL are answered locally.
func TestProverNegativeCaching(t *testing.T) {
	now := time.Now()
	_, cl := startDirectory(t)

	strangerP := principal.KeyOf(sfkey.FromSeed([]byte("neg-stranger")).Public())
	ownerP := principal.KeyOf(sfkey.FromSeed([]byte("neg-owner")).Public())

	p := prover.New()
	p.AddRemote(cl)

	if _, err := p.FindProof(strangerP, ownerP, tag.All(), now); err == nil {
		t.Fatal("proved an undelegated goal")
	}
	first := p.Stats()
	if first.RemoteQueries == 0 {
		t.Fatal("dead-end never consulted the directory")
	}

	if _, err := p.FindProof(strangerP, ownerP, tag.All(), now.Add(time.Second)); err == nil {
		t.Fatal("proved an undelegated goal")
	}
	second := p.Stats()
	if second.RemoteQueries != first.RemoteQueries {
		t.Fatalf("negative cache miss: %d -> %d queries", first.RemoteQueries, second.RemoteQueries)
	}
	if second.NegCacheHits == 0 {
		t.Fatal("no negative-cache hits recorded")
	}

	// After the TTL the prover asks again.
	ttl := prover.DefaultNegativeTTL
	if _, err := p.FindProof(strangerP, ownerP, tag.All(), now.Add(ttl+time.Second)); err == nil {
		t.Fatal("proved an undelegated goal")
	}
	if third := p.Stats(); third.RemoteQueries == second.RemoteQueries {
		t.Fatal("negative cache never expired")
	}
}
