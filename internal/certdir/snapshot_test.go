package certdir

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// snapshotBytes captures a store's full snapshot stream in memory —
// the byte-for-byte comparator the crash-twin tests are built on.
func snapshotBytes(t *testing.T, st *Store, revs *cert.RevocationStore, now time.Time) []byte {
	t.Helper()
	var b bytes.Buffer
	if _, err := st.WriteSnapshot(&b, revs, now); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// copyWALDir clones a data directory into a fresh temp dir, so a test
// can corrupt the clone the way a crash would and recover from it
// while the original store keeps running as the uncrashed twin.
func copyWALDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// snapshotServer serves fixed bytes at every path — a stand-in for a
// peer whose snapshot stream was severed or tampered with.
func snapshotServer(t *testing.T, body []byte) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestSnapshotBootstrapRoundTrip: a cold node bootstraps everything a
// live directory holds — certificates, tombstones for removed AND
// revoked entries, and the CRLs themselves — in one transfer.
func TestSnapshotBootstrapRoundTrip(t *testing.T) {
	now := time.Now()
	src := NewStore(4)
	rs := cert.NewRevocationStore()
	certs := walCorpus(t, "snap-boot", 60, core.Until(now.Add(time.Hour)))
	for _, c := range certs {
		if _, err := src.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range certs[:5] {
		if !src.Remove(c.Hash()) {
			t.Fatal("remove failed")
		}
	}
	revoked := certs[10] // issuer seed snap-boot-issuer-0 (10 % 5)
	rl := cert.NewRevocationList(sfkey.FromSeed([]byte("snap-boot-issuer-0")),
		core.Until(now.Add(time.Hour)), revoked.Hash())
	if err := rs.Add(rl); err != nil {
		t.Fatal(err)
	}
	if n := src.EvictRevokedByIssuer(rs.RevokedByIssuerAt(now)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	svc := NewService(src)
	svc.Revocations = rs
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	dst := NewStore(4)
	drs := cert.NewRevocationStore()
	rep := NewReplicator(dst, []*Client{NewClient(ts.URL)})
	rep.Revocations = drs
	pulled, err := rep.BootstrapFromPeer(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 54 {
		t.Fatalf("bootstrapped %d certs, want 54 (60 - 5 removed - 1 revoked)", pulled)
	}
	sameContents(t, dst, src, now, certs)
	for _, c := range certs[:5] {
		if !dst.Tombstoned(c.Hash()) {
			t.Fatal("removed certificate's tombstone not adopted")
		}
	}
	if !dst.Tombstoned(revoked.Hash()) {
		t.Fatal("revoked certificate's tombstone not adopted")
	}
	if !drs.Has(rl.Hash()) {
		t.Fatal("CRL not installed from snapshot")
	}
	if st := rep.Stats(); st.CRLsPulled != 1 || st.PullRejected != 0 {
		t.Fatalf("stats = %+v, want 1 CRL pulled, 0 rejected", st)
	}
}

// TestSnapshotDeterministicBytes: the stream is a pure function of
// directory content — publish order, removal order, and even shard
// count must not leak into the bytes.
func TestSnapshotDeterministicBytes(t *testing.T) {
	now := time.Now()
	certs := walCorpus(t, "snap-det", 40, core.Until(now.Add(time.Hour)))
	rs := cert.NewRevocationStore()
	if err := rs.Add(cert.NewRevocationList(sfkey.FromSeed([]byte("snap-det-issuer-1")),
		core.Until(now.Add(time.Hour)), certs[1].Hash())); err != nil {
		t.Fatal(err)
	}

	a, b := NewStore(4), NewStore(8)
	for _, c := range certs {
		if _, err := a.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(certs) - 1; i >= 0; i-- {
		if _, err := b.Publish(certs[i], now); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range certs[20:26] {
		a.Remove(c.Hash())
	}
	for i := 25; i >= 20; i-- {
		b.Remove(certs[i].Hash())
	}

	ab, bb := snapshotBytes(t, a, rs, now), snapshotBytes(t, b, rs, now)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("snapshot bytes differ (%d vs %d bytes) for identical content", len(ab), len(bb))
	}
}

// TestSnapshotTruncatedRejected: a severed stream must abort the
// bootstrap, whether it breaks mid-frame or at a clean frame boundary
// before the trailer.
func TestSnapshotTruncatedRejected(t *testing.T) {
	now := time.Now()
	src := NewStore(4)
	for _, c := range walCorpus(t, "snap-trunc", 30, core.Until(now.Add(time.Hour))) {
		if _, err := src.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	full := snapshotBytes(t, src, nil, now)

	header := sexp.AppendFrame(nil, sexp.List(sexp.String(snapTagHeader),
		sexp.List(sexp.String("version"), sexp.String("1")),
		sexp.List(sexp.String("cursor"), sexp.String("0"))))

	for name, body := range map[string][]byte{
		"mid-frame":  full[:len(full)-25],
		"no-trailer": header, // clean EOF, but the trailer never arrived
	} {
		dst := NewStore(4)
		rep := NewReplicator(dst, []*Client{snapshotServer(t, body)})
		if _, err := rep.BootstrapFromPeer(context.Background()); err == nil {
			t.Fatalf("%s: truncated snapshot accepted", name)
		}
	}
}

// TestSnapshotForgedCertRejected: a snapshot grants nothing — a
// well-formed stream carrying a bad signature is counted as rejected
// and never indexed.
func TestSnapshotForgedCertRejected(t *testing.T) {
	now := time.Now()
	good := delegate2(t, sfkey.FromSeed([]byte("snap-forge")),
		principal.KeyOf(sfkey.FromSeed([]byte("snap-forge-s")).Public()),
		tag.All(), core.Until(now.Add(time.Hour)))
	forged := *good
	forged.Signature = append([]byte(nil), good.Signature...)
	forged.Signature[0] ^= 1

	var body []byte
	body = sexp.AppendFrame(body, sexp.List(sexp.String(snapTagHeader),
		sexp.List(sexp.String("version"), sexp.String("1")),
		sexp.List(sexp.String("cursor"), sexp.String("0"))))
	body = sexp.AppendFrame(body, sexp.List(sexp.String(walTagPublish), forged.Sexp()))
	body = sexp.AppendFrame(body, sexp.List(sexp.String(snapTagEnd),
		sexp.List(sexp.String("count"), sexp.String("1"))))

	dst := NewStore(4)
	rep := NewReplicator(dst, []*Client{snapshotServer(t, body)})
	pulled, err := rep.BootstrapFromPeer(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 0 || dst.Len() != 0 || dst.HasHash(forged.Hash()) {
		t.Fatalf("forged certificate indexed (pulled=%d len=%d)", pulled, dst.Len())
	}
	if st := rep.Stats(); st.PullRejected != 1 {
		t.Fatalf("PullRejected = %d, want 1", st.PullRejected)
	}
}

// crashTwinStore opens a small-segment durable store and applies a
// publish/remove workload that forces several rotations.
func crashTwinStore(t *testing.T, dir, seed string, now time.Time) (*Store, []*cert.Cert) {
	t.Helper()
	st, _, err := OpenDurableOpts(dir, 4, SyncAlways, now, WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	certs := walCorpus(t, seed, 50, core.Until(now.Add(time.Hour)))
	for _, c := range certs {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range certs[:8] {
		if !st.Remove(c.Hash()) {
			t.Fatal("remove failed")
		}
	}
	if ws, _ := st.WALStats(); ws.Segments < 2 {
		t.Fatalf("workload stayed in %d segment(s); rotations not exercised", ws.Segments)
	}
	return st, certs
}

// activeSegment returns the path of the highest-numbered WAL segment.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "certdir-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	last := segs[0]
	for _, s := range segs[1:] {
		if s > last {
			last = s
		}
	}
	return last
}

// TestCrashMidRotationTwin: a crash between rotating to a new segment
// and durably appending to it leaves a torn record in the old active
// segment and possibly an empty new one. Recovery must drop exactly
// the unacknowledged tail and land byte-for-byte on the uncrashed
// twin's snapshot.
func TestCrashMidRotationTwin(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	st, certs := crashTwinStore(t, dir, "crash-rot", now)
	want := snapshotBytes(t, st, nil, now)

	crash := copyWALDir(t, dir)
	// The record that was mid-write when the power went: a valid frame
	// cut short. It was never acknowledged, so the twin never saw it.
	torn := sexp.AppendFrame(nil, removeRecord(certs[20].Hash(), now.Add(time.Hour)))
	f, err := os.OpenFile(activeSegment(t, crash), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// And the freshly created next segment the crash left empty.
	if err := os.WriteFile(filepath.Join(crash, walSegmentName(99999999)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	re, rec, err := OpenDurableOpts(crash, 4, SyncAlways, now, WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn {
		t.Fatalf("recovery = %+v, want torn tail detected", rec)
	}
	if got := snapshotBytes(t, re, nil, now); !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot differs from twin (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCrashMidCompactionTwin: a crash during compaction leaves a
// *.compact temp beside intact segments. Recovery discards the temp
// (the rename never happened, so it was never the log) and replays
// the originals untouched.
func TestCrashMidCompactionTwin(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	st, _ := crashTwinStore(t, dir, "crash-cmp", now)
	want := snapshotBytes(t, st, nil, now)

	crash := copyWALDir(t, dir)
	tmp := activeSegment(t, crash) + ".compact"
	if err := os.WriteFile(tmp, []byte("half-written compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, rec, err := OpenDurableOpts(crash, 4, SyncAlways, now, WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn || rec.Dropped != 0 {
		t.Fatalf("recovery = %+v, want clean replay", rec)
	}
	if left, _ := filepath.Glob(filepath.Join(crash, "*.compact")); len(left) != 0 {
		t.Fatalf("compaction temps survived recovery: %v", left)
	}
	if got := snapshotBytes(t, re, nil, now); !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot differs from twin (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCrashMidSnapshotWriteTwin: a crash during WriteSnapshotFile
// leaves a partial .tmp beside the previous complete artifact. The
// endpoint keeps serving the complete one (the rename is the commit
// point), a cold peer bootstraps from it successfully, and the next
// snapshot write replaces it atomically.
func TestCrashMidSnapshotWriteTwin(t *testing.T) {
	now := time.Now()
	dir := t.TempDir()
	st := NewStore(4)
	certs := walCorpus(t, "crash-snap", 30, core.Until(now.Add(time.Hour)))
	for _, c := range certs {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SnapshotFileName)
	if err := WriteSnapshotFile(path, st, nil, now); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("interrupted snapshot write"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := NewService(st)
	svc.SnapshotPath = path
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)

	dst := NewStore(4)
	rep := NewReplicator(dst, []*Client{NewClient(ts.URL)})
	pulled, err := rep.BootstrapFromPeer(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 30 || dst.Len() != 30 {
		t.Fatalf("bootstrapped %d certs (store %d), want 30", pulled, dst.Len())
	}

	// The next snapshot write commits over both the artifact and the
	// stale temp, and a second cold peer sees the new state.
	extra := delegate2(t, sfkey.FromSeed([]byte("crash-snap-x")),
		principal.KeyOf(sfkey.FromSeed([]byte("crash-snap-xs")).Public()),
		tag.All(), core.Until(now.Add(time.Hour)))
	if _, err := st.Publish(extra, now); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshotFile(path, st, nil, now); err != nil {
		t.Fatal(err)
	}
	dst2 := NewStore(4)
	rep2 := NewReplicator(dst2, []*Client{NewClient(ts.URL)})
	if pulled, err := rep2.BootstrapFromPeer(context.Background()); err != nil || pulled != 31 {
		t.Fatalf("post-rewrite bootstrap pulled %d (err %v), want 31", pulled, err)
	}
}
