package certdir

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// TestRevocationPropagatesEndToEnd is the acceptance scenario for the
// revocation pipeline, run under -race in CI: a delegation published
// at directory A and discovered through directory B keeps proving at
// a prover attached to B — until the issuer revokes it at A through
// the admin endpoint (no restart, no sweep tick). The CRL gossips
// A -> B, B evicts and emits an invalidation event, and the prover's
// subscription drops its cached edge, so the proof is rejected at B's
// prover within one gossip exchange of a revocation it never heard
// about directly.
func TestRevocationPropagatesEndToEnd(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	want := tag.Prefix("gateway/files")
	alice := sfkey.FromSeed([]byte("e2e-rev-alice"))
	aliceP := principal.KeyOf(alice.Public())
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("e2e-rev-bob")).Public())

	// Two directory domains, each with revocation endpoints, each
	// replicating with the other (push + anti-entropy, like two
	// sf-certd daemons with -peer pointing at each other).
	newDir := func() (*Store, *cert.RevocationStore, *Service, *Client) {
		st := NewStore(4)
		svc := NewService(st)
		svc.Revocations = cert.NewRevocationStore()
		ts := httptest.NewServer(svc)
		t.Cleanup(ts.Close)
		return st, svc.Revocations, svc, NewClient(ts.URL)
	}
	stA, _, svcA, clA := newDir()
	stB, rsB, svcB, clB := newDir()

	repA := NewReplicator(stA, []*Client{clB})
	repA.Revocations = svcA.Revocations
	repA.Interval = 100 * time.Millisecond
	repA.Start()
	t.Cleanup(repA.Stop)
	svcA.Replicator = repA

	repB := NewReplicator(stB, []*Client{clA})
	repB.Revocations = rsB
	repB.Interval = 100 * time.Millisecond
	repB.Start()
	t.Cleanup(repB.Stop)
	svcB.Replicator = repB

	// Publish bob =want=> alice at A only; replication carries it to B.
	c := delegate(t, alice, bobP, want, v)
	if err := clA.Publish(c); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "publish replication A -> B", func() bool { return stB.Len() == 1 })

	// The prover lives in B's domain: discovery and invalidation both
	// go through directory B.
	p := prover.New()
	p.AddRemote(clB)
	p.NegativeTTL = 50 * time.Millisecond // a re-query after revocation must not be masked
	cache := core.NewProofCache(64)
	sub := p.SubscribeWait(clB, cache, 2*time.Second)
	t.Cleanup(sub.Stop)

	if _, err := p.FindProof(bobP, aliceP, want, now); err != nil {
		t.Fatalf("pre-revocation discovery failed: %v", err)
	}

	// Alice revokes the delegation at HER directory, live.
	rl := cert.NewRevocationList(alice, v, c.Hash())
	if err := clA.PushCRL(rl); err != nil {
		t.Fatal(err)
	}
	if stA.Len() != 0 {
		t.Fatal("admin CRL install did not evict at A immediately")
	}

	// Within one gossip exchange, B holds the CRL, has evicted the
	// certificate, and B's prover no longer proves the delegation:
	// its cached edge is invalidated by the event stream, and the
	// re-query finds a directory that no longer serves the cert.
	waitFor(t, "CRL gossip A -> B", func() bool { return rsB.Has(rl.Hash()) })
	waitFor(t, "eviction at B", func() bool { return stB.Len() == 0 })
	waitFor(t, "prover invalidation", func() bool { return p.EdgeCount() == 0 })
	waitFor(t, "proof rejection at B's prover", func() bool {
		_, err := p.FindProof(bobP, aliceP, want, time.Now())
		return err != nil
	})
	if st := p.Stats(); st.Invalidated == 0 {
		t.Fatalf("prover invalidated %d edges, want > 0", st.Invalidated)
	}
}

// waitFor polls cond until the deadline; replication and invalidation
// are asynchronous.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
