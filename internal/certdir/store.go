// Package certdir implements a distributed certificate directory: a
// networked store where principals publish signed delegation
// certificates and provers query by issuer or subject to assemble
// speaks-for chains they do not hold locally.
//
// The paper's Prover (section 4.4) searches a local delegation graph;
// end-to-end authorization across administrative domains additionally
// needs a discovery path, the role SDSI/SPKI assign to certificate
// directories and Vanadium assigns to blessing discovery. A directory
// is pure mechanism: it stores verifiable facts, and knowledge of a
// certificate bestows no authority (core's proofs are not bearer
// capabilities), so the directory itself need not be trusted for
// integrity — only for availability.
//
// # Store
//
// The Store is sharded by issuer principal so heavy publish/query
// traffic spreads across independent locks, with a secondary
// subject-side index for reverse discovery, expiry sweeping, and
// revocation-aware eviction driven by cert.RevocationStore. Every
// certificate is signature-verified before it is indexed; a directory
// fed hostile publishes can at worst refuse service, never grant
// authority.
//
// # Durability
//
// A Store opened with OpenDurable is backed by a write-ahead log
// (WAL): every accepted publish and removal is journaled — under a
// configurable fsync policy — before it is acknowledged, and a
// restart replays the log, so the delegation graph survives process
// lifetimes. Sweeps and revocation evictions compact the log back to
// the live contents. See wal.go for the record format and crash
// semantics.
//
// # Replication
//
// A Replicator connects a Store to peer directories in other
// administrative domains and keeps them converged two ways: accepted
// publishes and removals fan out to peers immediately (push, with
// bounded retry), and a periodic anti-entropy round exchanges
// per-partition digests to pull anything a push missed. Removed
// certificates leave tombstones so gossip cannot resurrect a
// retracted delegation. Everything pulled from a peer is re-verified
// before it is indexed: replication, like publish, extends
// availability without extending trust.
package certdir

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/shard"
	"repro/internal/tag"
)

// DefaultShards is the shard count used when NewStore is given n <= 0.
// 32 keeps per-shard contention negligible at ~100k certs while the
// per-shard fixed cost stays trivial.
const DefaultShards = 32

// GossipPartitions is the fixed partition count of the anti-entropy
// digest space. Certificates are assigned to partitions by content
// hash, independently of any node's local shard count, so two
// directories configured with different -shards values still compute
// comparable digests.
const GossipPartitions = 64

// entry is one stored certificate with its precomputed index keys.
type entry struct {
	cert     *cert.Cert
	hashKey  string // string(cert.Hash()), the identity for dedup/removal
	issuerK  string
	subjectK string
	expiry   time.Time // zero when unbounded
	seg      uint64    // WAL segment holding the publish record; 0 = not journaled
}

// tombstone is one live retraction: the expiry bounding its life and
// the WAL segment holding its remove record (0 when not journaled).
type tombstone struct {
	expiry time.Time
	seg    uint64
}

// dirShard is an independently locked slice of the directory. A
// certificate lives in exactly one shard, chosen by its issuer, and
// appears in both of that shard's indexes.
type dirShard struct {
	mu        sync.RWMutex
	byIssuer  map[string][]*entry
	bySubject map[string][]*entry
	byHash    map[string]*entry
}

// Stats counts directory traffic; the service exposes them and the
// benchmarks read them.
type Stats struct {
	Published  int64 // accepted publishes (new certificates)
	Duplicates int64 // publishes deduplicated by hash
	Rejected   int64 // publishes refused (bad signature, expired)
	Queries    int64 // issuer + subject lookups
	Removed    int64 // explicit removals
	Swept      int64 // entries dropped by expiry sweeps
	Evicted    int64 // entries dropped as revoked
	WALErrors  int64 // mutations refused because the WAL could not append
	Tombstones int64 // live removal tombstones held back from gossip
}

// hookSet bundles the replication callbacks; it is swapped atomically
// so hot-path reads need no lock.
type hookSet struct {
	onAdd    func(*cert.Cert)
	onRemove func(hash []byte, expiry time.Time)
}

// Store is the sharded, concurrency-safe certificate directory.
type Store struct {
	shards []*dirShard

	// wal, when non-nil, journals every accepted mutation before it is
	// acknowledged. Attached by OpenDurable; nil for memory-only use.
	wal *WAL

	// tombstones remembers removed (or revocation-evicted) certificate
	// hashes with the expiry of the certificate they retract, so
	// anti-entropy pulls do not resurrect them. Cleared by an explicit
	// re-publish, expired by Sweep.
	tmu        sync.Mutex
	tombstones map[string]tombstone

	// events is the invalidation stream served to subscribed provers:
	// one event per removal or revocation eviction, so caches beyond
	// the directory's reach can drop what it can no longer vouch for.
	events *EventLog

	// merkle is the incrementally maintained leaf-summary array behind
	// the Merkle anti-entropy endpoints (see merkle.go).
	merkle merkleState

	// segLive counts live WAL records (indexed entries, live
	// tombstones, retained events) per segment; the threshold compactor
	// rewrites segments whose ratio of live to total records drops
	// below compactThreshold. segMu is a leaf lock: nothing is acquired
	// while holding it.
	segMu            sync.Mutex
	segLive          map[uint64]int64
	compactThreshold float64

	hooks atomic.Pointer[hookSet]

	published  atomic.Int64
	duplicates atomic.Int64
	rejected   atomic.Int64
	queries    atomic.Int64
	removed    atomic.Int64
	swept      atomic.Int64
	evicted    atomic.Int64
	walErrors  atomic.Int64
}

// NewStore returns an empty memory-only directory with n shards
// (DefaultShards when n <= 0). Use OpenDurable for a WAL-backed one.
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Store{
		shards:     make([]*dirShard, n),
		tombstones: make(map[string]tombstone),
		events:     newEventLog(0),
		segLive:    make(map[uint64]int64),
	}
	for i := range s.shards {
		s.shards[i] = &dirShard{
			byIssuer:  make(map[string][]*entry),
			bySubject: make(map[string][]*entry),
			byHash:    make(map[string]*entry),
		}
	}
	return s
}

// shardFor picks the shard for an issuer key.
func (s *Store) shardFor(issuerKey string) *dirShard {
	return s.shards[shard.Index(issuerKey, len(s.shards))]
}

// attachWAL makes subsequent mutations journal to w. Call before the
// store takes traffic; OpenDurable does.
func (s *Store) attachWAL(w *WAL) { s.wal = w }

// WALStats returns the attached log's counters, or (zero, false) for a
// memory-only store.
func (s *Store) WALStats() (WALStats, bool) {
	if s.wal == nil {
		return WALStats{}, false
	}
	return s.wal.Stats(), true
}

// SetHooks registers replication callbacks: onAdd fires after every
// newly indexed certificate (client publish, peer push, or gossip
// pull alike), onRemove after every acknowledged removal. Callbacks
// run synchronously on the mutating goroutine with no store lock held,
// so they must be fast and non-blocking (the Replicator's only
// enqueue). Either may be nil.
func (s *Store) SetHooks(onAdd func(*cert.Cert), onRemove func(hash []byte, expiry time.Time)) {
	s.hooks.Store(&hookSet{onAdd: onAdd, onRemove: onRemove})
}

// publishCtx verifies certificates on the way in. The directory
// confirms anything demanding revalidation: revalidation is the
// verifier's duty at use time, not the directory's at publish time.
// Publish-time verification shares the process-wide proof cache, so
// re-publishes and certificates already screened by another layer
// cost a lookup instead of a signature check.
func publishCtx(now time.Time) *core.VerifyContext {
	ctx := core.NewVerifyContext()
	ctx.Now = now
	ctx.Revalidate = func([]byte, string) error { return nil }
	ctx.Cache = core.SharedProofCache()
	return ctx
}

// Publish verifies and stores a certificate, reporting whether it was
// newly stored. Certificates with bad signatures or already-expired
// validity are refused; duplicates (same signed body and signature)
// are accepted idempotently with added == false. On a durable store
// the publish is journaled before it is acknowledged, so added == true
// implies the certificate survives a restart (under the WAL's fsync
// policy). A successful publish clears any removal tombstone for the
// same certificate: an explicit re-publish outranks a past retraction.
// Anti-entropy pulls must use PublishPulled instead, which yields to
// tombstones rather than clearing them.
func (s *Store) Publish(c *cert.Cert, now time.Time) (added bool, err error) {
	return s.publish(c, now, false, 0)
}

// PublishPulled is Publish for certificates arriving via anti-entropy
// gossip: identical verification and journaling, but a live removal
// tombstone wins — the pull is refused (added == false, no error)
// instead of resurrecting a delegation retracted here. The tombstone
// check happens under the same shard lock Remove adds tombstones
// under, so a pull racing a removal converges to removed in either
// interleaving.
func (s *Store) PublishPulled(c *cert.Cert, now time.Time) (added bool, err error) {
	return s.publish(c, now, true, 0)
}

// publishReplay is Publish during WAL replay: no journaling (the
// record already exists, in segment replaySeg), no hooks implied — the
// hook set is empty before attachWAL anyway.
func (s *Store) publishReplay(c *cert.Cert, now time.Time, replaySeg uint64) (added bool, err error) {
	return s.publish(c, now, false, replaySeg)
}

func (s *Store) publish(c *cert.Cert, now time.Time, yieldToTombstone bool, replaySeg uint64) (added bool, err error) {
	if c == nil {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: nil certificate")
	}
	if !c.Body.Validity.Contains(now) {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: certificate not valid at %s", now.UTC().Format(time.RFC3339))
	}
	if err := c.Verify(publishCtx(now)); err != nil {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: refusing certificate: %w", err)
	}
	e := &entry{
		cert:     c,
		hashKey:  string(c.Hash()),
		issuerK:  c.Body.Issuer.Key(),
		subjectK: c.Body.Subject.Key(),
		expiry:   c.Body.Validity.NotAfter,
	}
	sh := s.shardFor(e.issuerK)
	sh.mu.Lock()
	if _, dup := sh.byHash[e.hashKey]; dup {
		sh.mu.Unlock()
		s.duplicates.Add(1)
		return false, nil
	}
	if yieldToTombstone && s.Tombstoned([]byte(e.hashKey)) {
		sh.mu.Unlock()
		return false, nil
	}
	if replaySeg != 0 {
		e.seg = replaySeg
	} else if s.wal != nil {
		// Journal before indexing: an acknowledged publish must be on
		// disk. The shard stays locked so the log's record order cannot
		// contradict the index for this certificate.
		seg, err := s.wal.AppendPublish(c)
		if err != nil {
			sh.mu.Unlock()
			s.walErrors.Add(1)
			return false, err
		}
		e.seg = seg
	}
	sh.byHash[e.hashKey] = e
	sh.byIssuer[e.issuerK] = append(sh.byIssuer[e.issuerK], e)
	sh.bySubject[e.subjectK] = append(sh.bySubject[e.subjectK], e)
	// The tombstone clear happens under the shard lock, like Remove's
	// tombstone add, so index and tombstone state cannot disagree for
	// a concurrent observer holding the same shard.
	s.tmu.Lock()
	if t, ok := s.tombstones[e.hashKey]; ok {
		delete(s.tombstones, e.hashKey)
		s.segLiveDecr(t.seg)
	}
	s.tmu.Unlock()
	s.segLiveIncr(e.seg)
	s.merkleAdd(e.hashKey)
	sh.mu.Unlock()
	s.published.Add(1)
	if h := s.hooks.Load(); h != nil && h.onAdd != nil {
		h.onAdd(c)
	}
	return true, nil
}

// QueryFilter narrows and bounds a directory answer. The zero value
// means "everything, unbounded" — the pre-filter wire behavior.
type QueryFilter struct {
	// Limit caps the number of certificates returned; 0 means
	// unbounded. Truncation keeps index (insertion) order, so repeated
	// queries see a stable prefix.
	Limit int
	// Tag, when valid (tag.Tag.Valid), keeps only certificates whose
	// delegation tag covers it — exactly the edge-usability test the
	// prover applies (tag.Covers(certTag, want)), so a filtered answer
	// omits nothing a proof search for that tag could use.
	Tag tag.Tag
}

// ByIssuer returns every stored certificate whose issuer is p and
// whose validity contains now. Only one shard is consulted. Unbounded;
// use ByIssuerFiltered to cap or tag-filter the answer.
func (s *Store) ByIssuer(p principal.Principal, now time.Time) []*cert.Cert {
	return s.ByIssuerFiltered(p, now, QueryFilter{})
}

// ByIssuerFiltered is ByIssuer narrowed by f.
func (s *Store) ByIssuerFiltered(p principal.Principal, now time.Time, f QueryFilter) []*cert.Cert {
	s.queries.Add(1)
	k := p.Key()
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return appendLive(nil, sh.byIssuer[k], now, f)
}

// BySubject returns every stored certificate whose subject is p and
// whose validity contains now. Sharding is issuer-keyed, so the
// subject index fans across all shards.
func (s *Store) BySubject(p principal.Principal, now time.Time) []*cert.Cert {
	return s.BySubjectFiltered(p, now, QueryFilter{})
}

// BySubjectFiltered is BySubject narrowed by f.
func (s *Store) BySubjectFiltered(p principal.Principal, now time.Time, f QueryFilter) []*cert.Cert {
	s.queries.Add(1)
	k := p.Key()
	var out []*cert.Cert
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = appendLive(out, sh.bySubject[k], now, f)
		sh.mu.RUnlock()
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// appendLive appends the entries passing validity-at-now and the
// filter onto dst, honoring the filter's limit across calls.
func appendLive(dst []*cert.Cert, es []*entry, now time.Time, f QueryFilter) []*cert.Cert {
	for _, e := range es {
		if f.Limit > 0 && len(dst) >= f.Limit {
			return dst
		}
		if !e.cert.Body.Validity.Contains(now) {
			continue
		}
		if f.Tag.Valid() && !tag.Covers(e.cert.Body.Tag, f.Tag) {
			continue
		}
		dst = append(dst, e.cert)
	}
	return dst
}

// Remove deletes the certificate with the given body hash (cert.Hash)
// and reports whether it was present. Publishers use it to retract a
// delegation before its expiry. An acknowledged removal is durable (on
// a WAL-backed store) and leaves a tombstone that keeps anti-entropy
// gossip from pulling the certificate back from a lagging peer; if the
// WAL cannot journal the removal, the certificate is kept and Remove
// reports false rather than acknowledging a retraction that would
// silently reappear after a restart.
func (s *Store) Remove(hash []byte) bool {
	key := string(hash)
	for _, sh := range s.shards {
		sh.mu.Lock()
		e, ok := sh.byHash[key]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		var seg uint64
		if s.wal != nil {
			sg, err := s.wal.AppendRemove(hash, e.expiry)
			if err != nil {
				sh.mu.Unlock()
				s.walErrors.Add(1)
				return false
			}
			seg = sg
		}
		sh.dropLocked(e)
		s.segLiveDecr(e.seg)
		s.merkleDrop(e.hashKey)
		// Tombstone before releasing the shard lock: a concurrent
		// anti-entropy pull of this certificate serializes on the same
		// shard and must find either the entry or the tombstone, never
		// neither (which would let it resurrect the removal).
		s.addTombstone(key, e.expiry, seg)
		sh.mu.Unlock()
		s.removed.Add(1)
		s.emitEvent(EventRemove, hash)
		if h := s.hooks.Load(); h != nil && h.onRemove != nil {
			h.onRemove(hash, e.expiry)
		}
		return true
	}
	return false
}

// Events exposes the store's invalidation stream; the service's
// long-poll endpoint and tests read it.
func (s *Store) Events() *EventLog { return s.events }

// replayRemove re-applies a WAL removal record: drop the certificate
// if a preceding replayed publish indexed it, and restore the
// tombstone unless the certificate has expired anyway. No journaling,
// no hooks — replay reconstructs state, it does not create history.
func (s *Store) replayRemove(hash []byte, expiry, now time.Time, seg uint64) {
	key := string(hash)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if e, ok := sh.byHash[key]; ok {
			sh.dropLocked(e)
			s.segLiveDecr(e.seg)
			s.merkleDrop(e.hashKey)
			if expiry.IsZero() {
				expiry = e.expiry
			}
			sh.mu.Unlock()
			break
		}
		sh.mu.Unlock()
	}
	if expiry.IsZero() || now.Before(expiry) {
		s.addTombstone(key, expiry, seg)
	}
}

// restoreEvent re-applies a WAL event record during replay: the
// EventLog adopts the journaled cursor token (boot nonce and sequence)
// so subscriber cursors minted before the restart stay valid.
func (s *Store) restoreEvent(token uint64, kind string, hash []byte, seg uint64) {
	evicted := s.events.restore(token, kind, hash, seg)
	s.segLiveIncr(seg)
	for _, e := range evicted {
		s.segLiveDecr(e.seg)
	}
}

// emitEvent appends one invalidation event, journaling it (under the
// event lock, so ring order and log order agree) when a WAL is
// attached. A journal failure degrades durability — the event still
// reaches live subscribers, but a restart resets their cursors — and
// is counted, not escalated: invalidation delivery must not be held
// hostage by a full disk.
func (s *Store) emitEvent(kind string, hash []byte) {
	evicted := s.events.appendWith(kind, hash, func(token uint64) uint64 {
		if s.wal == nil {
			return 0
		}
		seg, err := s.wal.AppendEvent(token, kind, hash)
		if err != nil {
			s.walErrors.Add(1)
			return 0
		}
		s.segLiveIncr(seg)
		return seg
	})
	for _, e := range evicted {
		s.segLiveDecr(e.seg)
	}
}

// addTombstone records a retraction until the certificate's expiry
// (forever for unbounded certificates). seg is the WAL segment holding
// the remove record backing it, 0 when not journaled.
func (s *Store) addTombstone(key string, expiry time.Time, seg uint64) {
	s.tmu.Lock()
	if old, ok := s.tombstones[key]; ok {
		s.segLiveDecr(old.seg)
	}
	s.tombstones[key] = tombstone{expiry: expiry, seg: seg}
	s.tmu.Unlock()
	s.segLiveIncr(seg)
}

// segLiveIncr counts one live record in seg; 0 (unjournaled) is ignored.
func (s *Store) segLiveIncr(seg uint64) {
	if seg == 0 {
		return
	}
	s.segMu.Lock()
	s.segLive[seg]++
	s.segMu.Unlock()
}

// segLiveDecr retires one live record in seg.
func (s *Store) segLiveDecr(seg uint64) {
	if seg == 0 {
		return
	}
	s.segMu.Lock()
	if n := s.segLive[seg] - 1; n > 0 {
		s.segLive[seg] = n
	} else {
		delete(s.segLive, seg)
	}
	s.segMu.Unlock()
}

// segLiveCount reads seg's live-record count.
func (s *Store) segLiveCount(seg uint64) int64 {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	return s.segLive[seg]
}

// Tombstoned reports whether the certificate hash was removed here and
// its retraction is still live. The Replicator consults it before
// pulling: a lagging peer must not resurrect a local removal. An
// explicit Publish of the same certificate clears the tombstone.
func (s *Store) Tombstoned(hash []byte) bool {
	s.tmu.Lock()
	_, ok := s.tombstones[string(hash)]
	s.tmu.Unlock()
	return ok
}

// tombstoneSnapshot copies the live tombstones (key -> expiry); the
// snapshot writer serializes it.
func (s *Store) tombstoneSnapshot() map[string]time.Time {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	out := make(map[string]time.Time, len(s.tombstones))
	for k, v := range s.tombstones {
		out[k] = v.expiry
	}
	return out
}

// dropLocked unlinks an entry from all three indexes. Caller holds the
// shard lock.
func (sh *dirShard) dropLocked(e *entry) {
	delete(sh.byHash, e.hashKey)
	sh.byIssuer[e.issuerK] = dropEntry(sh.byIssuer[e.issuerK], e)
	if len(sh.byIssuer[e.issuerK]) == 0 {
		delete(sh.byIssuer, e.issuerK)
	}
	sh.bySubject[e.subjectK] = dropEntry(sh.bySubject[e.subjectK], e)
	if len(sh.bySubject[e.subjectK]) == 0 {
		delete(sh.bySubject, e.subjectK)
	}
}

func dropEntry(es []*entry, e *entry) []*entry {
	for i, x := range es {
		if x == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// Sweep drops every certificate expired at now (and every tombstone
// whose certificate has expired), returns the count of dropped
// certificates, and compacts the WAL when anything was dropped. Run it
// periodically (cmd/sf-certd does) so the indexes don't accumulate
// dead delegations.
func (s *Store) Sweep(now time.Time) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		var dead []*entry
		for _, e := range sh.byHash {
			if !e.expiry.IsZero() && now.After(e.expiry) {
				dead = append(dead, e)
			}
		}
		for _, e := range dead {
			sh.dropLocked(e)
			s.segLiveDecr(e.seg)
			s.merkleDrop(e.hashKey)
		}
		n += len(dead)
		sh.mu.Unlock()
	}
	s.swept.Add(int64(n))
	tombs := 0
	s.tmu.Lock()
	for k, t := range s.tombstones {
		if !t.expiry.IsZero() && now.After(t.expiry) {
			delete(s.tombstones, k)
			s.segLiveDecr(t.seg)
			tombs++
		}
	}
	s.tmu.Unlock()
	if n+tombs > 0 {
		s.compactAfterDrop()
	}
	return n
}

// EvictRevoked drops every certificate the predicate reports revoked
// (keyed by cert.Hash), returns the count, and compacts the WAL when
// anything was dropped. Pair it with cert.RevocationStore.RevokedAt to
// keep the directory from serving delegations a CRL has voided.
// Evicted certificates are tombstoned like removals: a peer that has
// not seen the CRL must not gossip the revoked delegation back in.
func (s *Store) EvictRevoked(revoked func(certHash []byte) bool) int {
	if revoked == nil {
		return 0
	}
	return s.evictWhere(func(e *entry) bool { return revoked([]byte(e.hashKey)) })
}

// EvictRevokedByIssuer is EvictRevoked for predicates that also see
// the certificate's issuer key — pair it with
// cert.RevocationStore.RevokedByIssuerAt so a CRL only voids
// delegations its signer actually issued. This is the eviction the
// daemons and the CRL gossip path use: CRLs that arrive over the
// network carry a valid signature from SOME key, and the issuer match
// is what stops an arbitrary key holder from denying service to
// delegations it never granted.
func (s *Store) EvictRevokedByIssuer(revoked func(certHash []byte, issuerKey string) bool) int {
	if revoked == nil {
		return 0
	}
	return s.evictWhere(func(e *entry) bool { return revoked([]byte(e.hashKey), e.issuerK) })
}

// evictWhere drops every entry the predicate condemns, journaling a
// removal record and tombstoning each (a peer that has not seen the
// CRL must not gossip the certificate back in) and emitting one revoke
// event per drop so subscribed provers shed their copies too. The
// journal record is what keeps the tombstone durable under incremental
// compaction: unlike the old rewrite-everything compactor, a threshold
// rewrite only preserves records it knows are live, so an eviction
// must leave a record like any other retraction. A journal failure
// does not block the eviction — locally refusing to serve a revoked
// delegation outranks tombstone durability.
func (s *Store) evictWhere(dead func(*entry) bool) int {
	n := 0
	var dropped []*entry
	for _, sh := range s.shards {
		sh.mu.Lock()
		var del []*entry
		for _, e := range sh.byHash {
			if dead(e) {
				del = append(del, e)
			}
		}
		for _, e := range del {
			var seg uint64
			if s.wal != nil {
				if sg, err := s.wal.AppendRemove([]byte(e.hashKey), e.expiry); err != nil {
					s.walErrors.Add(1)
				} else {
					seg = sg
				}
			}
			sh.dropLocked(e)
			s.segLiveDecr(e.seg)
			s.merkleDrop(e.hashKey)
			// Under the shard lock, like Remove: a concurrent pull must
			// see the entry or its tombstone, never neither.
			s.addTombstone(e.hashKey, e.expiry, seg)
		}
		sh.mu.Unlock()
		n += len(del)
		dropped = append(dropped, del...)
	}
	for _, e := range dropped {
		s.emitEvent(EventRevoke, []byte(e.hashKey))
	}
	s.evicted.Add(int64(n))
	if n > 0 {
		s.compactAfterDrop()
	}
	return n
}

// compactAfterDrop compacts the WAL incrementally after entries were
// dropped; errors are tolerated (the log is merely larger than
// necessary and still replays to the correct state, because replay
// itself drops expired certificates and Publish dedups).
func (s *Store) compactAfterDrop() {
	if s.wal == nil {
		return
	}
	if err := s.MaybeCompactWAL(); err != nil {
		s.walErrors.Add(1)
	}
}

// liveFrames assembles, per requested segment, the WAL frames of that
// segment's surviving records: indexed certificates whose publish
// record lives there, live tombstones whose remove record lives there,
// and retained events journaled there.
//
// No lock is held across the whole assembly, and none needs to be: the
// requested segments are sealed, so a record's liveness can only
// decrease concurrently — and every death (removal, eviction, ring
// trim) appends its own record to the ACTIVE segment, which replays
// after every sealed segment. A racing death at worst leaves its
// victim in the rewritten segment as a dead record, replayed and then
// overridden by the death record, exactly as if no rewrite had
// happened.
func (s *Store) liveFrames(ids []uint64) map[uint64][]sexp.Sexp {
	want := make(map[uint64]bool, len(ids))
	out := make(map[uint64][]sexp.Sexp, len(ids))
	for _, id := range ids {
		want[id] = true
		out[id] = nil
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, e := range sh.byHash {
			if want[e.seg] {
				out[e.seg] = append(out[e.seg], sexp.List(sexp.String(walTagPublish), e.cert.Sexp()))
			}
		}
		sh.mu.RUnlock()
	}
	s.tmu.Lock()
	for k, t := range s.tombstones {
		if want[t.seg] {
			out[t.seg] = append(out[t.seg], removeRecord([]byte(k), t.expiry))
		}
	}
	s.tmu.Unlock()
	events, boot := s.events.snapshotTail()
	for _, ev := range events {
		if want[ev.seg] {
			out[ev.seg] = append(out[ev.seg], eventRecord(boot<<cursorSeqBits|ev.Seq, ev.Kind, ev.Hash))
		}
	}
	return out
}

// CompactWAL forcibly compacts the whole attached log: the active
// segment is sealed and every sealed segment is rewritten down to its
// live records (empty ones are removed). No-op on a memory-only store.
// Sweeps and evictions use the cheaper MaybeCompactWAL; this is the
// full pass for recovery (dead or torn records must not outlive the
// boot that detected them) and for explicit operator/test use.
func (s *Store) CompactWAL() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.rotateIfNonEmpty(); err != nil {
		return err
	}
	sealed := s.wal.sealedSegments()
	ids := make([]uint64, len(sealed))
	for i, sg := range sealed {
		ids[i] = sg.id
	}
	frames := s.liveFrames(ids)
	for _, id := range ids {
		if err := s.wal.RewriteSegment(id, frames[id]); err != nil {
			return err
		}
	}
	s.wal.noteCompaction()
	return nil
}

// MaybeCompactWAL rewrites only the segments whose live-record ratio
// has fallen below the compaction threshold — the incremental pass
// that keeps compaction I/O proportional to reclaimable garbage
// instead of to store size. The active segment is first sealed if it
// is itself mostly dead, so its garbage becomes reclaimable too.
func (s *Store) MaybeCompactWAL() error {
	if s.wal == nil {
		return nil
	}
	th := s.compactThreshold
	if th <= 0 {
		th = DefaultCompactThreshold
	}
	if act, records := s.wal.activeInfo(); records > 0 &&
		float64(s.segLiveCount(act)) < th*float64(records) {
		if err := s.wal.rotateIfNonEmpty(); err != nil {
			return err
		}
	}
	var ids []uint64
	for _, sg := range s.wal.sealedSegments() {
		if sg.records < 0 {
			continue // contents unknown (opened without replay); CompactWAL handles
		}
		if sg.records == 0 || float64(s.segLiveCount(sg.id)) < th*float64(sg.records) {
			ids = append(ids, sg.id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	frames := s.liveFrames(ids)
	for _, id := range ids {
		if err := s.wal.RewriteSegment(id, frames[id]); err != nil {
			return err
		}
	}
	s.wal.noteCompaction()
	return nil
}

// CloseWAL syncs and closes the attached log (no-op when memory-only).
// The store itself remains queryable; further mutations fail.
func (s *Store) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// SyncWAL forces journaled records to disk; cmd/sf-certd calls it on a
// timer under the "interval" fsync policy.
func (s *Store) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// HasHash reports whether the certificate with the given body hash is
// currently stored.
func (s *Store) HasHash(hash []byte) bool {
	key := string(hash)
	for _, sh := range s.shards {
		sh.mu.RLock()
		_, ok := sh.byHash[key]
		sh.mu.RUnlock()
		if ok {
			return true
		}
	}
	return false
}

// ByHashes returns the stored certificates matching the given hashes
// whose validity contains now; absent hashes are silently skipped. The
// gossip fetch endpoint serves from it.
func (s *Store) ByHashes(hashes [][]byte, now time.Time) []*cert.Cert {
	want := make(map[string]bool, len(hashes))
	for _, h := range hashes {
		want[string(h)] = true
	}
	var out []*cert.Cert
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range want {
			if e, ok := sh.byHash[k]; ok && e.cert.Body.Validity.Contains(now) {
				out = append(out, e.cert)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// PartitionDigest summarizes one gossip partition: how many
// certificates it holds here and the XOR of their 32-byte content
// hashes. Two directories hold the same partition contents exactly
// when count and XOR both match (an adversary cannot steer SHA-256
// outputs, so it cannot craft a colliding XOR), which is all
// anti-entropy needs: equality is cheap, and inequality triggers a
// hash-list pull.
type PartitionDigest struct {
	Partition int
	Count     int
	XOR       [32]byte
}

// partitionOf assigns a certificate (by content-hash key) to its
// gossip partition.
func partitionOf(hashKey string) int {
	return shard.Index(hashKey, GossipPartitions)
}

// Digests summarizes every non-empty gossip partition of the stored
// set. Expired-but-unswept certificates are included — digests
// describe what is stored, and Publish on the pulling side rejects
// anything already expired.
func (s *Store) Digests() []PartitionDigest {
	var counts [GossipPartitions]int
	var xors [GossipPartitions][32]byte
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.byHash {
			p := partitionOf(k)
			counts[p]++
			for i := 0; i < len(xors[p]) && i < len(k); i++ {
				xors[p][i] ^= k[i]
			}
		}
		sh.mu.RUnlock()
	}
	var out []PartitionDigest
	for p, n := range counts {
		if n > 0 {
			out = append(out, PartitionDigest{Partition: p, Count: n, XOR: xors[p]})
		}
	}
	return out
}

// HashesIn lists the content hashes stored in one gossip partition;
// the anti-entropy protocol pulls it only for partitions whose
// digests disagree.
func (s *Store) HashesIn(p int) [][]byte {
	var out [][]byte
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.byHash {
			if partitionOf(k) == p {
				out = append(out, []byte(k))
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of stored certificates.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.byHash)
		sh.mu.RUnlock()
	}
	return n
}

// ShardCounts returns the number of certificates per shard, in shard
// order — the operator's view of issuer skew, and the recovery tests'
// way of asserting a replayed store is shaped identically to a
// never-crashed one.
func (s *Store) ShardCounts() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = len(sh.byHash)
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.tmu.Lock()
	tombs := int64(len(s.tombstones))
	s.tmu.Unlock()
	return Stats{
		Published:  s.published.Load(),
		Duplicates: s.duplicates.Load(),
		Rejected:   s.rejected.Load(),
		Queries:    s.queries.Load(),
		Removed:    s.removed.Load(),
		Swept:      s.swept.Load(),
		Evicted:    s.evicted.Load(),
		WALErrors:  s.walErrors.Load(),
		Tombstones: tombs,
	}
}

// resetStats zeroes the traffic counters; OpenDurable calls it after
// replay so Stats reports traffic since boot, not since the log began.
func (s *Store) resetStats() {
	s.published.Store(0)
	s.duplicates.Store(0)
	s.rejected.Store(0)
	s.queries.Store(0)
	s.removed.Store(0)
	s.swept.Store(0)
	s.evicted.Store(0)
	s.walErrors.Store(0)
}
