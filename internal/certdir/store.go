// Package certdir implements a distributed certificate directory: a
// networked store where principals publish signed delegation
// certificates and provers query by issuer or subject to assemble
// speaks-for chains they do not hold locally.
//
// The paper's Prover (section 4.4) searches a local delegation graph;
// end-to-end authorization across administrative domains additionally
// needs a discovery path, the role SDSI/SPKI assign to certificate
// directories and Vanadium assigns to blessing discovery. A directory
// is pure mechanism: it stores verifiable facts, and knowledge of a
// certificate bestows no authority (core's proofs are not bearer
// capabilities), so the directory itself need not be trusted for
// integrity — only for availability.
//
// The store is sharded by issuer principal so heavy publish/query
// traffic spreads across independent locks, with a secondary
// subject-side index for reverse discovery, expiry sweeping, and
// revocation-aware eviction driven by cert.RevocationStore.
package certdir

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/shard"
)

// DefaultShards is the shard count used when NewStore is given n <= 0.
// 32 keeps per-shard contention negligible at ~100k certs while the
// per-shard fixed cost stays trivial.
const DefaultShards = 32

// entry is one stored certificate with its precomputed index keys.
type entry struct {
	cert     *cert.Cert
	hashKey  string // string(cert.Hash()), the identity for dedup/removal
	issuerK  string
	subjectK string
	expiry   time.Time // zero when unbounded
}

// dirShard is an independently locked slice of the directory. A
// certificate lives in exactly one shard, chosen by its issuer, and
// appears in both of that shard's indexes.
type dirShard struct {
	mu        sync.RWMutex
	byIssuer  map[string][]*entry
	bySubject map[string][]*entry
	byHash    map[string]*entry
}

// Stats counts directory traffic; the service exposes them and the
// benchmarks read them.
type Stats struct {
	Published  int64 // accepted publishes (new certificates)
	Duplicates int64 // publishes deduplicated by hash
	Rejected   int64 // publishes refused (bad signature, expired)
	Queries    int64 // issuer + subject lookups
	Removed    int64 // explicit removals
	Swept      int64 // entries dropped by expiry sweeps
	Evicted    int64 // entries dropped as revoked
}

// Store is the sharded, concurrency-safe certificate directory.
type Store struct {
	shards []*dirShard

	published  atomic.Int64
	duplicates atomic.Int64
	rejected   atomic.Int64
	queries    atomic.Int64
	removed    atomic.Int64
	swept      atomic.Int64
	evicted    atomic.Int64
}

// NewStore returns an empty directory with n shards (DefaultShards
// when n <= 0).
func NewStore(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Store{shards: make([]*dirShard, n)}
	for i := range s.shards {
		s.shards[i] = &dirShard{
			byIssuer:  make(map[string][]*entry),
			bySubject: make(map[string][]*entry),
			byHash:    make(map[string]*entry),
		}
	}
	return s
}

// shardFor picks the shard for an issuer key.
func (s *Store) shardFor(issuerKey string) *dirShard {
	return s.shards[shard.Index(issuerKey, len(s.shards))]
}

// publishCtx verifies certificates on the way in. The directory
// confirms anything demanding revalidation: revalidation is the
// verifier's duty at use time, not the directory's at publish time.
// Publish-time verification shares the process-wide proof cache, so
// re-publishes and certificates already screened by another layer
// cost a lookup instead of a signature check.
func publishCtx(now time.Time) *core.VerifyContext {
	ctx := core.NewVerifyContext()
	ctx.Now = now
	ctx.Revalidate = func([]byte, string) error { return nil }
	ctx.Cache = core.SharedProofCache()
	return ctx
}

// Publish verifies and stores a certificate, reporting whether it was
// newly stored. Certificates with bad signatures or already-expired
// validity are refused; duplicates (same signed body and signature)
// are accepted idempotently with added == false.
func (s *Store) Publish(c *cert.Cert, now time.Time) (added bool, err error) {
	if c == nil {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: nil certificate")
	}
	if !c.Body.Validity.Contains(now) {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: certificate not valid at %s", now.UTC().Format(time.RFC3339))
	}
	if err := c.Verify(publishCtx(now)); err != nil {
		s.rejected.Add(1)
		return false, fmt.Errorf("certdir: refusing certificate: %w", err)
	}
	e := &entry{
		cert:     c,
		hashKey:  string(c.Hash()),
		issuerK:  c.Body.Issuer.Key(),
		subjectK: c.Body.Subject.Key(),
		expiry:   c.Body.Validity.NotAfter,
	}
	sh := s.shardFor(e.issuerK)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.byHash[e.hashKey]; dup {
		s.duplicates.Add(1)
		return false, nil
	}
	sh.byHash[e.hashKey] = e
	sh.byIssuer[e.issuerK] = append(sh.byIssuer[e.issuerK], e)
	sh.bySubject[e.subjectK] = append(sh.bySubject[e.subjectK], e)
	s.published.Add(1)
	return true, nil
}

// ByIssuer returns every stored certificate whose issuer is p and
// whose validity contains now. Only one shard is consulted.
func (s *Store) ByIssuer(p principal.Principal, now time.Time) []*cert.Cert {
	s.queries.Add(1)
	k := p.Key()
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return liveCerts(sh.byIssuer[k], now)
}

// BySubject returns every stored certificate whose subject is p and
// whose validity contains now. Sharding is issuer-keyed, so the
// subject index fans across all shards.
func (s *Store) BySubject(p principal.Principal, now time.Time) []*cert.Cert {
	s.queries.Add(1)
	k := p.Key()
	var out []*cert.Cert
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, liveCerts(sh.bySubject[k], now)...)
		sh.mu.RUnlock()
	}
	return out
}

// liveCerts filters an index bucket by validity at now.
func liveCerts(es []*entry, now time.Time) []*cert.Cert {
	var out []*cert.Cert
	for _, e := range es {
		if e.cert.Body.Validity.Contains(now) {
			out = append(out, e.cert)
		}
	}
	return out
}

// Remove deletes the certificate with the given body hash (cert.Hash)
// and reports whether it was present. Publishers use it to retract a
// delegation before its expiry.
func (s *Store) Remove(hash []byte) bool {
	key := string(hash)
	for _, sh := range s.shards {
		sh.mu.Lock()
		e, ok := sh.byHash[key]
		if ok {
			sh.dropLocked(e)
			s.removed.Add(1)
		}
		sh.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// dropLocked unlinks an entry from all three indexes. Caller holds the
// shard lock.
func (sh *dirShard) dropLocked(e *entry) {
	delete(sh.byHash, e.hashKey)
	sh.byIssuer[e.issuerK] = dropEntry(sh.byIssuer[e.issuerK], e)
	if len(sh.byIssuer[e.issuerK]) == 0 {
		delete(sh.byIssuer, e.issuerK)
	}
	sh.bySubject[e.subjectK] = dropEntry(sh.bySubject[e.subjectK], e)
	if len(sh.bySubject[e.subjectK]) == 0 {
		delete(sh.bySubject, e.subjectK)
	}
}

func dropEntry(es []*entry, e *entry) []*entry {
	for i, x := range es {
		if x == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// Sweep drops every certificate expired at now and returns the count.
// Run it periodically (cmd/sf-certd does) so the indexes don't
// accumulate dead delegations.
func (s *Store) Sweep(now time.Time) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		var dead []*entry
		for _, e := range sh.byHash {
			if !e.expiry.IsZero() && now.After(e.expiry) {
				dead = append(dead, e)
			}
		}
		for _, e := range dead {
			sh.dropLocked(e)
		}
		n += len(dead)
		sh.mu.Unlock()
	}
	s.swept.Add(int64(n))
	return n
}

// EvictRevoked drops every certificate the predicate reports revoked
// (keyed by cert.Hash) and returns the count. Pair it with
// cert.RevocationStore.RevokedAt to keep the directory from serving
// delegations a CRL has voided.
func (s *Store) EvictRevoked(revoked func(certHash []byte) bool) int {
	if revoked == nil {
		return 0
	}
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		var dead []*entry
		for _, e := range sh.byHash {
			if revoked([]byte(e.hashKey)) {
				dead = append(dead, e)
			}
		}
		for _, e := range dead {
			sh.dropLocked(e)
		}
		n += len(dead)
		sh.mu.Unlock()
	}
	s.evicted.Add(int64(n))
	return n
}

// Len returns the number of stored certificates.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.byHash)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Published:  s.published.Load(),
		Duplicates: s.duplicates.Load(),
		Rejected:   s.rejected.Load(),
		Queries:    s.queries.Load(),
		Removed:    s.removed.Load(),
		Swept:      s.swept.Load(),
		Evicted:    s.evicted.Load(),
	}
}
