package certdir

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// --- EventLog ---

func TestEventLogCursor(t *testing.T) {
	l := newEventLog(8)
	evs, next, reset := l.EventsSince(0)
	if len(evs) != 0 || next != l.token(0) || reset {
		t.Fatalf("empty log: evs=%d next=%d reset=%v", len(evs), next, reset)
	}
	l.append(EventRemove, []byte("h1"))
	l.append(EventRevoke, []byte("h2"))
	// Cursor 0 replays the retained tail.
	evs, next, reset = l.EventsSince(0)
	if len(evs) != 2 || next != l.token(2) || reset {
		t.Fatalf("cursor 0: evs=%d next=%d reset=%v", len(evs), next, reset)
	}
	evs, next, reset = l.EventsSince(l.token(1))
	if len(evs) != 1 || evs[0].Kind != EventRevoke || string(evs[0].Hash) != "h2" || next != l.token(2) || reset {
		t.Fatalf("cursor 1: evs=%v next=%d reset=%v", evs, next, reset)
	}
	if evs, _, _ := l.EventsSince(l.token(2)); len(evs) != 0 {
		t.Fatalf("current cursor returned %d events", len(evs))
	}
}

func TestEventLogOverflowResets(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		l.append(EventRemove, []byte{byte(i)})
	}
	// Cursor 2 predates the retained tail (only 7..10 survive).
	evs, next, reset := l.EventsSince(l.token(2))
	if !reset {
		t.Fatal("lagging cursor did not reset")
	}
	if next != l.token(10) || len(evs) != 4 {
		t.Fatalf("reset answer: %d events next=%d, want 4 retained and token(10)", len(evs), next)
	}
	// A same-boot cursor beyond the emitted count resets too.
	if _, _, reset := l.EventsSince(l.token(99)); !reset {
		t.Fatal("future cursor did not reset")
	}
	// Cursor 0 (fresh subscriber) never resets: it has no state the
	// trimmed events could have invalidated.
	if _, _, reset := l.EventsSince(0); reset {
		t.Fatal("fresh cursor reset on a trimmed log")
	}
}

// TestEventLogRestartResets pins the cross-incarnation case: a cursor
// minted by one EventLog must reset against another — even when the
// new incarnation has already emitted MORE events than the cursor's
// sequence, the case a bare sequence comparison would silently
// swallow (delivering events 11.. while events 1..10 of the new life
// were never seen).
func TestEventLogRestartResets(t *testing.T) {
	old := newEventLog(8)
	for i := 0; i < 10; i++ {
		old.append(EventRemove, []byte{byte(i)})
	}
	_, cursor, _ := old.EventsSince(0)

	restarted := newEventLog(8)
	if restarted.boot == old.boot {
		t.Skip("one-in-16-million boot nonce collision")
	}
	for i := 0; i < 12; i++ {
		restarted.append(EventRevoke, []byte{byte(i)})
	}
	evs, next, reset := restarted.EventsSince(cursor)
	if !reset {
		t.Fatal("cursor from a previous incarnation did not reset")
	}
	if len(evs) != 8 { // the full retained tail comes along
		t.Fatalf("reset returned %d events, want the retained 8", len(evs))
	}
	if next != restarted.token(12) {
		t.Fatalf("reset cursor = %d, want the new incarnation's position", next)
	}
}

func TestEventLogLongPoll(t *testing.T) {
	l := newEventLog(8)
	l.append(EventRemove, []byte("x")) // seq 1
	done := make(chan []Event, 1)
	go func() {
		evs, _, _ := l.Wait(l.token(1), 5*time.Second)
		done <- evs
	}()
	// The waiter must block until this append.
	time.Sleep(20 * time.Millisecond)
	l.append(EventRevoke, []byte("y"))
	select {
	case evs := <-done:
		if len(evs) != 1 || string(evs[0].Hash) != "y" {
			t.Fatalf("long poll woke with %v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on append")
	}
	// Timeout path: current cursor, nothing appended.
	start := time.Now()
	evs, _, _ := l.Wait(l.token(2), 50*time.Millisecond)
	if len(evs) != 0 {
		t.Fatalf("timed-out wait returned %v", evs)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("wait returned before its timeout with no events")
	}
}

// --- store events ---

func TestStoreEmitsInvalidationEvents(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("ev-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("ev-bob")).Public())
	st := NewStore(4)

	removed := delegate(t, alice, bobP, tag.Prefix("files"), v)
	revoked := delegate(t, alice, bobP, tag.Prefix("mail"), v)
	for _, c := range []*cert.Cert{removed, revoked} {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}

	st.Remove(removed.Hash())
	rs := cert.NewRevocationStore()
	if err := rs.Add(cert.NewRevocationList(alice, v, revoked.Hash())); err != nil {
		t.Fatal(err)
	}
	if n := st.EvictRevokedByIssuer(rs.RevokedByIssuerAt(now)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	evs, next, reset := st.Events().EventsSince(0)
	if reset || next != st.Events().token(2) || len(evs) != 2 {
		t.Fatalf("events: %v next=%d reset=%v, want remove+revoke", evs, next, reset)
	}
	if evs[0].Kind != EventRemove || string(evs[0].Hash) != string(removed.Hash()) {
		t.Fatalf("event 1 = %s %x, want remove of the removed cert", evs[0].Kind, evs[0].Hash)
	}
	if evs[1].Kind != EventRevoke || string(evs[1].Hash) != string(revoked.Hash()) {
		t.Fatalf("event 2 = %s %x, want revoke of the revoked cert", evs[1].Kind, evs[1].Hash)
	}
	// Sweep expiries are not events.
	st.Sweep(now.Add(2 * time.Hour))
	if got := st.Events().Emitted(); got != 2 {
		t.Fatalf("sweep emitted events (emitted=%d)", got)
	}
}

// TestEvictRevokedByIssuerSignerMatch: a CRL signed by a stranger must
// not evict another issuer's delegation, even if it names the hash.
func TestEvictRevokedByIssuerSignerMatch(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("sm-alice"))
	mallory := sfkey.FromSeed([]byte("sm-mallory"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("sm-bob")).Public())
	st := NewStore(4)
	c := delegate(t, alice, bobP, tag.Prefix("files"), v)
	if _, err := st.Publish(c, now); err != nil {
		t.Fatal(err)
	}

	rs := cert.NewRevocationStore()
	if err := rs.Add(cert.NewRevocationList(mallory, v, c.Hash())); err != nil {
		t.Fatal(err)
	}
	if n := st.EvictRevokedByIssuer(rs.RevokedByIssuerAt(now)); n != 0 {
		t.Fatalf("a stranger's CRL evicted %d certificates", n)
	}
	if err := rs.Add(cert.NewRevocationList(alice, v, c.Hash())); err != nil {
		t.Fatal(err)
	}
	if n := st.EvictRevokedByIssuer(rs.RevokedByIssuerAt(now)); n != 1 {
		t.Fatalf("the issuer's CRL evicted %d certificates, want 1", n)
	}
	if !st.Tombstoned(c.Hash()) {
		t.Fatal("revocation eviction left no tombstone")
	}
}

// --- service endpoints ---

// startRevocableDirectory is startDirectory with the revocation
// endpoints enabled.
func startRevocableDirectory(t *testing.T) (*Store, *cert.RevocationStore, *Client) {
	t.Helper()
	st := NewStore(4)
	svc := NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return st, svc.Revocations, NewClient(ts.URL)
}

func TestAdminCRLEndpoint(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("admin-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("admin-bob")).Public())
	st, rs, cl := startRevocableDirectory(t)

	c := delegate(t, alice, bobP, tag.Prefix("files"), v)
	if err := cl.Publish(c); err != nil {
		t.Fatal(err)
	}

	rl := cert.NewRevocationList(alice, v, c.Hash())
	if err := cl.PushCRL(rl); err != nil {
		t.Fatal(err)
	}
	// Installed, evicted immediately (no sweep needed), idempotent.
	if st.Len() != 0 {
		t.Fatalf("revoked certificate still stored (%d)", st.Len())
	}
	if !rs.Has(rl.Hash()) {
		t.Fatal("CRL not installed in the revocation store")
	}
	if err := cl.PushCRL(rl); err != nil {
		t.Fatalf("duplicate push not idempotent: %v", err)
	}
	// The eviction emitted an event for subscribers.
	hashes, _, reset, err := cl.Events(0, 0)
	if err != nil || reset {
		t.Fatalf("events: %v reset=%v", err, reset)
	}
	if len(hashes) != 1 || string(hashes[0]) != string(c.Hash()) {
		t.Fatalf("events carried %d hashes, want the revoked cert", len(hashes))
	}
}

func TestCRLGossipEndpointDiff(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("crls-alice"))
	_, rs, cl := startRevocableDirectory(t)

	a := cert.NewRevocationList(alice, v, []byte("hash-1-32-bytes-hash-1-32-bytes-"))
	b := cert.NewRevocationList(alice, v, []byte("hash-2-32-bytes-hash-2-32-bytes-"))
	for _, rl := range []*cert.RevocationList{a, b} {
		if _, err := rs.AddNew(rl); err != nil {
			t.Fatal(err)
		}
	}
	all, err := cl.CRLs(nil)
	if err != nil || len(all) != 2 {
		t.Fatalf("CRLs(nil) = %d lists, err %v", len(all), err)
	}
	ha := a.Hash()
	diff, err := cl.CRLs([][]byte{ha[:]})
	if err != nil || len(diff) != 1 || diff[0].Hash() != b.Hash() {
		t.Fatalf("CRLs(have a) = %d lists, want only b (err %v)", len(diff), err)
	}
}

// TestCRLGossipPropagates: a CRL installed at directory A reaches
// directory B in one anti-entropy round, evicting the revoked
// certificate there — revocation travels with the credentials, not
// behind them.
func TestCRLGossipPropagates(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("gossip-crl-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("gossip-crl-bob")).Public())

	stA, _, clA := startRevocableDirectory(t)
	stB, rsB, clB := startRevocableDirectory(t)

	// The same delegation lives at both directories.
	c := delegate(t, alice, bobP, tag.Prefix("files"), v)
	if err := clA.Publish(c); err != nil {
		t.Fatal(err)
	}
	if err := clB.Publish(c); err != nil {
		t.Fatal(err)
	}

	// B replicates from A (pull side only; no loops running — the test
	// drives rounds by hand for determinism).
	repB := NewReplicator(stB, []*Client{clA})
	repB.Revocations = rsB

	// Revoke at A through the admin endpoint: no restart, no sweep.
	rl := cert.NewRevocationList(alice, v, c.Hash())
	if err := clA.PushCRL(rl); err != nil {
		t.Fatal(err)
	}
	if stA.Len() != 0 {
		t.Fatal("revocation did not evict at A")
	}

	// One anti-entropy round at B: the CRL arrives first, evicts, and
	// the certificate pull cannot resurrect the revoked delegation.
	if _, err := repB.Converge(); err != nil {
		t.Fatal(err)
	}
	if !rsB.Has(rl.Hash()) {
		t.Fatal("CRL did not reach B in one gossip round")
	}
	if stB.Len() != 0 {
		t.Fatalf("B still stores %d certificates after the CRL round", stB.Len())
	}
	if !stB.Tombstoned(c.Hash()) {
		t.Fatal("B holds no tombstone for the revoked certificate")
	}
	if st := repB.Stats(); st.CRLsPulled != 1 {
		t.Fatalf("CRLsPulled = %d, want 1", st.CRLsPulled)
	}

	// A forged CRL (tampered signature) from a peer is rejected.
	forged := *rl
	forged.Signature = append([]byte(nil), rl.Signature...)
	forged.Signature[0] ^= 1
	if _, err := rsB.AddNew(&forged); err == nil {
		t.Fatal("forged CRL verified")
	}
}
