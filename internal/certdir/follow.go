package certdir

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
)

// CRLFollower keeps an end verifier's RevocationStore current by
// periodically pulling revocation lists from a certificate directory
// — the verifier-side leg of CRL gossip. Directories already spread
// CRLs among themselves (Replicator) and provers already drop
// invalidated chains (Subscribe), but an enforcing server such as
// sf-dbserver learns CRLs only from its operator (-crl file, admin
// endpoint). A follower closes that last gap: revoke at any
// directory and, within one gossip round plus one follow interval,
// every following verifier's next authorization check re-verifies
// against the revocation (the install bumps the shared proof-cache
// epoch, so no cached verdict survives it).
//
// Pulls are incremental (the peer is told which CRL hashes the store
// already holds) and verify-before-apply: AddNewBatch checks every
// signature, so a hostile or corrupted directory cannot plant a CRL
// its signer never issued.
type CRLFollower struct {
	Client *Client
	Store  *cert.RevocationStore
	// Interval between pulls; DefaultGossipInterval when zero.
	// Set before Start.
	Interval time.Duration
	// OnError, when set, observes pull failures (the follower itself
	// retries forever; a directory briefly down just delays the next
	// pull).
	OnError func(error)

	pulled   atomic.Int64 // CRLs newly installed
	rejected atomic.Int64 // CRLs refused (bad signature)
	rounds   atomic.Int64 // completed pull rounds

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewCRLFollower follows c's CRLs into st.
func NewCRLFollower(c *Client, st *cert.RevocationStore) *CRLFollower {
	return &CRLFollower{Client: c, Store: st}
}

// Pull performs one incremental round: fetch the CRLs the store does
// not hold, verify, install. Returns how many lists were newly
// installed. Safe to call directly (sf-dbserver drives it from the
// runtime ticker); Start wraps it in a loop for harnesses without a
// runtime.
func (f *CRLFollower) Pull() (added int, err error) {
	lists := f.Store.Lists()
	have := make([][]byte, 0, len(lists))
	for _, rl := range lists {
		h := rl.Hash()
		have = append(have, append([]byte(nil), h[:]...))
	}
	fresh, err := f.Client.CRLs(have)
	if err != nil {
		return 0, err
	}
	if len(fresh) == 0 {
		f.rounds.Add(1)
		return 0, nil
	}
	addedOK, errs := f.Store.AddNewBatch(fresh)
	for i := range fresh {
		switch {
		case errs[i] != nil:
			f.rejected.Add(1)
		case addedOK[i]:
			added++
		}
	}
	f.pulled.Add(int64(added))
	f.rounds.Add(1)
	return added, nil
}

// Start launches the pull loop. Stop halts it.
func (f *CRLFollower) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stop != nil {
		return
	}
	iv := f.Interval
	if iv <= 0 {
		iv = DefaultGossipInterval
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(iv)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if _, err := f.Pull(); err != nil && f.OnError != nil {
					f.OnError(err)
				}
			}
		}
	}(f.stop, f.done)
}

// Stop halts the loop started by Start and waits for it to exit.
func (f *CRLFollower) Stop() {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop, f.done = nil, nil
	f.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// FollowerStats is a point-in-time counter snapshot.
type FollowerStats struct {
	Pulled   int64 // CRLs newly installed
	Rejected int64 // CRLs refused (bad signature)
	Rounds   int64 // completed pull rounds
}

// Stats snapshots the follower's counters.
func (f *CRLFollower) Stats() FollowerStats {
	return FollowerStats{
		Pulled:   f.pulled.Load(),
		Rejected: f.rejected.Load(),
		Rounds:   f.rounds.Load(),
	}
}
