package certdir

import "sync"

// Merkle anti-entropy summaries. The flat digest scheme
// (Store.Digests) ships all 64 partition summaries every round and a
// full hash list for every disagreeing partition, which is linear in
// store size. The Merkle scheme arranges the same count+XOR summaries
// as a fixed-arity tree over content-hash-partitioned leaves: a round
// exchanges one root summary, descends only into disagreeing subtrees
// (MerkleArity node summaries per disagreeing node), and fetches the
// hash list of only the disagreeing leaves — so a single-certificate
// diff at 100k stored certificates costs O(log n) tree nodes instead
// of 64 full partition lists.
//
// The tree shape is a protocol constant on both sides of a gossip
// exchange: MerkleLeaves leaves (certificates assigned by the first
// 12 bits of their content hash), arity MerkleArity, nodes numbered
// as an implicit heap (children of node i are i*MerkleArity+1 ..
// i*MerkleArity+MerkleArity, root 0). The root endpoint echoes the
// shape so a puller can detect a mismatched peer and fall back to the
// flat protocol rather than misinterpret node indexes.
//
// Summaries are (count, XOR of content hashes), exactly the flat
// scheme's comparison: two subtrees hold the same certificate set
// precisely when count and XOR both match, and an adversary cannot
// steer SHA-256 outputs to craft a colliding XOR. On the wire the XOR
// is truncated to MerkleSumBytes bytes — still unforgeable for the
// same reason, and it keeps a descent round's reply small.

const (
	// MerkleLeaves is the leaf count of the anti-entropy hash tree.
	// 4096 leaves keep a leaf's hash list to ~25 entries at 100k
	// certificates, so the final leaf fetch stays under a kilobyte.
	MerkleLeaves = 4096
	// MerkleArity is the tree fan-out: 8^4 = 4096, so a descent from
	// the root to a single disagreeing leaf costs 4 rounds of 8 node
	// summaries each.
	MerkleArity = 8
	// MerkleSumBytes is the wire width of a node summary's XOR.
	MerkleSumBytes = 16

	// merkleFirstLeaf is the heap index of the first leaf node:
	// 1 + 8 + 64 + 512 inner nodes precede the leaves.
	merkleFirstLeaf = 1 + MerkleArity + MerkleArity*MerkleArity + MerkleArity*MerkleArity*MerkleArity
	// MerkleNodeCount is the total node count of the implicit heap.
	MerkleNodeCount = merkleFirstLeaf + MerkleLeaves
)

// MerkleSummary is one node's wire summary.
type MerkleSummary struct {
	Index int
	Count int
	XOR   [MerkleSumBytes]byte
}

// merkleState is the incrementally maintained per-leaf summary array.
// Inner-node summaries are aggregated on demand (a full tree walk is
// ~MerkleNodeCount cheap XORs), so mutations pay one leaf update and
// gossip rounds pay only for the nodes a peer actually asks about.
type merkleState struct {
	mu    sync.Mutex
	count [MerkleLeaves]int32
	xor   [MerkleLeaves][32]byte
}

// merkleLeafOf assigns a certificate (by content-hash key) to its
// leaf: the first 12 bits of the SHA-256 content hash. Uniform by
// construction, and — unlike shard.Index — trivially stable across
// implementations of the wire protocol.
func merkleLeafOf(hashKey string) int {
	if len(hashKey) < 2 {
		return 0
	}
	return int(hashKey[0])<<4 | int(hashKey[1])>>4
}

// merkleIsLeaf reports whether a heap index names a leaf.
func merkleIsLeaf(idx int) bool { return idx >= merkleFirstLeaf }

// merkleChildren appends the heap indexes of idx's children to dst.
func merkleChildren(dst []int, idx int) []int {
	for i := 1; i <= MerkleArity; i++ {
		dst = append(dst, idx*MerkleArity+i)
	}
	return dst
}

// merkleLeafRange returns the half-open leaf-array range [lo, hi)
// summarized by heap node idx.
func merkleLeafRange(idx int) (lo, hi int) {
	start, count := 0, 1
	for idx >= start+count {
		start += count
		count *= MerkleArity
	}
	span := MerkleLeaves / count
	off := idx - start
	return off * span, (off + 1) * span
}

// merkleAdd folds one stored certificate into its leaf summary.
func (s *Store) merkleAdd(hashKey string) { s.merkle.update(hashKey, 1) }

// merkleDrop removes one certificate from its leaf summary.
func (s *Store) merkleDrop(hashKey string) { s.merkle.update(hashKey, -1) }

// update XORs the hash into its leaf (XOR is its own inverse, so add
// and drop are the same fold) and moves the count by delta.
func (m *merkleState) update(hashKey string, delta int32) {
	leaf := merkleLeafOf(hashKey)
	m.mu.Lock()
	m.count[leaf] += delta
	for i := 0; i < 32 && i < len(hashKey); i++ {
		m.xor[leaf][i] ^= hashKey[i]
	}
	m.mu.Unlock()
}

// MerkleSummaries computes the summaries of the requested heap nodes
// from the leaf array. Out-of-range indexes are skipped. The whole
// answer is computed under one lock acquisition so a reply describes
// a single consistent tree state.
func (s *Store) MerkleSummaries(idxs []int) []MerkleSummary {
	out := make([]MerkleSummary, 0, len(idxs))
	m := &s.merkle
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, idx := range idxs {
		if idx < 0 || idx >= MerkleNodeCount {
			continue
		}
		lo, hi := merkleLeafRange(idx)
		sum := MerkleSummary{Index: idx}
		var x [32]byte
		for l := lo; l < hi; l++ {
			sum.Count += int(m.count[l])
			for i := range x {
				x[i] ^= m.xor[l][i]
			}
		}
		copy(sum.XOR[:], x[:MerkleSumBytes])
		out = append(out, sum)
	}
	return out
}

// MerkleRoot is the summary of the whole stored set.
func (s *Store) MerkleRoot() MerkleSummary {
	return s.MerkleSummaries([]int{0})[0]
}

// HashesInLeaves lists the content hashes stored in each requested
// leaf (by leaf-array index, not heap index), in one pass over the
// shards. The anti-entropy descent pulls it only for leaves whose
// summaries disagree.
func (s *Store) HashesInLeaves(leaves []int) map[int][][]byte {
	want := make(map[int]bool, len(leaves))
	for _, l := range leaves {
		if l >= 0 && l < MerkleLeaves {
			want[l] = true
		}
	}
	out := make(map[int][][]byte, len(want))
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.byHash {
			if l := merkleLeafOf(k); want[l] {
				out[l] = append(out[l], []byte(k))
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// merkleRecomputed rebuilds the leaf summaries from a full shard scan;
// the consistency test asserts it matches the incremental state.
func (s *Store) merkleRecomputed() ([MerkleLeaves]int32, [MerkleLeaves][32]byte) {
	var count [MerkleLeaves]int32
	var xor [MerkleLeaves][32]byte
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.byHash {
			l := merkleLeafOf(k)
			count[l]++
			for i := 0; i < 32 && i < len(k); i++ {
				xor[l][i] ^= k[i]
			}
		}
		sh.mu.RUnlock()
	}
	return count, xor
}

// merkleSnapshot copies the incremental leaf summaries (test hook).
func (s *Store) merkleSnapshot() ([MerkleLeaves]int32, [MerkleLeaves][32]byte) {
	s.merkle.mu.Lock()
	defer s.merkle.mu.Unlock()
	return s.merkle.count, s.merkle.xor
}
