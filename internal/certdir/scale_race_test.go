//go:build race

package certdir

// raceEnabled scales the big anti-entropy tests down under the race
// detector: the 100k-certificate byte-budget corpus would take minutes
// with race instrumentation, and the interleaving coverage it buys is
// identical at small scale. The full-size bound is asserted by the
// non-race run of the same test.
const raceEnabled = true
