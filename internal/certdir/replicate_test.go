package certdir

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// node is one in-process directory: store + HTTP service + a client
// other nodes dial.
type node struct {
	store  *Store
	client *Client
}

func newNode(t *testing.T) *node {
	t.Helper()
	st := NewStore(4)
	ts := httptest.NewServer(NewService(st))
	t.Cleanup(ts.Close)
	return &node{store: st, client: NewClient(ts.URL)}
}

// fastReplicator wires a replicator with test-friendly timings.
func fastReplicator(st *Store, peers ...*node) *Replicator {
	clients := make([]*Client, len(peers))
	for i, p := range peers {
		clients[i] = p.client
	}
	r := NewReplicator(st, clients)
	r.Backoff = 5 * time.Millisecond
	r.Interval = time.Hour // tests drive Converge explicitly; pushes are immediate
	return r
}

// certDelegate is the goroutine-safe variant of store_test's delegate
// helper: it returns the error instead of calling t.Fatal.
func certDelegate(priv *sfkey.PrivateKey, subject principal.Principal, name string, now time.Time) (*cert.Cert, error) {
	return cert.Delegate(priv, subject, principal.KeyOf(priv.Public()),
		tag.Literal(name), core.Until(now.Add(time.Hour)))
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPushOnPublish(t *testing.T) {
	now := time.Now()
	a, b := newNode(t), newNode(t)
	rep := fastReplicator(a.store, b)
	rep.Start()
	defer rep.Stop()

	priv := sfkey.FromSeed([]byte("push-issuer"))
	c := delegate(t, priv, principal.KeyOf(sfkey.FromSeed([]byte("push-subj")).Public()),
		tag.Prefix("files"), core.Until(now.Add(time.Hour)))
	if _, err := a.store.Publish(c, now); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "push A->B", func() bool { return b.store.HasHash(c.Hash()) })

	// Removal fans out too, and tombstones the peer.
	if !a.store.Remove(c.Hash()) {
		t.Fatal("remove failed")
	}
	waitUntil(t, "remove push A->B", func() bool { return !b.store.HasHash(c.Hash()) })
	if !b.store.Tombstoned(c.Hash()) {
		t.Fatal("peer removal left no tombstone")
	}
	if st := rep.Stats(); st.Pushes < 2 || st.PushFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAntiEntropyPull(t *testing.T) {
	now := time.Now()
	a, b := newNode(t), newNode(t)

	// A accumulates 20 certs with nobody pushing (e.g. B was down).
	var certs []string
	for i := 0; i < 20; i++ {
		priv := sfkey.FromSeed([]byte(fmt.Sprintf("ae-issuer-%d", i%3)))
		c := delegate(t, priv, principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("ae-subj-%d", i))).Public()),
			tag.Literal(fmt.Sprintf("ae-r%d", i)), core.Until(now.Add(time.Hour)))
		if _, err := a.store.Publish(c, now); err != nil {
			t.Fatal(err)
		}
		certs = append(certs, string(c.Hash()))
	}

	rep := fastReplicator(b.store, a)
	pulled, err := rep.Converge()
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 20 || b.store.Len() != 20 {
		t.Fatalf("pulled %d, stored %d, want 20/20", pulled, b.store.Len())
	}
	for _, h := range certs {
		if !b.store.HasHash([]byte(h)) {
			t.Fatal("pulled set incomplete")
		}
	}
	// Converged: the next round moves nothing.
	if pulled, err := rep.Converge(); err != nil || pulled != 0 {
		t.Fatalf("second round pulled %d (err %v), want 0", pulled, err)
	}
}

func TestAntiEntropyRespectsTombstones(t *testing.T) {
	now := time.Now()
	a, b := newNode(t), newNode(t)
	priv := sfkey.FromSeed([]byte("tomb-issuer"))
	c := delegate(t, priv, principal.KeyOf(sfkey.FromSeed([]byte("tomb-subj")).Public()),
		tag.All(), core.Until(now.Add(time.Hour)))
	for _, n := range []*node{a, b} {
		if _, err := n.store.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}

	// B retracts; A (a lagging peer) still serves the cert. B's next
	// pull must not resurrect it — and must repair A by re-pushing the
	// removal A's push never saw.
	if !b.store.Remove(c.Hash()) {
		t.Fatal("remove failed")
	}
	rep := fastReplicator(b.store, a)
	if pulled, err := rep.Converge(); err != nil || pulled != 0 {
		t.Fatalf("pulled %d (err %v), want 0", pulled, err)
	}
	if b.store.HasHash(c.Hash()) {
		t.Fatal("anti-entropy resurrected a removed certificate")
	}
	if a.store.HasHash(c.Hash()) {
		t.Fatal("anti-entropy did not propagate the removal to the lagging peer")
	}
	if !a.store.Tombstoned(c.Hash()) {
		t.Fatal("propagated removal left no tombstone at the peer")
	}

	// A gossip pull must yield to the tombstone even when racing past
	// the hash-list check (the atomic re-check inside PublishPulled).
	if added, err := b.store.PublishPulled(c, now); err != nil || added {
		t.Fatalf("PublishPulled over a tombstone: added=%v err=%v, want refusal", added, err)
	}

	// An explicit re-publish at B outranks the old retraction.
	if added, err := b.store.Publish(c, now); err != nil || !added {
		t.Fatalf("re-publish: %v %v", added, err)
	}
}

// TestThreeNodeConvergence floods concurrent publishes through a full
// mesh; run under -race (CI does) to exercise the hook, queue, and
// gossip paths together.
func TestThreeNodeConvergence(t *testing.T) {
	now := time.Now()
	nodes := []*node{newNode(t), newNode(t), newNode(t)}
	reps := make([]*Replicator, len(nodes))
	for i, n := range nodes {
		var peers []*node
		for j, p := range nodes {
			if j != i {
				peers = append(peers, p)
			}
		}
		reps[i] = fastReplicator(n.store, peers...)
		reps[i].Start()
		defer reps[i].Stop()
	}

	const perNode = 15
	done := make(chan error, len(nodes))
	for i, n := range nodes {
		go func(i int, n *node) {
			for j := 0; j < perNode; j++ {
				priv := sfkey.FromSeed([]byte(fmt.Sprintf("mesh-%d-issuer-%d", i, j%2)))
				subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("mesh-%d-subj-%d", i, j))).Public())
				c, err := certDelegate(priv, subj, fmt.Sprintf("mesh-%d-%d", i, j), now)
				if err == nil {
					_, err = n.store.Publish(c, now)
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, n)
	}
	for range nodes {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	total := perNode * len(nodes)
	waitUntil(t, "mesh convergence", func() bool {
		for _, rep := range reps {
			rep.Converge() // repair anything the push flood shed
		}
		for _, n := range nodes {
			if n.store.Len() != total {
				return false
			}
		}
		return true
	})
}
