package certdir

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/cert"
	"repro/internal/sexp"
)

// SnapshotFileName is the snapshot artifact the daemon maintains in
// its data directory (next to the WAL segments) when -snapshot-every
// is set; the snapshot endpoint serves it as written.
const SnapshotFileName = "certdir.snap"

// Snapshot bootstrap. A cold directory joining an established mesh
// used to converge by gossip alone: thousands of hash-list diffs and
// fetch round trips, each batch individually verified. A snapshot
// collapses that into ONE bulk transfer — the peer's whole live state,
// streamed as the same CRC-framed records the WAL uses — followed by
// ordinary gossip for whatever changed during the transfer.
//
// Stream format (each line one sexp.AppendFrame frame):
//
//	(snap-header (version 1) (cursor <event-seq>))
//	(wal-publish <certificate>)        ... one per live certificate
//	(wal-remove <hash> <expiry-unix>)  ... one per live tombstone
//	(snap-crl <crl>)                   ... one per installed CRL
//	(snap-end (count <records>))
//
// The record frames reuse the WAL's publish/remove encoding, so the
// snapshot consumer is a cousin of WAL replay and inherits its
// ownership rule (typed decoders deep-copy what they keep). The
// trailer count lets a reader distinguish a complete snapshot from a
// stream truncated by a crash or severed connection; a truncated
// stream aborts the bootstrap and the joiner falls back to gossip.
//
// Trust: a snapshot grants nothing. Every certificate goes through
// cert.VerifyBatch before PublishPulled indexes it — the same
// verify-before-index discipline as gossip pulls — and every CRL is
// verified by AddNewBatch. A malicious snapshot server can withhold
// state but cannot plant any.
//
// The header cursor is the serving store's event sequence at snapshot
// time, as a BARE sequence number (no boot nonce): the nonce is an
// incarnation artifact, and keeping it out of the snapshot keeps the
// byte stream a pure function of directory content — which is what
// lets the crash-safety tests compare a recovered node's snapshot
// byte-for-byte against its uncrashed twin's.

// Snapshot frame tags (record frames reuse walTagPublish/walTagRemove).
const (
	snapTagHeader = "snap-header"
	snapTagCRL    = "snap-crl"
	snapTagEnd    = "snap-end"
)

// snapTrailerCount extracts the record count from a snap-end frame.
func snapTrailerCount(e sexp.Sexp) (int, bool) {
	c := e.Child("count")
	if c == nil || c.Len() != 2 {
		return 0, false
	}
	n, err := strconv.Atoi(c.Nth(1).Text())
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// WriteSnapshot streams the store's live state to w in the snapshot
// format above: certificates live at now, unexpired tombstones, and
// the installed CRLs (revs may be nil). The stream is deterministic —
// entries ordered by content hash, tombstones by key, CRLs by hash —
// so two stores holding the same state at the same instant produce
// identical bytes. Returns the bytes written.
//
// Consistency: the state is collected under brief per-shard read
// locks, not one global freeze, so a snapshot taken under concurrent
// writes is a point-in-time-ish view — fine for bootstrap, where tail
// gossip reconciles anything that moved during the write.
func (s *Store) WriteSnapshot(w io.Writer, revs *cert.RevocationStore, now time.Time) (int, error) {
	// Collect live entries, sorted by hash key for determinism.
	type liveEnt struct {
		key string
		c   *cert.Cert
	}
	var ents []liveEnt
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, e := range sh.byHash {
			if e.expiry.IsZero() || now.Before(e.expiry) {
				ents = append(ents, liveEnt{key: k, c: e.cert})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })

	tombs := s.tombstoneSnapshot()
	keys := make([]string, 0, len(tombs))
	for k, exp := range tombs {
		if exp.IsZero() || now.Before(exp) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var lists []*cert.RevocationList
	if revs != nil {
		lists = append(lists, revs.Lists()...)
		sort.Slice(lists, func(i, j int) bool {
			hi, hj := lists[i].Hash(), lists[j].Hash()
			return bytes.Compare(hi[:], hj[:]) < 0
		})
	}

	n := 0
	buf := sexp.GetBuf()
	defer sexp.PutBuf(buf)
	emit := func(e sexp.Sexp) error {
		buf = sexp.AppendFrame(buf[:0], e)
		wn, err := w.Write(buf)
		n += wn
		return err
	}

	cursor := s.events.Emitted()
	header := sexp.List(sexp.String(snapTagHeader),
		sexp.List(sexp.String("version"), sexp.String("1")),
		sexp.List(sexp.String("cursor"), sexp.String(strconv.FormatUint(cursor, 10))))
	if err := emit(header); err != nil {
		return n, err
	}
	records := 0
	for _, le := range ents {
		if err := emit(sexp.List(sexp.String(walTagPublish), le.c.Sexp())); err != nil {
			return n, err
		}
		records++
	}
	for _, k := range keys {
		if err := emit(removeRecord([]byte(k), tombs[k])); err != nil {
			return n, err
		}
		records++
	}
	for _, rl := range lists {
		if err := emit(sexp.List(sexp.String(snapTagCRL), rl.Sexp())); err != nil {
			return n, err
		}
		records++
	}
	trailer := sexp.List(sexp.String(snapTagEnd),
		sexp.List(sexp.String("count"), sexp.String(strconv.Itoa(records))))
	if err := emit(trailer); err != nil {
		return n, err
	}
	return n, nil
}

// WriteSnapshotFile writes a snapshot to path with the WAL's
// durability discipline — temp file, fsync, atomic rename, directory
// sync — so a reader never sees a half-written artifact and a crash
// mid-write leaves either the previous snapshot or the new one,
// nothing in between.
func WriteSnapshotFile(path string, st *Store, revs *cert.RevocationStore, now time.Time) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("certdir: snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err = st.WriteSnapshot(bw, revs, now); err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err == nil {
		err = syncDir(filepath.Dir(path))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("certdir: snapshot: %w", err)
	}
	return nil
}

// AdoptTombstone installs a retraction learned from a snapshot: the
// certificate was removed at the serving directory, so the
// bootstrapping one must refuse to pull it back even though it never
// indexed it. Journaled like a local Remove (so the tombstone survives
// a restart) but emits no event — this node's subscribers never saw
// the certificate, so there is nothing to invalidate. Expired
// retractions are dropped, exactly as Sweep would.
//
// Ordering: the tombstone is installed before the entry scan, so a
// publish racing the adoption is either seen by the scan (and
// dropped) or runs after it and clears the tombstone under its shard
// lock — the store never holds both an entry and its tombstone.
func (s *Store) AdoptTombstone(hash []byte, expiry time.Time, now time.Time) {
	if !expiry.IsZero() && !now.Before(expiry) {
		return
	}
	key := string(hash)
	var seg uint64
	if s.wal != nil {
		sg, err := s.wal.AppendRemove(hash, expiry)
		if err != nil {
			s.walErrors.Add(1)
		} else {
			seg = sg
		}
	}
	s.addTombstone(key, expiry, seg)
	for _, sh := range s.shards {
		sh.mu.Lock()
		if e, ok := sh.byHash[key]; ok {
			sh.dropLocked(e)
			s.segLiveDecr(e.seg)
			s.merkleDrop(e.hashKey)
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
	}
}
