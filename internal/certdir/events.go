package certdir

import (
	"crypto/rand"
	"encoding/binary"
	"sync"
	"time"
)

// Event is one invalidation fact the directory emits towards its
// subscribers: a certificate (named by body hash, cert.Hash) stopped
// being servable here before its natural expiry — retracted by its
// publisher ("remove") or voided by a CRL ("revoke"). Expiry is NOT
// an event: every consumer already checks validity windows, so the
// stream carries only the facts a subscriber cannot infer from the
// certificates it holds.
//
// The stream is how the directory closes the last invalidation window
// named in the ROADMAP: provers cache fetched certificates until
// expiry, so without a push channel a revoked delegation keeps
// proving at every prover that fetched it. A subscriber
// (prover.Subscription) long-polls EventsSince and drops matching
// cached edges and proof-cache verdicts the moment the directory
// learns of the revocation.
type Event struct {
	Seq  uint64
	Kind string // "remove" | "revoke"
	Hash []byte // certificate body hash

	// seg is the WAL segment holding this event's journal record
	// (0 = not journaled); the segment compactor uses it to keep
	// retained events durable and reclaim trimmed ones.
	seg uint64
}

// Event kinds.
const (
	EventRemove = "remove"
	EventRevoke = "revoke"
)

// DefaultEventLogSize bounds the retained event tail. Events are a
// few dozen bytes each; 4096 of them cover hours of realistic
// revocation traffic, and a subscriber that falls further behind gets
// a reset (it flushes coarsely) instead of silently missing events.
const DefaultEventLogSize = 4096

// EventLog is the bounded, append-only sequence of invalidation
// events behind the directory's /certdir/events endpoint. Sequence
// numbers start at 1 and never repeat within a process; the log
// retains only the most recent DefaultEventLogSize events, so a
// subscriber that lags past the retained tail — or that carries a
// cursor from a previous directory incarnation — is told to reset
// rather than left with a silent gap.
//
// Cursors handed to subscribers are tokens, not bare sequence
// numbers: the high bits carry a random per-incarnation boot nonce,
// the low cursorSeqBits the sequence. A cursor minted by a previous
// incarnation therefore never aliases a position in this one — it
// fails the nonce comparison and resets, even when the restarted
// directory has already emitted MORE events than the cursor's
// sequence (the case a bare comparison would silently swallow).
type EventLog struct {
	mu     sync.Mutex
	ring   []Event
	next   uint64        // seq the next appended event will get
	boot   uint64        // per-incarnation nonce in every cursor's high bits
	notify chan struct{} // closed on append, then replaced
	max    int
}

// cursorSeqBits is how much of a cursor token holds the sequence
// number; 2^40 events outlasts any process while leaving 24 bits of
// boot nonce (collision chance across a restart: 1 in 16 million —
// and a collision merely delays invalidation until the certificates
// expire, it never grants authority).
const cursorSeqBits = 40

func newEventLog(max int) *EventLog {
	if max <= 0 {
		max = DefaultEventLogSize
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		// Fallback: a constant nonce only weakens restart detection to
		// the bare sequence comparison, never correctness.
		nonce = [8]byte{1}
	}
	boot := binary.BigEndian.Uint64(nonce[:]) >> cursorSeqBits
	if boot == 0 {
		boot = 1 // boot 0 would make token(0) == 0, the fresh cursor
	}
	return &EventLog{next: 1, boot: boot, notify: make(chan struct{}), max: max}
}

// token turns a local sequence number into a subscriber-facing cursor.
func (l *EventLog) token(seq uint64) uint64 {
	return l.boot<<cursorSeqBits | seq
}

// append records one event and wakes every waiting long-poll.
func (l *EventLog) append(kind string, hash []byte) {
	l.appendWith(kind, hash, nil)
}

// appendWith is append with a journal hook: journal (when non-nil) is
// called under l.mu with the cursor token the new event will carry and
// returns the WAL segment its record landed in. Running the hook under
// the lock means ring order and journal order cannot disagree — the
// same discipline Store.publish applies under its shard lock; the hook
// is file I/O only, never network. Events trimmed off the ring are
// returned so the caller can retire their journal records.
func (l *EventLog) appendWith(kind string, hash []byte, journal func(token uint64) (seg uint64)) (evicted []Event) {
	l.mu.Lock()
	var seg uint64
	if journal != nil {
		seg = journal(l.token(l.next))
	}
	l.ring = append(l.ring, Event{
		Seq:  l.next,
		Kind: kind,
		Hash: append([]byte(nil), hash...),
		seg:  seg,
	})
	l.next++
	evicted = l.trimLocked()
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
	return evicted
}

// restore re-installs one event from its WAL record during replay,
// adopting the journaled token's boot nonce and sequence so cursors
// minted before the restart keep working. Once adopted, the boot nonce
// persists for the rest of the process: events appended after replay
// continue the journaled incarnation rather than starting a new one.
func (l *EventLog) restore(token uint64, kind string, hash []byte, seg uint64) (evicted []Event) {
	boot := token >> cursorSeqBits
	seq := token & (1<<cursorSeqBits - 1)
	if boot == 0 || seq == 0 {
		return nil // corrupt token; drop rather than poison the cursor space
	}
	l.mu.Lock()
	if boot != l.boot {
		// First restored event (or a log spanning incarnations, which
		// compaction never produces): adopt the newest incarnation seen.
		l.boot = boot
		l.ring = l.ring[:0]
	}
	l.ring = append(l.ring, Event{
		Seq:  seq,
		Kind: kind,
		Hash: append([]byte(nil), hash...),
		seg:  seg,
	})
	l.next = seq + 1
	evicted = l.trimLocked()
	l.mu.Unlock()
	return evicted
}

// trimLocked bounds the ring, returning what fell off. Caller holds l.mu.
func (l *EventLog) trimLocked() (evicted []Event) {
	if len(l.ring) <= l.max {
		return nil
	}
	cut := len(l.ring) - l.max
	evicted = append([]Event(nil), l.ring[:cut]...)
	// Copy rather than reslice so the trimmed prefix's backing
	// memory (and the hashes it points at) is actually released.
	l.ring = append([]Event(nil), l.ring[cut:]...)
	return evicted
}

// snapshotTail copies the retained events and the current boot nonce;
// the segment compactor reconstructs journal records from it.
func (l *EventLog) snapshotTail() (events []Event, boot uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.ring...), l.boot
}

// sinceLocked computes the answer for a cursor. Caller holds l.mu.
//
// Cursor semantics: after is the cursor (token) from the subscriber's
// previous poll; 0 is the fresh-subscription cursor and simply
// replays the retained tail (a fresh subscriber holds no state the
// old events could invalidate, so the replay is harmless — and
// treating 0 like any other cursor means a subscriber that connected
// while the log was still empty keeps working once events arrive).
// reset is true when a non-zero cursor cannot be served continuously:
// its boot nonce belongs to a previous directory incarnation, or it
// predates the retained tail (the subscriber lagged past the ring).
// A reset subscriber must invalidate coarsely — it cannot know what
// it missed; the retained tail is still returned so the freshest
// events apply precisely.
func (l *EventLog) sinceLocked(after uint64) (evs []Event, next uint64, reset bool) {
	latest := l.next - 1 // highest seq assigned so far
	next = l.token(latest)
	seq := uint64(0) // position to serve from; 0 replays the tail
	if after != 0 {
		switch s := after & (1<<cursorSeqBits - 1); {
		case after>>cursorSeqBits != l.boot:
			// Minted by a previous incarnation (or corrupt): however its
			// sequence compares to ours, the gap is unknowable.
			reset = true
		case s > latest:
			// Our boot but a future position: cannot happen for an honest
			// subscriber; treat as unknowable rather than trusting it.
			reset = true
		default:
			seq = s
			first := l.next // first retained seq (empty ring: nothing retained)
			if len(l.ring) > 0 {
				first = l.ring[0].Seq
			}
			if seq+1 < first {
				reset = true
			}
		}
	}
	for _, e := range l.ring {
		if e.Seq > seq {
			evs = append(evs, e)
		}
	}
	return evs, next, reset
}

// EventsSince returns the events after the cursor (see sinceLocked for
// cursor semantics), without waiting.
func (l *EventLog) EventsSince(after uint64) (evs []Event, next uint64, reset bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceLocked(after)
}

// Wait is EventsSince with a long-poll: when the cursor is already
// current it blocks until an event is appended or the timeout lapses,
// whichever comes first. A zero timeout never blocks.
func (l *EventLog) Wait(after uint64, timeout time.Duration) (evs []Event, next uint64, reset bool) {
	//sfvet:ignore clockcheck the long-poll deadline is a real-time I/O timeout, not certificate-validity time
	deadline := time.Now().Add(timeout)
	for {
		l.mu.Lock()
		evs, next, reset = l.sinceLocked(after)
		notify := l.notify
		l.mu.Unlock()
		if len(evs) > 0 || reset {
			return evs, next, reset
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return evs, next, reset
		}
		t := time.NewTimer(remain)
		select {
		case <-notify:
			t.Stop()
		case <-t.C:
			return l.EventsSince(after)
		}
	}
}

// Len reports how many events are currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Emitted reports how many events have ever been appended; the stats
// endpoint exposes it.
func (l *EventLog) Emitted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}
