//go:build !race

package certdir

// raceEnabled scales the big anti-entropy tests down under the race
// detector; see scale_race_test.go.
const raceEnabled = false
