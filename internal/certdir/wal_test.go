package certdir

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// walCorpus signs n certificates from a handful of issuers, stable
// across calls with the same seed prefix.
func walCorpus(t *testing.T, seed string, n int, v core.Validity) []*cert.Cert {
	t.Helper()
	out := make([]*cert.Cert, n)
	for i := range out {
		priv := sfkey.FromSeed([]byte(fmt.Sprintf("%s-issuer-%d", seed, i%5)))
		subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("%s-subj-%d", seed, i%7))).Public())
		out[i] = delegate2(t, priv, subj, tag.Literal(fmt.Sprintf("%s-r%d", seed, i)), v)
	}
	return out
}

// delegate2 mirrors store_test's delegate helper (kept separate so the
// files read independently).
func delegate2(t *testing.T, priv *sfkey.PrivateKey, subject principal.Principal, tg tag.Tag, v core.Validity) *cert.Cert {
	t.Helper()
	c, err := cert.Delegate(priv, subject, principal.KeyOf(priv.Public()), tg, v)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sameContents asserts two stores hold identical certificate sets with
// identical shapes: total length, per-shard counts, and per-issuer /
// per-subject answers.
func sameContents(t *testing.T, got, want *Store, now time.Time, certs []*cert.Cert) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("Len: got %d want %d", g, w)
	}
	if g, w := got.ShardCounts(), want.ShardCounts(); !reflect.DeepEqual(g, w) {
		t.Fatalf("ShardCounts: got %v want %v", g, w)
	}
	seenPrins := map[string]principal.Principal{}
	for _, c := range certs {
		seenPrins[c.Body.Issuer.Key()] = c.Body.Issuer
		seenPrins[c.Body.Subject.Key()] = c.Body.Subject
	}
	for _, p := range seenPrins {
		if g, w := hashSet(got.ByIssuer(p, now)), hashSet(want.ByIssuer(p, now)); !reflect.DeepEqual(g, w) {
			t.Fatalf("ByIssuer(%s): got %d certs want %d", p, len(g), len(w))
		}
		if g, w := hashSet(got.BySubject(p, now)), hashSet(want.BySubject(p, now)); !reflect.DeepEqual(g, w) {
			t.Fatalf("BySubject(%s): got %d certs want %d", p, len(g), len(w))
		}
	}
}

func hashSet(cs []*cert.Cert) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c.Hash())
	}
	sort.Strings(out)
	return out
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	certs := walCorpus(t, "wal-rt", 40, v)

	st, rec, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 0 || rec.Torn {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	twin := NewStore(4)
	for _, c := range certs {
		for _, s := range []*Store{st, twin} {
			if _, err := s.Publish(c, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Retract a few; the twin mirrors it.
	for _, c := range certs[:5] {
		if !st.Remove(c.Hash()) || !twin.Remove(c.Hash()) {
			t.Fatal("remove failed")
		}
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, rec, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn {
		t.Fatalf("clean log reported torn: %+v", rec)
	}
	if rec.Replayed != 45 { // 40 publishes + 5 removes
		t.Fatalf("replayed %d records, want 45", rec.Replayed)
	}
	sameContents(t, re, twin, now, certs)
	for _, c := range certs[:5] {
		if !re.Tombstoned(c.Hash()) {
			t.Fatal("tombstone lost across restart")
		}
	}
}

// TestDurableCrashMidPublishStream kills the store mid-stream: the WAL
// is cut inside the last record (a torn write), replayed, and the
// result must match a twin that never saw the torn publish.
func TestDurableCrashMidPublishStream(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	certs := walCorpus(t, "wal-crash", 30, v)

	st, _, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range certs {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The twin saw every publish except the last.
	twin := NewStore(4)
	for _, c := range certs[:len(certs)-1] {
		if _, err := twin.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}

	// "Crash": the final record's tail never hit the disk. The copy is
	// written under the legacy single-file name, so this doubles as the
	// auto-migration test: replay must rename it to segment 1 first.
	walPath := filepath.Join(dir, walSegmentName(1))
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(crashDir, WALName), raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, rec, err := OpenDurable(crashDir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn || !rec.Compacted {
		t.Fatalf("recovery = %+v, want torn + compacted", rec)
	}
	if rec.Replayed != len(certs)-1 {
		t.Fatalf("replayed %d, want %d", rec.Replayed, len(certs)-1)
	}
	sameContents(t, re, twin, now, certs)

	// The truncated+compacted log must now be clean: a second restart
	// replays without complaint and yields the same store again.
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	re2, rec2, err := OpenDurable(crashDir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Torn || rec2.Dropped != 0 {
		t.Fatalf("second recovery = %+v, want clean", rec2)
	}
	sameContents(t, re2, twin, now, certs)
}

func TestWALCompactionShrinksLog(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	short := core.Between(now.Add(-time.Minute), now.Add(time.Minute))
	long := core.Until(now.Add(time.Hour))

	st, _, err := OpenDurable(dir, 4, SyncNever, now)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range walCorpus(t, "wal-cp-short", 30, short) {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	keep := walCorpus(t, "wal-cp-long", 3, long)
	for _, c := range keep {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := st.WALStats()
	if n := st.Sweep(now.Add(30 * time.Minute)); n != 30 {
		t.Fatalf("swept %d, want 30", n)
	}
	after, _ := st.WALStats()
	if after.Compactions != before.Compactions+1 {
		t.Fatalf("compactions %d -> %d, want +1", before.Compactions, after.Compactions)
	}
	if after.SizeBytes >= before.SizeBytes {
		t.Fatalf("log did not shrink: %d -> %d bytes", before.SizeBytes, after.SizeBytes)
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	re, rec, err := OpenDurable(dir, 4, SyncNever, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 3 || re.Len() != 3 {
		t.Fatalf("after compaction: replayed=%d len=%d, want 3/3", rec.Replayed, re.Len())
	}
}

// TestWALTombstoneSurvivesCompaction: a removal's tombstone must
// outlive both compaction and restart, or gossip could resurrect the
// removed certificate; an explicit re-publish clears it.
func TestWALTombstoneSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	priv := sfkey.FromSeed([]byte("wal-tomb"))
	c := delegate2(t, priv, principal.KeyOf(sfkey.FromSeed([]byte("wal-tomb-s")).Public()),
		tag.All(), core.Until(now.Add(time.Hour)))

	st, _, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(c, now); err != nil {
		t.Fatal(err)
	}
	if !st.Remove(c.Hash()) {
		t.Fatal("remove failed")
	}
	if err := st.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 || !re.Tombstoned(c.Hash()) {
		t.Fatalf("after restart: len=%d tombstoned=%v, want 0/true", re.Len(), re.Tombstoned(c.Hash()))
	}
	if added, err := re.Publish(c, now); err != nil || !added {
		t.Fatalf("re-publish: added=%v err=%v", added, err)
	}
	if re.Tombstoned(c.Hash()) {
		t.Fatal("re-publish did not clear the tombstone")
	}
}

// TestWALReplayDropsForgery: a log tampered with at rest (valid frame,
// invalid signature) must not plant authority — replay re-verifies.
func TestWALReplayDropsForgery(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	priv := sfkey.FromSeed([]byte("wal-forge"))
	good := delegate2(t, priv, principal.KeyOf(sfkey.FromSeed([]byte("wal-forge-s")).Public()),
		tag.All(), core.Until(now.Add(time.Hour)))
	forged := *good
	forged.Signature = append([]byte(nil), good.Signature...)
	forged.Signature[0] ^= 1

	var raw []byte
	raw = sexp.AppendFrame(raw, sexp.List(sexp.String("wal-publish"), good.Sexp()))
	raw = sexp.AppendFrame(raw, sexp.List(sexp.String("wal-publish"), forged.Sexp()))
	if err := os.WriteFile(filepath.Join(dir, WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, rec, err := OpenDurable(dir, 4, SyncAlways, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 1 || rec.Dropped != 1 || !rec.Compacted {
		t.Fatalf("recovery = %+v, want 1 replayed, 1 dropped, compacted", rec)
	}
	if st.Len() != 1 || !st.HasHash(good.Hash()) {
		t.Fatalf("store holds %d certs", st.Len())
	}
}

// TestWALCompactDuringPublishes hammers Publish concurrently with
// compactions: every acknowledged publish must survive the log
// rewrites (the snapshot-vs-append race), verified by replaying into
// a fresh store. Run under -race in CI.
func TestWALCompactDuringPublishes(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	certs := walCorpus(t, "wal-race", 60, core.Until(now.Add(time.Hour)))

	st, _, err := OpenDurable(dir, 4, SyncNever, now)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if err := st.CompactWAL(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, c := range certs {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, rec, err := OpenDurable(dir, 4, SyncNever, now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn || rec.Dropped != 0 {
		t.Fatalf("recovery = %+v, want clean", rec)
	}
	sameContents(t, re, st, now, certs)
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}
