package certdir

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

func startDirectory(t *testing.T) (*Store, *Client) {
	t.Helper()
	st := NewStore(4)
	ts := httptest.NewServer(NewService(st))
	t.Cleanup(ts.Close)
	return st, NewClient(ts.URL)
}

func TestServiceRoundTrip(t *testing.T) {
	now := time.Now()
	st, cl := startDirectory(t)

	alice := sfkey.FromSeed([]byte("svc-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("svc-bob")).Public())
	aliceP := principal.KeyOf(alice.Public())
	c := delegate(t, alice, bobP, tag.Prefix("mail"), core.Until(now.Add(time.Hour)))

	if err := cl.Publish(c); err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish(c); err != nil { // duplicate is fine
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("server stored %d certs", st.Len())
	}

	got, err := cl.QueryByIssuer(aliceP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(c) {
		t.Fatalf("QueryByIssuer = %v", got)
	}
	// The wire round trip must preserve verifiability.
	if err := got[0].Verify(core.NewVerifyContext()); err != nil {
		t.Fatalf("fetched cert does not verify: %v", err)
	}

	got, err = cl.QueryBySubject(bobP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("QueryBySubject = %v", got)
	}
	if got, err := cl.QueryByIssuer(bobP); err != nil || len(got) != 0 {
		t.Fatalf("QueryByIssuer(bob) = %v, %v", got, err)
	}

	removed, err := cl.Remove(c.Hash())
	if err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	removed, err = cl.Remove(c.Hash())
	if err != nil || removed {
		t.Fatalf("second Remove = %v, %v", removed, err)
	}
}

func TestServiceRejectsGarbage(t *testing.T) {
	_, cl := startDirectory(t)
	base := cl.BaseURL

	for _, tc := range []struct {
		name, path, body string
		wantStatus       int
	}{
		{"not sexp", PathPublish, "not an s-expression((", http.StatusBadRequest},
		{"not a proof", PathPublish, "(hello)", http.StatusBadRequest},
		{"bad query axis", PathQuery, "(query sideways (pseudo))", http.StatusBadRequest},
		{"bad query shape", PathQuery, "(query issuer)", http.StatusBadRequest},
		{"bad remove", PathRemove, "(remove)", http.StatusBadRequest},
		{"unknown path", "/nope", "(x)", http.StatusNotFound},
	} {
		resp, err := http.Post(base+tc.path, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}

	// GET on a POST endpoint.
	resp, err := http.Get(base + PathPublish)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET publish: status %d", resp.StatusCode)
	}
}

func TestServiceStats(t *testing.T) {
	now := time.Now()
	_, cl := startDirectory(t)
	alice := sfkey.FromSeed([]byte("stats-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("stats-bob")).Public())
	if err := cl.Publish(delegate(t, alice, bobP, tag.All(), core.Until(now.Add(time.Hour)))); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cl.BaseURL + PathStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	e, err := sexp.ParseOne(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if e.Tag() != "stats" {
		t.Fatalf("stats reply = %s", e)
	}
	if got := e.Child("stored"); got == nil || got.Nth(1).Text() != "1" {
		t.Fatalf("stored = %s", e)
	}
	if got := e.Child("published"); got == nil || got.Nth(1).Text() != "1" {
		t.Fatalf("published = %s", e)
	}
}
