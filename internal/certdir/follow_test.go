package certdir

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/sfkey"
)

// A follower pulls exactly the CRLs its store lacks, installing them
// bumps the shared proof-cache epoch (that is the whole point — a
// following verifier's cached verdicts die), and tampered lists are
// refused.
func TestCRLFollowerPull(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	issuer := sfkey.FromSeed([]byte("follow-issuer"))

	st := NewStore(4)
	svc := NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	ts := httptest.NewServer(svc)
	defer ts.Close()
	cl := NewClient(ts.URL)

	rs := cert.NewRevocationStore()
	f := NewCRLFollower(cl, rs)

	if added, err := f.Pull(); err != nil || added != 0 {
		t.Fatalf("empty pull: added=%d err=%v", added, err)
	}

	rl1 := cert.NewRevocationList(issuer, v, []byte("h1"))
	if err := cl.PushCRL(rl1); err != nil {
		t.Fatal(err)
	}
	epoch := core.SharedProofCache().Epoch()
	if added, err := f.Pull(); err != nil || added != 1 {
		t.Fatalf("first pull: added=%d err=%v", added, err)
	}
	if !rs.Has(rl1.Hash()) {
		t.Fatal("follower store missing pulled CRL")
	}
	if got := core.SharedProofCache().Epoch(); got <= epoch {
		t.Fatalf("install did not bump shared epoch: %d -> %d", epoch, got)
	}

	// A second round with nothing new is incremental: the peer is told
	// what we have and ships nothing.
	if added, err := f.Pull(); err != nil || added != 0 {
		t.Fatalf("idle pull: added=%d err=%v", added, err)
	}

	rl2 := cert.NewRevocationList(issuer, v, []byte("h2"))
	if err := cl.PushCRL(rl2); err != nil {
		t.Fatal(err)
	}
	if added, err := f.Pull(); err != nil || added != 1 {
		t.Fatalf("second pull: added=%d err=%v", added, err)
	}
	if s := f.Stats(); s.Pulled != 2 || s.Rejected != 0 || s.Rounds != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

// The Start/Stop loop pulls on its own and survives a directory that
// briefly errors.
func TestCRLFollowerLoop(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	issuer := sfkey.FromSeed([]byte("follow-loop-issuer"))

	st := NewStore(4)
	svc := NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	ts := httptest.NewServer(svc)
	defer ts.Close()

	rs := cert.NewRevocationStore()
	f := NewCRLFollower(NewClient(ts.URL), rs)
	f.Interval = 20 * time.Millisecond
	f.Start()
	defer f.Stop()

	rl := cert.NewRevocationList(issuer, v, []byte("h"))
	if err := NewClient(ts.URL).PushCRL(rl); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rs.Has(rl.Hash()) {
		if time.Now().After(deadline) {
			t.Fatal("follower never pulled the CRL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop() // idempotent with the deferred Stop
}
