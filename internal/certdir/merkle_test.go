package certdir

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// TestMerkleIncrementalMatchesRecomputed drives every mutation path —
// publish, remove, re-publish, revocation eviction, expiry sweep — and
// asserts the incrementally maintained leaf summaries equal a from-
// scratch recomputation, and that the root agrees with Len.
func TestMerkleIncrementalMatchesRecomputed(t *testing.T) {
	now := time.Now()
	st := NewStore(4)
	long := core.Until(now.Add(time.Hour))
	certs := walCorpus(t, "mk-cons", 200, long)
	for _, c := range certs {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range certs[:40] {
		if !st.Remove(c.Hash()) {
			t.Fatal("remove failed")
		}
	}
	// Re-publish clears tombstones and re-adds the leaves.
	for _, c := range certs[:10] {
		if added, err := st.Publish(c, now); err != nil || !added {
			t.Fatalf("re-publish: added=%v err=%v", added, err)
		}
	}
	// Revocation eviction drops leaves too.
	victim := certs[100]
	rs := cert.NewRevocationStore()
	if err := rs.Add(cert.NewRevocationList(
		sfkey.FromSeed([]byte("mk-cons-issuer-0")), long, victim.Hash())); err != nil {
		t.Fatal(err)
	}
	st.EvictRevokedByIssuer(rs.RevokedByIssuerAt(now))
	// Expiry sweep drops leaves without tombstones.
	short := walCorpus(t, "mk-cons-short", 30, core.Between(now.Add(-time.Minute), now.Add(time.Minute)))
	for _, c := range short {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	st.Sweep(now.Add(30 * time.Minute))

	ic, ix := st.merkleSnapshot()
	rc, rx := st.merkleRecomputed()
	if ic != rc {
		t.Fatal("incremental leaf counts diverge from recomputation")
	}
	if ix != rx {
		t.Fatal("incremental leaf XORs diverge from recomputation")
	}
	if root := st.MerkleRoot(); root.Count != st.Len() {
		t.Fatalf("root count %d, store holds %d", root.Count, st.Len())
	}
	// Every inner node must equal the fold of its children.
	rootSum := st.MerkleSummaries([]int{0})[0]
	kids := st.MerkleSummaries(merkleChildren(nil, 0))
	var folded MerkleSummary
	for _, k := range kids {
		folded.Count += k.Count
		for i := range folded.XOR {
			folded.XOR[i] ^= k.XOR[i]
		}
	}
	if folded.Count != rootSum.Count || folded.XOR != rootSum.XOR {
		t.Fatal("root summary does not equal the fold of its children")
	}
}

// TestMerklePullSingleDiff: a one-certificate gap is found by tree
// descent (descents advance), repaired, and a converged pair's next
// round stops at the root exchange without descending.
func TestMerklePullSingleDiff(t *testing.T) {
	now := time.Now()
	a, b := newNode(t), newNode(t)
	certs := walCorpus(t, "mk-pull", 50, core.Until(now.Add(time.Hour)))
	for i, c := range certs {
		if _, err := a.store.Publish(c, now); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if _, err := b.store.Publish(c, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := fastReplicator(b.store, a)
	pulled, err := rep.Converge()
	if err != nil || pulled != 1 {
		t.Fatalf("pulled %d (err %v), want 1", pulled, err)
	}
	if !b.store.HasHash(certs[0].Hash()) {
		t.Fatal("missing certificate not pulled")
	}
	st := rep.Stats()
	if st.Descents == 0 {
		t.Fatal("merkle pull did not descend (flat fallback taken?)")
	}
	if st.DigestBytes == 0 {
		t.Fatal("digest byte counter did not advance")
	}
	// Converged: the next round is one root exchange, no descent.
	if pulled, err := rep.Converge(); err != nil || pulled != 0 {
		t.Fatalf("second round pulled %d (err %v)", pulled, err)
	}
	if st2 := rep.Stats(); st2.Descents != st.Descents {
		t.Fatalf("converged round descended (%d -> %d)", st.Descents, st2.Descents)
	}
}

// TestMerkleFallbackToFlat: a peer that 404s the Merkle endpoints (an
// older release inside the compatibility window) is reconciled through
// the flat digest protocol transparently.
func TestMerkleFallbackToFlat(t *testing.T) {
	now := time.Now()
	oldStore := NewStore(4)
	oldSvc := NewService(oldStore)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathGossipRoot, PathGossipNodes, PathGossipLeaves, PathSnapshot:
			http.Error(w, "certdir: no such endpoint", http.StatusNotFound)
		default:
			oldSvc.ServeHTTP(w, r)
		}
	}))
	t.Cleanup(ts.Close)

	certs := walCorpus(t, "mk-fallback", 20, core.Until(now.Add(time.Hour)))
	for _, c := range certs {
		if _, err := oldStore.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}
	newStore := NewStore(4)
	rep := NewReplicator(newStore, []*Client{NewClient(ts.URL)})
	rep.Interval = time.Hour
	pulled, err := rep.Converge()
	if err != nil || pulled != 20 {
		t.Fatalf("pulled %d (err %v), want 20 via flat fallback", pulled, err)
	}
	if st := rep.Stats(); st.Descents != 0 {
		t.Fatalf("descents = %d against a pre-Merkle peer", st.Descents)
	}
}

// budgetCorpus signs n certificates in parallel (the 100k corpus would
// take several seconds single-threaded).
func budgetCorpus(t *testing.T, seed string, n int, v core.Validity) []*cert.Cert {
	t.Helper()
	privs := make([]*sfkey.PrivateKey, 8)
	for i := range privs {
		privs[i] = sfkey.FromSeed([]byte(fmt.Sprintf("%s-iss-%d", seed, i)))
	}
	subj := principal.KeyOf(sfkey.FromSeed([]byte(seed + "-subj")).Public())
	out := make([]*cert.Cert, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				priv := privs[i%len(privs)]
				c, err := cert.Delegate(priv, subj, principal.KeyOf(priv.Public()),
					tag.Literal(fmt.Sprintf("%s-r%d", seed, i)), v)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				out[i] = c
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return out
}

// budgetPublish indexes the corpus into every store in parallel,
// interleaved per certificate so later stores' verifications hit the
// shared proof cache seeded by the first.
func budgetPublish(t *testing.T, certs []*cert.Cert, now time.Time, stores ...*Store) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(certs) + workers - 1) / workers
	for lo := 0; lo < len(certs); lo += chunk {
		hi := lo + chunk
		if hi > len(certs) {
			hi = len(certs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				for _, s := range stores {
					if _, err := s.Publish(certs[i], now); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

// TestMerkleOneCertDiffByteBudget is the planet-scale acceptance bound:
// at 100k stored certificates, reconciling a single-certificate diff
// must move at most 5% of the digest bytes the flat scheme moves for
// the same diff, and the descent must stay logarithmic (a handful of
// node round trips, not a partition scan). Under the race detector the
// corpus shrinks and the ratio bound relaxes accordingly (the flat
// scheme's fixed 64-digest overhead dominates at small n, shrinking
// the gap); the 5%-at-100k bound is asserted by the non-race run.
func TestMerkleOneCertDiffByteBudget(t *testing.T) {
	n, maxRatio := 100_000, 0.05
	if raceEnabled {
		n, maxRatio = 3_000, 0.60
	}
	now := time.Now()
	v := core.Until(now.Add(time.Hour))
	a := newNode(t)
	bStore := NewStore(4)
	budgetPublish(t, budgetCorpus(t, "mk-budget", n, v), now, a.store, bStore)

	extras := walCorpus(t, "mk-budget-extra", 2, v)

	// Merkle: one cert ahead at A, one descent-driven pull at B.
	if _, err := a.store.Publish(extras[0], now); err != nil {
		t.Fatal(err)
	}
	repM := fastReplicator(bStore, a)
	if pulled, err := repM.Converge(); err != nil || pulled != 1 {
		t.Fatalf("merkle round pulled %d (err %v), want 1", pulled, err)
	}
	ms := repM.Stats()
	if ms.Descents == 0 || ms.Descents > 8 {
		t.Fatalf("descents = %d, want logarithmic (1..8 node round trips)", ms.Descents)
	}

	// Flat: the same single-certificate diff under the old protocol.
	if _, err := a.store.Publish(extras[1], now); err != nil {
		t.Fatal(err)
	}
	repF := fastReplicator(bStore, a)
	repF.DisableMerkle = true
	if pulled, err := repF.Converge(); err != nil || pulled != 1 {
		t.Fatalf("flat round pulled %d (err %v), want 1", pulled, err)
	}
	fs := repF.Stats()

	if fs.DigestBytes == 0 {
		t.Fatal("flat digest byte counter did not advance")
	}
	ratio := float64(ms.DigestBytes) / float64(fs.DigestBytes)
	t.Logf("n=%d merkle=%dB flat=%dB ratio=%.3f (bound %.2f), descents=%d",
		n, ms.DigestBytes, fs.DigestBytes, ratio, maxRatio, ms.Descents)
	if ratio > maxRatio {
		t.Fatalf("merkle digest traffic %dB is %.1f%% of flat %dB, want <= %.0f%%",
			ms.DigestBytes, 100*ratio, fs.DigestBytes, 100*maxRatio)
	}
}
