package certdir

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
)

// Wire protocol. Every request body and response body is a single
// S-expression (canonical, transport, or advanced encoding — the
// parser accepts all three), keeping the directory on the same wire
// language as the rest of the system (section 2.4).
//
//	POST /certdir/publish   (proof signed-certificate ...)      -> (published) | (duplicate)
//	POST /certdir/query     (query issuer|subject <principal>)  -> (certs <proof>...)
//	POST /certdir/remove    (remove <hash octets>)              -> (removed) | (absent)
//	GET  /certdir/stats                                         -> (stats (published N) ...)
const (
	PathPublish = "/certdir/publish"
	PathQuery   = "/certdir/query"
	PathRemove  = "/certdir/remove"
	PathStats   = "/certdir/stats"
)

// maxBody bounds request bodies; a delegation certificate is a few
// hundred bytes, so 1 MiB leaves generous headroom without letting a
// client balloon the server.
const maxBody = 1 << 20

// Service serves a Store over HTTP.
type Service struct {
	Store *Store
	// Clock supplies the service's notion of now; nil means time.Now.
	Clock func() time.Time
}

// NewService wraps a store.
func NewService(st *Store) *Service { return &Service{Store: st} }

func (s *Service) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// ServeHTTP dispatches the directory protocol.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case PathPublish:
		s.post(w, r, s.handlePublish)
	case PathQuery:
		s.post(w, r, s.handleQuery)
	case PathRemove:
		s.post(w, r, s.handleRemove)
	case PathStats:
		s.reply(w, s.statsSexp())
	default:
		http.Error(w, "certdir: no such endpoint", http.StatusNotFound)
	}
}

// post parses the request body as one S-expression and runs the
// handler; handler errors become 400s.
func (s *Service) post(w http.ResponseWriter, r *http.Request, h func(*sexp.Sexp) (*sexp.Sexp, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "certdir: POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		http.Error(w, "certdir: bad body", http.StatusBadRequest)
		return
	}
	e, err := sexp.ParseOne(body)
	if err != nil {
		http.Error(w, "certdir: bad S-expression: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := h(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.reply(w, resp)
}

func (s *Service) reply(w http.ResponseWriter, e *sexp.Sexp) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(e.Canonical())
}

func (s *Service) handlePublish(e *sexp.Sexp) (*sexp.Sexp, error) {
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return nil, fmt.Errorf("certdir: publish wants a certificate proof: %w", err)
	}
	c, ok := p.(*cert.Cert)
	if !ok {
		return nil, fmt.Errorf("certdir: only signed certificates are publishable, not %T", p)
	}
	added, err := s.Store.Publish(c, s.now())
	if err != nil {
		return nil, err
	}
	if !added {
		return sexp.List(sexp.String("duplicate")), nil
	}
	return sexp.List(sexp.String("published")), nil
}

func (s *Service) handleQuery(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "query" || e.Len() != 3 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: query wants (query issuer|subject <principal>)")
	}
	p, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, fmt.Errorf("certdir: query principal: %w", err)
	}
	var certs []*cert.Cert
	switch by := e.Nth(1).Text(); by {
	case "issuer":
		certs = s.Store.ByIssuer(p, s.now())
	case "subject":
		certs = s.Store.BySubject(p, s.now())
	default:
		return nil, fmt.Errorf("certdir: unknown query axis %q", by)
	}
	kids := make([]*sexp.Sexp, 0, len(certs)+1)
	kids = append(kids, sexp.String("certs"))
	for _, c := range certs {
		kids = append(kids, c.Sexp())
	}
	return sexp.List(kids...), nil
}

func (s *Service) handleRemove(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "remove" || e.Len() != 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: remove wants (remove <hash>)")
	}
	if s.Store.Remove(e.Nth(1).Octets) {
		return sexp.List(sexp.String("removed")), nil
	}
	return sexp.List(sexp.String("absent")), nil
}

func (s *Service) statsSexp() *sexp.Sexp {
	st := s.Store.Stats()
	row := func(name string, v int64) *sexp.Sexp {
		return sexp.List(sexp.String(name), sexp.String(strconv.FormatInt(v, 10)))
	}
	return sexp.List(
		sexp.String("stats"),
		row("stored", int64(s.Store.Len())),
		row("published", st.Published),
		row("duplicates", st.Duplicates),
		row("rejected", st.Rejected),
		row("queries", st.Queries),
		row("removed", st.Removed),
		row("swept", st.Swept),
		row("evicted", st.Evicted),
	)
}
