package certdir

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Wire protocol. Every request body and response body is a single
// S-expression (canonical, transport, or advanced encoding — the
// parser accepts all three), keeping the directory on the same wire
// language as the rest of the system (section 2.4).
//
//	POST /certdir/publish   (proof signed-certificate ...)      -> (published) | (duplicate)
//	POST /certdir/query     (query issuer|subject <principal>
//	                               [(limit <n>)] [(tag <texpr>)]) -> (certs <proof>...)
//	POST /certdir/remove    (remove <hash octets>)              -> (removed) | (absent)
//	GET  /certdir/stats                                         -> (stats (published N) ...)
//
// The optional query clauses bound the answer server-side: (limit n)
// caps the number of certificates returned, (tag t) keeps only
// delegations whose tag covers t (the prover's edge-usability test),
// so heavy issuers don't ship irrelevant delegations. Requests
// without the clauses behave exactly as before the clauses existed.
//
// Anti-entropy replication (see Replicator) adds three peer-facing
// endpoints:
//
//	POST /certdir/gossip/digests  (digests)            -> (digests (part <p> <count> <xor32>)...)
//	POST /certdir/gossip/hashes   (hashes <partition>) -> (hashes <hash>...)
//	POST /certdir/gossip/fetch    (fetch <hash>...)    -> (certs <proof>...)
//
// None of the gossip endpoints is trusted any more than publish is:
// fetched certificates are re-verified by the puller before indexing,
// and serving digests or hashes reveals only content hashes of
// certificates the directory would hand out anyway.
const (
	PathPublish = "/certdir/publish"
	PathQuery   = "/certdir/query"
	PathRemove  = "/certdir/remove"
	PathStats   = "/certdir/stats"
	PathDigests = "/certdir/gossip/digests"
	PathHashes  = "/certdir/gossip/hashes"
	PathFetch   = "/certdir/gossip/fetch"
)

// maxBody bounds request bodies; a delegation certificate is a few
// hundred bytes and a gossip fetch asks for at most a few thousand
// 32-byte hashes, so 1 MiB leaves generous headroom without letting a
// client balloon the server.
const maxBody = 1 << 20

// Service serves a Store over HTTP.
type Service struct {
	Store *Store
	// Replicator, when set, contributes its counters to the stats
	// endpoint. The service never drives it — cmd/sf-certd does.
	Replicator *Replicator
	// Clock supplies the service's notion of now; nil means time.Now.
	Clock func() time.Time
}

// NewService wraps a store.
func NewService(st *Store) *Service { return &Service{Store: st} }

func (s *Service) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// ServeHTTP dispatches the directory protocol.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case PathPublish:
		s.post(w, r, s.handlePublish)
	case PathQuery:
		s.post(w, r, s.handleQuery)
	case PathRemove:
		s.post(w, r, s.handleRemove)
	case PathDigests:
		s.post(w, r, s.handleDigests)
	case PathHashes:
		s.post(w, r, s.handleHashes)
	case PathFetch:
		s.post(w, r, s.handleFetch)
	case PathStats:
		s.reply(w, s.statsSexp())
	default:
		http.Error(w, "certdir: no such endpoint", http.StatusNotFound)
	}
}

// post parses the request body as one S-expression and runs the
// handler; handler errors become 400s.
func (s *Service) post(w http.ResponseWriter, r *http.Request, h func(*sexp.Sexp) (*sexp.Sexp, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "certdir: POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		http.Error(w, "certdir: bad body", http.StatusBadRequest)
		return
	}
	e, err := sexp.ParseOne(body)
	if err != nil {
		http.Error(w, "certdir: bad S-expression: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := h(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.reply(w, resp)
}

func (s *Service) reply(w http.ResponseWriter, e *sexp.Sexp) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(e.Canonical())
}

func (s *Service) handlePublish(e *sexp.Sexp) (*sexp.Sexp, error) {
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return nil, fmt.Errorf("certdir: publish wants a certificate proof: %w", err)
	}
	c, ok := p.(*cert.Cert)
	if !ok {
		return nil, fmt.Errorf("certdir: only signed certificates are publishable, not %T", p)
	}
	added, err := s.Store.Publish(c, s.now())
	if err != nil {
		return nil, err
	}
	if !added {
		return sexp.List(sexp.String("duplicate")), nil
	}
	return sexp.List(sexp.String("published")), nil
}

func (s *Service) handleQuery(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "query" || e.Len() < 3 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: query wants (query issuer|subject <principal> [(limit n)] [(tag t)])")
	}
	p, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, fmt.Errorf("certdir: query principal: %w", err)
	}
	f, err := queryFilter(e)
	if err != nil {
		return nil, err
	}
	var certs []*cert.Cert
	switch by := e.Nth(1).Text(); by {
	case "issuer":
		certs = s.Store.ByIssuerFiltered(p, s.now(), f)
	case "subject":
		certs = s.Store.BySubjectFiltered(p, s.now(), f)
	default:
		return nil, fmt.Errorf("certdir: unknown query axis %q", by)
	}
	return certsSexp(certs), nil
}

// queryFilter decodes the optional (limit n) and (tag t) clauses after
// the principal; an absent clause leaves the zero (unbounded) filter.
func queryFilter(e *sexp.Sexp) (QueryFilter, error) {
	var f QueryFilter
	for i := 3; i < e.Len(); i++ {
		c := e.Nth(i)
		switch c.Tag() {
		case "limit":
			if c.Len() != 2 || !c.Nth(1).IsAtom() {
				return f, fmt.Errorf("certdir: query limit wants (limit <n>)")
			}
			n, err := strconv.Atoi(c.Nth(1).Text())
			if err != nil || n < 0 {
				return f, fmt.Errorf("certdir: bad query limit %q", c.Nth(1).Text())
			}
			f.Limit = n
		case "tag":
			t, err := tag.FromSexp(c)
			if err != nil {
				return f, fmt.Errorf("certdir: query tag: %w", err)
			}
			f.Tag = t
		default:
			return f, fmt.Errorf("certdir: unknown query clause %q", c.Tag())
		}
	}
	return f, nil
}

func certsSexp(certs []*cert.Cert) *sexp.Sexp {
	kids := make([]*sexp.Sexp, 0, len(certs)+1)
	kids = append(kids, sexp.String("certs"))
	for _, c := range certs {
		kids = append(kids, c.Sexp())
	}
	return sexp.List(kids...)
}

func (s *Service) handleRemove(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "remove" || e.Len() != 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: remove wants (remove <hash>)")
	}
	if s.Store.Remove(e.Nth(1).Octets) {
		return sexp.List(sexp.String("removed")), nil
	}
	return sexp.List(sexp.String("absent")), nil
}

// handleDigests answers (digests) with the per-partition summaries of
// the stored set; the requesting peer pulls hash lists only for
// partitions whose digests disagree with its own.
func (s *Service) handleDigests(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "digests" || e.Len() != 1 {
		return nil, fmt.Errorf("certdir: digests wants (digests)")
	}
	kids := []*sexp.Sexp{sexp.String("digests")}
	for _, d := range s.Store.Digests() {
		kids = append(kids, sexp.List(
			sexp.String("part"),
			sexp.String(strconv.Itoa(d.Partition)),
			sexp.String(strconv.Itoa(d.Count)),
			sexp.Atom(d.XOR[:]),
		))
	}
	return sexp.List(kids...), nil
}

// handleHashes answers (hashes <partition>) with the content hashes
// stored in that gossip partition.
func (s *Service) handleHashes(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "hashes" || e.Len() != 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: hashes wants (hashes <partition>)")
	}
	p, err := strconv.Atoi(e.Nth(1).Text())
	if err != nil || p < 0 || p >= GossipPartitions {
		return nil, fmt.Errorf("certdir: bad partition %q", e.Nth(1).Text())
	}
	kids := []*sexp.Sexp{sexp.String("hashes")}
	for _, h := range s.Store.HashesIn(p) {
		kids = append(kids, sexp.Atom(h))
	}
	return sexp.List(kids...), nil
}

// handleFetch answers (fetch <hash>...) with the live certificates
// matching the hashes; absent or expired ones are silently omitted.
func (s *Service) handleFetch(e *sexp.Sexp) (*sexp.Sexp, error) {
	if e.Tag() != "fetch" || e.Len() < 2 {
		return nil, fmt.Errorf("certdir: fetch wants (fetch <hash>...)")
	}
	hashes := make([][]byte, 0, e.Len()-1)
	for i := 1; i < e.Len(); i++ {
		h := e.Nth(i)
		if !h.IsAtom() {
			return nil, fmt.Errorf("certdir: fetch hash %d is not an atom", i)
		}
		hashes = append(hashes, h.Octets)
	}
	return certsSexp(s.Store.ByHashes(hashes, s.now())), nil
}

func (s *Service) statsSexp() *sexp.Sexp {
	st := s.Store.Stats()
	row := func(name string, v int64) *sexp.Sexp {
		return sexp.List(sexp.String(name), sexp.String(strconv.FormatInt(v, 10)))
	}
	kids := []*sexp.Sexp{
		sexp.String("stats"),
		row("stored", int64(s.Store.Len())),
		row("published", st.Published),
		row("duplicates", st.Duplicates),
		row("rejected", st.Rejected),
		row("queries", st.Queries),
		row("removed", st.Removed),
		row("swept", st.Swept),
		row("evicted", st.Evicted),
		row("tombstones", st.Tombstones),
		row("wal-errors", st.WALErrors),
	}
	if ws, ok := s.Store.WALStats(); ok {
		kids = append(kids,
			row("wal-size-bytes", ws.SizeBytes),
			row("wal-appends", ws.Appends),
			row("wal-syncs", ws.Syncs),
			row("wal-compactions", ws.Compactions),
		)
	}
	if s.Replicator != nil {
		rs := s.Replicator.Stats()
		kids = append(kids,
			row("peers", int64(rs.Peers)),
			row("pushes", rs.Pushes),
			row("push-failures", rs.PushFailures),
			row("push-queue-drops", rs.QueueDrops),
			row("gossip-rounds", rs.Rounds),
			row("gossip-pulled", rs.Pulled),
			row("gossip-rejected", rs.PullRejected),
			row("gossip-round-errors", rs.RoundErrors),
		)
	}
	return sexp.List(kids...)
}
