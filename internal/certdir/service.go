package certdir

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Wire protocol. Every request body and response body is a single
// S-expression (canonical, transport, or advanced encoding — the
// parser accepts all three), keeping the directory on the same wire
// language as the rest of the system (section 2.4).
//
//	POST /certdir/publish   (proof signed-certificate ...)      -> (published) | (duplicate)
//	POST /certdir/query     (query issuer|subject <principal>
//	                               [(limit <n>)] [(tag <texpr>)]) -> (certs <proof>...)
//	POST /certdir/remove    (remove <hash octets>)              -> (removed) | (absent)
//	GET  /certdir/stats                                         -> (stats (published N) ...)
//
// The optional query clauses bound the answer server-side: (limit n)
// caps the number of certificates returned, (tag t) keeps only
// delegations whose tag covers t (the prover's edge-usability test),
// so heavy issuers don't ship irrelevant delegations. Requests
// without the clauses behave exactly as before the clauses existed.
//
// Anti-entropy replication (see Replicator) adds three peer-facing
// endpoints:
//
//	POST /certdir/gossip/digests  (digests)            -> (digests (part <p> <count> <xor32>)...)
//	POST /certdir/gossip/hashes   (hashes <partition>) -> (hashes <hash>...)
//	POST /certdir/gossip/fetch    (fetch <hash>...)    -> (certs <proof>...)
//
// None of the gossip endpoints is trusted any more than publish is:
// fetched certificates are re-verified by the puller before indexing,
// and serving digests or hashes reveals only content hashes of
// certificates the directory would hand out anyway.
// Revocation propagation adds four endpoints:
//
//	POST /certdir/events       (events <after> [(wait <ms>)]) -> (events (next <n>) [(reset)] (ev remove|revoke <hash>)...)
//	POST /certdir/admin/crl    (crl ...)                      -> (crl-installed (evicted n)) | (crl-duplicate)
//	POST /certdir/admin/reload (reload-crl)                   -> (reloaded (added n) (total m) (evicted k))
//	POST /certdir/gossip/crls  (crls <have-hash>...)          -> (crls <crl>...)
//
// The events stream is the directory->prover invalidation channel: a
// long-poll cursor protocol over the store's EventLog (see events.go
// for cursor and reset semantics). The admin endpoints install a CRL
// (or re-read the daemon's -crl file) without a restart; installation
// verifies the CRL signature, evicts the delegations its SIGNER
// issued (see Store.EvictRevokedByIssuer for why the issuer match
// matters), bumps the proof-cache epoch, and fans the CRL out to
// gossip peers. The gossip/crls endpoint serves the installed CRLs —
// minus the ones the asking peer already has — so one domain's
// revocation evicts at every peer directly instead of waiting for
// per-directory tombstones; pullers verify every CRL before applying
// it, exactly like certificates.
// Merkle anti-entropy (see merkle.go) adds three tree-descent
// endpoints alongside the flat digests/hashes pair, which stays
// served for one release so mixed-version meshes keep converging
// (a puller falls back to the flat protocol on 404):
//
//	POST /certdir/gossip/root    (mroot)           -> (mroot (params <leaves> <arity>) (sum <count> <xor16>))
//	POST /certdir/gossip/nodes   (mnodes <idx>...) -> (mnodes (sum <idx> <count> <xor16>)...)
//	POST /certdir/gossip/leaves  (mleaves <idx>...)-> (mleaves (leaf <idx> <hash>...)...)
//
// Snapshot bootstrap adds one bulk endpoint: GET /certdir/snapshot
// streams the directory's live contents as a framed record sequence
// (see snapshot.go for the format) so a cold peer loads the whole
// store in one verify-before-index transfer instead of thousands of
// gossip fetch rounds. Like every gossip surface it reveals only what
// query already serves, and the bootstrapper re-verifies everything.
const (
	PathPublish      = "/certdir/publish"
	PathQuery        = "/certdir/query"
	PathRemove       = "/certdir/remove"
	PathStats        = "/certdir/stats"
	PathDigests      = "/certdir/gossip/digests"
	PathHashes       = "/certdir/gossip/hashes"
	PathFetch        = "/certdir/gossip/fetch"
	PathGossipRoot   = "/certdir/gossip/root"
	PathGossipNodes  = "/certdir/gossip/nodes"
	PathGossipLeaves = "/certdir/gossip/leaves"
	PathSnapshot     = "/certdir/snapshot"
	PathCRLs         = "/certdir/gossip/crls"
	PathEvents       = "/certdir/events"
	PathAdminCRL     = "/certdir/admin/crl"
	PathReload       = "/certdir/admin/reload"
)

// maxEventWait caps the long-poll duration a client may request; a
// subscriber wanting to wait longer re-polls, so a directory never
// holds a handler goroutine hostage indefinitely.
const maxEventWait = 30 * time.Second

// maxBody bounds request bodies; a delegation certificate is a few
// hundred bytes and a gossip fetch asks for at most a few thousand
// 32-byte hashes, so 1 MiB leaves generous headroom without letting a
// client balloon the server.
const maxBody = 1 << 20

// Service serves a Store over HTTP.
type Service struct {
	Store *Store
	// Replicator, when set, contributes its counters to the stats
	// endpoint and receives newly installed CRLs for fan-out. The
	// service never drives its loops — cmd/sf-certd does.
	Replicator *Replicator
	// Clock supplies the service's notion of now; nil means time.Now.
	Clock func() time.Time
	// Revocations, when set, enables the revocation endpoints
	// (admin/crl, admin/reload, gossip/crls): CRLs installed through
	// them land here, bumping the shared proof-cache epoch.
	Revocations *cert.RevocationStore
	// ReloadCRLs, when set, is invoked by the admin reload endpoint
	// (cmd/sf-certd wires it to re-read the -crl file, evict, and
	// gossip the new lists; SIGHUP runs the same function).
	ReloadCRLs func() (added, total, evicted int, err error)
	// Guard, when set, closes the control plane: every MUTATING
	// endpoint — publish, remove, and the admin endpoints (which is
	// also where peers push gossip: a gossip push IS a publish,
	// remove, or admin CRL install at the receiver) — requires a
	// speaks-for proof that the request speaks for the directory's
	// operator principal regarding the operation's control tag
	// (cert.CtlTag). Read-only endpoints (query, stats, events, and
	// the gossip pull surface, which reveals nothing query does not)
	// stay open. Nil leaves the directory open, the pre-auth
	// behavior; docs/OPERATIONS.md describes the migration.
	Guard *httpauth.CtlGuard
	// Obs, when set, records one span per served endpoint, continuing
	// the trace named by the request's Sf-Trace header — the directory
	// leg of a cold admit's trace tree.
	Obs *obs.Recorder
	// PublishHist, when set, observes receipt-to-acknowledgment
	// seconds for each successful publish.
	PublishHist *obs.Histogram
	// CRLHist, when set, observes install-through-eviction seconds for
	// each CRL newly installed via the admin endpoint.
	CRLHist *obs.Histogram
	// SnapshotPath, when set, is the snapshot file the daemon's
	// snapshot loop maintains (temp+fsync+rename, like the WAL); the
	// snapshot endpoint serves it as written. Unset — or before the
	// first snapshot exists — the endpoint streams a live snapshot
	// straight from the store.
	SnapshotPath string
}

// NewService wraps a store.
func NewService(st *Store) *Service { return &Service{Store: st} }

func (s *Service) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	//sfvet:ignore clockcheck this nil-clock fallback is the Service.Clock injection seam itself
	return time.Now()
}

// CtlTagFor maps a mutating directory path to the control tag its
// caller must prove under an enforcing directory; the zero tag means
// the path is read-only (never guarded). Clients use the same map to
// decide which requests to sign.
func CtlTagFor(path string) tag.Tag {
	switch path {
	case PathPublish, PathRemove:
		return cert.CtlTag(cert.CtlPublish)
	case PathAdminCRL, PathReload:
		return cert.CtlTag(cert.CtlAdmin)
	}
	return tag.Tag{}
}

// ServeHTTP dispatches the directory protocol.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Obs != nil {
		_, span := s.Obs.StartFromHeader(r.Context(), r.Header.Get(obs.TraceHeader), spanName(r.URL.Path))
		defer span.End()
	}
	switch r.URL.Path {
	case PathPublish:
		s.post(w, r, s.handlePublish)
	case PathQuery:
		s.post(w, r, s.handleQuery)
	case PathRemove:
		s.post(w, r, s.handleRemove)
	case PathDigests:
		s.post(w, r, s.handleDigests)
	case PathHashes:
		s.post(w, r, s.handleHashes)
	case PathFetch:
		s.post(w, r, s.handleFetch)
	case PathGossipRoot:
		s.post(w, r, s.handleMerkleRoot)
	case PathGossipNodes:
		s.post(w, r, s.handleMerkleNodes)
	case PathGossipLeaves:
		s.post(w, r, s.handleMerkleLeaves)
	case PathSnapshot:
		s.handleSnapshot(w, r)
	case PathCRLs:
		s.post(w, r, s.handleCRLs)
	case PathEvents:
		s.post(w, r, s.handleEvents)
	case PathAdminCRL:
		s.post(w, r, s.handleAdminCRL)
	case PathReload:
		s.post(w, r, s.handleReload)
	case PathStats:
		s.reply(w, s.statsSexp())
	default:
		http.Error(w, "certdir: no such endpoint", http.StatusNotFound)
	}
}

// spanName maps a wire path to its span name: "certdir." plus the
// path under the protocol prefix ("certdir.query",
// "certdir.admin/crl").
func spanName(path string) string {
	return "certdir." + strings.TrimPrefix(strings.TrimPrefix(path, "/certdir/"), "/")
}

// post parses the request body as one S-expression and runs the
// handler; handler errors become 400s. Under an enforcing Guard,
// mutating paths are authorized first — against the raw body bytes,
// which the request principal covers, so a proof cannot be replayed
// onto a different mutation.
//
// The body lands in a pooled buffer and is parsed through a pooled
// arena, so a served request allocates neither a body copy nor a
// parse tree: parse results borrow from buffer and arena, both of
// which outlive the handler (they are released only after the reply
// is written). The ownership rule this leans on is the same one WAL
// replay uses — every typed decoder (cert, CRL, principal, tag)
// deep-copies what it retains — plus one handler-local obligation:
// anything a handler hands to an asynchronous consumer (handleRemove's
// hash, which the replicator queues) must be copied explicitly.
func (s *Service) post(w http.ResponseWriter, r *http.Request, h func(sexp.Sexp) (sexp.Sexp, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "certdir: POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "certdir: body exceeds limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "certdir: bad body", http.StatusBadRequest)
		return
	}
	defer sexp.PutBuf(body)
	if s.Guard != nil {
		if ctl := CtlTagFor(r.URL.Path); ctl.Valid() {
			if err := s.Guard.Authorize(r, body, ctl); err != nil {
				s.Guard.Challenge(w, ctl, err)
				return
			}
		}
	}
	a := sexp.GetArena()
	defer sexp.PutArena(a)
	e, err := a.ParseOne(body)
	if err != nil {
		http.Error(w, "certdir: bad S-expression: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := h(e)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.reply(w, resp)
}

// readBody drains the request body into a pooled buffer, bounded by
// maxBody through http.MaxBytesReader (which also closes the
// connection on abuse, unlike a silent LimitReader truncation that
// would hand the parser half an S-expression). On success the caller
// owns the buffer and must PutBuf it; on error the buffer is already
// returned.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBody)
	buf := sexp.GetBuf()
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			sexp.PutBuf(buf)
			return nil, err
		}
	}
}

func (s *Service) reply(w http.ResponseWriter, e sexp.Sexp) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(e.Canonical())
}

func (s *Service) handlePublish(e sexp.Sexp) (sexp.Sexp, error) {
	start := time.Now()
	resp, err := s.doPublish(e)
	if err == nil {
		s.PublishHist.Since(start)
	}
	return resp, err
}

func (s *Service) doPublish(e sexp.Sexp) (sexp.Sexp, error) {
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return nil, fmt.Errorf("certdir: publish wants a certificate proof: %w", err)
	}
	c, ok := p.(*cert.Cert)
	if !ok {
		return nil, fmt.Errorf("certdir: only signed certificates are publishable, not %T", p)
	}
	// Screen the wire-decoded certificate here, at the trust boundary,
	// before it reaches the store (verify-before-index). Store.publish
	// re-checks as defense in depth, but the verdict is memoized in
	// the shared proof cache so that check is a lookup, and the
	// rejected counter advances exactly once per refusal either way.
	if err := c.Verify(publishCtx(s.now())); err != nil {
		s.Store.rejected.Add(1)
		return nil, fmt.Errorf("certdir: refusing certificate: %w", err)
	}
	added, err := s.Store.Publish(c, s.now())
	if err != nil {
		return nil, err
	}
	if !added {
		return sexp.List(sexp.String("duplicate")), nil
	}
	return sexp.List(sexp.String("published")), nil
}

func (s *Service) handleQuery(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "query" || e.Len() < 3 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: query wants (query issuer|subject <principal> [(limit n)] [(tag t)])")
	}
	p, err := principal.FromSexp(e.Nth(2))
	if err != nil {
		return nil, fmt.Errorf("certdir: query principal: %w", err)
	}
	f, err := queryFilter(e)
	if err != nil {
		return nil, err
	}
	var certs []*cert.Cert
	switch by := e.Nth(1).Text(); by {
	case "issuer":
		certs = s.Store.ByIssuerFiltered(p, s.now(), f)
	case "subject":
		certs = s.Store.BySubjectFiltered(p, s.now(), f)
	default:
		return nil, fmt.Errorf("certdir: unknown query axis %q", by)
	}
	return certsSexp(certs), nil
}

// queryFilter decodes the optional (limit n) and (tag t) clauses after
// the principal; an absent clause leaves the zero (unbounded) filter.
func queryFilter(e sexp.Sexp) (QueryFilter, error) {
	var f QueryFilter
	for i := 3; i < e.Len(); i++ {
		c := e.Nth(i)
		switch c.Tag() {
		case "limit":
			if c.Len() != 2 || !c.Nth(1).IsAtom() {
				return f, fmt.Errorf("certdir: query limit wants (limit <n>)")
			}
			n, err := strconv.Atoi(c.Nth(1).Text())
			if err != nil || n < 0 {
				return f, fmt.Errorf("certdir: bad query limit %q", c.Nth(1).Text())
			}
			f.Limit = n
		case "tag":
			t, err := tag.FromSexp(c)
			if err != nil {
				return f, fmt.Errorf("certdir: query tag: %w", err)
			}
			f.Tag = t
		default:
			return f, fmt.Errorf("certdir: unknown query clause %q", c.Tag())
		}
	}
	return f, nil
}

func certsSexp(certs []*cert.Cert) sexp.Sexp {
	kids := make([]sexp.Sexp, 0, len(certs)+1)
	kids = append(kids, sexp.String("certs"))
	for _, c := range certs {
		kids = append(kids, c.Sexp())
	}
	return sexp.List(kids...)
}

func (s *Service) handleRemove(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "remove" || e.Len() != 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: remove wants (remove <hash>)")
	}
	// The hash outlives this handler: Remove hands it to the
	// replicator's push queue (and the event ring), so it must not
	// alias the pooled request buffer.
	hash := append([]byte(nil), e.Nth(1).Bytes()...)
	if s.Store.Remove(hash) {
		return sexp.List(sexp.String("removed")), nil
	}
	return sexp.List(sexp.String("absent")), nil
}

// handleDigests answers (digests) with the per-partition summaries of
// the stored set; the requesting peer pulls hash lists only for
// partitions whose digests disagree with its own.
func (s *Service) handleDigests(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "digests" || e.Len() != 1 {
		return nil, fmt.Errorf("certdir: digests wants (digests)")
	}
	kids := []sexp.Sexp{sexp.String("digests")}
	for _, d := range s.Store.Digests() {
		kids = append(kids, sexp.List(
			sexp.String("part"),
			sexp.String(strconv.Itoa(d.Partition)),
			sexp.String(strconv.Itoa(d.Count)),
			sexp.Atom(d.XOR[:]),
		))
	}
	return sexp.List(kids...), nil
}

// handleHashes answers (hashes <partition>) with the content hashes
// stored in that gossip partition.
func (s *Service) handleHashes(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "hashes" || e.Len() != 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: hashes wants (hashes <partition>)")
	}
	p, err := strconv.Atoi(e.Nth(1).Text())
	if err != nil || p < 0 || p >= GossipPartitions {
		return nil, fmt.Errorf("certdir: bad partition %q", e.Nth(1).Text())
	}
	kids := []sexp.Sexp{sexp.String("hashes")}
	for _, h := range s.Store.HashesIn(p) {
		kids = append(kids, sexp.Atom(h))
	}
	return sexp.List(kids...), nil
}

// handleFetch answers (fetch <hash>...) with the live certificates
// matching the hashes; absent or expired ones are silently omitted.
func (s *Service) handleFetch(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "fetch" || e.Len() < 2 {
		return nil, fmt.Errorf("certdir: fetch wants (fetch <hash>...)")
	}
	hashes := make([][]byte, 0, e.Len()-1)
	for i := 1; i < e.Len(); i++ {
		h := e.Nth(i)
		if !h.IsAtom() {
			return nil, fmt.Errorf("certdir: fetch hash %d is not an atom", i)
		}
		hashes = append(hashes, h.Bytes())
	}
	return certsSexp(s.Store.ByHashes(hashes, s.now())), nil
}

// handleMerkleRoot answers (mroot) with the tree parameters and the
// root summary — the single round trip two converged peers exchange
// per gossip round, a few dozen bytes regardless of store size.
func (s *Service) handleMerkleRoot(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "mroot" || e.Len() != 1 {
		return nil, fmt.Errorf("certdir: root wants (mroot)")
	}
	root := s.Store.MerkleRoot()
	return sexp.List(
		sexp.String("mroot"),
		sexp.List(sexp.String("params"),
			sexp.String(strconv.Itoa(MerkleLeaves)),
			sexp.String(strconv.Itoa(MerkleArity))),
		sexp.List(sexp.String("sum"),
			sexp.String(strconv.Itoa(root.Count)),
			sexp.Atom(root.XOR[:])),
	), nil
}

// handleMerkleNodes answers (mnodes <idx>...) with the summaries of
// the named tree nodes; the puller descends only into subtrees whose
// summaries disagree with its own.
func (s *Service) handleMerkleNodes(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "mnodes" || e.Len() < 2 {
		return nil, fmt.Errorf("certdir: nodes wants (mnodes <idx>...)")
	}
	idxs := make([]int, 0, e.Len()-1)
	for i := 1; i < e.Len(); i++ {
		n, err := strconv.Atoi(e.Nth(i).Text())
		if err != nil || n < 0 || n >= MerkleNodeCount {
			return nil, fmt.Errorf("certdir: bad node index %q", e.Nth(i).Text())
		}
		idxs = append(idxs, n)
	}
	kids := []sexp.Sexp{sexp.String("mnodes")}
	for _, m := range s.Store.MerkleSummaries(idxs) {
		kids = append(kids, sexp.List(sexp.String("sum"),
			sexp.String(strconv.Itoa(m.Index)),
			sexp.String(strconv.Itoa(m.Count)),
			sexp.Atom(m.XOR[:])))
	}
	return sexp.List(kids...), nil
}

// handleMerkleLeaves answers (mleaves <leaf>...) — leaf-array indexes,
// 0..MerkleLeaves-1 — with the full content-hash list of each named
// leaf: the terminal step of a descent, fetched only for the leaves
// that actually disagree.
func (s *Service) handleMerkleLeaves(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "mleaves" || e.Len() < 2 {
		return nil, fmt.Errorf("certdir: leaves wants (mleaves <leaf>...)")
	}
	leaves := make([]int, 0, e.Len()-1)
	for i := 1; i < e.Len(); i++ {
		n, err := strconv.Atoi(e.Nth(i).Text())
		if err != nil || n < 0 || n >= MerkleLeaves {
			return nil, fmt.Errorf("certdir: bad leaf index %q", e.Nth(i).Text())
		}
		leaves = append(leaves, n)
	}
	byLeaf := s.Store.HashesInLeaves(leaves)
	kids := []sexp.Sexp{sexp.String("mleaves")}
	for _, lf := range leaves {
		row := []sexp.Sexp{sexp.String("leaf"), sexp.String(strconv.Itoa(lf))}
		for _, h := range byLeaf[lf] {
			row = append(row, sexp.Atom(h))
		}
		kids = append(kids, sexp.List(row...))
	}
	return sexp.List(kids...), nil
}

// handleSnapshot streams the bootstrap snapshot. Unlike every other
// endpoint the reply is a frame sequence, not one S-expression, and
// is not bounded by sexp.MaxTotal — the cold peer reads it frame by
// frame (Client.Snapshot). When the daemon maintains a snapshot file
// (SnapshotPath) it is served as written — one fsynced, atomically
// renamed artifact — otherwise the store streams a live snapshot.
// Read-only and unguarded, like the rest of the gossip pull surface:
// it reveals nothing query does not already serve.
func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "certdir: GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if s.SnapshotPath != "" {
		if f, err := os.Open(s.SnapshotPath); err == nil {
			defer f.Close()
			io.Copy(w, f)
			return
		}
		// No snapshot written yet: fall through to a live stream.
	}
	// A mid-stream failure cannot be reported in a status line at this
	// point; the truncated stream fails the reader's trailer check,
	// which is how the bootstrapper detects partial transfers anyway.
	s.Store.WriteSnapshot(w, s.Revocations, s.now())
}

// handleEvents serves the invalidation stream: (events <after>
// [(wait <ms>)]) answers with every retained event after the cursor,
// long-polling up to the requested wait when the cursor is current.
// See events.go for cursor and reset semantics.
func (s *Service) handleEvents(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "events" || e.Len() < 2 || !e.Nth(1).IsAtom() {
		return nil, fmt.Errorf("certdir: events wants (events <after> [(wait <ms>)])")
	}
	after, err := strconv.ParseUint(e.Nth(1).Text(), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("certdir: bad events cursor %q", e.Nth(1).Text())
	}
	var wait time.Duration
	for i := 2; i < e.Len(); i++ {
		c := e.Nth(i)
		if c.Tag() != "wait" || c.Len() != 2 || !c.Nth(1).IsAtom() {
			return nil, fmt.Errorf("certdir: unknown events clause %s", c)
		}
		ms, err := strconv.Atoi(c.Nth(1).Text())
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("certdir: bad events wait %q", c.Nth(1).Text())
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxEventWait {
		wait = maxEventWait
	}
	evs, next, reset := s.Store.Events().Wait(after, wait)
	kids := []sexp.Sexp{
		sexp.String("events"),
		sexp.List(sexp.String("next"), sexp.String(strconv.FormatUint(next, 10))),
	}
	if reset {
		kids = append(kids, sexp.List(sexp.String("reset")))
	}
	for _, ev := range evs {
		kids = append(kids, sexp.List(sexp.String("ev"), sexp.String(ev.Kind), sexp.Atom(ev.Hash)))
	}
	return sexp.List(kids...), nil
}

// handleAdminCRL installs one CRL without a restart: verify, dedup,
// evict what its signer issued, fan out to peers. Duplicates are
// acknowledged idempotently so gossip floods terminate.
func (s *Service) handleAdminCRL(e sexp.Sexp) (sexp.Sexp, error) {
	if s.Revocations == nil {
		return nil, fmt.Errorf("certdir: revocation endpoints not enabled")
	}
	rl, err := cert.RevocationListFromSexp(e)
	if err != nil {
		return nil, fmt.Errorf("certdir: admin crl: %w", err)
	}
	start := time.Now()
	added, evicted, err := s.installCRL(rl)
	if err == nil && added {
		s.CRLHist.Since(start)
	}
	if err != nil {
		return nil, fmt.Errorf("certdir: admin crl: %w", err)
	}
	if !added {
		return sexp.List(sexp.String("crl-duplicate")), nil
	}
	return sexp.List(
		sexp.String("crl-installed"),
		sexp.List(sexp.String("evicted"), sexp.String(strconv.Itoa(evicted))),
	), nil
}

func (s *Service) installCRL(rl *cert.RevocationList) (added bool, evicted int, err error) {
	return installCRL(s.Store, s.Revocations, s.Replicator, rl, s.now())
}

// installCRL handles one network-arriving CRL (the admin endpoint):
// verify-before-apply into the revocation store (which bumps the
// proof-cache epoch), immediate issuer-matched eviction (which
// tombstones and emits revoke events), then rumor-mongering fan-out
// to peers (nil rep for an unreplicated directory). Dedup in AddNew
// terminates the flood. The gossip pull applies the same discipline
// batched (Replicator.pullCRLs): one signature batch, one cache
// flush, and one eviction scan per round.
func installCRL(st *Store, revs *cert.RevocationStore, rep *Replicator, rl *cert.RevocationList, now time.Time) (added bool, evicted int, err error) {
	added, err = revs.AddNew(rl)
	if err != nil || !added {
		return added, 0, err
	}
	evicted = st.EvictRevokedByIssuer(revs.RevokedByIssuerAt(now))
	if rep != nil {
		rep.EnqueueCRL(rl)
	}
	return true, evicted, nil
}

// handleReload re-reads the daemon's CRL file via the wired callback;
// (reload-crl) with no callback is a clean error, not a 500.
func (s *Service) handleReload(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "reload-crl" || e.Len() != 1 {
		return nil, fmt.Errorf("certdir: reload wants (reload-crl)")
	}
	if s.ReloadCRLs == nil {
		return nil, fmt.Errorf("certdir: no CRL file configured to reload")
	}
	added, total, evicted, err := s.ReloadCRLs()
	if err != nil {
		return nil, fmt.Errorf("certdir: reload: %w", err)
	}
	row := func(name string, v int) sexp.Sexp {
		return sexp.List(sexp.String(name), sexp.String(strconv.Itoa(v)))
	}
	return sexp.List(sexp.String("reloaded"),
		row("added", added), row("total", total), row("evicted", evicted)), nil
}

// handleCRLs serves the installed CRLs minus the ones the asking peer
// already holds: (crls <have-hash>...). CRLs are public, signed
// statements; serving them reveals nothing the signer did not already
// publish.
func (s *Service) handleCRLs(e sexp.Sexp) (sexp.Sexp, error) {
	if e.Tag() != "crls" {
		return nil, fmt.Errorf("certdir: crls wants (crls <have-hash>...)")
	}
	if s.Revocations == nil {
		// A directory without revocation state has nothing to serve;
		// answer empty so peers with CRLs enabled interoperate.
		return sexp.List(sexp.String("crls")), nil
	}
	have := make(map[[32]byte]bool, e.Len()-1)
	for i := 1; i < e.Len(); i++ {
		h := e.Nth(i)
		if !h.IsAtom() || len(h.Bytes()) != 32 {
			return nil, fmt.Errorf("certdir: crls hash %d is not a 32-byte atom", i)
		}
		var k [32]byte
		copy(k[:], h.Bytes())
		have[k] = true
	}
	kids := []sexp.Sexp{sexp.String("crls")}
	for _, rl := range s.Revocations.Lists() {
		if !have[rl.Hash()] {
			kids = append(kids, rl.Sexp())
		}
	}
	return sexp.List(kids...), nil
}

func (s *Service) statsSexp() sexp.Sexp {
	st := s.Store.Stats()
	row := func(name string, v int64) sexp.Sexp {
		return sexp.List(sexp.String(name), sexp.String(strconv.FormatInt(v, 10)))
	}
	kids := []sexp.Sexp{
		sexp.String("stats"),
		row("stored", int64(s.Store.Len())),
		row("published", st.Published),
		row("duplicates", st.Duplicates),
		row("rejected", st.Rejected),
		row("queries", st.Queries),
		row("removed", st.Removed),
		row("swept", st.Swept),
		row("evicted", st.Evicted),
		row("tombstones", st.Tombstones),
		row("wal-errors", st.WALErrors),
		row("events-emitted", int64(s.Store.Events().Emitted())),
	}
	if s.Revocations != nil {
		kids = append(kids, row("crls", int64(len(s.Revocations.Lists()))))
	}
	if s.Guard != nil {
		gs := s.Guard.Stats()
		kids = append(kids,
			row("ctl-authorized", gs.Authorized),
			row("ctl-denied", gs.Denied))
	}
	if ws, ok := s.Store.WALStats(); ok {
		kids = append(kids,
			row("wal-size-bytes", ws.SizeBytes),
			row("wal-appends", ws.Appends),
			row("wal-syncs", ws.Syncs),
			row("wal-compactions", ws.Compactions),
		)
	}
	if s.Replicator != nil {
		rs := s.Replicator.Stats()
		kids = append(kids,
			row("peers", int64(rs.Peers)),
			row("pushes", rs.Pushes),
			row("push-failures", rs.PushFailures),
			row("push-queue-drops", rs.QueueDrops),
			row("gossip-rounds", rs.Rounds),
			row("gossip-pulled", rs.Pulled),
			row("gossip-rejected", rs.PullRejected),
			row("gossip-round-errors", rs.RoundErrors),
			row("gossip-crls-pulled", rs.CRLsPulled),
			row("gossip-crls-rejected", rs.CRLsRejected),
			row("gossip-digest-bytes", rs.DigestBytes),
			row("gossip-descents", rs.Descents),
		)
	}
	return sexp.List(kids...)
}
