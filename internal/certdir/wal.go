package certdir

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/sexp"
)

// The write-ahead log makes a directory survive restarts: every
// accepted publish and every removal is appended as one framed
// S-expression (sexp.AppendFrame: length prefix + CRC32 + canonical
// payload) before the mutation is acknowledged, and OpenDurable
// replays the log into a fresh Store on startup. Three record shapes
// appear on disk:
//
//	(wal-publish <signed-certificate proof>)
//	(wal-remove <cert hash> <expiry unix seconds, "0" if unbounded>)
//	(wal-event <cursor token> <kind> <cert hash>)
//
// A crash can tear at most the final record of a segment; replay
// truncates a torn tail away, and everything acknowledged before the
// crash is intact. Removal records carry the certificate's expiry so
// the tombstone that stops gossip from resurrecting a retracted
// delegation (see Replicator) survives restarts and compactions until
// the certificate would have expired anyway. Event records mirror the
// EventLog tail so subscriber cursors stay valid across a restart.
//
// # Segments
//
// The log is a sequence of numbered segment files
// (certdir-00000001.wal, certdir-00000002.wal, ...): appends go to the
// highest-numbered (active) segment, and when it reaches the
// configured size the segment is sealed and a new one started. Record
// order across the log is segment order — a record in segment k
// happened before every record in segment k+1 — so replay walks the
// segments in ascending id order.
//
// Sealing is what makes compaction incremental: a sealed segment's
// records can only *die* (a certificate is removed, a tombstone
// expires, an event falls off the retained ring — each of which
// appends its own record to the active segment), never gain liveness,
// so a sealed segment can be rewritten down to just its live records
// without any coordination with concurrent appends. The Store tracks
// per-segment live-record counts and rewrites only segments whose live
// ratio falls below a threshold (MaybeCompactWAL), instead of the
// whole log. Each rewrite keeps today's crash discipline: temp file,
// fsync, atomic rename, directory sync.
//
// Logs written by earlier releases as a single certdir.wal file are
// migrated on open: the file is renamed to segment 1. The migration is
// a single atomic rename, so a crash during it leaves either the old
// name or the new one, never both and never a partial copy.

// WALName is the legacy single-file log name. A log found under this
// name is renamed to the first numbered segment on open.
const WALName = "certdir.wal"

// Wire tags of the WAL record shapes.
const (
	walTagPublish = "wal-publish"
	walTagRemove  = "wal-remove"
	walTagEvent   = "wal-event"
)

// DefaultSegmentBytes is the rotation threshold when WALOptions does
// not set one: big enough that a segment amortizes its per-file cost
// over thousands of records, small enough that one rewrite is a few
// milliseconds of I/O.
const DefaultSegmentBytes = 4 << 20

// DefaultCompactThreshold is the live-ratio below which a sealed
// segment is rewritten by MaybeCompactWAL: at 0.5 a segment is
// compacted once most of it is dead, so compaction I/O is always
// reclaiming at least as many bytes as it writes.
const DefaultCompactThreshold = 0.5

// WALOptions tunes the segmented log; the zero value means defaults.
type WALOptions struct {
	// SegmentBytes is the size at which the active segment is sealed
	// and a new one started (-wal-segment-bytes).
	SegmentBytes int64
	// CompactThreshold is the live-record ratio below which a sealed
	// segment is rewritten (-compact-threshold).
	CompactThreshold float64
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CompactThreshold <= 0 {
		o.CompactThreshold = DefaultCompactThreshold
	}
	return o
}

// walSegmentName is the file name of segment id.
func walSegmentName(id uint64) string {
	return fmt.Sprintf("certdir-%08d.wal", id)
}

// parseSegmentName extracts the id from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	const prefix, suffix = "certdir-", ".wal"
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	id, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}

// listSegments returns the segment ids present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("certdir: wal dir list: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		if id, ok := parseSegmentName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// migrateLegacyWAL renames a pre-segmentation certdir.wal to segment 1.
// Finding both a legacy file and segments is refused rather than
// guessed at: the rename is atomic, so that state never arises from a
// crash — only from an operator mixing data dirs.
func migrateLegacyWAL(dir string) error {
	legacy := filepath.Join(dir, WALName)
	if _, err := os.Stat(legacy); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("certdir: wal migrate: %w", err)
	}
	ids, err := listSegments(dir)
	if err != nil {
		return err
	}
	if len(ids) > 0 {
		return fmt.Errorf("certdir: both legacy %s and segmented wal files present in %s; remove one", WALName, dir)
	}
	if err := os.Rename(legacy, filepath.Join(dir, walSegmentName(1))); err != nil {
		return fmt.Errorf("certdir: wal migrate: %w", err)
	}
	return syncDir(dir)
}

// SyncPolicy selects when the WAL forces appended records to stable
// storage. The choice trades publish latency against the crash window:
// see docs/OPERATIONS.md for the operator guidance.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged publish
	// survives an immediate power cut. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval performs no per-append fsync; the owner calls Sync
	// on a timer (cmd/sf-certd does, flag -fsync-every). A crash can
	// lose up to one interval of acknowledged records — never corrupt
	// older ones.
	SyncInterval
	// SyncNever leaves flushing entirely to the operating system.
	// Benchmarks use it to isolate the in-memory cost of logging.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values ("always", "interval",
// "never") onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("certdir: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// segmentMeta is the WAL's bookkeeping for one segment file. records
// is the total frame count (live or dead) when known, -1 when the
// segment predates this process and was opened without replay; the
// live-ratio compactor skips unknowns (a forced CompactWAL still
// rewrites them).
type segmentMeta struct {
	size    int64
	records int64
}

// WAL is the segmented append log backing a durable Store. All methods
// are safe for concurrent use. Construct through OpenDurable (which
// also replays), or OpenWAL for direct control in tests and tools.
type WAL struct {
	mu           sync.Mutex
	dir          string
	policy       SyncPolicy
	segmentBytes int64
	active       uint64 // highest segment id; the one taking appends
	f            *os.File
	segs         map[uint64]*segmentMeta

	appends     atomic.Int64
	syncs       atomic.Int64
	compactions atomic.Int64
	rotations   atomic.Int64
	size        atomic.Int64 // total bytes across all segments
}

// WALStats is a snapshot of the log's counters for the stats endpoint.
type WALStats struct {
	Path        string // active segment file
	SizeBytes   int64  // total log size across segments
	Segments    int    // segment file count
	Appends     int64  // records appended since open
	Syncs       int64  // explicit fsyncs issued
	Compactions int64  // compaction passes (forced or threshold)
	Rotations   int64  // active-segment seals
}

// OpenWAL opens the segmented log in dir for appending, without
// replaying it, using default segment options. A legacy single-file
// log is migrated first. truncateAt >= 0 cuts the LAST segment to that
// many bytes — OpenDurable uses it to drop a torn tail.
func OpenWAL(dir string, policy SyncPolicy, truncateAt int64) (*WAL, error) {
	return OpenWALOpts(dir, policy, truncateAt, WALOptions{})
}

// OpenWALOpts is OpenWAL with explicit segment options.
func OpenWALOpts(dir string, policy SyncPolicy, truncateAt int64, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("certdir: wal dir: %w", err)
	}
	if err := migrateLegacyWAL(dir); err != nil {
		return nil, err
	}
	// A crash during a segment rewrite can leave a temp file behind;
	// the rename never happened, so the original segment is intact and
	// the temp is garbage.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.compact")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		ids = []uint64{1}
	}
	last := ids[len(ids)-1]
	if truncateAt >= 0 {
		if err := os.Truncate(filepath.Join(dir, walSegmentName(last)), truncateAt); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("certdir: wal truncate: %w", err)
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, walSegmentName(last)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("certdir: wal open: %w", err)
	}
	// Persist the directory entry of a freshly created segment: fsync
	// on the file alone does not make its name durable.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{
		dir:          dir,
		policy:       policy,
		segmentBytes: opts.SegmentBytes,
		active:       last,
		f:            f,
		segs:         make(map[uint64]*segmentMeta, len(ids)),
	}
	var total int64
	for _, id := range ids {
		var size int64
		if st, err := os.Stat(filepath.Join(dir, walSegmentName(id))); err == nil {
			size = st.Size()
		} else if !errors.Is(err, os.ErrNotExist) {
			f.Close()
			return nil, fmt.Errorf("certdir: wal stat: %w", err)
		}
		m := &segmentMeta{size: size, records: -1}
		if size == 0 {
			m.records = 0
		}
		w.segs[id] = m
		total += size
	}
	w.size.Store(total)
	return w, nil
}

// Path returns the active segment's file path.
func (w *WAL) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return filepath.Join(w.dir, walSegmentName(w.active))
}

// syncDir fsyncs a directory so renames and creations inside it are
// crash-durable, not just the file contents they point at.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("certdir: wal dir sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("certdir: wal dir sync: %w", err)
	}
	return nil
}

// appendRecord frames and writes one record under the chosen sync
// policy, sealing the active segment first when it is full, and
// returns the segment id the record landed in. An error means the
// record may not be durable and the caller must not apply (or
// acknowledge) the mutation it describes.
func (w *WAL) appendRecord(e sexp.Sexp) (uint64, error) {
	buf := sexp.AppendFrame(nil, e)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("certdir: wal is closed")
	}
	if w.segs[w.active].size >= w.segmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, fmt.Errorf("certdir: wal append: %w", err)
	}
	m := w.segs[w.active]
	m.size += int64(len(buf))
	if m.records >= 0 {
		m.records++
	}
	w.appends.Add(1)
	w.size.Add(int64(len(buf)))
	if w.policy == SyncAlways {
		w.syncs.Add(1)
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("certdir: wal sync: %w", err)
		}
	}
	return w.active, nil
}

// rotateLocked seals the active segment and starts the next one.
// No-op on an empty active segment. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if w.segs[w.active].size == 0 {
		return nil
	}
	// Flush the sealed segment before moving on: from here it is only
	// ever rewritten whole, never appended to.
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("certdir: wal rotate sync: %w", err)
	}
	next := w.active + 1
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("certdir: wal rotate: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.active = next
	w.segs[next] = &segmentMeta{records: 0}
	w.rotations.Add(1)
	return nil
}

// rotateIfNonEmpty seals the active segment if it holds anything;
// forced compaction uses it so the whole log becomes rewritable.
func (w *WAL) rotateIfNonEmpty() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("certdir: wal is closed")
	}
	return w.rotateLocked()
}

// AppendPublish logs an accepted publish, returning the segment the
// record landed in.
func (w *WAL) AppendPublish(c *cert.Cert) (uint64, error) {
	return w.appendRecord(sexp.List(sexp.String(walTagPublish), c.Sexp()))
}

// AppendRemove logs a removal together with the removed certificate's
// expiry (zero time for unbounded), which bounds the tombstone's life.
func (w *WAL) AppendRemove(hash []byte, expiry time.Time) (uint64, error) {
	return w.appendRecord(removeRecord(hash, expiry))
}

// AppendEvent logs one EventLog entry (cursor token, kind, hash) so
// subscriber cursors survive a restart.
func (w *WAL) AppendEvent(token uint64, kind string, hash []byte) (uint64, error) {
	return w.appendRecord(eventRecord(token, kind, hash))
}

func removeRecord(hash []byte, expiry time.Time) sexp.Sexp {
	exp := "0"
	if !expiry.IsZero() {
		exp = strconv.FormatInt(expiry.Unix(), 10)
	}
	return sexp.List(sexp.String(walTagRemove), sexp.Atom(hash), sexp.String(exp))
}

func eventRecord(token uint64, kind string, hash []byte) sexp.Sexp {
	return sexp.List(sexp.String(walTagEvent),
		sexp.String(strconv.FormatUint(token, 10)), sexp.String(kind), sexp.Atom(hash))
}

// Sync forces buffered records to stable storage. Under SyncInterval
// the owner calls it on a timer; under SyncAlways it is a no-op beyond
// what every append already did.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.syncs.Add(1)
	return w.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// segmentInfo is a point-in-time view of one segment for the Store's
// compaction planner.
type segmentInfo struct {
	id      uint64
	size    int64
	records int64 // -1 when unknown
}

// sealedSegments lists every non-active segment, ascending.
func (w *WAL) sealedSegments() []segmentInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]segmentInfo, 0, len(w.segs))
	for id, m := range w.segs {
		if id != w.active {
			out = append(out, segmentInfo{id: id, size: m.size, records: m.records})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// activeInfo reports the active segment's id and known record count
// (-1 when opened without replay).
func (w *WAL) activeInfo() (id uint64, records int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active, w.segs[w.active].records
}

// setReplayRecords installs per-segment total frame counts discovered
// during replay, making those segments eligible for threshold
// compaction.
func (w *WAL) setReplayRecords(counts map[uint64]int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, n := range counts {
		if m, ok := w.segs[id]; ok {
			m.records = n
		}
	}
}

// noteCompaction counts one compaction pass (however many segments it
// rewrote).
func (w *WAL) noteCompaction() { w.compactions.Add(1) }

// RewriteSegment atomically replaces a sealed segment with exactly the
// given frames (its surviving live records), or removes the file when
// none survive. The rewrite goes to a temp file first and replaces the
// segment by rename, so a crash during compaction leaves either the
// old segment or the new one, never a mix. The active segment cannot
// be rewritten — seal it first (rotateIfNonEmpty).
func (w *WAL) RewriteSegment(seg uint64, frames []sexp.Sexp) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("certdir: wal is closed")
	}
	if seg == w.active {
		return fmt.Errorf("certdir: cannot rewrite active segment %d", seg)
	}
	m, ok := w.segs[seg]
	if !ok {
		return nil // already compacted away
	}
	path := filepath.Join(w.dir, walSegmentName(seg))
	if len(frames) == 0 {
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("certdir: wal segment remove: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			return err
		}
		w.size.Add(-m.size)
		delete(w.segs, seg)
		return nil
	}
	tmpPath := path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("certdir: wal rewrite: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	var size int64
	for _, e := range frames {
		buf := sexp.AppendFrame(nil, e)
		size += int64(len(buf))
		if _, err := bw.Write(buf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("certdir: wal rewrite: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal rewrite: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal rewrite: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal rewrite: %w", err)
	}
	// The rename is not durable until the directory is synced: without
	// this, a power cut could resurrect the pre-compaction segment and
	// with it records the rewrite deliberately dropped.
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.size.Add(size - m.size)
	m.size = size
	m.records = int64(len(frames))
	return nil
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	path := filepath.Join(w.dir, walSegmentName(w.active))
	segments := len(w.segs)
	w.mu.Unlock()
	return WALStats{
		Path:        path,
		SizeBytes:   w.size.Load(),
		Segments:    segments,
		Appends:     w.appends.Load(),
		Syncs:       w.syncs.Load(),
		Compactions: w.compactions.Load(),
		Rotations:   w.rotations.Load(),
	}
}

// RecoveryStats reports what OpenDurable found in the log.
type RecoveryStats struct {
	// Replayed counts records applied to the store: certificates
	// re-indexed and removals (with their tombstones) re-applied.
	Replayed int
	// Dropped counts records the replay skipped: certificates that
	// expired since they were logged, duplicates, and records that no
	// longer verify. Dropping is expected hygiene, not data loss.
	Dropped int
	// Events counts EventLog entries restored from event records.
	Events int
	// Torn reports that a segment ended mid-record — the signature of
	// a crash during an append or a rewrite. A torn tail in the last
	// segment is truncated away; a torn earlier segment is compacted.
	Torn bool
	// Compacted reports that the log was rewritten after replay
	// because it contained torn or dead records.
	Compacted bool
}

// OpenDurable opens a WAL-backed directory rooted at dir with default
// segment options: it replays the segments (migrating and creating as
// needed) into a fresh Store with n shards, truncates any torn tail,
// attaches the log so subsequent publishes and removals are journaled,
// and compacts the log when the replay found anything dead. Traffic
// counters are reset after replay so Stats reflects traffic since this
// open, not since the log began.
func OpenDurable(dir string, n int, policy SyncPolicy, now time.Time) (*Store, RecoveryStats, error) {
	return OpenDurableOpts(dir, n, policy, now, WALOptions{})
}

// OpenDurableOpts is OpenDurable with explicit segment options.
func OpenDurableOpts(dir string, n int, policy SyncPolicy, now time.Time, opts WALOptions) (*Store, RecoveryStats, error) {
	opts = opts.withDefaults()
	st := NewStore(n)
	st.compactThreshold = opts.CompactThreshold
	var rec RecoveryStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("certdir: wal dir: %w", err)
	}
	if err := migrateLegacyWAL(dir); err != nil {
		return nil, rec, err
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, rec, err
	}
	truncateAt := int64(-1)
	counts := make(map[uint64]int64, len(ids))
	for i, id := range ids {
		good, frames, torn, err := replaySegment(st, filepath.Join(dir, walSegmentName(id)), id, now, &rec)
		if err != nil {
			return nil, rec, err
		}
		counts[id] = frames
		if torn {
			rec.Torn = true
			if i == len(ids)-1 {
				truncateAt = good
			}
			// A tear in an earlier segment cannot be truncated away
			// (later segments hold acknowledged records); the
			// post-replay compaction rewrites the damaged segment from
			// the replayed state instead.
		}
	}
	w, err := OpenWALOpts(dir, policy, truncateAt, opts)
	if err != nil {
		return nil, rec, err
	}
	w.setReplayRecords(counts)
	st.attachWAL(w)
	st.resetStats()
	if rec.Torn || rec.Dropped > 0 {
		if err := st.CompactWAL(); err != nil {
			return nil, rec, err
		}
		rec.Compacted = true
	}
	return st, rec, nil
}

// replayBatch is how many consecutive publish records replay gathers
// before verifying them as one batch (cert.VerifyBatch) and indexing.
// Big enough to amortize the batch machinery, small enough that the
// decoded certificates pending a flush stay a bounded memory cost.
const replayBatch = 256

// replaySegment streams one segment into the store, returning the byte
// offset of the last good frame, the frame count, and whether a torn
// tail was found. The store must not have a WAL attached yet: replay
// re-applies history, it does not write it.
//
// Records stream through one sexp.FrameReader (a reusable payload
// buffer and parse arena instead of per-record allocations; the typed
// decoders copy what they keep, so recycling the arena is safe), and
// consecutive publishes are signature-checked in batches: VerifyBatch
// seeds the shared proof cache, so Publish's own verify-before-index
// is a cache lookup. A removal or event flushes the pending batch
// first — log order is publish order.
func replaySegment(st *Store, path string, seg uint64, now time.Time, rec *RecoveryStats) (good, frames int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("certdir: wal replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var fr sexp.FrameReader
	vctx := publishCtx(now)
	var batch []*cert.Cert
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Publish re-verifies, so a log tampered with at rest cannot
		// plant authority; the batch pass here only prepays the
		// signature checks. Expired-in-the-meantime certificates and
		// bad signatures are dropped by Publish and compacted away.
		cert.VerifyBatch(vctx, batch)
		for _, c := range batch {
			if added, err := st.publishReplay(c, now, seg); err != nil || !added {
				rec.Dropped++
				continue
			}
			rec.Replayed++
		}
		batch = batch[:0]
	}
	for {
		e, n, err := fr.Next(r)
		if err == io.EOF {
			flush()
			return good, frames, false, nil
		}
		if errors.Is(err, sexp.ErrFrameCorrupt) {
			flush()
			return good, frames, true, nil
		}
		if err != nil {
			flush()
			return good, frames, false, fmt.Errorf("certdir: wal replay: %w", err)
		}
		good += int64(n)
		frames++
		switch e.Tag() {
		case walTagPublish:
			if e.Len() != 2 {
				rec.Dropped++
				continue
			}
			p, err := core.ProofFromSexp(e.Nth(1))
			if err != nil {
				rec.Dropped++
				continue
			}
			c, ok := p.(*cert.Cert)
			if !ok {
				rec.Dropped++
				continue
			}
			batch = append(batch, c)
			if len(batch) >= replayBatch {
				flush()
			}
		case walTagRemove:
			flush() // removals apply after the publishes logged before them
			if e.Len() != 3 || !e.Nth(1).IsAtom() {
				rec.Dropped++
				continue
			}
			var expiry time.Time
			if sec, err := strconv.ParseInt(e.Nth(2).Text(), 10, 64); err == nil && sec != 0 {
				expiry = time.Unix(sec, 0)
			}
			st.replayRemove(e.Nth(1).Bytes(), expiry, now, seg)
			rec.Replayed++
		case walTagEvent:
			flush() // events observe the mutations logged before them
			if e.Len() != 4 || !e.Nth(3).IsAtom() {
				rec.Dropped++
				continue
			}
			token, terr := strconv.ParseUint(e.Nth(1).Text(), 10, 64)
			kind := e.Nth(2).Text()
			if terr != nil || token == 0 || (kind != EventRemove && kind != EventRevoke) {
				rec.Dropped++
				continue
			}
			st.restoreEvent(token, kind, e.Nth(3).Bytes(), seg)
			rec.Events++
		default:
			rec.Dropped++
		}
	}
}
