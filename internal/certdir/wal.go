package certdir

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/sexp"
)

// The write-ahead log makes a directory survive restarts: every
// accepted publish and every removal is appended as one framed
// S-expression (sexp.AppendFrame: length prefix + CRC32 + canonical
// payload) before the mutation is acknowledged, and OpenDurable
// replays the log into a fresh Store on startup. Two record shapes
// appear on disk:
//
//	(wal-publish <signed-certificate proof>)
//	(wal-remove <cert hash> <expiry unix seconds, "0" if unbounded>)
//
// A crash can tear at most the final record; replay stops at the
// first bad frame, truncates it away, and everything acknowledged
// before the crash is intact. Removal records carry the certificate's
// expiry so the tombstone that stops gossip from resurrecting a
// retracted delegation (see Replicator) survives restarts and
// compactions until the certificate would have expired anyway.
//
// The log is an append-only image of directory history, so Sweep and
// EvictRevoked rewrite it (WAL.Compact) whenever they drop entries:
// the compacted log is exactly the live certificates plus the live
// tombstones, written to a temp file, fsynced, and atomically renamed
// over the old log.

// WALName is the log's file name inside a directory's data dir.
const WALName = "certdir.wal"

// Wire tags of the two WAL record shapes.
const (
	walTagPublish = "wal-publish"
	walTagRemove  = "wal-remove"
)

// SyncPolicy selects when the WAL forces appended records to stable
// storage. The choice trades publish latency against the crash window:
// see docs/OPERATIONS.md for the operator guidance.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged publish
	// survives an immediate power cut. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval performs no per-append fsync; the owner calls Sync
	// on a timer (cmd/sf-certd does, flag -fsync-every). A crash can
	// lose up to one interval of acknowledged records — never corrupt
	// older ones.
	SyncInterval
	// SyncNever leaves flushing entirely to the operating system.
	// Benchmarks use it to isolate the in-memory cost of logging.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values ("always", "interval",
// "never") onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("certdir: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// WAL is the append log backing a durable Store. All methods are safe
// for concurrent use. Construct through OpenDurable (which also
// replays), or OpenWAL for direct control in tests and tools.
type WAL struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	policy SyncPolicy

	appends     atomic.Int64
	syncs       atomic.Int64
	compactions atomic.Int64
	size        atomic.Int64
}

// WALStats is a snapshot of the log's counters for the stats endpoint.
type WALStats struct {
	Path        string
	SizeBytes   int64 // current log size
	Appends     int64 // records appended since open
	Syncs       int64 // explicit fsyncs issued
	Compactions int64 // log rewrites
}

// OpenWAL opens (creating if absent) the log at dir/certdir.wal for
// appending, without replaying it. truncateAt >= 0 cuts the file to
// that many bytes first — OpenDurable uses it to drop a torn tail.
func OpenWAL(dir string, policy SyncPolicy, truncateAt int64) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("certdir: wal dir: %w", err)
	}
	path := filepath.Join(dir, WALName)
	if truncateAt >= 0 {
		if err := os.Truncate(path, truncateAt); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("certdir: wal truncate: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("certdir: wal open: %w", err)
	}
	// Persist the directory entry of a freshly created log: fsync on
	// the file alone does not make its name durable.
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("certdir: wal stat: %w", err)
	}
	w := &WAL{path: path, f: f, policy: policy}
	w.size.Store(st.Size())
	return w, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// syncDir fsyncs a directory so renames and creations inside it are
// crash-durable, not just the file contents they point at.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("certdir: wal dir sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("certdir: wal dir sync: %w", err)
	}
	return nil
}

// appendRecord frames and writes one record under the chosen sync
// policy. An error means the record may not be durable and the caller
// must not apply (or acknowledge) the mutation it describes.
func (w *WAL) appendRecord(e sexp.Sexp) error {
	buf := sexp.AppendFrame(nil, e)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("certdir: wal is closed")
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("certdir: wal append: %w", err)
	}
	w.appends.Add(1)
	w.size.Add(int64(len(buf)))
	if w.policy == SyncAlways {
		w.syncs.Add(1)
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("certdir: wal sync: %w", err)
		}
	}
	return nil
}

// AppendPublish logs an accepted publish.
func (w *WAL) AppendPublish(c *cert.Cert) error {
	return w.appendRecord(sexp.List(sexp.String(walTagPublish), c.Sexp()))
}

// AppendRemove logs a removal together with the removed certificate's
// expiry (zero time for unbounded), which bounds the tombstone's life.
func (w *WAL) AppendRemove(hash []byte, expiry time.Time) error {
	return w.appendRecord(removeRecord(hash, expiry))
}

func removeRecord(hash []byte, expiry time.Time) sexp.Sexp {
	exp := "0"
	if !expiry.IsZero() {
		exp = strconv.FormatInt(expiry.Unix(), 10)
	}
	return sexp.List(sexp.String(walTagRemove), sexp.Atom(hash), sexp.String(exp))
}

// Sync forces buffered records to stable storage. Under SyncInterval
// the owner calls it on a timer; under SyncAlways it is a no-op beyond
// what every append already did.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.syncs.Add(1)
	return w.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Compact atomically rewrites the log as exactly the given live
// certificates plus live tombstones, dropping every superseded record
// (duplicates, removed or swept certificates). The rewrite goes to a
// temp file first and replaces the log by rename, so a crash during
// compaction leaves either the old log or the new one, never a mix.
func (w *WAL) Compact(certs []*cert.Cert, tombstones map[string]time.Time) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("certdir: wal is closed")
	}
	tmpPath := w.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("certdir: wal compact: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	var size int64
	write := func(e sexp.Sexp) error {
		buf := sexp.AppendFrame(nil, e)
		size += int64(len(buf))
		_, err := bw.Write(buf)
		return err
	}
	for _, c := range certs {
		if err := write(sexp.List(sexp.String(walTagPublish), c.Sexp())); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("certdir: wal compact: %w", err)
		}
	}
	for hash, expiry := range tombstones {
		if err := write(removeRecord([]byte(hash), expiry)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("certdir: wal compact: %w", err)
		}
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal compact: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("certdir: wal compact: %w", err)
	}
	// The rename is not durable until the directory is synced: without
	// this, a power cut could resurrect the pre-compaction log and
	// with it lose records fsynced to the new file afterwards.
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	old := w.f
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted log is on disk but unappendable; keep the old
		// handle closed state explicit rather than appending to the
		// renamed-away inode.
		w.f = nil
		old.Close()
		return fmt.Errorf("certdir: wal reopen after compact: %w", err)
	}
	old.Close()
	w.f = f
	w.size.Store(size)
	w.compactions.Add(1)
	return nil
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Path:        w.path,
		SizeBytes:   w.size.Load(),
		Appends:     w.appends.Load(),
		Syncs:       w.syncs.Load(),
		Compactions: w.compactions.Load(),
	}
}

// RecoveryStats reports what OpenDurable found in the log.
type RecoveryStats struct {
	// Replayed counts records applied to the store: certificates
	// re-indexed and removals (with their tombstones) re-applied.
	Replayed int
	// Dropped counts records the replay skipped: certificates that
	// expired since they were logged, duplicates, and records that no
	// longer verify. Dropping is expected hygiene, not data loss.
	Dropped int
	// Torn reports that the log ended mid-record — the signature of a
	// crash during an append. The torn tail is truncated away.
	Torn bool
	// Compacted reports that the log was rewritten after replay
	// because it contained torn or dead records.
	Compacted bool
}

// OpenDurable opens a WAL-backed directory rooted at dir: it replays
// dir/certdir.wal (creating it when absent) into a fresh Store with n
// shards, truncates any torn tail, attaches the log so subsequent
// publishes and removals are journaled, and compacts the log when the
// replay found anything dead. Traffic counters are reset after replay
// so Stats reflects traffic since this open, not since the log began.
func OpenDurable(dir string, n int, policy SyncPolicy, now time.Time) (*Store, RecoveryStats, error) {
	st := NewStore(n)
	var rec RecoveryStats
	good, torn, err := replayInto(st, filepath.Join(dir, WALName), now, &rec)
	if err != nil {
		return nil, rec, err
	}
	rec.Torn = torn
	truncateAt := int64(-1)
	if torn {
		truncateAt = good
	}
	w, err := OpenWAL(dir, policy, truncateAt)
	if err != nil {
		return nil, rec, err
	}
	st.attachWAL(w)
	st.resetStats()
	if torn || rec.Dropped > 0 {
		if err := st.CompactWAL(); err != nil {
			return nil, rec, err
		}
		rec.Compacted = true
	}
	return st, rec, nil
}

// replayBatch is how many consecutive publish records replay gathers
// before verifying them as one batch (cert.VerifyBatch) and indexing.
// Big enough to amortize the batch machinery, small enough that the
// decoded certificates pending a flush stay a bounded memory cost.
const replayBatch = 256

// replayInto streams the log into the store, returning the byte offset
// of the last good frame and whether a torn tail was found. The store
// must not have a WAL attached yet: replay re-applies history, it does
// not write it.
//
// Records stream through one sexp.FrameReader (a reusable payload
// buffer and parse arena instead of per-record allocations; the typed
// decoders copy what they keep, so recycling the arena is safe), and
// consecutive publishes are signature-checked in batches: VerifyBatch
// seeds the shared proof cache, so Publish's own verify-before-index
// is a cache lookup. A removal flushes the pending batch first — log
// order is publish order.
func replayInto(st *Store, path string, now time.Time, rec *RecoveryStats) (good int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("certdir: wal replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var fr sexp.FrameReader
	vctx := publishCtx(now)
	var batch []*cert.Cert
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// Publish re-verifies, so a log tampered with at rest cannot
		// plant authority; the batch pass here only prepays the
		// signature checks. Expired-in-the-meantime certificates and
		// bad signatures are dropped by Publish and compacted away.
		cert.VerifyBatch(vctx, batch)
		for _, c := range batch {
			if added, err := st.Publish(c, now); err != nil || !added {
				rec.Dropped++
				continue
			}
			rec.Replayed++
		}
		batch = batch[:0]
	}
	for {
		e, n, err := fr.Next(r)
		if err == io.EOF {
			flush()
			return good, false, nil
		}
		if errors.Is(err, sexp.ErrFrameCorrupt) {
			flush()
			return good, true, nil
		}
		if err != nil {
			flush()
			return good, false, fmt.Errorf("certdir: wal replay: %w", err)
		}
		good += int64(n)
		switch e.Tag() {
		case walTagPublish:
			if e.Len() != 2 {
				rec.Dropped++
				continue
			}
			p, err := core.ProofFromSexp(e.Nth(1))
			if err != nil {
				rec.Dropped++
				continue
			}
			c, ok := p.(*cert.Cert)
			if !ok {
				rec.Dropped++
				continue
			}
			batch = append(batch, c)
			if len(batch) >= replayBatch {
				flush()
			}
		case walTagRemove:
			flush() // removals apply after the publishes logged before them
			if e.Len() != 3 || !e.Nth(1).IsAtom() {
				rec.Dropped++
				continue
			}
			var expiry time.Time
			if sec, err := strconv.ParseInt(e.Nth(2).Text(), 10, 64); err == nil && sec != 0 {
				expiry = time.Unix(sec, 0)
			}
			st.replayRemove(e.Nth(1).Bytes(), expiry, now)
			rec.Replayed++
		default:
			rec.Dropped++
		}
	}
}
