package certdir

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sexp"
)

// Replicator keeps a Store converged with peer directories in other
// administrative domains, so a delegation published at one domain's
// directory becomes discoverable at another's without every prover
// having to merge directories client-side (the job prover.RemoteSource
// fan-out did alone before replication existed).
//
// Two mechanisms cooperate:
//
//   - Push-on-publish. Every newly indexed certificate (and every
//     acknowledged removal) is fanned out to all peers immediately,
//     with bounded retry. Pushes are rumor mongering: a peer that
//     accepts a pushed certificate pushes it onward to its own peers,
//     and the publish dedup (added == false) terminates the flood, so
//     a mesh converges without a routing layer.
//   - Anti-entropy. A periodic round compares per-partition digests
//     (count + XOR of content hashes, see Store.Digests) with each
//     peer and pulls whatever is missing: the repair path for pushes
//     lost to crashes, queue overflow, or partitions. Locally removed
//     certificates are tombstoned (Store.Tombstoned) and never pulled
//     back; when a round finds a peer still serving a tombstoned
//     certificate, it re-pushes the removal, so retractions — whose
//     push may have been dropped, exhausted its retries, or been
//     refused by the peer — are repaired by anti-entropy exactly like
//     publishes are.
//
// Trust: replication extends availability, not authority. Everything a
// peer supplies goes through Store.Publish, which re-verifies the
// signature before indexing — exactly the verify-before-digest
// discipline prover.RemoteSource applies — so a compromised peer can
// withhold delegations but cannot plant them. Under an enforcing
// control plane (Service.Guard) the arrow also points the other way:
// a replicator's pushes are publishes, removes, and CRL installs at
// the peer, so its Clients must carry a CtlSigner (Client.Ctl) whose
// credential the peer's operator delegated — sf-certd wires this from
// -ctl-key/-ctl-cert. Pulls (digests, hashes, fetch, crls) are
// read-only and never need a credential, which is what lets a mesh
// migrate to -admin-auth one node at a time.
type Replicator struct {
	store *Store
	peers []*Client

	// Interval is the anti-entropy period; 0 means
	// DefaultGossipInterval. Set before Start.
	Interval time.Duration
	// Retries bounds push attempts per peer per mutation; 0 means
	// DefaultPushRetries. Exhausted retries are not fatal — the next
	// anti-entropy round repairs the gap.
	Retries int
	// Backoff is the wait between push retry attempts; 0 means
	// DefaultPushBackoff.
	Backoff time.Duration
	// Clock supplies the replicator's notion of now; nil means
	// time.Now.
	Clock func() time.Time
	// Logf, when set, receives one line per failed push and failed
	// round (cmd/sf-certd wires log.Printf).
	Logf func(format string, args ...any)
	// Revocations, when set, extends gossip to CRLs themselves: newly
	// installed CRLs fan out to peers (EnqueueCRL), and every
	// anti-entropy round pulls the CRLs this node is missing,
	// verify-before-apply, evicting what each one's signer issued. Set
	// before Start. Without it, revocations still replicate — but only
	// as per-directory tombstones after each node's own sweep, which
	// leaves peers serving the revoked delegation until their own CRL
	// arrives by other means.
	Revocations *cert.RevocationStore
	// RoundHist, when set, observes the wall-clock seconds of each
	// anti-entropy round (Converge).
	RoundHist *obs.Histogram
	// DisableMerkle forces the flat digest protocol even against peers
	// that serve the Merkle endpoints. An escape hatch for the
	// compatibility window (and what the byte-budget comparisons in
	// tests and BENCH_9 measure the flat side with).
	DisableMerkle bool

	queue chan repJob
	stop  chan struct{}
	wg    sync.WaitGroup

	pushes       atomic.Int64
	pushFailures atomic.Int64
	queueDrops   atomic.Int64
	rounds       atomic.Int64
	pulled       atomic.Int64
	pullRejected atomic.Int64
	roundErrors  atomic.Int64
	crlsPulled   atomic.Int64
	crlsRejected atomic.Int64
	digestBytes  atomic.Int64 // summary bytes moved on digest-class paths (all peers)
	descents     atomic.Int64 // Merkle node-summary round trips
}

// Replication defaults.
const (
	// DefaultGossipInterval is the anti-entropy period. One round per
	// few seconds makes "visible within one gossip round" a human
	// timescale while keeping steady-state cost at a digest exchange
	// per peer.
	DefaultGossipInterval = 5 * time.Second
	// DefaultPushRetries bounds push attempts per peer per mutation.
	DefaultPushRetries = 3
	// DefaultPushBackoff is the wait between push attempts.
	DefaultPushBackoff = 100 * time.Millisecond
	// pushQueueDepth bounds mutations awaiting fan-out; overflow is
	// dropped (and counted) rather than blocking publishes —
	// anti-entropy repairs whatever the queue sheds.
	pushQueueDepth = 1024
	// fetchBatch bounds hashes per gossip fetch round trip.
	fetchBatch = 64
	// nodeBatch bounds tree-node indexes per Merkle descent round trip.
	nodeBatch = 64
	// leafBatch bounds leaves per Merkle leaf-hash round trip; a full
	// leaf of a 100k-cert store is ~25 hashes, so 16 leaves stay well
	// under the reply bound even for badly skewed stores.
	leafBatch = 16
	// bootstrapBatch bounds certificates per snapshot verify+index batch.
	bootstrapBatch = 256
)

// repJob is one queued fan-out: a publish (cert != nil), a CRL
// install (crl != nil), or a removal.
type repJob struct {
	cert         *cert.Cert
	crl          *cert.RevocationList
	removeHash   []byte
	removeExpiry time.Time
}

// ReplicatorStats is a snapshot of replication counters for the stats
// endpoint.
type ReplicatorStats struct {
	Peers        int
	Pushes       int64 // successful per-peer pushes (publish + crl + remove)
	PushFailures int64 // pushes abandoned after all retries
	QueueDrops   int64 // mutations shed by a full fan-out queue
	Rounds       int64 // anti-entropy rounds completed
	Pulled       int64 // certificates pulled and indexed by anti-entropy
	PullRejected int64 // pulled certificates refused by verification
	RoundErrors  int64 // per-peer round failures (unreachable peer etc.)
	CRLsPulled   int64 // CRLs pulled and installed by anti-entropy
	CRLsRejected int64 // pulled CRLs refused (bad signature)
	DigestBytes  int64 // anti-entropy summary bytes moved (request + reply)
	Descents     int64 // Merkle node-summary round trips
}

// NewReplicator wires a store to its peers. Tune the exported fields,
// then Start.
func NewReplicator(st *Store, peers []*Client) *Replicator {
	r := &Replicator{store: st, peers: peers}
	for _, p := range peers {
		// Meter every peer's summary traffic into one counter; the
		// sf_gossip_digest_bytes_total metric and BENCH_9 read it.
		p.gossipBytes = &r.digestBytes
	}
	return r
}

func (r *Replicator) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	//sfvet:ignore clockcheck this nil-clock fallback is the Replicator.Clock injection seam itself
	return time.Now()
}

func (r *Replicator) interval() time.Duration {
	if r.Interval > 0 {
		return r.Interval
	}
	return DefaultGossipInterval
}

func (r *Replicator) retries() int {
	if r.Retries > 0 {
		return r.Retries
	}
	return DefaultPushRetries
}

func (r *Replicator) backoff() time.Duration {
	if r.Backoff > 0 {
		return r.Backoff
	}
	return DefaultPushBackoff
}

func (r *Replicator) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Start registers the store hooks and launches the push worker and the
// anti-entropy loop. Call Stop to halt both.
func (r *Replicator) Start() {
	r.queue = make(chan repJob, pushQueueDepth)
	r.stop = make(chan struct{})
	r.store.SetHooks(
		func(c *cert.Cert) { r.enqueue(repJob{cert: c}) },
		func(hash []byte, expiry time.Time) {
			r.enqueue(repJob{removeHash: hash, removeExpiry: expiry})
		},
	)
	r.wg.Add(2)
	go r.pushLoop()
	go r.gossipLoop()
}

// Stop detaches the hooks and halts the loops, draining nothing: any
// queued push is abandoned to the next anti-entropy round of a
// restarted replicator.
func (r *Replicator) Stop() {
	r.store.SetHooks(nil, nil)
	close(r.stop)
	r.wg.Wait()
}

// enqueue hands a mutation to the push worker without ever blocking
// the publishing goroutine.
func (r *Replicator) enqueue(j repJob) {
	select {
	case r.queue <- j:
	default:
		r.queueDrops.Add(1)
	}
}

// EnqueueCRL fans a newly installed CRL out to every peer (rumor
// mongering, like publishes: an accepting peer pushes it onward, and
// the install dedup terminates the flood). Dropped or failed pushes
// are repaired by the next anti-entropy round's CRL pull. Callers
// install the CRL locally first — the fan-out is availability, the
// local install is what revokes.
func (r *Replicator) EnqueueCRL(rl *cert.RevocationList) {
	if r.queue == nil {
		return // not started: the first anti-entropy round will carry it
	}
	r.enqueue(repJob{crl: rl})
}

// pushLoop fans queued mutations out to every peer with bounded retry.
func (r *Replicator) pushLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case j := <-r.queue:
			for _, peer := range r.peers {
				r.pushOne(peer, j)
			}
		}
	}
}

// pushOne delivers one mutation to one peer, retrying transport
// failures up to the retry bound with backoff between attempts.
func (r *Replicator) pushOne(peer *Client, j repJob) {
	var err error
	for attempt := 0; attempt < r.retries(); attempt++ {
		if attempt > 0 {
			select {
			case <-r.stop:
				return
			case <-time.After(r.backoff()):
			}
		}
		switch {
		case j.cert != nil:
			err = peer.Publish(j.cert)
		case j.crl != nil:
			err = peer.PushCRL(j.crl)
		default:
			_, err = peer.Remove(j.removeHash)
		}
		if err == nil {
			r.pushes.Add(1)
			return
		}
	}
	r.pushFailures.Add(1)
	r.logf("certdir: push to %s failed after %d attempts: %v", peer.BaseURL, r.retries(), err)
}

// gossipLoop runs anti-entropy rounds until stopped.
func (r *Replicator) gossipLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval())
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Converge()
		}
	}
}

// Converge runs one full anti-entropy round against every peer right
// now, returning how many certificates it pulled and the joined
// per-peer errors (a partially failed round still pulls from the
// reachable peers). The gossip loop calls it on the interval; tests
// and sf-certd's startup call it directly.
func (r *Replicator) Converge() (pulled int, err error) {
	start := time.Now()
	defer r.RoundHist.Since(start)
	var errs []error
	for _, peer := range r.peers {
		// CRLs first: once a peer's CRLs are applied here, the revoked
		// certificates are tombstoned, so the certificate pull that
		// follows in the same round cannot resurrect them.
		if cerr := r.pullCRLs(peer); cerr != nil {
			r.roundErrors.Add(1)
			r.logf("certdir: crl anti-entropy with %s: %v", peer.BaseURL, cerr)
			errs = append(errs, fmt.Errorf("%s: crls: %w", peer.BaseURL, cerr))
		}
		n, perr := r.pullFrom(peer)
		pulled += n
		if perr != nil {
			r.roundErrors.Add(1)
			r.logf("certdir: anti-entropy with %s: %v", peer.BaseURL, perr)
			errs = append(errs, fmt.Errorf("%s: %w", peer.BaseURL, perr))
		}
	}
	r.rounds.Add(1)
	return pulled, errors.Join(errs...)
}

// pullCRLs asks one peer for the CRLs this node is missing (diffed by
// content hash so converged peers exchange only the hash list) and
// applies each: verify, install, evict what its signer issued, and
// rumor it onward. A rejected CRL (bad signature) is counted and
// skipped — a compromised peer can fabricate neither revocations nor
// delegations.
func (r *Replicator) pullCRLs(peer *Client) error {
	if r.Revocations == nil {
		return nil
	}
	var have [][]byte
	for _, rl := range r.Revocations.Lists() {
		h := rl.Hash()
		have = append(have, h[:])
	}
	lists, err := peer.CRLs(have)
	if err != nil {
		return err
	}
	if len(lists) == 0 {
		return nil
	}
	// Batch install: one signature batch and one proof-cache flush for
	// the whole pull, then a single eviction scan over the store — not
	// one full scan per CRL — before the accepted lists rumor onward.
	added, errs := r.Revocations.AddNewBatch(lists)
	anyAdded := false
	for i, rl := range lists {
		switch {
		case errs[i] != nil:
			r.crlsRejected.Add(1)
		case added[i]:
			r.crlsPulled.Add(1)
			anyAdded = true
			r.EnqueueCRL(rl)
		}
	}
	if anyAdded {
		r.store.EvictRevokedByIssuer(r.Revocations.RevokedByIssuerAt(r.now()))
	}
	return nil
}

// pullFrom reconciles this store against one peer. The Merkle descent
// protocol is preferred — its summary traffic for a converged pair is
// one root exchange instead of 64 partition digests, and for a single
// differing certificate O(log n) node summaries instead of a full
// partition hash list. A peer that does not serve the Merkle
// endpoints yet (404 inside the compatibility window) or whose tree
// shape differs gets the flat protocol instead; both end in the same
// verify-before-index pull.
func (r *Replicator) pullFrom(peer *Client) (pulled int, err error) {
	if !r.DisableMerkle {
		pulled, ok, err := r.pullMerkle(peer)
		if ok || err != nil {
			return pulled, err
		}
	}
	return r.pullFlat(peer)
}

// pullMerkle runs one Merkle anti-entropy exchange: root summaries,
// then a breadth-first descent fetching child summaries only under
// disagreeing nodes, then full hash lists only for the leaves that
// actually differ. ok reports whether the peer spoke the protocol; a
// 404 (or an incompatible tree shape) returns ok == false with no
// error so the caller falls back to the flat exchange. Transport and
// protocol failures are real errors.
func (r *Replicator) pullMerkle(peer *Client) (pulled int, ok bool, err error) {
	root, leaves, arity, err := peer.MerkleRoot()
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return 0, false, nil // pre-Merkle peer: use the flat protocol
		}
		return 0, false, err
	}
	if leaves != MerkleLeaves || arity != MerkleArity {
		return 0, false, nil // foreign tree shape: flat still interoperates
	}
	mine := r.store.MerkleSummaries([]int{0})
	if len(mine) == 1 && mine[0].Count == root.Count && mine[0].XOR == root.XOR {
		return 0, true, nil // converged: one round trip, a few dozen bytes
	}
	// Descend. The frontier holds inner nodes whose summaries disagree
	// AND under which the peer holds something (a subtree empty at the
	// peer has nothing to pull; local-only certificates travel by push
	// or by the peer's own pull, exactly as in the flat scheme).
	frontier := []int{0}
	var diffLeaves []int
	for len(frontier) > 0 {
		var children []int
		for _, idx := range frontier {
			children = merkleChildren(children, idx)
		}
		frontier = frontier[:0]
		for len(children) > 0 {
			batch := children
			if len(batch) > nodeBatch {
				batch = batch[:nodeBatch]
			}
			children = children[len(batch):]
			theirs, err := peer.MerkleNodes(batch)
			if err != nil {
				return pulled, true, err
			}
			r.descents.Add(1)
			ours := r.store.MerkleSummaries(batch)
			mineAt := make(map[int]MerkleSummary, len(ours))
			for _, m := range ours {
				mineAt[m.Index] = m
			}
			for _, th := range theirs {
				m := mineAt[th.Index]
				if th.Count == 0 || (th.Count == m.Count && th.XOR == m.XOR) {
					continue
				}
				if merkleIsLeaf(th.Index) {
					diffLeaves = append(diffLeaves, th.Index-merkleFirstLeaf)
				} else {
					frontier = append(frontier, th.Index)
				}
			}
		}
	}
	for len(diffLeaves) > 0 {
		batch := diffLeaves
		if len(batch) > leafBatch {
			batch = batch[:leafBatch]
		}
		diffLeaves = diffLeaves[len(batch):]
		byLeaf, err := peer.MerkleLeafHashes(batch)
		if err != nil {
			return pulled, true, err
		}
		var hashes [][]byte
		for _, hs := range byLeaf {
			hashes = append(hashes, hs...)
		}
		n, err := r.pullHashes(peer, hashes)
		pulled += n
		if err != nil {
			return pulled, true, err
		}
	}
	return pulled, true, nil
}

// pullFlat is the original digest-exchange protocol: per-partition
// count+XOR digests, full hash lists for disagreeing partitions. Kept
// for one release as the compatibility fallback (and as the baseline
// the Merkle byte-budget comparisons measure against).
func (r *Replicator) pullFlat(peer *Client) (pulled int, err error) {
	theirs, err := peer.Digests()
	if err != nil {
		return 0, err
	}
	mine := make(map[int]PartitionDigest, GossipPartitions)
	for _, d := range r.store.Digests() {
		mine[d.Partition] = d
	}
	for _, d := range theirs {
		if m, ok := mine[d.Partition]; ok && m.Count == d.Count && m.XOR == d.XOR {
			continue
		}
		hashes, err := peer.HashesIn(d.Partition)
		if err != nil {
			return pulled, err
		}
		n, err := r.pullHashes(peer, hashes)
		pulled += n
		if err != nil {
			return pulled, err
		}
	}
	return pulled, nil
}

// pullHashes is the shared tail of both anti-entropy protocols: given
// the content hashes a peer serves in some region, repair tombstoned
// ones (re-push the removal the peer evidently missed), skip what is
// already indexed, and pull the rest in verified batches.
func (r *Replicator) pullHashes(peer *Client, hashes [][]byte) (pulled int, err error) {
	var missing [][]byte
	for _, h := range hashes {
		if r.store.Tombstoned(h) {
			// The peer still serves a delegation retracted here:
			// repair the removal now rather than waiting for a push
			// that already failed or was shed.
			if _, err := peer.Remove(h); err != nil {
				r.pushFailures.Add(1)
				r.logf("certdir: anti-entropy removal to %s: %v", peer.BaseURL, err)
			} else {
				r.pushes.Add(1)
			}
			continue
		}
		if r.store.HasHash(h) {
			continue
		}
		missing = append(missing, h)
	}
	for len(missing) > 0 {
		batch := missing
		if len(batch) > fetchBatch {
			batch = batch[:fetchBatch]
		}
		missing = missing[len(batch):]
		certs, err := peer.Fetch(batch)
		if err != nil {
			return pulled, err
		}
		now := r.now()
		// Verify the fetched batch as one unit before indexing: the
		// signature checks run batched (seeding the shared proof
		// cache), so each PublishPulled's verify-before-index is a
		// cache lookup.
		cert.VerifyBatch(publishCtx(now), certs)
		for _, c := range certs {
			// PublishPulled, not Publish: a removal that raced this
			// pull leaves a tombstone the pull must yield to, never
			// clear.
			added, err := r.store.PublishPulled(c, now)
			switch {
			case err != nil:
				r.pullRejected.Add(1)
			case added:
				r.pulled.Add(1)
				pulled++
			}
		}
	}
	return pulled, nil
}

// BootstrapFromPeer cold-starts this directory from the first peer
// that serves a complete snapshot: one bulk verify-before-index
// transfer instead of thousands of gossip round trips. Certificates
// stream through cert.VerifyBatch and PublishPulled (the snapshot
// grants no authority), retractions become local tombstones, and CRLs
// install batched with one eviction scan at the end. Returns how many
// certificates were adopted; when every peer fails, the joined error
// is returned and the caller proceeds with plain gossip — bootstrap
// is an optimization, never a correctness requirement. State adopted
// from a stream that later turns out truncated is harmless for the
// same reason: everything was verified, and gossip finishes the job.
func (r *Replicator) BootstrapFromPeer(ctx context.Context) (pulled int, err error) {
	var errs []error
	for _, peer := range r.peers {
		n, perr := r.bootstrapFrom(ctx, peer)
		pulled += n
		if perr == nil {
			return pulled, nil
		}
		r.logf("certdir: bootstrap from %s: %v", peer.BaseURL, perr)
		errs = append(errs, fmt.Errorf("%s: %w", peer.BaseURL, perr))
	}
	return pulled, errors.Join(errs...)
}

func (r *Replicator) bootstrapFrom(ctx context.Context, peer *Client) (pulled int, err error) {
	var (
		batch []*cert.Cert
		lists []*cert.RevocationList
	)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		now := r.now()
		cert.VerifyBatch(publishCtx(now), batch)
		for _, c := range batch {
			added, err := r.store.PublishPulled(c, now)
			switch {
			case err != nil:
				r.pullRejected.Add(1)
			case added:
				r.pulled.Add(1)
				pulled++
			}
		}
		batch = batch[:0]
	}
	err = peer.Snapshot(ctx, func(e sexp.Sexp) error {
		switch e.Tag() {
		case snapTagHeader, snapTagEnd:
			return nil
		case walTagPublish:
			if e.Len() != 2 {
				return fmt.Errorf("bad publish frame %s", e)
			}
			p, err := core.ProofFromSexp(e.Nth(1))
			if err != nil {
				return fmt.Errorf("publish frame: %w", err)
			}
			c, ok := p.(*cert.Cert)
			if !ok {
				return fmt.Errorf("publish frame holds %T, not a certificate", p)
			}
			batch = append(batch, c)
			if len(batch) >= bootstrapBatch {
				flush()
			}
			return nil
		case walTagRemove:
			if e.Len() != 3 || !e.Nth(1).IsAtom() {
				return fmt.Errorf("bad remove frame %s", e)
			}
			flush() // retractions apply after the publishes streamed before them
			var expiry time.Time
			if sec, perr := strconv.ParseInt(e.Nth(2).Text(), 10, 64); perr == nil && sec != 0 {
				expiry = time.Unix(sec, 0)
			}
			hash := append([]byte(nil), e.Nth(1).Bytes()...)
			r.store.AdoptTombstone(hash, expiry, r.now())
			return nil
		case snapTagCRL:
			if e.Len() != 2 {
				return fmt.Errorf("bad crl frame %s", e)
			}
			rl, err := cert.RevocationListFromSexp(e.Nth(1))
			if err != nil {
				return fmt.Errorf("crl frame: %w", err)
			}
			lists = append(lists, rl)
			return nil
		}
		return fmt.Errorf("unknown snapshot frame %q", e.Tag())
	})
	flush()
	if err != nil {
		return pulled, err
	}
	if r.Revocations != nil && len(lists) > 0 {
		added, errs := r.Revocations.AddNewBatch(lists)
		anyAdded := false
		for i := range lists {
			switch {
			case errs[i] != nil:
				r.crlsRejected.Add(1)
			case added[i]:
				r.crlsPulled.Add(1)
				anyAdded = true
			}
		}
		if anyAdded {
			r.store.EvictRevokedByIssuer(r.Revocations.RevokedByIssuerAt(r.now()))
		}
	}
	return pulled, nil
}

// Stats returns a snapshot of the replication counters.
func (r *Replicator) Stats() ReplicatorStats {
	return ReplicatorStats{
		Peers:        len(r.peers),
		Pushes:       r.pushes.Load(),
		PushFailures: r.pushFailures.Load(),
		QueueDrops:   r.queueDrops.Load(),
		Rounds:       r.rounds.Load(),
		Pulled:       r.pulled.Load(),
		PullRejected: r.pullRejected.Load(),
		RoundErrors:  r.roundErrors.Load(),
		CRLsPulled:   r.crlsPulled.Load(),
		CRLsRejected: r.crlsRejected.Load(),
		DigestBytes:  r.digestBytes.Load(),
		Descents:     r.descents.Load(),
	}
}
