package certdir

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sexp"
)

// Client talks the directory wire protocol. Its ByIssuer and
// BySubject methods satisfy prover.RemoteSource, so a client plugs
// straight into Prover.AddRemote for remote chain discovery.
type Client struct {
	// BaseURL is the directory root, e.g. "http://host:8360".
	BaseURL string
	// HTTP is the transport; nil means a client with a 5 s timeout,
	// so a dead directory cannot wedge a prover.
	HTTP *http.Client
}

// NewClient returns a client for the directory at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// roundTrip posts one S-expression and parses the one in the reply.
// Replies are read up to the parser's own input bound (a query answer
// aggregates many certificates, so it is far larger than any single
// request); beyond that the reply is refused rather than silently
// truncated.
func (c *Client) roundTrip(path string, req *sexp.Sexp) (*sexp.Sexp, error) {
	resp, err := c.httpClient().Post(c.BaseURL+path, "text/plain",
		bytes.NewReader(req.Canonical()))
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, sexp.MaxTotal+1))
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: %w", path, err)
	}
	if len(body) > sexp.MaxTotal {
		return nil, fmt.Errorf("certdir: %s: reply exceeds %d bytes", path, sexp.MaxTotal)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("certdir: %s: %s: %s", path, resp.Status,
			strings.TrimSpace(string(body)))
	}
	e, err := sexp.ParseOne(body)
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: bad reply: %w", path, err)
	}
	return e, nil
}

// Publish uploads a certificate to the directory.
func (c *Client) Publish(ct *cert.Cert) error {
	resp, err := c.roundTrip(PathPublish, ct.Sexp())
	if err != nil {
		return err
	}
	switch resp.Tag() {
	case "published", "duplicate":
		return nil
	}
	return fmt.Errorf("certdir: unexpected publish reply %s", resp)
}

// query runs one (query <by> <principal>) round trip.
func (c *Client) query(by string, p principal.Principal) ([]*cert.Cert, error) {
	resp, err := c.roundTrip(PathQuery,
		sexp.List(sexp.String("query"), sexp.String(by), p.Sexp()))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "certs" {
		return nil, fmt.Errorf("certdir: unexpected query reply %s", resp)
	}
	var out []*cert.Cert
	for i := 1; i < resp.Len(); i++ {
		p, err := core.ProofFromSexp(resp.Nth(i))
		if err != nil {
			return nil, fmt.Errorf("certdir: reply certificate %d: %w", i, err)
		}
		ct, ok := p.(*cert.Cert)
		if !ok {
			return nil, fmt.Errorf("certdir: reply %d is %T, not a certificate", i, p)
		}
		out = append(out, ct)
	}
	return out, nil
}

// QueryByIssuer fetches the live certificates issued by p.
func (c *Client) QueryByIssuer(p principal.Principal) ([]*cert.Cert, error) {
	return c.query("issuer", p)
}

// QueryBySubject fetches the live certificates whose subject is p.
func (c *Client) QueryBySubject(p principal.Principal) ([]*cert.Cert, error) {
	return c.query("subject", p)
}

// Remove retracts the certificate with the given body hash, reporting
// whether the directory held it.
func (c *Client) Remove(hash []byte) (bool, error) {
	resp, err := c.roundTrip(PathRemove,
		sexp.List(sexp.String("remove"), sexp.Atom(hash)))
	if err != nil {
		return false, err
	}
	return resp.Tag() == "removed", nil
}

// ByIssuer implements prover.RemoteSource.
func (c *Client) ByIssuer(p principal.Principal) ([]core.Proof, error) {
	certs, err := c.QueryByIssuer(p)
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// BySubject implements prover.RemoteSource.
func (c *Client) BySubject(p principal.Principal) ([]core.Proof, error) {
	certs, err := c.QueryBySubject(p)
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

func asProofs(certs []*cert.Cert) []core.Proof {
	out := make([]core.Proof, len(certs))
	for i, ct := range certs {
		out[i] = ct
	}
	return out
}
