package certdir

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/obs"
	"repro/internal/principal"
	"repro/internal/sexp"
	"repro/internal/tag"
)

// Client talks the directory wire protocol. Its ByIssuer and
// BySubject methods satisfy prover.RemoteSource, so a client plugs
// straight into Prover.AddRemote for remote chain discovery.
type Client struct {
	// BaseURL is the directory root, e.g. "http://host:8360".
	BaseURL string
	// HTTP is the transport; nil means a client with a 5 s timeout,
	// so a dead directory cannot wedge a prover.
	HTTP *http.Client
	// Ctl, when set, signs every mutating request (publish, remove,
	// admin endpoints — the paths CtlTagFor names) with a speaks-for
	// proof for the directory's operator principal, as an enforcing
	// directory (Service.Guard) demands. Read-only requests are never
	// signed. Nil talks the open protocol.
	Ctl *httpauth.CtlSigner

	// gossipBytes, when set (NewReplicator wires it), accumulates the
	// digest bytes this client moves — request plus reply on the
	// anti-entropy summary paths, the traffic two already-converged
	// peers keep exchanging forever. Fetch payloads are excluded: both
	// the flat and Merkle schemes pay those, and only for actual
	// differences. BENCH_9 and sf_gossip_digest_bytes_total read it.
	gossipBytes *atomic.Int64
}

// StatusError is a non-200 directory reply, surfaced typed so pullers
// can distinguish "this peer does not serve that endpoint" (404 — an
// older release inside the Merkle compatibility window) from a real
// failure that should abort the round.
type StatusError struct {
	Code int    // HTTP status code
	Path string // request path
	Msg  string // response body, trimmed
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("certdir: %s: status %d: %s", e.Path, e.Code, e.Msg)
}

// digestPath reports whether a path carries anti-entropy summary
// traffic, the class gossipBytes meters.
func digestPath(path string) bool {
	switch path {
	case PathDigests, PathHashes, PathGossipRoot, PathGossipNodes, PathGossipLeaves:
		return true
	}
	return false
}

// NewClient returns a client for the directory at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// roundTrip posts one S-expression and parses the one in the reply.
// Replies are read up to the parser's own input bound (a query answer
// aggregates many certificates, so it is far larger than any single
// request); beyond that the reply is refused rather than silently
// truncated.
func (c *Client) roundTrip(path string, req sexp.Sexp) (sexp.Sexp, error) {
	return c.roundTripCtx(context.Background(), c.httpClient(), path, req)
}

// roundTripWith is roundTrip on an explicit HTTP client; the events
// long poll uses it to stretch the timeout past the requested wait.
func (c *Client) roundTripWith(hc *http.Client, path string, req sexp.Sexp) (sexp.Sexp, error) {
	return c.roundTripCtx(context.Background(), hc, path, req)
}

// roundTripCtx is the one wire implementation: it honors ctx for
// cancellation and, when ctx carries an active obs span, forwards the
// trace as the Sf-Trace header so the directory's span joins the
// caller's trace.
func (c *Client) roundTripCtx(ctx context.Context, hc *http.Client, path string, req sexp.Sexp) (sexp.Sexp, error) {
	body := req.Canonical()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "text/plain")
	if tr := obs.Inject(ctx); tr != "" {
		hreq.Header.Set(obs.TraceHeader, tr)
	}
	if c.Ctl != nil {
		if ctl := CtlTagFor(path); ctl.Valid() {
			if err := c.Ctl.Sign(hreq, body, ctl); err != nil {
				return nil, fmt.Errorf("certdir: %s: %w", path, err)
			}
		}
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: %w", path, err)
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, sexp.MaxTotal+1))
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: %w", path, err)
	}
	if len(reply) > sexp.MaxTotal {
		return nil, fmt.Errorf("certdir: %s: reply exceeds %d bytes", path, sexp.MaxTotal)
	}
	if c.gossipBytes != nil && digestPath(path) {
		c.gossipBytes.Add(int64(len(body) + len(reply)))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Path: path,
			Msg: strings.TrimSpace(string(reply))}
	}
	e, err := sexp.ParseOne(reply)
	if err != nil {
		return nil, fmt.Errorf("certdir: %s: bad reply: %w", path, err)
	}
	return e, nil
}

// Publish uploads a certificate to the directory.
func (c *Client) Publish(ct *cert.Cert) error {
	resp, err := c.roundTrip(PathPublish, ct.Sexp())
	if err != nil {
		return err
	}
	switch resp.Tag() {
	case "published", "duplicate":
		return nil
	}
	return fmt.Errorf("certdir: unexpected publish reply %s", resp)
}

// query runs one (query <by> <principal> [clauses]) round trip.
func (c *Client) query(by string, p principal.Principal, f QueryFilter) ([]*cert.Cert, error) {
	return c.queryCtx(context.Background(), by, p, f)
}

func (c *Client) queryCtx(ctx context.Context, by string, p principal.Principal, f QueryFilter) ([]*cert.Cert, error) {
	req := []sexp.Sexp{sexp.String("query"), sexp.String(by), p.Sexp()}
	if f.Limit > 0 {
		req = append(req, sexp.List(sexp.String("limit"), sexp.String(strconv.Itoa(f.Limit))))
	}
	if f.Tag.Valid() {
		req = append(req, f.Tag.Sexp())
	}
	resp, err := c.roundTripCtx(ctx, c.httpClient(), PathQuery, sexp.List(req...))
	if err != nil {
		return nil, err
	}
	return parseCerts(resp)
}

// parseCerts decodes a (certs <proof>...) reply.
func parseCerts(resp sexp.Sexp) ([]*cert.Cert, error) {
	if resp.Tag() != "certs" {
		return nil, fmt.Errorf("certdir: unexpected query reply %s", resp)
	}
	var out []*cert.Cert
	for i := 1; i < resp.Len(); i++ {
		p, err := core.ProofFromSexp(resp.Nth(i))
		if err != nil {
			return nil, fmt.Errorf("certdir: reply certificate %d: %w", i, err)
		}
		ct, ok := p.(*cert.Cert)
		if !ok {
			return nil, fmt.Errorf("certdir: reply %d is %T, not a certificate", i, p)
		}
		out = append(out, ct)
	}
	return out, nil
}

// QueryByIssuer fetches the live certificates issued by p.
func (c *Client) QueryByIssuer(p principal.Principal) ([]*cert.Cert, error) {
	return c.query("issuer", p, QueryFilter{})
}

// QueryBySubject fetches the live certificates whose subject is p.
func (c *Client) QueryBySubject(p principal.Principal) ([]*cert.Cert, error) {
	return c.query("subject", p, QueryFilter{})
}

// QueryByIssuerFiltered is QueryByIssuer with a server-side bound: the
// directory applies the filter before shipping, so a heavy issuer's
// irrelevant delegations never cross the wire.
func (c *Client) QueryByIssuerFiltered(p principal.Principal, f QueryFilter) ([]*cert.Cert, error) {
	return c.query("issuer", p, f)
}

// QueryBySubjectFiltered is QueryBySubject with a server-side bound.
func (c *Client) QueryBySubjectFiltered(p principal.Principal, f QueryFilter) ([]*cert.Cert, error) {
	return c.query("subject", p, f)
}

// Remove retracts the certificate with the given body hash, reporting
// whether the directory held it.
func (c *Client) Remove(hash []byte) (bool, error) {
	resp, err := c.roundTrip(PathRemove,
		sexp.List(sexp.String("remove"), sexp.Atom(hash)))
	if err != nil {
		return false, err
	}
	return resp.Tag() == "removed", nil
}

// PushCRL installs a CRL at the directory through its admin endpoint.
// Duplicates are acknowledged idempotently (like Publish), so CRL
// rumor floods terminate.
func (c *Client) PushCRL(rl *cert.RevocationList) error {
	resp, err := c.roundTrip(PathAdminCRL, rl.Sexp())
	if err != nil {
		return err
	}
	switch resp.Tag() {
	case "crl-installed", "crl-duplicate":
		return nil
	}
	return fmt.Errorf("certdir: unexpected crl reply %s", resp)
}

// CRLs fetches the CRLs the directory holds, minus the ones whose
// content hashes are in have. The caller verifies every returned list
// before applying it (Replicator.pullCRLs does).
func (c *Client) CRLs(have [][]byte) ([]*cert.RevocationList, error) {
	kids := make([]sexp.Sexp, 0, len(have)+1)
	kids = append(kids, sexp.String("crls"))
	for _, h := range have {
		kids = append(kids, sexp.Atom(h))
	}
	resp, err := c.roundTrip(PathCRLs, sexp.List(kids...))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "crls" {
		return nil, fmt.Errorf("certdir: unexpected crls reply %s", resp)
	}
	var out []*cert.RevocationList
	for i := 1; i < resp.Len(); i++ {
		rl, err := cert.RevocationListFromSexp(resp.Nth(i))
		if err != nil {
			return nil, fmt.Errorf("certdir: reply crl %d: %w", i, err)
		}
		out = append(out, rl)
	}
	return out, nil
}

// ReloadCRLs asks the directory to re-read its CRL file (the admin
// reload endpoint), returning how many lists were newly installed.
func (c *Client) ReloadCRLs() (added int, err error) {
	resp, err := c.roundTrip(PathReload, sexp.List(sexp.String("reload-crl")))
	if err != nil {
		return 0, err
	}
	if resp.Tag() != "reloaded" {
		return 0, fmt.Errorf("certdir: unexpected reload reply %s", resp)
	}
	if a := resp.Child("added"); a != nil && a.Len() == 2 {
		added, _ = strconv.Atoi(a.Nth(1).Text())
	}
	return added, nil
}

// Events long-polls the directory's invalidation stream: after is the
// last sequence consumed (0 on first call), wait how long the
// directory may hold the poll open. It returns the certificate body
// hashes to invalidate, the new cursor, and reset — true when the
// stream could not be served continuously (the subscriber lagged past
// the retained tail or the directory restarted), in which case the
// caller must invalidate coarsely. The signature is primitive-typed
// on purpose: it is what prover.InvalidationSource requires, so this
// client satisfies it structurally without the prover importing
// certdir.
func (c *Client) Events(after uint64, wait time.Duration) (hashes [][]byte, next uint64, reset bool, err error) {
	req := []sexp.Sexp{sexp.String("events"), sexp.String(strconv.FormatUint(after, 10))}
	if wait > 0 {
		req = append(req, sexp.List(sexp.String("wait"),
			sexp.String(strconv.FormatInt(wait.Milliseconds(), 10))))
	}
	// The long poll must outlive the default transport timeout.
	cl := c.httpClient()
	if wait > 0 && cl.Timeout > 0 && cl.Timeout < wait+5*time.Second {
		cp := *cl
		cp.Timeout = wait + 5*time.Second
		cl = &cp
	}
	resp, err := c.roundTripWith(cl, PathEvents, sexp.List(req...))
	if err != nil {
		return nil, 0, false, err
	}
	if resp.Tag() != "events" {
		return nil, 0, false, fmt.Errorf("certdir: unexpected events reply %s", resp)
	}
	nx := resp.Child("next")
	if nx == nil || nx.Len() != 2 {
		return nil, 0, false, fmt.Errorf("certdir: events reply missing cursor")
	}
	next, err = strconv.ParseUint(nx.Nth(1).Text(), 10, 64)
	if err != nil {
		return nil, 0, false, fmt.Errorf("certdir: bad events cursor: %w", err)
	}
	for i := 1; i < resp.Len(); i++ {
		row := resp.Nth(i)
		switch row.Tag() {
		case "reset":
			reset = true
		case "ev":
			if row.Len() != 3 || !row.Nth(2).IsAtom() {
				return nil, 0, false, fmt.Errorf("certdir: bad event row %s", row)
			}
			hashes = append(hashes, append([]byte(nil), row.Nth(2).Bytes()...))
		}
	}
	return hashes, next, reset, nil
}

// Digests fetches the peer's per-partition gossip summaries
// (Replicator's first anti-entropy round trip).
func (c *Client) Digests() ([]PartitionDigest, error) {
	resp, err := c.roundTrip(PathDigests, sexp.List(sexp.String("digests")))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "digests" {
		return nil, fmt.Errorf("certdir: unexpected digests reply %s", resp)
	}
	var out []PartitionDigest
	for i := 1; i < resp.Len(); i++ {
		row := resp.Nth(i)
		if row.Tag() != "part" || row.Len() != 4 || !row.Nth(3).IsAtom() {
			return nil, fmt.Errorf("certdir: bad digest row %s", row)
		}
		p, err1 := strconv.Atoi(row.Nth(1).Text())
		n, err2 := strconv.Atoi(row.Nth(2).Text())
		if err1 != nil || err2 != nil || p < 0 || p >= GossipPartitions || len(row.Nth(3).Bytes()) != 32 {
			return nil, fmt.Errorf("certdir: bad digest row %s", row)
		}
		d := PartitionDigest{Partition: p, Count: n}
		copy(d.XOR[:], row.Nth(3).Bytes())
		out = append(out, d)
	}
	return out, nil
}

// HashesIn fetches the content hashes the peer stores in one gossip
// partition.
func (c *Client) HashesIn(p int) ([][]byte, error) {
	resp, err := c.roundTrip(PathHashes,
		sexp.List(sexp.String("hashes"), sexp.String(strconv.Itoa(p))))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "hashes" {
		return nil, fmt.Errorf("certdir: unexpected hashes reply %s", resp)
	}
	var out [][]byte
	for i := 1; i < resp.Len(); i++ {
		h := resp.Nth(i)
		if !h.IsAtom() {
			return nil, fmt.Errorf("certdir: hash %d is not an atom", i)
		}
		out = append(out, append([]byte(nil), h.Bytes()...))
	}
	return out, nil
}

// Fetch pulls the certificates with the given content hashes; absent
// or expired ones are omitted from the answer. The caller re-verifies
// everything before trusting it (Store.Publish does when pulling).
func (c *Client) Fetch(hashes [][]byte) ([]*cert.Cert, error) {
	kids := make([]sexp.Sexp, 0, len(hashes)+1)
	kids = append(kids, sexp.String("fetch"))
	for _, h := range hashes {
		kids = append(kids, sexp.Atom(h))
	}
	resp, err := c.roundTrip(PathFetch, sexp.List(kids...))
	if err != nil {
		return nil, err
	}
	return parseCerts(resp)
}

// MerkleRoot fetches the peer's Merkle root summary and tree shape
// (leaf count and arity, which the puller checks against its own
// before descending).
func (c *Client) MerkleRoot() (root MerkleSummary, leaves, arity int, err error) {
	resp, err := c.roundTrip(PathGossipRoot, sexp.List(sexp.String("mroot")))
	if err != nil {
		return root, 0, 0, err
	}
	pr := resp.Child("params")
	sm := resp.Child("sum")
	if resp.Tag() != "mroot" || pr == nil || pr.Len() != 3 || sm == nil || sm.Len() != 3 || !sm.Nth(2).IsAtom() {
		return root, 0, 0, fmt.Errorf("certdir: bad root reply %s", resp)
	}
	var e1, e2, e3 error
	leaves, e1 = strconv.Atoi(pr.Nth(1).Text())
	arity, e2 = strconv.Atoi(pr.Nth(2).Text())
	root.Count, e3 = strconv.Atoi(sm.Nth(1).Text())
	if e1 != nil || e2 != nil || e3 != nil || root.Count < 0 || len(sm.Nth(2).Bytes()) != MerkleSumBytes {
		return MerkleSummary{}, 0, 0, fmt.Errorf("certdir: bad root reply %s", resp)
	}
	copy(root.XOR[:], sm.Nth(2).Bytes())
	return root, leaves, arity, nil
}

// MerkleNodes fetches the peer's summaries for the given tree-node
// indexes (one descent step).
func (c *Client) MerkleNodes(idxs []int) ([]MerkleSummary, error) {
	kids := make([]sexp.Sexp, 0, len(idxs)+1)
	kids = append(kids, sexp.String("mnodes"))
	for _, n := range idxs {
		kids = append(kids, sexp.String(strconv.Itoa(n)))
	}
	resp, err := c.roundTrip(PathGossipNodes, sexp.List(kids...))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "mnodes" {
		return nil, fmt.Errorf("certdir: unexpected nodes reply %s", resp)
	}
	out := make([]MerkleSummary, 0, resp.Len()-1)
	for i := 1; i < resp.Len(); i++ {
		row := resp.Nth(i)
		if row.Tag() != "sum" || row.Len() != 4 || !row.Nth(3).IsAtom() {
			return nil, fmt.Errorf("certdir: bad node row %s", row)
		}
		idx, err1 := strconv.Atoi(row.Nth(1).Text())
		n, err2 := strconv.Atoi(row.Nth(2).Text())
		if err1 != nil || err2 != nil || idx < 0 || idx >= MerkleNodeCount || len(row.Nth(3).Bytes()) != MerkleSumBytes {
			return nil, fmt.Errorf("certdir: bad node row %s", row)
		}
		m := MerkleSummary{Index: idx, Count: n}
		copy(m.XOR[:], row.Nth(3).Bytes())
		out = append(out, m)
	}
	return out, nil
}

// MerkleLeafHashes fetches the full content-hash lists of the given
// leaves (leaf-array indexes), the terminal step of a descent.
func (c *Client) MerkleLeafHashes(leaves []int) (map[int][][]byte, error) {
	kids := make([]sexp.Sexp, 0, len(leaves)+1)
	kids = append(kids, sexp.String("mleaves"))
	for _, lf := range leaves {
		kids = append(kids, sexp.String(strconv.Itoa(lf)))
	}
	resp, err := c.roundTrip(PathGossipLeaves, sexp.List(kids...))
	if err != nil {
		return nil, err
	}
	if resp.Tag() != "mleaves" {
		return nil, fmt.Errorf("certdir: unexpected leaves reply %s", resp)
	}
	out := make(map[int][][]byte, len(leaves))
	for i := 1; i < resp.Len(); i++ {
		row := resp.Nth(i)
		if row.Tag() != "leaf" || row.Len() < 2 || !row.Nth(1).IsAtom() {
			return nil, fmt.Errorf("certdir: bad leaf row %s", row)
		}
		lf, err := strconv.Atoi(row.Nth(1).Text())
		if err != nil || lf < 0 || lf >= MerkleLeaves {
			return nil, fmt.Errorf("certdir: bad leaf index %q", row.Nth(1).Text())
		}
		hs := make([][]byte, 0, row.Len()-2)
		for j := 2; j < row.Len(); j++ {
			h := row.Nth(j)
			if !h.IsAtom() {
				return nil, fmt.Errorf("certdir: leaf %d hash %d is not an atom", lf, j)
			}
			hs = append(hs, append([]byte(nil), h.Bytes()...))
		}
		out[lf] = hs
	}
	return out, nil
}

// Snapshot streams the peer's bootstrap snapshot, calling visit for
// each frame in order: the snap-header, the record frames, and the
// snap-end trailer (snapshot.go documents the format). The frame
// passed to visit borrows the reader's buffer and is valid only for
// the duration of the call — typed decoders deep-copy what they keep,
// the same ownership rule WAL replay relies on. A stream that ends
// without a trailer, carries data after it, or whose trailer count
// disagrees with the frames delivered is an error: the caller must
// treat the bootstrap as partial and fall back to gossip.
func (c *Client) Snapshot(ctx context.Context, visit func(sexp.Sexp) error) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathSnapshot, nil)
	if err != nil {
		return fmt.Errorf("certdir: snapshot: %w", err)
	}
	// The transfer is bulk — sized by the peer's whole store — so the
	// default 5 s client timeout would sever it mid-stream; strip the
	// timeout and rely on ctx for cancellation.
	hc := c.httpClient()
	if hc.Timeout > 0 {
		cp := *hc
		cp.Timeout = 0
		hc = &cp
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("certdir: snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &StatusError{Code: resp.StatusCode, Path: PathSnapshot,
			Msg: strings.TrimSpace(string(msg))}
	}
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var fr sexp.FrameReader
	sawHeader := false
	records := 0 // frames between header and trailer
	for {
		e, _, err := fr.Next(br)
		if err == io.EOF {
			return fmt.Errorf("certdir: snapshot: stream ended without trailer")
		}
		if err != nil {
			return fmt.Errorf("certdir: snapshot: %w", err)
		}
		if !sawHeader {
			if e.Tag() != snapTagHeader {
				return fmt.Errorf("certdir: snapshot: stream does not start with a header")
			}
			sawHeader = true
			if err := visit(e); err != nil {
				return err
			}
			continue
		}
		if e.Tag() == snapTagEnd {
			if n, ok := snapTrailerCount(e); !ok || n != records {
				return fmt.Errorf("certdir: snapshot: trailer disagrees with %d delivered records: %s", records, e)
			}
			if err := visit(e); err != nil {
				return err
			}
			if _, _, err := fr.Next(br); err != io.EOF {
				return fmt.Errorf("certdir: snapshot: data after trailer")
			}
			return nil
		}
		records++
		if err := visit(e); err != nil {
			return err
		}
	}
}

// ByIssuer implements prover.RemoteSource.
func (c *Client) ByIssuer(p principal.Principal) ([]core.Proof, error) {
	certs, err := c.QueryByIssuer(p)
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// BySubject implements prover.RemoteSource.
func (c *Client) BySubject(p principal.Principal) ([]core.Proof, error) {
	certs, err := c.QueryBySubject(p)
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// ByIssuerFor implements prover.FilteredSource: the prover pushes the
// tag it is searching for and its fetch cap down to the directory.
func (c *Client) ByIssuerFor(p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	certs, err := c.QueryByIssuerFiltered(p, QueryFilter{Limit: limit, Tag: want})
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// BySubjectFor implements prover.FilteredSource.
func (c *Client) BySubjectFor(p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	certs, err := c.QueryBySubjectFiltered(p, QueryFilter{Limit: limit, Tag: want})
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// ByIssuerForCtx implements prover.ContextSource: the filtered query
// carrying the search's context, so discovery fetches propagate the
// caller's trace and honor cancellation.
func (c *Client) ByIssuerForCtx(ctx context.Context, p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	certs, err := c.queryCtx(ctx, "issuer", p, QueryFilter{Limit: limit, Tag: want})
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

// BySubjectForCtx implements prover.ContextSource.
func (c *Client) BySubjectForCtx(ctx context.Context, p principal.Principal, want tag.Tag, limit int) ([]core.Proof, error) {
	certs, err := c.queryCtx(ctx, "subject", p, QueryFilter{Limit: limit, Tag: want})
	if err != nil {
		return nil, err
	}
	return asProofs(certs), nil
}

func asProofs(certs []*cert.Cert) []core.Proof {
	out := make([]core.Proof, len(certs))
	for i, ct := range certs {
		out[i] = ct
	}
	return out
}
