package certdir

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// ctlDomain is one guarded directory: store, revocation state,
// service with an enforcing Guard, and its base client (unsigned).
type ctlDomain struct {
	store *Store
	revs  *cert.RevocationStore
	svc   *Service
	open  *Client // unsigned client
	url   string
}

func newCtlDomain(t *testing.T, operator principal.Principal) *ctlDomain {
	t.Helper()
	st := NewStore(4)
	svc := NewService(st)
	svc.Revocations = cert.NewRevocationStore()
	svc.Guard = httpauth.NewCtlGuard(operator, svc.Revocations)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return &ctlDomain{store: st, revs: svc.Revocations, svc: svc, open: NewClient(ts.URL), url: ts.URL}
}

// signedClient returns a client whose mutating requests carry proofs
// built from the given key and credential chain.
func signedClient(url string, operator principal.Principal, key *sfkey.PrivateKey, chain ...*cert.Cert) *Client {
	c := NewClient(url)
	c.Ctl = httpauth.NewCtlSigner(prover.NewKeyClosure(key), operator, chain...)
	return c
}

// TestCtlAuthDenialPaths drives every denial class over the live HTTP
// service: missing chain, wrong tag, expired chain — and checks the
// read-only surface stays open throughout.
func TestCtlAuthDenialPaths(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	op := sfkey.FromSeed([]byte("ctl-denial-operator"))
	operator := principal.KeyOf(op.Public())
	d := newCtlDomain(t, operator)

	issuer := sfkey.FromSeed([]byte("ctl-denial-issuer"))
	subject := principal.KeyOf(sfkey.FromSeed([]byte("ctl-denial-subject")).Public())
	delegation := delegate(t, issuer, subject, tag.Prefix("files/"), v)

	// Missing chain: every mutating endpoint refuses, with the 401
	// challenge naming the operator.
	if err := d.open.Publish(delegation); err == nil {
		t.Fatal("unauthenticated publish accepted")
	} else if !strings.Contains(err.Error(), "401") {
		t.Fatalf("publish denial is not a challenge: %v", err)
	}
	if _, err := d.open.Remove(delegation.Hash()); err == nil {
		t.Fatal("unauthenticated remove accepted")
	}
	crl := cert.NewRevocationList(issuer, v, delegation.Hash())
	if err := d.open.PushCRL(crl); err == nil {
		t.Fatal("unauthenticated CRL install accepted")
	}
	if _, err := d.open.ReloadCRLs(); err == nil {
		t.Fatal("unauthenticated reload accepted")
	}
	if d.store.Len() != 0 || len(d.revs.Lists()) != 0 {
		t.Fatal("denied mutations changed state")
	}

	// Wrong tag: a publish-only credential cannot reach the admin
	// surface (the signer has no chain for the admin tag, so signing
	// itself fails — nothing even reaches the wire).
	pubKey := sfkey.FromSeed([]byte("ctl-denial-publisher"))
	pubCred, err := cert.DelegateCtl(op, principal.KeyOf(pubKey.Public()), time.Hour, cert.CtlPublish)
	if err != nil {
		t.Fatal(err)
	}
	publisher := signedClient(d.url, operator, pubKey, pubCred)
	if err := publisher.Publish(delegation); err != nil {
		t.Fatalf("publish credential refused on publish: %v", err)
	}
	if err := publisher.PushCRL(crl); err == nil {
		t.Fatal("publish credential reached the admin surface")
	}
	if len(d.revs.Lists()) != 0 {
		t.Fatal("admin mutation applied under a publish credential")
	}

	// Expired chain: a credential whose window has lapsed signs fine
	// under a frozen clock but the service rejects it at real now.
	oldKey := sfkey.FromSeed([]byte("ctl-denial-expired"))
	then := now.Add(-2 * time.Hour)
	oldCred, err := cert.Delegate(op, principal.KeyOf(oldKey.Public()), operator,
		cert.CtlTag(cert.CtlAdmin), core.Between(then, then.Add(time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	expired := signedClient(d.url, operator, oldKey, oldCred)
	expired.Ctl.Clock = func() time.Time { return then.Add(time.Minute) }
	if err := expired.PushCRL(crl); err == nil {
		t.Fatal("expired admin credential accepted")
	}

	// The read-only surface never needed a proof.
	if _, err := d.open.QueryByIssuer(principal.KeyOf(issuer.Public())); err != nil {
		t.Fatalf("query blocked by guard: %v", err)
	}
	if _, err := d.open.Digests(); err != nil {
		t.Fatalf("gossip pull blocked by guard: %v", err)
	}
	if gs := d.svc.Guard.Stats(); gs.Denied < 4 {
		t.Fatalf("denials not counted: %+v", gs)
	}
}

// TestCtlAuthAcceptedAndFastPath: an operator chain for (sf-ctl
// admin) is accepted, and repeated admin calls ride the proof cache —
// the credential chain is signature-verified once, not per call.
func TestCtlAuthAcceptedFastPath(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	op := sfkey.FromSeed([]byte("ctl-accept-operator"))
	operator := principal.KeyOf(op.Public())
	d := newCtlDomain(t, operator)
	// A private cache so other tests' traffic cannot pollute the
	// counters; the guard and store share it like the daemons share
	// the process-wide one.
	cache := core.NewProofCache(256)
	d.svc.Guard.Cache = cache
	d.revs.AttachCache(cache)

	adminKey := sfkey.FromSeed([]byte("ctl-accept-admin"))
	adminCred, err := cert.DelegateCtl(op, principal.KeyOf(adminKey.Public()), time.Hour, cert.CtlAdmin)
	if err != nil {
		t.Fatal(err)
	}
	admin := signedClient(d.url, operator, adminKey, adminCred)

	issuer := sfkey.FromSeed([]byte("ctl-accept-issuer"))
	for i, h := range [][]byte{[]byte("h-one"), []byte("h-two"), []byte("h-three")} {
		crl := cert.NewRevocationList(issuer, v, h)
		if err := admin.PushCRL(crl); err != nil {
			t.Fatalf("admin call %d refused: %v", i, err)
		}
	}
	if got := len(d.revs.Lists()); got != 3 {
		t.Fatalf("%d CRLs installed, want 3", got)
	}
	gs := d.svc.Guard.Stats()
	if gs.Authorized != 3 || gs.Denied != 0 {
		t.Fatalf("guard stats %+v", gs)
	}
	// Note each PushCRL bumps the epoch (a CRL landed), so the NEXT
	// call's chain is re-verified — that is revocation soundness, not
	// a cache failure. Repeat admin calls with no interleaved CRL
	// install to observe the warm path.
	cold := sfkey.SigVerifies()
	dup := cert.NewRevocationList(issuer, v, []byte("h-three"))
	for i := 0; i < 3; i++ {
		if err := admin.PushCRL(dup); err != nil {
			t.Fatalf("warm admin call %d refused: %v", i, err)
		}
	}
	// Budget per warm call: 1 CRL-signature verify (AddNew always
	// verifies before dedup) + 1 fresh request-hash leaf. The first
	// warm call additionally re-verifies the credential once — the
	// third install above bumped the epoch, which is revocation
	// soundness. 3*2 + 1 = 7. Without the cache the credential would
	// re-verify on every call (9+).
	warm := sfkey.SigVerifies() - cold
	if warm > 7 {
		t.Fatalf("3 warm admin calls performed %d signature verifications; chain not cached", warm)
	}
	// The credential's verdict was published to the shared cache, so
	// any OTHER verifier bound to the same revocation view (a second
	// listener, a restarted guard) starts warm; the cross-verifier hit
	// itself is asserted in httpauth's TestCtlProofCacheFastPath.
	if cache.Len() == 0 {
		t.Fatal("credential verdict never entered the shared proof cache")
	}
}

// TestCtlOperatorRevocationLockout is the acceptance scenario, run
// under -race in CI: two guarded directories gossip with signed
// pushes; an admin's credential works at A until the operator revokes
// it with a CRL installed AT PEER B; one gossip round later the CRL
// has propagated to A and the same admin — same key, same credential,
// same request shape — is locked out of A, end to end through the
// live pipeline it used to administer.
func TestCtlOperatorRevocationLockout(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	op := sfkey.FromSeed([]byte("ctl-lockout-operator"))
	operator := principal.KeyOf(op.Public())

	dA := newCtlDomain(t, operator)
	dB := newCtlDomain(t, operator)

	// Each directory signs its own pushes with a daemon credential
	// covering both operation classes (what sf-certd -ctl-key/-ctl-cert
	// wires up).
	keyA := sfkey.FromSeed([]byte("ctl-lockout-daemon-a"))
	keyB := sfkey.FromSeed([]byte("ctl-lockout-daemon-b"))
	credA, err := cert.DelegateCtl(op, principal.KeyOf(keyA.Public()), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	credB, err := cert.DelegateCtl(op, principal.KeyOf(keyB.Public()), time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	repA := NewReplicator(dA.store, []*Client{signedClient(dB.url, operator, keyA, credA)})
	repA.Revocations = dA.revs
	repA.Interval = 100 * time.Millisecond
	repA.Start()
	t.Cleanup(repA.Stop)
	dA.svc.Replicator = repA

	repB := NewReplicator(dB.store, []*Client{signedClient(dA.url, operator, keyB, credB)})
	repB.Revocations = dB.revs
	repB.Interval = 100 * time.Millisecond
	repB.Start()
	t.Cleanup(repB.Stop)
	dB.svc.Replicator = repB

	// The admin holds a delegated admin credential and talks to A.
	adminKey := sfkey.FromSeed([]byte("ctl-lockout-admin"))
	adminCred, err := cert.DelegateCtl(op, principal.KeyOf(adminKey.Public()), time.Hour, cert.CtlAdmin)
	if err != nil {
		t.Fatal(err)
	}
	adminAtA := signedClient(dA.url, operator, adminKey, adminCred)

	issuer := sfkey.FromSeed([]byte("ctl-lockout-issuer"))
	if err := adminAtA.PushCRL(cert.NewRevocationList(issuer, v, []byte("some-cert"))); err != nil {
		t.Fatalf("admin call before revocation refused: %v", err)
	}
	// That CRL also rides gossip B-ward (signed pushes work).
	waitFor(t, "authenticated CRL gossip A -> B", func() bool {
		return len(dB.revs.Lists()) >= 1
	})

	// The operator revokes the ADMIN'S credential — installed at B,
	// not at A, through B's own guarded admin endpoint using the
	// operator's root authority (the operator key is its own
	// credential: reqPrin -> operator minted directly).
	rootAtB := signedClient(dB.url, operator, op)
	if err := rootAtB.PushCRL(cert.NewRevocationList(op, v, adminCred.Hash())); err != nil {
		t.Fatalf("operator root CRL install at B refused: %v", err)
	}
	// B is already locked for this admin; A follows within one gossip
	// round (B pushes, or A pulls — both paths are live).
	waitFor(t, "lockout CRL propagation B -> A", func() bool {
		return dA.revs.Has(cert.NewRevocationList(op, v, adminCred.Hash()).Hash())
	})

	// Same admin, same credential, same endpoint that worked before:
	// locked out at A without A ever being told directly.
	if err := adminAtA.PushCRL(cert.NewRevocationList(issuer, v, []byte("another-cert"))); err == nil {
		t.Fatal("revoked admin credential still accepted at A")
	}
	// And at B, for completeness.
	adminAtB := signedClient(dB.url, operator, adminKey, adminCred)
	if err := adminAtB.PushCRL(cert.NewRevocationList(issuer, v, []byte("third-cert"))); err == nil {
		t.Fatal("revoked admin credential still accepted at B")
	}
	// The daemons' own credentials are untouched: gossip keeps
	// flowing after the lockout.
	if err := signedClient(dA.url, operator, keyA, credA).Publish(
		delegate(t, issuer, principal.KeyOf(adminKey.Public()), tag.Prefix("files/"), v)); err != nil {
		t.Fatalf("daemon credential broken by admin lockout: %v", err)
	}
	waitFor(t, "publish replication after lockout", func() bool { return dB.store.Len() >= 1 })
}
