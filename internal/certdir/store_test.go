package certdir

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// delegate signs subject =t=> key(priv) valid within v.
func delegate(t *testing.T, priv *sfkey.PrivateKey, subject principal.Principal, tg tag.Tag, v core.Validity) *cert.Cert {
	t.Helper()
	c, err := cert.Delegate(priv, subject, principal.KeyOf(priv.Public()), tg, v)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStorePublishAndQuery(t *testing.T) {
	now := time.Now()
	v := core.Between(now.Add(-time.Minute), now.Add(time.Hour))
	alice := sfkey.FromSeed([]byte("store-alice"))
	bob := sfkey.FromSeed([]byte("store-bob"))
	bobP := principal.KeyOf(bob.Public())
	aliceP := principal.KeyOf(alice.Public())

	st := NewStore(4)
	c := delegate(t, alice, bobP, tag.Prefix("files"), v)
	added, err := st.Publish(c, now)
	if err != nil || !added {
		t.Fatalf("publish: added=%v err=%v", added, err)
	}
	// Idempotent duplicate.
	added, err = st.Publish(c, now)
	if err != nil || added {
		t.Fatalf("duplicate publish: added=%v err=%v", added, err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}

	got := st.ByIssuer(aliceP, now)
	if len(got) != 1 || !got[0].Equal(c) {
		t.Fatalf("ByIssuer = %v", got)
	}
	got = st.BySubject(bobP, now)
	if len(got) != 1 || !got[0].Equal(c) {
		t.Fatalf("BySubject = %v", got)
	}
	if got := st.ByIssuer(bobP, now); len(got) != 0 {
		t.Fatalf("ByIssuer(bob) = %v, want empty", got)
	}

	// Tampered signature is refused.
	bad := *c
	bad.Signature = append([]byte(nil), c.Signature...)
	bad.Signature[0] ^= 1
	if _, err := st.Publish(&bad, now); err == nil {
		t.Fatal("tampered certificate accepted")
	}
	// Expired-on-arrival is refused.
	old := delegate(t, alice, bobP, tag.All(), core.Between(now.Add(-2*time.Hour), now.Add(-time.Hour)))
	if _, err := st.Publish(old, now); err == nil {
		t.Fatal("expired certificate accepted")
	}
	if s := st.Stats(); s.Published != 1 || s.Duplicates != 1 || s.Rejected != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStoreQueryFiltersExpired(t *testing.T) {
	now := time.Now()
	alice := sfkey.FromSeed([]byte("filter-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("filter-bob")).Public())
	aliceP := principal.KeyOf(alice.Public())

	st := NewStore(0)
	c := delegate(t, alice, bobP, tag.All(), core.Between(now.Add(-time.Minute), now.Add(time.Minute)))
	if _, err := st.Publish(c, now); err != nil {
		t.Fatal(err)
	}
	if got := st.ByIssuer(aliceP, now); len(got) != 1 {
		t.Fatalf("live cert missing: %v", got)
	}
	later := now.Add(time.Hour)
	if got := st.ByIssuer(aliceP, later); len(got) != 0 {
		t.Fatalf("expired cert served: %v", got)
	}
	if got := st.BySubject(bobP, later); len(got) != 0 {
		t.Fatalf("expired cert served by subject: %v", got)
	}
}

func TestStoreSweep(t *testing.T) {
	now := time.Now()
	alice := sfkey.FromSeed([]byte("sweep-alice"))
	aliceP := principal.KeyOf(alice.Public())
	st := NewStore(8)

	for i := 0; i < 10; i++ {
		subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("sweep-subj-%d", i))).Public())
		v := core.Between(now.Add(-time.Minute), now.Add(time.Minute))
		if i%2 == 0 {
			v = core.Between(now.Add(-time.Minute), now.Add(time.Hour))
		}
		if _, err := st.Publish(delegate(t, alice, subj, tag.All(), v), now); err != nil {
			t.Fatal(err)
		}
	}
	if n := st.Sweep(now); n != 0 {
		t.Fatalf("premature sweep dropped %d", n)
	}
	if n := st.Sweep(now.Add(30 * time.Minute)); n != 5 {
		t.Fatalf("sweep dropped %d, want 5", n)
	}
	if st.Len() != 5 {
		t.Fatalf("Len = %d after sweep, want 5", st.Len())
	}
	if got := st.ByIssuer(aliceP, now.Add(30*time.Minute)); len(got) != 5 {
		t.Fatalf("ByIssuer after sweep = %d certs", len(got))
	}
}

func TestStoreRemove(t *testing.T) {
	now := time.Now()
	alice := sfkey.FromSeed([]byte("remove-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("remove-bob")).Public())
	st := NewStore(2)
	c := delegate(t, alice, bobP, tag.All(), core.Until(now.Add(time.Hour)))
	if _, err := st.Publish(c, now); err != nil {
		t.Fatal(err)
	}
	if !st.Remove(c.Hash()) {
		t.Fatal("Remove missed a stored cert")
	}
	if st.Remove(c.Hash()) {
		t.Fatal("Remove found an already-removed cert")
	}
	if st.Len() != 0 || len(st.BySubject(bobP, now)) != 0 {
		t.Fatal("removed cert still indexed")
	}
}

func TestStoreEvictRevoked(t *testing.T) {
	now := time.Now()
	alice := sfkey.FromSeed([]byte("evict-alice"))
	bobP := principal.KeyOf(sfkey.FromSeed([]byte("evict-bob")).Public())
	carolP := principal.KeyOf(sfkey.FromSeed([]byte("evict-carol")).Public())
	st := NewStore(4)

	good := delegate(t, alice, bobP, tag.All(), core.Until(now.Add(time.Hour)))
	revoked := delegate(t, alice, carolP, tag.All(), core.Until(now.Add(time.Hour)))
	for _, c := range []*cert.Cert{good, revoked} {
		if _, err := st.Publish(c, now); err != nil {
			t.Fatal(err)
		}
	}

	rs := cert.NewRevocationStore()
	crl := cert.NewRevocationList(alice, core.Until(now.Add(time.Hour)), revoked.Hash())
	if err := rs.Add(crl); err != nil {
		t.Fatal(err)
	}
	if n := st.EvictRevoked(rs.RevokedAt(now)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if got := st.BySubject(carolP, now); len(got) != 0 {
		t.Fatal("revoked cert still served")
	}
	if got := st.BySubject(bobP, now); len(got) != 1 {
		t.Fatal("unrevoked cert evicted")
	}
}

// TestStoreConcurrency hammers every mutation path at once; run with
// -race (CI does) to check the sharded locking.
func TestStoreConcurrency(t *testing.T) {
	now := time.Now()
	const issuers, perIssuer = 8, 25
	st := NewStore(4)

	certs := make([][]*cert.Cert, issuers)
	prins := make([]principal.Principal, issuers)
	for i := range certs {
		priv := sfkey.FromSeed([]byte(fmt.Sprintf("conc-issuer-%d", i)))
		prins[i] = principal.KeyOf(priv.Public())
		for j := 0; j < perIssuer; j++ {
			subj := principal.KeyOf(sfkey.FromSeed([]byte(fmt.Sprintf("conc-subj-%d-%d", i, j))).Public())
			v := core.Until(now.Add(time.Hour))
			if j%5 == 0 {
				v = core.Between(now.Add(-time.Minute), now.Add(time.Minute))
			}
			certs[i] = append(certs[i], delegate(t, priv, subj, tag.All(), v))
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < issuers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, c := range certs[i] {
				if _, err := st.Publish(c, now); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perIssuer; j++ {
				st.ByIssuer(prins[i], now)
				st.BySubject(certs[i][j].Body.Subject, now)
			}
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			st.Sweep(now.Add(10 * time.Minute))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			st.EvictRevoked(func([]byte) bool { return false })
			st.Len()
			st.Stats()
		}
	}()
	wg.Wait()

	// Everything published; the sweeper raced but only ever removes
	// the short-validity fifth of each issuer's certs.
	if n := st.Len(); n < issuers*perIssuer*4/5 || n > issuers*perIssuer {
		t.Fatalf("Len = %d after concurrent load", n)
	}
	st.Sweep(now.Add(10 * time.Minute))
	if n := st.Len(); n != issuers*perIssuer*4/5 {
		t.Fatalf("Len = %d after final sweep, want %d", n, issuers*perIssuer*4/5)
	}
}
