package obs

import (
	"math"
	"testing"
)

// A histogram filled with a known uniform spread should report
// quantiles inside the right buckets, with linear interpolation
// placing them proportionally.
func TestSnapQuantile(t *testing.T) {
	h := NewHistogram("t", "", 1, 2, 4, 8)
	// 100 observations uniform over (0, 1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snap()
	if got := s.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 of uniform(0,1] = %v, want 0.5", got)
	}
	if got := s.Quantile(1); got != 1.0 {
		t.Fatalf("p100 = %v, want 1.0", got)
	}

	// Add 100 observations in (1, 2]: p50 now sits exactly at the
	// first bucket boundary, p75 in the middle of the second bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(1 + float64(i)/100)
	}
	s = h.Snap()
	if got := s.Quantile(0.5); got != 1.0 {
		t.Fatalf("p50 = %v, want 1.0", got)
	}
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	if got, want := s.Mean(), s.Sum/200; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestSnapQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram("t", "", 1, 2)
	h.Observe(100) // lands in +Inf
	h.Observe(200)
	s := h.Snap()
	if got := s.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamped to largest bound 2", got)
	}
}

func TestSnapEmptyAndNil(t *testing.T) {
	var h *Histogram
	s := h.Snap()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatalf("nil histogram snap not zero: %+v", s)
	}
	s = NewHistogram("t", "", 1).Snap()
	if s.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", s.Quantile(0.99))
	}
}

func TestSnapSub(t *testing.T) {
	h := NewHistogram("t", "", 1, 2)
	h.Observe(0.5)
	base := h.Snap()
	h.Observe(1.5)
	h.Observe(1.6)
	d := h.Snap().Sub(base)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if got := d.Quantile(0.5); got <= 1 || got > 2 {
		t.Fatalf("delta p50 = %v, want within (1,2]", got)
	}
	if math.Abs(d.Sum-3.1) > 1e-9 {
		t.Fatalf("delta sum = %v, want 3.1", d.Sum)
	}
}
