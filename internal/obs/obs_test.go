package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndContext(t *testing.T) {
	rec := NewRecorder(16)
	ctx, root := rec.Start(context.Background(), "gateway.admit")
	if root.TraceID() == "" {
		t.Fatal("root span has no trace ID")
	}
	ctx2, child := StartSpan(ctx, "prover.remote")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root trace %q", child.TraceID(), root.TraceID())
	}
	_, grand := StartSpan(ctx2, "certdir.query")
	grand.SetAttr("issuer", "k1")
	grand.Fail(fmt.Errorf("boom"))
	grand.End()
	child.End()
	root.End()

	spans := rec.TraceSpans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["certdir.query"].Err != "boom" || byName["certdir.query"].Attrs["issuer"] != "k1" {
		t.Fatalf("grandchild span missing err/attr: %+v", byName["certdir.query"])
	}
	if byName["prover.remote"].Parent == "" || byName["certdir.query"].Parent == "" {
		t.Fatal("child spans missing parent links")
	}
}

func TestStartSpanNoopWithoutTrace(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "untraced")
	if s != nil {
		t.Fatal("expected nil span on untraced context")
	}
	// nil-span methods must be safe.
	s.SetAttr("k", "v")
	s.Fail(fmt.Errorf("x"))
	s.End()
	if got := Inject(ctx); got != "" {
		t.Fatalf("Inject on untraced ctx = %q, want empty", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	rec := NewRecorder(4)
	ctx, s := rec.Start(context.Background(), "a")
	hdr := Inject(ctx)
	trace, parent, ok := ParseHeader(hdr)
	if !ok || trace != s.TraceID() {
		t.Fatalf("ParseHeader(%q) = %q,%q,%v", hdr, trace, parent, ok)
	}
	rec2 := NewRecorder(4)
	_, remote := rec2.StartFromHeader(context.Background(), hdr, "b")
	if remote.TraceID() != s.TraceID() {
		t.Fatalf("remote span trace %q, want %q", remote.TraceID(), s.TraceID())
	}
	remote.End()
	if got := rec2.TraceSpans(s.TraceID()); len(got) != 1 || got[0].Parent == "" {
		t.Fatalf("remote recorder spans = %+v", got)
	}
	for _, bad := range []string{"", "nohyphen", "xyz-123", "abc-", "-abc"} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Fatalf("ParseHeader(%q) unexpectedly ok", bad)
		}
	}
}

func TestRecorderRingBounds(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		_, s := rec.Start(context.Background(), fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if spans[0].Name != "s6" || spans[3].Name != "s9" {
		t.Fatalf("ring kept %q..%q, want s6..s9", spans[0].Name, spans[3].Name)
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", rec.Dropped())
	}
}

func TestTraceHandler(t *testing.T) {
	rec := NewRecorder(8)
	ctx, root := rec.Start(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	_, other := rec.Start(context.Background(), "other")
	other.End()

	w := httptest.NewRecorder()
	rec.ServeHTTP(w, httptest.NewRequest("GET", "/debug/trace?trace="+root.TraceID(), nil))
	var resp struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Spans) != 2 {
		t.Fatalf("filtered spans = %d, want 2", len(resp.Spans))
	}

	w = httptest.NewRecorder()
	rec.ServeHTTP(w, httptest.NewRequest("GET", "/debug/trace?format=tree", nil))
	tree := w.Body.String()
	if !strings.Contains(tree, "root") || !strings.Contains(tree, "    child") {
		t.Fatalf("tree rendering missing nesting:\n%s", tree)
	}
}

func TestAuditLogRingSinkAndHandler(t *testing.T) {
	var sink bytes.Buffer
	l := NewAuditLog(4)
	l.SetSink(&sink)
	for i := 0; i < 6; i++ {
		v := VerdictAdmit
		if i%2 == 1 {
			v = VerdictDeny
		}
		l.Append(Decision{
			Layer:      "gateway",
			Op:         "Select",
			Principal:  fmt.Sprintf("user%d", i),
			Verdict:    v,
			CertHashes: []string{"aa", "bb"},
			Trace:      "t1",
		})
	}
	l.Append(Decision{Layer: "httpauth", Op: "GET /x", Verdict: VerdictChallenge})

	if l.Admitted() != 3 || l.Denied() != 3 || l.Challenged() != 1 {
		t.Fatalf("counts = %d/%d/%d", l.Admitted(), l.Denied(), l.Challenged())
	}
	if got := l.Recent(0); len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Every appended decision reached the JSONL sink.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("sink has %d lines, want 7", len(lines))
	}
	var d Decision
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil || d.Time.IsZero() {
		t.Fatalf("sink line unparseable or unstamped: %v %+v", err, d)
	}

	w := httptest.NewRecorder()
	l.ServeHTTP(w, httptest.NewRequest("GET", "/debug/decisions?verdict=deny&layer=gateway", nil))
	var resp struct {
		Denied    uint64     `json:"denied_total"`
		Decisions []Decision `json:"decisions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Denied != 3 {
		t.Fatalf("denied_total = %d, want 3", resp.Denied)
	}
	for _, d := range resp.Decisions {
		if d.Verdict != VerdictDeny || d.Layer != "gateway" {
			t.Fatalf("filter leaked %+v", d)
		}
	}
}

func TestAuditLogNilSafe(t *testing.T) {
	var l *AuditLog
	l.Append(Decision{Verdict: VerdictDeny})
	if l.Recent(5) != nil || l.Denied() != 0 {
		t.Fatal("nil AuditLog misbehaved")
	}
	l.SetSink(&bytes.Buffer{})
	if err := l.CloseSink(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("sf_test_seconds", "help", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 3} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	// 0.001 is inclusive (le semantics): two observations <= 0.001.
	want := []uint64{2, 3, 4}
	for i, c := range cum {
		if c != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, c, want[i], cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if diff := sum - 3.0565; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want 3.0565", sum)
	}
	var nilH *Histogram
	nilH.Observe(1)
	nilH.Since(time.Now())
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("sf_conc_seconds", "help", 0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	cum, sum, count := h.Snapshot()
	if count != 8000 || cum[0] != 8000 {
		t.Fatalf("count=%d cum=%v, want 8000", count, cum)
	}
	if diff := sum - 2000; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %v, want 2000", sum)
	}
}
