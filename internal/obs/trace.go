// Package obs is the observability substrate for the mesh: request-
// scoped span tracing, a structured authorization audit trail, and
// fixed-bucket latency histograms. It is deliberately a leaf package —
// stdlib only, imported by every layer (gateway, prover, certdir, rmi,
// httpauth, server) without creating cycles — and deliberately not
// OpenTelemetry: the mesh needs a few hundred lines of ring buffers,
// not a collector pipeline. A trace here is the explainability story
// of the paper made operational: one cold admit renders as a single
// tree of timed spans crossing the gateway, the prover's remote
// discovery, and the directory, linked by the Sf-Trace header.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries trace context between processes. The value is
// "<trace-id>-<span-id>": the 16-hex-digit trace ID and the 16-hex
// span ID of the caller's active span, which becomes the parent of
// the first span the callee opens.
const TraceHeader = "Sf-Trace"

// Span is one completed, timed operation within a trace.
type Span struct {
	Trace    string            `json:"trace"`
	ID       string            `json:"id"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      string            `json:"err,omitempty"`
}

// Recorder collects completed spans into a bounded ring; when the
// ring is full the oldest spans are dropped (and counted). One
// Recorder per daemon, exported at /debug/trace on the admin mux.
type Recorder struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	full    bool
	dropped uint64

	// sampleEvery is the head-sampling rate: a fresh trace (one not
	// continuing an incoming Sf-Trace header) is recorded when the
	// fresh-trace counter hits a 1-in-sampleEvery slot. 0 or 1 means
	// record everything. Incoming traces are always honored — the
	// upstream edge already made the sampling decision.
	sampleEvery atomic.Uint64
	sampleSeq   atomic.Uint64
}

// DefaultRingSize bounds a Recorder built with NewRecorder(0).
const DefaultRingSize = 2048

// NewRecorder returns a recorder holding at most max completed spans
// (DefaultRingSize when max <= 0).
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRingSize
	}
	return &Recorder{ring: make([]Span, max)}
}

func (r *Recorder) record(s Span) {
	r.mu.Lock()
	if r.full {
		r.dropped++
	}
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	return out
}

// TraceSpans returns the retained spans of one trace, sorted by start
// time.
func (r *Recorder) TraceSpans(trace string) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SetSampleRate sets head sampling to record 1 in n fresh traces
// (n <= 1 records every trace). Spans joining an incoming Sf-Trace
// header are always recorded regardless of the rate: the edge that
// minted the trace made the decision, and dropping mid-trace spans
// would leave torn trees. Safe to change at runtime.
func (r *Recorder) SetSampleRate(n int) {
	if n < 1 {
		n = 1
	}
	r.sampleEvery.Store(uint64(n))
}

// SampleRate reports the current 1-in-N fresh-trace sampling rate.
func (r *Recorder) SampleRate() int {
	n := r.sampleEvery.Load()
	if n < 1 {
		return 1
	}
	return int(n)
}

// sampleFresh decides whether the next fresh trace is recorded:
// deterministically one in every sampleEvery, so a rate of N keeps
// exactly 1/N of a steady request stream rather than a random coin's
// long droughts.
func (r *Recorder) sampleFresh() bool {
	n := r.sampleEvery.Load()
	if n <= 1 {
		return true
	}
	return r.sampleSeq.Add(1)%n == 1
}

// Dropped reports how many spans the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

func newID(bytes int) string {
	b := make([]byte, bytes)
	if _, err := rand.Read(b); err != nil {
		panic("obs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a fresh 16-hex-digit trace identifier.
func NewTraceID() string { return newID(8) }

// ActiveSpan is an in-progress span. The zero of usefulness is nil:
// every method no-ops on a nil receiver, so instrumentation sites
// never test whether tracing is wired.
type ActiveSpan struct {
	rec   *Recorder
	mu    sync.Mutex
	span  Span
	ended bool
	// unsampled marks a span whose trace lost the head-sampling draw:
	// it times and attributes normally but End discards it, children
	// inherit the bit, and Header returns "" so the decision
	// propagates (downstream edges see no header and sample afresh).
	unsampled bool
}

// Start opens a span in this recorder. If ctx already carries an
// active span the new one joins its trace as a child; otherwise a
// fresh trace begins. The returned context carries the new span for
// further nesting.
func (r *Recorder) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	s := &ActiveSpan{rec: r, span: Span{ID: newID(8), Name: name, Start: time.Now()}}
	if parent := FromContext(ctx); parent != nil && parent.span.Trace != "" {
		s.span.Trace = parent.span.Trace
		s.span.Parent = parent.span.ID
		s.unsampled = parent.unsampled
	} else {
		s.span.Trace = NewTraceID()
		s.unsampled = !r.sampleFresh()
	}
	return ContextWith(ctx, s), s
}

// StartFromHeader opens a span continuing the trace named by an
// incoming Sf-Trace header value; an empty or malformed value begins
// a fresh trace. Servers call this at their edge.
func (r *Recorder) StartFromHeader(ctx context.Context, header, name string) (context.Context, *ActiveSpan) {
	s := &ActiveSpan{rec: r, span: Span{ID: newID(8), Name: name, Start: time.Now()}}
	if trace, parent, ok := ParseHeader(header); ok {
		s.span.Trace = trace
		s.span.Parent = parent
	} else {
		s.span.Trace = NewTraceID()
		s.unsampled = !r.sampleFresh()
	}
	return ContextWith(ctx, s), s
}

// StartSpan opens a child span inside whatever recorder the context's
// active span belongs to. On a context with no active trace it
// returns (ctx, nil): the nil span's methods no-op, so instrumented
// code costs nothing off the traced path.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	parent := FromContext(ctx)
	if parent == nil || parent.rec == nil {
		return ctx, nil
	}
	return parent.rec.Start(ctx, name)
}

// SetAttr attaches a key/value to the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
	s.mu.Unlock()
}

// Fail records the error the span's operation ended with.
func (s *ActiveSpan) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.span.Err = err.Error()
	s.mu.Unlock()
}

// End completes the span and commits it to the recorder. Idempotent.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.span.Duration = time.Since(s.span.Start)
	sp := s.span
	rec := s.rec
	unsampled := s.unsampled
	s.mu.Unlock()
	if rec != nil && !unsampled {
		rec.record(sp)
	}
}

// TraceID returns the span's trace identifier ("" on a nil span).
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

type ctxKey struct{}

// ContextWith returns a context carrying s as the active span.
func ContextWith(ctx context.Context, s *ActiveSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the context's active span, or nil.
func FromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}

// Header renders the span as an Sf-Trace header value ("" on nil and
// on unsampled spans — an unrecorded trace must not be propagated, or
// downstream edges would honor it and record torn half-traces).
func (s *ActiveSpan) Header() string {
	if s == nil || s.unsampled {
		return ""
	}
	return s.span.Trace + "-" + s.span.ID
}

// Inject returns the Sf-Trace header value for the context's active
// span, or "" when the context carries no trace.
func Inject(ctx context.Context) string { return FromContext(ctx).Header() }

// ParseHeader splits an Sf-Trace value into trace and parent span
// IDs.
func ParseHeader(v string) (trace, parent string, ok bool) {
	trace, parent, found := strings.Cut(v, "-")
	if !found || trace == "" || parent == "" {
		return "", "", false
	}
	for _, part := range []string{trace, parent} {
		if _, err := hex.DecodeString(part); err != nil {
			return "", "", false
		}
	}
	return trace, parent, true
}

// ServeHTTP exports the span ring at /debug/trace. Query parameters:
// trace=<id> restricts to one trace; n=<max> bounds the span count;
// format=tree renders an indented per-trace text tree instead of
// JSON.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	var spans []Span
	if id := q.Get("trace"); id != "" {
		spans = r.TraceSpans(id)
	} else {
		spans = r.Spans()
	}
	if nStr := q.Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
			spans = spans[len(spans)-n:]
		}
	}
	if q.Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTree(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Dropped uint64 `json:"dropped"`
		Spans   []Span `json:"spans"`
	}{r.Dropped(), spans})
}

// writeTree renders spans grouped by trace as indented trees: roots
// are spans whose parent is absent from the set (it may live in
// another process's recorder).
func writeTree(w http.ResponseWriter, spans []Span) {
	byTrace := map[string][]Span{}
	var order []string
	for _, s := range spans {
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	for _, tid := range order {
		group := byTrace[tid]
		fmt.Fprintf(w, "trace %s (%d spans)\n", tid, len(group))
		ids := map[string]bool{}
		children := map[string][]Span{}
		for _, s := range group {
			ids[s.ID] = true
		}
		var roots []Span
		for _, s := range group {
			if s.Parent != "" && ids[s.Parent] {
				children[s.Parent] = append(children[s.Parent], s)
			} else {
				roots = append(roots, s)
			}
		}
		var emit func(s Span, depth int)
		emit = func(s Span, depth int) {
			fmt.Fprintf(w, "%s%s %s", strings.Repeat("  ", depth+1), s.Name, s.Duration)
			if s.Err != "" {
				fmt.Fprintf(w, " err=%q", s.Err)
			}
			for _, k := range sortedKeys(s.Attrs) {
				fmt.Fprintf(w, " %s=%s", k, s.Attrs[k])
			}
			fmt.Fprintln(w)
			for _, c := range children[s.ID] {
				emit(c, depth+1)
			}
		}
		for _, root := range roots {
			emit(root, 0)
		}
	}
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
