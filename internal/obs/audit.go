package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Decision verdicts.
const (
	VerdictAdmit     = "admit"
	VerdictDeny      = "deny"
	VerdictChallenge = "challenge"
)

// Decision is one authorization outcome: who asked to do what, what
// the answer was, and — the paper's accountability property — the
// exact certificate chain that justified it. CertHashes are the hex
// SHA-256 hashes of the proof's leaf lemmas (signed certificates and
// signed requests), the same hashes the directory stores them under.
type Decision struct {
	Time       time.Time `json:"time"`
	Layer      string    `json:"layer"` // gateway | httpauth | ctlguard | rmi
	Op         string    `json:"op"`
	Principal  string    `json:"principal,omitempty"`
	Tag        string    `json:"tag,omitempty"`
	Verdict    string    `json:"verdict"`
	Reason     string    `json:"reason,omitempty"`
	CertHashes []string  `json:"cert_hashes,omitempty"`
	CacheHit   bool      `json:"cache_hit"`
	Epoch      uint64    `json:"epoch"`
	View       uint64    `json:"view,omitempty"`
	Duration   int64     `json:"duration_us"`
	Trace      string    `json:"trace,omitempty"`
}

// AuditLog is a bounded ring of Decisions with an optional JSONL
// sink. All methods are safe for concurrent use, and every method
// no-ops on a nil receiver so enforcement points append
// unconditionally.
type AuditLog struct {
	mu         sync.Mutex
	ring       []Decision
	next       int
	full       bool
	sink       io.Writer
	closeSink  func() error
	sinkPath   string
	sinkMax    int64
	sinkSize   int64
	admitted   uint64
	denied     uint64
	challenged uint64
	dropped    uint64
	sinkErrs   uint64
}

// DefaultAuditSize bounds an AuditLog built with NewAuditLog(0).
const DefaultAuditSize = 4096

// NewAuditLog returns a log retaining at most max decisions
// (DefaultAuditSize when max <= 0).
func NewAuditLog(max int) *AuditLog {
	if max <= 0 {
		max = DefaultAuditSize
	}
	return &AuditLog{ring: make([]Decision, max)}
}

// SetSink streams every future decision to w as one JSON line each,
// in addition to the ring. Pass nil to detach.
func (l *AuditLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.closeSink = nil
	l.sinkPath = ""
	l.sinkMax = 0
	l.mu.Unlock()
}

// OpenSink appends decisions to a JSONL file at path; CloseSink (or a
// later OpenSink) closes it. Reopen reopens the same path, so an
// external rotator (logrotate + SIGHUP) works without size limits.
func (l *AuditLog) OpenSink(path string) error {
	return l.OpenSinkRotating(path, 0)
}

// OpenSinkRotating is OpenSink with size-based rotation: once the
// file reaches maxBytes the log renames it to path+".1" (replacing
// any previous generation) and starts a fresh file, so a chatty
// enforcement point is bounded at ~2*maxBytes of disk. maxBytes <= 0
// disables rotation. Rotation keeps whole JSON lines — the size check
// runs between decisions, never mid-write.
func (l *AuditLog) OpenSinkRotating(path string, maxBytes int64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	l.mu.Lock()
	old := l.closeSink
	l.sink = f
	l.closeSink = f.Close
	l.sinkPath = path
	l.sinkMax = maxBytes
	l.sinkSize = size
	l.mu.Unlock()
	if old != nil {
		old()
	}
	return nil
}

// Reopen closes and reopens the current file sink by path — the
// SIGHUP hook for operators who rotate the audit log externally. A
// no-op when the sink is not a file.
func (l *AuditLog) Reopen() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	path, max := l.sinkPath, l.sinkMax
	l.mu.Unlock()
	if path == "" {
		return nil
	}
	return l.OpenSinkRotating(path, max)
}

// rotateLocked renames the live file to path+".1" and reopens a fresh
// one. Called with l.mu held once sinkSize crosses sinkMax.
func (l *AuditLog) rotateLocked() {
	if l.closeSink != nil {
		l.closeSink()
	}
	if err := os.Rename(l.sinkPath, l.sinkPath+".1"); err != nil {
		l.sinkErrs++
	}
	f, err := os.OpenFile(l.sinkPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.sink = nil
		l.closeSink = nil
		l.sinkErrs++
		return
	}
	l.sink = f
	l.closeSink = f.Close
	l.sinkSize = 0
}

// CloseSink detaches and closes a file sink opened with OpenSink.
func (l *AuditLog) CloseSink() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	c := l.closeSink
	l.sink = nil
	l.closeSink = nil
	l.mu.Unlock()
	if c != nil {
		return c()
	}
	return nil
}

// Append records one decision. A zero Time is stamped now.
func (l *AuditLog) Append(d Decision) {
	if l == nil {
		return
	}
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	l.mu.Lock()
	switch d.Verdict {
	case VerdictAdmit:
		l.admitted++
	case VerdictDeny:
		l.denied++
	case VerdictChallenge:
		l.challenged++
	}
	if l.full {
		l.dropped++
	}
	l.ring[l.next] = d
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	sink := l.sink
	if sink != nil {
		line, err := json.Marshal(d)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			l.sinkErrs++
		} else {
			l.sinkSize += int64(len(line))
			if l.sinkMax > 0 && l.sinkPath != "" && l.sinkSize >= l.sinkMax {
				l.rotateLocked()
			}
		}
	}
	l.mu.Unlock()
}

// Recent returns the newest n decisions, oldest first (all retained
// decisions when n <= 0).
func (l *AuditLog) Recent(n int) []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	var out []Decision
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	l.mu.Unlock()
	if n > 0 && n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

// Admitted, Denied, and Challenged report cumulative verdict counts
// (beyond what the ring retains) for metric export.
func (l *AuditLog) Admitted() uint64   { return l.count(func() uint64 { return l.admitted }) }
func (l *AuditLog) Denied() uint64     { return l.count(func() uint64 { return l.denied }) }
func (l *AuditLog) Challenged() uint64 { return l.count(func() uint64 { return l.challenged }) }

func (l *AuditLog) count(read func() uint64) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return read()
}

// ServeHTTP exports the decision ring at /debug/decisions as a JSON
// array, newest-bounded by n=<max> and filterable with
// verdict=<admit|deny|challenge>, layer=<name>, trace=<id>, and
// principal=<substring>.
func (l *AuditLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	verdict, layer, trace, prin := q.Get("verdict"), q.Get("layer"), q.Get("trace"), q.Get("principal")
	all := l.Recent(0)
	out := make([]Decision, 0, len(all))
	for _, d := range all {
		if verdict != "" && d.Verdict != verdict {
			continue
		}
		if layer != "" && d.Layer != layer {
			continue
		}
		if trace != "" && d.Trace != trace {
			continue
		}
		if prin != "" && !strings.Contains(d.Principal, prin) {
			continue
		}
		out = append(out, d)
	}
	if nStr := q.Get("n"); nStr != "" {
		if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(out) {
			out = out[len(out)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Admitted   uint64     `json:"admitted_total"`
		Denied     uint64     `json:"denied_total"`
		Challenged uint64     `json:"challenged_total"`
		Decisions  []Decision `json:"decisions"`
	}{l.Admitted(), l.Denied(), l.Challenged(), out})
}
