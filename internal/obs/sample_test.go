package obs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSampleRateRecordsOneInN(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleRate(3)
	for i := 0; i < 9; i++ {
		_, s := r.Start(context.Background(), "fresh")
		s.End()
	}
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("rate 3 over 9 fresh traces recorded %d spans, want 3", got)
	}
}

func TestSampleRateOneRecordsAll(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleRate(1)
	for i := 0; i < 5; i++ {
		_, s := r.Start(context.Background(), "fresh")
		s.End()
	}
	if got := len(r.Spans()); got != 5 {
		t.Fatalf("rate 1 recorded %d of 5, want all", got)
	}
	if r.SampleRate() != 1 {
		t.Fatalf("SampleRate = %d", r.SampleRate())
	}
}

// TestSampleRateHonorsIncomingHeader: the sampling knob governs only
// traces born here. A request arriving with a valid Sf-Trace header
// was sampled at its origin edge and must always be recorded, at any
// local rate.
func TestSampleRateHonorsIncomingHeader(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleRate(1_000_000)
	for i := 0; i < 4; i++ {
		_, s := r.StartFromHeader(context.Background(), "deadbeefdeadbeef-cafecafecafecafe", "edge")
		s.End()
	}
	if got := len(r.Spans()); got != 4 {
		t.Fatalf("incoming traces recorded %d of 4 at rate 1e6, want all", got)
	}
}

// TestUnsampledTraceDoesNotPropagate: an unsampled trace must not
// emit an Sf-Trace header, or the downstream edge would honor it and
// record a torn half-trace. Children inherit the unsampled bit.
func TestUnsampledTraceDoesNotPropagate(t *testing.T) {
	r := NewRecorder(0)
	r.SetSampleRate(1_000_000)
	// sampleSeq starts at 0; the 1-in-N slot is seq%N==1, so the very
	// first fresh trace IS sampled. Burn it, then test an unsampled one.
	_, first := r.Start(context.Background(), "sampled")
	first.End()
	ctx, s := r.Start(context.Background(), "unsampled")
	if h := s.Header(); h != "" {
		t.Fatalf("unsampled span emitted header %q", h)
	}
	_, child := r.Start(ctx, "child")
	if h := child.Header(); h != "" {
		t.Fatalf("child of unsampled span emitted header %q", h)
	}
	child.End()
	s.End()
	if got := len(r.Spans()); got != 1 {
		t.Fatalf("recorded %d spans, want only the first sampled one", got)
	}
	// The sampled trace still propagates.
	if first.Header() == "" {
		t.Fatal("sampled span lost its header")
	}
}

func TestAuditSinkRotatesBySize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	l := NewAuditLog(0)
	// Each decision line is well over 60 bytes; a 400-byte cap forces
	// rotation within a handful of appends.
	if err := l.OpenSinkRotating(path, 400); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		l.Append(Decision{Layer: "test", Op: "op", Verdict: VerdictAdmit, Time: time.Unix(1, 0)})
	}
	if err := l.CloseSink(); err != nil {
		t.Fatal(err)
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("live file missing after rotation: %v", err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	if len(live) >= 400+200 {
		t.Fatalf("live file grew to %d bytes despite 400-byte cap", len(live))
	}
	// No line may be torn in half by rotation: every chunk both files
	// hold is complete JSON lines.
	for _, chunk := range []string{string(live), string(rotated)} {
		if chunk == "" {
			continue
		}
		if !strings.HasSuffix(chunk, "\n") {
			t.Fatalf("torn trailing line: %q", chunk[len(chunk)-40:])
		}
		for _, line := range strings.Split(strings.TrimSuffix(chunk, "\n"), "\n") {
			if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
				t.Fatalf("torn JSON line %q", line)
			}
		}
	}
	// All 40 decisions survive across the two generations... minus the
	// generations dropped when .1 was overwritten. At minimum the live
	// file plus newest rotation hold the most recent writes.
	total := strings.Count(string(live), "\n") + strings.Count(string(rotated), "\n")
	if total == 0 {
		t.Fatal("no decisions on disk")
	}
}

// TestAuditSinkReopen simulates external rotation: move the live file
// aside, call Reopen (the SIGHUP hook), and decisions must land in a
// fresh file at the original path.
func TestAuditSinkReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	l := NewAuditLog(0)
	if err := l.OpenSink(path); err != nil {
		t.Fatal(err)
	}
	l.Append(Decision{Layer: "test", Verdict: VerdictDeny})
	moved := filepath.Join(dir, "audit.jsonl.old")
	if err := os.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if err := l.Reopen(); err != nil {
		t.Fatal(err)
	}
	l.Append(Decision{Layer: "test", Verdict: VerdictAdmit})
	if err := l.CloseSink(); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no fresh file after Reopen: %v", err)
	}
	if !strings.Contains(string(fresh), `"admit"`) {
		t.Fatalf("post-reopen decision missing from fresh file: %q", fresh)
	}
	old, err := os.ReadFile(moved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(old), `"deny"`) {
		t.Fatalf("pre-reopen decision missing from moved file: %q", old)
	}
	// Reopen with no file sink is a no-op, not an error.
	plain := NewAuditLog(0)
	if err := plain.Reopen(); err != nil {
		t.Fatal(err)
	}
}
