package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds, in seconds,
// spanning sub-millisecond cache hits to multi-second cold discovery
// over a slow mesh.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with lock-free
// observation. Buckets hold NON-cumulative per-bucket counts
// internally; Snapshot returns the cumulative form Prometheus
// exposition wants. Observe on a nil receiver no-ops, so flows are
// instrumented whether or not a daemon wired a registry.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // upper bounds, ascending; +Inf implied
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram named name with the given ascending
// upper bounds (DefLatencyBuckets when none are given).
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Name and Help identify the histogram in the exposition.
func (h *Histogram) Name() string { return h.name }
func (h *Histogram) Help() string { return h.help }

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Observe records one value (seconds, for the latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Since observes the elapsed time from start, in seconds.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns cumulative bucket counts aligned with Bounds()
// (cumulative[i] = observations <= bounds[i]), the running sum, and
// the total count. Count is derived from the buckets themselves so
// the implicit +Inf bucket always equals _count, even when Observe
// races a scrape.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	count = acc + h.counts[len(h.bounds)].Load()
	return cumulative, math.Float64frombits(h.sum.Load()), count
}
