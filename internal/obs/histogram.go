package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets are the default histogram bounds, in seconds,
// spanning sub-millisecond cache hits to multi-second cold discovery
// over a slow mesh.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with lock-free
// observation. Buckets hold NON-cumulative per-bucket counts
// internally; Snapshot returns the cumulative form Prometheus
// exposition wants. Observe on a nil receiver no-ops, so flows are
// instrumented whether or not a daemon wired a registry.
type Histogram struct {
	name   string
	help   string
	bounds []float64       // upper bounds, ascending; +Inf implied
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram named name with the given ascending
// upper bounds (DefLatencyBuckets when none are given).
func NewHistogram(name, help string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Name and Help identify the histogram in the exposition.
func (h *Histogram) Name() string { return h.name }
func (h *Histogram) Help() string { return h.help }

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Observe records one value (seconds, for the latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Since observes the elapsed time from start, in seconds.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns cumulative bucket counts aligned with Bounds()
// (cumulative[i] = observations <= bounds[i]), the running sum, and
// the total count. Count is derived from the buckets themselves so
// the implicit +Inf bucket always equals _count, even when Observe
// races a scrape.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.bounds))
	var acc uint64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	count = acc + h.counts[len(h.bounds)].Load()
	return cumulative, math.Float64frombits(h.sum.Load()), count
}

// Snap is an immutable point-in-time copy of a histogram, the form
// percentile extraction works on: Snapshot gives Prometheus its
// cumulative counts, Snap gives load reports their p50/p95/p99
// without re-reading (and racing) the live buckets per quantile.
type Snap struct {
	Bounds     []float64 // finite upper bounds, ascending
	Cumulative []uint64  // aligned with Bounds
	Sum        float64
	Count      uint64 // includes the implicit +Inf bucket
}

// Snap captures the histogram. A nil histogram snaps to the zero
// value, mirroring Observe's nil tolerance.
func (h *Histogram) Snap() Snap {
	if h == nil {
		return Snap{}
	}
	cum, sum, count := h.Snapshot()
	return Snap{Bounds: h.Bounds(), Cumulative: cum, Sum: sum, Count: count}
}

// Sub returns the snapshot of observations recorded after base was
// taken — phase isolation for a histogram reused across load phases.
// Both snaps must come from the same histogram.
func (s Snap) Sub(base Snap) Snap {
	out := Snap{Bounds: s.Bounds, Cumulative: make([]uint64, len(s.Cumulative)), Sum: s.Sum - base.Sum, Count: s.Count - base.Count}
	for i := range s.Cumulative {
		out.Cumulative[i] = s.Cumulative[i] - base.Cumulative[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) in the histogram's
// native unit by locating the bucket holding the target rank and
// interpolating linearly inside it. Values beyond the largest finite
// bound are reported AS that bound — a deliberate under-estimate that
// keeps a single outlier from fabricating precision the buckets do
// not have; widen the bounds if the tail matters. An empty snapshot
// reports 0.
func (s Snap) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var prev uint64
	lower := 0.0
	for i, ub := range s.Bounds {
		c := s.Cumulative[i]
		if float64(c) >= rank && c > prev {
			frac := (rank - float64(prev)) / float64(c-prev)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(ub-lower)
		}
		prev = c
		lower = ub
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the exact average of the observed values (the sum is
// tracked exactly, unlike the bucketed quantiles). Empty reports 0.
func (s Snap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
