// Package lint is the sf-vet analysis suite: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis shape (that
// module is not vendored here) plus the analyzers that mechanically
// enforce this repository's soundness and ownership invariants —
// rules that previously lived only as prose in docs/ARCHITECTURE.md
// and reviewers' heads.
//
// Each analyzer is intraprocedural and conservative: it reports only
// shapes it can see inside one function, so a clean run is not a
// soundness proof, but every report is cheap to act on and every
// suppression (//sfvet:ignore) is greppable. The suite runs blocking
// in CI via cmd/sf-vet.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. Run inspects a type-checked package
// through the Pass and reports findings; it returns an error only for
// internal failures (a report is not an error).
type Analyzer struct {
	Name string // short lower-case identifier, used in //sfvet:ignore
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// --- shared type-aware helpers ---

// calleeFunc resolves the static callee of a call: a package-level
// function, a method (through a selector), or nil for calls through
// function values, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFunc reports whether fn is the named function or method of the
// package whose import path ends in pkgSuffix. Matching by suffix
// keeps analyzers working both on this module ("repro/internal/sexp")
// and on analyzer testdata that re-imports the same packages.
func isFunc(fn *types.Func, pkgSuffix, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return pathHasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// pathHasSuffix reports whether path equals suffix or ends in
// "/"+suffix (a whole-segment suffix match).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// recvNamed returns the name of fn's receiver type (sans pointer), or
// "" for non-methods.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isMethod reports whether fn is the named method on the named type
// of the package whose path ends in pkgSuffix.
func isMethod(fn *types.Func, pkgSuffix, typeName, name string) bool {
	return isFunc(fn, pkgSuffix, name) && recvNamed(fn) == typeName
}

// mentionsAny reports whether expr references any object in objs.
func mentionsAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// funcScopes returns every function body in the file paired with a
// printable name: declared functions and methods plus function
// literals (named after their enclosing declaration).
type funcScope struct {
	name string
	body *ast.BlockStmt
}

func funcScopes(f *ast.File) []funcScope {
	var out []funcScope
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcScope{name: fd.Name.Name, body: fd.Body})
	}
	return out
}
