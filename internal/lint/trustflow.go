package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TrustFlow is the verify-before-index invariant (PRs 1 and 3) as a
// taint check: a value produced by wire decoding — S-expression
// parsing, certificate/proof decoding, directory fetches — carries no
// authority until a Verify* call has screened it, so it must not
// reach an indexing or digesting sink first. Network bytes that skip
// verification and land in the store or the prover's delegation graph
// plant authority an attacker chose.
//
// Sources (taint): sexp.Parse*/Arena.Parse*/ReadFrame,
// core.ProofFromSexp, cert *FromSexp/Decode* decoders, and
// certdir.Client.Fetch. Cleansers: any Verify*-named call that
// mentions the value (or a container of it) — including VerifyBatch
// over a slice, whose elements are then clean. Sinks:
// certdir.Store.Publish/PublishPulled and
// prover.Prover.AddProof/addEdge.
//
// The analysis is intraprocedural and walks each function in source
// order, so a cleanse in one branch conservatively clears the taint
// for the rest of the function; the testdata pins the shapes it must
// catch.
var TrustFlow = &Analyzer{
	Name: "trustflow",
	Doc:  "wire-decoded values pass through Verify* before Publish/index/digest sinks (verify-before-index)",
	Run:  runTrustFlow,
}

func runTrustFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fs := range funcScopes(f) {
			tw := &taintWalker{pass: pass, tainted: make(map[types.Object]bool)}
			tw.stmt(fs.body)
		}
	}
	return nil
}

// isWireSource reports whether the call decodes wire bytes.
func isWireSource(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch {
	case pathHasSuffix(fn.Pkg().Path(), "internal/sexp"):
		return strings.HasPrefix(name, "Parse") || strings.HasPrefix(name, "Read")
	case pathHasSuffix(fn.Pkg().Path(), "internal/core"):
		return name == "ProofFromSexp"
	case pathHasSuffix(fn.Pkg().Path(), "internal/cert"):
		return strings.HasSuffix(name, "FromSexp") || strings.HasPrefix(name, "Decode")
	case pathHasSuffix(fn.Pkg().Path(), "internal/certdir"):
		return recvNamed(fn) == "Client" && name == "Fetch"
	}
	return false
}

// isCleanser reports whether the call verifies its operands.
func isCleanser(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	return strings.HasPrefix(fn.Name(), "Verify")
}

// sinkName returns a printable name if the call indexes or digests
// authority, "" otherwise.
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	switch {
	case isMethod(fn, "internal/certdir", "Store", "Publish"):
		return "certdir.Store.Publish"
	case isMethod(fn, "internal/certdir", "Store", "PublishPulled"):
		return "certdir.Store.PublishPulled"
	case isMethod(fn, "internal/prover", "Prover", "AddProof"):
		return "prover.Prover.AddProof"
	case isMethod(fn, "internal/prover", "Prover", "addEdge"):
		return "prover.Prover.addEdge"
	}
	return ""
}

// taintWalker tracks wire-tainted objects through one function body
// in source order.
type taintWalker struct {
	pass    *Pass
	tainted map[types.Object]bool
}

func (tw *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			tw.stmt(st)
		}
	case *ast.AssignStmt:
		tw.assign(s)
	case *ast.RangeStmt:
		tw.rangeStmt(s)
	case *ast.IfStmt:
		tw.stmt(s.Init)
		tw.exprs(s.Cond)
		tw.stmt(s.Body)
		tw.stmt(s.Else)
	case *ast.ForStmt:
		tw.stmt(s.Init)
		tw.exprs(s.Cond)
		tw.stmt(s.Body)
		tw.stmt(s.Post)
	case *ast.SwitchStmt:
		tw.stmt(s.Init)
		tw.exprs(s.Tag)
		tw.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		tw.stmt(s.Init)
		tw.stmt(s.Assign)
		tw.stmt(s.Body)
	case *ast.CaseClause:
		tw.exprs(s.List...)
		for _, st := range s.Body {
			tw.stmt(st)
		}
	case *ast.SelectStmt:
		tw.stmt(s.Body)
	case *ast.CommClause:
		tw.stmt(s.Comm)
		for _, st := range s.Body {
			tw.stmt(st)
		}
	case *ast.LabeledStmt:
		tw.stmt(s.Stmt)
	case *ast.ExprStmt:
		tw.exprs(s.X)
	case *ast.ReturnStmt:
		tw.exprs(s.Results...)
	case *ast.DeferStmt:
		tw.exprs(s.Call)
	case *ast.GoStmt:
		tw.exprs(s.Call)
	case *ast.SendStmt:
		tw.exprs(s.Chan, s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					tw.declSpec(vs)
				}
			}
		}
	case *ast.IncDecStmt:
		tw.exprs(s.X)
	default:
		// Branch/empty statements carry no expressions.
	}
}

// assign handles taint introduction, propagation, and clearing.
func (tw *taintWalker) assign(s *ast.AssignStmt) {
	// First give the RHS calls their cleanse/sink effects.
	for _, rhs := range s.Rhs {
		tw.exprs(rhs)
	}
	// One-to-one assignments map rhs[i] to lhs[i]; a multi-value call
	// (x, err := f()) taints every lhs if the call is a source.
	taintLhs := func(id *ast.Ident, on bool) {
		obj := identObj(tw.pass.Info, id)
		if obj == nil {
			return
		}
		if on {
			tw.tainted[obj] = true
		} else {
			delete(tw.tainted, obj)
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			taintLhs(id, tw.exprTainted(rhs))
		}
		return
	}
	on := false
	for _, rhs := range s.Rhs {
		if tw.exprTainted(rhs) {
			on = true
		}
	}
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			taintLhs(id, on)
		}
	}
}

func (tw *taintWalker) declSpec(vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		tw.exprs(v)
	}
	on := false
	for _, v := range vs.Values {
		if tw.exprTainted(v) {
			on = true
		}
	}
	if !on {
		return
	}
	for _, id := range vs.Names {
		if obj := tw.pass.Info.Defs[id]; obj != nil {
			tw.tainted[obj] = true
		}
	}
}

func (tw *taintWalker) rangeStmt(s *ast.RangeStmt) {
	tw.exprs(s.X)
	on := tw.exprTainted(s.X)
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(tw.pass.Info, id); obj != nil {
				if on {
					tw.tainted[obj] = true
				} else {
					delete(tw.tainted, obj)
				}
			}
		}
	}
	tw.stmt(s.Body)
}

// exprTainted reports whether evaluating expr yields a wire-tainted
// value: it contains a source call or mentions a tainted variable.
func (tw *taintWalker) exprTainted(expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWireSource(tw.pass.Info, n) {
				found = true
				return false
			}
			// A cleanser call yields a clean result (usually an error).
			if isCleanser(tw.pass.Info, n) {
				return false
			}
		case *ast.Ident:
			if obj := tw.pass.Info.Uses[n]; obj != nil && tw.tainted[obj] {
				found = true
				return false
			}
		case *ast.FuncLit:
			return false // separate scope; walked structurally elsewhere
		}
		return true
	})
	return found
}

// exprs applies the side effects of every call inside the given
// expressions, in source order: cleansers clear taint, sinks report.
func (tw *taintWalker) exprs(list ...ast.Expr) {
	var calls []*ast.CallExpr
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				calls = append(calls, n)
			case *ast.FuncLit:
				tw.stmt(n.Body)
				return false
			}
			return true
		})
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].Pos() < calls[j].Pos() })
	for _, call := range calls {
		if name := sinkName(tw.pass.Info, call); name != "" {
			for _, arg := range call.Args {
				if tw.exprTainted(arg) {
					tw.pass.Reportf(call.Pos(),
						"wire-decoded value reaches %s without passing through a Verify* call "+
							"(verify-before-index: unverified network bytes must not plant authority)", name)
					break
				}
			}
			continue
		}
		if isCleanser(tw.pass.Info, call) {
			tw.cleanse(call)
		}
	}
}

// cleanse clears taint from every variable the verify call mentions:
// its arguments and, for methods, the receiver (c.Verify(ctx) cleans
// c; cert.VerifyBatch(ctx, certs) cleans certs, and with it the
// elements later ranged out of it).
func (tw *taintWalker) cleanse(call *ast.CallExpr) {
	clear := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := tw.pass.Info.Uses[id]; obj != nil {
					delete(tw.tainted, obj)
				}
			}
			return true
		})
	}
	for _, a := range call.Args {
		clear(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		clear(sel.X)
	}
}
