package lint

import (
	"fmt"
	"go/importer"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the suite's analysistest equivalent: testdata packages
// under testdata/src/<analyzer>/ annotate the lines an analyzer must
// flag with
//
//	code() // want "regexp"
//
// (several quoted regexps allowed per line; each must match a
// distinct diagnostic message). Lines without a want annotation must
// stay clean. Suppression directives are live during the check, so
// testdata can also pin //sfvet:ignore behavior.

var (
	testIndexOnce sync.Once
	testIndex     *exportIndex
	testIndexErr  error
	testFset      = token.NewFileSet()
)

// testExportIndex builds (once per test process) the export index for
// the whole module plus the standard library, so testdata packages
// can import any repro/internal package.
func testExportIndex() (*exportIndex, error) {
	testIndexOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			testIndexErr = err
			return
		}
		listed, err := goList(root, []string{"./...", "std"})
		if err != nil {
			testIndexErr = err
			return
		}
		testIndex = &exportIndex{exports: make(map[string]string)}
		for _, p := range listed {
			if p.Export != "" {
				testIndex.exports[p.ImportPath] = p.Export
			}
		}
	})
	return testIndex, testIndexErr
}

func moduleRoot() (string, error) {
	out, err := runGo("env", "GOMOD")
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(out)
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not in a module")
	}
	return filepath.Dir(gomod), nil
}

func runGo(args ...string) (string, error) {
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return "", fmt.Errorf("lint: go %s: %v", strings.Join(args, " "), err)
	}
	return string(out), nil
}

// CheckDir type-checks the single package rooted at dir under the
// given import path and asserts that the analyzers' diagnostics match
// the package's // want annotations exactly.
func CheckDir(t *testing.T, dir, pkgPath string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadTestPackage(t, dir, pkgPath)
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	matchWants(t, wants, diags)
}

// loadTestPackage parses and type-checks one testdata package under
// the given import path, with the whole module and stdlib importable.
func loadTestPackage(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	idx, err := testExportIndex()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	sort.Strings(goFiles)
	imp := importer.ForCompiler(testFset, "gc", idx.lookup)
	pkg, err := checkPackage(testFset, imp, pkgPath, dir, goFiles)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// want is one expected-diagnostic annotation.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Errorf("%s: // want with no quoted pattern", pos)
					continue
				}
				for _, q := range quoted {
					text, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, text, err)
						continue
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

func matchWants(t *testing.T, wants []*want, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.pattern)
		}
	}
}
