package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// clockSeams lists the packages that inject their clocks and, for
// each, the seam a fix should thread instead of reading the wall
// clock. PRs 2 and 4 made revocation windows and cache eviction
// testable by injecting clocks; a stray time.Now() reintroduces
// wall-clock coupling that only shows up as flaky sleeps in tests.
var clockSeams = map[string]string{
	"internal/core":    "VerifyContext.Now / ProofCache.SetClock",
	"internal/prover":  "the now parameter threaded through FindProof/Sweep",
	"internal/certdir": "Service.Clock / Replicator.Clock / Store's now parameters",
	"internal/loadgen": "Config.Now (the seeded world's clock)",
}

// ClockCheck forbids direct time.Now() in clock-injected packages.
//
// One shape is exempt: a time.Now() captured into a variable that the
// function later feeds to a Since or Sub call is duration
// measurement — latency histograms must read the monotonic wall
// clock, and injected logical clocks deliberately do not tick.
var ClockCheck = &Analyzer{
	Name: "clockcheck",
	Doc: "forbid direct time.Now() in packages with injected clocks " +
		"(core, prover, certdir, loadgen); point at the injection seam",
	Run: runClockCheck,
}

func runClockCheck(pass *Pass) error {
	seam := ""
	enforced := false
	for suffix, s := range clockSeams {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			seam, enforced = s, true
			break
		}
	}
	if !enforced {
		return nil
	}
	for _, f := range pass.Files {
		exempt := make(map[token.Pos]bool)
		for _, fs := range funcScopes(f) {
			markDurationExemptions(pass.Info, fs.body, exempt)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
				return true
			}
			if exempt[call.Pos()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct time.Now() in clock-injected package %s; thread the injected clock (%s), "+
					"or capture a start solely for Since/Sub duration measurement",
				pass.Pkg.Path(), seam)
			return true
		})
	}
	return nil
}

// markDurationExemptions finds `v := time.Now()` assignments whose v
// is later consumed by a Since or Sub call within the same function
// and records those time.Now() call positions as exempt.
func markDurationExemptions(info *types.Info, body *ast.BlockStmt, exempt map[token.Pos]bool) {
	// Variables assigned directly from time.Now().
	captured := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				captured[obj] = call.Pos()
			} else if obj := info.Uses[id]; obj != nil {
				captured[obj] = call.Pos()
			}
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	// Uses of those variables in Since(v) / x.Sub(v) / v.Sub(x).
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name != "Since" && name != "Sub" {
			return true
		}
		mark := func(e ast.Expr) {
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if pos, ok := captured[obj]; ok {
						exempt[pos] = true
					}
				}
			}
		}
		for _, a := range call.Args {
			mark(a)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			mark(sel.X)
		}
		return true
	})
}
