package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricName checks every metric name at its construction site —
// server.Counter, server.Gauge, obs.NewHistogram — against the
// conventions TestMetricsExpositionLint enforces at runtime, so a
// malformed name fails vet instead of the first live scrape:
//
//   - names are ^sf_[a-z0-9_]+$ (the repo's namespace, Prometheus
//     name syntax);
//   - counters end in _total;
//   - gauges do not end in _total (that suffix promises a counter);
//   - histograms end in a base unit: _seconds or _bytes;
//   - names are compile-time constants (a dynamic name cannot be
//     linted or grepped, and dashboards key on literal names).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names follow Prometheus conventions (sf_ namespace, _total counters, _seconds histograms)",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^sf_[a-z0-9_]+$`)

func runMetricName(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			var kind string
			switch {
			case isFunc(fn, "internal/server", "Counter"):
				kind = "counter"
			case isFunc(fn, "internal/server", "Gauge"):
				kind = "gauge"
			case isFunc(fn, "internal/obs", "NewHistogram"):
				kind = "histogram"
			default:
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"%s name must be a compile-time constant string so it can be linted and grepped", kind)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"%s name %q must match %s (sf_ namespace, lower-case, Prometheus name syntax)",
					kind, name, metricNameRE)
				return true
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(),
						"counter name %q must end in _total (Prometheus counter convention); "+
							"a monotone level (like an epoch) is a gauge", name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					pass.Reportf(call.Args[0].Pos(),
						"gauge name %q must not end in _total (that suffix promises a counter)", name)
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
					pass.Reportf(call.Args[0].Pos(),
						"histogram name %q must end in a base unit (_seconds or _bytes)", name)
				}
			}
			return true
		})
	}
	return nil
}
