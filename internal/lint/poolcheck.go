package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the pooled-buffer and arena ownership rules the
// PR 7 wire layer documents in docs/ARCHITECTURE.md and, until now,
// enforced only by review:
//
//   - every sexp.GetBuf/GetArena must be paired with PutBuf/PutArena
//     on every path out of the function — a defer, a dominating call,
//     or a return that hands the value (and the obligation) to the
//     caller;
//   - a pooled value must not be used after its Put: the pool will
//     hand the same backing memory to a concurrent caller, and the
//     "use" becomes cross-request data corruption (the aliasing class
//     TestConcurrentCallsNoPooledBufferAliasing hunts at runtime);
//   - a value parsed out of an arena must not escape by return when
//     the arena's PutArena is deferred in the same function — the
//     expression dies when the arena is recycled.
//
// The walk is branch-aware: an error path that Puts and returns is
// clean, and the fallthrough keeps its obligation. Aliases made by
// plain assignment or reslicing share the obligation (PutBuf accepts
// any append-grown descendant).
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "sexp.GetBuf/GetArena paired with Put on all paths; no use after Put; no arena value escaping its arena",
	Run:  runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fs := range funcScopes(f) {
			w := &poolWalker{pass: pass}
			st := newPoolState()
			st = w.block(fs.body.List, st)
			if !terminates(fs.body.List) {
				w.checkExit(fs.body.End(), st, nil)
			}
		}
	}
	return nil
}

// oblig is one live Get obligation.
type oblig struct {
	kind string // "pooled buffer" or "arena"
	pos  token.Pos
	put  string // "PutBuf" / "PutArena"
}

// poolState is the per-path abstract state.
type poolState struct {
	// live maps each variable currently carrying an obligation to it;
	// aliases share the *oblig.
	live map[types.Object]*oblig
	// deferred obligations are discharged at function exit.
	deferred map[*oblig]bool
	// dead maps variables whose obligation was explicitly Put to the
	// Put position: later uses are reports.
	dead map[types.Object]token.Pos
	// arena maps arena-parsed values to the deferred-put arena they
	// borrow from.
	arena map[types.Object]*oblig
}

func newPoolState() poolState {
	return poolState{
		live:     make(map[types.Object]*oblig),
		deferred: make(map[*oblig]bool),
		dead:     make(map[types.Object]token.Pos),
		arena:    make(map[types.Object]*oblig),
	}
}

func (st poolState) clone() poolState {
	out := newPoolState()
	for k, v := range st.live {
		out.live[k] = v
	}
	for k, v := range st.deferred {
		out.deferred[k] = v
	}
	for k, v := range st.dead {
		out.dead[k] = v
	}
	for k, v := range st.arena {
		out.arena[k] = v
	}
	return out
}

// merge combines two non-terminated branch exits conservatively: an
// obligation stays live unless discharged in both.
func (st poolState) merge(other poolState) poolState {
	out := st.clone()
	for k, v := range other.live {
		if _, ok := out.live[k]; !ok {
			out.live[k] = v
		}
	}
	for k, v := range other.deferred {
		out.deferred[k] = v
	}
	for k, v := range other.dead {
		if _, ok := out.dead[k]; !ok {
			out.dead[k] = v
		}
	}
	for k, v := range other.arena {
		if _, ok := out.arena[k]; !ok {
			out.arena[k] = v
		}
	}
	return out
}

type poolWalker struct {
	pass *Pass
}

// poolCall classifies a call as one of the four pool functions.
func (w *poolWalker) poolCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	for _, name := range []string{"GetBuf", "GetArena", "PutBuf", "PutArena"} {
		if isFunc(fn, "internal/sexp", name) {
			return name
		}
	}
	return ""
}

func (w *poolWalker) block(stmts []ast.Stmt, st poolState) poolState {
	for _, s := range stmts {
		st = w.stmt(s, st)
	}
	return st
}

func (w *poolWalker) stmt(s ast.Stmt, st poolState) poolState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.AssignStmt:
		return w.assign(s, st)
	case *ast.DeferStmt:
		if name := w.poolCall(s.Call); name == "PutBuf" || name == "PutArena" {
			if ob := w.obligOf(s.Call.Args, st); ob != nil {
				st.deferred[ob] = true
			}
			return st
		}
		return w.scanUses(s.Call, st)
	case *ast.ExprStmt:
		return w.exprEffects(s.X, st)
	case *ast.ReturnStmt:
		st = w.returnStmt(s, st)
		return st
	case *ast.IfStmt:
		st = w.stmt(s.Init, st)
		st = w.scanUses(s.Cond, st)
		thenOut := w.block(s.Body.List, st.clone())
		var elseOut poolState
		hasElse := s.Else != nil
		if hasElse {
			elseOut = w.stmt(s.Else, st.clone())
		}
		thenEnds := terminates(s.Body.List)
		elseEnds := hasElse && w.elseTerminates(s.Else)
		switch {
		case thenEnds && !hasElse:
			return st
		case thenEnds && elseEnds:
			return st // both left; fallthrough unreachable, keep entry
		case thenEnds:
			return elseOut
		case elseEnds || !hasElse:
			return thenOut.merge(st)
		default:
			return thenOut.merge(elseOut)
		}
	case *ast.ForStmt:
		st = w.stmt(s.Init, st)
		st = w.scanUses(s.Cond, st)
		bodyOut := w.block(s.Body.List, st.clone())
		bodyOut = w.stmt(s.Post, bodyOut)
		merged := st.merge(bodyOut)
		if s.Cond == nil && !hasBreak(s.Body) {
			// for{} without break never falls through; obligations are
			// judged at the returns inside.
			merged.live = make(map[types.Object]*oblig)
		}
		return merged
	case *ast.RangeStmt:
		st = w.scanUses(s.X, st)
		bodyOut := w.block(s.Body.List, st.clone())
		return st.merge(bodyOut)
	case *ast.SwitchStmt:
		st = w.stmt(s.Init, st)
		st = w.scanUses(s.Tag, st)
		return w.mergeClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(s.Init, st)
		st = w.stmt(s.Assign, st)
		return w.mergeClauses(s.Body, st)
	case *ast.SelectStmt:
		return w.mergeClauses(s.Body, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.SendStmt:
		st = w.scanUses(s.Chan, st)
		return w.scanUses(s.Value, st)
	case *ast.GoStmt:
		return w.scanUses(s.Call, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.exprEffects(v, st)
					}
				}
			}
		}
		return st
	case *ast.IncDecStmt:
		return w.scanUses(s.X, st)
	default:
		return st
	}
}

func (w *poolWalker) elseTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return false
	}
	return false
}

func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break in there targets that statement
		}
		return !found
	})
	return found
}

func (w *poolWalker) mergeClauses(body *ast.BlockStmt, st poolState) poolState {
	out := st
	first := true
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		}
		cOut := w.block(list, st.clone())
		if terminates(list) {
			continue
		}
		if first {
			out, first = cOut, false
		} else {
			out = out.merge(cOut)
		}
	}
	return out
}

// assign introduces obligations (Get), aliases, arena derivations,
// and use-after-put checks.
func (w *poolWalker) assign(s *ast.AssignStmt, st poolState) poolState {
	for _, rhs := range s.Rhs {
		// Direct Get calls are handled below as obligation
		// introductions, not as discarded results.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if name := w.poolCall(call); name == "GetBuf" || name == "GetArena" {
				continue
			}
		}
		st = w.exprEffects(rhs, st)
	}
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		// Multi-value shape (v, err := ...): the obligation or arena
		// derivation lands on the first variable by convention.
		if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(w.pass.Info, id); obj != nil {
				if ar := w.arenaSourceOf(s.Rhs[0], st); ar != nil {
					st.arena[obj] = ar
				} else if src := w.obligAliasOf(s.Rhs[0], st); src != nil {
					st.live[obj] = src
					delete(st.dead, obj)
				} else {
					delete(st.live, obj)
					delete(st.arena, obj)
					delete(st.dead, obj)
				}
			}
		}
		return st
	}
	if len(s.Lhs) != len(s.Rhs) {
		return st
	}
	for i, rhs := range s.Rhs {
		id, isIdent := s.Lhs[i].(*ast.Ident)
		call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
		if isCall {
			switch w.poolCall(call) {
			case "GetBuf", "GetArena":
				kind, put := "pooled buffer", "PutBuf"
				if w.poolCall(call) == "GetArena" {
					kind, put = "arena", "PutArena"
				}
				if !isIdent || id.Name == "_" {
					w.pass.Reportf(call.Pos(), "result of sexp.%s is discarded and can never be released", w.poolCall(call))
					continue
				}
				obj := identObj(w.pass.Info, id)
				if obj == nil {
					continue
				}
				st.live[obj] = &oblig{kind: kind, pos: call.Pos(), put: put}
				delete(st.dead, obj)
				continue
			}
		}
		if !isIdent {
			continue
		}
		obj := identObj(w.pass.Info, id)
		if obj == nil {
			continue
		}
		// Arena derivation: a structural view of, or a parse from, an
		// arena-obligated or arena-derived value.
		if ar := w.arenaSourceOf(rhs, st); ar != nil {
			st.arena[obj] = ar
			continue
		}
		// Alias: rhs is a structural view (reslice, append descendant)
		// of a variable carrying an obligation.
		if src := w.obligAliasOf(rhs, st); src != nil {
			st.live[obj] = src
			delete(st.dead, obj)
			continue
		}
		// Plain reassignment breaks any previous association.
		if st.live[obj] != nil {
			delete(st.live, obj)
		}
		delete(st.arena, obj)
		delete(st.dead, obj)
	}
	return st
}

// exprEffects processes Put calls and use-after-put checks inside an
// expression.
func (w *poolWalker) exprEffects(e ast.Expr, st poolState) poolState {
	if e == nil {
		return st
	}
	// Handle a direct Put call at the top level of the expression.
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if name := w.poolCall(call); name == "PutBuf" || name == "PutArena" {
			if ob := w.obligOf(call.Args, st); ob != nil {
				// Discharge: drop every alias of this obligation, mark
				// them dead at this position.
				for obj, o := range st.live {
					if o == ob {
						delete(st.live, obj)
						st.dead[obj] = call.Pos()
					}
				}
				delete(st.deferred, ob)
			}
			return st
		}
		// A Get whose result is not assigned leaks immediately.
		if name := w.poolCall(call); name == "GetBuf" || name == "GetArena" {
			w.pass.Reportf(call.Pos(), "result of sexp.%s is discarded and can never be released", name)
			return st
		}
	}
	return w.scanUses(e, st)
}

// scanUses reports uses of dead (already-Put) variables within e.
func (w *poolWalker) scanUses(e ast.Expr, st poolState) poolState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.Ident:
			if obj := w.pass.Info.Uses[n]; obj != nil {
				if putPos, ok := st.dead[obj]; ok {
					w.pass.Reportf(n.Pos(),
						"use of %s after its release at %s: the pool may already have handed this memory to a concurrent caller",
						n.Name, w.pass.Fset.Position(putPos))
					delete(st.dead, obj) // one report per Put is enough
				}
			}
		}
		return true
	})
	return st
}

// obligOf resolves a Put call's argument to the obligation it
// discharges, following aliases.
func (w *poolWalker) obligOf(args []ast.Expr, st poolState) *oblig {
	if len(args) == 0 {
		return nil
	}
	return w.obligAliasOf(args[0], st)
}

// obligAliasOf resolves an expression that IS (a structural view of)
// an obligated variable: the variable itself, a reslice or index of
// it, or an append descendant. Arbitrary calls break the alias — the
// result is a fresh value.
func (w *poolWalker) obligAliasOf(e ast.Expr, st poolState) *oblig {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := w.pass.Info.Uses[e]; obj != nil {
			return st.live[obj]
		}
	case *ast.SliceExpr:
		return w.obligAliasOf(e.X, st)
	case *ast.IndexExpr:
		return w.obligAliasOf(e.X, st)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return w.obligAliasOf(e.Args[0], st)
		}
	}
	return nil
}

// mentionedOblig returns the obligation of the first obligated
// variable mentioned in e, if any.
func (w *poolWalker) mentionedOblig(e ast.Expr, st poolState) *oblig {
	var found *oblig
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			_ = fl
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				if ob, ok := st.live[obj]; ok {
					found = ob
				}
			}
		}
		return true
	})
	return found
}

// arenaSourceOf returns the deferred arena obligation e borrows from:
// a method call on an arena-obligated variable (a.ParseOne(...)), or
// a structural view (selector/index/slice/assert) of an
// arena-derived variable. Results of other calls are considered
// fresh.
func (w *poolWalker) arenaSourceOf(e ast.Expr, st poolState) *oblig {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := w.pass.Info.Uses[id]; obj != nil {
					if ob, ok := st.live[obj]; ok && ob.kind == "arena" {
						return ob
					}
				}
			}
		}
		return nil
	case *ast.Ident:
		if obj := w.pass.Info.Uses[e]; obj != nil {
			return st.arena[obj]
		}
	case *ast.SelectorExpr:
		return w.arenaSourceOf(e.X, st)
	case *ast.IndexExpr:
		return w.arenaSourceOf(e.X, st)
	case *ast.SliceExpr:
		return w.arenaSourceOf(e.X, st)
	case *ast.TypeAssertExpr:
		return w.arenaSourceOf(e.X, st)
	}
	return nil
}

// returnStmt checks a path exit: obligations must be deferred,
// discharged, or transferred out through the returned values; dead
// and arena-derived values must not flow out.
func (w *poolWalker) returnStmt(s *ast.ReturnStmt, st poolState) poolState {
	transferred := make(map[*oblig]bool)
	for _, res := range s.Results {
		// Returning a Get directly transfers the fresh obligation.
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			if name := w.poolCall(call); name == "GetBuf" || name == "GetArena" {
				continue
			}
		}
		if ob := w.mentionedOblig(res, st); ob != nil {
			transferred[ob] = true
		}
		if ar := w.arenaSourceOf(res, st); ar != nil && st.deferred[ar] {
			w.pass.Reportf(res.Pos(),
				"arena-backed value escapes by return while PutArena for the arena acquired at %s is deferred; "+
					"it dies when the arena is recycled — copy it (or return before the defer)",
				w.pass.Fset.Position(ar.pos))
		}
		st = w.scanUses(res, st) // use-after-put through a return
	}
	w.checkExit(s.Pos(), st, transferred)
	return st
}

// checkExit reports obligations still live at a path exit.
func (w *poolWalker) checkExit(pos token.Pos, st poolState, transferred map[*oblig]bool) {
	seen := make(map[*oblig]bool)
	for _, ob := range st.live {
		if seen[ob] || st.deferred[ob] || transferred[ob] {
			continue
		}
		seen[ob] = true
		w.pass.Reportf(pos,
			"this path leaks the %s acquired by sexp.%s at %s: call sexp.%s (or defer it) before leaving, "+
				"or return the value to transfer ownership",
			ob.kind, getName(ob), w.pass.Fset.Position(ob.pos), ob.put)
	}
}

func getName(ob *oblig) string {
	if ob.kind == "arena" {
		return "GetArena"
	}
	return "GetBuf"
}
