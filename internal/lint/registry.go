package lint

// All returns the sf-vet analyzer suite, each entry mapping to one of
// the repo's hand-written invariants (see docs/ARCHITECTURE.md,
// "Enforced invariants").
func All() []*Analyzer {
	return []*Analyzer{
		PoolCheck,
		LockScope,
		TrustFlow,
		ClockCheck,
		EpochCheck,
		MetricName,
	}
}
