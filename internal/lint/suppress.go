package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive. An intentional exception to an analyzer
// is written as
//
//	//sfvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or on the line immediately above it. The reason
// is mandatory: a bare ignore is itself reported (and cannot be
// suppressed), so every exception in the tree carries its
// justification and `grep -rn sfvet:ignore` reads as an exception
// audit.
const ignorePrefix = "//sfvet:ignore"

// ignoreDirective is one parsed //sfvet:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // empty iff malformed
	reason    string
	malformed string // non-empty: why the directive is rejected
}

// parseIgnores extracts every sfvet:ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			d := ignoreDirective{pos: fset.Position(c.Pos())}
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				// e.g. //sfvet:ignoreXYZ — not ours.
				continue
			}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				d.malformed = "missing reason (write //sfvet:ignore " + fields[0] + " <why this exception is sound>)"
			default:
				d.analyzers = strings.Split(fields[0], ",")
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressor answers "is this diagnostic ignored?" for one package
// and accumulates malformed-directive findings.
type suppressor struct {
	// byLine maps file:line to the analyzers ignored there.
	byLine    map[string]map[string]bool
	malformed []Diagnostic
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{byLine: make(map[string]map[string]bool)}
	for _, f := range files {
		for _, d := range parseIgnores(fset, f) {
			if d.malformed != "" {
				s.malformed = append(s.malformed, Diagnostic{
					Analyzer: "sfvet",
					Pos:      d.pos,
					Message:  "malformed //sfvet:ignore: " + d.malformed,
				})
				continue
			}
			key := lineKey(d.pos.Filename, d.pos.Line)
			m := s.byLine[key]
			if m == nil {
				m = make(map[string]bool)
				s.byLine[key] = m
			}
			for _, a := range d.analyzers {
				m[a] = true
			}
		}
	}
	return s
}

func lineKey(file string, line int) string {
	// Positions within one package always use consistent filenames, so
	// plain concatenation is a stable key.
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// suppressed reports whether d is covered by an ignore directive on
// its own line or the line above.
func (s *suppressor) suppressed(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if m := s.byLine[lineKey(d.Pos.Filename, line)]; m != nil && m[d.Analyzer] {
			return true
		}
	}
	return false
}
