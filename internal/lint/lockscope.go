package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockScope enforces the snapshot-then-release discipline PR 2 built
// the sharded prover and directory around: shard mutexes bound tiny
// index regions, and everything expensive or blocking happens outside
// them. While any sync.Mutex/RWMutex is held, the analyzer forbids
//
//   - signature verification (Verify*-named calls): one Ed25519 check
//     is ~50µs — serializing it under a shard lock collapses the
//     concurrent prover back to the global-mutex design;
//   - minting (Sign/SignWithRevalidation/Mint*): same cost, plus
//     minting can re-enter prover paths;
//   - network I/O (net, net/http, certdir.Client calls): unbounded
//     latency under a lock is a mesh-wide stall, and gossip re-entry
//     can deadlock;
//   - channel sends (including select send cases): the receiver may
//     need the very lock held here.
//
// The walk is branch-aware and conservative: an early-exit branch
// that unlocks and returns does not clear the lock for the fallthrough
// path, and a deferred Unlock holds until function end.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no verification, minting, network I/O, or channel send while holding a shard lock",
	Run:  runLockScope,
}

func runLockScope(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fs := range funcScopes(f) {
			w := &lockWalker{pass: pass}
			w.block(fs.body.List, map[string]token.Pos{})
		}
	}
	return nil
}

// lockWalker carries the per-function analysis. Held-lock sets map a
// lock expression's printed form ("sh.mu") to the Lock call position.
type lockWalker struct {
	pass *Pass
}

// mutexMethod classifies a call as a lock operation on a
// sync.Mutex/RWMutex-typed receiver, returning the lock key and the
// method name.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := w.pass.Info.Types[sel.X]
	if !okT {
		return "", "", false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), method, true
	}
	return "", "", false
}

// forbidden classifies a call that must not run under a lock,
// returning a short description or "".
func (w *lockWalker) forbidden(call *ast.CallExpr) string {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Verify"):
		return "signature verification (" + name + ")"
	case name == "Sign" || name == "SignWithRevalidation" || strings.HasPrefix(name, "Mint"):
		return "minting (" + name + ")"
	}
	if pkg := fn.Pkg(); pkg != nil {
		recv := recvNamed(fn)
		switch {
		case pkg.Path() == "net/http" && recv == "" &&
			(name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "network I/O (http." + name + ")"
		case pkg.Path() == "net/http" && recv == "Client":
			return "network I/O (http.Client." + name + ")"
		case pkg.Path() == "net" &&
			(strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
			return "network I/O (net." + name + ")"
		case pathHasSuffix(pkg.Path(), "internal/certdir") && recv == "Client":
			return "network I/O (certdir.Client." + name + ")"
		}
	}
	return ""
}

// block walks one statement list with the given entry lock set and
// returns the lock set at its end.
func (w *lockWalker) block(stmts []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range stmts {
		held = w.stmt(s, held)
	}
	return held
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func unionHeld(a, b map[string]token.Pos) map[string]token.Pos {
	out := cloneHeld(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// terminates reports whether a statement list certainly leaves the
// enclosing block (return, branch, panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		held = w.stmt(s.Init, held)
		held = w.scan(s.Cond, held)
		thenOut := w.block(s.Body.List, cloneHeld(held))
		elseOut := held
		if s.Else != nil {
			elseOut = w.stmt(s.Else, cloneHeld(held))
		}
		switch {
		case terminates(s.Body.List) && s.Else != nil:
			return elseOut
		case terminates(s.Body.List):
			return held
		default:
			return unionHeld(thenOut, elseOut)
		}
	case *ast.ForStmt:
		held = w.stmt(s.Init, held)
		held = w.scan(s.Cond, held)
		bodyOut := w.block(s.Body.List, cloneHeld(held))
		bodyOut = w.stmt(s.Post, bodyOut)
		return unionHeld(held, bodyOut)
	case *ast.RangeStmt:
		held = w.scan(s.X, held)
		bodyOut := w.block(s.Body.List, cloneHeld(held))
		return unionHeld(held, bodyOut)
	case *ast.SwitchStmt:
		held = w.stmt(s.Init, held)
		held = w.scan(s.Tag, held)
		return w.clauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.stmt(s.Init, held)
		held = w.stmt(s.Assign, held)
		return w.clauses(s.Body, held)
	case *ast.SelectStmt:
		return w.clauses(s.Body, held)
	case *ast.CaseClause:
		for _, e := range s.List {
			held = w.scan(e, held)
		}
		return w.block(s.Body, held)
	case *ast.CommClause:
		held = w.stmt(s.Comm, held)
		return w.block(s.Body, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held through function end;
		// a deferred Lock (pathological) is ignored. Other deferred
		// calls run at return, outside this linear region — skip them,
		// but still classify a deferred forbidden call if a lock is
		// certainly held to the end (deferred Unlock present means the
		// deferred forbidden call may run before it — order unknowable
		// here, so stay quiet).
		if _, method, ok := w.mutexMethod(s.Call); ok && (method == "Lock" || method == "RLock") {
			key, _, _ := w.mutexMethod(s.Call)
			held[key] = s.Call.Pos()
		}
		return held
	case *ast.SendStmt:
		w.reportHeld(s.Arrow, "channel send", held)
		held = w.scan(s.Chan, held)
		return w.scan(s.Value, held)
	case *ast.ExprStmt:
		return w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scan(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scan(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scan(e, held)
		}
		return held
	case *ast.GoStmt:
		// The spawned goroutine runs outside this lock region; its
		// body is a separate scope. Do not scan inside.
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.scan(v, held)
					}
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		return w.scan(s.X, held)
	default:
		return held
	}
}

func (w *lockWalker) clauses(body *ast.BlockStmt, held map[string]token.Pos) map[string]token.Pos {
	out := held
	any := false
	for _, c := range body.List {
		cOut := w.stmt(c, cloneHeld(held))
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		}
		if terminates(list) {
			continue
		}
		if !any {
			out, any = cOut, true
		} else {
			out = unionHeld(out, cOut)
		}
	}
	return out
}

// scan applies lock/unlock effects and forbidden-call checks for
// every call inside one expression, in source order.
func (w *lockWalker) scan(e ast.Expr, held map[string]token.Pos) map[string]token.Pos {
	if e == nil {
		return held
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures execute elsewhere (or are at least a distinct
			// scope); analyze with an empty lock set.
			w.block(n.Body.List, map[string]token.Pos{})
			return false
		case *ast.SendStmt:
			w.reportHeld(n.Arrow, "channel send", held)
		case *ast.CallExpr:
			if key, method, ok := w.mutexMethod(n); ok {
				switch method {
				case "Lock", "RLock":
					held[key] = n.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return true
			}
			if desc := w.forbidden(n); desc != "" {
				w.reportHeld(n.Pos(), desc, held)
			}
		}
		return true
	})
	return held
}

func (w *lockWalker) reportHeld(pos token.Pos, what string, held map[string]token.Pos) {
	for key, lockPos := range held {
		w.pass.Reportf(pos,
			"%s while holding %s (locked at %s); snapshot under the lock, release, then do the work",
			what, key, w.pass.Fset.Position(lockPos))
		return // one report per site is enough
	}
}
