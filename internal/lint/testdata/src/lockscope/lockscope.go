// Package lockscope exercises the snapshot-then-release analyzer: no
// signature verification, minting, network I/O, or channel send while
// a sync.Mutex/RWMutex is held.
package lockscope

import (
	"net/http"
	"sync"
)

type table struct {
	mu   sync.Mutex
	vals map[string]int
}

type rwTable struct {
	mu   sync.RWMutex
	vals map[string]int
}

// VerifySig stands in for an Ed25519 chain check (~50µs each).
func VerifySig(data []byte) error { return nil }

// MintToken stands in for certificate minting.
func MintToken() string { return "mint" }

func verifyUnderLock(t *table, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return VerifySig(data) // want "signature verification"
}

func mintUnderRLock(t *rwTable) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return MintToken() // want "minting"
}

func sendUnderLock(t *table, ch chan int) {
	t.mu.Lock()
	ch <- 1 // want "channel send"
	t.mu.Unlock()
}

func fetchUnderLock(t *table, c *http.Client, url string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := c.Get(url) // want "network I/O"
	return err
}

// snapshotThenRelease is the sanctioned shape: copy under the lock,
// release, then do the expensive work.
func snapshotThenRelease(t *table, data []byte) error {
	t.mu.Lock()
	n := t.vals["k"]
	t.mu.Unlock()
	_ = n
	return VerifySig(data)
}

// earlyUnlockBranch releases on the early return and again on the
// fallthrough; the verify after the final unlock is clean.
func earlyUnlockBranch(t *table, data []byte) error {
	t.mu.Lock()
	if len(t.vals) == 0 {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	return VerifySig(data)
}

// headerOps under a lock are map reads, not network I/O.
func headerOps(t *table, h http.Header) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return h.Get("X-Key")
}

// spawned goroutines run outside this lock region.
func spawnUnderLock(t *table, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() { _ = VerifySig(data) }()
}
