// Package poolcheck exercises the pooled-buffer/arena ownership
// analyzer: every sexp.GetBuf/GetArena paired with a Put on all paths,
// no use after Put, no arena-backed value escaping its arena.
package poolcheck

import (
	"errors"

	"repro/internal/sexp"
)

var errFail = errors.New("fail")

// leakOnErrorPath forgets the buffer on the early return.
func leakOnErrorPath(fail bool) error {
	buf := sexp.GetBuf()
	if fail {
		return errFail // want "leaks the pooled buffer"
	}
	sexp.PutBuf(buf)
	return nil
}

// deferredPutIsClean releases on every path through the defer.
func deferredPutIsClean(fail bool) error {
	buf := sexp.GetBuf()
	defer sexp.PutBuf(buf)
	if fail {
		return errFail
	}
	buf = append(buf, 'x')
	_ = buf
	return nil
}

// putOnEachPath releases explicitly on both paths.
func putOnEachPath(fail bool) error {
	buf := sexp.GetBuf()
	if fail {
		sexp.PutBuf(buf)
		return errFail
	}
	sexp.PutBuf(buf)
	return nil
}

// useAfterPut touches the buffer after the pool may have handed its
// memory to a concurrent caller.
func useAfterPut() byte {
	buf := sexp.GetBuf()
	buf = append(buf, 'x')
	sexp.PutBuf(buf)
	return buf[0] // want "use of buf after its release"
}

// discardGet can never release what it acquired.
func discardGet() {
	sexp.GetBuf() // want "result of sexp.GetBuf is discarded"
}

// transferByReturn hands the buffer and the PutBuf obligation to the
// caller (the certdir readBody shape).
func transferByReturn() ([]byte, error) {
	buf := sexp.GetBuf()
	buf = append(buf, 'f')
	return buf, nil
}

// arenaEscape returns an expression that dies when the deferred
// PutArena recycles its backing arena.
func arenaEscape(in []byte) (sexp.Sexp, error) {
	a := sexp.GetArena()
	defer sexp.PutArena(a)
	e, err := a.ParseOne(in)
	if err != nil {
		return nil, err
	}
	return e, nil // want "arena-backed value escapes by return"
}

// arenaCopyOut is the sanctioned shape: copy what outlives the arena.
func arenaCopyOut(in []byte) ([]byte, error) {
	a := sexp.GetArena()
	defer sexp.PutArena(a)
	e, err := a.ParseOne(in)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), e.Transport()...)
	return out, nil
}

// arenaLeak acquires an arena and loses it on one path.
func arenaLeak(in []byte, fail bool) error {
	a := sexp.GetArena()
	if fail {
		return errFail // want "leaks the arena"
	}
	_, err := a.ParseOne(in)
	sexp.PutArena(a)
	return err
}
