// Package epochcheck exercises the capture-epoch-before-verify
// analyzer guarding the proof cache's soundness invariant.
package epochcheck

import "repro/internal/core"

// storeEpochAtWriteTime reads the epoch after verification finished:
// a CRL landing mid-verification is cached over.
func storeEpochAtWriteTime(pc *core.ProofCache, h [32]byte, v core.Validity) {
	if err := verifyProof(); err != nil {
		return
	}
	pc.Store(h, v, pc.Epoch(), core.ViewAny) // want "revocation epoch read at ProofCache.Store time"
}

// captureAfterVerify hoists the read into a variable, but still after
// verification began.
func captureAfterVerify(pc *core.ProofCache, h [32]byte, v core.Validity) {
	if err := verifyProof(); err != nil {
		return
	}
	epoch := pc.Epoch() // want "revocation epoch captured after verification began"
	pc.Store(h, v, epoch, core.ViewAny)
}

// captureBeforeVerify is the sound order (core.verifyMemo's shape).
func captureBeforeVerify(pc *core.ProofCache, h [32]byte, v core.Validity) {
	epoch := pc.Epoch()
	if err := verifyProof(); err != nil {
		return
	}
	pc.Store(h, v, epoch, core.ViewAny)
}

// memoized pins the f() shape: invoking a function-typed value counts
// as the start of verification.
func memoized(pc *core.ProofCache, h [32]byte, v core.Validity, f func() error) {
	epoch := pc.Epoch()
	if err := f(); err != nil {
		return
	}
	pc.Store(h, v, epoch, core.ViewAny)
}

// memoizedLate is the same shape with the capture after f().
func memoizedLate(pc *core.ProofCache, h [32]byte, v core.Validity, f func() error) {
	if err := f(); err != nil {
		return
	}
	epoch := pc.Epoch() // want "revocation epoch captured after verification began"
	pc.Store(h, v, epoch, core.ViewAny)
}

func verifyProof() error { return nil }
