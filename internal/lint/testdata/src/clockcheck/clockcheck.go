// Package core stands in for repro/internal/core: the test loads it
// under an import path ending in internal/core, which puts it inside
// clockcheck's jurisdiction.
package core

import "time"

// wallClockRead reintroduces wall-clock coupling.
func wallClockRead() time.Time {
	return time.Now() // want "direct time.Now"
}

// durationMeasurement is exempt: the capture only feeds Since.
func durationMeasurement() float64 {
	start := time.Now()
	work()
	return time.Since(start).Seconds()
}

// durationSub is the other exempt shape: the capture feeds Sub.
func durationSub(deadline time.Time) time.Duration {
	start := time.Now()
	work()
	return deadline.Sub(start)
}

// injectedClock threads a clock and never reads the wall.
func injectedClock(clock func() time.Time) time.Time {
	return clock()
}

func work() {}
