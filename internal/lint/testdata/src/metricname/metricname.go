// Package metricname exercises the Prometheus naming analyzer:
// sf_ namespace, _total counters, _seconds/_bytes histograms,
// compile-time constant names.
package metricname

import (
	"repro/internal/obs"
	"repro/internal/server"
)

var (
	_ = server.Counter("sf_requests_total", "", 1)
	_ = server.Counter("sf_requests", "", 1)    // want "must end in _total"
	_ = server.Counter("requests_total", "", 1) // want "must match"
	_ = server.Counter("sf_Requests_total", "", 1) // want "must match"

	_ = server.Gauge("sf_queue_depth", "", 1)
	_ = server.Gauge("sf_queue_total", "", 1) // want "must not end in _total"

	_ = obs.NewHistogram("sf_admit_seconds", "")
	_ = obs.NewHistogram("sf_frame_bytes", "")
	_ = obs.NewHistogram("sf_admit", "") // want "must end in a base unit"
)

// dynamic names cannot be linted or grepped.
func dynamic(name string) server.Metric {
	return server.Counter(name+"_total", "", 1) // want "compile-time constant"
}
