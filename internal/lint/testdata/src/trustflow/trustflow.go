// Package trustflow exercises the verify-before-index analyzer: a
// wire-decoded value must pass a Verify* call before it reaches a
// Publish/index/digest sink.
package trustflow

import (
	"time"

	"repro/internal/cert"
	"repro/internal/certdir"
	"repro/internal/core"
	"repro/internal/prover"
	"repro/internal/sexp"
)

// publishUnverified plants whatever authority the network chose.
func publishUnverified(st *certdir.Store, raw []byte) error {
	e, err := sexp.ParseOne(raw)
	if err != nil {
		return err
	}
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return err
	}
	c, ok := p.(*cert.Cert)
	if !ok {
		return nil
	}
	_, err = st.Publish(c, time.Now()) // want "wire-decoded value reaches certdir.Store.Publish"
	return err
}

// publishVerified screens the certificate first: clean.
func publishVerified(st *certdir.Store, ctx *core.VerifyContext, raw []byte) error {
	e, err := sexp.ParseOne(raw)
	if err != nil {
		return err
	}
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return err
	}
	c, ok := p.(*cert.Cert)
	if !ok {
		return nil
	}
	if err := c.Verify(ctx); err != nil {
		return err
	}
	_, err = st.Publish(c, time.Now())
	return err
}

// digestUnverified feeds the prover's delegation graph from raw bytes.
func digestUnverified(pv *prover.Prover, raw []byte) error {
	e, err := sexp.ParseOne(raw)
	if err != nil {
		return err
	}
	p, err := core.ProofFromSexp(e)
	if err != nil {
		return err
	}
	pv.AddProof(p) // want "wire-decoded value reaches prover.Prover.AddProof"
	return nil
}

// publishBatch is the anti-entropy shape: VerifyBatch cleanses the
// slice, and with it the elements later ranged out of it.
func publishBatch(st *certdir.Store, ctx *core.VerifyContext, raws [][]byte) error {
	var certs []*cert.Cert
	for _, raw := range raws {
		e, err := sexp.ParseOne(raw)
		if err != nil {
			return err
		}
		p, err := core.ProofFromSexp(e)
		if err != nil {
			return err
		}
		if c, ok := p.(*cert.Cert); ok {
			certs = append(certs, c)
		}
	}
	for _, err := range cert.VerifyBatch(ctx, certs) {
		if err != nil {
			return err
		}
	}
	for _, c := range certs {
		if _, err := st.PublishPulled(c, time.Now()); err != nil {
			return err
		}
	}
	return nil
}
