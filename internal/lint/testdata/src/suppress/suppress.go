// Package suppress pins the //sfvet:ignore contract: a reasoned
// directive on the flagged line (or the line above) silences exactly
// the named analyzer, and nothing else leaks through.
package suppress

import "repro/internal/server"

// Same-line form.
var _ = server.Counter("sf_legacy_requests", "", 1) //sfvet:ignore metricname grandfathered dashboard name predating the _total convention

// Line-above form.
//sfvet:ignore metricname grandfathered dashboard name predating the _total convention
var _ = server.Counter("sf_legacy_hits", "", 1)

// A directive names ONE analyzer: others still fire on the same line.
var _ = server.Gauge("sf_ignored_total", "", 1) //sfvet:ignore clockcheck wrong analyzer named, gauge finding must survive // want "must not end in _total"

// The comma form covers several analyzers at once.
var _ = server.Counter("sf_multi", "", 1) //sfvet:ignore metricname,clockcheck grandfathered name, and no clock is read here
