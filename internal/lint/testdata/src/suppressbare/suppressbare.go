// Package suppressbare holds a bare (reason-less) ignore: the
// directive itself must be reported, and it must suppress nothing.
// Checked programmatically in TestSuppressionBare — the malformed
// finding lands on the directive's own line, where a // want
// annotation cannot sit.
package suppressbare

import "repro/internal/server"

//sfvet:ignore metricname
var _ = server.Counter("sf_bare_requests", "", 1)
