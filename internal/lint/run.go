package lint

import (
	"sort"
)

// Run executes every analyzer over every package, applies
// //sfvet:ignore suppressions, and returns the surviving diagnostics
// sorted by position. Malformed ignore directives are themselves
// diagnostics (analyzer "sfvet") and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg.Fset, pkg.Files)
		out = append(out, sup.malformed...)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			for _, d := range found {
				if !sup.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
