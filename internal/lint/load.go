package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// A Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` this loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportIndex maps import paths to compiled export-data files, as
// produced by `go list -export`. It backs the gc importer so target
// packages type-check from source while their dependencies (stdlib
// included) load from export data — the same split go vet uses.
type exportIndex struct {
	mu      sync.Mutex
	exports map[string]string
}

func (x *exportIndex) lookup(path string) (io.ReadCloser, error) {
	x.mu.Lock()
	f, ok := x.exports[path]
	x.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// goList runs `go list -e -export -deps -json` in dir over patterns.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matched by patterns (relative to
// dir), resolving dependencies through build-cache export data. It
// fails on the first package that does not compile: sf-vet is meant
// to run on a building tree.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	idx := &exportIndex{exports: make(map[string]string)}
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			idx.exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", idx.lookup)
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
