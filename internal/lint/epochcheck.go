package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochCheck guards the proof cache's central soundness invariant
// (PR 2, restated in core's package doc): the revocation epoch stored
// with a verdict must be read BEFORE verification begins. A CRL that
// lands mid-verification bumps the live epoch, so Store — comparing
// the captured epoch against the current one — discards the verdict
// instead of caching it against a revocation state it never saw.
// Reading the epoch at Store time (after verification) silently
// closes that window the wrong way: the stale verdict is cached as if
// it post-dated the CRL.
//
// Mechanically, for every call to (*core.ProofCache).Store:
//
//   - the epoch argument must not itself be (or contain) an .Epoch()
//     call — that reads the epoch after verification finished;
//   - if the epoch argument is a variable assigned from .Epoch()
//     in the same function, that assignment must precede the first
//     verification call (a Verify*-named call, or an invocation of a
//     function-typed value like verifyMemo's f()).
var EpochCheck = &Analyzer{
	Name: "epochcheck",
	Doc:  "proof-cache writes capture the revocation epoch before verification begins",
	Run:  runEpochCheck,
}

func runEpochCheck(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fs := range funcScopes(f) {
			checkEpochScope(pass, fs.body)
		}
	}
	return nil
}

func checkEpochScope(pass *Pass, body *ast.BlockStmt) {
	// Gather, in one sweep: ProofCache.Store calls, assignments whose
	// RHS reads .Epoch(), and the first verification call.
	type storeCall struct{ call *ast.CallExpr }
	var stores []storeCall
	epochAssign := make(map[types.Object]token.Pos)
	firstVerify := token.NoPos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !containsEpochRead(pass.Info, rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := identObj(pass.Info, id); obj != nil {
						if _, seen := epochAssign[obj]; !seen {
							epochAssign[obj] = n.Pos()
						}
					}
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(pass.Info, n)
			if isMethod(fn, "internal/core", "ProofCache", "Store") && len(n.Args) >= 4 {
				stores = append(stores, storeCall{call: n})
				return true
			}
			if isVerificationCall(pass.Info, n, fn) {
				if firstVerify == token.NoPos || n.Pos() < firstVerify {
					firstVerify = n.Pos()
				}
			}
		}
		return true
	})

	for _, sc := range stores {
		epochArg := sc.call.Args[2]
		if containsEpochRead(pass.Info, epochArg) {
			pass.Reportf(epochArg.Pos(),
				"revocation epoch read at ProofCache.Store time; capture it into a variable before verification begins, "+
					"or a CRL landing mid-verification is cached over")
			continue
		}
		id, ok := ast.Unparen(epochArg).(*ast.Ident)
		if !ok {
			continue // literal or parameter: the capture is the caller's.
		}
		obj := identObj(pass.Info, id)
		if obj == nil {
			continue
		}
		assignPos, ok := epochAssign[obj]
		if !ok {
			continue // epoch came from elsewhere (parameter, field).
		}
		if firstVerify != token.NoPos && firstVerify < assignPos {
			pass.Reportf(assignPos,
				"revocation epoch captured after verification began (verify call at %s); "+
					"hoist the .Epoch() read above it",
				pass.Fset.Position(firstVerify))
		}
	}
}

// containsEpochRead reports whether expr contains a call to a method
// named Epoch (the ProofCache/RevocationStore epoch readers).
func containsEpochRead(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Epoch" {
			found = true
		}
		return true
	})
	return found
}

// isVerificationCall reports whether the call begins verification: a
// callee whose name starts with Verify/verify, or an invocation of a
// function-typed variable (the f() shape in verifyMemo).
func isVerificationCall(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	if fn != nil {
		name := fn.Name()
		return len(name) >= 6 && (name[:6] == "Verify" || name[:6] == "verify")
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Var); ok {
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				return true
			}
		}
	}
	return false
}

// identObj resolves an identifier to its object, whether this
// occurrence defines it (:=) or uses it (=).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
