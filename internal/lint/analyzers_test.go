package lint

import (
	"strings"
	"testing"
)

// Each analyzer's testdata pins at least one true positive (a // want
// line) and at least one clean negative (the sanctioned shape of the
// same code, unannotated): CheckDir fails on any diagnostic without a
// want AND on any want without a diagnostic.

func TestPoolCheck(t *testing.T) {
	CheckDir(t, "testdata/src/poolcheck", "poolcheck", PoolCheck)
}

func TestLockScope(t *testing.T) {
	CheckDir(t, "testdata/src/lockscope", "lockscope", LockScope)
}

func TestTrustFlow(t *testing.T) {
	CheckDir(t, "testdata/src/trustflow", "trustflow", TrustFlow)
}

func TestClockCheck(t *testing.T) {
	// The import path's internal/core suffix opts the package into
	// clock enforcement, exactly as for the real repro/internal/core.
	CheckDir(t, "testdata/src/clockcheck", "clockcheck/internal/core", ClockCheck)
}

func TestClockCheckSkipsUninjectedPackages(t *testing.T) {
	// Same files under a path with no clock-injected suffix: the
	// analyzer must stay silent, so the only complaint CheckDir can
	// raise is the now-unmatched want annotation.
	pkg := loadTestPackage(t, "testdata/src/clockcheck", "clockcheck/plain")
	diags, err := Run([]*Package{pkg}, []*Analyzer{ClockCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("clockcheck fired outside its packages: %v", diags)
	}
}

func TestEpochCheck(t *testing.T) {
	CheckDir(t, "testdata/src/epochcheck", "epochcheck", EpochCheck)
}

func TestMetricName(t *testing.T) {
	CheckDir(t, "testdata/src/metricname", "metricname", MetricName)
}

func TestSuppression(t *testing.T) {
	// Reasoned ignores (same-line, line-above, comma-list) silence the
	// named analyzers; a directive naming the wrong analyzer leaves the
	// finding standing (its want annotation proves it surfaced).
	CheckDir(t, "testdata/src/suppress", "suppress", MetricName, ClockCheck)
}

func TestSuppressionBare(t *testing.T) {
	pkg := loadTestPackage(t, "testdata/src/suppressbare", "suppressbare")
	diags, err := Run([]*Package{pkg}, []*Analyzer{MetricName})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "sfvet" && strings.Contains(d.Message, "missing reason"):
			sawMalformed = true
		case d.Analyzer == "metricname" && strings.Contains(d.Message, "must end in _total"):
			sawFinding = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !sawMalformed {
		t.Error("bare //sfvet:ignore was not reported as malformed")
	}
	if !sawFinding {
		t.Error("bare //sfvet:ignore suppressed the finding it sat on")
	}
}

// TestRepoIsClean is the self-check the CI job relies on: sf-vet must
// exit 0 over the whole repository, every exception carrying a
// reasoned //sfvet:ignore.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks every package in the module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("sf-vet finding: %s", d)
	}
}
