package webfs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"testing/fstest"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/prover"
	"repro/internal/sfkey"
)

func testFS() fstest.MapFS {
	return fstest.MapFS{
		"pub/readme.txt":    {Data: []byte("public readme")},
		"pub/docs/guide.md": {Data: []byte("the guide")},
		"home/alice/diary":  {Data: []byte("dear diary")},
	}
}

type world struct {
	owner     *sfkey.PrivateKey
	ownerHash principal.Hash
	srv       *Server
	ts        *httptest.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{owner: sfkey.FromSeed([]byte("webfs-owner"))}
	w.ownerHash = principal.HashOfKey(w.owner.Public())
	w.srv = New(w.ownerHash, "files", testFS())
	w.ts = httptest.NewServer(w.srv)
	t.Cleanup(w.ts.Close)
	return w
}

func (w *world) reader(t *testing.T, seed, prefix string) *httpauth.Client {
	t.Helper()
	userKey := sfkey.FromSeed([]byte(seed))
	user := principal.KeyOf(userKey.Public())
	c, err := ShareSubtree(w.owner, w.ownerHash, user, "files", prefix, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	pv.AddProof(c)
	return httpauth.NewClient(pv, user)
}

func TestOwnerHashControlsServer(t *testing.T) {
	// The delegation chain runs through the hash of the owner's key:
	// issuer is the hash principal, certs are signed by the key.
	w := newWorld(t)
	c := w.reader(t, "reader-1", "/pub/")
	resp, err := c.Get(w.ts.URL + "/pub/readme.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "public readme" {
		t.Fatalf("body = %q", b)
	}
}

func TestSubtreeRestriction(t *testing.T) {
	w := newWorld(t)
	c := w.reader(t, "reader-2", "/pub/")
	// Deep path within the subtree works.
	resp, err := c.Get(w.ts.URL + "/pub/docs/guide.md")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Outside the subtree fails.
	if _, err := c.Get(w.ts.URL + "/home/alice/diary"); err == nil {
		t.Fatal("read outside delegated subtree")
	}
}

func TestSingleFileShare(t *testing.T) {
	w := newWorld(t)
	userKey := sfkey.FromSeed([]byte("file-reader"))
	user := principal.KeyOf(userKey.Public())
	c, err := ShareFile(w.owner, w.ownerHash, user, "files", "/home/alice/diary", 0)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	pv.AddProof(c)
	hc := httpauth.NewClient(pv, user)
	resp, err := hc.Get(w.ts.URL + "/home/alice/diary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := hc.Get(w.ts.URL + "/pub/readme.txt"); err == nil {
		t.Fatal("single-file share leaked the tree")
	}
}

func TestRedelegation(t *testing.T) {
	// Alice (subtree holder) further delegates a narrower subtree to
	// Bob; the chain carries the intersection.
	w := newWorld(t)
	aliceKey := sfkey.FromSeed([]byte("redelegate-alice"))
	alice := principal.KeyOf(aliceKey.Public())
	rootGrant, err := ShareSubtree(w.owner, w.ownerHash, alice, "files", "/pub/", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bobKey := sfkey.FromSeed([]byte("redelegate-bob"))
	bob := principal.KeyOf(bobKey.Public())
	sub := httpauth.SubtreeTag([]string{"GET"}, "files", "/pub/docs/")
	// The chain Bob needs: owner -> alice (cert), alice -> bob (cert
	// by alice over her own key principal, narrowed to /pub/docs/).
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(bobKey))
	pv.AddProof(rootGrant)
	aliceCert, err := cert.Delegate(aliceKey, bob, alice, sub, core.Forever)
	if err != nil {
		t.Fatal(err)
	}
	pv.AddProof(aliceCert)
	hc := httpauth.NewClient(pv, bob)
	resp, err := hc.Get(w.ts.URL + "/pub/docs/guide.md")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Bob's narrower grant does not reach the wider subtree.
	if _, err := hc.Get(w.ts.URL + "/pub/readme.txt"); err == nil {
		t.Fatal("redelegation escalated")
	}
}

func TestPathTraversalBlocked(t *testing.T) {
	w := newWorld(t)
	c := w.reader(t, "traverse", "/")
	for _, p := range []string{"/../etc/passwd", "/./../../x"} {
		resp, err := c.Get(w.ts.URL + p)
		if err != nil {
			continue // denied by authorization is fine too
		}
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("path %q served", p)
		}
		resp.Body.Close()
	}
}

func TestExpiredShareRejected(t *testing.T) {
	w := newWorld(t)
	userKey := sfkey.FromSeed([]byte("late-reader"))
	user := principal.KeyOf(userKey.Public())
	c, err := ShareSubtree(w.owner, w.ownerHash, user, "files", "/pub/", -time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	pv.AddClosure(prover.NewKeyClosure(userKey))
	pv.AddProof(c)
	hc := httpauth.NewClient(pv, user)
	if _, err := hc.Get(w.ts.URL + "/pub/readme.txt"); err == nil {
		t.Fatal("expired share accepted")
	}
}
