// Package webfs is the protected web file server of paper section
// 6.1: a file service over HTTP whose control rests with the hash of
// the owner's public key, and whose subtrees and files are shared by
// restricted delegation rather than accounts or ACLs.
package webfs

import (
	"fmt"
	"io/fs"
	"net/http"
	"path"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/httpauth"
	"repro/internal/principal"
	"repro/internal/sfkey"
	"repro/internal/tag"
)

// Server is a protected read-only file tree.
type Server struct {
	// OwnerHash is the hash of the owner's public key: the principal
	// that controls the server ("one user establishes control over
	// the file server by specifying the hash of his public key when
	// starting up the server").
	OwnerHash principal.Hash
	// Service names this server in tags.
	Service string
	// FS supplies file content.
	FS fs.FS

	prot *httpauth.Protected
}

// New builds the protected server.
func New(ownerHash principal.Hash, service string, fsys fs.FS) *Server {
	s := &Server{OwnerHash: ownerHash, Service: service, FS: fsys}
	mapper := func(r *http.Request) (principal.Principal, tag.Tag, error) {
		return s.OwnerHash, httpauth.RequestTag(r.Method, s.Service, r.URL.Path), nil
	}
	s.prot = httpauth.NewProtected(service, mapper, http.HandlerFunc(s.serveFile))
	return s
}

// Protected exposes the underlying handler for stats and tuning.
func (s *Server) Protected() *httpauth.Protected { return s.prot }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.prot.ServeHTTP(w, r)
}

// serveFile is the service implementation behind authorization.
func (s *Server) serveFile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not supported", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(path.Clean(r.URL.Path), "/")
	if name == "" || strings.HasPrefix(name, "..") {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	b, err := fs.ReadFile(s.FS, name)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Length", fmt.Sprint(len(b)))
		return
	}
	w.Write(b)
}

// ShareSubtree issues the owner's delegation of read access to a path
// prefix: the mechanism behind the proxy's "delegate" link (section
// 5.3.5). The recipient can further delegate, narrowing the prefix.
func ShareSubtree(owner *sfkey.PrivateKey, ownerHash principal.Hash, recipient principal.Principal, service, pathPrefix string, ttl time.Duration) (*cert.Cert, error) {
	grant := httpauth.SubtreeTag([]string{"GET", "HEAD"}, service, pathPrefix)
	v := core.Validity{NotAfter: time.Now().Add(ttl)}
	if ttl == 0 {
		v = core.Forever
	}
	return cert.Sign(owner, core.SpeaksFor{
		Subject:  recipient,
		Issuer:   ownerHash,
		Tag:      grant,
		Validity: v,
	})
}

// ShareFile issues read access to a single file.
func ShareFile(owner *sfkey.PrivateKey, ownerHash principal.Hash, recipient principal.Principal, service, filePath string, ttl time.Duration) (*cert.Cert, error) {
	grant := tag.ListOf(
		tag.Literal("web"),
		tag.ListOf(tag.Literal("method"), tag.Literal("GET")),
		tag.ListOf(tag.Literal("service"), tag.Literal(service)),
		tag.ListOf(tag.Literal("resourcePath"), tag.Literal(filePath)),
	)
	v := core.Validity{NotAfter: time.Now().Add(ttl)}
	if ttl == 0 {
		v = core.Forever
	}
	return cert.Sign(owner, core.SpeaksFor{
		Subject:  recipient,
		Issuer:   ownerHash,
		Tag:      grant,
		Validity: v,
	})
}
